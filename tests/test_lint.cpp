// tests/test_lint.cpp — the rule engine behind tools/darl_lint, driven
// against in-memory fixture snippets: one violating and one clean case per
// rule, plus stripper behavior and suppression-file parsing. Fixtures are
// raw strings, which the engine itself blanks out when darl_lint scans
// this file — the linter never flags its own test corpus.

#include "tools/lint_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace lint = darl::lint;

namespace {

std::vector<std::string> rules_of(const std::vector<lint::Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

bool has_rule(const std::vector<lint::Finding>& findings,
              const std::string& rule) {
  const auto rules = rules_of(findings);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

/// Scan a .cpp fixture (path chosen so no path-scoped rule kicks in).
std::vector<lint::Finding> scan(const std::string& code,
                                const std::string& path = "src/darl/x.cpp") {
  return lint::scan_source(path, code);
}

}  // namespace

// ---------------------------------------------------------------------------
// Stripper

TEST(LintStrip, BlanksCommentsAndStrings) {
  const std::string src = R"(int a; // new int
/* delete a; */ const char* s = "new int[3]";
char c = '"';)";
  const std::string stripped = lint::strip_noncode(src);
  EXPECT_EQ(stripped.find("new"), std::string::npos);
  EXPECT_EQ(stripped.find("delete"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  // Line structure survives for line numbering.
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
}

TEST(LintStrip, BlanksRawStringsAndKeepsDigitSeparators) {
  const std::string src =
      "auto re = R\"rx(catch (...) new delete)rx\";\nint n = 1'000'000;";
  const std::string stripped = lint::strip_noncode(src);
  EXPECT_EQ(stripped.find("catch"), std::string::npos);
  EXPECT_EQ(stripped.find("new"), std::string::npos);
  EXPECT_NE(stripped.find("1'000'000"), std::string::npos);
}

TEST(LintStrip, ViolationsInsideLiteralsAreNotFindings) {
  EXPECT_TRUE(scan(R"fx(const char* doc = "call std::rand() and detach()";)fx")
                  .empty());
}

// ---------------------------------------------------------------------------
// banned-random

TEST(LintRandom, FlagsRandSrandRandomDevice) {
  EXPECT_TRUE(has_rule(scan("int x = std::rand();"), "banned-random"));
  EXPECT_TRUE(has_rule(scan("srand(42);"), "banned-random"));
  EXPECT_TRUE(has_rule(scan("std::random_device rd;"), "banned-random"));
}

TEST(LintRandom, CleanSeededRngAndSubstrings) {
  EXPECT_TRUE(scan("Rng rng(seed); double u = rng.uniform();").empty());
  // 'rand' embedded in identifiers must not trip the word boundary.
  EXPECT_TRUE(scan("int operand(int x); auto grand = operand(1);").empty());
}

// ---------------------------------------------------------------------------
// wall-clock

TEST(LintWallClock, FlagsArglessNowAndSystemClock) {
  EXPECT_TRUE(has_rule(scan("auto t = std::chrono::steady_clock::now();"),
                       "wall-clock"));
  EXPECT_TRUE(has_rule(scan("using clk = std::chrono::system_clock;"),
                       "wall-clock"));
}

TEST(LintWallClock, WhitelistedPathsAndStopwatchUseAreClean) {
  EXPECT_TRUE(lint::scan_source("src/darl/common/stopwatch.hpp",
                                "#pragma once\nauto t = clock::now();")
                  .empty());
  EXPECT_TRUE(lint::scan_source("src/darl/obs/trace.cpp",
                                "auto t = steady_clock::now();")
                  .empty());
  EXPECT_TRUE(scan("Stopwatch sw; double s = sw.seconds();").empty());
}

// ---------------------------------------------------------------------------
// unordered-iter

TEST(LintUnordered, FlagsRangeForOverUnorderedMember) {
  const std::string code = R"(
std::unordered_map<std::string, double> metrics_;
void dump() {
  for (const auto& kv : metrics_) emit(kv);
}
)";
  const auto findings = scan(code);
  ASSERT_TRUE(has_rule(findings, "unordered-iter"));
  EXPECT_EQ(findings[0].line, 4u);
}

TEST(LintUnordered, FlagsExplicitBeginAndCrossFileContext) {
  lint::ScanContext ctx;
  ctx.unordered_names.push_back("seen_keys_");
  const auto findings = lint::scan_source(
      "src/darl/x.cpp",
      "for (auto it = seen_keys_.begin(); it != seen_keys_.end(); ++it) {}",
      ctx);
  EXPECT_TRUE(has_rule(findings, "unordered-iter"));
}

TEST(LintUnordered, CleanOrderedMapAndMembershipTests) {
  EXPECT_TRUE(scan(R"(
std::map<std::string, double> metrics_;
std::unordered_set<std::string> seen_;
void dump() {
  for (const auto& kv : metrics_) emit(kv);
  if (seen_.count(key) == 0) seen_.insert(key);
}
)")
                  .empty());
}

// ---------------------------------------------------------------------------
// raw-new-delete

TEST(LintNewDelete, FlagsRawNewAndDelete) {
  EXPECT_TRUE(has_rule(scan("int* p = new int;"), "raw-new-delete"));
  EXPECT_TRUE(has_rule(scan("delete p;"), "raw-new-delete"));
  EXPECT_TRUE(has_rule(scan("delete[] arr;"), "raw-new-delete"));
}

TEST(LintNewDelete, CleanDeletedFunctionsAndIdentifiers) {
  EXPECT_TRUE(scan("Foo(const Foo&) = delete;").empty());
  EXPECT_TRUE(scan("auto p = std::make_unique<int>(3);").empty());
  EXPECT_TRUE(scan("int new_rung = renew(delete_count);").empty());
}

// ---------------------------------------------------------------------------
// float-literal

TEST(LintFloat, FlagsFloatLiteralsInNumericDirs) {
  EXPECT_TRUE(has_rule(
      lint::scan_source("src/darl/ode/rk.cpp", "double h = 0.5f;"),
      "float-literal"));
  EXPECT_TRUE(has_rule(
      lint::scan_source("src/darl/nn/mlp.cpp", "auto lr = 1e-3f;"),
      "float-literal"));
}

TEST(LintFloat, CleanDoubleLiteralsAndOtherDirs) {
  EXPECT_TRUE(lint::scan_source("src/darl/ode/rk.cpp",
                                "double h = 0.5; double k = 1e-3;")
                  .empty());
  // Hex integers ending in f are not float literals.
  EXPECT_TRUE(lint::scan_source("src/darl/rl/ppo.cpp", "int m = 0x1e5f;")
                  .empty());
  // Outside the double-precision dirs the rule does not apply.
  EXPECT_TRUE(scan("float blend = 0.5f;").empty());
}

// ---------------------------------------------------------------------------
// std-endl

TEST(LintEndl, FlagsStdEndl) {
  EXPECT_TRUE(has_rule(scan("out << x << std::endl;"), "std-endl"));
}

TEST(LintEndl, CleanNewline) {
  EXPECT_TRUE(scan(R"(out << x << "\n";)").empty());
}

// ---------------------------------------------------------------------------
// pragma-once

TEST(LintPragmaOnce, FlagsHeaderWithoutPragma) {
  const auto findings =
      lint::scan_source("src/darl/x.hpp", "int answer();\n");
  EXPECT_TRUE(has_rule(findings, "pragma-once"));
}

TEST(LintPragmaOnce, CleanHeaderAndSourceFile) {
  EXPECT_TRUE(
      lint::scan_source("src/darl/x.hpp", "#pragma once\nint answer();\n")
          .empty());
  EXPECT_TRUE(lint::scan_source("src/darl/x.cpp", "int answer();\n").empty());
}

// ---------------------------------------------------------------------------
// catch-all

TEST(LintCatchAll, FlagsSwallowedException) {
  const std::string code = R"(
void f() {
  try { g(); } catch (...) {
    count += 1;
  }
}
)";
  const auto findings = scan(code);
  ASSERT_TRUE(has_rule(findings, "catch-all"));
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintCatchAll, CleanRethrowAndRecording) {
  EXPECT_TRUE(scan(R"(
void f() {
  try { g(); } catch (...) { throw; }
  try { g(); } catch (...) { err = std::current_exception(); }
}
)")
                  .empty());
  // Typed catches are out of scope for this rule.
  EXPECT_TRUE(
      scan("try { g(); } catch (const std::exception& e) { log(e); }")
          .empty());
}

// ---------------------------------------------------------------------------
// detached-thread

TEST(LintDetach, FlagsDetach) {
  const auto findings = scan("std::thread t(work); t.detach();");
  EXPECT_TRUE(has_rule(findings, "detached-thread"));
}

TEST(LintDetach, CleanJoin) {
  EXPECT_TRUE(scan("std::thread t(work); t.join();").empty());
}

// ---------------------------------------------------------------------------
// thread-outside-pool

TEST(LintThreadPool, FlagsStdThreadInLinalgAndNn) {
  const std::string code = "std::thread t(work); t.join();";
  EXPECT_TRUE(has_rule(scan(code, "src/darl/linalg/matrix.cpp"),
                       "thread-outside-pool"));
  EXPECT_TRUE(has_rule(scan(code, "src/darl/nn/mlp.cpp"),
                       "thread-outside-pool"));
  // A member declaration is just as banned as a construction: the rule is
  // about who owns threads, not how they are spelled.
  EXPECT_TRUE(has_rule(scan("std::vector<std::thread> workers_;",
                            "src/darl/nn/mlp.hpp"),
                       "thread-outside-pool"));
}

TEST(LintThreadPool, CleanPoolFilesOtherDirsAndPoolUse) {
  const std::string code = "std::thread t(work); t.join();";
  // The sanctioned pool pair may construct threads.
  EXPECT_FALSE(has_rule(scan(code, "src/darl/linalg/thread_pool.cpp"),
                        "thread-outside-pool"));
  EXPECT_FALSE(has_rule(scan(code, "src/darl/linalg/thread_pool.hpp"),
                        "thread-outside-pool"));
  // Outside linalg/nn the rule does not apply (serve owns workers).
  EXPECT_FALSE(has_rule(scan(code, "src/darl/serve/batch_scheduler.cpp"),
                        "thread-outside-pool"));
  // Going through the pool is the sanctioned route.
  EXPECT_TRUE(scan("ThreadPool::instance().run(&gemm_chunk, &ctx);",
                   "src/darl/linalg/matrix.cpp")
                  .empty());
}

// ---------------------------------------------------------------------------
// naked-socket-call

TEST(LintSocket, FlagsRawSocketCallsOutsideNet) {
  EXPECT_TRUE(has_rule(scan("const ssize_t n = ::recv(fd, buf, cap, 0);",
                            "src/darl/obs/export.cpp"),
                       "naked-socket-call"));
  EXPECT_TRUE(has_rule(scan("::send(fd, data, len, MSG_NOSIGNAL);",
                            "tests/test_obs_live.cpp"),
               "naked-socket-call"));
  EXPECT_TRUE(has_rule(scan("int c = ::accept(listen_fd, nullptr, nullptr);",
                            "tools/darl_worker.cpp"),
               "naked-socket-call"));
}

TEST(LintSocket, CleanInsideNetHelpersAndNonSyscallNames) {
  const std::string code = "const ssize_t n = ::recv(fd, buf, cap, 0);";
  // darl/net is the one sanctioned home for the raw calls.
  EXPECT_FALSE(has_rule(scan(code, "src/darl/net/socket.cpp"),
                        "naked-socket-call"));
  // The helpers themselves (and method calls) are not raw syscalls.
  EXPECT_TRUE(scan("net::send_all(fd, payload); net::recv_exact(fd, b, n); "
                   "channel.send(type, payload);",
                   "src/darl/serve/batch_scheduler.cpp")
                  .empty());
  // A quoted or commented call never counts (stripped source).
  EXPECT_TRUE(scan("// ::recv(fd, buf, cap, 0);\n"
                   "const char* doc = \"::send(fd, p, n, 0)\";")
                  .empty());
}

// ---------------------------------------------------------------------------
// heap-alloc-in-kernel

TEST(LintKernelAlloc, FlagsAllocationsInsideBatchAndGemmBodies) {
  const std::string code = R"fx(
const Matrix& Mlp::forward_batch(const Matrix& x) {
  ws_act_.resize(layers + 1);
  return ws_act_.back();
}
void Matrix::gemm(double alpha, const Matrix& a, bool ta,
                  const Matrix& b, bool tb, Matrix& c) {
  scratch_.push_back(0.0);
  double* tmp = new double[c.size()];
}
)fx";
  const auto findings = scan(code);
  std::size_t kernel_hits = 0;
  for (const auto& f : findings) {
    if (f.rule == "heap-alloc-in-kernel") ++kernel_hits;
  }
  EXPECT_EQ(kernel_hits, 3u);  // resize, push_back, new
  // The resize on line 3 belongs to forward_batch.
  ASSERT_TRUE(has_rule(findings, "heap-alloc-in-kernel"));
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("forward_batch"), std::string::npos);
}

TEST(LintKernelAlloc, PointerAccessAndConstQualifierAreCovered) {
  const std::string code = R"fx(
const Matrix& Mlp::evaluate_batch(const Matrix& x) const {
  spare->resize(batch * cols);
  return *spare;
}
)fx";
  EXPECT_TRUE(has_rule(scan(code), "heap-alloc-in-kernel"));
}

TEST(LintKernelAlloc, CleanKernelsCallsAndOtherFunctions) {
  // reshape (capacity-reusing) is the sanctioned growth path; calls to a
  // kernel and allocations in non-kernel functions are out of scope.
  EXPECT_TRUE(scan(R"fx(
const Matrix& Mlp::backward_batch(const Matrix& g) {
  spare->reshape(batch, cols);
  Matrix::gemm(1.0, *delta, true, ws_act_[li], false, grad_w_[li]);
  return *delta;
}
void Mlp::ensure_forward_ws(std::size_t batch) {
  ws_act_.resize(layers + 1);
}
void caller() {
  net.forward_batch(x);
  out.push_back(result);
}
)fx")
                  .empty());
  // Declarations have no body to scan.
  EXPECT_TRUE(
      scan("static void gemm(double alpha, const Matrix& a, bool ta,\n"
           "                 const Matrix& b, bool tb, Matrix& c);")
          .empty());
  // Names that merely contain the kernel stems do not match.
  EXPECT_TRUE(scan(R"fx(
void gemm_table_builder() { table.push_back(kernel); }
void run_batched() { queue.push_back(job); }
)fx")
                  .empty());
}

TEST(LintKernelAlloc, FlagsAllocationsInDispatchBodies) {
  // The serve scheduler's dispatch path is per-request hot code; growing
  // containers there would allocate on every micro-batch.
  const std::string code = R"fx(
void BatchScheduler::dispatch_loop(Worker& worker) {
  worker.batch.push_back(queue_.front());
}
)fx";
  const auto findings = scan(code);
  ASSERT_TRUE(has_rule(findings, "heap-alloc-in-kernel"));
  EXPECT_NE(findings[0].message.find("dispatch_loop"), std::string::npos);
}

TEST(LintKernelAlloc, CleanDispatchBodyAndCallSites) {
  // Index assignment into a preallocated slot plus pop_front is the
  // sanctioned dispatch pattern; calls and declarations have no body.
  EXPECT_TRUE(scan(R"fx(
void BatchScheduler::dispatch_loop(Worker& worker) {
  worker.batch[i] = queue_.front();
  queue_.pop_front();
}
void spawn(Worker* w) {
  w->thread = std::thread([this, w] { dispatch_loop(*w); });
}
void dispatch_once(Worker& worker);
)fx")
                  .empty());
}

// ---------------------------------------------------------------------------
// metric-name

// The bad-name fixtures are assembled by string concatenation: this rule
// scans RAW file content (the names live in string literals the stripper
// blanks), so a contiguous bad registration call written here verbatim
// would be a finding in the linter's own test file.

TEST(LintMetricName, FlagsBadInstrumentNames) {
  const std::string bad_reg =
      std::string("obs::Registry::global().count") +
      "er(\"Serve.Requests\").add(1);";
  const auto findings = scan(bad_reg);
  ASSERT_TRUE(has_rule(findings, "metric-name"));
  EXPECT_NE(findings[0].message.find("Serve.Requests"), std::string::npos);

  const std::string bad_macro =
      std::string("DARL_COUNTER") + "_ADD(\"serve bad\", 1);";
  EXPECT_TRUE(has_rule(scan(bad_macro), "metric-name"));
}

TEST(LintMetricName, FlagsBadLabelKeys) {
  const std::string bad_label = std::string("reg.gau") +
                                "ge(\"serve.depth\", {{\"Bad-Key\", v}});";
  const auto findings = scan(bad_label);
  ASSERT_TRUE(has_rule(findings, "metric-name"));
  EXPECT_NE(findings[0].message.find("Bad-Key"), std::string::npos);
}

TEST(LintMetricName, CleanNamesLabelsAndNonLiteralArgs) {
  EXPECT_TRUE(
      scan("reg.counter(\"serve.client_requests\", {{\"tenant\", t}});")
          .empty());
  EXPECT_TRUE(scan("DARL_GAUGE_SET(\"serve.queue_depth\", depth);").empty());
  // Histogram bounds lists are not label pairs.
  EXPECT_TRUE(
      scan("reg.histogram(\"serve.latency_us\", {1.0, 2.0, 4.0});").empty());
  // A name passed through a variable is checked at runtime, not here.
  EXPECT_TRUE(scan("reg.counter(name_var).add(1);").empty());
}

// ---------------------------------------------------------------------------
// metric-lookup-in-kernel

TEST(LintMetricLookup, FlagsRegistryLookupInKernelBodies) {
  const std::string code = R"fx(
void BatchScheduler::execute_batch(Worker& worker, std::size_t count) {
  obs::Registry::global().counter(kServed).add(count);
}
)fx";
  const auto findings = scan(code);
  ASSERT_TRUE(has_rule(findings, "metric-lookup-in-kernel"));
  EXPECT_NE(findings[0].message.find("execute_batch"), std::string::npos);
}

TEST(LintMetricLookup, CleanMacrosStaticHelpersAndNonKernelLookups) {
  // The DARL_* macros cache the instrument in a function-local static, and
  // lookups in ordinary (non-kernel) functions are out of scope.
  EXPECT_TRUE(scan(R"fx(
void BatchScheduler::execute_batch(Worker& worker, std::size_t count) {
  DARL_COUNTER_ADD("serve.served", count);
  latency_histogram().observe(elapsed_us);
}
obs::Histogram& latency_histogram() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("serve.latency_us", kBounds);
  return h;
}
)fx")
                  .empty());
}

// ---------------------------------------------------------------------------
// Suppression parsing and matching

TEST(LintSupp, ParsesEntriesSkipsCommentsReportsMalformed) {
  const std::string file = R"(# header comment

raw-new-delete src/darl/obs/metrics.cpp -- leaked singleton
catch-all study.cpp missing separator
detached-thread src/darl/core/study.cpp --
)";
  std::vector<std::string> errors;
  const auto supps = lint::parse_suppressions(file, errors);
  ASSERT_EQ(supps.size(), 1u);
  EXPECT_EQ(supps[0].rule, "raw-new-delete");
  EXPECT_EQ(supps[0].path_suffix, "src/darl/obs/metrics.cpp");
  EXPECT_EQ(supps[0].justification, "leaked singleton");
  EXPECT_EQ(supps[0].line, 3u);
  ASSERT_EQ(errors.size(), 2u);  // missing ' -- ' and empty justification
}

TEST(LintSupp, MatchesOnRuleAndPathSuffix) {
  lint::Suppression s;
  s.rule = "raw-new-delete";
  s.path_suffix = "obs/metrics.cpp";
  lint::Finding hit{"raw-new-delete", "src/darl/obs/metrics.cpp", 12, ""};
  lint::Finding other_rule{"catch-all", "src/darl/obs/metrics.cpp", 12, ""};
  lint::Finding other_path{"raw-new-delete", "src/darl/obs/trace.cpp", 12, ""};
  EXPECT_TRUE(lint::suppression_matches(s, hit));
  EXPECT_FALSE(lint::suppression_matches(s, other_rule));
  EXPECT_FALSE(lint::suppression_matches(s, other_path));
}

TEST(LintSupp, ApplyMarksUsedAndKeepsUnmatchedFindings) {
  std::vector<lint::Finding> findings{
      {"raw-new-delete", "src/darl/obs/metrics.cpp", 12, "m"},
      {"detached-thread", "src/darl/core/study.cpp", 99, "m"},
  };
  std::vector<std::string> errors;
  auto supps = lint::parse_suppressions(
      "raw-new-delete src/darl/obs/metrics.cpp -- leaked singleton\n"
      "std-endl src/darl/common/table.cpp -- stale entry\n",
      errors);
  ASSERT_EQ(supps.size(), 2u);
  ASSERT_TRUE(errors.empty());
  const auto left = lint::apply_suppressions(std::move(findings), supps);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].rule, "detached-thread");
  EXPECT_TRUE(supps[0].used);
  EXPECT_FALSE(supps[1].used);  // the unused entry the CLI turns into an error
}

// ---------------------------------------------------------------------------
// End-to-end: a fixture with several violations reports them sorted by line

TEST(LintScan, FindingsAreSortedByLine) {
  const std::string code = R"(
int* p = new int;
std::thread t(w); t.detach();
int r = std::rand();
)";
  const auto findings = scan(code);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, "raw-new-delete");
  EXPECT_EQ(findings[1].rule, "detached-thread");
  EXPECT_EQ(findings[2].rule, "banned-random");
  EXPECT_TRUE(std::is_sorted(
      findings.begin(), findings.end(),
      [](const lint::Finding& a, const lint::Finding& b) {
        return a.line < b.line;
      }));
}
