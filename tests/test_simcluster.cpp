// Tests for the simulated cluster time/energy model: exact phase
// arithmetic, power-curve integration, link modelling and validation.

#include <gtest/gtest.h>

#include "darl/common/error.hpp"
#include "darl/simcluster/cluster.hpp"

namespace darl::sim {
namespace {

ClusterSpec two_nodes() { return ClusterSpec::paper_testbed(2, 4); }

TEST(ClusterSpec, PaperTestbedShape) {
  const ClusterSpec s = two_nodes();
  ASSERT_EQ(s.nodes.size(), 2u);
  EXPECT_EQ(s.nodes[0].cores, 4u);
  EXPECT_EQ(s.nodes[1].name, "node1");
  EXPECT_DOUBLE_EQ(s.link.bandwidth_bytes_per_s, 125e6);  // 1 Gbps
  EXPECT_THROW(ClusterSpec::paper_testbed(0, 4), InvalidArgument);
  EXPECT_THROW(ClusterSpec::paper_testbed(1, 0), InvalidArgument);
}

TEST(SimCluster, ParallelPhaseLastsAsLongAsSlowestWorker) {
  SimCluster c(two_nodes());
  const double d = c.run_parallel_phase({{0, 2.0}, {0, 5.0}, {1, 3.0}});
  EXPECT_DOUBLE_EQ(d, 5.0);
  EXPECT_DOUBLE_EQ(c.elapsed_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(c.busy_core_seconds(0), 7.0);
  EXPECT_DOUBLE_EQ(c.busy_core_seconds(1), 3.0);
}

TEST(SimCluster, ParallelPhaseRespectsCoreCounts) {
  SimCluster c(ClusterSpec::paper_testbed(1, 2));
  EXPECT_THROW(c.run_parallel_phase({{0, 1.0}, {0, 1.0}, {0, 1.0}}),
               InvalidArgument);
  EXPECT_THROW(c.run_parallel_phase({{5, 1.0}}), InvalidArgument);
  EXPECT_THROW(c.run_parallel_phase({}), InvalidArgument);
  EXPECT_THROW(c.run_parallel_phase({{0, -1.0}}), InvalidArgument);
}

TEST(SimCluster, ComputePhaseScalesWithCoresAndEfficiency) {
  SimCluster c(two_nodes());
  const double d1 = c.run_compute(0, 8.0, 1);
  EXPECT_DOUBLE_EQ(d1, 8.0);  // single core: efficiency ignored
  const double d4 = c.run_compute(0, 8.0, 4, 0.5);
  EXPECT_DOUBLE_EQ(d4, 4.0);  // 8 / (4 * 0.5)
  EXPECT_DOUBLE_EQ(c.elapsed_seconds(), 12.0);
  EXPECT_DOUBLE_EQ(c.busy_core_seconds(0), 16.0);
  EXPECT_THROW(c.run_compute(0, 1.0, 5), InvalidArgument);
  EXPECT_THROW(c.run_compute(0, 1.0, 1, 0.0), InvalidArgument);
}

TEST(SimCluster, TransferUsesLatencyPlusBandwidth) {
  SimCluster c(two_nodes());
  const double d = c.run_transfer(0, 1, 125e6);  // one second of payload
  EXPECT_NEAR(d, 1.0 + c.spec().link.latency_s, 1e-12);
  EXPECT_THROW(c.run_transfer(0, 0, 10.0), InvalidArgument);
  EXPECT_THROW(c.run_transfer(0, 7, 10.0), InvalidArgument);
}

TEST(SimCluster, EnergyIntegratesIdleActiveAndNic) {
  ClusterSpec spec = ClusterSpec::paper_testbed(2, 4);
  spec.nodes[0].power = {10.0, 2.0};
  spec.nodes[1].power = {10.0, 2.0};
  spec.link.nic_watts = 3.0;
  spec.link.latency_s = 0.0;
  SimCluster c(spec);

  c.run_parallel_phase({{0, 4.0}, {1, 2.0}});  // elapsed 4, busy 4+2
  c.run_transfer(0, 1, 125e6);                 // elapsed +1, nic 1s

  const double elapsed = c.elapsed_seconds();
  EXPECT_DOUBLE_EQ(elapsed, 5.0);
  // idle: 2 nodes * 10 W * 5 s = 100 J; active: (4+2) * 2 = 12 J;
  // nic: 2 endpoints * 3 W * 1 s = 6 J.
  EXPECT_NEAR(c.energy_joules(), 100.0 + 12.0 + 6.0, 1e-9);
}

TEST(SimCluster, IdlePowerScalesWithNodeCount) {
  SimCluster one(ClusterSpec::paper_testbed(1, 4));
  SimCluster two(ClusterSpec::paper_testbed(2, 4));
  one.run_idle(100.0);
  two.run_idle(100.0);
  EXPECT_NEAR(two.energy_joules(), 2.0 * one.energy_joules(), 1e-9);
}

TEST(SimCluster, SecondsForMflop) {
  ClusterSpec spec = ClusterSpec::paper_testbed(1, 4);
  spec.nodes[0].core_mflop_per_s = 500.0;
  SimCluster c(spec);
  EXPECT_DOUBLE_EQ(c.seconds_for_mflop(0, 1000.0), 2.0);
  EXPECT_THROW(c.seconds_for_mflop(0, -1.0), InvalidArgument);
}

TEST(SimCluster, RunIdleAdvancesClockOnly) {
  SimCluster c(two_nodes());
  c.run_idle(3.0);
  EXPECT_DOUBLE_EQ(c.elapsed_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(c.busy_core_seconds(0), 0.0);
  EXPECT_THROW(c.run_idle(-1.0), InvalidArgument);
}

class ClusterShapeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ClusterShapeTest, AccountingScalesWithShape) {
  const auto [nodes, cores] = GetParam();
  SimCluster c(ClusterSpec::paper_testbed(nodes, cores));
  // Fill every core of every node for 10 seconds.
  std::vector<SimCluster::WorkerLoad> loads;
  for (std::size_t n = 0; n < nodes; ++n) {
    for (std::size_t k = 0; k < cores; ++k) loads.push_back({n, 10.0});
  }
  c.run_parallel_phase(loads);
  EXPECT_DOUBLE_EQ(c.elapsed_seconds(), 10.0);
  double busy = 0.0;
  for (std::size_t n = 0; n < nodes; ++n) busy += c.busy_core_seconds(n);
  EXPECT_DOUBLE_EQ(busy, 10.0 * static_cast<double>(nodes * cores));
  // Energy grows strictly with the node count at fixed duration.
  const double expected =
      static_cast<double>(nodes) *
      (c.spec().nodes[0].power.idle_watts * 10.0 +
       c.spec().nodes[0].power.active_watts_per_core * 10.0 *
           static_cast<double>(cores));
  EXPECT_NEAR(c.energy_joules(), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterShapeTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 2},
                      std::pair<std::size_t, std::size_t>{1, 4},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{2, 4},
                      std::pair<std::size_t, std::size_t>{4, 8}),
    [](const auto& gen_info) {
      return std::to_string(gen_info.param.first) + "x" +
             std::to_string(gen_info.param.second);
    });

TEST(SimCluster, DvfsScalesThroughputLinearlyAndPowerCubically) {
  ClusterSpec nominal = ClusterSpec::paper_testbed(1, 4);
  ClusterSpec slow = nominal;
  slow.nodes[0].frequency_scale = 0.5;

  SimCluster a(nominal), b(slow);
  // Same MFLOP work takes twice as long at half frequency.
  EXPECT_DOUBLE_EQ(b.seconds_for_mflop(0, 1200.0),
                   2.0 * a.seconds_for_mflop(0, 1200.0));

  // Equal busy core-seconds: active energy falls by f^3 = 1/8.
  ClusterSpec pure = nominal;
  pure.nodes[0].power.idle_watts = 0.0;
  pure.link.nic_watts = 0.0;
  ClusterSpec pure_slow = pure;
  pure_slow.nodes[0].frequency_scale = 0.5;
  SimCluster c(pure), d(pure_slow);
  c.run_parallel_phase({{0, 10.0}});
  d.run_parallel_phase({{0, 10.0}});
  EXPECT_NEAR(d.energy_joules(), c.energy_joules() / 8.0, 1e-9);

  ClusterSpec bad = nominal;
  bad.nodes[0].frequency_scale = 0.0;
  EXPECT_THROW(SimCluster{bad}, InvalidArgument);
}

TEST(SimCluster, DvfsEnergyTimeTradeoffOnFixedWork) {
  // Fixed MFLOP job: down-clocking lengthens it but cuts total active
  // energy (idle zeroed to isolate the active term).
  auto run = [](double f) {
    ClusterSpec spec = ClusterSpec::paper_testbed(1, 1);
    spec.nodes[0].power.idle_watts = 0.0;
    spec.nodes[0].frequency_scale = f;
    SimCluster c(spec);
    c.run_compute(0, c.seconds_for_mflop(0, 12000.0), 1);
    return std::pair{c.elapsed_seconds(), c.energy_joules()};
  };
  const auto [t_fast, e_fast] = run(1.0);
  const auto [t_slow, e_slow] = run(0.5);
  EXPECT_GT(t_slow, t_fast);
  EXPECT_LT(e_slow, e_fast);  // f^3 power drop beats the 1/f time growth
}

TEST(SimCluster, RejectsDegenerateSpecs) {
  ClusterSpec spec;
  EXPECT_THROW(SimCluster{spec}, InvalidArgument);
  spec = ClusterSpec::paper_testbed(1, 1);
  spec.link.bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(SimCluster{spec}, InvalidArgument);
}

}  // namespace
}  // namespace darl::sim
