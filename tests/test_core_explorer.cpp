// Tests for the exploratory methods: grid enumeration, random search,
// fixed lists and successive halving's rung/budget mechanics.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "darl/common/error.hpp"
#include "darl/core/explorer.hpp"
#include "darl/core/tpe.hpp"

namespace darl::core {
namespace {

ParamSpace small_space() {
  ParamSpace space;
  space.add(ParamDomain::categorical("algo", {"PPO", "SAC"},
                                     ParamCategory::Algorithm));
  space.add(ParamDomain::integer_set("nodes", {1, 2}, ParamCategory::System));
  return space;
}

TEST(GridSearch, EnumeratesEveryPointOnce) {
  GridSearch grid(small_space(), 3);
  std::set<std::string> seen;
  std::size_t count = 0;
  while (auto p = grid.ask()) {
    EXPECT_EQ(p->budget_fraction, 1.0);
    EXPECT_EQ(p->trial_id, count);
    seen.insert(p->config.cache_key());
    grid.tell(p->trial_id, {{"m", 0.0}});
    ++count;
  }
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_FALSE(grid.ask().has_value());  // exhausted stays exhausted
}

TEST(GridSearch, DiscretizesRealDomains) {
  ParamSpace space;
  space.add(ParamDomain::real_range("lr", 0.0, 1.0, false,
                                    ParamCategory::Algorithm));
  GridSearch grid(space, 5);
  std::size_t count = 0;
  while (grid.ask()) ++count;
  EXPECT_EQ(count, 5u);
}

TEST(RandomSearch, ProposesRequestedTrialsFromSpace) {
  const ParamSpace space = small_space();
  RandomSearch rs(space, 10, 42);
  std::size_t count = 0;
  while (auto p = rs.ask()) {
    EXPECT_NO_THROW(space.validate(p->config));
    rs.tell(p->trial_id, {});
    ++count;
  }
  EXPECT_EQ(count, 10u);
}

TEST(RandomSearch, AvoidsDuplicatesWhenPossible) {
  // 4-point space, 4 trials: the bounded re-draw should find all 4.
  RandomSearch rs(small_space(), 4, 7);
  std::set<std::string> seen;
  while (auto p = rs.ask()) seen.insert(p->config.cache_key());
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RandomSearch, DeterministicForSeed) {
  RandomSearch a(small_space(), 5, 3), b(small_space(), 5, 3);
  while (true) {
    auto pa = a.ask();
    auto pb = b.ask();
    ASSERT_EQ(pa.has_value(), pb.has_value());
    if (!pa) break;
    EXPECT_EQ(pa->config.cache_key(), pb->config.cache_key());
  }
}

TEST(FixedListSearch, ReplaysListInOrder) {
  LearningConfiguration c1, c2;
  c1.set("algo", std::string("PPO"));
  c2.set("algo", std::string("SAC"));
  FixedListSearch fixed({c1, c2});
  auto p1 = fixed.ask();
  auto p2 = fixed.ask();
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(p1->config.get_categorical("algo"), "PPO");
  EXPECT_EQ(p2->config.get_categorical("algo"), "SAC");
  EXPECT_FALSE(fixed.ask().has_value());
  EXPECT_THROW(FixedListSearch({}), InvalidArgument);
}

TEST(SuccessiveHalving, RungBudgetsGrowAndPopulationShrinks) {
  MetricDef objective{"score", "", Sense::Maximize};
  SuccessiveHalving sh(small_space(), objective, 8, 2.0, 0.25, 5);

  std::map<std::size_t, double> budget_by_rung_count;
  std::size_t trials_rung0 = 0;
  double score = 0.0;

  // Rung 0: 8 trials at fraction 0.25.
  std::vector<Proposal> pending;
  while (auto p = sh.ask()) {
    EXPECT_DOUBLE_EQ(p->budget_fraction, 0.25);
    pending.push_back(*p);
    ++trials_rung0;
  }
  EXPECT_EQ(trials_rung0, 8u);
  for (auto& p : pending) {
    sh.tell(p.trial_id, {{"score", score}});
    score += 1.0;  // later trials score higher
  }

  // Rung 1: 4 survivors at fraction 0.5.
  EXPECT_EQ(sh.rung(), 1u);
  pending.clear();
  while (auto p = sh.ask()) {
    EXPECT_DOUBLE_EQ(p->budget_fraction, 0.5);
    pending.push_back(*p);
  }
  EXPECT_EQ(pending.size(), 4u);
  // Survivors must be the best scorers from rung 0 (the last-told configs).
  for (auto& p : pending) sh.tell(p.trial_id, {{"score", 1.0}});

  // Rung 2: 2 survivors at fraction 1.0; then the search ends.
  pending.clear();
  while (auto p = sh.ask()) {
    EXPECT_DOUBLE_EQ(p->budget_fraction, 1.0);
    pending.push_back(*p);
  }
  EXPECT_EQ(pending.size(), 2u);
  for (auto& p : pending) sh.tell(p.trial_id, {{"score", 1.0}});
  EXPECT_FALSE(sh.ask().has_value());
}

TEST(SuccessiveHalving, MinimizeObjectiveKeepsSmallScores) {
  MetricDef objective{"time", "min", Sense::Minimize};
  SuccessiveHalving sh(small_space(), objective, 4, 2.0, 0.5, 9);
  std::vector<Proposal> r0;
  while (auto p = sh.ask()) r0.push_back(*p);
  ASSERT_EQ(r0.size(), 4u);
  // Give trial 0 the best (smallest) time; remember its config.
  const std::string best_key = r0[0].config.cache_key();
  sh.tell(r0[0].trial_id, {{"time", 1.0}});
  sh.tell(r0[1].trial_id, {{"time", 10.0}});
  sh.tell(r0[2].trial_id, {{"time", 10.0}});
  sh.tell(r0[3].trial_id, {{"time", 10.0}});

  std::set<std::string> survivors;
  while (auto p = sh.ask()) {
    survivors.insert(p->config.cache_key());
    sh.tell(p->trial_id, {{"time", 1.0}});
  }
  EXPECT_TRUE(survivors.count(best_key) == 1);
}

TEST(SuccessiveHalving, TellFailurePrunesFailedConfigAndAdvancesRung) {
  // A continuous parameter keeps the sampled population distinct, so the
  // failed entry's config cannot reappear under another trial id.
  ParamSpace space;
  space.add(ParamDomain::real_range("lr", 1e-4, 1e-1, /*log_scale=*/true,
                                    ParamCategory::Algorithm));
  MetricDef objective{"score", "", Sense::Maximize};
  SuccessiveHalving sh(space, objective, 4, 2.0, 0.5, 11);

  std::vector<Proposal> r0;
  while (auto p = sh.ask()) r0.push_back(*p);
  ASSERT_EQ(r0.size(), 4u);

  // One trial fails; the other three report real scores. The rung must
  // still complete (no stall waiting for the failed result).
  const std::string failed_key = r0[1].config.cache_key();
  sh.tell(r0[0].trial_id, {{"score", 3.0}});
  sh.tell_failure(r0[1].trial_id);
  sh.tell(r0[2].trial_id, {{"score", 2.0}});
  sh.tell(r0[3].trial_id, {{"score", 1.0}});

  EXPECT_EQ(sh.rung(), 1u);
  std::set<std::string> survivors;
  while (auto p = sh.ask()) {
    EXPECT_DOUBLE_EQ(p->budget_fraction, 1.0);
    survivors.insert(p->config.cache_key());
    sh.tell(p->trial_id, {{"score", 1.0}});
  }
  // Halving keeps 2 of 4; the failed config scores -inf and is cut.
  EXPECT_EQ(survivors.size(), 2u);
  EXPECT_EQ(survivors.count(failed_key), 0u);
}

TEST(SuccessiveHalving, TellFailureCompletesEntirelyFailedSearch) {
  MetricDef objective{"score", "", Sense::Maximize};
  SuccessiveHalving sh(small_space(), objective, 4, 2.0, 0.5, 11);
  std::size_t proposals = 0;
  while (auto p = sh.ask()) {
    sh.tell_failure(p->trial_id);
    ++proposals;
  }
  // Every rung completes even though no trial ever produced a score.
  EXPECT_GE(proposals, 4u);
  EXPECT_FALSE(sh.ask().has_value());
}

TEST(SuccessiveHalving, ValidatesConstructionAndTells) {
  MetricDef objective{"score", "", Sense::Maximize};
  EXPECT_THROW(SuccessiveHalving(small_space(), objective, 1, 2.0, 0.5, 1),
               InvalidArgument);
  EXPECT_THROW(SuccessiveHalving(small_space(), objective, 4, 1.0, 0.5, 1),
               InvalidArgument);
  EXPECT_THROW(SuccessiveHalving(small_space(), objective, 4, 2.0, 0.0, 1),
               InvalidArgument);

  SuccessiveHalving sh(small_space(), objective, 2, 2.0, 0.5, 1);
  auto p = sh.ask();
  ASSERT_TRUE(p);
  EXPECT_THROW(sh.tell(p->trial_id, {{"wrong_metric", 1.0}}), InvalidArgument);
  EXPECT_THROW(sh.tell(9999, {{"score", 1.0}}), InvalidArgument);
}

// ------------------------------------------------------------------ TPE

ParamSpace mixed_space() {
  ParamSpace space;
  space.add(ParamDomain::categorical("arch", {"mlp", "cnn"},
                                     ParamCategory::Algorithm));
  space.add(ParamDomain::integer_set("depth", {1, 2, 3, 4},
                                     ParamCategory::Algorithm));
  space.add(ParamDomain::real_range("lr", 1e-4, 1e-1, /*log_scale=*/true,
                                    ParamCategory::Algorithm));
  return space;
}

/// Synthetic objective with a clear optimum: arch=cnn, depth=3, lr=1e-2.
double mixed_objective(const LearningConfiguration& c) {
  double score = c.get_categorical("arch") == "cnn" ? 1.0 : 0.0;
  const double d = static_cast<double>(c.get_integer("depth"));
  score -= 0.3 * (d - 3.0) * (d - 3.0);
  const double loglr = std::log10(c.get_real("lr") / 1e-2);
  score -= loglr * loglr;
  return score;
}

TEST(Tpe, ProposalsStayInsideTheSpace) {
  const ParamSpace space = mixed_space();
  TpeOptions opts;
  opts.n_trials = 20;
  opts.n_startup = 4;
  TpeSearch tpe(space, {"score", "", Sense::Maximize}, opts, 5);
  std::size_t count = 0;
  while (auto p = tpe.ask()) {
    EXPECT_NO_THROW(space.validate(p->config));
    EXPECT_DOUBLE_EQ(p->budget_fraction, 1.0);
    tpe.tell(p->trial_id, {{"score", mixed_objective(p->config)}});
    ++count;
  }
  EXPECT_EQ(count, 20u);
  EXPECT_EQ(tpe.observations(), 20u);
}

TEST(Tpe, BeatsRandomSearchOnStructuredObjective) {
  // Compare the mean best-found score over several seeds at equal budget.
  const ParamSpace space = mixed_space();
  const std::size_t budget = 40;
  double tpe_total = 0.0, random_total = 0.0;
  const int repeats = 5;
  for (int rep = 0; rep < repeats; ++rep) {
    TpeOptions opts;
    opts.n_trials = budget;
    opts.n_startup = 8;
    TpeSearch tpe(space, {"score", "", Sense::Maximize}, opts,
                  100 + static_cast<std::uint64_t>(rep));
    double best_tpe = -1e18;
    while (auto p = tpe.ask()) {
      const double s = mixed_objective(p->config);
      best_tpe = std::max(best_tpe, s);
      tpe.tell(p->trial_id, {{"score", s}});
    }
    RandomSearch rs(space, budget, 100 + static_cast<std::uint64_t>(rep));
    double best_rs = -1e18;
    while (auto p = rs.ask()) {
      const double s = mixed_objective(p->config);
      best_rs = std::max(best_rs, s);
      rs.tell(p->trial_id, {{"score", s}});
    }
    tpe_total += best_tpe;
    random_total += best_rs;
  }
  EXPECT_GT(tpe_total / repeats, random_total / repeats - 1e-9);
  // And TPE should come close to the optimum (score 1.0).
  EXPECT_GT(tpe_total / repeats, 0.7);
}

TEST(Tpe, MinimizeSenseInverts) {
  const ParamSpace space = mixed_space();
  TpeOptions opts;
  opts.n_trials = 30;
  opts.n_startup = 6;
  TpeSearch tpe(space, {"loss", "", Sense::Minimize}, opts, 11);
  double best = 1e18;
  while (auto p = tpe.ask()) {
    const double loss = -mixed_objective(p->config);
    best = std::min(best, loss);
    tpe.tell(p->trial_id, {{"loss", loss}});
  }
  EXPECT_LT(best, 0.0);  // found configurations better than score 0
}

TEST(Tpe, TellFailureDropsPendingTrialFromModel) {
  const ParamSpace space = mixed_space();
  TpeOptions opts;
  opts.n_trials = 12;
  opts.n_startup = 4;
  TpeSearch tpe(space, {"score", "", Sense::Maximize}, opts, 21);
  std::size_t proposed = 0, told = 0;
  while (auto p = tpe.ask()) {
    ++proposed;
    if (proposed % 3 == 0) {
      tpe.tell_failure(p->trial_id);  // failed trials never enter the model
    } else {
      tpe.tell(p->trial_id, {{"score", mixed_objective(p->config)}});
      ++told;
    }
  }
  // The ask budget is still spent on failed trials; only successful ones
  // become observations.
  EXPECT_EQ(proposed, 12u);
  EXPECT_EQ(tpe.observations(), told);
  EXPECT_THROW(tpe.tell_failure(9999), InvalidArgument);
}

TEST(Tpe, ValidatesProtocolAndConstruction) {
  const ParamSpace space = mixed_space();
  TpeOptions opts;
  EXPECT_THROW(TpeSearch(ParamSpace{}, {"s", "", Sense::Maximize}, opts, 1),
               InvalidArgument);
  opts.gamma = 1.5;
  EXPECT_THROW(TpeSearch(space, {"s", "", Sense::Maximize}, opts, 1),
               InvalidArgument);
  opts = TpeOptions{};
  TpeSearch tpe(space, {"s", "", Sense::Maximize}, opts, 1);
  EXPECT_THROW(tpe.tell(99, {{"s", 1.0}}), InvalidArgument);
  auto p = tpe.ask();
  ASSERT_TRUE(p);
  EXPECT_THROW(tpe.tell(p->trial_id, {{"other", 1.0}}), InvalidArgument);
}

}  // namespace
}  // namespace darl::core
