// Tests for the study runner and the report/persistence layer, using
// synthetic (cheap) case studies.

#include <gtest/gtest.h>

#include <sstream>

#include "darl/common/error.hpp"
#include "darl/core/report.hpp"
#include "darl/core/study.hpp"

namespace darl::core {
namespace {

/// Synthetic case study: two metrics computed analytically from the config.
CaseStudyDef synthetic_study() {
  CaseStudyDef def;
  def.name = "synthetic";
  def.space.add(ParamDomain::integer_set("x", {1, 2, 3}, ParamCategory::System));
  def.space.add(ParamDomain::categorical("mode", {"a", "b"},
                                         ParamCategory::Algorithm));
  def.metrics.add({"quality", "", Sense::Maximize});
  def.metrics.add({"cost", "s", Sense::Minimize});
  def.evaluate = [](const LearningConfiguration& c, double budget,
                    std::uint64_t seed) -> MetricValues {
    (void)seed;
    const double x = static_cast<double>(c.get_integer("x"));
    const double bonus = c.get_categorical("mode") == "a" ? 0.5 : 0.0;
    return {{"quality", (x + bonus) * budget}, {"cost", x * x}};
  };
  return def;
}

TEST(Study, RunsGridCampaignAndRecordsTrials) {
  Study study(synthetic_study(),
              std::make_unique<GridSearch>(synthetic_study().space, 3),
              {.seed = 1, .log_progress = false});
  study.run();
  EXPECT_EQ(study.trials().size(), 6u);
  for (const auto& t : study.trials()) {
    EXPECT_EQ(t.budget_fraction, 1.0);
    EXPECT_TRUE(t.metrics.count("quality"));
    EXPECT_TRUE(t.metrics.count("cost"));
  }
  const auto table = study.metric_table();
  EXPECT_EQ(table.size(), 6u);
  EXPECT_EQ(table[0].size(), 2u);
}

TEST(Study, ParallelExecutionMatchesSequentialResults) {
  const CaseStudyDef def = synthetic_study();
  Study seq(def, std::make_unique<GridSearch>(def.space, 3),
            {.seed = 9, .log_progress = false, .parallel_trials = 1});
  seq.run();
  Study par(def, std::make_unique<GridSearch>(def.space, 3),
            {.seed = 9, .log_progress = false, .parallel_trials = 4});
  par.run();

  ASSERT_EQ(seq.trials().size(), par.trials().size());
  for (std::size_t i = 0; i < seq.trials().size(); ++i) {
    EXPECT_EQ(seq.trials()[i].id, par.trials()[i].id);
    EXPECT_EQ(seq.trials()[i].config.cache_key(),
              par.trials()[i].config.cache_key());
    EXPECT_DOUBLE_EQ(seq.trials()[i].metrics.at("quality"),
                     par.trials()[i].metrics.at("quality"));
  }
}

TEST(Study, ParallelDeterminismAcrossWidths) {
  // Identical trial tables for parallel_trials = 1, 2 and 4: scheduling
  // must never leak into results.
  const CaseStudyDef def = synthetic_study();
  Study base(def, std::make_unique<GridSearch>(def.space, 3),
             {.seed = 4, .log_progress = false, .parallel_trials = 1});
  base.run();
  for (const std::size_t width : {2u, 4u}) {
    Study other(def, std::make_unique<GridSearch>(def.space, 3),
                {.seed = 4, .log_progress = false, .parallel_trials = width});
    other.run();
    ASSERT_EQ(base.trials().size(), other.trials().size());
    for (std::size_t i = 0; i < base.trials().size(); ++i) {
      EXPECT_EQ(base.trials()[i].id, other.trials()[i].id);
      EXPECT_EQ(base.trials()[i].config.cache_key(),
                other.trials()[i].config.cache_key());
      EXPECT_EQ(base.trials()[i].metrics.at("quality"),
                other.trials()[i].metrics.at("quality"));
      EXPECT_EQ(base.trials()[i].metrics.at("cost"),
                other.trials()[i].metrics.at("cost"));
    }
  }
}

TEST(Study, ParallelRespectsMaxTrials) {
  const CaseStudyDef def = synthetic_study();
  Study study(def, std::make_unique<GridSearch>(def.space, 3),
              {.seed = 9, .log_progress = false, .max_trials = 3,
               .parallel_trials = 8});
  study.run();
  EXPECT_EQ(study.trials().size(), 3u);
}

TEST(Study, ParallelWorksWithAdaptiveExplorers) {
  // Successive halving releases one rung at a time; the parallel driver
  // must not deadlock on the partial batches.
  const CaseStudyDef def = synthetic_study();
  auto sh = std::make_unique<SuccessiveHalving>(
      def.space, def.metrics.defs()[0], 4, 2.0, 0.5, 3);
  Study study(def, std::move(sh),
              {.seed = 2, .log_progress = false, .parallel_trials = 3});
  study.run();
  EXPECT_GE(study.trials().size(), 6u);  // 4 + 2 across rungs
}

TEST(Study, MaxTrialsCapsTheCampaign) {
  Study study(synthetic_study(),
              std::make_unique<GridSearch>(synthetic_study().space, 3),
              {.seed = 1, .log_progress = false, .max_trials = 2});
  study.run();
  EXPECT_EQ(study.trials().size(), 2u);
}

TEST(Study, ParetoTrialsOverMetricSubset) {
  Study study(synthetic_study(),
              std::make_unique<GridSearch>(synthetic_study().space, 3),
              {.seed = 1, .log_progress = false});
  study.run();
  // quality rises with x but cost rises quadratically: the front over
  // (quality, cost) contains the mode-a configs of every x (mode-b configs
  // are dominated by mode-a at equal x).
  const auto front = study.pareto_trials();
  for (std::size_t idx : front) {
    EXPECT_EQ(study.trials()[idx].config.get_categorical("mode"), "a");
  }
  EXPECT_EQ(front.size(), 3u);
  // Single-metric "front": only the best-quality trial(s).
  const auto best_quality = study.pareto_trials({"quality"});
  ASSERT_EQ(best_quality.size(), 1u);
  EXPECT_EQ(study.trials()[best_quality[0]].config.get_integer("x"), 3);
}

TEST(Study, ValidatesConstruction) {
  CaseStudyDef def = synthetic_study();
  def.evaluate = nullptr;
  EXPECT_THROW(Study(def, std::make_unique<GridSearch>(def.space, 3), {}),
               InvalidArgument);
}

TEST(Study, SuccessiveHalvingProducesPartialBudgetTrials) {
  CaseStudyDef def = synthetic_study();
  auto sh = std::make_unique<SuccessiveHalving>(
      def.space, def.metrics.defs()[0], 4, 2.0, 0.5, 3);
  Study study(def, std::move(sh), {.seed = 2, .log_progress = false});
  study.run();
  bool saw_partial = false, saw_full = false;
  for (const auto& t : study.trials()) {
    if (t.budget_fraction < 1.0) saw_partial = true;
    if (t.budget_fraction >= 1.0) saw_full = true;
  }
  EXPECT_TRUE(saw_partial);
  EXPECT_TRUE(saw_full);
  // full_budget_metric_table filters the partial trials out.
  std::vector<std::size_t> indices;
  const auto table = study.full_budget_metric_table(indices);
  EXPECT_EQ(table.size(), indices.size());
  for (std::size_t idx : indices) {
    EXPECT_GE(study.trials()[idx].budget_fraction, 1.0);
  }
}

TEST(Report, TrialTableContainsConfigsAndMetrics) {
  Study study(synthetic_study(),
              std::make_unique<GridSearch>(synthetic_study().space, 3),
              {.seed = 1, .log_progress = false});
  study.run();
  const std::string table =
      render_trial_table(study.definition(), study.trials());
  EXPECT_NE(table.find("quality"), std::string::npos);
  EXPECT_NE(table.find("cost (s)"), std::string::npos);
  EXPECT_NE(table.find("mode"), std::string::npos);
  // 1-based ids.
  EXPECT_NE(table.find("| 1 "), std::string::npos);
}

TEST(Report, ParetoPlotHighlightsFront) {
  Study study(synthetic_study(),
              std::make_unique<GridSearch>(synthetic_study().space, 3),
              {.seed = 1, .log_progress = false});
  study.run();
  std::vector<std::size_t> front_ids;
  const std::string plot =
      render_pareto_plot(study.definition(), study.trials(), "quality", "cost",
                         "demo", &front_ids);
  EXPECT_NE(plot.find('#'), std::string::npos);
  EXPECT_FALSE(front_ids.empty());
}

TEST(Report, CsvRoundTrip) {
  const CaseStudyDef def = synthetic_study();
  Study study(def, std::make_unique<GridSearch>(def.space, 3),
              {.seed = 1, .log_progress = false});
  study.run();

  std::stringstream buf;
  write_trials_csv(buf, def, study.trials());
  const auto loaded = load_trials_csv(buf, def);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), study.trials().size());
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    const TrialRecord& a = study.trials()[i];
    const TrialRecord& b = (*loaded)[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.config.cache_key(), b.config.cache_key());
    EXPECT_DOUBLE_EQ(a.metrics.at("quality"), b.metrics.at("quality"));
    EXPECT_DOUBLE_EQ(a.metrics.at("cost"), b.metrics.at("cost"));
  }
}

TEST(Report, CsvRoundTripIsBitExact) {
  // Metrics with non-terminating binary expansions must survive a
  // save->load cycle exactly: anything less flips low-order bits and can
  // flip downstream Pareto ties between a fresh and a cache-loaded run.
  CaseStudyDef def = synthetic_study();
  def.evaluate = [](const LearningConfiguration& c, double budget,
                    std::uint64_t seed) -> MetricValues {
    (void)seed;
    const double x = static_cast<double>(c.get_integer("x"));
    return {{"quality", (x / 3.0 + 0.1) * budget}, {"cost", x * 0.07}};
  };
  Study study(def, std::make_unique<GridSearch>(def.space, 3),
              {.seed = 1, .log_progress = false});
  study.run();

  std::stringstream buf;
  write_trials_csv(buf, def, study.trials());
  const auto loaded = load_trials_csv(buf, def);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), study.trials().size());
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    const TrialRecord& a = study.trials()[i];
    const TrialRecord& b = (*loaded)[i];
    // Exact equality, not near-equality: the cache must be lossless.
    EXPECT_EQ(a.budget_fraction, b.budget_fraction);
    EXPECT_EQ(a.metrics.at("quality"), b.metrics.at("quality"));
    EXPECT_EQ(a.metrics.at("cost"), b.metrics.at("cost"));
  }
}

TEST(Report, CampaignCacheRejectsMismatchedKey) {
  const CaseStudyDef def = synthetic_study();
  Study study(def, std::make_unique<GridSearch>(def.space, 3),
              {.seed = 1, .log_progress = false});
  study.run();

  std::vector<LearningConfiguration> configs;
  for (const auto& t : study.trials()) configs.push_back(t.config);
  const CampaignCacheKey key{1, config_list_digest(configs)};

  std::stringstream buf;
  write_campaign_cache(buf, def, study.trials(), key);
  const std::string cache_text = buf.str();

  // Matching key loads.
  {
    std::stringstream in(cache_text);
    const auto loaded = load_campaign_cache(in, def, key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->size(), study.trials().size());
  }
  // A different study seed must be treated as stale, not silently served.
  {
    std::stringstream in(cache_text);
    EXPECT_FALSE(
        load_campaign_cache(in, def, {2, key.config_digest}).has_value());
  }
  // A different configuration list must be stale too.
  {
    std::stringstream in(cache_text);
    const CampaignCacheKey other{1, config_list_digest({configs[0]})};
    EXPECT_FALSE(load_campaign_cache(in, def, other).has_value());
  }
  // A bare trials CSV (no meta line) is not a valid campaign cache.
  {
    std::stringstream plain;
    write_trials_csv(plain, def, study.trials());
    EXPECT_FALSE(load_campaign_cache(plain, def, key).has_value());
  }
}

TEST(Report, ConfigListDigestIsOrderAndContentSensitive) {
  const CaseStudyDef def = synthetic_study();
  LearningConfiguration a, b;
  a.set("x", std::int64_t{1});
  a.set("mode", std::string("a"));
  b.set("x", std::int64_t{2});
  b.set("mode", std::string("b"));
  EXPECT_EQ(config_list_digest({a, b}), config_list_digest({a, b}));
  EXPECT_NE(config_list_digest({a, b}), config_list_digest({b, a}));
  EXPECT_NE(config_list_digest({a}), config_list_digest({a, b}));
}

TEST(Report, MarkdownReportContainsAllSections) {
  const CaseStudyDef def = synthetic_study();
  Study study(def, std::make_unique<GridSearch>(def.space, 3),
              {.seed = 1, .log_progress = false});
  study.run();

  const std::string md = write_markdown_report(def, study.trials());
  EXPECT_NE(md.find("# Decision analysis: synthetic"), std::string::npos);
  EXPECT_NE(md.find("## Evaluated configurations"), std::string::npos);
  EXPECT_NE(md.find("## Trade-off: cost vs quality"), std::string::npos);
  EXPECT_NE(md.find("Non-dominated solutions:"), std::string::npos);
  EXPECT_NE(md.find("## Front stability"), std::string::npos);
  EXPECT_NE(md.find("**robust**"), std::string::npos);
  // One table row per trial (1-based ids).
  for (std::size_t i = 1; i <= study.trials().size(); ++i) {
    EXPECT_NE(md.find("|" + std::to_string(i) + "|"), std::string::npos);
  }
}

TEST(Report, MarkdownReportCustomFiguresAndNoStability) {
  const CaseStudyDef def = synthetic_study();
  Study study(def, std::make_unique<GridSearch>(def.space, 3),
              {.seed = 1, .log_progress = false});
  study.run();
  MarkdownReportOptions opts;
  opts.include_stability = false;
  opts.figures = {{"quality", "cost"}};
  const std::string md = write_markdown_report(def, study.trials(), opts);
  EXPECT_EQ(md.find("## Front stability"), std::string::npos);
  EXPECT_NE(md.find("## Trade-off: cost vs quality"), std::string::npos);
}

TEST(Report, LoadRejectsMismatchedHeader) {
  const CaseStudyDef def = synthetic_study();
  std::stringstream buf("id,oops\n1,2\n");
  EXPECT_FALSE(load_trials_csv(buf, def).has_value());
  std::stringstream empty;
  EXPECT_FALSE(load_trials_csv(empty, def).has_value());
}

TEST(Report, ParseConfigurationTypesValues) {
  const CaseStudyDef def = synthetic_study();
  const LearningConfiguration c =
      parse_configuration(def.space, "mode=b, x=2");
  EXPECT_EQ(c.get_categorical("mode"), "b");
  EXPECT_EQ(c.get_integer("x"), 2);
  EXPECT_THROW(parse_configuration(def.space, "garbage"), InvalidArgument);
}

}  // namespace
}  // namespace darl::core
