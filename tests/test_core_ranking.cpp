// Tests for the ranking stage: Pareto ranking, weighted-sum scalarization
// and single-metric sorted arrays.

#include <gtest/gtest.h>

#include <cmath>

#include "darl/common/error.hpp"
#include "darl/core/ranking.hpp"

namespace darl::core {
namespace {

MetricSet paper_like_metrics() { return MetricSet::paper_metrics(); }

// Reward (max), time (min), power (min).
const std::vector<std::vector<double>> kPoints{
    {-0.65, 46.0, 201.0},  // 0: fastest
    {-0.55, 49.0, 201.0},  // 1
    {-0.60, 49.0, 120.0},  // 2: frugal
    {-0.45, 65.0, 166.0},  // 3: best reward
    {-0.73, 55.0, 210.0},  // 4: dominated by 0? time 46<55, reward -0.65>-0.73, power 201<210 -> yes
};

TEST(MetricSet, PaperMetricsShape) {
  const MetricSet m = paper_like_metrics();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.defs()[0].name, "Reward");
  EXPECT_EQ(m.defs()[0].sense, Sense::Maximize);
  EXPECT_EQ(m.defs()[1].sense, Sense::Minimize);
  EXPECT_TRUE(m.has("PowerConsumption"));
  EXPECT_THROW(m.def("nope"), InvalidArgument);
  EXPECT_STREQ(sense_name(Sense::Maximize), "maximize");
}

TEST(MetricSet, ExtractValidates) {
  const MetricSet m = paper_like_metrics();
  MetricValues v{{"Reward", -0.5},
                 {"ComputationTime", 46.0},
                 {"PowerConsumption", 200.0}};
  const auto row = m.extract(v);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], -0.5);
  v.erase("Reward");
  EXPECT_THROW(m.extract(v), InvalidArgument);
  v["Reward"] = std::nan("");
  EXPECT_THROW(m.extract(v), InvalidArgument);

  MetricSet dup;
  dup.add({"x", "", Sense::Maximize});
  EXPECT_THROW(dup.add({"x", "", Sense::Minimize}), InvalidArgument);
}

TEST(ParetoRanking, FrontIsRankZero) {
  ParetoRanking ranking;
  const auto ranked = ranking.rank(paper_like_metrics(), kPoints);
  ASSERT_EQ(ranked.size(), kPoints.size());
  // Point 4 is dominated by point 0 on all three metrics.
  for (const auto& r : ranked) {
    if (r.trial_index == 4) {
      EXPECT_GT(r.rank, 0u);
      EXPECT_FALSE(r.pareto_optimal);
    }
    if (r.trial_index == 0 || r.trial_index == 2 || r.trial_index == 3) {
      EXPECT_EQ(r.rank, 0u);
      EXPECT_TRUE(r.pareto_optimal);
    }
  }
  // Output is sorted best-first (rank non-decreasing).
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i].rank, ranked[i - 1].rank);
  }
}

TEST(WeightedSumRanking, UniformWeightsOrdering) {
  WeightedSumRanking ranking;
  const auto ranked = ranking.rank(paper_like_metrics(), kPoints);
  ASSERT_EQ(ranked.size(), kPoints.size());
  // Scores are sorted descending and lie in [0, 1].
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i].score, 0.0);
    EXPECT_LE(ranked[i].score, 1.0);
    if (i > 0) {
      EXPECT_LE(ranked[i].score, ranked[i - 1].score);
    }
    EXPECT_EQ(ranked[i].rank, i);
  }
  // The all-around-dominated point 4 must be last.
  EXPECT_EQ(ranked.back().trial_index, 4u);
}

TEST(WeightedSumRanking, CustomWeightsFavorChosenMetric) {
  // All weight on reward: the best-reward trial (3) wins.
  WeightedSumRanking ranking({1.0, 0.0, 0.0});
  const auto ranked = ranking.rank(paper_like_metrics(), kPoints);
  EXPECT_EQ(ranked.front().trial_index, 3u);
  WeightedSumRanking bad({1.0, 0.0});
  EXPECT_THROW(bad.rank(paper_like_metrics(), kPoints), InvalidArgument);
}

TEST(SingleMetricRanking, SortsByDeclaredSense) {
  SingleMetricRanking by_time("ComputationTime");
  const auto ranked = by_time.rank(paper_like_metrics(), kPoints);
  EXPECT_EQ(ranked.front().trial_index, 0u);  // 46 minutes
  EXPECT_EQ(ranked.back().trial_index, 3u);   // 65 minutes

  SingleMetricRanking by_reward("Reward");
  const auto r2 = by_reward.rank(paper_like_metrics(), kPoints);
  EXPECT_EQ(r2.front().trial_index, 3u);  // -0.45 best
  EXPECT_EQ(r2.back().trial_index, 4u);   // -0.73 worst
  EXPECT_EQ(by_reward.name(), "SortedBy(Reward)");

  SingleMetricRanking unknown("nope");
  EXPECT_THROW(unknown.rank(paper_like_metrics(), kPoints), InvalidArgument);
}

}  // namespace
}  // namespace darl::core
