// tests/test_net.cpp — the socket transport and the multi-process
// actor–learner runtime: endpoint parsing, frame integrity over a real
// socketpair (round-trips, truncation, digest mismatch, fragmentation,
// connection reset mid-message), the wire codec for every message type,
// the bounded queue, the parameter-server ring, and the acceptance bar —
// a loopback 2-actor training run whose TrainResult matches the
// in-process backend bit for bit (DESIGN.md §17).

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "darl/airdrop/airdrop_env.hpp"
#include "darl/airdrop/spec.hpp"
#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/frameworks/backend.hpp"
#include "darl/frameworks/distributed.hpp"
#include "darl/net/frame.hpp"
#include "darl/net/param_server.hpp"
#include "darl/net/queue.hpp"
#include "darl/net/socket.hpp"
#include "darl/net/wire.hpp"
#include "darl/rl/checkpoint.hpp"
#include "darl/rl/factory.hpp"

namespace {

using namespace darl;

/// A connected AF_UNIX stream pair wrapped in OwnedFds.
struct FdPair {
  net::OwnedFd a, b;
  FdPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a.reset(fds[0]);
    b.reset(fds[1]);
  }
};

std::string unique_sock_path(const char* tag) {
  return "/tmp/darl_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// ---------------------------------------------------------------------------
// Endpoint

TEST(NetEndpoint, ParsesAndRoundTrips) {
  const net::Endpoint tcp = net::Endpoint::parse("tcp:8080");
  EXPECT_EQ(tcp.kind, net::Endpoint::Kind::Tcp);
  EXPECT_EQ(tcp.port, 8080);
  EXPECT_EQ(tcp.str(), "tcp:8080");

  const net::Endpoint ux = net::Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(ux.kind, net::Endpoint::Kind::Unix);
  EXPECT_EQ(ux.path, "/tmp/x.sock");
  EXPECT_EQ(ux.str(), "unix:/tmp/x.sock");
}

TEST(NetEndpoint, RejectsMalformed) {
  EXPECT_THROW(net::Endpoint::parse("http:80"), InvalidArgument);
  EXPECT_THROW(net::Endpoint::parse("tcp:notaport"), InvalidArgument);
  EXPECT_THROW(net::Endpoint::parse("tcp:-1"), InvalidArgument);
  EXPECT_THROW(net::Endpoint::parse("unix:"), InvalidArgument);
  EXPECT_THROW(net::Endpoint::parse(""), InvalidArgument);
}

TEST(NetSocket, ConnectDeadlineLapsesAgainstDeadPort) {
  // A Unix path nobody listens on: connect retries until the deadline,
  // then throws NetError (never hangs).
  const net::Endpoint ep = net::Endpoint::parse("unix:/tmp/darl_nobody.sock");
  EXPECT_THROW(net::connect_endpoint(ep, /*deadline_s=*/0.2), net::NetError);
}

TEST(NetSocket, ListenerResolvesEphemeralPortAndAccepts) {
  net::Listener listener =
      net::listen_endpoint(net::Endpoint::parse("tcp:0"));
  ASSERT_TRUE(listener.valid());
  EXPECT_GT(listener.endpoint().port, 0);

  net::OwnedFd client =
      net::connect_endpoint(listener.endpoint(), /*deadline_s=*/5.0);
  ASSERT_TRUE(client.valid());
  net::OwnedFd server = net::accept_retry(listener.fd());
  ASSERT_TRUE(server.valid());

  ASSERT_EQ(net::send_all(client.get(), "ping").status, net::IoStatus::Ok);
  char buf[4];
  const net::IoResult got = net::recv_exact(server.get(), buf, 4);
  ASSERT_EQ(got.status, net::IoStatus::Ok);
  EXPECT_EQ(std::string(buf, 4), "ping");
}

// ---------------------------------------------------------------------------
// Frames

TEST(NetFrame, RoundTripsOverSocketpair) {
  FdPair p;
  const std::string payload = "hello frame \x01\x00\xff payload";
  net::write_frame(p.a.get(), 42, payload);

  net::Frame frame;
  ASSERT_TRUE(net::read_frame(p.b.get(), frame));
  EXPECT_EQ(frame.type, 42u);
  EXPECT_EQ(frame.payload, payload);

  // Clean EOF at a frame boundary is a false return, not an error.
  p.a.reset();
  EXPECT_FALSE(net::read_frame(p.b.get(), frame));
}

TEST(NetFrame, OneBytePerSendStillDecodes) {
  // A pathologically fragmenting sender: the reader's partial-read loops
  // must reassemble the frame regardless of segmentation.
  FdPair p;
  const std::string payload(300, 'z');
  unsigned char header[net::kFrameHeaderBytes];
  net::encode_frame_header(7, payload, header);
  std::string wire(reinterpret_cast<const char*>(header), sizeof(header));
  wire += payload;

  std::thread sender([&] {
    for (const char c : wire) {
      ASSERT_EQ(net::send_all(p.a.get(), &c, 1).status, net::IoStatus::Ok);
    }
    p.a.reset();
  });
  net::Frame frame;
  ASSERT_TRUE(net::read_frame(p.b.get(), frame));
  sender.join();
  EXPECT_EQ(frame.type, 7u);
  EXPECT_EQ(frame.payload, payload);
}

TEST(NetFrame, TruncatedPayloadIsTypedError) {
  FdPair p;
  const std::string payload = "will be cut short";
  unsigned char header[net::kFrameHeaderBytes];
  net::encode_frame_header(3, payload, header);
  ASSERT_EQ(net::send_all(p.a.get(), header, sizeof(header)).status,
            net::IoStatus::Ok);
  ASSERT_EQ(net::send_all(p.a.get(), payload.data(), 5).status,
            net::IoStatus::Ok);
  p.a.reset();  // EOF mid-payload

  net::Frame frame;
  try {
    net::read_frame(p.b.get(), frame);
    FAIL() << "expected FrameError";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.kind(), net::FrameError::Kind::Truncated);
  }
}

TEST(NetFrame, TruncatedHeaderIsTypedError) {
  FdPair p;
  unsigned char header[net::kFrameHeaderBytes];
  net::encode_frame_header(3, "x", header);
  ASSERT_EQ(net::send_all(p.a.get(), header, 10).status, net::IoStatus::Ok);
  p.a.reset();  // EOF mid-header

  net::Frame frame;
  try {
    net::read_frame(p.b.get(), frame);
    FAIL() << "expected FrameError";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.kind(), net::FrameError::Kind::Truncated);
  }
}

TEST(NetFrame, CorruptedPayloadFailsDigest) {
  FdPair p;
  const std::string payload = "checksummed content";
  unsigned char header[net::kFrameHeaderBytes];
  net::encode_frame_header(3, payload, header);
  std::string corrupted = payload;
  corrupted[4] ^= 0x20;  // same length, one flipped bit
  ASSERT_EQ(net::send_all(p.a.get(), header, sizeof(header)).status,
            net::IoStatus::Ok);
  ASSERT_EQ(net::send_all(p.a.get(), corrupted).status, net::IoStatus::Ok);

  net::Frame frame;
  try {
    net::read_frame(p.b.get(), frame);
    FAIL() << "expected FrameError";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.kind(), net::FrameError::Kind::BadDigest);
  }
}

TEST(NetFrame, BadMagicRejected) {
  FdPair p;
  unsigned char header[net::kFrameHeaderBytes];
  net::encode_frame_header(3, "x", header);
  header[0] ^= 0xff;
  ASSERT_EQ(net::send_all(p.a.get(), header, sizeof(header)).status,
            net::IoStatus::Ok);

  net::Frame frame;
  try {
    net::read_frame(p.b.get(), frame);
    FAIL() << "expected FrameError";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.kind(), net::FrameError::Kind::BadMagic);
  }
}

TEST(NetFrame, OversizedLengthRejectedWithoutAllocating) {
  FdPair p;
  // Hand-build a header whose length field exceeds kMaxFramePayload.
  unsigned char header[net::kFrameHeaderBytes];
  net::encode_frame_header(3, "", header);
  const std::uint64_t huge = net::kMaxFramePayload + 1;
  for (int i = 0; i < 8; ++i)
    header[8 + i] = static_cast<unsigned char>((huge >> (8 * i)) & 0xff);
  ASSERT_EQ(net::send_all(p.a.get(), header, sizeof(header)).status,
            net::IoStatus::Ok);

  net::Frame frame;
  try {
    net::read_frame(p.b.get(), frame);
    FAIL() << "expected FrameError";
  } catch (const net::FrameError& e) {
    EXPECT_EQ(e.kind(), net::FrameError::Kind::TooLarge);
  }
}

TEST(NetFrame, ConnectionResetMidMessageIsErrorNotSignal) {
  // Regression for the SIGPIPE/EINTR satellite: the peer disappears with
  // an abortive close (RST) while we are mid-conversation. Every further
  // write must surface as FrameError — the process must not die on
  // SIGPIPE (all sends use MSG_NOSIGNAL).
  net::Listener listener =
      net::listen_endpoint(net::Endpoint::parse("tcp:0"));
  net::OwnedFd client =
      net::connect_endpoint(listener.endpoint(), /*deadline_s=*/5.0);
  net::OwnedFd server = net::accept_retry(listener.fd());
  ASSERT_TRUE(server.valid());

  // Abortive close: RST instead of FIN.
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ASSERT_EQ(::setsockopt(server.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg)),
            0);
  server.reset();

  // Large payloads force the kernel buffer past the reset; at least one
  // write_frame must fail (and none may raise SIGPIPE).
  const std::string payload(1 << 20, 'r');
  bool failed = false;
  for (int i = 0; i < 8 && !failed; ++i) {
    try {
      net::write_frame(client.get(), 1, payload);
    } catch (const net::FrameError& e) {
      EXPECT_TRUE(e.kind() == net::FrameError::Kind::Io ||
                  e.kind() == net::FrameError::Kind::TimedOut);
      failed = true;
    }
  }
  EXPECT_TRUE(failed);
}

// ---------------------------------------------------------------------------
// Wire codec

TEST(NetWire, HelloJobByeRoundTrip) {
  net::HelloMsg hello;
  hello.node = 3;
  const net::HelloMsg hello2 = net::decode_hello(net::encode_hello(hello));
  EXPECT_EQ(hello2.node, 3u);
  EXPECT_EQ(hello2.protocol, net::kProtocolVersion);

  net::JobMsg job;
  job.algo = rl::AlgoKind::SAC;
  job.hidden = {32, 16};
  job.seed = 0xDEADBEEFCAFEull;
  job.node = 2;
  job.nodes = 4;
  job.cores = 8;
  job.per_worker = 128;
  job.obs_dim = 7;
  job.action_dim = 2;
  job.env_spec = "airdrop-v1\nsome multi-line\nopaque spec\n";
  const net::JobMsg job2 = net::decode_job(net::encode_job(job));
  EXPECT_EQ(job2.algo, rl::AlgoKind::SAC);
  EXPECT_EQ(job2.hidden, (std::vector<std::size_t>{32, 16}));
  EXPECT_EQ(job2.seed, job.seed);
  EXPECT_EQ(job2.node, 2u);
  EXPECT_EQ(job2.nodes, 4u);
  EXPECT_EQ(job2.cores, 8u);
  EXPECT_EQ(job2.per_worker, 128u);
  EXPECT_EQ(job2.obs_dim, 7u);
  EXPECT_EQ(job2.action_dim, 2u);
  EXPECT_EQ(job2.env_spec, job.env_spec);

  net::ByeMsg bye;
  bye.node = 9;
  EXPECT_EQ(net::decode_bye(net::encode_bye(bye)).node, 9u);
}

TEST(NetWire, ProtocolMismatchRejected) {
  net::HelloMsg hello;
  hello.protocol = net::kProtocolVersion + 1;
  EXPECT_THROW(net::decode_hello(net::encode_hello(hello)), net::WireError);
}

TEST(NetWire, WeightsRoundTripBitwise) {
  // The checkpoint text must survive embedding verbatim (it contains
  // newlines and its own digest footer).
  rl::Checkpoint ck;
  ck.kind = rl::AlgoKind::PPO;
  ck.obs_dim = 3;
  ck.action_dim = 1;
  ck.params = Vec{0.1, -2.0 / 3.0, 1e-300, std::numeric_limits<double>::min()};
  std::ostringstream os;
  rl::save_checkpoint(os, ck);

  net::WeightsMsg w;
  w.version = 17;
  w.checkpoint = os.str();
  const net::WeightsMsg w2 = net::decode_weights(net::encode_weights(w));
  EXPECT_EQ(w2.version, 17u);
  ASSERT_EQ(w2.checkpoint, w.checkpoint);

  std::istringstream is(w2.checkpoint);
  const rl::Checkpoint ck2 = rl::load_checkpoint(is);
  ASSERT_EQ(ck2.params.size(), ck.params.size());
  for (std::size_t i = 0; i < ck.params.size(); ++i)
    EXPECT_EQ(ck2.params[i], ck.params[i]);  // bitwise, not approx
}

TEST(NetWire, BatchRoundTripBitwise) {
  net::BatchMsg b;
  b.worker = 5;
  b.version = 3;
  b.env_cost_units = 1234.5678901234567;
  b.inferences = 77;
  b.steps = 64;
  b.episodes.push_back({-1.0 / 3.0, 0.987654321987654, 321});
  b.episodes.push_back({2.5, -0.125, 7});
  for (int i = 0; i < 3; ++i) {
    rl::Transition t;
    t.obs = Vec{0.1 * i, -1.0 / (i + 1), 3.14159265358979};
    t.action = Vec{static_cast<double>(i % 2)};
    t.next_obs = Vec{0.2 * i, 1e-17, -2.718281828459045};
    t.reward = -0.001 * i + 1.0 / 7.0;
    t.log_prob = -1.0986122886681098;
    t.terminated = (i == 2);
    t.truncated = (i == 1);
    b.transitions.push_back(t);
  }

  const net::BatchMsg b2 = net::decode_batch_msg(net::encode_batch_msg(b));
  EXPECT_EQ(b2.worker, 5u);
  EXPECT_EQ(b2.version, 3u);
  EXPECT_EQ(b2.env_cost_units, b.env_cost_units);
  EXPECT_EQ(b2.inferences, 77u);
  EXPECT_EQ(b2.steps, 64u);
  ASSERT_EQ(b2.episodes.size(), 2u);
  EXPECT_EQ(b2.episodes[0].total_reward, b.episodes[0].total_reward);
  EXPECT_EQ(b2.episodes[0].score, b.episodes[0].score);
  EXPECT_EQ(b2.episodes[0].length, 321u);
  ASSERT_EQ(b2.transitions.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& x = b.transitions[i];
    const auto& y = b2.transitions[i];
    ASSERT_EQ(y.obs.size(), x.obs.size());
    for (std::size_t k = 0; k < x.obs.size(); ++k) EXPECT_EQ(y.obs[k], x.obs[k]);
    for (std::size_t k = 0; k < x.next_obs.size(); ++k)
      EXPECT_EQ(y.next_obs[k], x.next_obs[k]);
    EXPECT_EQ(y.action[0], x.action[0]);
    EXPECT_EQ(y.reward, x.reward);
    EXPECT_EQ(y.log_prob, x.log_prob);
    EXPECT_EQ(y.terminated, x.terminated);
    EXPECT_EQ(y.truncated, x.truncated);
  }
}

TEST(NetWire, EveryMessageTypeOverASocketpair) {
  FdPair p;
  net::MsgChannel tx(std::move(p.a));
  net::MsgChannel rx(std::move(p.b));

  net::HelloMsg hello;
  hello.node = 1;
  tx.send(net::MsgType::Hello, net::encode_hello(hello));
  net::JobMsg job;
  job.env_spec = "spec";
  tx.send(net::MsgType::Job, net::encode_job(job));
  net::WeightsMsg weights;
  weights.version = 2;
  weights.checkpoint = "not parsed here";
  tx.send(net::MsgType::Weights, net::encode_weights(weights));
  net::BatchMsg batch;
  batch.worker = 4;
  tx.send(net::MsgType::Batch, net::encode_batch_msg(batch));
  tx.send(net::MsgType::Stop, std::string());
  net::ByeMsg bye;
  bye.node = 1;
  tx.send(net::MsgType::Bye, net::encode_bye(bye));

  EXPECT_EQ(net::decode_hello(rx.expect(net::MsgType::Hello)).node, 1u);
  EXPECT_EQ(net::decode_job(rx.expect(net::MsgType::Job)).env_spec, "spec");
  EXPECT_EQ(net::decode_weights(rx.expect(net::MsgType::Weights)).version, 2u);
  EXPECT_EQ(net::decode_batch_msg(rx.expect(net::MsgType::Batch)).worker, 4u);
  rx.expect(net::MsgType::Stop);
  EXPECT_EQ(net::decode_bye(rx.expect(net::MsgType::Bye)).node, 1u);

  // expect() on a mismatched type is a WireError.
  tx.send(net::MsgType::Hello, net::encode_hello(hello));
  EXPECT_THROW(rx.expect(net::MsgType::Batch), net::WireError);
}

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(NetQueue, BackpressureAndClose) {
  net::BoundedQueue<int> q(2);
  EXPECT_EQ(q.push(1), net::QueueOutcome::Ok);
  EXPECT_EQ(q.push(2), net::QueueOutcome::Ok);
  EXPECT_EQ(q.push(3, /*timeout_s=*/0.05), net::QueueOutcome::TimedOut);

  int v = 0;
  EXPECT_EQ(q.pop(v), net::QueueOutcome::Ok);
  EXPECT_EQ(v, 1);
  EXPECT_EQ(q.push(3), net::QueueOutcome::Ok);  // room again

  q.close();
  EXPECT_EQ(q.push(4), net::QueueOutcome::Closed);
  // Items queued before close still drain, in order.
  EXPECT_EQ(q.pop(v), net::QueueOutcome::Ok);
  EXPECT_EQ(v, 2);
  EXPECT_EQ(q.pop(v), net::QueueOutcome::Ok);
  EXPECT_EQ(v, 3);
  EXPECT_EQ(q.pop(v), net::QueueOutcome::Closed);
}

TEST(NetQueue, BlockedPopWakesOnPush) {
  net::BoundedQueue<int> q(1);
  std::thread producer([&] { q.push(42); });
  int v = 0;
  EXPECT_EQ(q.pop(v), net::QueueOutcome::Ok);
  EXPECT_EQ(v, 42);
  producer.join();
}

// ---------------------------------------------------------------------------
// ParamServer

TEST(NetParamServer, PublishesVersionedCheckpointsThroughTheStore) {
  const env::ActionSpace space{env::DiscreteSpace(3)};
  rl::AlgorithmSpec spec;
  auto algo = rl::make_algorithm(spec, /*obs_dim=*/4, space, /*seed=*/9);

  net::ParamServer ps(rl::AlgoKind::PPO, 4, space.action_dim(), space,
                      spec.ppo.hidden);
  const Vec v0 = algo->policy_params();
  EXPECT_EQ(ps.publish(v0), 0u);
  Vec v1 = v0;
  v1[0] += 1.0;
  EXPECT_EQ(ps.publish(v1), 1u);
  EXPECT_EQ(ps.latest_version(), 1u);

  // Shipped text loads back to the exact published parameters.
  std::istringstream is(ps.checkpoint_text(0));
  const rl::Checkpoint ck = rl::load_checkpoint(is);
  ASSERT_EQ(ck.params.size(), v0.size());
  for (std::size_t i = 0; i < v0.size(); ++i) EXPECT_EQ(ck.params[i], v0[i]);

  // The store's hot-swap chain tracks the newest publication
  // (store versions are logical + 1).
  const auto handle = ps.store().current(net::ParamServer::kTenant);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->id, 2u);

  // Old versions fall off the retention ring.
  for (std::uint64_t k = 2; k < 2 + net::ParamServer::kRetainedVersions; ++k) {
    v1[0] += 1.0;
    ps.publish(v1);
  }
  EXPECT_THROW(ps.checkpoint_text(0), Error);
  EXPECT_NO_THROW(ps.checkpoint_text(ps.latest_version()));
}

// ---------------------------------------------------------------------------
// The acceptance bar: loopback multi-process run == in-process run, bitwise.

frameworks::TrainRequest tiny_rllib_request(std::size_t nodes) {
  airdrop::AirdropConfig cfg;
  cfg.wind_enabled = false;
  cfg.gusts_enabled = false;
  cfg.altitude_min = 30.0;
  cfg.altitude_max = 300.0;

  frameworks::TrainRequest req;
  req.env_factory = airdrop::make_airdrop_factory(cfg);
  req.env_spec = airdrop::encode_airdrop_spec(cfg);
  req.algo.kind = rl::AlgoKind::PPO;
  req.deployment.nodes = nodes;
  req.deployment.cores_per_node = 2;
  req.total_timesteps = 1536;
  req.train_batch_total = 512;
  req.eval_episodes = 10;
  req.seed = 1234;
  return req;
}

TEST(NetDistributed, LoopbackRunMatchesInProcessBitwise) {
  const frameworks::TrainRequest req = tiny_rllib_request(/*nodes=*/3);

  frameworks::RllibBackend in_process;
  const frameworks::TrainResult want = in_process.run(req);

  // Actors on threads (spawn_actors = false): same runtime code as the
  // separate-process path — run_actor is exactly darl_worker's actor
  // role — without forking from a gtest process.
  const std::string sock = unique_sock_path("dist");
  frameworks::DistributedOptions opts;
  opts.enabled = true;
  opts.endpoint = "unix:" + sock;
  opts.spawn_actors = false;
  opts.connect_timeout_s = 30.0;

  std::vector<std::thread> actors;
  for (std::size_t node = 1; node < req.deployment.nodes; ++node) {
    actors.emplace_back([&, node] {
      frameworks::run_actor(opts.endpoint, node,
                            airdrop::airdrop_factory_from_spec);
    });
  }
  frameworks::DistributedRllibBackend distributed(opts);
  const frameworks::TrainResult got = distributed.run(req);
  for (auto& t : actors) t.join();

  // The paper metrics and everything feeding campaign CSVs must be
  // bit-identical (EXPECT_EQ on doubles is deliberate).
  EXPECT_EQ(got.reward, want.reward);
  EXPECT_EQ(got.reward_stddev, want.reward_stddev);
  EXPECT_EQ(got.sim_seconds, want.sim_seconds);
  EXPECT_EQ(got.sim_energy_joules, want.sim_energy_joules);
  EXPECT_EQ(got.train_reward, want.train_reward);
  EXPECT_EQ(got.net_staleness, want.net_staleness);
  EXPECT_EQ(got.timesteps, want.timesteps);
  EXPECT_EQ(got.episodes, want.episodes);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.final_policy_loss, want.final_policy_loss);
  EXPECT_EQ(got.final_value_loss, want.final_value_loss);
  EXPECT_EQ(got.final_entropy, want.final_entropy);
  ASSERT_EQ(got.final_policy.size(), want.final_policy.size());
  for (std::size_t i = 0; i < want.final_policy.size(); ++i)
    EXPECT_EQ(got.final_policy[i], want.final_policy[i]);

  // The asynchronous pipeline is actually exercised: staleness > 0.
  EXPECT_GT(got.net_staleness, 0.0);
}

TEST(NetDistributed, MissingActorSurfacesAsTimeoutNotHang) {
  frameworks::TrainRequest req = tiny_rllib_request(/*nodes=*/2);
  frameworks::DistributedOptions opts;
  opts.enabled = true;
  opts.endpoint = "unix:" + unique_sock_path("noactor");
  opts.spawn_actors = false;       // and nobody else connects
  opts.connect_timeout_s = 0.3;
  frameworks::DistributedRllibBackend backend(opts);
  EXPECT_THROW(backend.run(req), net::NetError);
}

TEST(NetDistributed, SingleNodeJobsAreRejected) {
  frameworks::TrainRequest req = tiny_rllib_request(/*nodes=*/1);
  frameworks::DistributedOptions opts;
  opts.enabled = true;
  frameworks::DistributedRllibBackend backend(opts);
  EXPECT_THROW(backend.run(req), Error);
}

TEST(NetDistributed, EmptyEnvSpecIsRejected) {
  frameworks::TrainRequest req = tiny_rllib_request(/*nodes=*/2);
  req.env_spec.clear();
  frameworks::DistributedOptions opts;
  opts.enabled = true;
  frameworks::DistributedRllibBackend backend(opts);
  EXPECT_THROW(backend.run(req), Error);
}

// ---------------------------------------------------------------------------
// Airdrop env-spec codec (the resolver the worker binary registers).

TEST(AirdropSpec, RoundTripsConfig) {
  airdrop::AirdropConfig cfg;
  cfg.wind_enabled = true;
  cfg.gusts_enabled = false;
  cfg.altitude_min = 42.5;
  cfg.altitude_max = 123.75;
  cfg.rk_order = ode::RkOrder::Order8;
  cfg.action_mode = airdrop::ActionMode::Continuous;

  const std::string spec = airdrop::encode_airdrop_spec(cfg);
  EXPECT_TRUE(airdrop::is_airdrop_spec(spec));
  EXPECT_FALSE(airdrop::is_airdrop_spec("something-else"));

  const airdrop::AirdropConfig back = airdrop::decode_airdrop_spec(spec);
  EXPECT_EQ(back.wind_enabled, cfg.wind_enabled);
  EXPECT_EQ(back.gusts_enabled, cfg.gusts_enabled);
  EXPECT_EQ(back.altitude_min, cfg.altitude_min);
  EXPECT_EQ(back.altitude_max, cfg.altitude_max);
  EXPECT_EQ(back.rk_order, cfg.rk_order);
  EXPECT_EQ(back.action_mode, cfg.action_mode);

  EXPECT_THROW(airdrop::decode_airdrop_spec("garbage"), InvalidArgument);

  // The factory builds an identically-behaving environment.
  env::EnvFactory factory = airdrop::airdrop_factory_from_spec(spec);
  auto a = factory();
  auto b = airdrop::make_airdrop_factory(cfg)();
  a->seed(99);
  b->seed(99);
  const Vec oa = a->reset();
  const Vec ob = b->reset();
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) EXPECT_EQ(oa[i], ob[i]);
}

}  // namespace
