// Learning-quality tests: the algorithms must actually improve policies.
// Budgets are kept small; thresholds are lenient but meaningful (clearly
// above random-policy performance).

#include <gtest/gtest.h>

#include "darl/common/log.hpp"
#include "darl/common/rng.hpp"
#include "darl/env/cartpole.hpp"
#include "darl/env/gridworld.hpp"
#include "darl/env/pendulum.hpp"
#include "darl/rl/evaluate.hpp"
#include "darl/rl/factory.hpp"

namespace darl::rl {
namespace {

/// Single-worker collect loop feeding an algorithm, mirroring what the
/// framework backends do (without the cluster accounting).
double train_and_eval(Algorithm& algo, const env::EnvFactory& factory,
                      std::size_t iterations, std::size_t steps_per_iter,
                      std::size_t eval_episodes, std::uint64_t seed) {
  auto env = factory();
  env->seed(seed);
  auto actor = algo.make_actor();
  Rng rng(seed);
  Vec obs = env->reset();

  for (std::size_t it = 0; it < iterations; ++it) {
    actor->set_params(algo.policy_params());
    WorkerBatch batch;
    for (std::size_t i = 0; i < steps_per_iter; ++i) {
      const ActOutput a = actor->act(obs, rng);
      const env::StepResult r = env->step(a.action);
      Transition t;
      t.obs = obs;
      t.action = a.action;
      t.reward = r.reward;
      t.next_obs = r.observation;
      t.terminated = r.terminated;
      t.truncated = r.truncated;
      t.log_prob = a.log_prob;
      batch.transitions.push_back(std::move(t));
      obs = r.done() ? env->reset() : r.observation;
    }
    algo.train({batch});
  }

  auto eval_env = factory();
  eval_env->seed(seed + 1000);
  auto eval_actor = algo.make_actor();
  eval_actor->set_params(algo.policy_params());
  Rng eval_rng(seed + 1);
  return evaluate_policy(*eval_actor, *eval_env, eval_episodes, eval_rng,
                         /*stochastic=*/false)
      .mean_total_reward;
}

TEST(PpoLearning, SolvesMostOfCartPole) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::PPO;
  spec.ppo.epochs = 6;
  spec.ppo.minibatch_size = 64;
  auto algo =
      make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 21);

  const auto factory = env::make_cartpole_factory(200);
  const double before = train_and_eval(*algo, factory, 0, 1, 10, 33);
  const double after = train_and_eval(*algo, factory, 12, 1024, 10, 33);
  // Random CartPole policies survive ~20 steps; a trained one should hold
  // the pole several times longer.
  EXPECT_GT(after, 120.0) << "before-training baseline was " << before;
  EXPECT_GT(after, before + 50.0);
}

TEST(PpoLearning, FindsTheShortestSafeGridWorldPath) {
  // The small maze has a 3-step optimal path (right, right, right) that
  // passes next to a pit; the greedy policy after training must reach the
  // goal with the optimal return.
  AlgorithmSpec spec;
  spec.kind = AlgoKind::PPO;
  spec.ppo.epochs = 6;
  spec.ppo.minibatch_size = 64;
  spec.ppo.entropy_coef = 0.01;
  auto algo =
      make_algorithm(spec, 16, env::ActionSpace(env::DiscreteSpace(4)), 61);

  const auto factory = env::make_gridworld_factory();
  const double after = train_and_eval(*algo, factory, 24, 256, 5, 71);
  // Optimal return: 1.0 - 2 * 0.01 = 0.98 (greedy eval, deterministic env).
  EXPECT_NEAR(after, 0.98, 0.05);
}

TEST(ImpalaLearning, ImprovesCartPole) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::IMPALA;
  spec.impala.learning_rate = 1e-3;  // single-pass learner: larger steps
  auto algo =
      make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 29);

  const auto factory = env::make_cartpole_factory(200);
  const double before = train_and_eval(*algo, factory, 0, 1, 10, 51);
  // Small rollouts, many updates — the IMPALA cadence.
  const double after = train_and_eval(*algo, factory, 120, 256, 10, 51);
  EXPECT_GT(after, 100.0) << "before-training baseline was " << before;
  EXPECT_GT(after, before + 40.0);
}

TEST(SacLearning, ImprovesPendulumSwingUp) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::SAC;
  spec.sac.warmup_steps = 256;
  spec.sac.batch_size = 64;
  spec.sac.updates_per_step = 1.0;
  spec.sac.learning_rate = 1e-3;
  spec.sac.tau = 0.01;
  auto algo = make_algorithm(
      spec, 3, env::ActionSpace(env::BoxSpace(1, -2.0, 2.0)), 23);

  const auto factory = env::make_pendulum_factory(200);
  const double before = train_and_eval(*algo, factory, 0, 1, 10, 41);
  // 24k steps: SAC reaches ~-180 (solved) on this setup; -400 leaves seed
  // margin while staying far above the ~-1200 random baseline.
  const double after = train_and_eval(*algo, factory, 48, 512, 10, 41);
  EXPECT_GT(after, -400.0) << "before-training baseline was " << before;
  EXPECT_GT(after, before + 500.0);
}

}  // namespace
}  // namespace darl::rl
