// Unit tests for darl/common: rng, stats, csv, jsonl, table, ascii_plot,
// error macros.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "darl/common/ascii_plot.hpp"
#include "darl/common/csv.hpp"
#include "darl/common/error.hpp"
#include "darl/common/jsonl.hpp"
#include "darl/common/log.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/stats.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/common/table.hpp"

namespace darl {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  const Rng root(7);
  Rng c0 = root.split(0);
  Rng c1 = root.split(1);
  Rng c0_again = root.split(0);
  EXPECT_DOUBLE_EQ(c0.uniform(), c0_again.uniform());
  EXPECT_NE(c0.uniform(), c1.uniform());
}

TEST(Rng, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_DOUBLE_EQ(rng.uniform(4.0, 4.0), 4.0);
  EXPECT_THROW(rng.uniform(1.0, 0.0), InvalidArgument);
}

TEST(Rng, RandintCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.randint(-1, 2));
  EXPECT_EQ(seen, (std::set<std::int64_t>{-1, 0, 1, 2}));
  EXPECT_THROW(rng.randint(3, 1), InvalidArgument);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.push(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
  EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  EXPECT_THROW(rng.bernoulli(1.5), InvalidArgument);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.categorical({1.0, 0.0, 3.0})];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 30000.0, 0.75, 0.02);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(rng.categorical({}), InvalidArgument);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(19);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, IndexThrowsOnEmpty) {
  Rng rng(23);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, MatchesNaiveFormulas) {
  RunningStats s;
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (double x : xs) {
    s.push(x);
    sum += x;
  }
  const double m = sum / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - m) * (x - m);
  var /= (xs.size() - 1);
  EXPECT_DOUBLE_EQ(s.mean(), m);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(29);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.push(x);
    (i % 2 ? a : b).push(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.count(), all.count());
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.push(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
  EXPECT_THROW(median({}), InvalidArgument);
}

// The sample-percentile helper moved to obs::percentile (see
// tests/test_obs.cpp for its coverage, alongside histogram_percentile).

TEST(Stats, EmaFirstValueAndSmoothing) {
  const auto e = ema({1.0, 1.0, 4.0}, 0.5);
  ASSERT_EQ(e.size(), 3u);
  EXPECT_DOUBLE_EQ(e[0], 1.0);
  EXPECT_DOUBLE_EQ(e[1], 1.0);
  EXPECT_DOUBLE_EQ(e[2], 2.5);
  EXPECT_THROW(ema({1.0}, 0.0), InvalidArgument);
}

// ---------------------------------------------------------------- csv

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"name", "x"});
  w.begin_row();
  w.field("a,b");
  w.number(1.5);
  w.end_row();
  EXPECT_EQ(out.str(), "name,x\n\"a,b\",1.5\n");
  EXPECT_EQ(w.rows(), 1u);
}

TEST(Csv, RejectsColumnCountMismatch) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"a", "b"});
  w.begin_row();
  w.field("only-one");
  EXPECT_THROW(w.end_row(), InvalidArgument);
}

TEST(Csv, RejectsLateHeader) {
  std::ostringstream out;
  CsvWriter w(out);
  w.begin_row();
  w.integer(1);
  w.end_row();
  EXPECT_THROW(w.header({"a"}), InvalidArgument);
}

TEST(Csv, FuzzedEscapingNeverBreaksTheRowStructure) {
  // Random strings with hostile characters must stay within one logical
  // record; a quote-aware scan of the emitted text recovers the field
  // count.
  Rng rng(31);
  const std::string alphabet = "ab,\"\n\r;x ";
  for (int round = 0; round < 50; ++round) {
    std::string field;
    const std::size_t len = rng.index(20);
    for (std::size_t i = 0; i < len; ++i)
      field += alphabet[rng.index(alphabet.size())];

    std::ostringstream out;
    CsvWriter w(out);
    w.header({"a", "b"});
    w.begin_row();
    w.field(field);
    w.field("tail");
    w.end_row();

    const std::string text = out.str();
    const std::size_t data_start = text.find('\n') + 1;
    bool quoted = false;
    int commas = 0;
    for (std::size_t i = data_start; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '"') quoted = !quoted;
      else if (c == ',' && !quoted) ++commas;
      else if (c == '\n' && !quoted) break;
    }
    EXPECT_EQ(commas, 1) << "field was: " << field;
  }
}

// ---------------------------------------------------------------- jsonl

TEST(Json, DumpsScalarsAndContainers) {
  Json obj = Json::object();
  obj.set("b", Json::boolean(true));
  obj.set("n", Json::number(1.5));
  obj.set("i", Json::integer(42));
  obj.set("s", Json::string("hi\n"));
  Json arr = Json::array();
  arr.push_back(Json::null());
  arr.push_back(Json::number(2.0));
  obj.set("a", std::move(arr));
  EXPECT_EQ(obj.dump(),
            "{\"a\":[null,2],\"b\":true,\"i\":42,\"n\":1.5,\"s\":\"hi\\n\"}");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json::number(std::nan("")).dump(), "null");
  EXPECT_EQ(Json::number(1.0 / 0.0).dump(), "null");
}

TEST(Json, KindChecksThrow) {
  Json n = Json::number(1.0);
  EXPECT_THROW(n.as_string(), Error);
  EXPECT_THROW(n.push_back(Json::null()), Error);
  Json o = Json::object();
  EXPECT_THROW(o.as_number(), Error);
}

TEST(Json, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("quote\" back\\slash"), "quote\\\" back\\\\slash");
  EXPECT_EQ(json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  // Other control characters become \u00XX escapes.
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string("a\0b", 3)), "a\\u0000b");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  // Non-ASCII (UTF-8) bytes pass through untouched.
  EXPECT_EQ(json_escape("caf\xc3\xa9 \xe2\x82\xac"), "caf\xc3\xa9 \xe2\x82\xac");
  EXPECT_EQ(Json::string("tab\there").dump(), "\"tab\\there\"");
}

TEST(Json, NestedContainersRoundTripThroughDump) {
  Json inner = Json::object();
  inner.set("k\"ey", Json::string("v\nal"));
  Json arr = Json::array();
  arr.push_back(Json::integer(1));
  arr.push_back(std::move(inner));
  Json nested_arr = Json::array();
  nested_arr.push_back(Json::array());
  arr.push_back(std::move(nested_arr));
  Json root = Json::object();
  root.set("list", std::move(arr));
  root.set("empty", Json::object());
  EXPECT_EQ(root.dump(),
            "{\"empty\":{},\"list\":[1,{\"k\\\"ey\":\"v\\nal\"},[[]]]}");
  // The tree is still walkable after dump (dump is const / non-destructive).
  const auto& list = root.as_object().at("list").as_array();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[1].as_object().at("k\"ey").as_string(), "v\nal");
  EXPECT_TRUE(list[2].as_array()[0].as_array().empty());
}

TEST(Jsonl, OneRecordPerLine) {
  std::ostringstream out;
  JsonlWriter w(out);
  w.write(Json::integer(1));
  w.write(Json::integer(2));
  EXPECT_EQ(out.str(), "1\n2\n");
  EXPECT_EQ(w.records(), 2u);
}

// ---------------------------------------------------------------- table

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_columns({"name", "value"}, {Align::Left, Align::Right});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "23"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| a         |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| long-name |    23 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RejectsBadRows) {
  TextTable t;
  t.set_columns({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), InvalidArgument);
}

TEST(TextTable, FixedFormatsDecimals) {
  EXPECT_EQ(fixed(1.005, 2), "1.00");
  EXPECT_EQ(fixed(-0.451, 2), "-0.45");
}

// ---------------------------------------------------------------- plot

TEST(AsciiPlot, ContainsMarkersAndLabels) {
  std::vector<PlotPoint> pts{{0.0, 0.0, "1", false}, {1.0, 1.0, "2", true}};
  PlotOptions opts;
  opts.title = "demo";
  const std::string s = render_scatter(pts, opts);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("legend"), std::string::npos);
}

TEST(AsciiPlot, HandlesDegenerateRanges) {
  std::vector<PlotPoint> pts{{5.0, 5.0, "a", true}};
  const std::string s = render_scatter(pts, PlotOptions{});
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NO_THROW(render_scatter({}, PlotOptions{}));
}

TEST(AsciiPlot, RejectsTinyCanvas) {
  PlotOptions opts;
  opts.width = 4;
  EXPECT_THROW(render_scatter({}, opts), InvalidArgument);
}

TEST(AsciiPlot, LabelsTruncateAtTheFrame) {
  std::vector<PlotPoint> pts{
      {1.0, 0.0, "this-label-is-far-too-long-to-fit-inside-the-plot-area",
       true},
      {0.0, 1.0, "ok", false}};
  PlotOptions opts;
  opts.width = 24;
  opts.height = 8;
  const std::string s = render_scatter(pts, opts);
  // Every line stays within frame width + gutter; no line explodes.
  std::istringstream iss(s);
  std::string line;
  while (std::getline(iss, line)) {
    EXPECT_LE(line.size(), 64u);
  }
}

// ---------------------------------------------------------------- log

TEST(Log, LevelRoundTripAndSuppression) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Below-threshold messages are dropped without side effects.
  log_message(LogLevel::Debug, "should be dropped");
  DARL_LOG_INFO << "also dropped";
  set_log_level(before);
}

struct FormatProbe {
  int* calls;
};

std::ostream& operator<<(std::ostream& os, const FormatProbe& p) {
  ++*p.calls;
  return os << "probe";
}

TEST(Log, DroppedLinesNeverFormatTheirArguments) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  int calls = 0;
  DARL_LOG_ERROR << "expensive " << FormatProbe{&calls};
  EXPECT_EQ(calls, 0);
  EXPECT_FALSE(log_enabled(LogLevel::Error));
  set_log_level(before);
}

// ---------------------------------------------------------------- misc

TEST(Stopwatch, TimeAdvancesAndResets) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double t1 = sw.seconds();
  EXPECT_GT(t1, 0.0);
  sw.reset();
  EXPECT_LE(sw.seconds(), t1 + 1.0);
  EXPECT_GT(sw.millis(), -1.0);
}

TEST(TextTable, RuleSeparatesSections) {
  TextTable t;
  t.set_columns({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.render(2);
  // Rendered with a 2-space indent and an extra internal rule.
  EXPECT_EQ(s.find("  +"), 0u);
  EXPECT_EQ(t.row_count(), 2u);
  int rules = 0;
  std::istringstream iss(s);
  std::string line;
  while (std::getline(iss, line)) {
    if (line.find("+-") != std::string::npos) ++rules;
  }
  EXPECT_EQ(rules, 4);  // top, header, internal, bottom
}

TEST(Splitmix, IsDeterministicAndMixes) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  // Single-bit input changes flip roughly half the output bits.
  const std::uint64_t a = splitmix64(0x1234);
  const std::uint64_t b = splitmix64(0x1235);
  int flipped = 0;
  for (int i = 0; i < 64; ++i) {
    if (((a ^ b) >> i) & 1u) ++flipped;
  }
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

// ---------------------------------------------------------------- error

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    DARL_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace darl
