// Tests for the RL substrate: GAE closed forms, replay-buffer semantics,
// PPO/SAC construction, actor snapshots, and evaluation. Learning-quality
// tests (does it actually learn) live in test_rl_learning.cpp.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "darl/common/error.hpp"
#include "darl/env/cartpole.hpp"
#include "darl/env/pendulum.hpp"
#include "darl/rl/checkpoint.hpp"
#include "darl/rl/evaluate.hpp"
#include "darl/rl/factory.hpp"
#include "darl/rl/gae.hpp"
#include "darl/rl/impala.hpp"
#include "darl/rl/prioritized_replay.hpp"
#include "darl/rl/replay_buffer.hpp"

namespace darl::rl {
namespace {

Transition make_tr(double reward, bool terminated, bool truncated = false) {
  Transition t;
  t.obs = {0.0};
  t.action = {0.0};
  t.next_obs = {0.0};
  t.reward = reward;
  t.terminated = terminated;
  t.truncated = truncated;
  return t;
}

TEST(Gae, SingleTerminalStepIsTdError) {
  const std::vector<Transition> stream{make_tr(2.0, true)};
  const auto r = compute_gae(stream, {0.5}, {99.0}, 0.9, 0.8);
  // terminal: next value ignored; delta = 2.0 - 0.5.
  EXPECT_NEAR(r.advantages[0], 1.5, 1e-12);
  EXPECT_NEAR(r.returns[0], 2.0, 1e-12);
}

TEST(Gae, BootstrapsTruncatedEpisodes) {
  const std::vector<Transition> stream{make_tr(1.0, false, true)};
  const auto r = compute_gae(stream, {0.5}, {2.0}, 0.5, 0.9);
  // delta = 1 + 0.5*2 - 0.5 = 1.5
  EXPECT_NEAR(r.advantages[0], 1.5, 1e-12);
}

TEST(Gae, LambdaOneGivesDiscountedMonteCarloAdvantage) {
  // Two-step episode, gamma=0.5, lambda=1: A_0 = r0 + g r1 - V(s0).
  std::vector<Transition> stream{make_tr(1.0, false), make_tr(2.0, true)};
  const std::vector<double> values{0.3, 0.7};
  const auto r = compute_gae(stream, values, {values[1], 0.0}, 0.5, 1.0);
  EXPECT_NEAR(r.advantages[0], 1.0 + 0.5 * 2.0 - 0.3, 1e-12);
  EXPECT_NEAR(r.advantages[1], 2.0 - 0.7, 1e-12);
  EXPECT_NEAR(r.returns[0], r.advantages[0] + 0.3, 1e-12);
}

TEST(Gae, LambdaZeroGivesOneStepTd) {
  std::vector<Transition> stream{make_tr(1.0, false), make_tr(2.0, true)};
  const std::vector<double> values{0.3, 0.7};
  const auto r = compute_gae(stream, values, {0.7, 0.0}, 0.9, 0.0);
  EXPECT_NEAR(r.advantages[0], 1.0 + 0.9 * 0.7 - 0.3, 1e-12);
}

TEST(Gae, ResetsAcrossEpisodeBoundaries) {
  // Episode ends at index 0; advantage at 1 must not leak into 0's lambda
  // accumulation.
  std::vector<Transition> stream{make_tr(1.0, true), make_tr(5.0, true)};
  const auto r = compute_gae(stream, {0.0, 0.0}, {0.0, 0.0}, 0.9, 0.9);
  EXPECT_NEAR(r.advantages[0], 1.0, 1e-12);
  EXPECT_NEAR(r.advantages[1], 5.0, 1e-12);
}

TEST(Gae, ValidatesInputs) {
  std::vector<Transition> stream{make_tr(1.0, true)};
  EXPECT_THROW(compute_gae(stream, {}, {0.0}, 0.9, 0.9), InvalidArgument);
  EXPECT_THROW(compute_gae(stream, {0.0}, {0.0}, 1.5, 0.9), InvalidArgument);
  EXPECT_THROW(compute_gae(stream, {0.0}, {0.0}, 0.9, -0.1), InvalidArgument);
}

TEST(Gae, NormalizeAdvantages) {
  std::vector<double> adv{1.0, 2.0, 3.0, 4.0};
  normalize_advantages(adv);
  double mean = 0.0;
  for (double a : adv) mean += a;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  // No-ops:
  std::vector<double> single{5.0};
  normalize_advantages(single);
  EXPECT_DOUBLE_EQ(single[0], 5.0);
  std::vector<double> constant{2.0, 2.0, 2.0};
  normalize_advantages(constant);
  EXPECT_DOUBLE_EQ(constant[0], 2.0);
}

TEST(Vtrace, OnPolicyReducesToDiscountedReturns) {
  // With log_ratio = 0 (behaviour == target), rho = c = 1 and
  // vs_t = r_t + gamma * vs_{t+1} — the discounted return.
  std::vector<Transition> stream{make_tr(1.0, false), make_tr(2.0, false),
                                 make_tr(3.0, true)};
  const std::vector<double> values{0.1, 0.2, 0.3};
  const std::vector<double> boots{0.0, 0.0, 0.0};
  const auto vt = compute_vtrace(stream, {0.0, 0.0, 0.0}, values, boots, 0.5,
                                 1.0, 1.0);
  EXPECT_NEAR(vt.vs[2], 3.0, 1e-12);
  EXPECT_NEAR(vt.vs[1], 2.0 + 0.5 * 3.0, 1e-12);
  EXPECT_NEAR(vt.vs[0], 1.0 + 0.5 * 3.5, 1e-12);
  // pg advantage = r + gamma vs_{t+1} - V(s_t).
  EXPECT_NEAR(vt.pg_adv[0], 1.0 + 0.5 * 3.5 - 0.1, 1e-12);
  EXPECT_NEAR(vt.pg_adv[2], 3.0 - 0.3, 1e-12);
  for (double r : vt.rho) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(Vtrace, ClipsLargeImportanceWeights) {
  std::vector<Transition> stream{make_tr(1.0, true)};
  const auto vt = compute_vtrace(stream, {3.0 /* ratio e^3 */}, {0.0}, {0.0},
                                 0.9, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(vt.rho[0], 1.0);
  // Small ratios pass through unclipped.
  const auto vt2 = compute_vtrace(stream, {-1.0}, {0.0}, {0.0}, 0.9, 1.0, 1.0);
  EXPECT_NEAR(vt2.rho[0], std::exp(-1.0), 1e-12);
  EXPECT_NEAR(vt2.vs[0], std::exp(-1.0) * 1.0, 1e-12);
}

TEST(Vtrace, BootstrapsTruncationAndResetsTraces) {
  // Truncated first episode bootstraps from next_obs; the trace must not
  // leak across the boundary.
  std::vector<Transition> stream{make_tr(1.0, false, true), make_tr(5.0, true)};
  const std::vector<double> values{0.5, 0.0};
  const std::vector<double> boots{2.0, 0.0};
  const auto vt = compute_vtrace(stream, {0.0, 0.0}, values, boots, 0.5, 1.0,
                                 1.0);
  EXPECT_NEAR(vt.vs[0], 1.0 + 0.5 * 2.0, 1e-12);
  EXPECT_NEAR(vt.vs[1], 5.0, 1e-12);
}

TEST(Vtrace, ValidatesInputs) {
  std::vector<Transition> stream{make_tr(1.0, true)};
  EXPECT_THROW(compute_vtrace(stream, {}, {0.0}, {0.0}, 0.9, 1.0, 1.0),
               InvalidArgument);
  EXPECT_THROW(compute_vtrace(stream, {0.0}, {0.0}, {0.0}, 2.0, 1.0, 1.0),
               InvalidArgument);
  EXPECT_THROW(compute_vtrace(stream, {0.0}, {0.0}, {0.0}, 0.9, 0.0, 1.0),
               InvalidArgument);
}

TEST(Impala, BuildsActsAndTrains) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::IMPALA;
  auto algo = make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 3);
  EXPECT_EQ(algo->kind(), AlgoKind::IMPALA);
  EXPECT_STREQ(algo_name(AlgoKind::IMPALA), "IMPALA");

  auto actor = algo->make_actor();
  Rng rng(1);
  auto env = env::make_cartpole_factory(50)();
  env->seed(1);
  WorkerBatch batch;
  Vec obs = env->reset();
  for (int i = 0; i < 64; ++i) {
    const ActOutput a = actor->act(obs, rng);
    const env::StepResult r = env->step(a.action);
    Transition t;
    t.obs = obs;
    t.action = a.action;
    t.reward = r.reward;
    t.next_obs = r.observation;
    t.terminated = r.terminated;
    t.truncated = r.truncated;
    t.log_prob = a.log_prob;
    batch.transitions.push_back(t);
    obs = r.done() ? env->reset() : r.observation;
  }
  const Vec before = algo->policy_params();
  const TrainStats stats = algo->train({batch});
  EXPECT_EQ(stats.samples, 64u);
  EXPECT_EQ(stats.gradient_steps, 1u);  // single-pass learner
  EXPECT_GT(stats.train_cost_mflop, 0.0);
  const Vec after = algo->policy_params();
  bool changed = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(ReplayBuffer, RingOverwriteAndSampling) {
  ReplayBuffer buf(3);
  EXPECT_TRUE(buf.empty());
  for (int i = 0; i < 5; ++i) buf.push(make_tr(static_cast<double>(i), false));
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.total_pushed(), 5u);
  // Contents are {3, 4, 2} in slots; rewards seen must be from {2,3,4}.
  Rng rng(1);
  for (const Transition* t : buf.sample(50, rng)) {
    EXPECT_GE(t->reward, 2.0);
    EXPECT_LE(t->reward, 4.0);
  }
  EXPECT_THROW(buf.at(3), InvalidArgument);
  EXPECT_THROW(ReplayBuffer(0), InvalidArgument);
  ReplayBuffer empty(2);
  EXPECT_THROW(empty.sample(1, rng), InvalidArgument);
}

TEST(SumTree, SetGetTotalAndMax) {
  SumTree tree(5);
  tree.set(0, 1.0);
  tree.set(3, 4.0);
  tree.set(4, 2.0);
  EXPECT_DOUBLE_EQ(tree.get(3), 4.0);
  EXPECT_DOUBLE_EQ(tree.total(), 7.0);
  EXPECT_DOUBLE_EQ(tree.max_value(), 4.0);
  tree.set(3, 0.5);
  EXPECT_DOUBLE_EQ(tree.total(), 3.5);
  EXPECT_THROW(tree.set(5, 1.0), InvalidArgument);
  EXPECT_THROW(tree.set(0, -1.0), InvalidArgument);
  EXPECT_THROW(SumTree(0), InvalidArgument);
}

TEST(SumTree, SamplePicksLeafByPrefix) {
  SumTree tree(4);
  tree.set(0, 1.0);  // [0, 1)
  tree.set(1, 3.0);  // [1, 4)
  tree.set(2, 0.0);  // empty
  tree.set(3, 2.0);  // [4, 6)
  EXPECT_EQ(tree.sample(0.5), 0u);
  EXPECT_EQ(tree.sample(1.0), 1u);
  EXPECT_EQ(tree.sample(3.9), 1u);
  EXPECT_EQ(tree.sample(4.1), 3u);
  EXPECT_EQ(tree.sample(5.999), 3u);
  // Prefix at/above total clamps to the last positive leaf.
  EXPECT_EQ(tree.sample(6.0), 3u);
}

TEST(SumTree, SamplingFrequenciesMatchWeights) {
  SumTree tree(3);
  tree.set(0, 1.0);
  tree.set(1, 2.0);
  tree.set(2, 7.0);
  Rng rng(5);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[tree.sample(rng.uniform(0.0, tree.total()))];
  }
  EXPECT_NEAR(counts[0] / 40000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 40000.0, 0.2, 0.015);
  EXPECT_NEAR(counts[2] / 40000.0, 0.7, 0.02);
}

TEST(PrioritizedReplay, HighPriorityTransitionsSampledMoreOften) {
  PrioritizedReplayBuffer buf(8, /*alpha=*/1.0);
  for (int i = 0; i < 8; ++i) buf.push(make_tr(static_cast<double>(i), false));
  // Give slot 3 a much larger priority than the rest.
  std::vector<std::size_t> idx{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<double> pri{0.1, 0.1, 0.1, 10.0, 0.1, 0.1, 0.1, 0.1};
  buf.update_priorities(idx, pri);

  Rng rng(6);
  int hits = 0, draws = 0;
  for (int round = 0; round < 200; ++round) {
    const PrioritizedBatch b = buf.sample(8, 0.5, rng);
    for (std::size_t i = 0; i < b.transitions.size(); ++i) {
      ++draws;
      if (b.indices[i] == 3) {
        ++hits;
        // Over-sampled transitions carry the smallest IS weights.
        EXPECT_LE(b.weights[i], 1.0);
      }
    }
  }
  // p(slot 3) = 10.1/10.8-ish >> uniform 1/8.
  EXPECT_GT(static_cast<double>(hits) / draws, 0.6);
}

TEST(PrioritizedReplay, WeightsNormalizedAndPushUsesMaxPriority) {
  PrioritizedReplayBuffer buf(4, 0.6);
  buf.push(make_tr(1.0, false));
  buf.update_priorities({0}, {5.0});
  buf.push(make_tr(2.0, false));  // inherits max priority (5.0)
  EXPECT_DOUBLE_EQ(buf.priority(1), 5.0);

  Rng rng(7);
  const PrioritizedBatch b = buf.sample(16, 1.0, rng);
  double max_w = 0.0;
  for (double w : b.weights) {
    EXPECT_GT(w, 0.0);
    max_w = std::max(max_w, w);
  }
  EXPECT_DOUBLE_EQ(max_w, 1.0);
  EXPECT_THROW(buf.update_priorities({9}, {1.0}), InvalidArgument);
  EXPECT_THROW(buf.sample(4, 1.5, rng), InvalidArgument);
}

TEST(PrioritizedReplay, RingOverwriteKeepsTreeConsistent) {
  PrioritizedReplayBuffer buf(3, 1.0);
  for (int i = 0; i < 7; ++i) buf.push(make_tr(static_cast<double>(i), false));
  EXPECT_EQ(buf.size(), 3u);
  Rng rng(8);
  const PrioritizedBatch b = buf.sample(30, 0.4, rng);
  for (const Transition* t : b.transitions) {
    EXPECT_GE(t->reward, 4.0);  // only the latest three survive
  }
}

TEST(SacTrain, PrioritizedReplayPathRuns) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::SAC;
  spec.sac.warmup_steps = 32;
  spec.sac.batch_size = 16;
  spec.sac.updates_per_step = 0.5;
  spec.sac.prioritized_replay = true;
  auto algo =
      make_algorithm(spec, 3, env::ActionSpace(env::BoxSpace(1, -2.0, 2.0)), 19);
  auto actor = algo->make_actor();

  auto env = env::make_pendulum_factory(50)();
  env->seed(4);
  Rng rng(4);
  WorkerBatch batch;
  Vec obs = env->reset();
  for (int i = 0; i < 96; ++i) {
    const ActOutput a = actor->act(obs, rng);
    const env::StepResult r = env->step(a.action);
    Transition t;
    t.obs = obs;
    t.action = a.action;
    t.reward = r.reward;
    t.next_obs = r.observation;
    t.terminated = r.terminated;
    t.truncated = r.truncated;
    batch.transitions.push_back(t);
    obs = r.done() ? env->reset() : r.observation;
  }
  const TrainStats stats = algo->train({batch});
  EXPECT_GT(stats.gradient_steps, 0u);
  EXPECT_TRUE(std::isfinite(stats.value_loss));
}

TEST(Factory, BuildsPpoAndSac) {
  AlgorithmSpec ppo_spec;
  ppo_spec.kind = AlgoKind::PPO;
  auto ppo = make_algorithm(ppo_spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 1);
  EXPECT_EQ(ppo->kind(), AlgoKind::PPO);

  AlgorithmSpec sac_spec;
  sac_spec.kind = AlgoKind::SAC;
  auto sac = make_algorithm(sac_spec, 3, env::ActionSpace(env::BoxSpace(1, -2.0, 2.0)), 1);
  EXPECT_EQ(sac->kind(), AlgoKind::SAC);

  // SAC requires a continuous space.
  EXPECT_THROW(
      make_algorithm(sac_spec, 3, env::ActionSpace(env::DiscreteSpace(2)), 1),
      InvalidArgument);
  EXPECT_STREQ(algo_name(AlgoKind::PPO), "PPO");
  EXPECT_STREQ(algo_name(AlgoKind::SAC), "SAC");
}

TEST(PpoActor, SnapshotRoundTripAndDeterminism) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::PPO;
  auto algo = make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(3)), 7);
  auto a1 = algo->make_actor();
  auto a2 = algo->make_actor();
  a2->set_params(algo->policy_params());

  Rng r1(5), r2(5);
  const Vec obs{0.1, 0.2, 0.3, 0.4};
  const ActOutput o1 = a1->act(obs, r1);
  const ActOutput o2 = a2->act(obs, r2);
  EXPECT_EQ(o1.action[0], o2.action[0]);
  EXPECT_DOUBLE_EQ(o1.log_prob, o2.log_prob);
  EXPECT_LE(o1.log_prob, 0.0);
  EXPECT_GT(a1->inference_cost_mflop(), 0.0);

  const Vec greedy = a1->act_greedy(obs);
  EXPECT_GE(greedy[0], 0.0);
  EXPECT_LE(greedy[0], 2.0);
  EXPECT_THROW(a1->set_params(Vec{1.0}), InvalidArgument);
}

TEST(PpoActor, ContinuousActionsClippedToBox) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::PPO;
  auto algo =
      make_algorithm(spec, 2, env::ActionSpace(env::BoxSpace(1, -0.5, 0.5)), 3);
  auto actor = algo->make_actor();
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const ActOutput o = actor->act({0.0, 0.0}, rng);
    EXPECT_GE(o.action[0], -0.5);
    EXPECT_LE(o.action[0], 0.5);
  }
}

TEST(SacActor, ActionsInsideBox) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::SAC;
  auto algo =
      make_algorithm(spec, 3, env::ActionSpace(env::BoxSpace(1, -2.0, 2.0)), 3);
  auto actor = algo->make_actor();
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const ActOutput o = actor->act({0.1, 0.2, 0.3}, rng);
    EXPECT_GT(o.action[0], -2.0);
    EXPECT_LT(o.action[0], 2.0);
  }
  const Vec g = actor->act_greedy({0.1, 0.2, 0.3});
  EXPECT_GE(g[0], -2.0);
  EXPECT_LE(g[0], 2.0);
}

TEST(PpoTrain, RunsAndReportsStats) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::PPO;
  spec.ppo.epochs = 2;
  spec.ppo.minibatch_size = 16;
  auto algo = make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 11);
  auto actor = algo->make_actor();

  // Collect a batch from CartPole.
  auto env = env::make_cartpole_factory(50)();
  env->seed(1);
  Rng rng(1);
  WorkerBatch batch;
  batch.worker_id = 0;
  Vec obs = env->reset();
  for (int i = 0; i < 128; ++i) {
    const ActOutput a = actor->act(obs, rng);
    const env::StepResult r = env->step(a.action);
    Transition t;
    t.obs = obs;
    t.action = a.action;
    t.reward = r.reward;
    t.next_obs = r.observation;
    t.terminated = r.terminated;
    t.truncated = r.truncated;
    t.log_prob = a.log_prob;
    batch.transitions.push_back(t);
    obs = r.done() ? env->reset() : r.observation;
  }

  const TrainStats stats = algo->train({batch});
  EXPECT_EQ(stats.samples, 128u);
  EXPECT_GT(stats.gradient_steps, 0u);
  EXPECT_GT(stats.train_cost_mflop, 0.0);
  EXPECT_GT(stats.entropy, 0.0);
  EXPECT_TRUE(std::isfinite(stats.policy_loss));
  EXPECT_TRUE(std::isfinite(stats.value_loss));

  // Empty train is a no-op.
  const TrainStats none = algo->train({});
  EXPECT_EQ(none.samples, 0u);
}

TEST(SacTrain, WarmupThenUpdates) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::SAC;
  spec.sac.warmup_steps = 32;
  spec.sac.batch_size = 16;
  spec.sac.updates_per_step = 0.5;
  auto algo =
      make_algorithm(spec, 3, env::ActionSpace(env::BoxSpace(1, -2.0, 2.0)), 13);
  auto actor = algo->make_actor();

  auto env = env::make_pendulum_factory(50)();
  env->seed(2);
  Rng rng(3);
  auto collect = [&](std::size_t n) {
    WorkerBatch batch;
    Vec obs = env->reset();
    for (std::size_t i = 0; i < n; ++i) {
      const ActOutput a = actor->act(obs, rng);
      const env::StepResult r = env->step(a.action);
      Transition t;
      t.obs = obs;
      t.action = a.action;
      t.reward = r.reward;
      t.next_obs = r.observation;
      t.terminated = r.terminated;
      t.truncated = r.truncated;
      batch.transitions.push_back(t);
      obs = r.done() ? env->reset() : r.observation;
    }
    return batch;
  };

  // Below warmup: samples recorded, no gradient steps.
  const TrainStats s1 = algo->train({collect(16)});
  EXPECT_EQ(s1.gradient_steps, 0u);
  // Past warmup: ~updates_per_step * pushed updates.
  const TrainStats s2 = algo->train({collect(64)});
  EXPECT_GT(s2.gradient_steps, 0u);
  EXPECT_GT(s2.train_cost_mflop, 0.0);
}

TEST(Checkpoint, RoundTripPreservesPolicyBehaviour) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::PPO;
  auto algo = make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 31);

  Checkpoint ck;
  ck.kind = AlgoKind::PPO;
  ck.obs_dim = 4;
  ck.action_dim = 1;
  ck.params = algo->policy_params();

  std::stringstream buf;
  save_checkpoint(buf, ck);
  const Checkpoint loaded = load_checkpoint(buf);
  EXPECT_EQ(loaded.kind, AlgoKind::PPO);
  EXPECT_EQ(loaded.obs_dim, 4u);
  ASSERT_EQ(loaded.params.size(), ck.params.size());

  // The restored parameters drive an identical policy.
  auto a1 = algo->make_actor();
  auto a2 = algo->make_actor();
  a2->set_params(loaded.params);
  const Vec obs{0.1, -0.2, 0.3, 0.4};
  EXPECT_EQ(a1->act_greedy(obs)[0], a2->act_greedy(obs)[0]);
  for (std::size_t i = 0; i < ck.params.size(); ++i) {
    EXPECT_DOUBLE_EQ(ck.params[i], loaded.params[i]);
  }
}

TEST(Checkpoint, RejectsMalformedStreams) {
  std::stringstream empty;
  EXPECT_THROW(load_checkpoint(empty), Error);
  std::stringstream bad_magic("not-a-checkpoint\nPPO 1 1 0\n");
  EXPECT_THROW(load_checkpoint(bad_magic), Error);
  std::stringstream bad_algo("darl-checkpoint-v1\nDQN 1 1 0\n");
  EXPECT_THROW(load_checkpoint(bad_algo), Error);
  std::stringstream truncated("darl-checkpoint-v1\nPPO 1 1 3\n1.0\n2.0\n");
  EXPECT_THROW(load_checkpoint(truncated), Error);
  EXPECT_THROW(load_checkpoint_file("/nonexistent/dir/x.ckpt"), Error);
}

TEST(Checkpoint, V2RoundTripIsExactAndCarriesDigest) {
  Checkpoint ck;
  ck.kind = AlgoKind::SAC;
  ck.obs_dim = 3;
  ck.action_dim = 2;
  ck.params = {0.1, -2.25, 1e-17, 3.0000000000000004, -0.0};

  std::stringstream buf;
  save_checkpoint(buf, ck);
  const std::string text = buf.str();
  EXPECT_NE(text.find("darl-checkpoint-v2"), std::string::npos);
  EXPECT_NE(text.find("fnv1a64 "), std::string::npos);

  const Checkpoint loaded = load_checkpoint(buf);
  EXPECT_EQ(loaded.kind, AlgoKind::SAC);
  EXPECT_EQ(loaded.obs_dim, 3u);
  EXPECT_EQ(loaded.action_dim, 2u);
  // Bitwise round trip: the serving layer's determinism argument depends
  // on deployed weights being the trained weights, not approximations.
  ASSERT_EQ(loaded.params.size(), ck.params.size());
  for (std::size_t i = 0; i < ck.params.size(); ++i) {
    EXPECT_EQ(loaded.params[i], ck.params[i]) << "param " << i;
  }
}

TEST(Checkpoint, V2DetectsCorruptionAndTruncation) {
  Checkpoint ck;
  ck.kind = AlgoKind::PPO;
  ck.obs_dim = 2;
  ck.action_dim = 1;
  ck.params = {1.5, -2.5, 0.25};
  std::stringstream buf;
  save_checkpoint(buf, ck);
  const std::string text = buf.str();

  // Flip one digit of one parameter: the digest no longer matches.
  std::string corrupted = text;
  const std::size_t pos = corrupted.find("1.5");
  ASSERT_NE(pos, std::string::npos);
  corrupted[pos] = '9';
  std::stringstream bad(corrupted);
  EXPECT_THROW(load_checkpoint(bad), CheckpointError);

  // Drop the integrity footer: typed truncation error, not garbage weights.
  std::stringstream no_footer(text.substr(0, text.rfind("fnv1a64")));
  EXPECT_THROW(load_checkpoint(no_footer), CheckpointError);

  // Cut the parameter block short.
  std::stringstream short_params("darl-checkpoint-v2\nPPO 2 1 3\n1.5\n");
  EXPECT_THROW(load_checkpoint(short_params), CheckpointError);
}

TEST(Checkpoint, LegacyV1FilesStillLoad) {
  std::stringstream legacy(
      "darl-checkpoint-v1\nIMPALA 2 1 4\n0.5\n-1.5\n2\n-0.125\n");
  const Checkpoint loaded = load_checkpoint(legacy);
  EXPECT_EQ(loaded.kind, AlgoKind::IMPALA);
  EXPECT_EQ(loaded.obs_dim, 2u);
  ASSERT_EQ(loaded.params.size(), 4u);
  EXPECT_EQ(loaded.params[1], -1.5);
  EXPECT_EQ(loaded.params[3], -0.125);
}

TEST(Evaluate, RunsEpisodesAndAggregates) {
  AlgorithmSpec spec;
  spec.kind = AlgoKind::PPO;
  auto algo = make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 17);
  auto actor = algo->make_actor();
  auto env = env::make_cartpole_factory(30)();
  env->seed(5);
  Rng rng(5);
  const EvalResult r = evaluate_policy(*actor, *env, 5, rng);
  EXPECT_EQ(r.episodes, 5u);
  EXPECT_GT(r.mean_length, 0.0);
  EXPECT_GT(r.mean_total_reward, 0.0);  // CartPole rewards are positive
  EXPECT_GT(r.inferences, 0u);
  EXPECT_THROW(evaluate_policy(*actor, *env, 0, rng), InvalidArgument);
}

}  // namespace
}  // namespace darl::rl
