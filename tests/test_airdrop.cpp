// Tests for the airdrop package delivery simulator: canopy dynamics
// invariants, episode lifecycle, the paper's configurable environment
// parameters, and the RK-order cost/accuracy coupling.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "darl/airdrop/airdrop_env.hpp"
#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/ode/explicit_rk.hpp"
#include "darl/ode/tableau.hpp"

namespace darl::airdrop {
namespace {

TEST(Dynamics, TrimStateIsSteadyWithoutSteering) {
  const CanopyParams params;
  const WindState wind{1.0, -0.5};
  Vec y = trim_state(params, 0.0, 0.0, 500.0, 0.7, wind);
  Vec dydt(kStateDim);
  canopy_rhs(params, wind, 0.0, 0.0, y, dydt);
  // At trim with zero command: velocity derivatives and turn accel vanish.
  EXPECT_NEAR(dydt[3], 0.0, 1e-12);
  EXPECT_NEAR(dydt[4], 0.0, 1e-12);
  EXPECT_NEAR(dydt[5], 0.0, 1e-12);
  EXPECT_NEAR(dydt[7], 0.0, 1e-12);
  // Position integrates the velocity; altitude drops at the sink rate.
  EXPECT_NEAR(dydt[2], -params.sink_rate, 1e-12);
}

TEST(Dynamics, SteeringCommandsTurnRate) {
  const CanopyParams params;
  Vec y = trim_state(params, 0.0, 0.0, 500.0, 0.0, WindState{});
  Vec dydt(kStateDim);
  canopy_rhs(params, WindState{}, 1.0, 0.0, y, dydt);
  EXPECT_GT(dydt[7], 0.0);  // accelerating toward a right turn
  canopy_rhs(params, WindState{}, -1.0, 0.0, y, dydt);
  EXPECT_LT(dydt[7], 0.0);
}

TEST(Dynamics, WindAdvectsTrimVelocity) {
  const CanopyParams params;
  const WindState wind{5.0, 0.0};
  Vec y = trim_state(params, 0.0, 0.0, 100.0, std::numbers::pi / 2, wind);
  // Heading +y, wind +x: x-velocity equals the wind speed at trim.
  EXPECT_NEAR(y[3], 5.0, 1e-12);
  EXPECT_NEAR(y[4], params.trim_airspeed, 1e-12);
}

TEST(Dynamics, TurningIncreasesSink) {
  const CanopyParams params;
  Vec y = trim_state(params, 0.0, 0.0, 100.0, 0.0, WindState{});
  y[7] = params.max_turn_rate;  // established full-rate turn
  Vec dydt(kStateDim);
  canopy_rhs(params, WindState{}, 1.0, 0.0, y, dydt);
  // vz relaxes toward a sink larger than trim: d vz/dt < 0 from trim vz.
  EXPECT_LT(dydt[5], -1e-3);
}

TEST(Dynamics, GlideRatio) {
  CanopyParams p;
  p.trim_airspeed = 9.0;
  p.sink_rate = 4.0;
  EXPECT_NEAR(glide_ratio(p), 2.25, 1e-12);
  p.sink_rate = 0.0;
  EXPECT_THROW(glide_ratio(p), InvalidArgument);
}

AirdropConfig quick_config(ode::RkOrder order = ode::RkOrder::Order5) {
  AirdropConfig cfg;
  cfg.rk_order = order;
  cfg.altitude_min = 30.0;
  cfg.altitude_max = 120.0;
  return cfg;
}

TEST(AirdropEnv, EpisodeEndsOnLanding) {
  AirdropEnv env(quick_config());
  env.seed(1);
  Vec obs = env.reset();
  EXPECT_EQ(obs.size(), AirdropEnv::kObservationDim);
  env::StepResult r;
  std::size_t steps = 0;
  do {
    r = env.step(Vec{1.0});  // hold heading
    ++steps;
    ASSERT_LT(steps, 2000u);
  } while (!r.done());
  EXPECT_TRUE(r.terminated);
  EXPECT_GT(env.last_landing().flight_time, 0.0);
  EXPECT_GT(env.last_landing().distance, 0.0);
  // Flight time is roughly altitude / sink rate.
  EXPECT_LT(env.last_landing().flight_time,
            quick_config().altitude_max / quick_config().canopy.sink_rate * 2.5);
}

TEST(AirdropEnv, LandingRewardMatchesDistance) {
  AirdropEnv env(quick_config());
  env.seed(2);
  env.reset();
  env::StepResult r;
  do {
    r = env.step(Vec{1.0});
  } while (!r.done());
  EXPECT_NEAR(r.reward, -env.last_landing().distance / 100.0, 1e-12);
  ASSERT_TRUE(env.episode_score().has_value());
  EXPECT_DOUBLE_EQ(*env.episode_score(), env.last_landing().landing_reward);
}

TEST(AirdropEnv, DropAltitudeRespectsConfiguredInterval) {
  AirdropConfig cfg = quick_config();
  cfg.altitude_min = 50.0;
  cfg.altitude_max = 60.0;
  AirdropEnv env(cfg);
  env.seed(3);
  for (int ep = 0; ep < 20; ++ep) {
    env.reset();
    const double z0 = env.raw_state()[2];
    EXPECT_GE(z0, 50.0);
    EXPECT_LE(z0, 60.0);
    // drain the episode
    env::StepResult r;
    do {
      r = env.step(Vec{1.0});
    } while (!r.done());
  }
}

TEST(AirdropEnv, ShapingRewardsTelescopeTowardProgress) {
  AirdropConfig cfg = quick_config();
  cfg.shaping_weight = 1.0;
  AirdropEnv env(cfg);
  env.seed(4);
  env.reset();
  // Shaping reward is bounded by the normalized per-step movement.
  for (int i = 0; i < 10; ++i) {
    const env::StepResult r = env.step(Vec{1.0});
    if (r.done()) break;
    EXPECT_LT(std::abs(r.reward), 0.1);
  }
}

TEST(AirdropEnv, WindDisabledMeansZeroWind) {
  AirdropEnv env(quick_config());
  env.seed(5);
  env.reset();
  EXPECT_DOUBLE_EQ(env.current_wind().wx, 0.0);
  EXPECT_DOUBLE_EQ(env.current_wind().wy, 0.0);
}

TEST(AirdropEnv, WindEnabledProducesEpisodeWind) {
  AirdropConfig cfg = quick_config();
  cfg.wind_enabled = true;
  cfg.wind_speed_max = 3.0;
  AirdropEnv env(cfg);
  env.seed(6);
  bool saw_wind = false;
  for (int ep = 0; ep < 10 && !saw_wind; ++ep) {
    env.reset();
    const WindState w = env.current_wind();
    const double speed = std::hypot(w.wx, w.wy);
    EXPECT_LE(speed, 3.0 + 1e-9);
    if (speed > 0.1) saw_wind = true;
    env::StepResult r;
    do {
      r = env.step(Vec{1.0});
    } while (!r.done());
  }
  EXPECT_TRUE(saw_wind);
}

TEST(AirdropEnv, CertainGustsAlterTheWind) {
  AirdropConfig cfg = quick_config();
  cfg.gusts_enabled = true;
  cfg.gust_probability = 1.0;
  cfg.gust_speed = 4.0;
  AirdropEnv env(cfg);
  env.seed(7);
  env.reset();
  env.step(Vec{1.0});
  const WindState w = env.current_wind();
  EXPECT_NEAR(std::hypot(w.wx, w.wy), 4.0, 1e-9);
}

TEST(AirdropEnv, ContinuousModeAcceptsBoxActions) {
  AirdropConfig cfg = quick_config();
  cfg.action_mode = ActionMode::Continuous;
  AirdropEnv env(cfg);
  env.seed(8);
  env.reset();
  EXPECT_TRUE(env.action_space().is_box());
  EXPECT_NO_THROW(env.step(Vec{0.3}));
}

TEST(AirdropEnv, DiscreteActionsMapToSteering) {
  AirdropEnv env(quick_config());
  env.seed(9);
  env.reset();
  const double psi_dot0 = env.raw_state()[7];
  env.step(Vec{2.0});  // rotate right
  EXPECT_GT(env.raw_state()[7], psi_dot0);
  env.seed(9);
  env.reset();
  env.step(Vec{0.0});  // rotate left
  EXPECT_LT(env.raw_state()[7], psi_dot0 + 1e-12);
}

TEST(AirdropEnv, HigherRkOrderCostsMoreEvals) {
  double costs[3];
  const ode::RkOrder orders[3] = {ode::RkOrder::Order3, ode::RkOrder::Order5,
                                  ode::RkOrder::Order8};
  for (int k = 0; k < 3; ++k) {
    AirdropEnv env(quick_config(orders[k]));
    env.seed(10);
    env.reset();
    for (int i = 0; i < 20; ++i) {
      if (env.step(Vec{1.0}).done()) env.reset();
    }
    costs[k] = env.take_compute_cost();
    EXPECT_GT(costs[k], 0.0);
    EXPECT_DOUBLE_EQ(env.take_compute_cost(), 0.0);  // drained
  }
  EXPECT_LT(costs[0], costs[1]);
  EXPECT_LT(costs[1], costs[2]);
}

TEST(AirdropEnv, SameSeedSameTrajectory) {
  AirdropEnv a(quick_config()), b(quick_config());
  a.seed(11);
  b.seed(11);
  a.reset();
  b.reset();
  for (int i = 0; i < 30; ++i) {
    const auto ra = a.step(Vec{2.0});
    const auto rb = b.step(Vec{2.0});
    ASSERT_EQ(ra.terminated, rb.terminated);
    EXPECT_DOUBLE_EQ(ra.reward, rb.reward);
    if (ra.done()) break;
  }
}

TEST(AirdropEnv, RejectsBadConfig) {
  AirdropConfig cfg = quick_config();
  cfg.altitude_min = 0.0;
  EXPECT_THROW(AirdropEnv{cfg}, InvalidArgument);
  cfg = quick_config();
  cfg.gust_probability = 1.5;
  EXPECT_THROW(AirdropEnv{cfg}, InvalidArgument);
  cfg = quick_config();
  cfg.control_dt = 0.0;
  EXPECT_THROW(AirdropEnv{cfg}, InvalidArgument);
}

TEST(AirdropEnv, FactoryProducesIndependentInstances) {
  const auto factory = make_airdrop_factory(quick_config());
  auto e1 = factory();
  auto e2 = factory();
  e1->seed(1);
  e2->seed(2);
  e1->reset();
  e2->reset();
  // Stepping one does not disturb the other.
  e1->step(Vec{1.0});
  EXPECT_NO_THROW(e2->step(Vec{1.0}));
}

TEST(Dynamics, WindProfilePowerLaw) {
  WindProfile profile;
  profile.reference = {4.0, 0.0};
  profile.ref_altitude = 100.0;
  profile.shear_exponent = 0.14;
  // At the reference altitude the profile returns the reference wind.
  EXPECT_NEAR(profile.at(100.0).wx, 4.0, 1e-12);
  // Above: stronger; below: weaker; near the ground: clamped, not zero.
  EXPECT_GT(profile.at(400.0).wx, 4.0);
  EXPECT_LT(profile.at(25.0).wx, 4.0);
  EXPECT_GT(profile.at(0.0).wx, 0.0);
  // Exponent 0 reduces to the uniform model at every altitude.
  profile.shear_exponent = 0.0;
  EXPECT_DOUBLE_EQ(profile.at(1.0).wx, 4.0);
  EXPECT_DOUBLE_EQ(profile.at(900.0).wx, 4.0);
}

TEST(Dynamics, ShearedRhsMatchesUniformAtReferenceAltitude) {
  const CanopyParams params;
  WindProfile profile;
  profile.reference = {3.0, -1.0};
  profile.ref_altitude = 250.0;
  profile.shear_exponent = 0.2;
  Vec y = trim_state(params, 10.0, -5.0, 250.0, 0.4, profile.reference);
  Vec d1(kStateDim), d2(kStateDim);
  canopy_rhs(params, profile.reference, 0.5, 0.0, y, d1);
  canopy_rhs_sheared(params, profile, 0.5, 0.0, y, d2);
  for (std::size_t i = 0; i < kStateDim; ++i) EXPECT_NEAR(d1[i], d2[i], 1e-12);
}

TEST(AirdropEnv, WindShearChangesTrajectories) {
  AirdropConfig uniform_cfg = quick_config();
  uniform_cfg.wind_enabled = true;
  uniform_cfg.wind_speed_max = 3.0;
  AirdropConfig shear_cfg = uniform_cfg;
  shear_cfg.wind_shear_exponent = 0.3;

  AirdropEnv a(uniform_cfg), b(shear_cfg);
  a.seed(41);
  b.seed(41);
  a.reset();
  b.reset();
  // Identical seeds, identical initial state; the shear must alter the
  // flight path once the package descends.
  double max_diff = 0.0;
  for (int i = 0; i < 20; ++i) {
    const auto ra = a.step(Vec{1.0});
    const auto rb = b.step(Vec{1.0});
    max_diff = std::max(max_diff, std::abs(a.raw_state()[0] - b.raw_state()[0]));
    if (ra.done() || rb.done()) break;
  }
  EXPECT_GT(max_diff, 1e-6);
}

TEST(AirdropEnv, RejectsBadWindConfig) {
  AirdropConfig cfg = quick_config();
  cfg.wind_ref_altitude = 0.0;
  EXPECT_THROW(AirdropEnv{cfg}, InvalidArgument);
  cfg = quick_config();
  cfg.wind_shear_exponent = -0.1;
  EXPECT_THROW(AirdropEnv{cfg}, InvalidArgument);
}

TEST(AirdropEnv, RewardScaleDividesLandingScore) {
  AirdropConfig a = quick_config(), b = quick_config();
  b.reward_scale = 200.0;  // half the penalty of the default 100
  AirdropEnv ea(a), eb(b);
  ea.seed(31);
  eb.seed(31);
  ea.reset();
  eb.reset();
  env::StepResult ra, rb;
  do {
    ra = ea.step(Vec{1.0});
  } while (!ra.done());
  do {
    rb = eb.step(Vec{1.0});
  } while (!rb.done());
  EXPECT_NEAR(ea.last_landing().distance, eb.last_landing().distance, 1e-9);
  EXPECT_NEAR(ra.reward, 2.0 * rb.reward, 1e-9);
}

TEST(AirdropEnv, ZeroShapingMeansSilentFlight) {
  AirdropConfig cfg = quick_config();
  cfg.shaping_weight = 0.0;
  AirdropEnv env(cfg);
  env.seed(32);
  env.reset();
  env::StepResult r;
  do {
    r = env.step(Vec{1.0});
    if (!r.done()) {
      EXPECT_DOUBLE_EQ(r.reward, 0.0);
    }
  } while (!r.done());
  EXPECT_LT(r.reward, 0.0);  // only the landing reward remains
}

TEST(AirdropEnv, MaxEpisodeStepsTruncates) {
  AirdropConfig cfg = quick_config();
  cfg.max_episode_steps = 3;
  cfg.altitude_min = 110.0;
  cfg.altitude_max = 120.0;  // cannot land in 3 steps
  AirdropEnv env(cfg);
  env.seed(33);
  env.reset();
  env::StepResult r;
  for (int i = 0; i < 3; ++i) r = env.step(Vec{1.0});
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.terminated);
  EXPECT_TRUE(env.episode_score().has_value());
}

TEST(AirdropEnv, PreciseTouchdownLocalizesLanding) {
  AirdropConfig coarse_cfg = quick_config();
  AirdropConfig precise_cfg = quick_config();
  precise_cfg.precise_touchdown = true;

  AirdropEnv coarse(coarse_cfg), precise(precise_cfg);
  coarse.seed(21);
  precise.seed(21);
  coarse.reset();
  precise.reset();
  env::StepResult rc, rp;
  do {
    rc = coarse.step(Vec{1.0});
  } while (!rc.done());
  do {
    rp = precise.step(Vec{1.0});
  } while (!rp.done());

  // The coarse env reports the state after overshooting below ground; the
  // precise one stops at z ~ 0.
  EXPECT_LE(coarse.raw_state()[2], 0.0);
  EXPECT_NEAR(precise.raw_state()[2], 0.0, 0.05);
  // Touchdown time is never later than the end of the coarse interval.
  EXPECT_LE(precise.last_landing().flight_time,
            coarse.last_landing().flight_time + 1e-9);
}

TEST(AirdropEnv, LowerOrderIsLessAccurateOnOneInterval) {
  // Integrate one aggressive-turn control interval with RK3 (single step)
  // and with a tight-tolerance reference; the RK3 truncation error must be
  // visible but bounded — the fidelity knob of the study.
  const CanopyParams params;
  const WindState wind{};
  const auto rhs = make_canopy_rhs(params, wind, 1.0);

  Vec coarse = trim_state(params, 0.0, 0.0, 300.0, 0.0, wind);
  Vec ref = coarse;

  ode::AdaptiveOptions loose;
  loose.rtol = 1e6;
  loose.atol = 1e6;
  loose.h_initial = 1.0;
  ode::ExplicitRk rk3(ode::bogacki_shampine23(), loose);
  rk3.integrate(rhs, 0.0, 1.0, coarse);

  ode::AdaptiveOptions tight;
  tight.rtol = 1e-12;
  tight.atol = 1e-12;
  ode::ExplicitRk rk45(ode::dormand_prince45(), tight);
  rk45.integrate(rhs, 0.0, 1.0, ref);

  double err = 0.0;
  for (std::size_t i = 0; i < coarse.size(); ++i)
    err = std::max(err, std::abs(coarse[i] - ref[i]));
  EXPECT_GT(err, 1e-8);
  EXPECT_LT(err, 1.0);
}

}  // namespace
}  // namespace darl::airdrop
