// Unit tests for darl/linalg: vector kernels and the dense matrix.

#include <gtest/gtest.h>

#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/stats.hpp"
#include "darl/linalg/matrix.hpp"
#include "darl/linalg/vec.hpp"

namespace darl {
namespace {

TEST(Vec, AxpyAddSub) {
  Vec y{1.0, 2.0};
  axpy(2.0, Vec{3.0, 4.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
  EXPECT_THROW(axpy(1.0, Vec{1.0}, y), InvalidArgument);

  const Vec s = add({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(s[1], 6.0);
  const Vec d = sub({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(d[0], -2.0);
}

TEST(Vec, DotNormScale) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({-7.0, 2.0}), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf({}), 0.0);
  Vec x{1.0, -2.0};
  scale(x, -2.0);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  const Vec sc = scaled({1.0, 2.0}, 3.0);
  EXPECT_DOUBLE_EQ(sc[1], 6.0);
}

TEST(Vec, HadamardClampFinite) {
  const Vec h = hadamard({2.0, 3.0}, {4.0, -1.0});
  EXPECT_DOUBLE_EQ(h[0], 8.0);
  EXPECT_DOUBLE_EQ(h[1], -3.0);
  const Vec c = clamped({-5.0, 0.5, 5.0}, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(c[0], -1.0);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
  EXPECT_TRUE(all_finite({1.0, 2.0}));
  EXPECT_FALSE(all_finite({1.0, std::nan("")}));
}

TEST(Vec, RmsNormScaled) {
  // sqrt(mean((x/s)^2)) with x = {3,4}, s = {1,2} -> sqrt((9+4)/2)
  EXPECT_NEAR(rms_norm_scaled({3.0, 4.0}, {1.0, 2.0}), std::sqrt(6.5), 1e-14);
  EXPECT_THROW(rms_norm_scaled({1.0}, {0.0}), InvalidArgument);
  EXPECT_DOUBLE_EQ(rms_norm_scaled({}, {}), 0.0);
}

TEST(Matrix, MatvecAndTranspose) {
  Matrix a(2, 3);
  // [[1,2,3],[4,5,6]]
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      a(r, c) = static_cast<double>(r * 3 + c + 1);
  const Vec y = a.matvec({1.0, 0.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  const Vec z = a.matvec_t({1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_THROW(a.matvec({1.0}), InvalidArgument);
}

TEST(Matrix, AddOuterAndAddScaled) {
  Matrix a(2, 2, 1.0);
  a.add_outer(2.0, {1.0, 0.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(a(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);

  Matrix b(2, 2, 0.5);
  a.add_scaled(2.0, b);
  EXPECT_DOUBLE_EQ(a(1, 1), 2.0);
  Matrix wrong(3, 2);
  EXPECT_THROW(a.add_scaled(1.0, wrong), InvalidArgument);
}

TEST(Matrix, MultiplyAgainstManual) {
  Matrix a(2, 3), b(3, 2);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = static_cast<double>(i + 1);
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = static_cast<double>(i);
  const Matrix c = Matrix::multiply(a, b);
  // a = [[1,2,3],[4,5,6]]; b = [[0,1],[2,3],[4,5]]
  EXPECT_DOUBLE_EQ(c(0, 0), 16.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 34.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 49.0);
  EXPECT_THROW(Matrix::multiply(a, a), InvalidArgument);
}

TEST(Matrix, BoundsCheckedAccess) {
  Matrix a(2, 2);
  EXPECT_THROW(a.at(2, 0), InvalidArgument);
  EXPECT_THROW(a.at(0, 2), InvalidArgument);
  a.at(1, 1) = 5.0;
  EXPECT_DOUBLE_EQ(a.at(1, 1), 5.0);
  EXPECT_THROW(Matrix(0, 3), InvalidArgument);
}

TEST(Matrix, KaimingInitStatistics) {
  Rng rng(3);
  Matrix w(64, 256);
  w.randomize_kaiming(rng, 1.0);
  RunningStats s;
  for (double v : w.data()) s.push(v);
  EXPECT_NEAR(s.mean(), 0.0, 0.002);
  EXPECT_NEAR(s.stddev(), 1.0 / 16.0, 0.002);  // gain/sqrt(cols) = 1/16
}

}  // namespace
}  // namespace darl
