// Unit tests for darl/linalg: vector kernels and the dense matrix.

#include <gtest/gtest.h>

#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/stats.hpp"
#include "darl/linalg/matrix.hpp"
#include "darl/linalg/thread_pool.hpp"
#include "darl/linalg/vec.hpp"

namespace darl {
namespace {

TEST(Vec, AxpyAddSub) {
  Vec y{1.0, 2.0};
  axpy(2.0, Vec{3.0, 4.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
  EXPECT_THROW(axpy(1.0, Vec{1.0}, y), InvalidArgument);

  const Vec s = add({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(s[1], 6.0);
  const Vec d = sub({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(d[0], -2.0);
}

TEST(Vec, DotNormScale) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({-7.0, 2.0}), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf({}), 0.0);
  Vec x{1.0, -2.0};
  scale(x, -2.0);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  const Vec sc = scaled({1.0, 2.0}, 3.0);
  EXPECT_DOUBLE_EQ(sc[1], 6.0);
}

TEST(Vec, HadamardClampFinite) {
  const Vec h = hadamard({2.0, 3.0}, {4.0, -1.0});
  EXPECT_DOUBLE_EQ(h[0], 8.0);
  EXPECT_DOUBLE_EQ(h[1], -3.0);
  const Vec c = clamped({-5.0, 0.5, 5.0}, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(c[0], -1.0);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
  EXPECT_TRUE(all_finite({1.0, 2.0}));
  EXPECT_FALSE(all_finite({1.0, std::nan("")}));
}

TEST(Vec, RmsNormScaled) {
  // sqrt(mean((x/s)^2)) with x = {3,4}, s = {1,2} -> sqrt((9+4)/2)
  EXPECT_NEAR(rms_norm_scaled({3.0, 4.0}, {1.0, 2.0}), std::sqrt(6.5), 1e-14);
  EXPECT_THROW(rms_norm_scaled({1.0}, {0.0}), InvalidArgument);
  EXPECT_DOUBLE_EQ(rms_norm_scaled({}, {}), 0.0);
}

TEST(Matrix, MatvecAndTranspose) {
  Matrix a(2, 3);
  // [[1,2,3],[4,5,6]]
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      a(r, c) = static_cast<double>(r * 3 + c + 1);
  const Vec y = a.matvec({1.0, 0.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  const Vec z = a.matvec_t({1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_THROW(a.matvec({1.0}), InvalidArgument);
}

TEST(Matrix, AddOuterAndAddScaled) {
  Matrix a(2, 2, 1.0);
  a.add_outer(2.0, {1.0, 0.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(a(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);

  Matrix b(2, 2, 0.5);
  a.add_scaled(2.0, b);
  EXPECT_DOUBLE_EQ(a(1, 1), 2.0);
  Matrix wrong(3, 2);
  EXPECT_THROW(a.add_scaled(1.0, wrong), InvalidArgument);
}

TEST(Matrix, MultiplyAgainstManual) {
  Matrix a(2, 3), b(3, 2);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = static_cast<double>(i + 1);
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = static_cast<double>(i);
  const Matrix c = Matrix::multiply(a, b);
  // a = [[1,2,3],[4,5,6]]; b = [[0,1],[2,3],[4,5]]
  EXPECT_DOUBLE_EQ(c(0, 0), 16.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 34.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 49.0);
  EXPECT_THROW(Matrix::multiply(a, a), InvalidArgument);
}

TEST(Matrix, BoundsCheckedAccess) {
  Matrix a(2, 2);
  EXPECT_THROW(a.at(2, 0), InvalidArgument);
  EXPECT_THROW(a.at(0, 2), InvalidArgument);
  a.at(1, 1) = 5.0;
  EXPECT_DOUBLE_EQ(a.at(1, 1), 5.0);
  EXPECT_THROW(Matrix(0, 3), InvalidArgument);
}

TEST(Matrix, KaimingInitStatistics) {
  Rng rng(3);
  Matrix w(64, 256);
  w.randomize_kaiming(rng, 1.0);
  RunningStats s;
  for (double v : w.data()) s.push(v);
  EXPECT_NEAR(s.mean(), 0.0, 0.002);
  EXPECT_NEAR(s.stddev(), 1.0 / 16.0, 0.002);  // gain/sqrt(cols) = 1/16
}

// ---------------------------------------------------------------------------
// Blocked / threaded gemm vs. the canonical accumulation chain
//
// Matrix::gemm documents one per-element contract: each C(i, j) is the
// stored value extended by (alpha * a_it) * b_tj terms in ascending t, one
// chained scalar add per term. The reference below is that contract
// written as the plainest possible triple loop — the pre-blocking PR-4
// loop order. Blocking, packing, and the pool's row partition must all be
// bitwise-invisible against it, at every width, for every flavour, on
// shapes chosen to stress the edges (prime dims, K not a multiple of the
// 64-term panel, K below one sweep4 pass, m below the NT packing cutoff).

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal(0.0, 1.0);
  return m;
}

void reference_gemm(double alpha, const Matrix& a, bool trans_a,
                    const Matrix& b, bool trans_b, Matrix& c) {
  const std::size_t m = c.rows(), n = c.cols();
  const std::size_t k = trans_a ? a.rows() : a.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c(i, j);
      for (std::size_t t = 0; t < k; ++t) {
        const double a_it = trans_a ? a(t, i) : a(i, t);
        const double b_tj = trans_b ? b(j, t) : b(t, j);
        acc += (alpha * a_it) * b_tj;
      }
      c(i, j) = acc;
    }
  }
}

struct GemmShape {
  std::size_t m, n, k;
};

/// Run one flavour over the edge-case shape set at pool widths 1, 2 and 4
/// and demand bitwise equality with the reference chain every time.
void check_flavour_bitwise(bool trans_a, bool trans_b) {
  const GemmShape shapes[] = {
      {13, 17, 71},   // prime dims, K not a multiple of the 64-term panel
      {3, 5, 2},      // K below one sweep4 pass
      {67, 31, 64},   // K exactly one panel, odd m/n
      {9, 129, 130},  // K spanning three panels with a remainder
      {1, 64, 64},    // single output row (NT: below the packing cutoff)
  };
  linalg::ThreadPool& pool = linalg::ThreadPool::instance();
  Rng rng(17);
  for (const GemmShape& s : shapes) {
    const Matrix a = trans_a ? random_matrix(s.k, s.m, rng)
                             : random_matrix(s.m, s.k, rng);
    const Matrix b = trans_b ? random_matrix(s.n, s.k, rng)
                             : random_matrix(s.k, s.n, rng);
    const Matrix c0 = random_matrix(s.m, s.n, rng);  // nonzero seed values
    const double alpha = -0.75;
    Matrix expected = c0;
    reference_gemm(alpha, a, trans_a, b, trans_b, expected);
    for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
      pool.configure(width);
      Matrix c = c0;
      Matrix::gemm(alpha, a, trans_a, b, trans_b, c);
      for (std::size_t i = 0; i < c.size(); ++i) {
        ASSERT_EQ(c.data()[i], expected.data()[i])
            << "flavour " << (trans_a ? "T" : "N") << (trans_b ? "T" : "N")
            << " shape " << s.m << "x" << s.n << "x" << s.k << " width "
            << width << " element " << i;
      }
    }
  }
  pool.configure(linalg::env_thread_width());
}

TEST(GemmBitwise, NtMatchesReferenceChainAtAllWidths) {
  check_flavour_bitwise(false, true);
}

TEST(GemmBitwise, TnMatchesReferenceChainAtAllWidths) {
  check_flavour_bitwise(true, false);
}

TEST(GemmBitwise, NnMatchesReferenceChainAtAllWidths) {
  check_flavour_bitwise(false, false);
}

TEST(GemmBitwise, TtMatchesReferenceChain) {
  check_flavour_bitwise(true, true);
}

// The serving contract at the gemm level: row i of a batched NT product
// equals the same row computed as a batch of one (the small-m dot kernel),
// bitwise — rows are independent, so batching is invisible per sample.
TEST(GemmBitwise, NtBatchedRowsEqualPerRowProducts) {
  Rng rng(23);
  const std::size_t m = 64, n = 33, k = 67;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  Matrix c(m, n, 0.0);
  Matrix::gemm(1.0, a, false, b, true, c);
  for (std::size_t i = 0; i < m; ++i) {
    Matrix arow(1, k);
    std::copy(a.row(i), a.row(i) + k, arow.data().begin());
    Matrix crow(1, n, 0.0);
    Matrix::gemm(1.0, arow, false, b, true, crow);
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(c(i, j), crow(0, j)) << "row " << i << " col " << j;
    }
  }
}

// Regression: configure() after a threaded run must restart the epoch
// along with the workers. A stale epoch woke freshly spawned workers
// straight into the previous run's task_/ctx_ — a dangling pointer to a
// returned stack frame (crashed the width-sweep bench). Alternate widths
// with parallel-sized runs between every reconfigure; each run must still
// match the reference chain, and the sanitizer trees watch the rest.
TEST(GemmBitwise, ReconfigureAfterThreadedRunStaysSound) {
  linalg::ThreadPool& pool = linalg::ThreadPool::instance();
  Rng rng(31);
  const std::size_t m = 64, n = 64, k = 64;  // above the parallel cutoff
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  const Matrix c0 = random_matrix(m, n, rng);
  Matrix expected = c0;
  reference_gemm(1.0, a, false, b, true, expected);
  for (const std::size_t width : {std::size_t{4}, std::size_t{2},
                                  std::size_t{4}, std::size_t{1},
                                  std::size_t{4}}) {
    pool.configure(width);
    Matrix c = c0;
    Matrix::gemm(1.0, a, false, b, true, c);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_EQ(c.data()[i], expected.data()[i])
          << "width " << width << " element " << i;
    }
  }
  pool.configure(linalg::env_thread_width());
}

// The fast-math tier is opt-in, exempt from the bitwise contract, and
// bounded: each element may differ from the exactly-rounded result only by
// the fused-rounding slack k * u * sum_t |alpha * a_it * b_tj| (DESIGN.md
// §16). On hardware without AVX2+FMA set_fast_math(true) stays off and the
// diff is exactly zero, which the bound also accepts.
TEST(GemmBitwise, FastMathStaysWithinDivergenceBound) {
  Rng rng(29);
  const std::size_t m = 32, n = 48, k = 96;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  Matrix exact(m, n, 0.0);
  Matrix::gemm(1.0, a, false, b, true, exact);
  set_fast_math(true);
  Matrix fused(m, n, 0.0);
  Matrix::gemm(1.0, a, false, b, true, fused);
  set_fast_math(false);
  const double u = 0x1p-52;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double mag = 0.0;
      for (std::size_t t = 0; t < k; ++t) mag += std::abs(a(i, t) * b(j, t));
      ASSERT_LE(std::abs(fused(i, j) - exact(i, j)),
                static_cast<double>(k) * u * mag)
          << "element (" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace darl
