// Tests for the framework backends: worker mechanics, deployment
// validation, metric plausibility and the architectural signatures the
// paper attributes to each framework (multi-node speedup, vectorization
// coupling, single-node power advantage).

#include <gtest/gtest.h>

#include "darl/common/error.hpp"
#include "darl/env/cartpole.hpp"
#include "darl/env/pendulum.hpp"
#include "darl/env/wrappers.hpp"
#include "darl/frameworks/backend.hpp"
#include "darl/rl/evaluate.hpp"

namespace darl::frameworks {
namespace {

TrainRequest small_request(FrameworkKind kind, std::size_t nodes,
                           std::size_t cores) {
  (void)kind;
  TrainRequest req;
  req.env_factory = env::make_cartpole_factory(100);
  req.algo.kind = rl::AlgoKind::PPO;
  req.algo.ppo.epochs = 2;
  req.algo.ppo.minibatch_size = 32;
  req.deployment.nodes = nodes;
  req.deployment.cores_per_node = cores;
  req.total_timesteps = 2048;
  req.train_batch_total = 512;
  req.steps_per_env = 128;
  req.eval_episodes = 5;
  req.seed = 7;
  return req;
}

TEST(Worker, CollectsExactStepCountAndEpisodes) {
  rl::AlgorithmSpec spec;
  spec.kind = rl::AlgoKind::PPO;
  auto algo = rl::make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 1);
  RolloutWorker worker(3, env::make_cartpole_factory(20)(), algo->make_actor(), 99);
  worker.sync(algo->policy_params());

  const rl::WorkerBatch batch = worker.collect(100);
  EXPECT_EQ(batch.worker_id, 3u);
  ASSERT_EQ(batch.transitions.size(), 100u);
  for (const auto& t : batch.transitions) {
    EXPECT_EQ(t.obs.size(), 4u);
    EXPECT_LE(t.log_prob, 0.0);
  }
  // 20-step time limit: about 5 episodes must have finished.
  EXPECT_GE(worker.episodes().size(), 3u);

  const CollectCost cost = worker.take_cost();
  EXPECT_EQ(cost.steps, 100u);
  EXPECT_EQ(cost.inferences, 100u);
  EXPECT_GT(cost.env_cost_units, 0.0);
  EXPECT_EQ(worker.take_cost().steps, 0u);  // drained
}

TEST(Worker, CollectionContinuesAcrossCalls) {
  rl::AlgorithmSpec spec;
  spec.kind = rl::AlgoKind::PPO;
  auto algo = rl::make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 2);
  RolloutWorker worker(0, env::make_cartpole_factory(10)(), algo->make_actor(), 5);
  worker.sync(algo->policy_params());
  worker.collect(15);
  worker.collect(15);
  std::size_t total_len = 0;
  for (const auto& ep : worker.episodes()) total_len += ep.length;
  EXPECT_LE(total_len, 30u);  // episodes fit inside the collected steps
}

TEST(Worker, ActBatchMatchesSequentialAct) {
  rl::AlgorithmSpec spec;
  spec.kind = rl::AlgoKind::PPO;
  auto algo =
      rl::make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 1);
  auto batched = algo->make_actor();
  auto sequential = algo->make_actor();
  batched->set_params(algo->policy_params());
  sequential->set_params(algo->policy_params());

  std::vector<Vec> obs;
  Rng data(41);
  for (std::size_t i = 0; i < 9; ++i) {
    Vec o(4);
    for (double& v : o) v = data.normal(0.0, 1.0);
    obs.push_back(std::move(o));
  }

  // Identical rng streams: the batched path must consume draws in the same
  // per-slot order as a sequential loop.
  Rng rng_a(17), rng_b(17);
  std::vector<rl::ActOutput> out(obs.size());
  batched->act_batch(obs, rng_a, out);
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const rl::ActOutput ref = sequential->act(obs[i], rng_b);
    ASSERT_EQ(out[i].action.size(), ref.action.size()) << "slot " << i;
    for (std::size_t j = 0; j < ref.action.size(); ++j) {
      EXPECT_EQ(out[i].action[j], ref.action[j]) << "slot " << i;
    }
    EXPECT_EQ(out[i].log_prob, ref.log_prob) << "slot " << i;
  }
}

TEST(VecWorker, CollectsContiguousPerEnvSegments) {
  rl::AlgorithmSpec spec;
  spec.kind = rl::AlgoKind::PPO;
  auto algo =
      rl::make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 1);
  const std::size_t n_envs = 4;
  RolloutWorker worker(1, env::make_cartpole_factory(20), n_envs,
                       algo->make_actor(), 99);
  worker.sync(algo->policy_params());

  const rl::WorkerBatch batch = worker.collect(64);
  ASSERT_EQ(batch.transitions.size(), 64u);
  const std::size_t rounds = 64 / n_envs;
  for (std::size_t e = 0; e < n_envs; ++e) {
    for (std::size_t t = 0; t < rounds; ++t) {
      const rl::Transition& tr = batch.transitions[e * rounds + t];
      if (t + 1 == rounds) {
        // A segment cut mid-episode is marked truncated so GAE / v-trace
        // bootstrap instead of chaining into the next sub-env's segment.
        EXPECT_TRUE(tr.done()) << "env " << e;
      } else if (!tr.done()) {
        // Mid-episode: this step's next_obs is the next step's obs.
        const rl::Transition& nx = batch.transitions[e * rounds + t + 1];
        ASSERT_EQ(tr.next_obs.size(), nx.obs.size());
        for (std::size_t j = 0; j < nx.obs.size(); ++j) {
          EXPECT_EQ(tr.next_obs[j], nx.obs[j]) << "env " << e << " step " << t;
        }
      }
    }
  }

  const CollectCost cost = worker.take_cost();
  EXPECT_EQ(cost.steps, 64u);
  EXPECT_EQ(cost.inferences, 64u);
  EXPECT_GT(cost.env_cost_units, 0.0);
  EXPECT_EQ(worker.n_envs(), n_envs);

  // 20-step time limit across 4 sub-envs for 16 rounds: episodes finished.
  EXPECT_GE(worker.episodes().size(), 1u);
}

TEST(VecWorker, IdenticalSeedsProduceIdenticalBatches) {
  rl::AlgorithmSpec spec;
  spec.kind = rl::AlgoKind::PPO;
  auto algo =
      rl::make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 1);
  RolloutWorker a(0, env::make_cartpole_factory(20), 3, algo->make_actor(), 7);
  RolloutWorker b(0, env::make_cartpole_factory(20), 3, algo->make_actor(), 7);
  a.sync(algo->policy_params());
  b.sync(algo->policy_params());

  const rl::WorkerBatch ba = a.collect(24);
  const rl::WorkerBatch bb = b.collect(24);
  ASSERT_EQ(ba.transitions.size(), bb.transitions.size());
  for (std::size_t i = 0; i < ba.transitions.size(); ++i) {
    EXPECT_EQ(ba.transitions[i].obs, bb.transitions[i].obs);
    EXPECT_EQ(ba.transitions[i].action, bb.transitions[i].action);
    EXPECT_EQ(ba.transitions[i].reward, bb.transitions[i].reward);
    EXPECT_EQ(ba.transitions[i].log_prob, bb.transitions[i].log_prob);
    EXPECT_EQ(ba.transitions[i].terminated, bb.transitions[i].terminated);
    EXPECT_EQ(ba.transitions[i].truncated, bb.transitions[i].truncated);
  }
}

TEST(VecWorker, RejectsStepCountNotDivisibleByEnvs) {
  rl::AlgorithmSpec spec;
  spec.kind = rl::AlgoKind::PPO;
  auto algo =
      rl::make_algorithm(spec, 4, env::ActionSpace(env::DiscreteSpace(2)), 1);
  RolloutWorker worker(0, env::make_cartpole_factory(20), 4,
                       algo->make_actor(), 3);
  worker.sync(algo->policy_params());
  EXPECT_THROW(worker.collect(10), InvalidArgument);
}

TEST(Backends, FactoryAndNames) {
  EXPECT_STREQ(make_backend(FrameworkKind::RayRllib)->name(), "RLlib");
  EXPECT_STREQ(make_backend(FrameworkKind::StableBaselines)->name(),
               "Stable Baselines");
  EXPECT_STREQ(make_backend(FrameworkKind::TfAgents)->name(), "TF-Agents");
}

TEST(Backends, SingleNodeFrameworksRejectMultiNode) {
  StableBaselinesBackend sb;
  EXPECT_THROW(sb.run(small_request(FrameworkKind::StableBaselines, 2, 2)),
               InvalidArgument);
  TfAgentsBackend tfa;
  EXPECT_THROW(tfa.run(small_request(FrameworkKind::TfAgents, 2, 2)),
               InvalidArgument);
}

class BackendRunTest : public ::testing::TestWithParam<FrameworkKind> {};

TEST_P(BackendRunTest, ProducesPlausibleMetrics) {
  auto backend = make_backend(GetParam());
  const TrainResult r = backend->run(small_request(GetParam(), 1, 2));
  EXPECT_GE(r.timesteps, 2048u);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_GT(r.episodes, 0u);
  EXPECT_GT(r.sim_seconds, 0.0);
  EXPECT_GT(r.sim_energy_joules, 0.0);
  EXPECT_GT(r.reward, 0.0);  // CartPole reward is positive
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST_P(BackendRunTest, DeterministicForFixedSeed) {
  auto b1 = make_backend(GetParam());
  auto b2 = make_backend(GetParam());
  const TrainResult r1 = b1->run(small_request(GetParam(), 1, 2));
  const TrainResult r2 = b2->run(small_request(GetParam(), 1, 2));
  EXPECT_DOUBLE_EQ(r1.reward, r2.reward);
  EXPECT_DOUBLE_EQ(r1.sim_seconds, r2.sim_seconds);
  EXPECT_DOUBLE_EQ(r1.sim_energy_joules, r2.sim_energy_joules);
}

TEST_P(BackendRunTest, MoreCoresFasterSimTime) {
  auto b2 = make_backend(GetParam());
  auto b4 = make_backend(GetParam());
  const TrainResult r2 = b2->run(small_request(GetParam(), 1, 2));
  const TrainResult r4 = b4->run(small_request(GetParam(), 1, 4));
  EXPECT_LT(r4.sim_seconds, r2.sim_seconds);
}

INSTANTIATE_TEST_SUITE_P(AllFrameworks, BackendRunTest,
                         ::testing::Values(FrameworkKind::RayRllib,
                                           FrameworkKind::StableBaselines,
                                           FrameworkKind::TfAgents),
                         [](const auto& gen_info) {
                           switch (gen_info.param) {
                             case FrameworkKind::RayRllib: return "RLlib";
                             case FrameworkKind::StableBaselines: return "SB";
                             default: return "TFA";
                           }
                         });

TEST(RllibBackend, TwoNodesFasterThanOne) {
  RllibBackend backend;
  const TrainResult one = backend.run(small_request(FrameworkKind::RayRllib, 1, 4));
  RllibBackend backend2;
  const TrainResult two = backend2.run(small_request(FrameworkKind::RayRllib, 2, 4));
  EXPECT_LT(two.sim_seconds, one.sim_seconds);
}

TEST(RllibBackend, TwoNodesBurnMorePowerPerSecond) {
  RllibBackend b1, b2;
  const TrainResult one = b1.run(small_request(FrameworkKind::RayRllib, 1, 4));
  const TrainResult two = b2.run(small_request(FrameworkKind::RayRllib, 2, 4));
  EXPECT_GT(two.sim_energy_joules / two.sim_seconds,
            one.sim_energy_joules / one.sim_seconds);
}

TEST(StableBaselinesBackend, FewerCoresMeansMoreFrequentUpdates) {
  StableBaselinesBackend b2, b4;
  const TrainResult r2 = b2.run(small_request(FrameworkKind::StableBaselines, 1, 2));
  const TrainResult r4 = b4.run(small_request(FrameworkKind::StableBaselines, 1, 4));
  // Same total timesteps, per-env rollout fixed: the 2-core run updates on
  // smaller batches, hence more iterations.
  EXPECT_GT(r2.iterations, r4.iterations);
}

TEST(TfAgentsBackend, LowerEnergyThanRllibSameDeployment) {
  TfAgentsBackend tfa;
  RllibBackend rllib;
  const TrainResult a = tfa.run(small_request(FrameworkKind::TfAgents, 1, 4));
  const TrainResult b = rllib.run(small_request(FrameworkKind::RayRllib, 1, 4));
  EXPECT_LT(a.sim_energy_joules, b.sim_energy_joules);
}

TEST(Costs, ProfilesMatchTheFrameworkStories) {
  const BackendCosts rllib = default_costs(FrameworkKind::RayRllib);
  const BackendCosts sb = default_costs(FrameworkKind::StableBaselines);
  const BackendCosts tfa = default_costs(FrameworkKind::TfAgents);
  // TF-Agents: the most cost-effective CPU use (paper §VI-B).
  EXPECT_LT(tfa.per_step_overhead_s, sb.per_step_overhead_s);
  EXPECT_LT(tfa.per_step_overhead_s, rllib.per_step_overhead_s);
  EXPECT_LT(tfa.train_tax, rllib.train_tax);
  // Vectorized backends batch their inference; RLlib workers do not.
  EXPECT_LT(sb.inference_batch_efficiency, 1.0);
  EXPECT_LT(tfa.inference_batch_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(rllib.inference_batch_efficiency, 1.0);
}

TEST(RllibBackend, RunsImpalaAlgorithm) {
  TrainRequest req = small_request(FrameworkKind::RayRllib, 2, 2);
  req.algo.kind = rl::AlgoKind::IMPALA;
  req.train_batch_total = 256;
  RllibBackend backend;
  const TrainResult r = backend.run(req);
  EXPECT_GE(r.timesteps, req.total_timesteps);
  EXPECT_GT(r.reward, 0.0);  // CartPole
  EXPECT_GT(r.iterations, 0u);
}

TEST(Backends, EpisodesComeFromAllWorkers) {
  // 2x2 deployment: four workers, each contributing episodes.
  RllibBackend backend;
  const TrainResult r = backend.run(small_request(FrameworkKind::RayRllib, 2, 2));
  // 2048 steps across 4 workers with a 100-step limit: >= 4 x 4 episodes.
  EXPECT_GE(r.episodes, 16u);
}

TEST(Backends, FinalPolicyDeploysIntoMatchingActor) {
  StableBaselinesBackend backend;
  TrainRequest req = small_request(FrameworkKind::StableBaselines, 1, 2);
  const TrainResult r = backend.run(req);
  ASSERT_FALSE(r.final_policy.empty());

  // Rebuild the architecture and load the trained parameters.
  auto probe = req.env_factory();
  auto algo = rl::make_algorithm(req.algo, probe->observation_space().dim(),
                                 probe->action_space(), 999);
  auto actor = algo->make_actor();
  EXPECT_NO_THROW(actor->set_params(r.final_policy));
  // The deployed greedy policy performs like the backend's evaluation
  // (same parameters; the eval is greedy and the env deterministic given
  // its seed).
  auto env = req.env_factory();
  env->seed(123);
  Rng rng(1);
  const rl::EvalResult eval = rl::evaluate_policy(*actor, *env, 5, rng, false);
  EXPECT_GT(eval.mean_total_reward, 9.0);  // CartPole: beyond trivial falls
}

TEST(Backends, SacRunsThroughBackends) {
  TrainRequest req;
  req.env_factory = [] {
    return std::make_unique<env::TimeLimit>(
        std::make_unique<env::PendulumEnv>(), 50);
  };
  req.algo.kind = rl::AlgoKind::SAC;
  req.algo.sac.warmup_steps = 64;
  req.algo.sac.batch_size = 16;
  req.algo.sac.updates_per_step = 0.1;
  req.deployment = {1, 2};
  req.total_timesteps = 512;
  req.train_batch_total = 128;
  req.steps_per_env = 64;
  req.eval_episodes = 2;

  for (const auto kind : {FrameworkKind::RayRllib, FrameworkKind::StableBaselines,
                          FrameworkKind::TfAgents}) {
    auto backend = make_backend(kind);
    const TrainResult r = backend->run(req);
    EXPECT_GE(r.timesteps, 512u) << framework_name(kind);
    EXPECT_LT(r.reward, 0.0) << framework_name(kind);  // Pendulum is negative
  }
}

}  // namespace
}  // namespace darl::frameworks
