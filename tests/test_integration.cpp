// End-to-end integration: the methodology applied to the real airdrop case
// study at a tiny training budget, exercising env -> algorithm -> backend
// -> study -> ranking -> report as one pipeline.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "darl/core/airdrop_study.hpp"
#include "darl/core/ranking.hpp"

namespace darl::core {
namespace {

AirdropStudyOptions tiny_options() {
  AirdropStudyOptions opts;
  opts.total_timesteps = 1024;
  opts.seeds_per_trial = 1;
  opts.eval_episodes = 4;
  opts.train_batch_total = 256;
  opts.steps_per_env = 64;
  opts.base_env.altitude_max = 120.0;
  return opts;
}

TEST(AirdropStudy, SpaceMatchesThePaper) {
  const ParamSpace space = airdrop_param_space();
  EXPECT_EQ(space.size(), 5u);
  EXPECT_EQ(space.domain(kParamRkOrder).category(), ParamCategory::Environment);
  EXPECT_EQ(space.domain(kParamFramework).category(), ParamCategory::Algorithm);
  EXPECT_EQ(space.domain(kParamNodes).category(), ParamCategory::System);
  // Full grid: 3 RK x 3 frameworks x 2 algorithms x 2 nodes x 2 cores.
  EXPECT_EQ(space.grid_size(2), 72u);
}

TEST(AirdropStudy, Table1ConfigsAreValidAndMatchAnchors) {
  const ParamSpace space = airdrop_param_space();
  const auto configs = paper_table1_configs();
  ASSERT_EQ(configs.size(), 18u);
  for (const auto& c : configs) EXPECT_NO_THROW(space.validate(c));

  // Anchor solutions from the paper's prose (1-based ids).
  EXPECT_EQ(configs[1].get_categorical(kParamFramework), "RLlib");   // #2
  EXPECT_EQ(configs[1].get_integer(kParamNodes), 2);
  EXPECT_EQ(configs[1].get_integer(kParamRkOrder), 3);
  EXPECT_EQ(configs[10].get_categorical(kParamFramework), "TF-Agents");  // #11
  EXPECT_EQ(configs[10].get_integer(kParamNodes), 1);
  EXPECT_EQ(configs[15].get_categorical(kParamFramework), "StableBaselines");  // #16
  EXPECT_EQ(configs[15].get_integer(kParamRkOrder), 8);
  EXPECT_EQ(configs[6].get_integer(kParamNodes), 1);  // #7 vs #8: node count
  EXPECT_EQ(configs[7].get_integer(kParamNodes), 2);
  EXPECT_EQ(configs[6].get_integer(kParamRkOrder),
            configs[7].get_integer(kParamRkOrder));
}

TEST(AirdropStudy, EvaluateProducesAllMetrics) {
  const CaseStudyDef def = make_airdrop_case_study(tiny_options());
  LearningConfiguration config;
  config.set(kParamRkOrder, std::int64_t{3});
  config.set(kParamFramework, std::string("TF-Agents"));
  config.set(kParamAlgorithm, std::string("PPO"));
  config.set(kParamNodes, std::int64_t{1});
  config.set(kParamCores, std::int64_t{2});

  const MetricValues m = def.evaluate(config, 1.0, 7);
  EXPECT_TRUE(m.count("Reward"));
  EXPECT_LT(m.at("Reward"), 0.0);  // landing scores are negative
  EXPECT_GT(m.at("ComputationTime"), 0.0);
  EXPECT_GT(m.at("PowerConsumption"), 0.0);
  EXPECT_TRUE(m.count("TrainReward"));
}

TEST(AirdropStudy, MultiNodeRequestClampedForSingleNodeFrameworks) {
  const CaseStudyDef def = make_airdrop_case_study(tiny_options());
  LearningConfiguration config;
  config.set(kParamRkOrder, std::int64_t{3});
  config.set(kParamFramework, std::string("StableBaselines"));
  config.set(kParamAlgorithm, std::string("PPO"));
  config.set(kParamNodes, std::int64_t{2});  // SB cannot use 2 nodes
  config.set(kParamCores, std::int64_t{2});
  EXPECT_NO_THROW(def.evaluate(config, 1.0, 7));
}

TEST(AirdropStudy, SmallRandomSearchEndToEnd) {
  const CaseStudyDef def = make_airdrop_case_study(tiny_options());
  // Restrict to PPO configs (SAC at this tiny budget is slow) by running a
  // fixed list of 3 representative configurations.
  std::vector<LearningConfiguration> configs;
  for (const char* fw : {"RLlib", "StableBaselines", "TF-Agents"}) {
    LearningConfiguration c;
    c.set(kParamRkOrder, std::int64_t{3});
    c.set(kParamFramework, std::string(fw));
    c.set(kParamAlgorithm, std::string("PPO"));
    c.set(kParamNodes, std::int64_t{fw == std::string("RLlib") ? 2 : 1});
    c.set(kParamCores, std::int64_t{2});
    configs.push_back(c);
  }
  Study study(def, std::make_unique<FixedListSearch>(configs),
              {.seed = 11, .log_progress = false});
  study.run();
  ASSERT_EQ(study.trials().size(), 3u);

  // Ranking and reporting run over the real results.
  const auto table = study.metric_table();
  ParetoRanking ranking;
  const auto ranked = ranking.rank(def.metrics, table);
  EXPECT_EQ(ranked.size(), 3u);

  std::vector<std::size_t> front;
  const std::string plot = render_pareto_plot(
      def, study.trials(), "Reward", "ComputationTime", "fig", &front);
  EXPECT_FALSE(front.empty());
  EXPECT_NE(plot.find("Reward"), std::string::npos);

  const std::string txt = render_trial_table(def, study.trials());
  EXPECT_NE(txt.find("RLlib"), std::string::npos);
}

TEST(AirdropStudy, CampaignCacheRoundTrip) {
  // Miniature 2-trial campaign through the caching path.
  const std::string path = "test_campaign_cache.csv";
  std::remove(path.c_str());

  const CaseStudyDef def = make_airdrop_case_study(tiny_options());
  auto subset = paper_table1_configs();
  subset.resize(2);
  Study study(def, std::make_unique<FixedListSearch>(subset),
              {.seed = 5, .log_progress = false});
  study.run();
  {
    std::ofstream out(path);
    write_trials_csv(out, def, study.trials());
  }
  std::ifstream in(path);
  const auto loaded = load_trials_csv(in, def);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].config.cache_key(), study.trials()[0].config.cache_key());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace darl::core
