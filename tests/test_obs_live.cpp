// tests/test_obs_live.cpp — the wire-exposed telemetry path end to end:
// obs::Exporter over a real loopback socket (valid responses, malformed
// requests, concurrent scrapes during a live BatchScheduler run), the
// scraped-counters-match-server-stats acceptance bar, and the flight
// recorder's dump-on-trial-fault hook driven through a real fault-injection
// campaign. The concurrency tests get real teeth in the TSan tree that
// tools/check.sh builds.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "darl/common/error.hpp"
#include "darl/common/jsonl.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/core/explorer.hpp"
#include "darl/core/fault_injection.hpp"
#include "darl/core/study.hpp"
#include "darl/net/socket.hpp"
#include "darl/obs/export.hpp"
#include "darl/obs/flight.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/timeseries.hpp"
#include "darl/rl/factory.hpp"
#include "darl/serve/batch_scheduler.hpp"
#include "darl/serve/policy_store.hpp"

using namespace darl;
using namespace darl::serve;

namespace {

/// Connect to the exporter on loopback, or an invalid fd when the
/// exporter is gone (the 1s deadline keeps a dead-port probe fast).
net::OwnedFd connect_exporter(int port) {
  net::Endpoint ep;
  ep.kind = net::Endpoint::Kind::Tcp;
  ep.port = port;
  try {
    return net::connect_endpoint(ep, 1.0);
  } catch (const net::NetError&) {
    return net::OwnedFd{};
  }
}

/// Send raw bytes to the exporter and return the response status code
/// (0 when the connection failed or no status line came back). Lets the
/// malformed-request tests step outside what obs::http_get can produce;
/// the byte shuffling itself goes through the darl/net transport helpers
/// (the naked-socket-call lint rule bans raw recv/send here too).
int raw_request_status(int port, const std::string& request) {
  net::OwnedFd fd = connect_exporter(port);
  if (!fd.valid()) return 0;
  net::send_all(fd.get(), request);  // a cut-off mid-send still gets a read
  const std::string response = net::recv_until_eof(fd.get());
  // "HTTP/1.0 NNN ..."
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > response.size()) return 0;
  return std::atoi(response.c_str() + sp + 1);
}

/// Drip-feed `bytes` to the exporter one byte at a time, `gap_ms` apart,
/// never completing a request line; then read whatever the server answers
/// and return its status (0 = connection refused / no status line). This
/// is the hostile-client shape that used to head-of-line block the
/// single-threaded accept loop for hours: each byte re-armed the per-recv
/// timeout, so the connection never timed out as a whole.
int drip_request_status(int port, std::size_t bytes, int gap_ms) {
  net::OwnedFd fd = connect_exporter(port);
  if (!fd.valid()) return 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    // The server is expected to cut us off mid-drip; send_all's
    // MSG_NOSIGNAL turns that into an error return that ends the loop
    // instead of a SIGPIPE that takes the test binary down.
    if (net::send_all(fd.get(), "G", 1).status != net::IoStatus::Ok) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(gap_ms));
  }
  const std::string response = net::recv_until_eof(fd.get());
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > response.size()) return 0;
  return std::atoi(response.c_str() + sp + 1);
}

/// The value of one series line in a Prometheus text body, or -1.
double prometheus_value(const std::string& text, const std::string& series) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.compare(0, series.size() + 1, series + ' ') == 0) {
      return std::atof(line.c_str() + series.size() + 1);
    }
  }
  return -1.0;
}

PolicySpec make_spec(std::uint64_t seed) {
  PolicySpec spec;
  spec.sizes = {4, 16, 3};
  spec.activation = nn::Activation::Tanh;
  Rng rng(seed);
  nn::Mlp net(spec.sizes, spec.activation, rng);
  spec.net_params = net.get_flat_params();
  spec.action_space = env::ActionSpace(env::DiscreteSpace(3));
  spec.decode = GreedyDecode::ArgmaxDiscrete;
  return spec;
}

/// Exporter tests drive a private registry/sampler so the global metrics
/// gate (off by default in the test binary) stays untouched.
class ExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry = std::make_unique<obs::Registry>();
    sampler = std::make_unique<obs::TimeSeries>(obs::TimeSeriesOptions{
        .capacity = 32, .period_ms = 1000, .registry = registry.get()});
    exporter = std::make_unique<obs::Exporter>(obs::ExporterOptions{
        .port = 0, .registry = registry.get(), .timeseries = sampler.get()});
  }
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::TimeSeries> sampler;
  std::unique_ptr<obs::Exporter> exporter;
};

}  // namespace

// ---------------------------------------------------------------------------
// Exporter endpoints

TEST_F(ExporterTest, ServesHealthMetricsAndSnapshot) {
  registry->counter("live.requests").add(5);
  registry->gauge("live.depth").set(2.0);
  registry->histogram("live.latency_us", {10.0, 100.0}).observe(42.0);
  sampler->sample_once();
  registry->counter("live.requests").add(5);
  sampler->sample_once();

  exporter->start();
  ASSERT_TRUE(exporter->running());
  ASSERT_GT(exporter->port(), 0);

  const obs::HttpResponse health = obs::http_get(exporter->port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const obs::HttpResponse metrics = obs::http_get(exporter->port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE live_requests counter"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("live_requests 10"), std::string::npos);
  EXPECT_NE(metrics.body.find("live_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);

  const obs::HttpResponse snap =
      obs::http_get(exporter->port(), "/snapshot.json");
  EXPECT_EQ(snap.status, 200);
  const Json doc = Json::parse(snap.body);
  const auto& top = doc.as_object();
  EXPECT_TRUE(top.at("uptime_s").is_number());
  const auto& counters =
      top.at("metrics").as_object().at("counters").as_object();
  EXPECT_DOUBLE_EQ(counters.at("live.requests").as_number(), 10.0);
  // The sampler's ring tail rides along for rate/percentile rendering.
  const auto& series = top.at("series").as_object();
  EXPECT_EQ(series.at("live.requests").as_object().at("points").as_array()
                .size(),
            2u);

  EXPECT_EQ(obs::http_get(exporter->port(), "/nope").status, 404);
  EXPECT_GE(exporter->requests_served(), 4u);

  exporter->stop();
  EXPECT_FALSE(exporter->running());
  EXPECT_THROW(obs::http_get(exporter->port(), "/healthz"), Error);
}

TEST_F(ExporterTest, AnswersMalformedRequestsWithoutDying) {
  exporter->start();
  const int port = exporter->port();

  EXPECT_EQ(raw_request_status(port, "garbage\r\n"), 400);
  EXPECT_EQ(raw_request_status(port, "\r\n"), 400);
  EXPECT_EQ(raw_request_status(port, "POST /metrics HTTP/1.0\r\n\r\n"), 405);
  EXPECT_EQ(raw_request_status(port, "GET /metrics/extra HTTP/1.0\r\n\r\n"),
            404);
  // Query strings are ignored, not 404ed.
  EXPECT_EQ(raw_request_status(port, "GET /healthz?probe=1 HTTP/1.0\r\n\r\n"),
            200);

  // The listener survived all of the above.
  EXPECT_EQ(obs::http_get(port, "/healthz").status, 200);
}

TEST_F(ExporterTest, HealthzAnswersFastWhileDripFeederHoldsAConnection) {
  exporter->start();
  const int port = exporter->port();

  // A drip-feeder that never completes its request line: one byte every
  // 50 ms for ~1.5 s (inside the 2 s connection deadline, and fewer sends
  // than the read budget, so the hold is as long as the server allows).
  std::atomic<int> drip_status{-1};
  std::thread dripper([&] { drip_status = drip_request_status(port, 30, 50); });

  // Give the drip connection time to land on a handler, then demand
  // health probes stay fast while it is being held. Before the handler
  // pool + total deadline, this is exactly the case that wedged /healthz
  // for the duration of the drip (hours, at one byte per 2 s timeout).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int probe = 0; probe < 5; ++probe) {
    Stopwatch latency;
    const obs::HttpResponse health = obs::http_get(port, "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_LT(latency.seconds(), 0.1) << "probe " << probe;
  }

  dripper.join();
  // The drip connection itself was eventually answered 408 and counted.
  EXPECT_EQ(drip_status.load(), 408);
  EXPECT_GE(exporter->connections_dropped(), 1u);
  EXPECT_EQ(obs::http_get(port, "/healthz").status, 200);
}

TEST_F(ExporterTest, SlowClientIsCutOffByTheConnectionDeadline) {
  obs::ExporterOptions opt;
  opt.port = 0;
  opt.registry = registry.get();
  opt.connection_deadline_s = 0.3;
  obs::Exporter slow_exporter(opt);
  slow_exporter.start();
  const int port = slow_exporter.port();

  // Each 50 ms byte used to re-arm the per-recv timeout indefinitely; the
  // wall-clock deadline now ends the connection at ~0.3 s regardless.
  Stopwatch held;
  const int status = drip_request_status(port, 100, 50);
  EXPECT_EQ(status, 408);
  EXPECT_LT(held.seconds(), 2.0);
  EXPECT_GE(slow_exporter.connections_dropped(), 1u);

  // A silent connection (no bytes at all) is bounded the same way.
  Stopwatch silent_held;
  EXPECT_EQ(drip_request_status(port, 0, 0), 408);
  EXPECT_LT(silent_held.seconds(), 2.0);

  EXPECT_EQ(obs::http_get(port, "/healthz").status, 200);
  slow_exporter.stop();
}

TEST_F(ExporterTest, ReadBudgetCutsOffByteAtATimeClients) {
  obs::ExporterOptions opt;
  opt.port = 0;
  opt.registry = registry.get();
  opt.connection_deadline_s = 30.0;  // deadline alone would take too long
  opt.max_request_reads = 4;
  obs::Exporter budget_exporter(opt);
  budget_exporter.start();
  const int port = budget_exporter.port();

  // 10 ms gaps keep each byte in its own recv(): the read budget (4)
  // trips long before the 30 s deadline would.
  Stopwatch held;
  EXPECT_EQ(drip_request_status(port, 20, 10), 408);
  EXPECT_LT(held.seconds(), 5.0);
  EXPECT_GE(budget_exporter.connections_dropped(), 1u);

  // Legitimate requests that arrive in a few reads are untouched.
  EXPECT_EQ(obs::http_get(port, "/healthz").status, 200);
  budget_exporter.stop();
}

TEST_F(ExporterTest, RestartAfterStopBindsAFreshPort) {
  exporter->start();
  const int first = exporter->port();
  EXPECT_EQ(obs::http_get(first, "/healthz").status, 200);
  exporter->stop();
  exporter->start();
  EXPECT_GT(exporter->port(), 0);
  EXPECT_EQ(obs::http_get(exporter->port(), "/healthz").status, 200);
  exporter->stop();
}

// ---------------------------------------------------------------------------
// Live serve: concurrent scrapes + scraped-counters-match-stats acceptance

TEST(ObsLiveServe, ConcurrentScrapesDuringBatchedServingStayConsistent) {
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);

  PolicyStore store;
  store.publish(make_spec(11));
  ServeConfig config;
  config.max_batch = 8;
  config.workers = 2;

  obs::TimeSeries sampler(obs::TimeSeriesOptions{.capacity = 64,
                                                 .period_ms = 1});
  sampler.start();
  obs::Exporter exporter;
  exporter.start();

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 200;
  std::atomic<std::uint64_t> ok_served{0};
  {
    BatchScheduler server(store, config);
    std::atomic<bool> scrape_stop{false};
    std::vector<std::thread> scrapers;
    for (int s = 0; s < 2; ++s) {
      scrapers.emplace_back([&exporter, &scrape_stop] {
        while (!scrape_stop.load(std::memory_order_relaxed)) {
          const obs::HttpResponse m =
              obs::http_get(exporter.port(), "/metrics");
          EXPECT_EQ(m.status, 200);
          const obs::HttpResponse j =
              obs::http_get(exporter.port(), "/snapshot.json");
          EXPECT_EQ(j.status, 200);
          EXPECT_NO_THROW(Json::parse(j.body));
        }
      });
    }

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&server, &ok_served, c] {
        Rng rng(100 + static_cast<std::uint64_t>(c));
        Vec obs_vec(4);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          for (double& v : obs_vec) v = rng.uniform(-1.0, 1.0);
          const Response r = server.serve(obs_vec, 1e6);
          if (r.outcome == Outcome::Ok) {
            ok_served.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    scrape_stop.store(true, std::memory_order_relaxed);
    for (auto& t : scrapers) t.join();
    server.shutdown();
  }
  sampler.stop();

  // Acceptance bar: the wire-scraped counter equals both the registry's
  // view and the ground truth the clients observed.
  const obs::HttpResponse metrics =
      obs::http_get(exporter.port(), "/metrics");
  ASSERT_EQ(metrics.status, 200);
  const double scraped = prometheus_value(metrics.body, "serve_served");
  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  EXPECT_EQ(static_cast<std::uint64_t>(scraped),
            snap.counters.at("serve.served"));
  EXPECT_EQ(static_cast<std::uint64_t>(scraped),
            ok_served.load(std::memory_order_relaxed));
  EXPECT_EQ(ok_served.load(std::memory_order_relaxed),
            static_cast<std::uint64_t>(kClients) * kRequestsPerClient);
  EXPECT_GE(sampler.samples_taken(), 2u);

  exporter.stop();
  obs::set_metrics_enabled(false);
  obs::Registry::global().reset();
}

// ---------------------------------------------------------------------------
// Flight recorder: dump-on-trial-fault through a real campaign

TEST(ObsLiveFlight, TrialFaultProducesANonEmptyFlightDump) {
  const std::string dump_path = "test_obs_live_flight.jsonl";
  std::remove(dump_path.c_str());

  obs::flight_clear();
  obs::enable_flight();
  obs::set_flight_dump_path(dump_path);

  core::FaultInjectionOptions fi;
  fi.throw_probability = 1.0;  // every attempt fails -> dump guaranteed
  const core::CaseStudyDef def = core::make_fault_injection_case_study(fi);
  core::Study study(def,
                    std::make_unique<core::GridSearch>(def.space, 2),
                    {.seed = 3,
                     .log_progress = false,
                     .max_retries = 0,
                     .on_trial_failure = core::FailurePolicy::Skip});
  EXPECT_NO_THROW(study.run());

  obs::disable_flight();
  obs::set_flight_dump_path(std::string());

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "study fault did not write " << dump_path;
  std::string line;
  std::size_t records = 0;
  bool saw_failure_note = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    const Json record = Json::parse(line);  // throws on malformed output
    const auto& obj = record.as_object();
    EXPECT_TRUE(obj.count("kind"));
    EXPECT_TRUE(obj.count("name"));
    if (obj.count("name") && obj.at("name").as_string() == "trial_failure") {
      saw_failure_note = true;
    }
    ++records;
  }
  EXPECT_GT(records, 0u);
  EXPECT_TRUE(saw_failure_note);

  obs::flight_clear();
  std::remove(dump_path.c_str());
}
