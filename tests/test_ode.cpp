// Tests for the ODE substrate: tableau validity, adaptive error control,
// empirical convergence orders (the property that makes the RK-order study
// parameter meaningful) and cost accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "darl/common/error.hpp"
#include "darl/ode/event.hpp"
#include "darl/ode/explicit_rk.hpp"
#include "darl/ode/gbs.hpp"
#include "darl/ode/integrator.hpp"
#include "darl/ode/tableau.hpp"

namespace darl::ode {
namespace {

// y' = y, y(0) = 1, y(t) = e^t.
const Rhs kExp = [](double, const Vec& y, Vec& dydt) { dydt[0] = y[0]; };

// Harmonic oscillator: y = (q, p), q' = p, p' = -q. Energy q^2+p^2 conserved.
const Rhs kOsc = [](double, const Vec& y, Vec& dydt) {
  dydt[0] = y[1];
  dydt[1] = -y[0];
};

// Nonlinear scalar problem with known solution: y' = -2 t y^2, y(0)=1
// => y(t) = 1/(1+t^2).
const Rhs kRational = [](double t, const Vec& y, Vec& dydt) {
  dydt[0] = -2.0 * t * y[0] * y[0];
};

TEST(Tableau, AllBuiltinsValidate) {
  EXPECT_NO_THROW(rk4_classic().validate());
  EXPECT_NO_THROW(bogacki_shampine23().validate());
  EXPECT_NO_THROW(dormand_prince45().validate());
  EXPECT_EQ(bogacki_shampine23().stages(), 4u);
  EXPECT_EQ(dormand_prince45().stages(), 7u);
  EXPECT_TRUE(dormand_prince45().fsal);
}

TEST(Tableau, ValidationCatchesBrokenRowSum) {
  ButcherTableau t = rk4_classic();
  t.a[1][0] = 0.3;  // breaks sum(a[1]) == c[1]
  EXPECT_THROW(t.validate(), Error);
}

TEST(Tableau, ValidationCatchesBadWeights) {
  ButcherTableau t = rk4_classic();
  t.b[0] += 0.5;
  EXPECT_THROW(t.validate(), Error);
}

TEST(FixedStepRk, Rk4FourthOrderConvergence) {
  // Halving the step should cut the error by ~2^4.
  double errors[2];
  for (int k = 0; k < 2; ++k) {
    FixedStepRk integ(rk4_classic(), k == 0 ? 20 : 40);
    Vec y{1.0};
    integ.integrate(kExp, 0.0, 2.0, y);
    errors[k] = std::abs(y[0] - std::exp(2.0));
  }
  const double order = std::log2(errors[0] / errors[1]);
  EXPECT_NEAR(order, 4.0, 0.3);
}

TEST(FixedStepRk, CountsRhsEvals) {
  FixedStepRk integ(rk4_classic(), 10);
  Vec y{1.0};
  integ.integrate(kExp, 0.0, 1.0, y);
  EXPECT_EQ(integ.stats().n_steps, 10u);
  EXPECT_EQ(integ.stats().n_rhs_evals, 40u);  // 4 stages x 10 steps
}

class AdaptiveOrderTest : public ::testing::TestWithParam<RkOrder> {};

TEST_P(AdaptiveOrderTest, MeetsToleranceOnNonlinearProblem) {
  AdaptiveOptions opts;
  opts.rtol = 1e-7;
  opts.atol = 1e-9;
  auto integ = make_integrator(GetParam(), opts);
  Vec y{1.0};
  integ->integrate(kRational, 0.0, 3.0, y);
  const double exact = 1.0 / (1.0 + 9.0);
  // The controller bounds local error; allow two orders of slack globally.
  EXPECT_NEAR(y[0], exact, 1e-5);
  EXPECT_GT(integ->stats().n_rhs_evals, 0u);
}

TEST_P(AdaptiveOrderTest, EnergyNearlyConservedOnOscillator) {
  AdaptiveOptions opts;
  opts.rtol = 1e-8;
  opts.atol = 1e-10;
  auto integ = make_integrator(GetParam(), opts);
  Vec y{1.0, 0.0};
  integ->integrate(kOsc, 0.0, 20.0, y);
  EXPECT_NEAR(y[0] * y[0] + y[1] * y[1], 1.0, 1e-5);
  EXPECT_NEAR(y[0], std::cos(20.0), 1e-5);
}

TEST_P(AdaptiveOrderTest, ZeroSpanIsNoOp) {
  auto integ = make_integrator(GetParam());
  Vec y{1.0};
  integ->integrate(kExp, 1.0, 1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_EQ(integ->stats().n_rhs_evals, 0u);
}

TEST_P(AdaptiveOrderTest, RejectsBackwardInterval) {
  auto integ = make_integrator(GetParam());
  Vec y{1.0};
  EXPECT_THROW(integ->integrate(kExp, 1.0, 0.0, y), InvalidArgument);
  Vec empty;
  EXPECT_THROW(integ->integrate(kExp, 0.0, 1.0, empty), InvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, AdaptiveOrderTest,
                         ::testing::Values(RkOrder::Order3, RkOrder::Order5,
                                           RkOrder::Order8),
                         [](const auto& gen_info) {
                           return std::string(rk_order_name(gen_info.param));
                         });

TEST(Adaptive, TighterToleranceMoreWork) {
  std::size_t evals[2];
  for (int k = 0; k < 2; ++k) {
    AdaptiveOptions opts;
    opts.rtol = k == 0 ? 1e-3 : 1e-9;
    opts.atol = opts.rtol * 1e-2;
    ExplicitRk integ(dormand_prince45(), opts);
    Vec y{1.0};
    integ.integrate(kRational, 0.0, 5.0, y);
    evals[k] = integ.stats().n_rhs_evals;
  }
  EXPECT_GT(evals[1], evals[0]);
}

TEST(Adaptive, EmpiricalOrderOfRk23) {
  // Fixed-step behaviour extracted by forcing single steps over shrinking
  // intervals: local error ~ h^(order+1) means global over fixed count of
  // steps ~ h^order.
  auto run = [](double h) {
    AdaptiveOptions opts;
    opts.rtol = 1e6;  // accept everything: pure fixed-step method
    opts.atol = 1e6;
    opts.h_initial = h;
    opts.h_max = h;
    ExplicitRk integ(bogacki_shampine23(), opts);
    Vec y{1.0};
    integ.integrate(kExp, 0.0, 1.0, y);  // 1/h equal steps
    return std::abs(y[0] - std::exp(1.0));
  };
  const double e1 = run(0.1);
  const double e2 = run(0.05);
  EXPECT_NEAR(std::log2(e1 / e2), 3.0, 0.4);
}

TEST(Adaptive, EmpiricalOrderOfRk45) {
  auto run = [](double h) {
    AdaptiveOptions opts;
    opts.rtol = 1e6;
    opts.atol = 1e6;
    opts.h_initial = h;
    opts.h_max = h;
    ExplicitRk integ(dormand_prince45(), opts);
    Vec y{1.0};
    integ.integrate(kExp, 0.0, 1.0, y);
    return std::abs(y[0] - std::exp(1.0));
  };
  const double e1 = run(0.2);
  const double e2 = run(0.1);
  EXPECT_NEAR(std::log2(e1 / e2), 5.0, 0.5);
}

TEST(Gbs, EmpiricalOrderIsEight) {
  auto run = [](double h) {
    AdaptiveOptions opts;
    opts.rtol = 1e6;
    opts.atol = 1e6;
    opts.h_initial = h;
    opts.h_max = h;
    GbsExtrapolation integ(4, opts);
    Vec y{1.0};
    integ.integrate(kExp, 0.0, 1.0, y);
    return std::abs(y[0] - std::exp(1.0));
  };
  const double e1 = run(0.5);
  const double e2 = run(0.25);
  EXPECT_NEAR(std::log2(e1 / e2), 8.0, 1.2);
}

TEST(Gbs, MuchMoreAccurateThanRk23AtSameStep) {
  AdaptiveOptions opts;
  opts.rtol = 1e6;
  opts.atol = 1e6;
  opts.h_initial = 0.25;
  opts.h_max = 0.25;

  ExplicitRk rk23(bogacki_shampine23(), opts);
  GbsExtrapolation gbs(4, opts);
  Vec y1{1.0}, y2{1.0};
  rk23.integrate(kRational, 0.0, 2.0, y1);
  gbs.integrate(kRational, 0.0, 2.0, y2);
  const double exact = 1.0 / 5.0;
  EXPECT_LT(std::abs(y2[0] - exact), std::abs(y1[0] - exact) / 100.0);
}

TEST(Gbs, CostsMoreEvalsPerStepThanRk) {
  AdaptiveOptions opts;
  opts.rtol = 1e6;
  opts.atol = 1e6;
  opts.h_initial = 1.0;
  opts.h_max = 1.0;

  ExplicitRk rk23(bogacki_shampine23(), opts);
  GbsExtrapolation gbs(4, opts);
  Vec y1{1.0}, y2{1.0};
  rk23.integrate(kExp, 0.0, 1.0, y1);
  gbs.integrate(kExp, 0.0, 1.0, y2);
  // Single step each: BS23 = 4 evals; GBS(k=4) midpoint transfers cost
  // n_j + 1 evals (initial derivative, n_j - 1 interior, smoothing), so
  // 3 + 5 + 7 + 9 = 24.
  EXPECT_EQ(rk23.stats().n_rhs_evals, 4u);
  EXPECT_EQ(gbs.stats().n_rhs_evals, 24u);
}

TEST(Adaptive, FsalSavesEvaluations) {
  AdaptiveOptions opts;
  opts.rtol = 1e-6;
  opts.atol = 1e-8;
  ExplicitRk integ(dormand_prince45(), opts);
  Vec y{1.0};
  integ.integrate(kExp, 0.0, 2.0, y);
  const auto& s = integ.stats();
  // Without FSAL every step costs 7 evals; with FSAL all accepted steps
  // after the first cost 6.
  EXPECT_LT(s.n_rhs_evals, 7 * (s.n_steps + s.n_rejected));
}

TEST(Adaptive, StepLimitEnforced) {
  AdaptiveOptions opts;
  opts.max_steps = 3;
  opts.h_max = 1e-4;
  opts.h_initial = 1e-4;
  ExplicitRk integ(dormand_prince45(), opts);
  Vec y{1.0};
  EXPECT_THROW(integ.integrate(kExp, 0.0, 1.0, y), Error);
}

TEST(Adaptive, RkOrderNames) {
  EXPECT_STREQ(rk_order_name(RkOrder::Order3), "RK3");
  EXPECT_STREQ(rk_order_name(RkOrder::Order5), "RK5");
  EXPECT_STREQ(rk_order_name(RkOrder::Order8), "RK8");
}

TEST(Event, LocalizesLinearCrossing) {
  // y' = -2 (constant fall): y = 5 - 2t crosses zero at t = 2.5.
  const Rhs fall = [](double, const Vec&, Vec& dydt) { dydt[0] = -2.0; };
  AdaptiveOptions opts;
  ExplicitRk integ(dormand_prince45(), opts);
  Vec y{5.0};
  const EventResult ev = integrate_with_event(
      integ, fall, 0.0, 10.0, y, [](double, const Vec& s) { return s[0]; },
      1e-6);
  EXPECT_TRUE(ev.triggered);
  EXPECT_NEAR(ev.t_end, 2.5, 1e-5);
  EXPECT_NEAR(y[0], 0.0, 1e-4);
}

TEST(Event, NoCrossingRunsToTheEnd) {
  const Rhs rise = [](double, const Vec&, Vec& dydt) { dydt[0] = 1.0; };
  AdaptiveOptions opts;
  ExplicitRk integ(dormand_prince45(), opts);
  Vec y{1.0};
  const EventResult ev = integrate_with_event(
      integ, rise, 0.0, 3.0, y, [](double, const Vec& s) { return s[0]; });
  EXPECT_FALSE(ev.triggered);
  EXPECT_DOUBLE_EQ(ev.t_end, 3.0);
  EXPECT_NEAR(y[0], 4.0, 1e-9);
}

TEST(Event, ImmediateWhenAlreadyPast) {
  const Rhs fall = [](double, const Vec&, Vec& dydt) { dydt[0] = -1.0; };
  AdaptiveOptions opts;
  ExplicitRk integ(dormand_prince45(), opts);
  Vec y{-1.0};
  const EventResult ev = integrate_with_event(
      integ, fall, 2.0, 5.0, y, [](double, const Vec& s) { return s[0]; });
  EXPECT_TRUE(ev.triggered);
  EXPECT_DOUBLE_EQ(ev.t_end, 2.0);
  EXPECT_DOUBLE_EQ(y[0], -1.0);  // state untouched
}

TEST(Event, NonlinearCrossingOnOscillator) {
  // cos(t) crosses zero at pi/2.
  AdaptiveOptions opts;
  opts.rtol = 1e-10;
  opts.atol = 1e-12;
  ExplicitRk integ(dormand_prince45(), opts);
  Vec y{1.0, 0.0};
  const EventResult ev = integrate_with_event(
      integ, kOsc, 0.0, 3.0, y, [](double, const Vec& s) { return s[0]; },
      1e-6);
  EXPECT_TRUE(ev.triggered);
  EXPECT_NEAR(ev.t_end, std::numbers::pi / 2, 1e-4);
}

TEST(Event, ValidatesArguments) {
  AdaptiveOptions opts;
  ExplicitRk integ(dormand_prince45(), opts);
  Vec y{1.0};
  EXPECT_THROW(integrate_with_event(integ, kExp, 1.0, 0.0, y,
                                    [](double, const Vec&) { return 1.0; }),
               InvalidArgument);
  EXPECT_THROW(integrate_with_event(integ, kExp, 0.0, 1.0, y,
                                    [](double, const Vec&) { return 1.0; },
                                    0.0),
               InvalidArgument);
}

TEST(Factory, ProducesExpectedOrders) {
  EXPECT_EQ(make_integrator(RkOrder::Order3)->order(), 3);
  EXPECT_EQ(make_integrator(RkOrder::Order5)->order(), 5);
  EXPECT_EQ(make_integrator(RkOrder::Order8)->order(), 8);
}

}  // namespace
}  // namespace darl::ode
