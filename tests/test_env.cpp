// Tests for the gym-style environment substrate: spaces, lifecycle rules,
// wrappers, vectorization and the classic-control environments.

#include <gtest/gtest.h>

#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/env/cartpole.hpp"
#include "darl/env/gridworld.hpp"
#include "darl/env/mountain_car.hpp"
#include "darl/env/pendulum.hpp"
#include "darl/env/vec_env.hpp"
#include "darl/env/wrappers.hpp"

namespace darl::env {
namespace {

TEST(BoxSpace, ContainsSampleClip) {
  BoxSpace box(Vec{-1.0, 0.0}, Vec{1.0, 2.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(box.contains(box.sample(rng)));
  EXPECT_FALSE(box.contains({-2.0, 1.0}));
  EXPECT_FALSE(box.contains({0.0}));
  const Vec c = box.clip({-5.0, 5.0});
  EXPECT_DOUBLE_EQ(c[0], -1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_THROW(BoxSpace(Vec{1.0}, Vec{0.0}), InvalidArgument);
  EXPECT_THROW(BoxSpace(Vec{}, Vec{}), InvalidArgument);
}

TEST(DiscreteSpace, EncodeDecodeSample) {
  DiscreteSpace d(3);
  EXPECT_EQ(d.decode(d.encode(2)), 2u);
  EXPECT_EQ(d.decode({0.4}), 0u);
  EXPECT_EQ(d.decode({1.6}), 2u);
  EXPECT_EQ(d.decode({99.0}), 2u);  // clamped
  EXPECT_TRUE(d.contains({1.0}));
  EXPECT_FALSE(d.contains({3.0}));
  EXPECT_FALSE(d.contains({}));
  Rng rng(2);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(d.contains(d.sample(rng)));
  EXPECT_THROW(DiscreteSpace(0), InvalidArgument);
  EXPECT_THROW(d.encode(3), InvalidArgument);
}

TEST(ActionSpace, VariantBehaviour) {
  ActionSpace disc{DiscreteSpace(4)};
  EXPECT_TRUE(disc.is_discrete());
  EXPECT_EQ(disc.action_dim(), 1u);
  EXPECT_THROW(disc.box(), InvalidArgument);
  EXPECT_EQ(disc.describe(), "Discrete(4)");

  ActionSpace cont{BoxSpace(2, -1.0, 1.0)};
  EXPECT_TRUE(cont.is_box());
  EXPECT_EQ(cont.action_dim(), 2u);
  EXPECT_THROW(cont.discrete(), InvalidArgument);
  EXPECT_EQ(cont.describe(), "Box(dim=2)");
}

TEST(EnvBase, StepBeforeResetThrows) {
  CartPoleEnv env;
  EXPECT_THROW(env.step({0.0}), InvalidState);
  env.reset();
  EXPECT_NO_THROW(env.step({0.0}));
}

TEST(EnvBase, StepAfterDoneThrowsUntilReset) {
  CartPoleEnv env;
  env.seed(7);
  env.reset();
  // Push right forever: the pole falls within the 200-step horizon.
  StepResult r;
  for (int i = 0; i < 500; ++i) {
    r = env.step({1.0});
    if (r.done()) break;
  }
  ASSERT_TRUE(r.done());
  EXPECT_THROW(env.step({1.0}), InvalidState);
  env.reset();
  EXPECT_NO_THROW(env.step({1.0}));
}

TEST(EnvBase, WrongActionSizeThrows) {
  PendulumEnv env;
  env.reset();
  EXPECT_THROW(env.step({0.1, 0.2}), InvalidArgument);
}

TEST(EnvBase, SeedingReproducesEpisodes) {
  CartPoleEnv a, b;
  a.seed(99);
  b.seed(99);
  const Vec oa = a.reset();
  const Vec ob = b.reset();
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) EXPECT_DOUBLE_EQ(oa[i], ob[i]);
}

TEST(CartPole, TerminatesOnAngleOrPosition) {
  CartPoleEnv env;
  env.seed(3);
  env.reset();
  bool terminated = false;
  for (int i = 0; i < 1000 && !terminated; ++i) {
    const StepResult r = env.step({1.0});
    terminated = r.terminated;
    EXPECT_DOUBLE_EQ(r.reward, 1.0);
  }
  EXPECT_TRUE(terminated);
}

TEST(CartPole, ComputeCostDrains) {
  CartPoleEnv env;
  env.seed(4);
  env.reset();
  env.step({0.0});
  env.step({0.0});
  EXPECT_DOUBLE_EQ(env.take_compute_cost(), 2.0);
  EXPECT_DOUBLE_EQ(env.take_compute_cost(), 0.0);
}

TEST(Pendulum, RewardIsNonPositiveAndBounded) {
  PendulumEnv env;
  env.seed(5);
  env.reset();
  for (int i = 0; i < 100; ++i) {
    const StepResult r = env.step({0.5});
    EXPECT_LE(r.reward, 0.0);
    EXPECT_GE(r.reward, -17.0);  // -(pi^2 + 0.1*64 + 0.001*4) lower bound
    EXPECT_FALSE(r.terminated);
    // Observation is (cos, sin, thetadot): unit circle.
    EXPECT_NEAR(r.observation[0] * r.observation[0] +
                    r.observation[1] * r.observation[1],
                1.0, 1e-9);
  }
}

TEST(TimeLimit, TruncatesAtLimit) {
  auto env = std::make_unique<TimeLimit>(std::make_unique<PendulumEnv>(), 5);
  env->seed(1);
  env->reset();
  StepResult r;
  for (int i = 0; i < 5; ++i) r = env->step({0.0});
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.terminated);
  // Counter resets with the episode.
  env->reset();
  r = env->step({0.0});
  EXPECT_FALSE(r.truncated);
}

TEST(EpisodeMonitor, RecordsRewardScoreAndLength) {
  auto env = std::make_unique<EpisodeMonitor>(
      std::make_unique<TimeLimit>(std::make_unique<PendulumEnv>(), 3));
  env->seed(2);
  env->reset();
  double total = 0.0;
  for (int i = 0; i < 3; ++i) total += env->step({0.0}).reward;
  ASSERT_EQ(env->episodes().size(), 1u);
  EXPECT_DOUBLE_EQ(env->episodes()[0].total_reward, total);
  EXPECT_DOUBLE_EQ(env->episodes()[0].score, total);  // no domain score
  EXPECT_EQ(env->episodes()[0].length, 3u);
  EXPECT_DOUBLE_EQ(env->mean_recent_reward(10), total);
  EXPECT_DOUBLE_EQ(env->mean_recent_score(10), total);
}

TEST(RewardScale, MultipliesRewards) {
  auto env = std::make_unique<RewardScale>(std::make_unique<CartPoleEnv>(), 0.5);
  env->seed(3);
  env->reset();
  EXPECT_DOUBLE_EQ(env->step({0.0}).reward, 0.5);
}

TEST(ObservationNormalizer, OutputsBoundedObservations) {
  auto env = std::make_unique<ObservationNormalizer>(
      std::make_unique<PendulumEnv>(), 5.0);
  env->seed(4);
  Vec obs = env->reset();
  for (int i = 0; i < 50; ++i) {
    for (double v : obs) {
      EXPECT_LE(std::abs(v), 5.0);
      EXPECT_TRUE(std::isfinite(v));
    }
    obs = env->step({0.0}).observation;
  }
  EXPECT_EQ(env->observation_space().dim(), 3u);
}

TEST(MountainCar, NeedsMomentumToReachTheGoal) {
  env::MountainCarEnv env;
  env.seed(6);
  env.reset();
  // Pushing right forever does NOT reach the goal (under-powered car).
  bool reached = false;
  for (int i = 0; i < 300; ++i) {
    if (env.step({1.0}).terminated) {
      reached = true;
      break;
    }
  }
  EXPECT_FALSE(reached);

  // A bang-bang policy (push in the direction of the velocity) does.
  env.seed(6);
  Vec obs = env.reset();
  reached = false;
  for (int i = 0; i < 999 && !reached; ++i) {
    const double force = obs[1] >= 0.0 ? 1.0 : -1.0;
    const env::StepResult r = env.step({force});
    obs = r.observation;
    if (r.terminated) {
      reached = true;
      EXPECT_GT(r.reward, 90.0);  // success bonus
    }
  }
  EXPECT_TRUE(reached);
}

TEST(MountainCar, StateStaysInBounds) {
  env::MountainCarEnv env;
  env.seed(7);
  Rng rng(7);
  Vec obs = env.reset();
  for (int i = 0; i < 500; ++i) {
    const env::StepResult r = env.step({rng.uniform(-1.0, 1.0)});
    EXPECT_TRUE(env.observation_space().contains(r.observation));
    if (r.terminated) break;
  }
}

TEST(GridWorld, LayoutValidation) {
  EXPECT_THROW((GridWorldEnv{GridWorldLayout{{}}}), InvalidArgument);
  EXPECT_THROW((GridWorldEnv{GridWorldLayout{{"..", "..."}}}), InvalidArgument);
  EXPECT_THROW((GridWorldEnv{GridWorldLayout{{"..", ".."}}}), InvalidArgument);
  EXPECT_THROW((GridWorldEnv{GridWorldLayout{{"SS"}}}), InvalidArgument);
  EXPECT_THROW((GridWorldEnv{GridWorldLayout{{"SZ"}}}), InvalidArgument);
  EXPECT_NO_THROW((GridWorldEnv{GridWorldLayout::small_maze()}));
}

TEST(GridWorld, ShortestPathToGoalGivesBestReturn) {
  // small_maze: S..G in the top row — 3 steps right reaches the goal.
  GridWorldEnv env;
  env.seed(1);
  env.reset();
  double total = 0.0;
  env::StepResult r;
  for (int i = 0; i < 3; ++i) {
    r = env.step({1.0});  // right
    total += r.reward;
  }
  EXPECT_TRUE(r.terminated);
  EXPECT_NEAR(total, 1.0 - 2 * 0.01, 1e-12);
}

TEST(GridWorld, PitTerminatesWithPenalty) {
  // From S: right x3 would hit G; go down-right path to the pit at (3,1).
  GridWorldEnv env;
  env.seed(1);
  env.reset();
  env.step({1.0});  // right  -> (1,0)
  env.step({1.0});  // right  -> (2,0)
  env.step({2.0});  // down   -> (2,1)
  const env::StepResult r = env.step({1.0});  // right -> pit (3,1)
  EXPECT_TRUE(r.terminated);
  EXPECT_DOUBLE_EQ(r.reward, -1.0);
}

TEST(GridWorld, WallsAndEdgesBlockMovement) {
  GridWorldEnv env;
  env.seed(1);
  env.reset();
  EXPECT_EQ(env.position(), (std::pair<std::size_t, std::size_t>{0, 0}));
  env.step({0.0});  // up: off-grid, no-op
  EXPECT_EQ(env.position(), (std::pair<std::size_t, std::size_t>{0, 0}));
  env.step({3.0});  // left: off-grid, no-op
  EXPECT_EQ(env.position(), (std::pair<std::size_t, std::size_t>{0, 0}));
  env.step({2.0});  // down -> (0,1)
  env.step({1.0});  // right: wall '#' at (1,1), no-op
  EXPECT_EQ(env.position(), (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(GridWorld, ObservationIsOneHot) {
  GridWorldEnv env;
  env.seed(1);
  const Vec obs = env.reset();
  ASSERT_EQ(obs.size(), 16u);
  double sum = 0.0;
  for (double v : obs) sum += v;
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_DOUBLE_EQ(obs[0], 1.0);  // start at (0,0)
}

TEST(SyncVecEnv, StepsAllAndAutoResets) {
  SyncVecEnv vec(make_cartpole_factory(10), 3, 42);
  auto obs = vec.reset();
  EXPECT_EQ(obs.size(), 3u);
  std::size_t done_seen = 0;
  for (int step = 0; step < 30; ++step) {
    const VecStepResult r = vec.step(
        {Vec{1.0}, Vec{1.0}, Vec{1.0}});
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(r.observation[i].size(), 4u);
      if (r.terminated[i] || r.truncated[i]) {
        ++done_seen;
        EXPECT_FALSE(r.final_observation[i].empty());
      } else {
        EXPECT_TRUE(r.final_observation[i].empty());
      }
    }
  }
  EXPECT_GT(done_seen, 0u);
  EXPECT_EQ(vec.all_episodes().size(), done_seen);
}

TEST(SyncVecEnv, SubEnvsGetDistinctSeeds) {
  SyncVecEnv vec(make_cartpole_factory(), 2, 7);
  const auto obs = vec.reset();
  bool identical = true;
  for (std::size_t i = 0; i < obs[0].size(); ++i) {
    if (obs[0][i] != obs[1][i]) identical = false;
  }
  EXPECT_FALSE(identical);
}

TEST(SyncVecEnv, WrongActionCountThrows) {
  SyncVecEnv vec(make_cartpole_factory(), 2, 7);
  vec.reset();
  EXPECT_THROW(vec.step({Vec{0.0}}), InvalidArgument);
  EXPECT_THROW(SyncVecEnv(make_cartpole_factory(), 0, 1), InvalidArgument);
}

}  // namespace
}  // namespace darl::env
