// Tests for the neural-network substrate. The centerpiece is finite-
// difference gradient checking of the MLP backward pass and of every
// distribution gradient formula — the correctness foundation under PPO/SAC.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <numbers>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/stats.hpp"
#include "darl/nn/distributions.hpp"
#include "darl/nn/mlp.hpp"
#include "darl/nn/optimizer.hpp"

namespace darl::nn {
namespace {

// Numerical gradient of f at x via central differences.
double num_grad(const std::function<double(double)>& f, double x,
                double eps = 1e-6) {
  return (f(x + eps) - f(x - eps)) / (2.0 * eps);
}

class MlpGradCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(MlpGradCheck, BackwardMatchesFiniteDifferences) {
  Rng rng(1);
  Mlp net({3, 8, 5, 2}, GetParam(), rng);
  const Vec x{0.3, -0.7, 1.1};
  const Vec gout{1.0, -2.0};  // L = y0 - 2 y1

  net.zero_grad();
  net.forward(x);
  const Vec gin = net.backward(gout);

  auto loss_at = [&](Vec flat) {
    Mlp copy = net;
    copy.set_flat_params(flat);
    const Vec y = copy.evaluate(x);
    return y[0] * gout[0] + y[1] * gout[1];
  };

  const Vec flat = net.get_flat_params();
  // Collect analytic grads in flat order (w0, b0, w1, b1, ...).
  Vec analytic;
  for (const auto& p : net.params()) {
    analytic.insert(analytic.end(), p.grad->begin(), p.grad->end());
  }
  ASSERT_EQ(analytic.size(), flat.size());

  // Spot-check a spread of parameters (full sweep is slow in Debug).
  Rng pick(2);
  for (int k = 0; k < 60; ++k) {
    const std::size_t i = pick.index(flat.size());
    const double g = num_grad(
        [&](double v) {
          Vec f2 = flat;
          f2[i] = v;
          return loss_at(f2);
        },
        flat[i]);
    EXPECT_NEAR(analytic[i], g, 1e-5 * std::max(1.0, std::abs(g)))
        << "param index " << i;
  }

  // Input gradient too.
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double g = num_grad(
        [&](double v) {
          Vec x2 = x;
          x2[i] = v;
          const Vec y = net.evaluate(x2);
          return y[0] * gout[0] + y[1] * gout[1];
        },
        x[i]);
    EXPECT_NEAR(gin[i], g, 1e-5 * std::max(1.0, std::abs(g)));
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, MlpGradCheck,
                         ::testing::Values(Activation::Tanh, Activation::ReLU),
                         [](const auto& gen_info) {
                           return gen_info.param == Activation::Tanh ? "Tanh"
                                                                 : "ReLU";
                         });

TEST(Mlp, ForwardMatchesManualTinyNet) {
  Rng rng(3);
  Mlp net({2, 2, 1}, Activation::Tanh, rng);
  // Set known parameters: y = w2 * tanh(W1 x + b1) + b2.
  net.set_flat_params({1.0, 0.0, 0.0, 1.0,  // W1 (2x2 row-major)
                       0.1, -0.1,            // b1
                       2.0, -1.0,            // W2 (1x2)
                       0.5});                // b2
  const Vec y = net.evaluate({0.2, 0.4});
  const double h0 = std::tanh(0.2 + 0.1);
  const double h1 = std::tanh(0.4 - 0.1);
  EXPECT_NEAR(y[0], 2.0 * h0 - 1.0 * h1 + 0.5, 1e-12);
}

TEST(Mlp, EvaluateEqualsForward) {
  Rng rng(4);
  Mlp net({4, 16, 3}, Activation::Tanh, rng);
  const Vec x{0.1, 0.2, -0.3, 0.4};
  const Vec a = net.evaluate(x);
  const Vec b = net.forward(x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Mlp, FlatParamsRoundTrip) {
  Rng rng(5);
  Mlp a({3, 7, 2}, Activation::ReLU, rng);
  Mlp b({3, 7, 2}, Activation::ReLU, rng);
  b.set_flat_params(a.get_flat_params());
  const Vec x{1.0, -1.0, 0.5};
  const Vec ya = a.evaluate(x), yb = b.evaluate(x);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya[i], yb[i]);
  EXPECT_EQ(a.param_count(), 3u * 7u + 7u + 7u * 2u + 2u);
  EXPECT_THROW(b.set_flat_params(Vec{1.0}), InvalidArgument);
}

TEST(Mlp, BackwardWithoutForwardThrows) {
  Rng rng(6);
  Mlp net({2, 2}, Activation::Tanh, rng);
  EXPECT_THROW(net.backward({1.0, 1.0}), Error);
}

TEST(Mlp, FlopsPositiveAndMonotonic) {
  Rng rng(7);
  Mlp small({4, 8, 2}, Activation::Tanh, rng);
  Mlp big({4, 64, 64, 2}, Activation::Tanh, rng);
  EXPECT_GT(small.flops_per_forward(), 0.0);
  EXPECT_GT(big.flops_per_forward(), small.flops_per_forward());
}

// ------------------------------------------------------------- optimizers

TEST(Adam, MinimizesQuadratic) {
  Vec w{5.0, -3.0};
  Vec g(2, 0.0);
  Adam opt({{&w, &g, "w"}}, 0.05);
  for (int i = 0; i < 2000; ++i) {
    g[0] = 2.0 * (w[0] - 1.0);
    g[1] = 2.0 * (w[1] + 2.0);
    opt.step();
  }
  EXPECT_NEAR(w[0], 1.0, 1e-2);
  EXPECT_NEAR(w[1], -2.0, 1e-2);
  EXPECT_EQ(opt.steps_taken(), 2000u);
}

TEST(Sgd, MomentumMinimizesQuadratic) {
  Vec w{4.0};
  Vec g(1, 0.0);
  Sgd opt({{&w, &g, "w"}}, 0.05, 0.9);
  for (int i = 0; i < 500; ++i) {
    g[0] = 2.0 * w[0];
    opt.step();
  }
  EXPECT_NEAR(w[0], 0.0, 1e-3);
}

TEST(Optimizer, ValidationAndZeroGrad) {
  Vec w{1.0};
  Vec g{5.0};
  Adam opt({{&w, &g, "w"}}, 0.1);
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_THROW(Adam({}, 0.1), InvalidArgument);
  EXPECT_THROW(Adam({{&w, &g, "w"}}, -1.0), InvalidArgument);
  Vec bad_g{1.0, 2.0};
  EXPECT_THROW(Adam({{&w, &bad_g, "w"}}, 0.1), InvalidArgument);
  opt.set_learning_rate(0.2);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.2);
  EXPECT_THROW(opt.set_learning_rate(0.0), InvalidArgument);
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  Vec w{0.0, 0.0};
  Vec g{3.0, 4.0};
  const double pre = clip_grad_norm({{&w, &g, "w"}}, 1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(std::hypot(g[0], g[1]), 1.0, 1e-12);
  // Under the threshold: untouched.
  Vec g2{0.3, 0.4};
  clip_grad_norm({{&w, &g2, "w"}}, 1.0);
  EXPECT_DOUBLE_EQ(g2[0], 0.3);
}

// ---------------------------------------------------------- distributions

TEST(Categorical, SoftmaxAndLogProbConsistent) {
  const Vec logits{1.0, 2.0, -1.0};
  const Vec p = Categorical::softmax(logits);
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_NEAR(Categorical::log_prob(logits, a), std::log(p[a]), 1e-12);
  }
  EXPECT_THROW(Categorical::log_prob(logits, 3), InvalidArgument);
}

TEST(Categorical, SampleFrequenciesMatchProbabilities) {
  const Vec logits{0.0, 1.0};
  Rng rng(8);
  int ones = 0;
  for (int i = 0; i < 20000; ++i) ones += Categorical::sample(logits, rng) == 1;
  const double p1 = Categorical::softmax(logits)[1];
  EXPECT_NEAR(ones / 20000.0, p1, 0.02);
}

TEST(Categorical, EntropyUniformIsLogN) {
  EXPECT_NEAR(Categorical::entropy({0.5, 0.5, 0.5}), std::log(3.0), 1e-12);
  EXPECT_LT(Categorical::entropy({10.0, 0.0, 0.0}), 0.01);
}

TEST(Categorical, GradientsMatchFiniteDifferences) {
  const Vec logits{0.4, -0.2, 1.3};
  const std::size_t a = 2;
  const Vec glp = Categorical::log_prob_grad(logits, a);
  const Vec gent = Categorical::entropy_grad(logits);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double nlp = num_grad(
        [&](double v) {
          Vec l = logits;
          l[i] = v;
          return Categorical::log_prob(l, a);
        },
        logits[i]);
    EXPECT_NEAR(glp[i], nlp, 1e-6);
    const double nent = num_grad(
        [&](double v) {
          Vec l = logits;
          l[i] = v;
          return Categorical::entropy(l);
        },
        logits[i]);
    EXPECT_NEAR(gent[i], nent, 1e-6);
  }
}

TEST(DiagGaussian, LogProbClosedForm) {
  const Vec mean{0.0}, log_std{0.0}, x{0.0};
  EXPECT_NEAR(DiagGaussian::log_prob(mean, log_std, x),
              -0.5 * std::log(2.0 * std::numbers::pi), 1e-12);
  EXPECT_NEAR(DiagGaussian::entropy({0.0, 0.0}),
              2.0 * 0.5 * (std::log(2.0 * std::numbers::pi) + 1.0), 1e-12);
}

TEST(DiagGaussian, GradientsMatchFiniteDifferences) {
  const Vec mean{0.3, -0.5}, log_std{-0.2, 0.4}, x{0.8, -1.0};
  Vec dm, dls;
  DiagGaussian::log_prob_grad(mean, log_std, x, dm, dls);
  for (std::size_t i = 0; i < mean.size(); ++i) {
    const double nm = num_grad(
        [&](double v) {
          Vec m = mean;
          m[i] = v;
          return DiagGaussian::log_prob(m, log_std, x);
        },
        mean[i]);
    EXPECT_NEAR(dm[i], nm, 1e-6);
    const double ns = num_grad(
        [&](double v) {
          Vec ls = log_std;
          ls[i] = v;
          return DiagGaussian::log_prob(mean, ls, x);
        },
        log_std[i]);
    EXPECT_NEAR(dls[i], ns, 1e-6);
  }
}

TEST(DiagGaussian, SampleMoments) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    s.push(DiagGaussian::sample({1.0}, {std::log(2.0)}, rng)[0]);
  }
  EXPECT_NEAR(s.mean(), 1.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(SquashedGaussian, ActionsInsideUnitBox) {
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    const auto d = SquashedGaussian::sample({0.0, 2.0}, {0.5, 0.5}, rng);
    for (double a : d.action) {
      EXPECT_GT(a, -1.0);
      EXPECT_LT(a, 1.0);
    }
    EXPECT_TRUE(std::isfinite(d.log_prob));
  }
  const Vec m = SquashedGaussian::mode({0.7});
  EXPECT_NEAR(m[0], std::tanh(0.7), 1e-12);
}

TEST(SquashedGaussian, LogProbConsistentWithDraw) {
  Rng rng(11);
  const Vec mean{0.2}, log_std{-0.3};
  const auto d = SquashedGaussian::sample(mean, log_std, rng);
  EXPECT_NEAR(d.log_prob,
              SquashedGaussian::log_prob(mean, log_std, d.pre_tanh), 1e-12);
}

TEST(SquashedGaussian, PathwiseGradMatchesFiniteDifferences) {
  // L(mean, log_std) = c * log pi(a) + <ga, a>, a = tanh(mean + std * eps).
  const Vec mean{0.3, -0.4}, log_std{-0.5, 0.2}, eps{0.7, -1.1};
  const double c = 0.37;
  const Vec ga{0.9, -0.6};

  auto loss = [&](const Vec& m, const Vec& ls) {
    Vec z(m.size()), a(m.size());
    for (std::size_t i = 0; i < m.size(); ++i) {
      z[i] = m[i] + std::exp(ls[i]) * eps[i];
      a[i] = std::tanh(z[i]);
    }
    double L = c * SquashedGaussian::log_prob(m, ls, z);
    for (std::size_t i = 0; i < m.size(); ++i) L += ga[i] * a[i];
    return L;
  };

  Vec z(mean.size());
  for (std::size_t i = 0; i < mean.size(); ++i)
    z[i] = mean[i] + std::exp(log_std[i]) * eps[i];
  Vec dm, dls;
  SquashedGaussian::pathwise_grad(mean, log_std, z, eps, c, ga, dm, dls);

  for (std::size_t i = 0; i < mean.size(); ++i) {
    const double nm = num_grad(
        [&](double v) {
          Vec m = mean;
          m[i] = v;
          return loss(m, log_std);
        },
        mean[i]);
    EXPECT_NEAR(dm[i], nm, 2e-5);
    const double ns = num_grad(
        [&](double v) {
          Vec ls = log_std;
          ls[i] = v;
          return loss(mean, ls);
        },
        log_std[i]);
    EXPECT_NEAR(dls[i], ns, 2e-5);
  }
}

}  // namespace
}  // namespace darl::nn
