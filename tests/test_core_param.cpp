// Tests for the learning-configuration stage: parameter domains, spaces,
// grid decoding, sampling and validation.

#include <gtest/gtest.h>

#include <set>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/core/param.hpp"

namespace darl::core {
namespace {

ParamSpace demo_space() {
  ParamSpace space;
  space.add(ParamDomain::categorical("framework", {"A", "B", "C"},
                                     ParamCategory::Algorithm));
  space.add(ParamDomain::integer_set("nodes", {1, 2}, ParamCategory::System));
  space.add(ParamDomain::integer_range("cores", 2, 4, 2, ParamCategory::System));
  return space;
}

TEST(ParamDomain, CategoricalBasics) {
  const auto d = ParamDomain::categorical("f", {"x", "y"}, ParamCategory::Algorithm);
  EXPECT_TRUE(d.is_categorical());
  EXPECT_EQ(*d.cardinality(), 2u);
  EXPECT_TRUE(d.contains(ParamValue{std::string("x")}));
  EXPECT_FALSE(d.contains(ParamValue{std::string("z")}));
  EXPECT_FALSE(d.contains(ParamValue{std::int64_t{1}}));
  EXPECT_EQ(std::get<std::string>(d.grid_value(1, 5)), "y");
  EXPECT_THROW(d.grid_value(2, 5), InvalidArgument);
  EXPECT_THROW(ParamDomain::categorical("f", {}, ParamCategory::Algorithm),
               InvalidArgument);
  EXPECT_THROW(ParamDomain::categorical("f", {"x", "x"}, ParamCategory::Algorithm),
               InvalidArgument);
}

TEST(ParamDomain, IntegerRangeStepSemantics) {
  const auto d = ParamDomain::integer_range("n", 2, 8, 3, ParamCategory::System);
  EXPECT_EQ(*d.cardinality(), 3u);  // 2, 5, 8
  EXPECT_EQ(std::get<std::int64_t>(d.grid_value(1, 5)), 5);
  EXPECT_TRUE(d.contains(ParamValue{std::int64_t{8}}));
  EXPECT_FALSE(d.contains(ParamValue{std::int64_t{3}}));  // off-step
  EXPECT_FALSE(d.contains(ParamValue{std::int64_t{11}}));
  EXPECT_THROW(ParamDomain::integer_range("n", 3, 1, 1, ParamCategory::System),
               InvalidArgument);
  EXPECT_THROW(ParamDomain::integer_range("n", 1, 3, 0, ParamCategory::System),
               InvalidArgument);
}

TEST(ParamDomain, IntegerSet) {
  const auto d = ParamDomain::integer_set("rk", {3, 5, 8}, ParamCategory::Environment);
  EXPECT_TRUE(d.is_integer());
  EXPECT_EQ(*d.cardinality(), 3u);
  EXPECT_EQ(std::get<std::int64_t>(d.grid_value(2, 5)), 8);
  EXPECT_TRUE(d.contains(ParamValue{std::int64_t{5}}));
  EXPECT_FALSE(d.contains(ParamValue{std::int64_t{4}}));
  Rng rng(1);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 100; ++i)
    seen.insert(std::get<std::int64_t>(d.sample(rng)));
  EXPECT_EQ(seen, (std::set<std::int64_t>{3, 5, 8}));
  EXPECT_THROW(ParamDomain::integer_set("rk", {3, 3}, ParamCategory::Environment),
               InvalidArgument);
}

TEST(ParamDomain, RealRangeLinearAndLog) {
  const auto lin = ParamDomain::real_range("lr", 0.0, 1.0, false,
                                           ParamCategory::Algorithm);
  EXPECT_TRUE(lin.is_real());
  EXPECT_FALSE(lin.cardinality().has_value());
  EXPECT_DOUBLE_EQ(std::get<double>(lin.grid_value(0, 5)), 0.0);
  EXPECT_DOUBLE_EQ(std::get<double>(lin.grid_value(4, 5)), 1.0);
  EXPECT_DOUBLE_EQ(std::get<double>(lin.grid_value(2, 5)), 0.5);

  const auto log = ParamDomain::real_range("lr", 1e-4, 1e-2, true,
                                           ParamCategory::Algorithm);
  EXPECT_NEAR(std::get<double>(log.grid_value(1, 3)), 1e-3, 1e-12);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double v = std::get<double>(log.sample(rng));
    EXPECT_GE(v, 1e-4);
    EXPECT_LE(v, 1e-2);
  }
  EXPECT_THROW(
      ParamDomain::real_range("x", 1.0, 1.0, false, ParamCategory::Algorithm),
      InvalidArgument);
  EXPECT_THROW(
      ParamDomain::real_range("x", 0.0, 1.0, true, ParamCategory::Algorithm),
      InvalidArgument);
}

TEST(ParamDomain, RealBoundsAccessors) {
  const auto lin = ParamDomain::real_range("lr", 0.5, 2.0, false,
                                           ParamCategory::Algorithm);
  const auto [lo, hi] = lin.real_bounds();
  EXPECT_DOUBLE_EQ(lo, 0.5);
  EXPECT_DOUBLE_EQ(hi, 2.0);
  EXPECT_FALSE(lin.real_log_scale());
  const auto log = ParamDomain::real_range("lr", 1e-3, 1e-1, true,
                                           ParamCategory::Algorithm);
  EXPECT_TRUE(log.real_log_scale());
  const auto cat =
      ParamDomain::categorical("c", {"a"}, ParamCategory::Algorithm);
  EXPECT_THROW(cat.real_bounds(), InvalidArgument);
  EXPECT_THROW(cat.real_log_scale(), InvalidArgument);
}

TEST(ParamDomain, LogGridEndpointsStayInDomain) {
  const auto log = ParamDomain::real_range("lr", 1e-4, 1e-1, true,
                                           ParamCategory::Algorithm);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_TRUE(log.contains(log.grid_value(i, 7))) << "grid point " << i;
  }
}

TEST(ParamDomain, CategoryNames) {
  EXPECT_STREQ(param_category_name(ParamCategory::Algorithm), "algorithm");
  EXPECT_STREQ(param_category_name(ParamCategory::System), "system");
  EXPECT_STREQ(param_category_name(ParamCategory::Environment), "environment");
}

TEST(LearningConfiguration, TypedAccessors) {
  LearningConfiguration c;
  c.set("f", std::string("B"));
  c.set("n", std::int64_t{2});
  c.set("lr", 0.01);
  EXPECT_EQ(c.get_categorical("f"), "B");
  EXPECT_EQ(c.get_integer("n"), 2);
  EXPECT_DOUBLE_EQ(c.get_real("lr"), 0.01);
  EXPECT_DOUBLE_EQ(c.get_real("n"), 2.0);  // numeric widening
  EXPECT_THROW(c.get_integer("f"), InvalidArgument);
  EXPECT_THROW(c.get("missing"), InvalidArgument);
  EXPECT_TRUE(c.has("f"));
  EXPECT_FALSE(c.has("missing"));
  EXPECT_EQ(c.describe(), "f=B, lr=0.01, n=2");
}

TEST(ParamSpace, GridEnumeratesAllCombinations) {
  const ParamSpace space = demo_space();
  EXPECT_EQ(space.grid_size(5), 3u * 2u * 2u);
  std::set<std::string> keys;
  for (std::size_t i = 0; i < space.grid_size(5); ++i) {
    keys.insert(space.grid_point(i, 5).cache_key());
  }
  EXPECT_EQ(keys.size(), 12u);
  EXPECT_THROW(space.grid_point(12, 5), InvalidArgument);
}

TEST(ParamSpace, SampleIsAlwaysValid) {
  const ParamSpace space = demo_space();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(space.validate(space.sample(rng)));
  }
}

TEST(ParamSpace, ValidateDetectsProblems) {
  const ParamSpace space = demo_space();
  LearningConfiguration missing;
  missing.set("framework", std::string("A"));
  EXPECT_THROW(space.validate(missing), InvalidArgument);

  LearningConfiguration bad = space.grid_point(0, 5);
  bad.set("nodes", std::int64_t{7});
  EXPECT_THROW(space.validate(bad), InvalidArgument);
}

TEST(ParamSpace, RejectsDuplicatesAndUnknownLookups) {
  ParamSpace space = demo_space();
  EXPECT_THROW(
      space.add(ParamDomain::integer_set("nodes", {1}, ParamCategory::System)),
      InvalidArgument);
  EXPECT_THROW(space.domain("nope"), InvalidArgument);
  EXPECT_EQ(space.domain("nodes").category(), ParamCategory::System);
}

}  // namespace
}  // namespace darl::core
