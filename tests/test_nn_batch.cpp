// Batched-vs-per-sample bitwise equivalence for the Mlp batch kernels.
// The batched path (forward_batch / backward_batch / evaluate_batch) is
// required to reproduce the per-sample API bit for bit — campaign results
// and the determinism audit depend on it — so every comparison here is
// exact (==), not approximate.

#include <gtest/gtest.h>

#include <cstddef>
#include <tuple>
#include <vector>

#include "darl/common/rng.hpp"
#include "darl/linalg/matrix.hpp"
#include "darl/nn/mlp.hpp"
#include "darl/nn/optimizer.hpp"
#include "darl/nn/quantize.hpp"

namespace darl::nn {
namespace {

const std::vector<std::vector<std::size_t>> kShapes = {
    {4, 8, 3},          // one hidden layer
    {5, 16, 16, 2},     // two hidden layers
    {6, 1},             // linear, no hidden layer
    {3, 32, 32, 32, 4}, // deeper stack
};

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal(0.0, 1.0);
  return m;
}

Vec matrix_row(const Matrix& m, std::size_t r) {
  return Vec(m.row(r), m.row(r) + m.cols());
}

void expect_bitwise(const Vec& a, const Vec& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " element " << i;
  }
}

void expect_grads_bitwise(Mlp& a, Mlp& b, const std::string& what) {
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    expect_bitwise(*pa[i].grad, *pb[i].grad, what + " grad " + pa[i].name);
  }
}

class BatchEquivalence
    : public ::testing::TestWithParam<std::tuple<Activation, std::size_t>> {
 protected:
  Activation activation() const { return std::get<0>(GetParam()); }
  std::size_t batch() const { return std::get<1>(GetParam()); }
};

TEST_P(BatchEquivalence, ForwardBatchMatchesPerSample) {
  for (const auto& sizes : kShapes) {
    Rng init(7);
    Mlp per_sample(sizes, activation(), init);
    Mlp batched = per_sample;

    Rng data(11);
    const Matrix x = random_matrix(batch(), sizes.front(), data);
    const Matrix& y = batched.forward_batch(x);
    ASSERT_EQ(y.rows(), batch());
    ASSERT_EQ(y.cols(), sizes.back());

    for (std::size_t r = 0; r < batch(); ++r) {
      const Vec yr = per_sample.forward(matrix_row(x, r));
      expect_bitwise(matrix_row(y, r), yr, "forward row");
    }
  }
}

TEST_P(BatchEquivalence, EvaluateBatchMatchesPerSample) {
  for (const auto& sizes : kShapes) {
    Rng init(7);
    const Mlp net(sizes, activation(), init);
    Mlp batched = net;

    Rng data(13);
    const Matrix x = random_matrix(batch(), sizes.front(), data);
    const Matrix& y = batched.evaluate_batch(x);
    for (std::size_t r = 0; r < batch(); ++r) {
      expect_bitwise(matrix_row(y, r), net.evaluate(matrix_row(x, r)),
                     "evaluate row");
    }
  }
}

TEST_P(BatchEquivalence, BackwardBatchMatchesPerSampleSequence) {
  for (const auto& sizes : kShapes) {
    Rng init(7);
    Mlp per_sample(sizes, activation(), init);
    Mlp batched = per_sample;

    Rng data(17);
    const Matrix x = random_matrix(batch(), sizes.front(), data);
    const Matrix g = random_matrix(batch(), sizes.back(), data);

    // Sequence of per-sample forward/backward pairs, accumulating grads.
    per_sample.zero_grad();
    std::vector<Vec> dx_per(batch());
    for (std::size_t r = 0; r < batch(); ++r) {
      per_sample.forward(matrix_row(x, r));
      dx_per[r] = per_sample.backward(matrix_row(g, r));
    }

    batched.zero_grad();
    batched.forward_batch(x);
    const Matrix& dx = batched.backward_batch(g);
    ASSERT_EQ(dx.rows(), batch());
    ASSERT_EQ(dx.cols(), sizes.front());

    expect_grads_bitwise(per_sample, batched, "backward");
    for (std::size_t r = 0; r < batch(); ++r) {
      expect_bitwise(matrix_row(dx, r), dx_per[r], "dX row");
    }
  }
}

TEST_P(BatchEquivalence, GradientsAccumulateAcrossBatches) {
  // A second minibatch without zero_grad must add onto the existing
  // gradients exactly like continued per-sample calls (gemm seeds each
  // element from the current value rather than overwriting).
  for (const auto& sizes : kShapes) {
    Rng init(7);
    Mlp per_sample(sizes, activation(), init);
    Mlp batched = per_sample;

    Rng data(19);
    per_sample.zero_grad();
    batched.zero_grad();
    for (int round = 0; round < 3; ++round) {
      const Matrix x = random_matrix(batch(), sizes.front(), data);
      const Matrix g = random_matrix(batch(), sizes.back(), data);
      for (std::size_t r = 0; r < batch(); ++r) {
        per_sample.forward(matrix_row(x, r));
        per_sample.backward(matrix_row(g, r));
      }
      batched.forward_batch(x);
      batched.backward_batch(g);
    }
    expect_grads_bitwise(per_sample, batched, "accumulated");
  }
}

INSTANTIATE_TEST_SUITE_P(
    ActivationsAndBatchSizes, BatchEquivalence,
    ::testing::Combine(::testing::Values(Activation::Tanh, Activation::ReLU),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{64})));

// Full PPO-style minibatch step: minibatch epochs over a sample pool with
// gradient clipping and Adam updates. Parameters after several optimizer
// steps must be bitwise identical between the per-sample and batched
// execution of the same schedule.
TEST(PpoMinibatchStep, BatchedStepMatchesPerSampleStep) {
  const std::vector<std::size_t> sizes = {4, 32, 32, 3};
  Rng init(23);
  Mlp per_sample(sizes, Activation::Tanh, init);
  Mlp batched = per_sample;
  Adam opt_a(per_sample.params(), 3e-4);
  Adam opt_b(batched.params(), 3e-4);

  const std::size_t pool = 96;
  const std::size_t minibatch = 32;
  Rng data(29);
  const Matrix all_x = random_matrix(pool, sizes.front(), data);
  const Matrix all_g = random_matrix(pool, sizes.back(), data);

  Rng perm_a(31), perm_b(31);
  Matrix mb_x, mb_g;
  for (std::size_t epoch = 0; epoch < 3; ++epoch) {
    const auto pa = perm_a.permutation(pool);
    const auto pb = perm_b.permutation(pool);
    ASSERT_EQ(pa, pb);
    for (std::size_t start = 0; start < pool; start += minibatch) {
      // Per-sample branch.
      per_sample.zero_grad();
      for (std::size_t k = 0; k < minibatch; ++k) {
        per_sample.forward(matrix_row(all_x, pa[start + k]));
        per_sample.backward(matrix_row(all_g, pa[start + k]));
      }
      clip_grad_norm(per_sample.params(), 0.5);
      opt_a.step();

      // Batched branch: same samples in the same order.
      batched.zero_grad();
      mb_x.reshape(minibatch, sizes.front());
      mb_g.reshape(minibatch, sizes.back());
      for (std::size_t k = 0; k < minibatch; ++k) {
        const Vec xr = matrix_row(all_x, pb[start + k]);
        const Vec gr = matrix_row(all_g, pb[start + k]);
        std::copy(xr.begin(), xr.end(), mb_x.row(k));
        std::copy(gr.begin(), gr.end(), mb_g.row(k));
      }
      batched.forward_batch(mb_x);
      batched.backward_batch(mb_g);
      clip_grad_norm(batched.params(), 0.5);
      opt_b.step();
    }
  }
  expect_bitwise(per_sample.get_flat_params(), batched.get_flat_params(),
                 "post-step params");
}

TEST(BatchApi, BackwardWithoutForwardThrows) {
  Rng init(3);
  Mlp net({3, 4, 2}, Activation::Tanh, init);
  Matrix g(5, 2, 0.0);
  EXPECT_ANY_THROW(net.backward_batch(g));
  // Shape mismatch against the pending forward is also rejected.
  Matrix x(4, 3, 0.1);
  net.forward_batch(x);
  EXPECT_ANY_THROW(net.backward_batch(g));
}

TEST(BatchApi, SteadyStateReusesWorkspaces) {
  // After the first call at a given batch size, repeated batch passes must
  // return the same workspace storage (no reallocation of the result).
  Rng init(5);
  Mlp net({4, 16, 2}, Activation::ReLU, init);
  Matrix x(8, 4, 0.25);
  const Matrix& y1 = net.forward_batch(x);
  const double* p1 = y1.row(0);
  net.backward_batch(Matrix(8, 2, 1.0));
  const Matrix& y2 = net.forward_batch(x);
  EXPECT_EQ(p1, y2.row(0));
}

// ---------------------------------------------------------------------------
// int8 quantized inference (darl/nn/quantize.hpp, the darl/serve path)

// Rows reduce independently in exact int32 arithmetic, so the quantized
// batched output must equal the same rows evaluated one at a time —
// bitwise, the same contract the exact kernels honour.
TEST(QuantizedEval, BatchedMatchesPerSampleBitwise) {
  for (const Activation act : {Activation::Tanh, Activation::ReLU}) {
    for (const auto& sizes : kShapes) {
      Rng init(7);
      Mlp net(sizes, act, init);
      Mlp single = net;
      const QuantizedNet qn =
          quantize_mlp_params(sizes, act, net.get_flat_params());

      Rng data(31);
      const Matrix x = random_matrix(64, sizes.front(), data);
      const Matrix& y = net.evaluate_batch_quantized(x, qn);
      ASSERT_EQ(y.rows(), x.rows());
      ASSERT_EQ(y.cols(), sizes.back());
      for (std::size_t r = 0; r < x.rows(); ++r) {
        Matrix row(1, sizes.front());
        std::copy(x.row(r), x.row(r) + x.cols(), row.data().begin());
        const Matrix& yr = single.evaluate_batch_quantized(row, qn);
        expect_bitwise(matrix_row(y, r), matrix_row(yr, 0), "quantized row");
      }
    }
  }
}

// The quantization-error gate: measured logit error against the exact
// double path must stay within the per-layer analytic bound the auditor
// derives (DESIGN.md §16). The bound is deterministic, so this is an
// equality-grade gate, not a tolerance guess.
TEST(QuantizedEval, LogitErrorWithinAuditedBound) {
  for (const auto& sizes : kShapes) {
    Rng init(19);
    Mlp net(sizes, Activation::Tanh, init);
    const Vec flat = net.get_flat_params();
    const QuantizedNet qn = quantize_mlp_params(sizes, Activation::Tanh, flat);

    Rng data(37);
    const Matrix x = random_matrix(32, sizes.front(), data);
    Mlp exact = net;
    const Matrix y_exact = exact.evaluate_batch(x);
    const Matrix& y_quant = net.evaluate_batch_quantized(x, qn);

    double measured = 0.0;
    for (std::size_t i = 0; i < y_exact.size(); ++i) {
      measured = std::max(measured,
                          std::abs(y_exact.data()[i] - y_quant.data()[i]));
    }
    const double bound = quantization_logit_error_bound(qn, flat, x);
    EXPECT_LE(measured, bound) << "shape {" << sizes.front() << "...}";
    EXPECT_GT(bound, 0.0);
  }
}

// Quantization is a pure function of the flat parameters: two independent
// derivations (PolicyStore::publish's snapshot and DirectPolicy's own)
// must coincide exactly, or the serve self-check would compare different
// nets.
TEST(QuantizedEval, DerivationIsDeterministic) {
  const std::vector<std::size_t> sizes = {5, 16, 16, 2};
  Rng init(41);
  Mlp net(sizes, Activation::Tanh, init);
  const Vec flat = net.get_flat_params();
  const QuantizedNet a = quantize_mlp_params(sizes, Activation::Tanh, flat);
  const QuantizedNet b = quantize_mlp_params(sizes, Activation::Tanh, flat);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    EXPECT_EQ(a.layers[l].qw, b.layers[l].qw);
    EXPECT_EQ(a.layers[l].w_scale, b.layers[l].w_scale);
    EXPECT_EQ(a.layers[l].qrow_sum, b.layers[l].qrow_sum);
    EXPECT_EQ(a.layers[l].bias, b.layers[l].bias);
  }
}

// Constant observation rows (zero dynamic range) are the degenerate case
// of the per-row activation quantizer; they must still round-trip without
// NaNs and keep the batched == per-sample contract.
TEST(QuantizedEval, ConstantRowsAreWellDefined) {
  const std::vector<std::size_t> sizes = {6, 8, 3};
  Rng init(43);
  Mlp net(sizes, Activation::Tanh, init);
  const QuantizedNet qn =
      quantize_mlp_params(sizes, Activation::Tanh, net.get_flat_params());
  const Matrix x(4, 6, 0.25);  // every row constant
  const Matrix& y = net.evaluate_batch_quantized(x, qn);
  for (const double v : y.data()) EXPECT_TRUE(std::isfinite(v));
  for (std::size_t r = 1; r < 4; ++r) {
    expect_bitwise(matrix_row(y, r), matrix_row(y, 0), "constant row");
  }
}

}  // namespace
}  // namespace darl::nn
