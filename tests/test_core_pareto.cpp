// Tests for Pareto dominance, non-dominated sorting and hypervolume —
// including randomized property tests over the front definition.

#include <gtest/gtest.h>

#include <algorithm>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/core/pareto.hpp"

namespace darl::core {
namespace {

const std::vector<Sense> kMinMin{Sense::Minimize, Sense::Minimize};
const std::vector<Sense> kMaxMin{Sense::Maximize, Sense::Minimize};

TEST(Dominates, BasicCases) {
  EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}, kMinMin));
  EXPECT_TRUE(dominates({1.0, 2.0}, {2.0, 2.0}, kMinMin));
  EXPECT_FALSE(dominates({1.0, 3.0}, {2.0, 2.0}, kMinMin));
  EXPECT_FALSE(dominates({1.0, 1.0}, {1.0, 1.0}, kMinMin));  // equal
  // Mixed senses: maximize first coordinate.
  EXPECT_TRUE(dominates({5.0, 1.0}, {4.0, 1.0}, kMaxMin));
  EXPECT_FALSE(dominates({4.0, 1.0}, {5.0, 1.0}, kMaxMin));
  EXPECT_THROW(dominates({1.0}, {1.0, 2.0}, kMinMin), InvalidArgument);
}

TEST(ParetoFront, KnownFront) {
  // Paper-shaped data: reward (max) vs time (min).
  const std::vector<std::vector<double>> pts{
      {-0.65, 46.0},  // fast, mediocre reward  -> front
      {-0.55, 49.0},  // trade-off              -> front
      {-0.45, 65.0},  // best reward            -> front
      {-0.70, 50.0},  // dominated by 0 and 1
      {-0.52, 85.0},  // dominated by 2
  };
  const auto front = pareto_front(pts, kMaxMin);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParetoFront, DuplicatesAllSurvive) {
  const std::vector<std::vector<double>> pts{{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  const auto front = pareto_front(pts, kMinMin);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

TEST(ParetoFront, EmptyAndSingle) {
  EXPECT_TRUE(pareto_front({}, kMinMin).empty());
  EXPECT_EQ(pareto_front({{3.0, 4.0}}, kMinMin),
            (std::vector<std::size_t>{0}));
}

TEST(ParetoFront, PropertyNoFrontMemberDominatedNonMemberDominated) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::vector<double>> pts;
    const std::size_t n = 5 + rng.index(40);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                     rng.uniform(0.0, 1.0)});
    }
    const std::vector<Sense> senses{Sense::Minimize, Sense::Maximize,
                                    Sense::Minimize};
    const auto front = pareto_front(pts, senses);
    ASSERT_FALSE(front.empty());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const bool in_front =
          std::find(front.begin(), front.end(), i) != front.end();
      bool dominated = false;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (j != i && dominates(pts[j], pts[i], senses)) dominated = true;
      }
      EXPECT_EQ(in_front, !dominated) << "round " << round << " point " << i;
    }
  }
}

class ParetoDimensionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParetoDimensionTest, FrontDefinitionHoldsInAnyDimension) {
  const std::size_t dims = GetParam();
  Rng rng(100 + dims);
  std::vector<Sense> senses;
  for (std::size_t d = 0; d < dims; ++d) {
    senses.push_back(d % 2 == 0 ? Sense::Minimize : Sense::Maximize);
  }
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 40; ++i) {
    std::vector<double> p(dims);
    for (double& v : p) v = rng.uniform(0.0, 1.0);
    pts.push_back(std::move(p));
  }
  const auto front = pareto_front(pts, senses);
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (j != i && dominates(pts[j], pts[i], senses)) dominated = true;
    }
    const bool in_front = std::find(front.begin(), front.end(), i) != front.end();
    EXPECT_EQ(in_front, !dominated);
  }
  // In higher dimensions a larger share of random points is non-dominated.
  if (dims >= 4) EXPECT_GT(front.size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Dims, ParetoDimensionTest,
                         ::testing::Values(2u, 3u, 4u, 5u),
                         [](const auto& gen_info) {
                           return "d" + std::to_string(gen_info.param);
                         });

TEST(NonDominatedSort, PartitionsAllPoints) {
  Rng rng(11);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  }
  const auto fronts = non_dominated_sort(pts, kMinMin);
  std::size_t total = 0;
  for (const auto& f : fronts) total += f.size();
  EXPECT_EQ(total, pts.size());
  // Front 0 equals pareto_front.
  EXPECT_EQ(fronts[0], pareto_front(pts, kMinMin));
  // Every member of front k+1 is dominated by someone in fronts <= k.
  for (std::size_t k = 1; k < fronts.size(); ++k) {
    for (std::size_t idx : fronts[k]) {
      bool dominated_by_earlier = false;
      for (std::size_t kk = 0; kk < k && !dominated_by_earlier; ++kk) {
        for (std::size_t j : fronts[kk]) {
          if (dominates(pts[j], pts[idx], kMinMin)) {
            dominated_by_earlier = true;
            break;
          }
        }
      }
      EXPECT_TRUE(dominated_by_earlier);
    }
  }
}

TEST(Hypervolume2d, ExactRectangles) {
  // Minimize both; reference (4, 4). Points (1,3) and (3,1):
  // HV = 3*1 + 1*2 = union area 5.
  const std::vector<std::vector<double>> pts{{1.0, 3.0}, {3.0, 1.0}};
  EXPECT_NEAR(hypervolume_2d(pts, kMinMin, {4.0, 4.0}), 5.0, 1e-12);
  // Single point.
  EXPECT_NEAR(hypervolume_2d({{1.0, 1.0}}, kMinMin, {2.0, 3.0}), 2.0, 1e-12);
  // Point outside the reference contributes nothing.
  EXPECT_NEAR(hypervolume_2d({{5.0, 5.0}}, kMinMin, {4.0, 4.0}), 0.0, 1e-12);
  EXPECT_NEAR(hypervolume_2d({}, kMinMin, {1.0, 1.0}), 0.0, 1e-12);
}

TEST(Hypervolume2d, DominatedPointsDoNotChangeVolume) {
  const std::vector<std::vector<double>> front{{1.0, 3.0}, {3.0, 1.0}};
  std::vector<std::vector<double>> with_dominated = front;
  with_dominated.push_back({3.5, 3.5});
  EXPECT_NEAR(hypervolume_2d(front, kMinMin, {4.0, 4.0}),
              hypervolume_2d(with_dominated, kMinMin, {4.0, 4.0}), 1e-12);
}

TEST(Hypervolume2d, MonotoneInFrontQuality) {
  const std::vector<std::vector<double>> worse{{2.0, 2.0}};
  const std::vector<std::vector<double>> better{{1.0, 1.0}};
  EXPECT_LT(hypervolume_2d(worse, kMinMin, {3.0, 3.0}),
            hypervolume_2d(better, kMinMin, {3.0, 3.0}));
}

TEST(Hypervolume2d, HandlesMaximizeSense) {
  // Maximize reward, minimize time; reference = worst corner.
  const std::vector<std::vector<double>> pts{{-0.45, 65.0}, {-0.65, 46.0}};
  const double hv = hypervolume_2d(pts, kMaxMin, {-1.0, 100.0});
  EXPECT_GT(hv, 0.0);
}

TEST(HypervolumeMonteCarlo, AgreesWithExact2d) {
  Rng rng(13);
  const std::vector<std::vector<double>> pts{{1.0, 3.0}, {3.0, 1.0}, {2.0, 2.0}};
  const double exact = hypervolume_2d(pts, kMinMin, {4.0, 4.0});
  const double mc = hypervolume_monte_carlo(pts, kMinMin, {4.0, 4.0}, 200000, rng);
  EXPECT_NEAR(mc, exact, exact * 0.05);
}

TEST(HypervolumeMonteCarlo, WorksInThreeDimensions) {
  Rng rng(17);
  const std::vector<Sense> senses{Sense::Minimize, Sense::Minimize,
                                  Sense::Minimize};
  // Single point (1,1,1), reference (2,2,2): exact volume 1.
  const double mc =
      hypervolume_monte_carlo({{1.0, 1.0, 1.0}}, senses, {2.0, 2.0, 2.0},
                              100000, rng);
  EXPECT_NEAR(mc, 1.0, 0.05);
}

}  // namespace
}  // namespace darl::core
