// Tests for the Pareto-front stability analysis and the ParamSpace
// constraint machinery.

#include <gtest/gtest.h>

#include <algorithm>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/core/explorer.hpp"
#include "darl/core/stability.hpp"
#include "darl/core/tpe.hpp"

namespace darl::core {
namespace {

MetricSet two_metrics() {
  MetricSet m;
  m.add({"quality", "", Sense::Maximize});
  m.add({"cost", "", Sense::Minimize});
  return m;
}

TEST(FrontStability, ClearWinnersAreAlwaysMembers) {
  // One point dominates by a wide margin on one axis, another on the
  // other; a third is deeply dominated.
  const std::vector<std::vector<double>> pts{
      {10.0, 5.0},   // best quality
      {1.0, 0.5},    // best cost
      {1.0, 100.0},  // hopeless
  };
  Rng rng(1);
  StabilityOptions opts;
  opts.samples = 500;
  opts.relative_noise = 0.02;
  const StabilityResult r = front_stability(pts, two_metrics(), opts, rng);
  EXPECT_GT(r.membership[0], 0.99);
  EXPECT_GT(r.membership[1], 0.99);
  EXPECT_LT(r.membership[2], 0.01);
  ASSERT_EQ(r.robust_front.size(), 2u);
}

TEST(FrontStability, NearTiesSplitMembership) {
  // Two nearly identical points: under noise each is on the front roughly
  // half the time (ties rarely both survive with strict dominance... both
  // survive when neither dominates — with 2 metrics and independent noise
  // each pair is non-dominated unless one draws better on both axes).
  const std::vector<std::vector<double>> pts{{1.0, 1.0}, {1.0, 1.0}};
  Rng rng(2);
  StabilityOptions opts;
  opts.samples = 2000;
  opts.relative_noise = 0.05;
  const StabilityResult r = front_stability(pts, two_metrics(), opts, rng);
  // Each point is dominated only when the other beats it on both axes:
  // probability 1/4. Expect membership ~0.75 each.
  EXPECT_NEAR(r.membership[0], 0.75, 0.05);
  EXPECT_NEAR(r.membership[1], 0.75, 0.05);
}

TEST(FrontStability, AbsoluteStddevOverridesRelative) {
  const std::vector<std::vector<double>> pts{{1.0, 1.0}, {1.05, 1.0}};
  Rng rng(3);
  StabilityOptions opts;
  opts.samples = 1000;
  opts.relative_noise = 0.0;  // no noise at all: deterministic fronts
  const StabilityResult crisp = front_stability(pts, two_metrics(), opts, rng);
  EXPECT_DOUBLE_EQ(crisp.membership[0], 0.0);  // strictly dominated
  EXPECT_DOUBLE_EQ(crisp.membership[1], 1.0);

  opts.absolute_stddev = {0.5, 0.0};  // huge noise on quality only
  const StabilityResult fuzzy = front_stability(pts, two_metrics(), opts, rng);
  EXPECT_GT(fuzzy.membership[0], 0.2);  // now frequently wins
}

TEST(FrontStability, Validation) {
  Rng rng(4);
  StabilityOptions opts;
  opts.samples = 0;
  EXPECT_THROW(front_stability({{1.0, 1.0}}, two_metrics(), opts, rng),
               InvalidArgument);
  opts = StabilityOptions{};
  opts.absolute_stddev = {1.0};  // wrong size
  EXPECT_THROW(front_stability({{1.0, 1.0}}, two_metrics(), opts, rng),
               InvalidArgument);
  EXPECT_THROW(front_stability({{1.0}}, two_metrics(), StabilityOptions{}, rng),
               InvalidArgument);
  // Empty input: empty result.
  const auto r = front_stability({}, two_metrics(), StabilityOptions{}, rng);
  EXPECT_TRUE(r.membership.empty());
}

// ------------------------------------------------------- constraints

ParamSpace constrained_space() {
  ParamSpace space;
  space.add(ParamDomain::categorical("fw", {"A", "B"}, ParamCategory::Algorithm));
  space.add(ParamDomain::integer_set("nodes", {1, 2}, ParamCategory::System));
  space.add_constraint(
      [](const LearningConfiguration& c) {
        return c.get_integer("nodes") == 1 || c.get_categorical("fw") == "A";
      },
      "multi-node requires fw A");
  return space;
}

TEST(Constraints, SampleOnlyProducesFeasiblePoints) {
  const ParamSpace space = constrained_space();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto c = space.sample(rng);
    EXPECT_TRUE(space.satisfies_constraints(c));
    EXPECT_NO_THROW(space.validate(c));
  }
}

TEST(Constraints, ValidateRejectsInfeasible) {
  const ParamSpace space = constrained_space();
  LearningConfiguration bad;
  bad.set("fw", std::string("B"));
  bad.set("nodes", std::int64_t{2});
  EXPECT_FALSE(space.satisfies_constraints(bad));
  EXPECT_THROW(space.validate(bad), InvalidArgument);
}

TEST(Constraints, GridSearchSkipsInfeasiblePoints) {
  GridSearch grid(constrained_space(), 2);
  std::size_t count = 0;
  while (auto p = grid.ask()) {
    EXPECT_TRUE(constrained_space().satisfies_constraints(p->config));
    grid.tell(p->trial_id, {});
    ++count;
  }
  EXPECT_EQ(count, 3u);  // 4-point grid minus the one infeasible combo
}

TEST(Constraints, TpeRespectsConstraints) {
  TpeOptions opts;
  opts.n_trials = 25;
  opts.n_startup = 5;
  TpeSearch tpe(constrained_space(), {"score", "", Sense::Maximize}, opts, 7);
  while (auto p = tpe.ask()) {
    EXPECT_TRUE(constrained_space().satisfies_constraints(p->config));
    // Reward feasible-but-infeasible-adjacent configs to push the model
    // toward the constrained corner.
    const double score =
        (p->config.get_categorical("fw") == "B" ? 1.0 : 0.0) +
        (p->config.get_integer("nodes") == 2 ? 1.0 : 0.0);
    tpe.tell(p->trial_id, {{"score", score}});
  }
}

TEST(Constraints, UnsatisfiableSamplingThrows) {
  ParamSpace space;
  space.add(ParamDomain::integer_set("x", {1}, ParamCategory::System));
  space.add_constraint([](const LearningConfiguration&) { return false; },
                       "never satisfiable");
  Rng rng(6);
  EXPECT_THROW(space.sample(rng), Error);
  EXPECT_THROW(space.add_constraint(nullptr, "null"), InvalidArgument);
}

}  // namespace
}  // namespace darl::core
