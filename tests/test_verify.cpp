// tests/test_verify.cpp — the rule engine behind tools/darl_verify,
// driven against in-memory fixture files: one violating and one clean
// case per rule, plus the harvest pass, lock tracking subtleties
// (unlock/relock, defer_lock, REQUIRES contracts), the lock-order graph
// with a seeded 3-cycle, and the JSON output helpers shared with
// darl_lint. Fixtures are raw strings, which strip_noncode blanks when
// either analyzer scans this file — the tools never flag their own
// test corpus.

#include "tools/verify_engine.hpp"

#include "darl/common/thread_safety.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace lint = darl::lint;
namespace verify = darl::verify;

namespace {

bool has_rule(const std::vector<lint::Finding>& findings,
              const std::string& rule) {
  return std::any_of(
      findings.begin(), findings.end(),
      [&](const lint::Finding& f) { return f.rule == rule; });
}

std::size_t count_rule(const std::vector<lint::Finding>& findings,
                       const std::string& rule) {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(),
      [&](const lint::Finding& f) { return f.rule == rule; }));
}

const lint::Finding* first_of(const std::vector<lint::Finding>& findings,
                              const std::string& rule) {
  for (const auto& f : findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

/// Harvest every fixture, then check every fixture, then run the global
/// lock-order pass — the same two-pass shape darl_verify's main() drives.
std::vector<lint::Finding> analyze(
    const std::vector<std::pair<std::string, std::string>>& files) {
  verify::VerifyContext ctx;
  for (const auto& [path, code] : files) {
    verify::harvest_source(path, code, ctx);
  }
  std::vector<lint::Finding> findings;
  for (const auto& [path, code] : files) {
    auto f = verify::check_source(path, code, ctx);
    findings.insert(findings.end(), f.begin(), f.end());
  }
  auto cycles = verify::check_lock_order(ctx);
  findings.insert(findings.end(), cycles.begin(), cycles.end());
  return findings;
}

std::vector<lint::Finding> analyze_one(const std::string& code,
                                       const std::string& path =
                                           "src/darl/rl/fixture.cpp") {
  return analyze({{path, code}});
}

}  // namespace

// ---------------------------------------------------------------------------
// Harvest pass

TEST(VerifyHarvest, GuardedFieldQualifiedByEnclosingClass) {
  verify::VerifyContext ctx;
  verify::harvest_source("src/darl/rl/q.hpp", R"fx(
#pragma once
#include <mutex>
class Q {
 public:
  void bump();
 private:
  std::mutex mu_;
  int x_ DARL_GUARDED_BY(mu_) = 0;
};
)fx",
                         ctx);
  ASSERT_EQ(ctx.guarded_fields.size(), 1u);
  EXPECT_EQ(ctx.guarded_fields[0].cls, "Q");
  EXPECT_EQ(ctx.guarded_fields[0].field, "x_");
  EXPECT_EQ(ctx.guarded_fields[0].mutex, "Q::mu_");
  EXPECT_EQ(ctx.guarded_fields[0].path, "src/darl/rl/q.hpp");
  EXPECT_EQ(ctx.guarded_fields[0].line, 9u);
}

TEST(VerifyHarvest, RequiresContractAndAcquiredBeforeEdge) {
  verify::VerifyContext ctx;
  verify::harvest_source("src/darl/rl/q.hpp", R"fx(
class Q {
  void drain() DARL_REQUIRES(mu_);
  std::mutex outer_ DARL_ACQUIRED_BEFORE(mu_);
  std::mutex mu_;
};
)fx",
                         ctx);
  ASSERT_EQ(ctx.requires_fns.size(), 1u);
  EXPECT_EQ(ctx.requires_fns[0].cls, "Q");
  EXPECT_EQ(ctx.requires_fns[0].name, "drain");
  ASSERT_EQ(ctx.requires_fns[0].mutexes.size(), 1u);
  EXPECT_EQ(ctx.requires_fns[0].mutexes[0], "Q::mu_");
  ASSERT_EQ(ctx.edges.size(), 1u);
  EXPECT_EQ(ctx.edges[0].held, "Q::outer_");
  EXPECT_EQ(ctx.edges[0].acquired, "Q::mu_");
}

TEST(VerifyHarvest, MacroDefinitionsDoNotHarvest) {
  // The #define lines in thread_safety.hpp must not be read as a field
  // named "define" guarded by "mu".
  verify::VerifyContext ctx;
  verify::harvest_source("src/darl/common/ts.hpp", R"fx(
#define DARL_GUARDED_BY(mu) DARL_THREAD_ANNOTATION(guarded_by(mu))
#define DARL_ACQUIRED_BEFORE(...) DARL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
)fx",
                         ctx);
  EXPECT_TRUE(ctx.guarded_fields.empty());
  EXPECT_TRUE(ctx.edges.empty());
}

// ---------------------------------------------------------------------------
// Rule: guarded-field

TEST(VerifyGuarded, BareAccessWithoutLockIsFlagged) {
  const auto findings = analyze_one(R"fx(
#include <mutex>
class Q {
 public:
  int peek() { return x_; }
 private:
  std::mutex mu_;
  int x_ DARL_GUARDED_BY(mu_) = 0;
};
)fx");
  ASSERT_TRUE(has_rule(findings, "guarded-field"));
  const lint::Finding* f = first_of(findings, "guarded-field");
  EXPECT_EQ(f->line, 5u);
  EXPECT_NE(f->message.find("Q::mu_"), std::string::npos);
}

TEST(VerifyGuarded, AccessUnderLockGuardIsClean) {
  const auto findings = analyze_one(R"fx(
#include <mutex>
class Q {
 public:
  int peek() {
    std::lock_guard<std::mutex> lock(mu_);
    return x_;
  }
 private:
  std::mutex mu_;
  int x_ DARL_GUARDED_BY(mu_) = 0;
};
)fx");
  EXPECT_FALSE(has_rule(findings, "guarded-field"));
}

TEST(VerifyGuarded, CrossFileHeaderAnnotationReachesCppDefinition) {
  const auto findings = analyze(
      {{"src/darl/rl/q.hpp", R"fx(
#pragma once
#include <mutex>
class Q {
 public:
  void bump();
 private:
  std::mutex mu_;
  int x_ DARL_GUARDED_BY(mu_) = 0;
};
)fx"},
       {"src/darl/rl/q.cpp", R"fx(
#include "q.hpp"
void Q::bump() { ++x_; }
)fx"}});
  ASSERT_TRUE(has_rule(findings, "guarded-field"));
  const lint::Finding* f = first_of(findings, "guarded-field");
  EXPECT_EQ(f->path, "src/darl/rl/q.cpp");
  // The message points back at the declaring header.
  EXPECT_NE(f->message.find("src/darl/rl/q.hpp:9"), std::string::npos);
}

TEST(VerifyGuarded, RequiresContractSeedsTheHeldSet) {
  const auto findings = analyze(
      {{"src/darl/rl/q.hpp", R"fx(
#pragma once
#include <mutex>
class Q {
 public:
  void bump_locked() DARL_REQUIRES(mu_);
 private:
  std::mutex mu_;
  int x_ DARL_GUARDED_BY(mu_) = 0;
};
)fx"},
       {"src/darl/rl/q.cpp", R"fx(
#include "q.hpp"
void Q::bump_locked() { ++x_; }
)fx"}});
  EXPECT_FALSE(has_rule(findings, "guarded-field"));
}

TEST(VerifyGuarded, ConstructorAndDestructorAreExempt) {
  // Out-of-line ctor/dtor definitions run before/after the object is
  // shared, so bare field writes there are fine. (Inline ctor bodies are
  // not recognized as function regions and would still flag — the repo
  // style is out-of-line definitions for any class that owns a mutex.)
  const auto findings = analyze_one(R"fx(
#include <mutex>
class Q {
 public:
  Q();
  ~Q();
 private:
  std::mutex mu_;
  int x_ DARL_GUARDED_BY(mu_) = 0;
};
Q::Q() { x_ = 1; }
Q::~Q() { x_ = 0; }
)fx");
  EXPECT_FALSE(has_rule(findings, "guarded-field"));
}

TEST(VerifyGuarded, OtherClassSameFieldNameIsNotFlagged) {
  const auto findings = analyze_one(R"fx(
#include <mutex>
class Q {
  std::mutex mu_;
  int x_ DARL_GUARDED_BY(mu_) = 0;
};
class R {
 public:
  int peek() { return x_; }
 private:
  int x_ = 0;
};
)fx");
  EXPECT_FALSE(has_rule(findings, "guarded-field"));
}

TEST(VerifyGuarded, UnlockThenAccessIsFlagged) {
  const auto findings = analyze_one(R"fx(
#include <mutex>
class Q {
 public:
  int drain() {
    std::unique_lock<std::mutex> lk(mu_);
    int snapshot = x_;
    lk.unlock();
    x_ = 0;
    lk.lock();
    x_ = snapshot;
    return snapshot;
  }
 private:
  std::mutex mu_;
  int x_ DARL_GUARDED_BY(mu_) = 0;
};
)fx");
  // Exactly the access in the unlocked window fires; the relocked one
  // does not.
  EXPECT_EQ(count_rule(findings, "guarded-field"), 1u);
  EXPECT_EQ(first_of(findings, "guarded-field")->line, 9u);
}

TEST(VerifyGuarded, DeferLockIsNotHeldUntilLocked) {
  const auto findings = analyze_one(R"fx(
#include <mutex>
class Q {
 public:
  void late() {
    std::unique_lock<std::mutex> lk(mu_, std::defer_lock);
    x_ = 1;
    lk.lock();
    x_ = 2;
  }
 private:
  std::mutex mu_;
  int x_ DARL_GUARDED_BY(mu_) = 0;
};
)fx");
  EXPECT_EQ(count_rule(findings, "guarded-field"), 1u);
  EXPECT_EQ(first_of(findings, "guarded-field")->line, 7u);
}

// ---------------------------------------------------------------------------
// Rule: lock-order

TEST(VerifyLockOrder, SeededThreeCycleFailsWithWitnessPath) {
  // Three translation units, each locking a consistent-looking pair that
  // only globally forms a_mu -> b_mu -> c_mu -> a_mu.
  const auto findings = analyze(
      {{"src/darl/rl/f1.cpp", R"fx(
#include <mutex>
std::mutex a_mu;
std::mutex b_mu;
std::mutex c_mu;
void f1() {
  std::lock_guard<std::mutex> g(a_mu);
  std::lock_guard<std::mutex> h(b_mu);
}
)fx"},
       {"src/darl/rl/f2.cpp", R"fx(
#include <mutex>
extern std::mutex b_mu;
extern std::mutex c_mu;
void f2() {
  std::lock_guard<std::mutex> g(b_mu);
  std::lock_guard<std::mutex> h(c_mu);
}
)fx"},
       {"src/darl/rl/f3.cpp", R"fx(
#include <mutex>
extern std::mutex c_mu;
extern std::mutex a_mu;
void f3() {
  std::lock_guard<std::mutex> g(c_mu);
  std::lock_guard<std::mutex> h(a_mu);
}
)fx"}});
  ASSERT_EQ(count_rule(findings, "lock-order"), 1u);
  const std::string& msg = first_of(findings, "lock-order")->message;
  EXPECT_NE(msg.find("lock-order cycle:"), std::string::npos);
  EXPECT_NE(msg.find("a_mu"), std::string::npos);
  EXPECT_NE(msg.find("b_mu"), std::string::npos);
  EXPECT_NE(msg.find("c_mu"), std::string::npos);
  // Every arrow carries the file:line witness of the nested acquisition.
  EXPECT_NE(msg.find("src/darl/rl/f1.cpp:8"), std::string::npos);
  EXPECT_NE(msg.find("src/darl/rl/f2.cpp:7"), std::string::npos);
  EXPECT_NE(msg.find("src/darl/rl/f3.cpp:7"), std::string::npos);
}

TEST(VerifyLockOrder, ConsistentOrderIsClean) {
  const auto findings = analyze_one(R"fx(
#include <mutex>
std::mutex a_mu;
std::mutex b_mu;
void f1() {
  std::lock_guard<std::mutex> g(a_mu);
  std::lock_guard<std::mutex> h(b_mu);
}
void f2() {
  std::lock_guard<std::mutex> g(a_mu);
  std::lock_guard<std::mutex> h(b_mu);
}
)fx");
  EXPECT_FALSE(has_rule(findings, "lock-order"));
}

TEST(VerifyLockOrder, AcquiredBeforeAnnotationContradictedByCode) {
  // The header promises outer_ before inner_; the .cpp nests them the
  // other way round — a 2-cycle.
  const auto findings = analyze(
      {{"src/darl/rl/q.hpp", R"fx(
#pragma once
#include <mutex>
class Q {
  void swap_order();
  std::mutex outer_ DARL_ACQUIRED_BEFORE(inner_);
  std::mutex inner_;
};
)fx"},
       {"src/darl/rl/q.cpp", R"fx(
#include "q.hpp"
void Q::swap_order() {
  std::lock_guard<std::mutex> g(inner_);
  std::lock_guard<std::mutex> h(outer_);
}
)fx"}});
  ASSERT_EQ(count_rule(findings, "lock-order"), 1u);
  const std::string& msg = first_of(findings, "lock-order")->message;
  EXPECT_NE(msg.find("Q::outer_"), std::string::npos);
  EXPECT_NE(msg.find("Q::inner_"), std::string::npos);
}

TEST(VerifyLockOrder, ReacquiringHeldMutexIsASelfCycle) {
  const auto findings = analyze_one(R"fx(
#include <mutex>
std::mutex mu;
void f() {
  std::lock_guard<std::mutex> g(mu);
  std::lock_guard<std::mutex> h(mu);
}
)fx");
  ASSERT_TRUE(has_rule(findings, "lock-order"));
  const std::string& msg = first_of(findings, "lock-order")->message;
  EXPECT_NE(msg.find("mu -> mu"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule: blocking-under-lock

TEST(VerifyBlocking, SleepUnderLockIsFlagged) {
  const auto findings = analyze_one(R"fx(
#include <chrono>
#include <mutex>
#include <thread>
std::mutex mu;
void f() {
  std::lock_guard<std::mutex> g(mu);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}
)fx");
  ASSERT_TRUE(has_rule(findings, "blocking-under-lock"));
  const std::string& msg = first_of(findings, "blocking-under-lock")->message;
  EXPECT_NE(msg.find("sleep_for"), std::string::npos);
  EXPECT_NE(msg.find("mu"), std::string::npos);
}

TEST(VerifyBlocking, SleepOutsideLockIsClean) {
  const auto findings = analyze_one(R"fx(
#include <chrono>
#include <mutex>
#include <thread>
std::mutex mu;
void f() {
  {
    std::lock_guard<std::mutex> g(mu);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}
)fx");
  EXPECT_FALSE(has_rule(findings, "blocking-under-lock"));
}

TEST(VerifyBlocking, SocketCallUnderLockIsFlagged) {
  const auto findings = analyze_one(R"fx(
#include <mutex>
std::mutex mu;
void f(int fd, char* buf) {
  std::lock_guard<std::mutex> g(mu);
  recv(fd, buf, 64, 0);
}
)fx");
  EXPECT_TRUE(has_rule(findings, "blocking-under-lock"));
}

TEST(VerifyBlocking, JoinUnderLockIsFlagged) {
  const auto findings = analyze_one(R"fx(
#include <mutex>
#include <thread>
std::mutex mu;
void f(std::thread& t) {
  std::lock_guard<std::mutex> g(mu);
  t.join();
}
)fx");
  EXPECT_TRUE(has_rule(findings, "blocking-under-lock"));
}

TEST(VerifyBlocking, UnlockBeforeBlockingIsClean) {
  const auto findings = analyze_one(R"fx(
#include <chrono>
#include <mutex>
#include <thread>
std::mutex mu;
void f() {
  std::unique_lock<std::mutex> lk(mu);
  lk.unlock();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  lk.lock();
}
)fx");
  EXPECT_FALSE(has_rule(findings, "blocking-under-lock"));
}

TEST(VerifyBlocking, CvWaitWithPredicateOnOwnLockIsSanctioned) {
  const auto findings = analyze_one(R"fx(
#include <condition_variable>
#include <mutex>
std::mutex mu;
std::condition_variable cv;
bool ready = false;
void f() {
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return ready; });
}
)fx");
  EXPECT_FALSE(has_rule(findings, "blocking-under-lock"));
  EXPECT_FALSE(has_rule(findings, "cv-wait-no-predicate"));
}

TEST(VerifyBlocking, TimedWaitForOnOwnLockIsSanctioned) {
  const auto findings = analyze_one(R"fx(
#include <chrono>
#include <condition_variable>
#include <mutex>
std::mutex mu;
std::condition_variable cv;
void f() {
  std::unique_lock<std::mutex> lk(mu);
  cv.wait_for(lk, std::chrono::milliseconds(5));
}
)fx");
  EXPECT_FALSE(has_rule(findings, "blocking-under-lock"));
  EXPECT_FALSE(has_rule(findings, "cv-wait-no-predicate"));
}

TEST(VerifyBlocking, CvWaitHoldingASecondMutexIsFlagged) {
  const auto findings = analyze_one(R"fx(
#include <condition_variable>
#include <mutex>
std::mutex mu;
std::mutex other_mu;
std::condition_variable cv;
bool ready = false;
void f() {
  std::lock_guard<std::mutex> g(other_mu);
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return ready; });
}
)fx");
  ASSERT_TRUE(has_rule(findings, "blocking-under-lock"));
  const std::string& msg = first_of(findings, "blocking-under-lock")->message;
  EXPECT_NE(msg.find("other_mu"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule: cv-wait-no-predicate

TEST(VerifyCvWait, UntimedWaitWithoutPredicateIsFlagged) {
  const auto findings = analyze_one(R"fx(
#include <condition_variable>
#include <mutex>
std::mutex mu;
std::condition_variable cv;
void f() {
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk);
}
)fx");
  EXPECT_TRUE(has_rule(findings, "cv-wait-no-predicate"));
}

TEST(VerifyCvWait, FutureWaitIsNotACvWait) {
  const auto findings = analyze_one(R"fx(
#include <future>
void f(std::future<int>& fut) {
  fut.wait();
}
)fx");
  EXPECT_FALSE(has_rule(findings, "cv-wait-no-predicate"));
  EXPECT_FALSE(has_rule(findings, "blocking-under-lock"));
}

// ---------------------------------------------------------------------------
// Rule: naked-atomic-ordering

TEST(VerifyAtomic, NakedLoadOnHotPathIsFlagged) {
  const auto findings = analyze_one(R"fx(
#include <atomic>
class S {
 public:
  int peek() const { return v_.load(); }
 private:
  std::atomic<int> v_{0};
};
)fx",
                                    "src/darl/serve/s.cpp");
  ASSERT_TRUE(has_rule(findings, "naked-atomic-ordering"));
  EXPECT_EQ(first_of(findings, "naked-atomic-ordering")->line, 5u);
}

TEST(VerifyAtomic, ExplicitOrderingOnHotPathIsClean) {
  const auto findings = analyze_one(R"fx(
#include <atomic>
class S {
 public:
  int peek() const { return v_.load(std::memory_order_acquire); }
  void bump() {
    v_.fetch_add(1,
                 std::memory_order_relaxed);
  }
 private:
  std::atomic<int> v_{0};
};
)fx",
                                    "src/darl/obs/s.cpp");
  // Includes a memory_order on a continuation line: the argument list is
  // parsed balanced, not per-line.
  EXPECT_FALSE(has_rule(findings, "naked-atomic-ordering"));
}

TEST(VerifyAtomic, NakedLoadOffHotPathIsTolerated) {
  const auto findings = analyze_one(R"fx(
#include <atomic>
std::atomic<int> v{0};
int peek() { return v.load(); }
)fx",
                                    "src/darl/rl/s.cpp");
  EXPECT_FALSE(has_rule(findings, "naked-atomic-ordering"));
}

// ---------------------------------------------------------------------------
// The annotation macros themselves

#ifndef __clang__
#define DARL_TEST_STR2(x) #x
#define DARL_TEST_STR(x) DARL_TEST_STR2(x)
TEST(VerifyMacros, ExpandToNothingOutsideClang) {
  // Under GCC the annotations must vanish entirely — they exist for
  // darl_verify (lexically) and Clang -Wthread-safety (semantically),
  // and cost nothing everywhere else.
  EXPECT_STREQ(DARL_TEST_STR(DARL_GUARDED_BY(m)), "");
  EXPECT_STREQ(DARL_TEST_STR(DARL_REQUIRES(m)), "");
  EXPECT_STREQ(DARL_TEST_STR(DARL_ACQUIRED_BEFORE(m)), "");
  EXPECT_STREQ(DARL_TEST_STR(DARL_EXCLUDES(m)), "");
}
#undef DARL_TEST_STR
#undef DARL_TEST_STR2
#endif

// ---------------------------------------------------------------------------
// JSON output (shared with darl_lint)

TEST(VerifyJson, EscapesAndSchema) {
  EXPECT_EQ(lint::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");

  std::vector<lint::Finding> findings;
  findings.push_back(
      lint::Finding{"guarded-field", "src/darl/rl/q.cpp", 3, "bare \"x_\""});
  findings.push_back(
      lint::Finding{"lock-order", "src/darl/rl/f1.cpp", 8, "cycle"});
  std::vector<lint::Suppression> supps;
  supps.push_back(
      lint::Suppression{"lock-order", "src/darl/rl/f1.cpp", "known", 1});
  const auto annotated =
      lint::annotate_suppressions(std::move(findings), supps);
  ASSERT_EQ(annotated.size(), 2u);
  EXPECT_FALSE(annotated[0].suppressed);
  EXPECT_TRUE(annotated[1].suppressed);
  EXPECT_TRUE(supps[0].used);

  const std::string json = lint::findings_json(annotated);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"rule\": \"guarded-field\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/darl/rl/q.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"message\": \"bare \\\"x_\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": false"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": true"), std::string::npos);
}

TEST(VerifyJson, EmptyFindingsIsEmptyArray) {
  EXPECT_EQ(lint::findings_json({}), "[]\n");
}
