// Tier-1 coverage for fault-tolerant campaign execution: per-trial failure
// capture (serial and parallel), retry with reseeded attempts, the
// wall-clock timeout watchdog, Abort/Skip failure policies, and the
// explorer failure protocol — driven by deterministic throwing studies and
// the fault-injection case study.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>

#include "darl/common/error.hpp"
#include "darl/core/fault_injection.hpp"
#include "darl/core/report.hpp"
#include "darl/core/study.hpp"
#include "darl/obs/metrics.hpp"

namespace darl::core {
namespace {

/// Case study over x in {1,2,3} that throws deterministically for the
/// configurations in `bad_x`, every attempt.
CaseStudyDef throwing_study(std::vector<std::int64_t> bad_x) {
  CaseStudyDef def;
  def.name = "throwing";
  def.space.add(ParamDomain::integer_set("x", {1, 2, 3}, ParamCategory::System));
  def.metrics.add({"quality", "", Sense::Maximize});
  def.evaluate = [bad_x](const LearningConfiguration& c, double budget,
                         std::uint64_t seed) -> MetricValues {
    (void)seed;
    const std::int64_t x = c.get_integer("x");
    for (const std::int64_t bad : bad_x) {
      if (x == bad) throw Error("boom for x=" + std::to_string(x));
    }
    return {{"quality", static_cast<double>(x) * budget}};
  };
  return def;
}

std::vector<LearningConfiguration> configs_for_x(
    std::initializer_list<std::int64_t> xs) {
  std::vector<LearningConfiguration> configs;
  for (const std::int64_t x : xs) {
    LearningConfiguration c;
    c.set("x", x);
    configs.push_back(c);
  }
  return configs;
}

TEST(FaultStudy, AbortPolicyRethrowsButKeepsCompletedTrials) {
  Study study(throwing_study({2}),
              std::make_unique<FixedListSearch>(configs_for_x({1, 2, 3})),
              {.seed = 1, .log_progress = false});
  EXPECT_THROW(study.run(), Error);
  // Trial 0 completed and trial 1's failure was recorded before the throw:
  // a single bad trial no longer discards the campaign's finished work.
  ASSERT_EQ(study.trials().size(), 2u);
  EXPECT_EQ(study.trials()[0].status, TrialStatus::Ok);
  EXPECT_EQ(study.trials()[1].status, TrialStatus::Failed);
  EXPECT_NE(study.trials()[1].error.find("boom for x=2"), std::string::npos);
  EXPECT_EQ(study.failed_trials(), 1u);
}

TEST(FaultStudy, SkipPolicyCompletesCampaignAndExcludesFailures) {
  Study study(throwing_study({2}),
              std::make_unique<FixedListSearch>(configs_for_x({1, 2, 3})),
              {.seed = 1,
               .log_progress = false,
               .on_trial_failure = FailurePolicy::Skip});
  EXPECT_NO_THROW(study.run());
  ASSERT_EQ(study.trials().size(), 3u);
  EXPECT_EQ(study.failed_trials(), 1u);
  EXPECT_FALSE(study.trials()[1].ok());
  EXPECT_EQ(study.trials()[1].attempts, 1u);
  // Failed trials carry no metrics and vanish from analysis surfaces.
  EXPECT_EQ(study.metric_table().size(), 2u);
  for (const std::size_t idx : study.pareto_trials()) {
    EXPECT_TRUE(study.trials()[idx].ok());
  }
}

TEST(FaultStudy, RetryReseedsAndSucceeds) {
  // Fails exactly once for x=2, then succeeds: one retry must rescue it.
  auto attempts_seen = std::make_shared<std::atomic<int>>(0);
  CaseStudyDef def = throwing_study({});
  def.evaluate = [attempts_seen](const LearningConfiguration& c, double budget,
                                 std::uint64_t seed) -> MetricValues {
    (void)seed;
    const std::int64_t x = c.get_integer("x");
    if (x == 2 && attempts_seen->fetch_add(1) == 0) {
      throw Error("transient fault");
    }
    return {{"quality", static_cast<double>(x) * budget}};
  };
  Study study(def, std::make_unique<FixedListSearch>(configs_for_x({1, 2, 3})),
              {.seed = 1, .log_progress = false, .max_retries = 1});
  EXPECT_NO_THROW(study.run());
  ASSERT_EQ(study.trials().size(), 3u);
  EXPECT_EQ(study.trials()[1].status, TrialStatus::Ok);
  EXPECT_EQ(study.trials()[1].attempts, 2u);
  EXPECT_TRUE(study.trials()[1].error.empty());
  EXPECT_EQ(study.trials()[0].attempts, 1u);
  EXPECT_EQ(study.failed_trials(), 0u);
}

TEST(FaultStudy, TimeoutMarksTrialTimedOut) {
  CaseStudyDef def = throwing_study({});
  def.evaluate = [](const LearningConfiguration& c, double budget,
                    std::uint64_t seed) -> MetricValues {
    (void)seed;
    const std::int64_t x = c.get_integer("x");
    if (x == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    return {{"quality", static_cast<double>(x) * budget}};
  };
  Study study(def, std::make_unique<FixedListSearch>(configs_for_x({1, 2, 3})),
              {.seed = 1,
               .log_progress = false,
               .trial_timeout_seconds = 0.05,
               .on_trial_failure = FailurePolicy::Skip});
  EXPECT_NO_THROW(study.run());
  ASSERT_EQ(study.trials().size(), 3u);
  EXPECT_EQ(study.trials()[1].status, TrialStatus::TimedOut);
  EXPECT_NE(study.trials()[1].error.find("timeout"), std::string::npos);
  EXPECT_EQ(study.trials()[0].status, TrialStatus::Ok);
  EXPECT_EQ(study.trials()[2].status, TrialStatus::Ok);
  // Let the abandoned watchdog evaluation drain before the process moves on.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
}

TEST(FaultStudy, TimeoutBumpsWatchdogDetachedCounter) {
  // Every abandoned watchdog worker must be visible in metrics snapshots:
  // a leaked runaway trial that nobody notices is how campaigns silently
  // exhaust a machine.
  obs::set_metrics_enabled(true);
  obs::Counter& detached =
      obs::Registry::global().counter("study.watchdog_detached");
  const std::uint64_t before = detached.value();
  CaseStudyDef def = throwing_study({});
  def.evaluate = [](const LearningConfiguration& c, double budget,
                    std::uint64_t seed) -> MetricValues {
    (void)c;
    (void)seed;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return {{"quality", budget}};
  };
  Study study(def, std::make_unique<FixedListSearch>(configs_for_x({1})),
              {.seed = 1,
               .log_progress = false,
               .trial_timeout_seconds = 0.05,
               .on_trial_failure = FailurePolicy::Skip});
  EXPECT_NO_THROW(study.run());
  obs::set_metrics_enabled(false);
  ASSERT_EQ(study.trials().size(), 1u);
  EXPECT_EQ(study.trials()[0].status, TrialStatus::TimedOut);
  EXPECT_EQ(detached.value(), before + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
}

TEST(FaultStudy, TimeoutAbortRethrowsDarlError) {
  CaseStudyDef def = throwing_study({});
  def.evaluate = [](const LearningConfiguration& c, double budget,
                    std::uint64_t seed) -> MetricValues {
    (void)c;
    (void)seed;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return {{"quality", budget}};
  };
  Study study(def, std::make_unique<FixedListSearch>(configs_for_x({1})),
              {.seed = 1, .log_progress = false, .trial_timeout_seconds = 0.05});
  EXPECT_THROW(study.run(), Error);
  ASSERT_EQ(study.trials().size(), 1u);
  EXPECT_EQ(study.trials()[0].status, TrialStatus::TimedOut);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
}

// Acceptance scenario: throw probability 0.3 with two retries and the skip
// policy completes every proposed trial, records the permanent failures,
// and never terminates the process — serially and with parallel_trials=4.
void run_fault_injection_campaign(std::size_t parallel,
                                  std::vector<TrialRecord>& out) {
  FaultInjectionOptions fi;
  fi.throw_probability = 0.3;
  const CaseStudyDef def = make_fault_injection_case_study(fi);
  Study study(def, std::make_unique<GridSearch>(def.space, 2),
              {.seed = 7,
               .log_progress = false,
               .parallel_trials = parallel,
               .max_retries = 2,
               .on_trial_failure = FailurePolicy::Skip});
  EXPECT_NO_THROW(study.run());
  out = study.trials();
  // The grid proposes all 8 configurations; all of them must be recorded.
  ASSERT_EQ(out.size(), 8u);
  for (const auto& t : out) {
    if (!t.ok()) {
      EXPECT_EQ(t.status, TrialStatus::Failed);
      EXPECT_EQ(t.attempts, 3u);  // exhausted 1 + 2 retries
      EXPECT_FALSE(t.error.empty());
    }
  }
  for (const std::size_t idx : study.pareto_trials()) {
    EXPECT_TRUE(out[idx].ok());
  }
}

TEST(FaultStudy, FaultInjectionCampaignCompletesSerial) {
  std::vector<TrialRecord> trials;
  run_fault_injection_campaign(1, trials);
}

TEST(FaultStudy, FaultInjectionCampaignCompletesParallel4) {
  std::vector<TrialRecord> trials;
  run_fault_injection_campaign(4, trials);
}

TEST(FaultStudy, FaultInjectionDeterministicAcrossParallelism) {
  // Fault decisions hash (config, attempt seed), so the whole campaign —
  // including which trials fail and after how many attempts — must be
  // identical for parallel_trials = 1, 2 and 4.
  std::vector<TrialRecord> base;
  run_fault_injection_campaign(1, base);
  for (const std::size_t width : {2u, 4u}) {
    std::vector<TrialRecord> other;
    run_fault_injection_campaign(width, other);
    ASSERT_EQ(base.size(), other.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(base[i].id, other[i].id);
      EXPECT_EQ(base[i].config.cache_key(), other[i].config.cache_key());
      EXPECT_EQ(base[i].status, other[i].status);
      EXPECT_EQ(base[i].attempts, other[i].attempts);
      EXPECT_EQ(base[i].error, other[i].error);
      if (base[i].ok()) {
        EXPECT_EQ(base[i].metrics.at("quality"), other[i].metrics.at("quality"));
        EXPECT_EQ(base[i].metrics.at("cost"), other[i].metrics.at("cost"));
      }
    }
  }
}

TEST(FaultStudy, SuccessiveHalvingDoesNotStallOnFailures) {
  // Every evaluation fails: without tell_failure the rungs would never
  // complete and run() would spin forever waiting for tells.
  FaultInjectionOptions fi;
  fi.throw_probability = 1.0;
  const CaseStudyDef def = make_fault_injection_case_study(fi);
  auto sh = std::make_unique<SuccessiveHalving>(
      def.space, def.metrics.defs()[0], 4, 2.0, 0.5, 3);
  Study study(def, std::move(sh),
              {.seed = 5,
               .log_progress = false,
               .on_trial_failure = FailurePolicy::Skip});
  EXPECT_NO_THROW(study.run());
  // Rung 0 (4 trials at half budget) plus the follow-up rung both ran.
  EXPECT_GE(study.trials().size(), 6u);
  EXPECT_EQ(study.failed_trials(), study.trials().size());
  EXPECT_TRUE(study.pareto_trials().empty());
}

TEST(FaultStudy, IncompleteMetricsCountAsFailure) {
  CaseStudyDef def = throwing_study({});
  def.evaluate = [](const LearningConfiguration& c, double budget,
                    std::uint64_t seed) -> MetricValues {
    (void)seed;
    if (c.get_integer("x") == 2) return {};  // forgot to report "quality"
    return {{"quality", static_cast<double>(c.get_integer("x")) * budget}};
  };
  Study study(def, std::make_unique<FixedListSearch>(configs_for_x({1, 2, 3})),
              {.seed = 1,
               .log_progress = false,
               .on_trial_failure = FailurePolicy::Skip});
  EXPECT_NO_THROW(study.run());
  ASSERT_EQ(study.trials().size(), 3u);
  EXPECT_EQ(study.trials()[1].status, TrialStatus::Failed);
  EXPECT_EQ(study.metric_table().size(), 2u);
}

TEST(FaultStudy, FailureSummaryRendersFailedTrialsOnly) {
  Study study(throwing_study({2}),
              std::make_unique<FixedListSearch>(configs_for_x({1, 2, 3})),
              {.seed = 1,
               .log_progress = false,
               .on_trial_failure = FailurePolicy::Skip});
  study.run();
  const std::string summary = render_failure_summary(study.trials());
  EXPECT_NE(summary.find("failed"), std::string::npos);
  EXPECT_NE(summary.find("boom for x=2"), std::string::npos);
  // The trial table grows a status column when failures are present.
  const std::string table = render_trial_table(study.definition(), study.trials());
  EXPECT_NE(table.find("status"), std::string::npos);
  // Markdown report gains a failure section and still renders fronts.
  const std::string md = write_markdown_report(study.definition(), study.trials());
  EXPECT_NE(md.find("## Failed trials"), std::string::npos);
  EXPECT_NE(md.find("(1 failed)"), std::string::npos);

  // An all-Ok campaign renders no failure artifacts.
  Study clean(throwing_study({}),
              std::make_unique<FixedListSearch>(configs_for_x({1, 2, 3})),
              {.seed = 1, .log_progress = false});
  clean.run();
  EXPECT_EQ(render_failure_summary(clean.trials()), "");
  EXPECT_EQ(render_trial_table(clean.definition(), clean.trials()).find("status"),
            std::string::npos);
}

TEST(FaultStudy, FailedTrialsRoundTripThroughCsv) {
  Study study(throwing_study({2}),
              std::make_unique<FixedListSearch>(configs_for_x({1, 2, 3})),
              {.seed = 1,
               .log_progress = false,
               .max_retries = 1,
               .on_trial_failure = FailurePolicy::Skip});
  study.run();
  std::stringstream buf;
  write_trials_csv(buf, study.definition(), study.trials());
  const auto loaded = load_trials_csv(buf, study.definition());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[1].status, TrialStatus::Failed);
  EXPECT_EQ((*loaded)[1].attempts, 2u);
  EXPECT_EQ((*loaded)[1].error, study.trials()[1].error);
  EXPECT_EQ((*loaded)[1].metrics.count("quality"), 0u);
  EXPECT_EQ((*loaded)[0].metrics.at("quality"),
            study.trials()[0].metrics.at("quality"));
}

}  // namespace
}  // namespace darl::core
