// tests/test_serve.cpp — the micro-batching inference server.
//
// The load-bearing property is the correctness bar from DESIGN.md §12: a
// served action must be bitwise-identical to per-sample Mlp::evaluate +
// greedy decode on the same checkpoint, for every queue/batch/concurrency
// setting — PR 4's ascending-index gemm accumulation makes batching
// invisible to the numerics. The concurrency tests (hot swap under load,
// backpressure, drain) get real teeth in the TSan tree tools/check.sh
// builds.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "darl/common/rng.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/rl/factory.hpp"
#include "darl/serve/arrival.hpp"
#include "darl/serve/batch_scheduler.hpp"
#include "darl/serve/policy_store.hpp"
#include "darl/serve/router.hpp"

using namespace darl;
using namespace darl::serve;

namespace {

/// Small discrete policy (4 obs dims -> 3 actions) with seed-determined
/// random weights — two different seeds give two distinguishable versions.
PolicySpec make_discrete_spec(std::uint64_t seed) {
  PolicySpec spec;
  spec.sizes = {4, 16, 3};
  spec.activation = nn::Activation::Tanh;
  Rng rng(seed);
  nn::Mlp net(spec.sizes, spec.activation, rng);
  spec.net_params = net.get_flat_params();
  spec.action_space = env::ActionSpace(env::DiscreteSpace(3));
  spec.decode = GreedyDecode::ArgmaxDiscrete;
  return spec;
}

/// Continuous policy with the SAC-style squashed-mean decode.
PolicySpec make_box_spec(std::uint64_t seed) {
  PolicySpec spec;
  spec.sizes = {4, 16, 4};  // head = mean ++ log-std for a 2-dim box
  spec.activation = nn::Activation::Tanh;
  Rng rng(seed);
  nn::Mlp net(spec.sizes, spec.activation, rng);
  spec.net_params = net.get_flat_params();
  spec.action_space = env::ActionSpace(env::BoxSpace(2, -1.5, 2.0));
  spec.decode = GreedyDecode::SquashedMeanBox;
  return spec;
}

Vec random_obs(Rng& rng) {
  Vec obs(4);
  for (double& v : obs) v = rng.uniform(-1.0, 1.0);
  return obs;
}

bool bitwise_equal(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Spin until the scheduler's queue holds `want` requests (clients block
/// inside serve(), so enqueueing is asynchronous from the test's view).
void wait_for_queue_depth(const BatchScheduler& server, std::size_t want) {
  for (int i = 0; i < 20000 && server.queue_depth() < want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.queue_depth(), want);
}

}  // namespace

// ---------------------------------------------------------------------------
// PolicyStore

TEST(PolicyStore, PublishesMonotonicVersionsAndRetainsOld) {
  PolicyStore store;
  EXPECT_EQ(store.current(), nullptr);
  EXPECT_EQ(store.version_count(), 0u);

  EXPECT_EQ(store.publish(make_discrete_spec(1)), 1u);
  const PolicyVersion* v1 = store.current();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->id, 1u);
  EXPECT_NE(v1->params_digest, 0u);

  EXPECT_EQ(store.publish(make_discrete_spec(2)), 2u);
  const PolicyVersion* v2 = store.current();
  EXPECT_EQ(v2->id, 2u);
  EXPECT_EQ(store.version_count(), 2u);

  // The old version stays fully readable after the swap — this is what
  // lets in-flight micro-batches finish on the version they started with.
  EXPECT_EQ(v1->spec.sizes.size(), 3u);
  EXPECT_NE(v1->params_digest, v2->params_digest);
}

TEST(PolicyStore, RejectsParamCountMismatch) {
  PolicySpec spec = make_discrete_spec(3);
  spec.net_params.pop_back();
  PolicyStore store;
  EXPECT_THROW(store.publish(std::move(spec)), Error);
}

TEST(PolicySpec, FromCheckpointMatchesAlgorithmArchitectures) {
  // PPO discrete: all parameters are network parameters.
  rl::AlgorithmSpec algo_spec;
  algo_spec.kind = rl::AlgoKind::PPO;
  const env::ActionSpace discrete(env::DiscreteSpace(2));
  auto ppo = rl::make_algorithm(algo_spec, 4, discrete, 7);
  rl::Checkpoint ck;
  ck.kind = rl::AlgoKind::PPO;
  ck.obs_dim = 4;
  ck.action_dim = 1;
  ck.params = ppo->policy_params();
  const PolicySpec ppo_spec = policy_spec_from_checkpoint(ck, discrete);
  EXPECT_EQ(ppo_spec.sizes, (std::vector<std::size_t>{4, 64, 64, 2}));
  EXPECT_EQ(ppo_spec.decode, GreedyDecode::ArgmaxDiscrete);
  EXPECT_EQ(ppo_spec.net_params.size(), ck.params.size());
  EXPECT_EQ(ppo_spec.action_dim(), 1u);

  // PPO continuous: the state-independent log-std tail is split off.
  const env::ActionSpace box(env::BoxSpace(2, -1.0, 1.0));
  auto ppo_box = rl::make_algorithm(algo_spec, 4, box, 7);
  rl::Checkpoint ck_box;
  ck_box.kind = rl::AlgoKind::PPO;
  ck_box.obs_dim = 4;
  ck_box.action_dim = 2;
  ck_box.params = ppo_box->policy_params();
  const PolicySpec box_spec = policy_spec_from_checkpoint(ck_box, box);
  EXPECT_EQ(box_spec.decode, GreedyDecode::ClipBox);
  EXPECT_EQ(box_spec.net_params.size() + 2, ck_box.params.size());

  // SAC: twin-headed actor, no tail.
  rl::AlgorithmSpec sac_spec;
  sac_spec.kind = rl::AlgoKind::SAC;
  auto sac = rl::make_algorithm(sac_spec, 4, box, 7);
  rl::Checkpoint ck_sac;
  ck_sac.kind = rl::AlgoKind::SAC;
  ck_sac.obs_dim = 4;
  ck_sac.action_dim = 2;
  ck_sac.params = sac->policy_params();
  const PolicySpec sac_policy = policy_spec_from_checkpoint(ck_sac, box);
  EXPECT_EQ(sac_policy.sizes.back(), 4u);
  EXPECT_EQ(sac_policy.decode, GreedyDecode::SquashedMeanBox);

  // Architecture mismatch is a typed checkpoint error.
  EXPECT_THROW(policy_spec_from_checkpoint(ck, discrete, {32}),
               rl::CheckpointError);
}

// ---------------------------------------------------------------------------
// Bitwise served-vs-direct equivalence

namespace {

/// Hammer one scheduler config from `clients` threads and compare every
/// served action bitwise against the per-sample direct path.
void run_equivalence(const ServeConfig& config, std::size_t clients,
                     std::size_t requests_per_client) {
  PolicyStore store;
  store.publish(make_discrete_spec(11));
  BatchScheduler server(store, config);

  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> not_ok{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      DirectPolicy direct(store.current()->spec);
      Rng rng(100 + c);
      for (std::size_t r = 0; r < requests_per_client; ++r) {
        const Vec obs = random_obs(rng);
        const Response response = server.serve(obs);
        if (response.outcome != Outcome::Ok || response.version != 1) {
          not_ok.fetch_add(1);
          continue;
        }
        if (!bitwise_equal(response.action, direct.act(obs))) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(not_ok.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace

TEST(Serve, BitwiseMatchesDirectBatchSizeOne) {
  ServeConfig config;
  config.max_batch = 1;
  config.max_delay_us = 0.0;
  config.workers = 1;
  run_equivalence(config, 4, 50);
}

TEST(Serve, BitwiseMatchesDirectSmallWindow) {
  ServeConfig config;
  config.max_batch = 8;
  config.max_delay_us = 200.0;
  config.workers = 1;
  run_equivalence(config, 8, 40);
}

TEST(Serve, BitwiseMatchesDirectWideWindowWorkerPool) {
  ServeConfig config;
  config.max_batch = 32;
  config.max_delay_us = 1000.0;
  config.workers = 4;
  run_equivalence(config, 8, 40);
}

TEST(Serve, BitwiseMatchesDirectContinuousDecode) {
  PolicyStore store;
  store.publish(make_box_spec(21));
  ServeConfig config;
  config.max_batch = 4;
  config.max_delay_us = 100.0;
  BatchScheduler server(store, config);

  DirectPolicy direct(store.current()->spec);
  Rng rng(5);
  for (int r = 0; r < 50; ++r) {
    const Vec obs = random_obs(rng);
    const Response response = server.serve(obs);
    ASSERT_EQ(response.outcome, Outcome::Ok);
    ASSERT_EQ(response.action.size(), 2u);
    EXPECT_TRUE(bitwise_equal(response.action, direct.act(obs)));
  }
}

// ---------------------------------------------------------------------------
// int8 quantized serving
//
// Quantized mode keeps the self-check shape: the reference is a quantized
// DirectPolicy (batch-of-1 through the same int8 kernel), and served
// actions must match it bitwise because rows reduce independently in
// exact integer arithmetic. Exact-mode tenants must stay bitwise-equal to
// the exact reference — the quantized fleet setting cannot leak into them.

TEST(ServeQuantized, PublishDerivesQuantizedSnapshot) {
  PolicyStore store;
  store.publish(make_discrete_spec(71));
  const PolicyVersion* version = store.current();
  ASSERT_NE(version, nullptr);
  ASSERT_NE(version->quantized, nullptr);
  EXPECT_EQ(version->quantized->sizes, version->spec.sizes);
  EXPECT_EQ(version->quantized->layers.size(), 2u);
}

TEST(ServeQuantized, SchedulerMatchesQuantizedDirectBitwise) {
  PolicyStore store;
  store.publish(make_discrete_spec(72));
  ServeConfig config;
  config.max_batch = 8;
  config.max_delay_us = 200.0;
  config.quantized = true;
  BatchScheduler server(store, config);

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      DirectPolicy direct(store.current()->spec, /*quantized=*/true);
      Rng rng(300 + c);
      for (int r = 0; r < 40; ++r) {
        const Vec obs = random_obs(rng);
        const Response response = server.serve(obs);
        ASSERT_EQ(response.outcome, Outcome::Ok);
        if (!bitwise_equal(response.action, direct.act(obs))) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(ServeQuantized, ContinuousDecodeMatchesQuantizedDirect) {
  PolicyStore store;
  store.publish(make_box_spec(73));
  ServeConfig config;
  config.max_batch = 4;
  config.max_delay_us = 100.0;
  config.quantized = true;
  BatchScheduler server(store, config);

  DirectPolicy direct(store.current()->spec, /*quantized=*/true);
  Rng rng(9);
  for (int r = 0; r < 50; ++r) {
    const Vec obs = random_obs(rng);
    const Response response = server.serve(obs);
    ASSERT_EQ(response.outcome, Outcome::Ok);
    EXPECT_TRUE(bitwise_equal(response.action, direct.act(obs)));
  }
}

TEST(RouterQuantized, ExactTenantsKeepTheExactPath) {
  PolicyStore store;
  store.publish("quant", make_discrete_spec(74));
  store.publish("exact", make_discrete_spec(75));
  RouterConfig config;
  config.shards = 2;
  config.quantized = true;
  config.exact_tenants = {"exact"};
  Router router(store, config);

  EXPECT_TRUE(router.tenant_quantized("quant"));
  EXPECT_FALSE(router.tenant_quantized("exact"));
  EXPECT_FALSE(router.tenant_quantized("no-such-tenant"));

  DirectPolicy direct_quant(store.current("quant")->spec, /*quantized=*/true);
  DirectPolicy direct_exact(store.current("exact")->spec, /*quantized=*/false);
  Rng rng(11);
  for (int r = 0; r < 60; ++r) {
    const Vec obs = random_obs(rng);
    const Response rq =
        router.serve("quant", static_cast<std::uint64_t>(r), obs);
    ASSERT_EQ(rq.outcome, Outcome::Ok);
    EXPECT_TRUE(bitwise_equal(rq.action, direct_quant.act(obs)));
    const Response re =
        router.serve("exact", static_cast<std::uint64_t>(r), obs);
    ASSERT_EQ(re.outcome, Outcome::Ok);
    EXPECT_TRUE(bitwise_equal(re.action, direct_exact.act(obs)));
  }
  router.shutdown();
}

TEST(RouterQuantized, DefaultConfigLeavesEveryTenantExact) {
  PolicyStore store;
  store.publish("a", make_discrete_spec(76));
  RouterConfig config;  // quantized defaults to false
  Router router(store, config);
  EXPECT_FALSE(router.tenant_quantized("a"));

  // Exact mode must be byte-for-byte unaffected by the quantized code
  // riding on the version: same actions as the exact direct path.
  DirectPolicy direct(store.current("a")->spec);
  Rng rng(13);
  for (int r = 0; r < 30; ++r) {
    const Vec obs = random_obs(rng);
    const Response response =
        router.serve("a", static_cast<std::uint64_t>(r), obs);
    ASSERT_EQ(response.outcome, Outcome::Ok);
    EXPECT_TRUE(bitwise_equal(response.action, direct.act(obs)));
  }
  router.shutdown();
}

// ---------------------------------------------------------------------------
// Admission control

TEST(Serve, RejectsWrongObservationDimension) {
  PolicyStore store;
  store.publish(make_discrete_spec(31));
  BatchScheduler server(store, ServeConfig{});
  EXPECT_THROW(server.serve(Vec(3, 0.0)), InvalidArgument);
}

TEST(Serve, RequiresAPublishedVersion) {
  PolicyStore store;
  EXPECT_THROW(BatchScheduler(store, ServeConfig{}), Error);
}

TEST(Serve, DeadlineReturnsTimedOutInsteadOfBlocking) {
  PolicyStore store;
  store.publish(make_discrete_spec(41));
  ServeConfig config;
  config.workers = 0;  // nothing dispatches: the queue never drains
  BatchScheduler server(store, config);

  Rng rng(1);
  const Response response = server.serve(random_obs(rng), /*deadline_us=*/5000.0);
  EXPECT_EQ(response.outcome, Outcome::TimedOut);
  EXPECT_GE(response.latency_us, 5000.0);
  // The abandoned request removed itself from the queue.
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(Serve, BackpressureRejectsWhenQueueIsFull) {
  PolicyStore store;
  store.publish(make_discrete_spec(51));
  ServeConfig config;
  config.workers = 0;
  config.queue_capacity = 2;
  BatchScheduler server(store, config);

  Response blocked_a, blocked_b;
  std::thread a([&] {
    Rng rng(2);
    blocked_a = server.serve(random_obs(rng), /*deadline_us=*/3e5);
  });
  std::thread b([&] {
    Rng rng(3);
    blocked_b = server.serve(random_obs(rng), /*deadline_us=*/3e5);
  });
  wait_for_queue_depth(server, 2);

  // Queue full: the next request is rejected immediately, not blocked.
  Rng rng(4);
  Stopwatch reject_time;
  const Response rejected = server.serve(random_obs(rng), /*deadline_us=*/3e5);
  EXPECT_EQ(rejected.outcome, Outcome::RejectedFull);
  EXPECT_LT(reject_time.seconds(), 0.25);

  a.join();
  b.join();
  EXPECT_EQ(blocked_a.outcome, Outcome::TimedOut);
  EXPECT_EQ(blocked_b.outcome, Outcome::TimedOut);
}

TEST(Serve, GatherFlushServesLonelyRequestBeforeWindowExpires) {
  PolicyStore store;
  store.publish(make_discrete_spec(45));
  ServeConfig config;
  config.max_batch = 16;
  config.max_delay_us = 10e6;  // a 10 s window, cut short by yield-gather
  config.gather = true;
  config.workers = 1;
  BatchScheduler server(store, config);

  Rng rng(8);
  Stopwatch clock;
  const Response response = server.serve(random_obs(rng));
  EXPECT_EQ(response.outcome, Outcome::Ok);
  // Served after roughly one idle gap, nowhere near the 10 s window.
  EXPECT_LT(clock.seconds(), 5.0);
}

// ---------------------------------------------------------------------------
// Hot swap

TEST(Serve, HotSwapUnderLoadServesEachRequestFromOneVersion) {
  PolicyStore store;
  const PolicySpec spec_v1 = make_discrete_spec(61);
  const PolicySpec spec_v2 = make_discrete_spec(62);
  store.publish(spec_v1);

  ServeConfig config;
  config.max_batch = 8;
  config.max_delay_us = 100.0;
  config.workers = 2;
  config.queue_capacity = 1024;
  BatchScheduler server(store, config);

  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> bad_version{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      DirectPolicy direct_v1(spec_v1);
      DirectPolicy direct_v2(spec_v2);
      Rng rng(200 + c);
      for (int r = 0; r < 150; ++r) {
        const Vec obs = random_obs(rng);
        const Response response = server.serve(obs);
        if (response.outcome != Outcome::Ok) {
          bad_version.fetch_add(1);
          continue;
        }
        // Whichever version served the request, the action must be that
        // version's exact greedy decision — never a blend.
        if (response.version == 1) {
          if (!bitwise_equal(response.action, direct_v1.act(obs)))
            mismatches.fetch_add(1);
        } else if (response.version == 2) {
          if (!bitwise_equal(response.action, direct_v2.act(obs)))
            mismatches.fetch_add(1);
        } else {
          bad_version.fetch_add(1);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  store.publish(spec_v2);  // swap under live traffic
  for (auto& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(bad_version.load(), 0u);

  // After the swap has settled, new requests are served by version 2.
  Rng rng(9);
  const Response after = server.serve(random_obs(rng));
  EXPECT_EQ(after.outcome, Outcome::Ok);
  EXPECT_EQ(after.version, 2u);
}

// ---------------------------------------------------------------------------
// Shutdown

TEST(Serve, ShutdownDrainsQueueThenRejects) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().reset();

  PolicyStore store;
  store.publish(make_discrete_spec(71));
  ServeConfig config;
  config.max_batch = 16;
  config.max_delay_us = 10e6;  // 10 s window: nothing flushes on its own
  config.gather = false;       // fixed window, no early gather flush
  config.workers = 1;
  config.queue_capacity = 32;
  BatchScheduler server(store, config);

  constexpr std::size_t kClients = 8;
  std::vector<Response> responses(kClients);
  std::vector<Vec> observations(kClients);
  {
    Rng rng(6);
    for (auto& obs : observations) obs = random_obs(rng);
  }
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] { responses[c] = server.serve(observations[c]); });
  }
  // All eight sit in the batching window (fewer than max_batch arrived).
  wait_for_queue_depth(server, kClients);

  server.shutdown();  // flushes the window, serves all eight, joins
  for (auto& t : clients) t.join();

  DirectPolicy direct(store.current()->spec);
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(responses[c].outcome, Outcome::Ok) << "client " << c;
    EXPECT_TRUE(bitwise_equal(responses[c].action, direct.act(observations[c])));
  }

  // Everything drained as one micro-batch of eight.
  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counters.at("serve.served"), kClients);
  EXPECT_EQ(snap.counters.at("serve.batches"), 1u);

  // The server no longer admits work.
  Rng rng(7);
  const Response rejected = server.serve(random_obs(rng));
  EXPECT_EQ(rejected.outcome, Outcome::RejectedShutdown);
  obs::set_metrics_enabled(false);
}

TEST(Serve, OutcomeNamesAreStable) {
  EXPECT_STREQ(outcome_name(Outcome::Ok), "ok");
  EXPECT_STREQ(outcome_name(Outcome::RejectedFull), "rejected-full");
  EXPECT_STREQ(outcome_name(Outcome::RejectedShutdown), "rejected-shutdown");
  EXPECT_STREQ(outcome_name(Outcome::TimedOut), "timed-out");
  EXPECT_STREQ(outcome_name(Outcome::RejectedQuota), "rejected-quota");
  EXPECT_STREQ(outcome_name(Outcome::Shed), "shed");
}

// ---------------------------------------------------------------------------
// Serving-path observability (latency by outcome, per-shard queue gauges)

TEST(ServeObs, LatencyRecordedForEveryOutcome) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().reset();

  PolicyStore store;
  store.publish(make_discrete_spec(81));
  {
    ServeConfig ok_config;
    BatchScheduler server(store, ok_config);
    Rng rng(1);
    ASSERT_EQ(server.serve(random_obs(rng)).outcome, Outcome::Ok);
  }
  {
    ServeConfig stuck;  // nothing dispatches: deadline + full queue paths
    stuck.workers = 0;
    stuck.queue_capacity = 1;
    BatchScheduler server(store, stuck);
    Response blocked;
    std::thread holder([&] {
      Rng rng(2);
      blocked = server.serve(random_obs(rng), /*deadline_us=*/3e5);
    });
    wait_for_queue_depth(server, 1);
    Rng rng(3);
    ASSERT_EQ(server.serve(random_obs(rng)).outcome, Outcome::RejectedFull);
    holder.join();
    ASSERT_EQ(blocked.outcome, Outcome::TimedOut);
    server.shutdown();
    ASSERT_EQ(server.serve(random_obs(rng)).outcome,
              Outcome::RejectedShutdown);
  }

  // The pre-fleet scheduler only timed the Ok path; rejected and timed-out
  // requests were invisible in the latency telemetry. Every outcome now
  // lands in its own labeled series.
  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  for (const char* outcome :
       {"ok", "rejected-full", "rejected-shutdown", "timed-out"}) {
    const std::string key =
        std::string("serve.latency_us{outcome=\"") + outcome + "\"}";
    auto it = snap.histograms.find(key);
    ASSERT_NE(it, snap.histograms.end()) << key;
    EXPECT_GE(it->second.count, 1u) << key;
  }
  obs::set_metrics_enabled(false);
}

TEST(ServeObs, QueueDepthGaugesArePerShard) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().reset();

  PolicyStore store;
  store.publish(make_discrete_spec(82));
  RouterConfig config;
  config.shards = 2;
  config.shard.workers = 0;  // requests park in the queue
  Router router(store, config);

  // One key per shard (shard_for is a stable hash, so probe for them).
  std::uint64_t key0 = 0, key1 = 0;
  for (std::uint64_t k = 0; router.shard_for(key1) != 1; ++k) key1 = k;
  for (std::uint64_t k = 0; router.shard_for(key0) != 0; ++k) key0 = k;

  std::vector<std::thread> holders;
  for (const std::uint64_t key : {key0, key0, key1}) {
    holders.emplace_back([&, key] {
      Rng rng(11);
      (void)router.serve("", key, random_obs(rng), Priority::Control,
                         /*deadline_us=*/5e5);
    });
  }
  BatchScheduler* shard0 = router.shard("", 0);
  BatchScheduler* shard1 = router.shard("", 1);
  ASSERT_NE(shard0, nullptr);
  ASSERT_NE(shard1, nullptr);
  wait_for_queue_depth(*shard0, 2);
  wait_for_queue_depth(*shard1, 1);

  // The pre-fleet gauge was one global slot, so concurrent shards
  // overwrote each other (last-writer-wins). Each shard now owns a
  // labeled gauge updated under its queue lock.
  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  EXPECT_EQ(
      snap.gauges.at("serve.queue_depth{shard=\"0\",tenant=\"default\"}"),
      2.0);
  EXPECT_EQ(
      snap.gauges.at("serve.queue_depth{shard=\"1\",tenant=\"default\"}"),
      1.0);

  for (auto& t : holders) t.join();  // deadlines abandon the queue
  const obs::RegistrySnapshot after = obs::Registry::global().snapshot();
  EXPECT_EQ(
      after.gauges.at("serve.queue_depth{shard=\"0\",tenant=\"default\"}"),
      0.0);
  EXPECT_EQ(
      after.gauges.at("serve.queue_depth{shard=\"1\",tenant=\"default\"}"),
      0.0);
  obs::set_metrics_enabled(false);
}

// ---------------------------------------------------------------------------
// Multi-tenant PolicyStore

TEST(PolicyStore, TenantsHaveIndependentVersionChains) {
  PolicyStore store;
  EXPECT_EQ(store.tenant("a"), nullptr);
  EXPECT_EQ(store.current("a"), nullptr);

  EXPECT_EQ(store.publish("a", make_discrete_spec(1)), 1u);
  EXPECT_EQ(store.publish("b", make_discrete_spec(2)), 1u);
  EXPECT_EQ(store.publish("a", make_discrete_spec(3)), 2u);

  // Hot-swapping tenant a never advanced tenant b's chain.
  EXPECT_EQ(store.version_count("a"), 2u);
  EXPECT_EQ(store.version_count("b"), 1u);
  EXPECT_EQ(store.current("a")->id, 2u);
  EXPECT_EQ(store.current("b")->id, 1u);

  // The unnamed tenant is untouched by named publishes.
  EXPECT_EQ(store.current(), nullptr);
  EXPECT_EQ(store.version_count(), 0u);
  EXPECT_EQ(store.tenant_names(), (std::vector<std::string>{"a", "b"}));

  // Tenant handles are stable across publishes.
  const PolicyStore::Tenant* a = store.tenant("a");
  store.publish("a", make_discrete_spec(4));
  EXPECT_EQ(store.tenant("a"), a);
  EXPECT_EQ(a->current()->id, 3u);
}

// ---------------------------------------------------------------------------
// Router: sharding, quotas, shedding, fleet lifecycle

TEST(Router, ShardAssignmentIsStableAndCoversAllShards) {
  PolicyStore store;
  store.publish(make_discrete_spec(91));
  RouterConfig config;
  config.shards = 4;
  Router router(store, config);

  std::vector<std::size_t> hits(config.shards, 0);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const std::size_t shard = router.shard_for(key);
    ASSERT_LT(shard, config.shards);
    // Stable: the same key maps to the same shard on every call.
    EXPECT_EQ(router.shard_for(key), shard);
    ++hits[shard];
  }
  // fnv1a64 spreads sequential keys: every shard takes real traffic.
  for (std::size_t s = 0; s < config.shards; ++s) {
    EXPECT_GT(hits[s], 100u) << "shard " << s;
  }
  router.shutdown();
}

TEST(Router, ServesTenantsFromTheirOwnPolicies) {
  PolicyStore store;
  const PolicySpec spec_a = make_discrete_spec(92);
  const PolicySpec spec_b = make_box_spec(93);
  store.publish("a", spec_a);
  store.publish("b", spec_b);

  RouterConfig config;
  config.shards = 2;
  Router router(store, config);
  EXPECT_EQ(router.tenant_names(), (std::vector<std::string>{"a", "b"}));

  DirectPolicy direct_a(spec_a);
  DirectPolicy direct_b(spec_b);
  Rng rng(14);
  for (std::uint64_t r = 0; r < 40; ++r) {
    const Vec obs = random_obs(rng);
    const Response from_a = router.serve("a", r, obs);
    ASSERT_EQ(from_a.outcome, Outcome::Ok);
    EXPECT_TRUE(bitwise_equal(from_a.action, direct_a.act(obs)));
    const Response from_b = router.serve("b", r, obs);
    ASSERT_EQ(from_b.outcome, Outcome::Ok);
    EXPECT_TRUE(bitwise_equal(from_b.action, direct_b.act(obs)));
  }
  EXPECT_THROW(router.serve("nope", 1, random_obs(rng)), Error);
  router.shutdown();
}

TEST(Router, QuotaRejectsExcessInFlightPerTenant) {
  PolicyStore store;
  store.publish("a", make_discrete_spec(94));
  store.publish("b", make_discrete_spec(95));
  RouterConfig config;
  config.shards = 2;
  config.shard.workers = 0;  // requests park: in-flight stays high
  config.default_quota = 2;
  Router router(store, config);

  std::vector<std::thread> holders;
  for (int h = 0; h < 2; ++h) {
    holders.emplace_back([&, h] {
      Rng rng(20 + h);
      (void)router.serve("a", static_cast<std::uint64_t>(h), random_obs(rng),
                         Priority::Control, /*deadline_us=*/5e5);
    });
  }
  const auto tenant_in_flight = [&](const std::string& tenant) {
    return router.queue_depth(tenant, 0) + router.queue_depth(tenant, 1);
  };
  for (int i = 0; i < 20000 && tenant_in_flight("a") < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(tenant_in_flight("a"), 2u);

  // Tenant a is at quota: rejected immediately, without a queue slot.
  Rng rng(30);
  Stopwatch reject_time;
  EXPECT_EQ(router.serve("a", 7, random_obs(rng)).outcome,
            Outcome::RejectedQuota);
  EXPECT_LT(reject_time.seconds(), 0.25);
  // Tenant b's quota is its own: it still admits (and times out parked,
  // since nothing dispatches — admission is what is under test).
  EXPECT_EQ(router.serve("b", 7, random_obs(rng), Priority::Normal,
                         /*deadline_us=*/5000.0)
                .outcome,
            Outcome::TimedOut);

  // Raising the quota readmits tenant a.
  router.set_quota("a", 8);
  EXPECT_EQ(router.serve("a", 9, random_obs(rng), Priority::Normal,
                         /*deadline_us=*/5000.0)
                .outcome,
            Outcome::TimedOut);
  for (auto& t : holders) t.join();
  router.shutdown();
}

TEST(Router, ShedsLowestPriorityFirstAndNeverControl) {
  PolicyStore store;
  store.publish(make_discrete_spec(96));
  RouterConfig config;
  config.shards = 1;  // one queue: depth is fully controlled
  config.shard.workers = 0;
  config.shard.queue_capacity = 8;
  config.shed_low = 0.25;     // shed Low at depth >= 2
  config.shed_normal = 0.50;  // shed Normal at depth >= 4
  config.shed_high = 0.75;    // shed High at depth >= 6
  Router router(store, config);
  BatchScheduler* shard = router.shard("", 0);
  ASSERT_NE(shard, nullptr);

  std::vector<std::thread> holders;
  const auto park = [&](std::size_t count) {
    for (std::size_t h = 0; h < count; ++h) {
      holders.emplace_back([&] {
        Rng rng(40);
        (void)router.serve("", 1, random_obs(rng), Priority::Control,
                           /*deadline_us=*/1e6);
      });
    }
  };
  Rng rng(41);

  park(2);
  wait_for_queue_depth(*shard, 2);
  // Depth 2: Low sheds, Normal and High still admit.
  EXPECT_EQ(router.serve("", 1, random_obs(rng), Priority::Low).outcome,
            Outcome::Shed);
  EXPECT_EQ(router.serve("", 1, random_obs(rng), Priority::Normal,
                         /*deadline_us=*/2000.0)
                .outcome,
            Outcome::TimedOut);

  park(2);
  wait_for_queue_depth(*shard, 4);
  // Depth 4: Normal sheds too; High still admits.
  EXPECT_EQ(router.serve("", 1, random_obs(rng), Priority::Normal).outcome,
            Outcome::Shed);
  EXPECT_EQ(router.serve("", 1, random_obs(rng), Priority::High,
                         /*deadline_us=*/2000.0)
                .outcome,
            Outcome::TimedOut);

  park(2);
  wait_for_queue_depth(*shard, 6);
  // Depth 6: every lane sheds except Control, which only the hard queue
  // capacity can stop.
  EXPECT_EQ(router.serve("", 1, random_obs(rng), Priority::High).outcome,
            Outcome::Shed);
  EXPECT_EQ(router.serve("", 1, random_obs(rng), Priority::Control,
                         /*deadline_us=*/2000.0)
                .outcome,
            Outcome::TimedOut);

  park(2);
  wait_for_queue_depth(*shard, 8);
  // Queue full: even Control gets backpressure, typed as RejectedFull.
  EXPECT_EQ(router.serve("", 1, random_obs(rng), Priority::Control).outcome,
            Outcome::RejectedFull);

  for (auto& t : holders) t.join();
  router.shutdown();
}

TEST(Router, HotSwapsOneTenantWhileAnotherServes) {
  PolicyStore store;
  const PolicySpec spec_a1 = make_discrete_spec(97);
  const PolicySpec spec_a2 = make_discrete_spec(98);
  const PolicySpec spec_b = make_discrete_spec(99);
  store.publish("a", spec_a1);
  store.publish("b", spec_b);
  RouterConfig config;
  config.shards = 2;
  Router router(store, config);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> b_errors{0};
  std::thread b_client([&] {
    DirectPolicy direct_b(spec_b);
    Rng rng(50);
    std::uint64_t r = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const Vec obs = random_obs(rng);
      const Response response = router.serve("b", r++, obs);
      // Tenant b must be untouched by a's swap: same version, same bits.
      if (response.outcome != Outcome::Ok || response.version != 1 ||
          !bitwise_equal(response.action, direct_b.act(obs))) {
        b_errors.fetch_add(1);
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  store.publish("a", spec_a2);  // hot-swap tenant a under b's live load

  DirectPolicy direct_a2(spec_a2);
  Rng rng(51);
  for (std::uint64_t r = 0; r < 20; ++r) {
    const Vec obs = random_obs(rng);
    const Response response = router.serve("a", r, obs);
    ASSERT_EQ(response.outcome, Outcome::Ok);
    EXPECT_EQ(response.version, 2u);
    EXPECT_TRUE(bitwise_equal(response.action, direct_a2.act(obs)));
  }
  stop.store(true, std::memory_order_relaxed);
  b_client.join();
  EXPECT_EQ(b_errors.load(), 0u);
  router.shutdown();
}

TEST(Router, ShutdownDrainsEveryShardThenRejects) {
  PolicyStore store;
  store.publish("a", make_discrete_spec(101));
  store.publish("b", make_discrete_spec(102));
  RouterConfig config;
  config.shards = 2;
  config.shard.max_batch = 16;
  config.shard.max_delay_us = 10e6;  // 10 s window: nothing self-flushes
  config.shard.gather = false;
  Router router(store, config);

  // Park two clients on every (tenant, shard) queue.
  constexpr std::size_t kPerShard = 2;
  std::vector<Response> responses;
  std::vector<std::thread> clients;
  std::vector<std::pair<std::string, std::uint64_t>> placements;
  for (const std::string tenant : {"a", "b"}) {
    for (std::size_t s = 0; s < config.shards; ++s) {
      std::uint64_t key = 0;
      for (std::uint64_t k = 0; router.shard_for(key) != s; ++k) key = k;
      for (std::size_t i = 0; i < kPerShard; ++i) {
        placements.emplace_back(tenant, key);
      }
    }
  }
  responses.resize(placements.size());
  Rng rng(60);
  std::vector<Vec> observations;
  observations.reserve(placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    observations.push_back(random_obs(rng));
  }
  for (std::size_t i = 0; i < placements.size(); ++i) {
    clients.emplace_back([&, i] {
      responses[i] = router.serve(placements[i].first, placements[i].second,
                                  observations[i]);
    });
  }
  for (const std::string tenant : {"a", "b"}) {
    for (std::size_t s = 0; s < config.shards; ++s) {
      BatchScheduler* shard = router.shard(tenant, s);
      ASSERT_NE(shard, nullptr);
      wait_for_queue_depth(*shard, kPerShard);
    }
  }

  router.shutdown();  // flushes every shard's window and joins its workers
  for (auto& t : clients) t.join();
  for (std::size_t i = 0; i < placements.size(); ++i) {
    ASSERT_EQ(responses[i].outcome, Outcome::Ok) << "request " << i;
    DirectPolicy direct(store.current(placements[i].first)->spec);
    EXPECT_TRUE(bitwise_equal(responses[i].action,
                              direct.act(observations[i])));
  }

  // The fleet no longer admits work, on any tenant.
  EXPECT_EQ(router.serve("a", 1, random_obs(rng)).outcome,
            Outcome::RejectedShutdown);
  EXPECT_EQ(router.serve("b", 1, random_obs(rng)).outcome,
            Outcome::RejectedShutdown);
}

TEST(Router, PriorityNamesAreStable) {
  EXPECT_STREQ(priority_name(Priority::Control), "control");
  EXPECT_STREQ(priority_name(Priority::High), "high");
  EXPECT_STREQ(priority_name(Priority::Normal), "normal");
  EXPECT_STREQ(priority_name(Priority::Low), "low");
}

// ---------------------------------------------------------------------------
// Arrival processes (open-loop load generation)

TEST(Arrival, MeanGapMatchesConfiguredRate) {
  Rng rng(70);
  for (const Arrival kind :
       {Arrival::Poisson, Arrival::Bursty, Arrival::HeavyTail}) {
    ArrivalProcess arrivals(kind, /*mean_gap_s=*/0.01);
    double total = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) total += arrivals.next_gap_s(rng);
    // Long-run mean gap within 15% of the configured 10ms (HeavyTail has
    // infinite variance, so the tolerance is generous).
    EXPECT_NEAR(total / kDraws, 0.01, 0.0015) << arrival_name(kind);
  }
}

TEST(Arrival, ParsesCliSpellings) {
  Arrival out = Arrival::Poisson;
  EXPECT_TRUE(parse_arrival("bursty", out));
  EXPECT_EQ(out, Arrival::Bursty);
  EXPECT_TRUE(parse_arrival("heavytail", out));
  EXPECT_EQ(out, Arrival::HeavyTail);
  EXPECT_TRUE(parse_arrival("poisson", out));
  EXPECT_EQ(out, Arrival::Poisson);
  EXPECT_FALSE(parse_arrival("uniform", out));
  EXPECT_EQ(out, Arrival::Poisson);  // untouched on failure
}
