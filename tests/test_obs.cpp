// Unit tests for darl/obs: metrics registry (counters, gauges, histograms),
// span tracer, Chrome trace export, and the enabled/disabled gates.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "darl/common/error.hpp"
#include "darl/common/jsonl.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/trace.hpp"

namespace darl::obs {
namespace {

// Each test owns the process-wide state: reset instruments and spans, turn
// the layer on, and turn it back off on exit so other suites (which expect
// the default-off gates) are unaffected.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    clear_spans();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    Registry::global().reset();
    clear_spans();
  }
};

// ------------------------------------------------------------- validator
//
// Minimal JSON syntax checker (the repo has a writer but no parser): accepts
// a position, consumes one value, reports success. Enough to assert the
// exporter emits structurally valid JSON.

bool skip_value(const std::string& s, std::size_t& i);

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
    ++i;
}

bool skip_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) return false;
      const char c = s[i];
      if (c == 'u') {
        for (int k = 0; k < 4; ++k) {
          ++i;
          if (i >= s.size() || !std::isxdigit(static_cast<unsigned char>(s[i])))
            return false;
        }
      } else if (c != '"' && c != '\\' && c != '/' && c != 'b' && c != 'f' &&
                 c != 'n' && c != 'r' && c != 't') {
        return false;
      }
    } else if (static_cast<unsigned char>(s[i]) < 0x20) {
      return false;  // raw control character inside a string
    }
    ++i;
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

bool skip_number(const std::string& s, std::size_t& i) {
  const std::size_t start = i;
  if (i < s.size() && s[i] == '-') ++i;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  return i > start && s[start] != '.' &&
         std::isdigit(static_cast<unsigned char>(s[i - 1]));
}

bool skip_value(const std::string& s, std::size_t& i) {
  skip_ws(s, i);
  if (i >= s.size()) return false;
  const char c = s[i];
  if (c == '"') return skip_string(s, i);
  if (c == '{') {
    ++i;
    skip_ws(s, i);
    if (i < s.size() && s[i] == '}') { ++i; return true; }
    while (true) {
      skip_ws(s, i);
      if (!skip_string(s, i)) return false;
      skip_ws(s, i);
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      if (!skip_value(s, i)) return false;
      skip_ws(s, i);
      if (i < s.size() && s[i] == ',') { ++i; continue; }
      if (i < s.size() && s[i] == '}') { ++i; return true; }
      return false;
    }
  }
  if (c == '[') {
    ++i;
    skip_ws(s, i);
    if (i < s.size() && s[i] == ']') { ++i; return true; }
    while (true) {
      if (!skip_value(s, i)) return false;
      skip_ws(s, i);
      if (i < s.size() && s[i] == ',') { ++i; continue; }
      if (i < s.size() && s[i] == ']') { ++i; return true; }
      return false;
    }
  }
  if (s.compare(i, 4, "true") == 0) { i += 4; return true; }
  if (s.compare(i, 5, "false") == 0) { i += 5; return true; }
  if (s.compare(i, 4, "null") == 0) { i += 4; return true; }
  return skip_number(s, i);
}

bool is_valid_json(const std::string& s) {
  std::size_t i = 0;
  if (!skip_value(s, i)) return false;
  skip_ws(s, i);
  return i == s.size();
}

TEST(JsonValidator, SelfCheck) {
  EXPECT_TRUE(is_valid_json(R"({"a":[1,2.5,-3e4],"b":"x\n","c":null})"));
  EXPECT_FALSE(is_valid_json(R"({"a":1,})"));
  EXPECT_FALSE(is_valid_json(R"([1,2)"));
  EXPECT_FALSE(is_valid_json("{\"a\":\"\x01\"}"));
}

// --------------------------------------------------------------- metrics

TEST_F(ObsTest, ConcurrentCounterIncrementsSumExactly) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  Counter& c = Registry::global().counter("test.concurrent");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        DARL_COUNTER_ADD("test.concurrent", 1);
      (void)c;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, CounterMacroRespectsDisable) {
  set_metrics_enabled(false);
  DARL_COUNTER_ADD("test.gated", 5);
  set_metrics_enabled(true);
  DARL_COUNTER_ADD("test.gated", 2);
  EXPECT_EQ(Registry::global().counter("test.gated").value(), 2u);
}

TEST_F(ObsTest, GaugeSetAddAndConcurrentAdd) {
  Gauge& g = Registry::global().gauge("test.gauge");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 1.75);

  g.reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 10000; ++i) g.add(0.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 4 * 10000 * 0.5);  // halves sum exactly
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  Histogram& h = Registry::global().histogram("test.hist", {1.0, 2.0, 4.0});
  // le-semantics: bucket i counts bounds[i-1] < v <= bounds[i].
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (boundary is inclusive)
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(3.0);   // bucket 2
  h.observe(4.0);   // bucket 2
  h.observe(4.001); // overflow
  h.observe(100.0); // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 3.0 + 4.0 + 4.001 + 100.0, 1e-9);
}

TEST_F(ObsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
  // Re-registration with different bounds is a programming error.
  Registry::global().histogram("test.hist_fixed", {1.0, 2.0});
  EXPECT_NO_THROW(Registry::global().histogram("test.hist_fixed", {1.0, 2.0}));
  EXPECT_THROW(Registry::global().histogram("test.hist_fixed", {3.0}), Error);
}

TEST_F(ObsTest, SnapshotAndResetKeepReferencesValid) {
  Counter& c = Registry::global().counter("test.snap_ctr");
  c.add(3);
  Registry::global().gauge("test.snap_gauge").set(2.5);
  Registry::global().histogram("test.snap_hist", {1.0}).observe(0.5);

  RegistrySnapshot snap = Registry::global().snapshot();
  EXPECT_EQ(snap.counters.at("test.snap_ctr"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.snap_gauge"), 2.5);
  EXPECT_EQ(snap.histograms.at("test.snap_hist").count, 1u);

  Registry::global().reset();
  c.add(1);  // the pre-reset reference still points at the live instrument
  EXPECT_EQ(Registry::global().snapshot().counters.at("test.snap_ctr"), 1u);

  const std::string json = snap.to_json().dump();
  EXPECT_TRUE(is_valid_json(json)) << json;
  std::ostringstream os;
  JsonlWriter writer(os);
  snap.write_jsonl(writer);
  EXPECT_GE(writer.records(), 3u);
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) EXPECT_TRUE(is_valid_json(line)) << line;
}

// ----------------------------------------------------------------- spans

TEST_F(ObsTest, SpansNestAndCarryTrialTags) {
  {
    TrialScope trial(42);
    DARL_SPAN("outer");
    {
      DARL_SPAN_V("inner", "worker", 7);
    }
  }
  const auto spans = collect_spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first, so it flushes first.
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.trial, 42);
  EXPECT_EQ(outer.trial, 42);
  EXPECT_STREQ(inner.k1, "worker");
  EXPECT_EQ(inner.v1, 7);
  // Correct nesting: inner lies within outer on the same thread.
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
}

TEST_F(ObsTest, MultiThreadSpansKeepPerThreadOrdering) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        DARL_SPAN("unit");
      }
    });
  }
  for (auto& t : threads) t.join();

  auto spans = collect_spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kSpansPerThread));

  std::map<int, std::vector<SpanRecord>> by_tid;
  for (const auto& s : spans) {
    EXPECT_LE(s.start_ns, s.end_ns);
    by_tid[s.tid].push_back(s);
  }
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (auto& [tid, list] : by_tid) {
    EXPECT_EQ(list.size(), static_cast<std::size_t>(kSpansPerThread));
    // Sequential scopes on one thread never overlap.
    std::sort(list.begin(), list.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.start_ns < b.start_ns;
              });
    for (std::size_t i = 1; i < list.size(); ++i)
      EXPECT_GE(list[i].start_ns, list[i - 1].end_ns);
  }
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  set_tracing_enabled(false);
  {
    DARL_SPAN("ghost");
  }
  EXPECT_TRUE(collect_spans().empty());
}

TEST_F(ObsTest, ChromeTraceExportIsValidJson) {
  {
    TrialScope trial(3);
    DARL_SPAN_V("backend.collect", "worker", 1);
  }
  {
    DARL_SPAN("study.run");
  }
  const auto spans = collect_spans();
  const Json doc = chrome_trace_json(spans);
  const std::string text = doc.dump();
  EXPECT_TRUE(is_valid_json(text)) << text;

  const auto& events = doc.as_object().at("traceEvents").as_array();
  ASSERT_EQ(events.size(), spans.size());
  bool saw_collect = false;
  for (const auto& ev : events) {
    const auto& obj = ev.as_object();
    EXPECT_EQ(obj.at("ph").as_string(), "X");
    EXPECT_GE(obj.at("dur").as_number(), 0.0);
    if (obj.at("name").as_string() == "backend.collect") {
      saw_collect = true;
      const auto& args = obj.at("args").as_object();
      EXPECT_DOUBLE_EQ(args.at("trial").as_number(), 3.0);
      EXPECT_DOUBLE_EQ(args.at("worker").as_number(), 1.0);
    }
  }
  EXPECT_TRUE(saw_collect);
}

TEST_F(ObsTest, CollectIsSafeWhileThreadsEmit) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 4; ++t) {
    emitters.emplace_back([&stop] {
      // Emit a minimum batch even if the collector finishes first.
      for (int i = 0; i < 100 || !stop.load(std::memory_order_relaxed); ++i) {
        DARL_SPAN("churn");
        DARL_COUNTER_ADD("test.churn", 1);
      }
    });
  }
  std::size_t last = 0;
  for (int i = 0; i < 10; ++i) {
    const auto spans = collect_spans();
    EXPECT_GE(spans.size(), last);
    last = spans.size();
    (void)Registry::global().snapshot();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : emitters) t.join();
  EXPECT_GT(collect_spans().size(), 0u);
}

}  // namespace
}  // namespace darl::obs
