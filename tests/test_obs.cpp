// Unit tests for darl/obs: metrics registry (counters, gauges, histograms,
// labels), span tracer, Chrome trace export, the enabled/disabled gates,
// the shared percentile helpers, the time-series sampler, the Prometheus
// text renderer, and the flight recorder.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "darl/common/error.hpp"
#include "darl/common/jsonl.hpp"
#include "darl/obs/export.hpp"
#include "darl/obs/flight.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/percentile.hpp"
#include "darl/obs/timeseries.hpp"
#include "darl/obs/trace.hpp"

namespace darl::obs {
namespace {

// Each test owns the process-wide state: reset instruments and spans, turn
// the layer on, and turn it back off on exit so other suites (which expect
// the default-off gates) are unaffected.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    clear_spans();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    Registry::global().reset();
    clear_spans();
  }
};

// ------------------------------------------------------------- validator
//
// Minimal JSON syntax checker (the repo has a writer but no parser): accepts
// a position, consumes one value, reports success. Enough to assert the
// exporter emits structurally valid JSON.

bool skip_value(const std::string& s, std::size_t& i);

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
    ++i;
}

bool skip_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) return false;
      const char c = s[i];
      if (c == 'u') {
        for (int k = 0; k < 4; ++k) {
          ++i;
          if (i >= s.size() || !std::isxdigit(static_cast<unsigned char>(s[i])))
            return false;
        }
      } else if (c != '"' && c != '\\' && c != '/' && c != 'b' && c != 'f' &&
                 c != 'n' && c != 'r' && c != 't') {
        return false;
      }
    } else if (static_cast<unsigned char>(s[i]) < 0x20) {
      return false;  // raw control character inside a string
    }
    ++i;
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

bool skip_number(const std::string& s, std::size_t& i) {
  const std::size_t start = i;
  if (i < s.size() && s[i] == '-') ++i;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  return i > start && s[start] != '.' &&
         std::isdigit(static_cast<unsigned char>(s[i - 1]));
}

bool skip_value(const std::string& s, std::size_t& i) {
  skip_ws(s, i);
  if (i >= s.size()) return false;
  const char c = s[i];
  if (c == '"') return skip_string(s, i);
  if (c == '{') {
    ++i;
    skip_ws(s, i);
    if (i < s.size() && s[i] == '}') { ++i; return true; }
    while (true) {
      skip_ws(s, i);
      if (!skip_string(s, i)) return false;
      skip_ws(s, i);
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      if (!skip_value(s, i)) return false;
      skip_ws(s, i);
      if (i < s.size() && s[i] == ',') { ++i; continue; }
      if (i < s.size() && s[i] == '}') { ++i; return true; }
      return false;
    }
  }
  if (c == '[') {
    ++i;
    skip_ws(s, i);
    if (i < s.size() && s[i] == ']') { ++i; return true; }
    while (true) {
      if (!skip_value(s, i)) return false;
      skip_ws(s, i);
      if (i < s.size() && s[i] == ',') { ++i; continue; }
      if (i < s.size() && s[i] == ']') { ++i; return true; }
      return false;
    }
  }
  if (s.compare(i, 4, "true") == 0) { i += 4; return true; }
  if (s.compare(i, 5, "false") == 0) { i += 5; return true; }
  if (s.compare(i, 4, "null") == 0) { i += 4; return true; }
  return skip_number(s, i);
}

bool is_valid_json(const std::string& s) {
  std::size_t i = 0;
  if (!skip_value(s, i)) return false;
  skip_ws(s, i);
  return i == s.size();
}

TEST(JsonValidator, SelfCheck) {
  EXPECT_TRUE(is_valid_json(R"({"a":[1,2.5,-3e4],"b":"x\n","c":null})"));
  EXPECT_FALSE(is_valid_json(R"({"a":1,})"));
  EXPECT_FALSE(is_valid_json(R"([1,2)"));
  EXPECT_FALSE(is_valid_json("{\"a\":\"\x01\"}"));
}

// --------------------------------------------------------------- metrics

TEST_F(ObsTest, ConcurrentCounterIncrementsSumExactly) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  Counter& c = Registry::global().counter("test.concurrent");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        DARL_COUNTER_ADD("test.concurrent", 1);
      (void)c;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, CounterMacroRespectsDisable) {
  set_metrics_enabled(false);
  DARL_COUNTER_ADD("test.gated", 5);
  set_metrics_enabled(true);
  DARL_COUNTER_ADD("test.gated", 2);
  EXPECT_EQ(Registry::global().counter("test.gated").value(), 2u);
}

TEST_F(ObsTest, GaugeSetAddAndConcurrentAdd) {
  Gauge& g = Registry::global().gauge("test.gauge");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 1.75);

  g.reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 10000; ++i) g.add(0.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 4 * 10000 * 0.5);  // halves sum exactly
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  Histogram& h = Registry::global().histogram("test.hist", {1.0, 2.0, 4.0});
  // le-semantics: bucket i counts bounds[i-1] < v <= bounds[i].
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (boundary is inclusive)
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(3.0);   // bucket 2
  h.observe(4.0);   // bucket 2
  h.observe(4.001); // overflow
  h.observe(100.0); // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 3.0 + 4.0 + 4.001 + 100.0, 1e-9);
}

TEST_F(ObsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
  // Re-registration with different bounds is a programming error.
  Registry::global().histogram("test.hist_fixed", {1.0, 2.0});
  EXPECT_NO_THROW(Registry::global().histogram("test.hist_fixed", {1.0, 2.0}));
  EXPECT_THROW(Registry::global().histogram("test.hist_fixed", {3.0}), Error);
}

TEST_F(ObsTest, SnapshotAndResetKeepReferencesValid) {
  Counter& c = Registry::global().counter("test.snap_ctr");
  c.add(3);
  Registry::global().gauge("test.snap_gauge").set(2.5);
  Registry::global().histogram("test.snap_hist", {1.0}).observe(0.5);

  RegistrySnapshot snap = Registry::global().snapshot();
  EXPECT_EQ(snap.counters.at("test.snap_ctr"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.snap_gauge"), 2.5);
  EXPECT_EQ(snap.histograms.at("test.snap_hist").count, 1u);

  Registry::global().reset();
  c.add(1);  // the pre-reset reference still points at the live instrument
  EXPECT_EQ(Registry::global().snapshot().counters.at("test.snap_ctr"), 1u);

  const std::string json = snap.to_json().dump();
  EXPECT_TRUE(is_valid_json(json)) << json;
  std::ostringstream os;
  JsonlWriter writer(os);
  snap.write_jsonl(writer);
  EXPECT_GE(writer.records(), 3u);
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) EXPECT_TRUE(is_valid_json(line)) << line;
}

// ----------------------------------------------------------------- spans

TEST_F(ObsTest, SpansNestAndCarryTrialTags) {
  {
    TrialScope trial(42);
    DARL_SPAN("outer");
    {
      DARL_SPAN_V("inner", "worker", 7);
    }
  }
  const auto spans = collect_spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first, so it flushes first.
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.trial, 42);
  EXPECT_EQ(outer.trial, 42);
  EXPECT_STREQ(inner.k1, "worker");
  EXPECT_EQ(inner.v1, 7);
  // Correct nesting: inner lies within outer on the same thread.
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
}

TEST_F(ObsTest, MultiThreadSpansKeepPerThreadOrdering) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        DARL_SPAN("unit");
      }
    });
  }
  for (auto& t : threads) t.join();

  auto spans = collect_spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kSpansPerThread));

  std::map<int, std::vector<SpanRecord>> by_tid;
  for (const auto& s : spans) {
    EXPECT_LE(s.start_ns, s.end_ns);
    by_tid[s.tid].push_back(s);
  }
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (auto& [tid, list] : by_tid) {
    EXPECT_EQ(list.size(), static_cast<std::size_t>(kSpansPerThread));
    // Sequential scopes on one thread never overlap.
    std::sort(list.begin(), list.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.start_ns < b.start_ns;
              });
    for (std::size_t i = 1; i < list.size(); ++i)
      EXPECT_GE(list[i].start_ns, list[i - 1].end_ns);
  }
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  set_tracing_enabled(false);
  {
    DARL_SPAN("ghost");
  }
  EXPECT_TRUE(collect_spans().empty());
}

TEST_F(ObsTest, ChromeTraceExportIsValidJson) {
  {
    TrialScope trial(3);
    DARL_SPAN_V("backend.collect", "worker", 1);
  }
  {
    DARL_SPAN("study.run");
  }
  const auto spans = collect_spans();
  const Json doc = chrome_trace_json(spans);
  const std::string text = doc.dump();
  EXPECT_TRUE(is_valid_json(text)) << text;

  const auto& events = doc.as_object().at("traceEvents").as_array();
  ASSERT_EQ(events.size(), spans.size());
  bool saw_collect = false;
  for (const auto& ev : events) {
    const auto& obj = ev.as_object();
    EXPECT_EQ(obj.at("ph").as_string(), "X");
    EXPECT_GE(obj.at("dur").as_number(), 0.0);
    if (obj.at("name").as_string() == "backend.collect") {
      saw_collect = true;
      const auto& args = obj.at("args").as_object();
      EXPECT_DOUBLE_EQ(args.at("trial").as_number(), 3.0);
      EXPECT_DOUBLE_EQ(args.at("worker").as_number(), 1.0);
    }
  }
  EXPECT_TRUE(saw_collect);
}

TEST_F(ObsTest, CollectIsSafeWhileThreadsEmit) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 4; ++t) {
    emitters.emplace_back([&stop] {
      // Emit a minimum batch even if the collector finishes first.
      for (int i = 0; i < 100 || !stop.load(std::memory_order_relaxed); ++i) {
        DARL_SPAN("churn");
        DARL_COUNTER_ADD("test.churn", 1);
      }
    });
  }
  std::size_t last = 0;
  for (int i = 0; i < 10; ++i) {
    const auto spans = collect_spans();
    EXPECT_GE(spans.size(), last);
    last = spans.size();
    (void)Registry::global().snapshot();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : emitters) t.join();
  EXPECT_GT(collect_spans().size(), 0u);
}

// ------------------------------------------------------------ percentile

TEST(Percentile, InterpolatesLinearlyOverSortedSamples) {
  // These assertions moved here from the old darl/common/stats helper.
  const std::vector<double> xs{0.0, 10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 5.0);
}

TEST(Percentile, SortsItsInputAndHandlesSingletons) {
  EXPECT_DOUBLE_EQ(percentile({40.0, 0.0, 30.0, 10.0, 20.0}, 50.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 99.0), 7.5);
}

TEST(Percentile, RejectsEmptyInputAndOutOfRangeP) {
  EXPECT_THROW(percentile({}, 50.0), Error);
  EXPECT_THROW(percentile({1.0}, -0.5), Error);
  EXPECT_THROW(percentile({1.0}, 100.5), Error);
}

TEST(Percentile, HistogramEstimateInterpolatesWithinTheTargetBucket) {
  const std::vector<double> bounds{10.0, 20.0};
  const std::vector<std::uint64_t> counts{5, 5, 0};
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, counts, 25.0), 5.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, counts, 50.0), 10.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, counts, 90.0), 18.0);
}

TEST(Percentile, HistogramOverflowClampsAndEmptyReturnsZero) {
  const std::vector<double> bounds{10.0, 20.0};
  // All mass in the overflow bucket: the estimate clamps to the largest
  // finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, {0, 0, 4}, 50.0), 20.0);
  EXPECT_DOUBLE_EQ(histogram_percentile(bounds, {0, 0, 0}, 50.0), 0.0);
  EXPECT_THROW(histogram_percentile(bounds, {1, 2}, 50.0), Error);
  EXPECT_THROW(histogram_percentile({}, {1}, 50.0), Error);
}

// ----------------------------------------------------- labeled instruments

TEST_F(ObsTest, LabeledInstrumentsAreDistinctAndKeyedCanonically) {
  Registry reg;
  Counter& a = reg.counter("serve.client_requests", {{"tenant", "a"}});
  Counter& b = reg.counter("serve.client_requests", {{"tenant", "b"}});
  Counter& plain = reg.counter("serve.client_requests");
  a.add(1);
  b.add(2);
  plain.add(4);

  const RegistrySnapshot snap = reg.snapshot();
  // The unlabeled instrument keeps the bare name as its key (back-compat
  // with every pre-labels consumer).
  EXPECT_EQ(snap.counters.at("serve.client_requests"), 4u);
  EXPECT_EQ(snap.counters.at("serve.client_requests{tenant=\"a\"}"), 1u);
  EXPECT_EQ(snap.counters.at("serve.client_requests{tenant=\"b\"}"), 2u);

  const InstrumentId& id = snap.ids.at("serve.client_requests{tenant=\"a\"}");
  EXPECT_EQ(id.name, "serve.client_requests");
  ASSERT_EQ(id.labels.size(), 1u);
  EXPECT_EQ(id.labels[0].first, "tenant");
  EXPECT_EQ(id.labels[0].second, "a");

  // Same name + same labels resolves to the same instrument.
  EXPECT_EQ(&a, &reg.counter("serve.client_requests", {{"tenant", "a"}}));
}

TEST_F(ObsTest, LabelsAreSortedByKeyAtRegistration) {
  Registry reg;
  reg.gauge("test.labeled", {{"zone", "1"}, {"algo", "ppo"}}).set(3.0);
  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.labeled{algo=\"ppo\",zone=\"1\"}"),
                   3.0);
  // The two spellings are the same instrument.
  EXPECT_EQ(&reg.gauge("test.labeled", {{"zone", "1"}, {"algo", "ppo"}}),
            &reg.gauge("test.labeled", {{"algo", "ppo"}, {"zone", "1"}}));
}

TEST_F(ObsTest, RegistryRejectsBadNamesKeysAndDuplicates) {
  Registry reg;
  // Built from variables so darl_lint's raw-content metric-name rule does
  // not flag the linter-visible literals in this file.
  const std::string bad_name = "Serve.Requests";
  EXPECT_THROW(reg.counter(bad_name), Error);
  const std::string spaced = "serve bad";
  EXPECT_THROW(reg.gauge(spaced), Error);

  const Labels bad_key{{std::string("Bad-Key"), std::string("v")}};
  EXPECT_THROW(reg.counter("test.ok", bad_key), Error);
  const Labels duplicate{{std::string("k"), std::string("1")},
                         {std::string("k"), std::string("2")}};
  EXPECT_THROW(reg.counter("test.ok", duplicate), Error);

  EXPECT_TRUE(valid_metric_name("serve.client_requests"));
  EXPECT_FALSE(valid_metric_name(bad_name));
  EXPECT_FALSE(valid_metric_name(std::string()));
}

TEST_F(ObsTest, InstrumentKeyEscapesLabelValues) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(instrument_key("m.x", {}), "m.x");
  EXPECT_EQ(instrument_key("m.x", {{"k", "v\"w"}}), "m.x{k=\"v\\\"w\"}");
}

// ---------------------------------------------------------- prometheus text

TEST_F(ObsTest, PrometheusTextGoldenRender) {
  Registry reg;
  reg.counter("serve.client_requests", {{"tenant", "a\"b\\c\nd"}}).add(2);
  reg.counter("serve.requests").add(3);
  reg.gauge("serve.queue_depth").set(1.5);
  Histogram& h = reg.histogram("serve.latency_us", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(5.0);

  const std::string expected =
      "# TYPE serve_client_requests counter\n"
      "serve_client_requests{tenant=\"a\\\"b\\\\c\\nd\"} 2\n"
      "# TYPE serve_requests counter\n"
      "serve_requests 3\n"
      "# TYPE serve_queue_depth gauge\n"
      "serve_queue_depth 1.5\n"
      "# TYPE serve_latency_us histogram\n"
      "serve_latency_us_bucket{le=\"1\"} 1\n"
      "serve_latency_us_bucket{le=\"2\"} 2\n"
      "serve_latency_us_bucket{le=\"+Inf\"} 3\n"
      "serve_latency_us_sum 7\n"
      "serve_latency_us_count 3\n";
  EXPECT_EQ(prometheus_text(reg.snapshot()), expected);
}

TEST_F(ObsTest, PrometheusHistogramBucketsAreCumulativePerSeries) {
  Registry reg;
  Histogram& fast = reg.histogram("rpc.ms", {1.0}, {{"tier", "fast"}});
  Histogram& slow = reg.histogram("rpc.ms", {1.0}, {{"tier", "slow"}});
  fast.observe(0.5);
  slow.observe(9.0);
  const std::string text = prometheus_text(reg.snapshot());
  // One # TYPE header for the family, two labeled series under it.
  EXPECT_EQ(text.find("# TYPE rpc_ms histogram"),
            text.rfind("# TYPE rpc_ms histogram"));
  EXPECT_NE(text.find("rpc_ms_bucket{tier=\"fast\",le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rpc_ms_bucket{tier=\"slow\",le=\"1\"} 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rpc_ms_bucket{tier=\"slow\",le=\"+Inf\"} 1"),
            std::string::npos)
      << text;
}

// ------------------------------------------------------------- time series

TEST_F(ObsTest, TimeSeriesSamplesRatesAndWindowPercentiles) {
  Registry reg;
  Counter& c = reg.counter("ts.events");
  Histogram& h = reg.histogram("ts.latency", {10.0, 20.0});
  TimeSeries ts({.capacity = 8, .period_ms = 1000, .registry = &reg});

  c.add(10);
  ts.sample_once();
  c.add(5);
  h.observe(5.0);
  h.observe(15.0);
  h.observe(15.0);
  h.observe(15.0);
  ts.sample_once();

  const auto points = ts.scalar_series("ts.events");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 10.0);
  EXPECT_DOUBLE_EQ(points[1].value, 15.0);
  EXPECT_LT(points[0].t_ns, points[1].t_ns);

  const auto rate = ts.rate_per_s("ts.events");
  ASSERT_TRUE(rate.has_value());
  EXPECT_GT(*rate, 0.0);

  // The window delta is {1, 3, 0}: p50 lands a third into (10, 20].
  const auto p50 = ts.window_percentile("ts.latency", 50.0);
  ASSERT_TRUE(p50.has_value());
  EXPECT_NEAR(*p50, 10.0 + 10.0 / 3.0, 1e-9);
  const auto p100 = ts.window_percentile("ts.latency", 100.0);
  ASSERT_TRUE(p100.has_value());
  EXPECT_DOUBLE_EQ(*p100, 20.0);

  EXPECT_FALSE(ts.rate_per_s("ts.unknown").has_value());
  EXPECT_FALSE(ts.window_percentile("ts.unknown", 50.0).has_value());
}

TEST_F(ObsTest, TimeSeriesRingRetainsTheNewestPoints) {
  Registry reg;
  Counter& c = reg.counter("ts.ring");
  TimeSeries ts({.capacity = 3, .period_ms = 1000, .registry = &reg});
  for (int i = 1; i <= 5; ++i) {
    c.add(1);
    ts.sample_once();
  }
  const auto points = ts.scalar_series("ts.ring");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].value, 3.0);
  EXPECT_DOUBLE_EQ(points[1].value, 4.0);
  EXPECT_DOUBLE_EQ(points[2].value, 5.0);
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end(),
                             [](const SeriesPoint& a, const SeriesPoint& b) {
                               return a.t_ns < b.t_ns;
                             }));
}

TEST_F(ObsTest, TimeSeriesToJsonShapes) {
  Registry reg;
  reg.counter("ts.json_ctr").add(2);
  reg.histogram("ts.json_hist", {1.0}).observe(0.5);
  TimeSeries ts({.capacity = 4, .period_ms = 1000, .registry = &reg});
  ts.sample_once();
  reg.counter("ts.json_ctr").add(2);
  ts.sample_once();

  const Json doc = ts.to_json(2);
  const std::string text = doc.dump();
  EXPECT_TRUE(is_valid_json(text)) << text;
  const auto& obj = doc.as_object();
  const auto& ctr = obj.at("ts.json_ctr").as_object();
  EXPECT_EQ(ctr.at("points").as_array().size(), 2u);
  EXPECT_TRUE(ctr.at("rate_per_s").is_number());
  const auto& hist = obj.at("ts.json_hist").as_object();
  EXPECT_DOUBLE_EQ(hist.at("window").as_object().at("count").as_number(),
                   0.0);  // no observation landed between the two samples
}

TEST_F(ObsTest, TimeSeriesBackgroundThreadSamplesAndStops) {
  Registry reg;
  reg.counter("ts.bg").add(1);
  TimeSeries ts({.capacity = 16, .period_ms = 2, .registry = &reg});
  ts.start();
  EXPECT_TRUE(ts.running());
  for (int i = 0; i < 2000 && ts.samples_taken() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(ts.samples_taken(), 3u);
  ts.stop();
  EXPECT_FALSE(ts.running());
  const std::uint64_t after_stop = ts.samples_taken();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ts.samples_taken(), after_stop);
}

// ---------------------------------------------------------- flight recorder

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flight_clear();
    set_flight_enabled(true);
  }
  void TearDown() override {
    set_flight_enabled(false);
    flight_clear();
    set_flight_dump_path(std::string());
  }
};

TEST_F(FlightTest, RecordsNotesSpansAndLogLines) {
  flight_note("unit", "hello flight");
  flight_record_span("flight.span", 100, 250);
  flight_record_log("warn", "low disk");

  const auto events = flight_collect();
  ASSERT_EQ(events.size(), 3u);
  // Globally ordered by timestamp; the span's stamp is its end time.
  const FlightEvent* note = nullptr;
  const FlightEvent* span = nullptr;
  const FlightEvent* log = nullptr;
  for (const auto& e : events) {
    if (e.kind == FlightEvent::Kind::Note) note = &e;
    if (e.kind == FlightEvent::Kind::Span) span = &e;
    if (e.kind == FlightEvent::Kind::Log) log = &e;
  }
  ASSERT_NE(note, nullptr);
  EXPECT_EQ(note->name, "unit");
  EXPECT_EQ(note->text, "hello flight");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->name, "flight.span");
  EXPECT_EQ(span->dur_ns, 150u);
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->name, "warn");
  EXPECT_EQ(log->text, "low disk");
}

TEST_F(FlightTest, DisabledRecorderKeepsNothing) {
  set_flight_enabled(false);
  flight_note("ghost", "nothing");
  EXPECT_TRUE(flight_collect().empty());
}

TEST_F(FlightTest, RingKeepsTheLastKEventsAndTruncatesText) {
  const std::string long_text(3 * kFlightMessageBytes, 'x');
  for (std::size_t i = 0; i < kFlightRingEvents + 50; ++i) {
    flight_note("wrap", i + 1 == kFlightRingEvents + 50 ? long_text
                                                        : std::to_string(i));
  }
  const auto events = flight_collect();
  ASSERT_EQ(events.size(), kFlightRingEvents);
  // Orders are the per-ring ticket: the retained window is the newest K.
  std::uint64_t max_order = 0;
  for (const auto& e : events) max_order = std::max(max_order, e.order);
  const auto& last = *std::find_if(
      events.begin(), events.end(),
      [&](const FlightEvent& e) { return e.order == max_order; });
  EXPECT_LE(last.text.size(), kFlightMessageBytes);
  EXPECT_EQ(last.text, long_text.substr(0, last.text.size()));
}

TEST_F(FlightTest, SpanScopesFeedTheFlightRingWithoutTracing) {
  set_tracing_enabled(false);
  {
    TrialScope trial(7);
    DARL_SPAN("flight.scoped");
  }
  const auto events = flight_collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FlightEvent::Kind::Span);
  EXPECT_EQ(events[0].name, "flight.scoped");
  EXPECT_EQ(events[0].trial, 7);
  EXPECT_TRUE(collect_spans().empty());  // tracing stayed off
}

TEST_F(FlightTest, DumpJsonlEmitsOneValidRecordPerEvent) {
  flight_note("dump", "first");
  flight_record_span("dump.span", 10, 30);
  std::ostringstream os;
  EXPECT_EQ(flight_dump_jsonl(os), 2u);
  std::istringstream lines(os.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(is_valid_json(line)) << line;
    const Json record = Json::parse(line);
    EXPECT_TRUE(record.as_object().count("kind"));
    EXPECT_TRUE(record.as_object().count("t_ns"));
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST_F(FlightTest, CollectIsCleanWhileAnotherThreadRecords) {
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      flight_note("churn", std::to_string(i++));
    }
  });
  for (int i = 0; i < 50; ++i) {
    for (const auto& e : flight_collect()) {
      // Torn slots are discarded, so every surfaced event is well-formed.
      EXPECT_EQ(e.kind, FlightEvent::Kind::Note);
      EXPECT_EQ(e.name, "churn");
      EXPECT_FALSE(e.text.empty());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace darl::obs
