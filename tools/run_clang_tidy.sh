#!/usr/bin/env bash
# tools/run_clang_tidy.sh — optional clang-tidy pass over src/ and tools/.
#
# Uses the compile database of an existing build tree (default: build/,
# configured with CMAKE_EXPORT_COMPILE_COMMANDS ON by the root
# CMakeLists). No-ops with exit 0 when clang-tidy is not installed, so
# check.sh can call it unconditionally.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found; skipping (not an error)"
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: $BUILD_DIR/compile_commands.json missing;" \
       "configure the tree first (cmake -B $BUILD_DIR -S .)"
  exit 2
fi

mapfile -t files < <(find src tools -name '*.cpp' | sort)
echo "run_clang_tidy.sh: ${#files[@]} file(s), database $BUILD_DIR"
# Concurrency checks and Clang's -Wthread-safety diagnostics (driven by
# the DARL_* annotations in src/darl/common/thread_safety.hpp) are
# errors: they duplicate invariants darl_verify enforces, so a finding
# is a discipline break, not advice.
clang-tidy -p "$BUILD_DIR" --quiet \
    --warnings-as-errors='clang-diagnostic-thread-safety*,concurrency-*' \
    "${files[@]}"
