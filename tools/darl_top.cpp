// darl_top — terminal dashboard for a live darl process.
//
//   darl_top --port P [options]
//
//   --port P          obs exporter port (the one darl_serve/darl_study
//                     printed after --obs-port)
//   --interval-ms N   refresh cadence (default 500)
//   --iterations N    stop after N refreshes (default 0 = until the
//                     process goes away)
//   --once            single snapshot, no screen clearing (scriptable)
//   --help
//
// Polls /snapshot.json and renders counters (with windowed rates from the
// sampler rings), gauges, and histogram latency percentiles. Exits 0 when
// the target stops answering after at least one successful poll (the
// normal "watched process finished" case), 1 when it never answered.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "darl/common/jsonl.hpp"
#include "darl/common/table.hpp"
#include "darl/obs/export.hpp"
#include "darl/obs/percentile.hpp"

namespace {

using namespace darl;

struct CliOptions {
  int port = -1;
  int interval_ms = 500;
  std::size_t iterations = 0;
  bool once = false;
};

[[noreturn]] void usage(int code) {
  std::printf(
      "darl_top — live dashboard for a darl obs exporter\n"
      "\n"
      "  --port P          exporter port (required)\n"
      "  --interval-ms N   refresh cadence           (default 500)\n"
      "  --iterations N    stop after N refreshes    (default 0 = follow)\n"
      "  --once            print one snapshot and exit\n"
      "  --help\n");
  std::exit(code);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--port"))
      opt.port = static_cast<int>(std::strtol(need_value(i), nullptr, 10));
    else if (!std::strcmp(a, "--interval-ms"))
      opt.interval_ms =
          static_cast<int>(std::strtol(need_value(i), nullptr, 10));
    else if (!std::strcmp(a, "--iterations"))
      opt.iterations = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--once")) opt.once = true;
    else if (!std::strcmp(a, "--help")) usage(0);
    else {
      std::fprintf(stderr, "unknown option '%s'\n", a);
      usage(2);
    }
  }
  if (opt.port <= 0 || opt.port > 65535) {
    std::fprintf(stderr, "--port is required (1..65535)\n");
    usage(2);
  }
  if (opt.interval_ms <= 0) opt.interval_ms = 500;
  return opt;
}

/// "name{k=\"v\",...}" -> "name": labeled instruments aggregate by base
/// name so a sharded fleet's per-shard counters roll up into one row.
std::string base_name(const std::string& key) {
  const auto brace = key.find('{');
  return brace == std::string::npos ? key : key.substr(0, brace);
}

/// series[key].rate_per_s when the sampler ring has one, else nan.
double series_rate(const Json& root, const std::string& key) {
  if (!root.is_object()) return std::nan("");
  const auto& obj = root.as_object();
  const auto series = obj.find("series");
  if (series == obj.end() || !series->second.is_object()) return std::nan("");
  const auto& series_obj = series->second.as_object();
  const auto node = series_obj.find(key);
  if (node == series_obj.end() || !node->second.is_object()) {
    return std::nan("");
  }
  const auto& node_obj = node->second.as_object();
  const auto rate = node_obj.find("rate_per_s");
  if (rate == node_obj.end() || !rate->second.is_number()) return std::nan("");
  return rate->second.as_number();
}

std::string render_dashboard(const Json& root) {
  const auto& top = root.as_object();
  std::string out;

  const auto uptime = top.find("uptime_s");
  if (uptime != top.end() && uptime->second.is_number()) {
    out += "uptime " + fixed(uptime->second.as_number(), 1) + "s\n\n";
  }

  const auto metrics = top.find("metrics");
  if (metrics == top.end() || !metrics->second.is_object()) {
    return out + "(no metrics in snapshot)\n";
  }
  const auto& m = metrics->second.as_object();

  TextTable table;
  table.set_columns({"instrument", "value", "rate/s"},
                    {Align::Left, Align::Right, Align::Right});
  auto rate_cell = [&](const std::string& key) {
    const double r = series_rate(root, key);
    return std::isnan(r) ? std::string("-") : fixed(r, 1);
  };
  if (const auto counters = m.find("counters");
      counters != m.end() && counters->second.is_object()) {
    for (const auto& [key, v] : counters->second.as_object()) {
      table.add_row({key, fixed(v.as_number(), 0), rate_cell(key)});
    }
  }
  if (const auto gauges = m.find("gauges");
      gauges != m.end() && gauges->second.is_object()) {
    if (table.row_count() > 0) table.add_rule();
    for (const auto& [key, v] : gauges->second.as_object()) {
      table.add_row({key, fixed(v.as_number(), 2), "-"});
    }
  }

  // Serve health: outcome counters rolled up across tenant/shard/priority
  // labels, so rejected and timed-out traffic is visible at a glance even
  // when the fleet splits it over many labeled instruments.
  struct OutcomeAgg {
    double count = 0.0;
    double rate = 0.0;
    bool present = false;
    bool has_rate = false;
  };
  const std::vector<std::pair<std::string, std::string>> kServeOutcomes = {
      {"serve.router_requests", "admitted (router)"},
      {"serve.requests", "admitted (shard)"},
      {"serve.served", "ok"},
      {"serve.rejected_full", "rejected-full"},
      {"serve.rejected_quota", "rejected-quota"},
      {"serve.rejected_shutdown", "rejected-shutdown"},
      {"serve.timed_out", "timed-out"},
      {"serve.shed", "shed"},
  };
  std::vector<OutcomeAgg> agg(kServeOutcomes.size());
  if (const auto counters = m.find("counters");
      counters != m.end() && counters->second.is_object()) {
    for (const auto& [key, v] : counters->second.as_object()) {
      const std::string base = base_name(key);
      for (std::size_t i = 0; i < kServeOutcomes.size(); ++i) {
        if (base != kServeOutcomes[i].first) continue;
        agg[i].present = true;
        agg[i].count += v.as_number();
        const double r = series_rate(root, key);
        if (!std::isnan(r)) {
          agg[i].rate += r;
          agg[i].has_rate = true;
        }
        break;
      }
    }
  }
  TextTable serve_table;
  serve_table.set_columns({"serve outcome", "count", "rate/s", "share"},
                          {Align::Left, Align::Right, Align::Right,
                           Align::Right});
  bool any_serve = false;
  for (const auto& a : agg) any_serve = any_serve || a.present;
  if (any_serve) {
    // Share denominator: router admissions when the fleet path is live,
    // else the schedulers' own admission counter.
    double admitted = agg[0].present && agg[0].count > 0 ? agg[0].count
                                                         : agg[1].count;
    for (std::size_t i = 0; i < kServeOutcomes.size(); ++i) {
      if (!agg[i].present) continue;
      std::string share = "-";
      if (i >= 2 && admitted > 0) {
        share = fixed(100.0 * agg[i].count / admitted, 1) + "%";
      }
      serve_table.add_row(
          {kServeOutcomes[i].second, fixed(agg[i].count, 0),
           agg[i].has_rate ? fixed(agg[i].rate, 1) : std::string("-"),
           share});
    }
  }

  TextTable hist_table;
  hist_table.set_columns({"histogram", "count", "p50", "p99", "rate/s"},
                         {Align::Left, Align::Right, Align::Right,
                          Align::Right, Align::Right});
  if (const auto hists = m.find("histograms");
      hists != m.end() && hists->second.is_object()) {
    for (const auto& [key, node] : hists->second.as_object()) {
      const auto& h = node.as_object();
      std::vector<double> bounds;
      std::vector<std::uint64_t> counts;
      for (const Json& b : h.at("bounds").as_array()) {
        bounds.push_back(b.as_number());
      }
      for (const Json& c : h.at("counts").as_array()) {
        counts.push_back(static_cast<std::uint64_t>(c.as_number()));
      }
      const double count = h.at("count").as_number();
      std::string p50 = "-", p99 = "-";
      if (count > 0 && counts.size() == bounds.size() + 1) {
        p50 = fixed(obs::histogram_percentile(bounds, counts, 50.0), 1);
        p99 = fixed(obs::histogram_percentile(bounds, counts, 99.0), 1);
      }
      hist_table.add_row(
          {key, fixed(count, 0), p50, p99, rate_cell(key)});
    }
  }

  if (table.row_count() > 0) {
    out += table.render(2);
    out += '\n';
  }
  if (serve_table.row_count() > 0) {
    out += '\n';
    out += serve_table.render(2);
    out += '\n';
  }
  if (hist_table.row_count() > 0) {
    out += '\n';
    out += hist_table.render(2);
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse_cli(argc, argv);
  std::size_t refreshes = 0;
  bool ever_connected = false;
  for (;;) {
    std::string body;
    try {
      const obs::HttpResponse response =
          obs::http_get(opt.port, "/snapshot.json");
      if (response.status != 200) {
        std::fprintf(stderr, "darl_top: /snapshot.json returned %d\n",
                     response.status);
        return 1;
      }
      body = response.body;
    } catch (const std::exception& e) {
      if (ever_connected) {
        std::printf("darl_top: target on port %d went away; exiting\n",
                    opt.port);
        return 0;
      }
      std::fprintf(stderr, "darl_top: %s\n", e.what());
      return 1;
    }
    ever_connected = true;

    std::string dashboard;
    try {
      dashboard = render_dashboard(Json::parse(body));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "darl_top: bad snapshot: %s\n", e.what());
      return 1;
    }

    if (!opt.once) {
      std::fputs("\x1b[2J\x1b[H", stdout);  // clear + home
      std::printf("darl_top — 127.0.0.1:%d (refresh %dms)\n\n", opt.port,
                  opt.interval_ms);
    }
    std::fputs(dashboard.c_str(), stdout);
    std::fflush(stdout);

    ++refreshes;
    if (opt.once || (opt.iterations > 0 && refreshes >= opt.iterations)) {
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
  }
}
