// darl_study — command-line front end for the methodology applied to the
// airdrop case study.
//
//   darl_study [options]
//
//   --explorer {table1|random|grid|tpe|halving}   exploration stage (default table1)
//   --trials N            trial budget for random/tpe (default 12)
//   --timesteps N         training timesteps per trial (default 16384)
//   --seeds N             training seeds averaged per trial (default 2)
//   --seed N              study seed (default 42)
//   --parallel N          evaluate up to N trials concurrently (default 1)
//   --trial-retries N     re-evaluate a failed trial up to N times (default 0)
//   --trial-timeout SEC   per-attempt wall-clock timeout (default 0 = none)
//   --on-trial-failure {abort|skip}  what to do when retries run out
//   --cache PATH          campaign CSV cache ("" disables; table1 only)
//   --figure X,Y          extra Pareto plot over a metric pair (repeatable)
//   --csv PATH            write the trial table as CSV
//   --trace-out PATH      write a Chrome trace-event JSON of the run
//   --obs-out PATH        write the metrics-registry snapshot as JSONL
//   --obs-port P          live /metrics + /snapshot.json + /healthz on
//                         127.0.0.1:P while the campaign runs (0 = ephemeral)
//   --flight-out PATH     flight-recorder JSONL (dumped on trial faults,
//                         fatal signals, and at exit)
//   --distributed         run RLlib multi-node trials through real actor
//                         processes over darl/net sockets (DESIGN.md §17)
//   --worker-bin PATH     actor binary for --distributed (default:
//                         darl_worker next to this executable)
//   --verbose             log trial progress
//   --help
//
// Examples:
//   darl_study                         # the paper's Table-I campaign
//   darl_study --explorer random --trials 10
//   darl_study --explorer tpe --trials 20 --timesteps 8192

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "darl/common/jsonl.hpp"
#include "darl/common/log.hpp"
#include "darl/linalg/matrix.hpp"
#include "darl/common/rng.hpp"
#include "darl/obs/export.hpp"
#include "darl/obs/flight.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/timeseries.hpp"
#include "darl/obs/trace.hpp"
#include "darl/core/airdrop_study.hpp"
#include "darl/core/ranking.hpp"
#include "darl/core/stability.hpp"
#include "darl/core/tpe.hpp"

namespace {

using namespace darl;
using namespace darl::core;

struct CliOptions {
  std::string explorer = "table1";
  std::size_t trials = 12;
  std::size_t timesteps = 16384;
  std::size_t seeds_per_trial = 2;
  std::uint64_t seed = 42;
  std::size_t parallel_trials = 1;
  std::size_t trial_retries = 0;
  double trial_timeout = 0.0;
  core::FailurePolicy on_trial_failure = core::FailurePolicy::Abort;
  std::string cache = "darl_table1_cache.csv";
  std::vector<std::pair<std::string, std::string>> figures;
  std::string csv_out;
  std::string report_out;
  std::string trace_out;
  std::string obs_out;
  int obs_port = -1;  ///< -1 = no exporter; 0 = ephemeral port
  std::string flight_out;
  bool distributed = false;
  std::string worker_bin;
  bool verbose = false;
  bool stability = false;
};

[[noreturn]] void usage(int code) {
  std::printf(
      "darl_study — decision-analysis campaigns on the airdrop case study\n"
      "\n"
      "  --explorer {table1|random|grid|tpe|halving}  (default table1)\n"
      "  --trials N        trial budget for random/tpe       (default 12)\n"
      "  --timesteps N     training timesteps per trial      (default 16384)\n"
      "  --seeds N         training seeds averaged per trial (default 2)\n"
      "  --seed N          study seed                        (default 42)\n"
      "  --parallel N      concurrent trial evaluations      (default 1)\n"
      "  --trial-retries N retry a failed trial up to N times (default 0)\n"
      "  --trial-timeout S per-attempt wall-clock timeout, seconds (0 = none)\n"
      "  --on-trial-failure {abort|skip}\n"
      "                    abort: rethrow after recording (default)\n"
      "                    skip: record the failure and keep going\n"
      "  --cache PATH      campaign cache (table1 only; \"\" disables)\n"
      "  --figure X,Y      extra Pareto plot over metrics X and Y\n"
      "  --csv PATH        write the trial table as CSV\n"
      "  --trace-out PATH  write a Chrome trace-event JSON (Perfetto /\n"
      "                    chrome://tracing) of the study's spans\n"
      "  --obs-out PATH    write the metrics-registry snapshot as JSONL\n"
      "  --obs-port P      expose /metrics, /snapshot.json, /healthz on\n"
      "                    127.0.0.1:P while the campaign runs (0 = pick a\n"
      "                    free port; the bound port is printed)\n"
      "  --flight-out PATH flight-recorder JSONL: dumped on trial faults,\n"
      "                    fatal signals, and at exit\n"
      "  --distributed     run RLlib multi-node trials through real actor\n"
      "                    processes over darl/net sockets\n"
      "  --worker-bin PATH actor binary for --distributed (default:\n"
      "                    darl_worker next to this executable)\n"
      "  --stability       report Pareto-front robustness under noise\n"
      "  --verbose         log per-trial progress\n");
  std::exit(code);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) usage(0);
    else if (!std::strcmp(a, "--explorer")) opt.explorer = need_value(i);
    else if (!std::strcmp(a, "--trials")) opt.trials = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--timesteps")) opt.timesteps = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--seeds")) opt.seeds_per_trial = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--seed")) opt.seed = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--parallel")) opt.parallel_trials = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--trial-retries")) opt.trial_retries = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--trial-timeout")) opt.trial_timeout = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--on-trial-failure")) {
      const std::string v = need_value(i);
      if (v == "abort") opt.on_trial_failure = core::FailurePolicy::Abort;
      else if (v == "skip") opt.on_trial_failure = core::FailurePolicy::Skip;
      else {
        std::fprintf(stderr, "--on-trial-failure must be 'abort' or 'skip'\n");
        usage(2);
      }
    }
    else if (!std::strcmp(a, "--cache")) opt.cache = need_value(i);
    else if (!std::strcmp(a, "--csv")) opt.csv_out = need_value(i);
    else if (!std::strcmp(a, "--report")) opt.report_out = need_value(i);
    else if (!std::strcmp(a, "--trace-out")) opt.trace_out = need_value(i);
    else if (!std::strcmp(a, "--obs-out")) opt.obs_out = need_value(i);
    else if (!std::strcmp(a, "--obs-port"))
      opt.obs_port = static_cast<int>(std::strtol(need_value(i), nullptr, 10));
    else if (!std::strcmp(a, "--flight-out")) opt.flight_out = need_value(i);
    else if (!std::strcmp(a, "--distributed")) opt.distributed = true;
    else if (!std::strcmp(a, "--worker-bin")) opt.worker_bin = need_value(i);
    else if (!std::strcmp(a, "--verbose")) opt.verbose = true;
    else if (!std::strcmp(a, "--stability")) opt.stability = true;
    else if (!std::strcmp(a, "--figure")) {
      const std::string v = need_value(i);
      const auto comma = v.find(',');
      if (comma == std::string::npos) {
        std::fprintf(stderr, "--figure needs METRIC_X,METRIC_Y\n");
        usage(2);
      }
      opt.figures.emplace_back(v.substr(0, comma), v.substr(comma + 1));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a);
      usage(2);
    }
  }
  if (opt.trials == 0 || opt.timesteps == 0 || opt.seeds_per_trial == 0 ||
      opt.parallel_trials == 0) {
    std::fprintf(stderr,
                 "--trials/--timesteps/--seeds/--parallel must be positive\n");
    usage(2);
  }
  if (opt.trial_timeout < 0.0) {
    std::fprintf(stderr, "--trial-timeout must be non-negative\n");
    usage(2);
  }
  return opt;
}

std::unique_ptr<ExploratoryMethod> make_explorer(const CliOptions& opt,
                                                 const CaseStudyDef& def) {
  if (opt.explorer == "table1") {
    return std::make_unique<FixedListSearch>(paper_table1_configs());
  }
  if (opt.explorer == "random") {
    return std::make_unique<RandomSearch>(def.space, opt.trials, opt.seed);
  }
  if (opt.explorer == "grid") {
    return std::make_unique<GridSearch>(def.space, 2);
  }
  if (opt.explorer == "tpe") {
    TpeOptions tpe;
    tpe.n_trials = opt.trials;
    tpe.n_startup = std::max<std::size_t>(4, opt.trials / 4);
    return std::make_unique<TpeSearch>(def.space, def.metrics.def("Reward"),
                                       tpe, opt.seed);
  }
  if (opt.explorer == "halving") {
    return std::make_unique<SuccessiveHalving>(
        def.space, def.metrics.def("Reward"),
        std::max<std::size_t>(4, opt.trials), 2.0, 0.25, opt.seed);
  }
  std::fprintf(stderr, "unknown explorer '%s'\n", opt.explorer.c_str());
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse_args(argc, argv);
  // Campaign CSVs are the determinism-audit artifact (check.sh compares
  // them byte-for-byte), so the fast-math tier is pinned off here no
  // matter what DARL_FAST_MATH says — only exactly-rounded kernels may
  // touch audited numbers (DESIGN.md §16).
  set_fast_math(false);
  if (opt.verbose) set_log_level(LogLevel::Info);
  // Observability is opt-in so default runs measure the bare hot paths.
  if (!opt.trace_out.empty()) obs::set_tracing_enabled(true);
  if (!opt.obs_out.empty() || opt.obs_port >= 0) obs::set_metrics_enabled(true);
  if (!opt.flight_out.empty()) {
    obs::enable_flight();
    obs::set_flight_dump_path(opt.flight_out);
    obs::install_flight_signal_handler();
  }
  std::unique_ptr<obs::TimeSeries> sampler;
  std::unique_ptr<obs::Exporter> exporter;
  if (opt.obs_port >= 0) {
    sampler = std::make_unique<obs::TimeSeries>();
    sampler->start();
    obs::ExporterOptions ex_opt;
    ex_opt.port = opt.obs_port;
    ex_opt.timeseries = sampler.get();
    exporter = std::make_unique<obs::Exporter>(ex_opt);
    exporter->start();
    std::printf("obs: exporter listening on 127.0.0.1:%d\n", exporter->port());
    std::fflush(stdout);
  }

  AirdropStudyOptions study_opts;
  study_opts.total_timesteps = opt.timesteps;
  study_opts.seeds_per_trial = opt.seeds_per_trial;
  study_opts.distributed.enabled = opt.distributed;
  study_opts.distributed.worker_bin = opt.worker_bin;
  const CaseStudyDef def = make_airdrop_case_study(study_opts);

  const StudyOptions run_opts{.seed = opt.seed,
                              .log_progress = opt.verbose,
                              .parallel_trials = opt.parallel_trials,
                              .max_retries = opt.trial_retries,
                              .trial_timeout_seconds = opt.trial_timeout,
                              .on_trial_failure = opt.on_trial_failure};
  std::vector<TrialRecord> trials;
  if (opt.explorer == "table1") {
    trials = run_table1_campaign(study_opts, opt.cache, run_opts);
  } else {
    Study study(def, make_explorer(opt, def), run_opts);
    study.run();
    trials = study.trials();
  }

  std::printf("%s\n", render_trial_table(def, trials).c_str());

  const std::string failures = render_failure_summary(trials);
  if (!failures.empty()) std::printf("%s\n", failures.c_str());

  const std::string phases = render_phase_breakdown(trials);
  if (!phases.empty()) std::printf("%s\n", phases.c_str());

  // Default figures: the paper's three trade-offs.
  auto figures = opt.figures;
  if (figures.empty()) {
    figures = {{"ComputationTime", "Reward"},
               {"ComputationTime", "PowerConsumption"},
               {"PowerConsumption", "Reward"}};
  }
  for (const auto& [x, y] : figures) {
    std::vector<std::size_t> front;
    std::printf("%s\n", render_pareto_plot(def, trials, x, y,
                                           y + " vs " + x, &front)
                            .c_str());
    std::printf("  non-dominated:");
    for (std::size_t id : front) std::printf(" #%zu", id + 1);
    std::printf("\n\n");
  }

  if (opt.stability) {
    // Failed trials carry no metrics: resample the survivors only.
    std::vector<const TrialRecord*> ok_trials;
    std::vector<std::vector<double>> points;
    for (const auto& t : trials) {
      if (!t.ok()) continue;
      ok_trials.push_back(&t);
      points.push_back(def.metrics.extract(t.metrics));
    }
    StabilityOptions sopts;
    sopts.samples = 4000;
    sopts.relative_noise = 0.03;
    sopts.absolute_stddev = {0.04, 0.0, 0.0, 0.0};  // measured reward seed noise
    Rng rng(opt.seed);
    const StabilityResult st = front_stability(points, def.metrics, sopts, rng);
    std::printf("Pareto-front membership under metric noise:\n");
    for (std::size_t k = 0; k < ok_trials.size(); ++k) {
      std::printf("  #%-2zu %5.1f%%%s\n", ok_trials[k]->id + 1,
                  100.0 * st.membership[k],
                  st.membership[k] >= 0.5 ? "  <== robust" : "");
    }
    std::printf("\n");
  }

  if (!opt.report_out.empty()) {
    std::ofstream out(opt.report_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", opt.report_out.c_str());
      return 1;
    }
    out << write_markdown_report(def, trials);
    std::printf("wrote %s\n", opt.report_out.c_str());
  }

  if (!opt.csv_out.empty()) {
    std::ofstream out(opt.csv_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", opt.csv_out.c_str());
      return 1;
    }
    write_trials_csv(out, def, trials);
    std::printf("wrote %s\n", opt.csv_out.c_str());
  }

  if (!opt.trace_out.empty()) {
    std::ofstream out(opt.trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", opt.trace_out.c_str());
      return 1;
    }
    const auto spans = obs::collect_spans();
    out << obs::chrome_trace_json(spans).dump() << '\n';
    std::printf("wrote %s (%zu spans%s)\n", opt.trace_out.c_str(), spans.size(),
                obs::spans_dropped() > 0 ? ", trace cap hit" : "");
  }

  if (!opt.obs_out.empty()) {
    std::ofstream out(opt.obs_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", opt.obs_out.c_str());
      return 1;
    }
    JsonlWriter writer(out);
    obs::Registry::global().snapshot().write_jsonl(writer);
    std::printf("wrote %s (%zu records)\n", opt.obs_out.c_str(), writer.records());
  }

  if (exporter != nullptr) exporter->stop();
  if (sampler != nullptr) sampler->stop();
  if (!opt.flight_out.empty()) {
    const std::size_t events = obs::flight_dump_to_path(opt.flight_out);
    std::printf("wrote flight dump %s (%zu events)\n", opt.flight_out.c_str(),
                events);
  }
  return 0;
}
