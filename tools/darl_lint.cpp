// darl_lint — project-specific static analysis for the darl tree.
//
//   darl_lint [--root DIR] [--supp FILE] [--list-rules] [dir...]
//
// Scans src/, tools/, bench/, tests/ and examples/ (or the listed
// directories) for the banned patterns and invariants described in
// tools/lint_engine.hpp. Exceptions live in tools/darl_lint.supp, one
// justified entry per rule+file; a suppression that matches nothing is
// itself an error so the file only ever shrinks.
//
// Exit codes: 0 clean, 1 findings / unused or malformed suppressions,
// 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "lint_engine.hpp"

namespace {

namespace fs = std::filesystem;
using namespace darl::lint;

struct Options {
  std::string root = ".";
  std::string supp_path = "tools/darl_lint.supp";
  std::vector<std::string> dirs;
  bool list_rules = false;
};

constexpr const char* kDefaultDirs[] = {"src", "tools", "bench", "tests",
                                        "examples"};

void print_rules() {
  std::printf(
      "darl_lint rules:\n"
      "  banned-random    std::rand / srand / std::random_device\n"
      "  wall-clock       argless now() / system_clock outside "
      "stopwatch/obs/log\n"
      "  unordered-iter   iteration over unordered_map/unordered_set\n"
      "  raw-new-delete   raw new / delete expressions\n"
      "  float-literal    float literals in ode/ linalg/ rl/ nn/\n"
      "  std-endl         std::endl\n"
      "  pragma-once      .hpp without #pragma once\n"
      "  catch-all        catch (...) without rethrow or recording\n"
      "  detached-thread  std::thread::detach()\n"
      "  heap-alloc-in-kernel  new / .resize( / .push_back( inside a "
      "*_batch or gemm body\n"
      "  metric-name      instrument/label-key names outside [a-z0-9_.]+ "
      "(scans raw source)\n"
      "  metric-lookup-in-kernel  registry lookup inside a *_batch / gemm "
      "/ *dispatch* body\n");
}

[[noreturn]] void usage(int code) {
  std::printf(
      "darl_lint — project-specific static analysis\n"
      "\n"
      "  darl_lint [--root DIR] [--supp FILE] [--list-rules] [dir...]\n"
      "\n"
      "  --root DIR    repository root to scan from (default .)\n"
      "  --supp FILE   suppression file, relative to root\n"
      "                (default tools/darl_lint.supp; \"\" disables)\n"
      "  --list-rules  print the rule table and exit\n"
      "  dir...        directories to scan, relative to root\n"
      "                (default: src tools bench tests examples)\n");
  std::exit(code);
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](int& j) -> std::string {
      if (j + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[j]);
        usage(2);
      }
      return argv[++j];
    };
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--list-rules") opt.list_rules = true;
    else if (a == "--root") opt.root = need_value(i);
    else if (a == "--supp") opt.supp_path = need_value(i);
    else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      usage(2);
    } else {
      opt.dirs.push_back(a);
    }
  }
  if (opt.list_rules) {
    print_rules();
    return 0;
  }
  if (opt.dirs.empty()) {
    for (const char* d : kDefaultDirs) {
      if (fs::is_directory(fs::path(opt.root) / d)) opt.dirs.push_back(d);
    }
  }

  // Gather the file list (sorted, so output and suppression matching are
  // deterministic).
  std::vector<std::string> files;
  for (const auto& dir : opt.dirs) {
    const fs::path base = fs::path(opt.root) / dir;
    if (!fs::is_directory(base)) {
      std::fprintf(stderr, "darl_lint: not a directory: %s\n",
                   base.string().c_str());
      return 2;
    }
    std::error_code ec;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        std::fprintf(stderr, "darl_lint: walk error under %s: %s\n",
                     base.string().c_str(), ec.message().c_str());
        return 2;
      }
      if (it->is_regular_file() && lintable(it->path())) {
        // Report paths relative to the root so suppressions are stable.
        files.push_back(
            normalize_path(fs::relative(it->path(), opt.root).string()));
      }
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: harvest unordered-container declarations project-wide, so a
  // loop in a .cpp over a member declared in its header is still caught.
  ScanContext ctx;
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const auto& rel : files) {
    std::string content;
    if (!read_file(fs::path(opt.root) / rel, content)) {
      std::fprintf(stderr, "darl_lint: cannot read %s\n", rel.c_str());
      return 2;
    }
    collect_unordered_names(strip_noncode(content), ctx.unordered_names);
    sources.emplace_back(rel, std::move(content));
  }

  // Pass 2: scan.
  std::vector<Finding> findings;
  for (const auto& [rel, content] : sources) {
    auto file_findings = scan_source(rel, content, ctx);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  // Suppressions.
  std::vector<Suppression> suppressions;
  std::vector<std::string> supp_errors;
  if (!opt.supp_path.empty()) {
    const fs::path supp_file = fs::path(opt.root) / opt.supp_path;
    std::string content;
    if (fs::exists(supp_file)) {
      if (!read_file(supp_file, content)) {
        std::fprintf(stderr, "darl_lint: cannot read %s\n",
                     supp_file.string().c_str());
        return 2;
      }
      suppressions = parse_suppressions(content, supp_errors);
    }
  }
  const std::size_t total = findings.size();
  findings = apply_suppressions(std::move(findings), suppressions);

  bool failed = false;
  for (const auto& e : supp_errors) {
    std::fprintf(stderr, "%s: %s\n", opt.supp_path.c_str(), e.c_str());
    failed = true;
  }
  for (const auto& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.path.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
    failed = true;
  }
  for (const auto& s : suppressions) {
    if (!s.used) {
      std::fprintf(stderr,
                   "%s:%zu: unused suppression '%s %s' — delete it (the "
                   "code is clean now)\n",
                   opt.supp_path.c_str(), s.line, s.rule.c_str(),
                   s.path_suffix.c_str());
      failed = true;
    }
  }

  std::printf(
      "darl_lint: %zu file(s), %zu finding(s): %zu suppressed, %zu "
      "unsuppressed%s\n",
      files.size(), total, total - findings.size(), findings.size(),
      failed ? " — FAIL" : "");
  return failed ? 1 : 0;
}
