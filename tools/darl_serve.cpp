// darl_serve — command-line front end for the micro-batching policy
// inference server (src/darl/serve/, DESIGN.md §12).
//
//   darl_serve [options]
//
//   --checkpoint PATH   serve this saved policy (default: train one fresh)
//   --train-timesteps N PPO training budget when no checkpoint is given
//                       (default 4096)
//   --save PATH         after training, also save the checkpoint here
//   --clients N         closed-loop client threads (default 4)
//   --requests N        requests per client (default 200)
//   --max-batch N       micro-batch size cap (default 32)
//   --max-delay-us X    batching window in microseconds (default 200)
//   --queue-cap N       admission queue capacity (default 256)
//   --workers N         dispatcher threads (default 1)
//   --deadline-us X     per-request deadline, 0 = wait forever (default 0)
//   --swap-every N      hot-swap (republish) the policy after every N
//                       requests per client, 0 = never (default 0). The
//                       republished spec is identical, so the bitwise
//                       self-check keeps working across swaps.
//   --seed N            rng seed for client traffic (default 42)
//   --obs-out PATH      write the metrics-registry snapshot as JSONL
//   --obs-port P        live telemetry: serve /metrics (Prometheus),
//                       /snapshot.json and /healthz on 127.0.0.1:P
//                       (0 = ephemeral; the bound port is printed)
//   --obs-linger-s X    keep the exporter alive X seconds after the run
//   --flight-out PATH   dump the flight recorder (JSONL) at exit and on
//                       fatal signals
//   --help
//
// Each client walks its own airdrop episode: observation -> served action
// -> simulator step, so the offered traffic is the real deployment loop.
// Every Ok response is compared bitwise against DirectPolicy (per-sample
// Mlp::evaluate + greedy decode, no batching); any mismatch makes the
// process exit 1. The run ends with an outcome/latency/batch-shape table.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "darl/airdrop/airdrop_env.hpp"
#include "darl/common/jsonl.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/common/table.hpp"
#include "darl/frameworks/backend.hpp"
#include "darl/obs/export.hpp"
#include "darl/obs/flight.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/percentile.hpp"
#include "darl/obs/timeseries.hpp"
#include "darl/rl/checkpoint.hpp"
#include "darl/serve/batch_scheduler.hpp"
#include "darl/serve/policy_store.hpp"

namespace {

using namespace darl;

struct CliOptions {
  std::string checkpoint;
  std::string save;
  std::size_t train_timesteps = 4096;
  std::size_t clients = 4;
  std::size_t requests = 200;
  std::size_t max_batch = 32;
  double max_delay_us = 200.0;
  std::size_t queue_capacity = 256;
  std::size_t workers = 1;
  double deadline_us = 0.0;
  std::size_t swap_every = 0;
  std::uint64_t seed = 42;
  std::string obs_out;
  int obs_port = -1;        ///< -1 = no exporter; 0 = ephemeral port
  double obs_linger_s = 0.0;
  std::string flight_out;
};

[[noreturn]] void usage(int code) {
  std::printf(
      "darl_serve — micro-batching policy inference server\n"
      "\n"
      "  --checkpoint PATH   serve this saved policy (default: train fresh)\n"
      "  --train-timesteps N PPO budget when training fresh (default 4096)\n"
      "  --save PATH         save the freshly trained checkpoint\n"
      "  --clients N         closed-loop client threads     (default 4)\n"
      "  --requests N        requests per client            (default 200)\n"
      "  --max-batch N       micro-batch size cap           (default 32)\n"
      "  --max-delay-us X    batching window, microseconds  (default 200)\n"
      "  --queue-cap N       admission queue capacity       (default 256)\n"
      "  --workers N         dispatcher threads             (default 1)\n"
      "  --deadline-us X     per-request deadline, 0 = none (default 0)\n"
      "  --swap-every N      republish after every N requests per client\n"
      "                      (0 = never; same weights, new version id)\n"
      "  --seed N            client traffic seed            (default 42)\n"
      "  --obs-out PATH      metrics snapshot as JSONL\n"
      "  --obs-port P        expose /metrics, /snapshot.json, /healthz on\n"
      "                      127.0.0.1:P (0 = pick a free port; the bound\n"
      "                      port is printed). darl_top can attach to it.\n"
      "  --obs-linger-s X    keep the exporter up X seconds after the run\n"
      "                      so scrapers can read the final counters\n"
      "  --flight-out PATH   flight-recorder JSONL dump target; also\n"
      "                      installs the fatal-signal dump handler\n"
      "  --help\n");
  std::exit(code);
}

/// Per-client tally, merged after the join.
struct ClientStats {
  std::vector<double> ok_latencies_us;
  std::size_t ok = 0;
  std::size_t rejected_full = 0;
  std::size_t rejected_shutdown = 0;
  std::size_t timed_out = 0;
  std::size_t mismatches = 0;
};

/// One closed-loop client: drives an airdrop episode with served actions.
/// Non-Ok responses fall back to the direct policy so the episode keeps
/// advancing (the deployment posture: degrade, don't stall).
void run_client(serve::BatchScheduler& server, const serve::PolicySpec& spec,
                const env::EnvFactory& factory, const CliOptions& opt,
                std::size_t client_index, std::uint64_t seed,
                ClientStats& stats) {
  serve::DirectPolicy direct(spec);
  auto env = factory();
  env->seed(seed);
  Vec obs = env->reset();
  stats.ok_latencies_us.reserve(opt.requests);
  // Per-tenant labeled counter: one series per client thread, so the
  // exporter shows which tenant the traffic came from. Registered once,
  // then hot-path adds on the sharded slots.
  std::string tenant = "c";
  tenant += std::to_string(client_index);
  darl::obs::Counter& tenant_requests = darl::obs::Registry::global().counter(
      "serve.client_requests", {{"tenant", tenant}});
  for (std::size_t r = 0; r < opt.requests; ++r) {
    tenant_requests.add(1);
    const serve::Response response = server.serve(obs, opt.deadline_us);
    const Vec reference = direct.act(obs);
    Vec action = reference;
    switch (response.outcome) {
      case serve::Outcome::Ok:
        ++stats.ok;
        stats.ok_latencies_us.push_back(response.latency_us);
        if (response.action != reference) ++stats.mismatches;
        action = response.action;
        break;
      case serve::Outcome::RejectedFull:
        ++stats.rejected_full;
        break;
      case serve::Outcome::RejectedShutdown:
        ++stats.rejected_shutdown;
        break;
      case serve::Outcome::TimedOut:
        ++stats.timed_out;
        break;
    }
    const env::StepResult step = env->step(action);
    obs = step.done() ? env->reset() : step.observation;
  }
}

rl::Checkpoint obtain_checkpoint(const CliOptions& opt,
                                 const env::EnvFactory& factory) {
  if (!opt.checkpoint.empty()) {
    std::printf("loading checkpoint %s\n", opt.checkpoint.c_str());
    return rl::load_checkpoint_file(opt.checkpoint);
  }
  std::printf("training PPO on the airdrop simulator (%zu steps)...\n",
              opt.train_timesteps);
  frameworks::TrainRequest req;
  req.env_factory = factory;
  req.algo.kind = rl::AlgoKind::PPO;
  req.deployment = {1, 2};
  req.total_timesteps = opt.train_timesteps;
  req.eval_episodes = 5;
  req.seed = 11;
  frameworks::StableBaselinesBackend backend;
  const frameworks::TrainResult result = backend.run(req);
  std::printf("  trained: eval landing score %.3f\n", result.reward);

  auto probe = factory();
  rl::Checkpoint ck;
  ck.kind = rl::AlgoKind::PPO;
  ck.obs_dim = probe->observation_space().dim();
  ck.action_dim = probe->action_space().action_dim();
  ck.params = result.final_policy;
  if (!opt.save.empty()) {
    rl::save_checkpoint_file(opt.save, ck);
    std::printf("  saved checkpoint to %s\n", opt.save.c_str());
  }
  return ck;
}

std::size_t parse_size(const char* v) {
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--checkpoint")) opt.checkpoint = need_value(i);
    else if (!std::strcmp(a, "--save")) opt.save = need_value(i);
    else if (!std::strcmp(a, "--train-timesteps"))
      opt.train_timesteps = parse_size(need_value(i));
    else if (!std::strcmp(a, "--clients")) opt.clients = parse_size(need_value(i));
    else if (!std::strcmp(a, "--requests")) opt.requests = parse_size(need_value(i));
    else if (!std::strcmp(a, "--max-batch")) opt.max_batch = parse_size(need_value(i));
    else if (!std::strcmp(a, "--max-delay-us"))
      opt.max_delay_us = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--queue-cap"))
      opt.queue_capacity = parse_size(need_value(i));
    else if (!std::strcmp(a, "--workers")) opt.workers = parse_size(need_value(i));
    else if (!std::strcmp(a, "--deadline-us"))
      opt.deadline_us = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--swap-every"))
      opt.swap_every = parse_size(need_value(i));
    else if (!std::strcmp(a, "--seed"))
      opt.seed = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--obs-out")) opt.obs_out = need_value(i);
    else if (!std::strcmp(a, "--obs-port"))
      opt.obs_port = static_cast<int>(std::strtol(need_value(i), nullptr, 10));
    else if (!std::strcmp(a, "--obs-linger-s"))
      opt.obs_linger_s = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--flight-out")) opt.flight_out = need_value(i);
    else if (!std::strcmp(a, "--help")) usage(0);
    else {
      std::fprintf(stderr, "unknown option '%s'\n", a);
      usage(2);
    }
  }
  if (opt.clients == 0 || opt.requests == 0 || opt.workers == 0) {
    std::fprintf(stderr, "--clients, --requests and --workers must be > 0\n");
    usage(2);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse_cli(argc, argv);
  obs::set_metrics_enabled(true);

  if (!opt.flight_out.empty()) {
    obs::enable_flight();
    obs::set_flight_dump_path(opt.flight_out);
    obs::install_flight_signal_handler();
  }

  std::unique_ptr<obs::TimeSeries> sampler;
  std::unique_ptr<obs::Exporter> exporter;
  if (opt.obs_port >= 0) {
    obs::TimeSeriesOptions ts_opt;
    ts_opt.period_ms = 100;  // short-lived CLI runs still get a window
    sampler = std::make_unique<obs::TimeSeries>(ts_opt);
    sampler->start();
    obs::ExporterOptions ex_opt;
    ex_opt.port = opt.obs_port;
    ex_opt.timeseries = sampler.get();
    exporter = std::make_unique<obs::Exporter>(ex_opt);
    exporter->start();
    // Scripts (check.sh, darl_top) read the bound port off this line, so
    // flush it before the run starts producing other output.
    std::printf("obs: exporter listening on 127.0.0.1:%d\n", exporter->port());
    std::fflush(stdout);
  }

  airdrop::AirdropConfig env_cfg;
  env_cfg.altitude_min = 30.0;
  env_cfg.altitude_max = 200.0;
  env_cfg.rk_order = ode::RkOrder::Order5;
  const env::EnvFactory factory = airdrop::make_airdrop_factory(env_cfg);

  const rl::Checkpoint ck = obtain_checkpoint(opt, factory);
  auto probe = factory();

  serve::PolicyStore store;
  store.publish_checkpoint(ck, probe->action_space());
  const serve::PolicySpec spec = store.current()->spec;
  std::printf("serving policy: %zu params, version %llu\n",
              spec.net_params.size(),
              static_cast<unsigned long long>(store.current()->id));

  serve::ServeConfig config;
  config.max_batch = opt.max_batch;
  config.max_delay_us = opt.max_delay_us;
  config.queue_capacity = opt.queue_capacity;
  config.workers = opt.workers;
  serve::BatchScheduler server(store, config);

  std::vector<ClientStats> stats(opt.clients);
  std::vector<std::thread> clients;
  clients.reserve(opt.clients);
  Stopwatch wall;
  // Optional hot-swap driver: republish the same spec on a cadence so the
  // version id advances under live traffic.
  std::thread swapper;
  bool swapping = opt.swap_every > 0;
  if (swapping) {
    swapper = std::thread([&] {
      const std::size_t swaps = opt.requests / opt.swap_every;
      for (std::size_t s = 0; s < swaps; ++s) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        store.publish(spec);
      }
    });
  }
  for (std::size_t c = 0; c < opt.clients; ++c) {
    clients.emplace_back([&, c] {
      run_client(server, spec, factory, opt, c, opt.seed + c, stats[c]);
    });
  }
  for (auto& t : clients) t.join();
  if (swapping) swapper.join();
  const double wall_s = wall.seconds();
  server.shutdown();

  ClientStats total;
  for (const ClientStats& s : stats) {
    total.ok += s.ok;
    total.rejected_full += s.rejected_full;
    total.rejected_shutdown += s.rejected_shutdown;
    total.timed_out += s.timed_out;
    total.mismatches += s.mismatches;
    total.ok_latencies_us.insert(total.ok_latencies_us.end(),
                                 s.ok_latencies_us.begin(),
                                 s.ok_latencies_us.end());
  }

  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  const auto batch_hist = snap.histograms.find("serve.batch_rows");
  const double batches =
      batch_hist != snap.histograms.end()
          ? static_cast<double>(batch_hist->second.count)
          : 0.0;
  const double mean_batch =
      batches > 0.0 ? batch_hist->second.sum / batches : 0.0;

  TextTable table;
  table.set_columns({"metric", "value"}, {Align::Left, Align::Right});
  table.add_row({"clients x requests", std::to_string(opt.clients) + " x " +
                                           std::to_string(opt.requests)});
  table.add_row({"served ok", std::to_string(total.ok)});
  table.add_row({"rejected (queue full)", std::to_string(total.rejected_full)});
  table.add_row({"timed out", std::to_string(total.timed_out)});
  table.add_row({"policy versions", std::to_string(store.version_count())});
  table.add_rule();
  if (!total.ok_latencies_us.empty()) {
    table.add_row({"latency p50 (us)",
                   fixed(obs::percentile(total.ok_latencies_us, 50.0), 1)});
    table.add_row({"latency p99 (us)",
                   fixed(obs::percentile(total.ok_latencies_us, 99.0), 1)});
  }
  table.add_row({"throughput (req/s)",
                 fixed(static_cast<double>(total.ok) / wall_s, 0)});
  table.add_row({"mean micro-batch rows", fixed(mean_batch, 2)});
  std::printf("\n%s\n", table.render(2).c_str());

  if (!opt.obs_out.empty()) {
    std::ofstream out(opt.obs_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", opt.obs_out.c_str());
      return 1;
    }
    JsonlWriter writer(out);
    snap.write_jsonl(writer);
    std::printf("wrote %s (%zu records)\n", opt.obs_out.c_str(),
                writer.records());
  }

  if (exporter != nullptr) {
    if (opt.obs_linger_s > 0.0) {
      // The stats table above is already printed, so a scraper can compare
      // a final /metrics scrape against it while we linger.
      std::printf("obs: lingering %.1fs for scrapers on port %d...\n",
                  opt.obs_linger_s, exporter->port());
      std::fflush(stdout);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opt.obs_linger_s));
    }
    exporter->stop();
  }
  if (sampler != nullptr) sampler->stop();
  if (!opt.flight_out.empty()) {
    const std::size_t events = obs::flight_dump_to_path(opt.flight_out);
    std::printf("wrote flight dump %s (%zu events)\n", opt.flight_out.c_str(),
                events);
  }

  if (total.mismatches > 0) {
    std::fprintf(stderr,
                 "SELF-CHECK FAILED: %zu served action(s) differ from the "
                 "direct per-sample path\n",
                 total.mismatches);
    return 1;
  }
  std::printf("self-check: all %zu served actions bitwise-identical to the "
              "direct path\n",
              total.ok);
  return 0;
}
