// darl_serve — command-line front end for the policy inference fleet
// (src/darl/serve/, DESIGN.md §12 and §14).
//
//   darl_serve [options]
//
//   --checkpoint PATH   serve this saved policy (default: train one fresh)
//   --train-timesteps N PPO training budget when no checkpoint is given
//                       (default 4096)
//   --save PATH         after training, also save the checkpoint here
//   --clients N         client threads (default 4)
//   --requests N        requests per client (default 200)
//   --shards N          hash shards per tenant (default 1)
//   --tenants N         named policies to host (default 1; 1 uses the
//                       unnamed back-compat tenant, N>1 publishes the
//                       checkpoint as "t0".."tN-1" and spreads clients
//                       across them round-robin)
//   --quota N           per-tenant in-flight admission quota (default 0 =
//                       unlimited)
//   --priority NAME     control|high|normal|low|mixed (default normal;
//                       mixed cycles high/normal/low across clients)
//   --open-loop         open-loop traffic: each client draws arrival
//                       times from --arrival and measures latency from
//                       the *scheduled* arrival, so queueing delay is
//                       charged even when the fleet falls behind
//   --rate-per-s X      total offered arrival rate, open-loop (default 2000)
//   --arrival NAME      poisson|bursty|heavytail (default poisson)
//   --shed-low X        Low lane shed watermark, fraction of queue
//                       capacity (default 0.50); likewise
//   --shed-normal X     (default 0.75) and
//   --shed-high X       (default 0.90). Control traffic never sheds.
//   --max-batch N       micro-batch size cap (default 32)
//   --max-delay-us X    batching window in microseconds (default 200)
//   --no-gather         timed window instead of yield-gather: the worker
//                       holds the full --max-delay-us so queues build and
//                       the shed watermarks engage (overload stress mode)
//   --queue-cap N       per-shard admission queue capacity (default 256)
//   --workers N         dispatcher threads per shard (default 1)
//   --deadline-us X     per-request deadline, 0 = wait forever (default 0)
//   --swap-every N      hot-swap (republish) every tenant after every N
//                       requests per client, 0 = never (default 0). The
//                       republished spec is identical, so the bitwise
//                       self-check keeps working across swaps.
//   --quantized         serve through the int8 quantized inference path
//                       (per-layer scales derived at publish time). The
//                       self-check compares against a *quantized*
//                       DirectPolicy, so it still demands bitwise
//                       equality — quantization is deterministic, only
//                       lossy versus the exact double path.
//   --exact-tenants L   comma-separated tenant names pinned to the exact
//                       path even under --quantized (per-tenant
//                       fallback; their self-check reference stays the
//                       exact DirectPolicy)
//   --seed N            rng seed for client traffic (default 42)
//   --obs-out PATH      write the metrics-registry snapshot as JSONL
//   --obs-port P        live telemetry: serve /metrics (Prometheus),
//                       /snapshot.json and /healthz on 127.0.0.1:P
//                       (0 = ephemeral; the bound port is printed)
//   --obs-linger-s X    keep the exporter alive X seconds after the run
//   --flight-out PATH   dump the flight recorder (JSONL) at exit and on
//                       fatal signals
//   --help
//
// Each client walks its own airdrop episode: observation -> served action
// -> simulator step, so the offered traffic is the real deployment loop.
// Every Ok response is compared bitwise against DirectPolicy (per-sample
// Mlp::evaluate + greedy decode, no batching); any mismatch makes the
// process exit 1. In open-loop mode a Control-priority prober issues a
// health probe every 20 ms to demonstrate that the control lane survives
// overload. The run ends with an outcome/latency/batch-shape table.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "darl/airdrop/airdrop_env.hpp"
#include "darl/common/jsonl.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/common/table.hpp"
#include "darl/frameworks/backend.hpp"
#include "darl/obs/export.hpp"
#include "darl/obs/flight.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/percentile.hpp"
#include "darl/obs/timeseries.hpp"
#include "darl/rl/checkpoint.hpp"
#include "darl/serve/arrival.hpp"
#include "darl/serve/policy_store.hpp"
#include "darl/serve/router.hpp"

namespace {

using namespace darl;

struct CliOptions {
  std::string checkpoint;
  std::string save;
  std::size_t train_timesteps = 4096;
  std::size_t clients = 4;
  std::size_t requests = 200;
  std::size_t shards = 1;
  std::size_t tenants = 1;
  std::size_t quota = 0;
  std::string priority = "normal";
  bool open_loop = false;
  double rate_per_s = 2000.0;
  std::string arrival = "poisson";
  double shed_low = 0.50;
  double shed_normal = 0.75;
  double shed_high = 0.90;
  std::size_t max_batch = 32;
  double max_delay_us = 200.0;
  bool gather = true;
  std::size_t queue_capacity = 256;
  std::size_t workers = 1;
  double deadline_us = 0.0;
  std::size_t swap_every = 0;
  bool quantized = false;
  std::vector<std::string> exact_tenants;
  std::uint64_t seed = 42;
  std::string obs_out;
  int obs_port = -1;        ///< -1 = no exporter; 0 = ephemeral port
  double obs_linger_s = 0.0;
  std::string flight_out;
};

[[noreturn]] void usage(int code) {
  std::printf(
      "darl_serve — sharded multi-tenant policy inference fleet\n"
      "\n"
      "  --checkpoint PATH   serve this saved policy (default: train fresh)\n"
      "  --train-timesteps N PPO budget when training fresh (default 4096)\n"
      "  --save PATH         save the freshly trained checkpoint\n"
      "  --clients N         client threads                 (default 4)\n"
      "  --requests N        requests per client            (default 200)\n"
      "  --shards N          hash shards per tenant         (default 1)\n"
      "  --tenants N         named policies hosted          (default 1)\n"
      "  --quota N           per-tenant in-flight quota, 0 = unlimited\n"
      "  --priority NAME     control|high|normal|low|mixed  (default normal)\n"
      "  --open-loop         open-loop arrivals; latency measured from the\n"
      "                      scheduled arrival time (shows the knee)\n"
      "  --rate-per-s X      total offered rate, open-loop  (default 2000)\n"
      "  --arrival NAME      poisson|bursty|heavytail       (default poisson)\n"
      "  --shed-low X        Low shed watermark             (default 0.50)\n"
      "  --shed-normal X     Normal shed watermark          (default 0.75)\n"
      "  --shed-high X       High shed watermark            (default 0.90)\n"
      "  --max-batch N       micro-batch size cap           (default 32)\n"
      "  --max-delay-us X    batching window, microseconds  (default 200)\n"
      "  --no-gather         hold the full batching window instead of\n"
      "                      dispatching when arrivals pause (stress mode:\n"
      "                      queues build and the shed watermarks engage)\n"
      "  --queue-cap N       per-shard queue capacity       (default 256)\n"
      "  --workers N         dispatcher threads per shard   (default 1)\n"
      "  --deadline-us X     per-request deadline, 0 = none (default 0)\n"
      "  --swap-every N      republish after every N requests per client\n"
      "                      (0 = never; same weights, new version id)\n"
      "  --quantized         int8 quantized inference path; the bitwise\n"
      "                      self-check runs against a quantized reference\n"
      "  --exact-tenants L   comma-separated tenants kept on the exact\n"
      "                      double path even under --quantized\n"
      "  --seed N            client traffic seed            (default 42)\n"
      "  --obs-out PATH      metrics snapshot as JSONL\n"
      "  --obs-port P        expose /metrics, /snapshot.json, /healthz on\n"
      "                      127.0.0.1:P (0 = pick a free port; the bound\n"
      "                      port is printed). darl_top can attach to it.\n"
      "  --obs-linger-s X    keep the exporter up X seconds after the run\n"
      "                      so scrapers can read the final counters\n"
      "  --flight-out PATH   flight-recorder JSONL dump target; also\n"
      "                      installs the fatal-signal dump handler\n"
      "  --help\n");
  std::exit(code);
}

/// Per-client tally, merged after the join. In open-loop mode latencies
/// are measured from the scheduled arrival time.
struct ClientStats {
  std::vector<double> ok_latencies_us;
  std::size_t ok = 0;
  std::size_t rejected_full = 0;
  std::size_t rejected_shutdown = 0;
  std::size_t timed_out = 0;
  std::size_t rejected_quota = 0;
  std::size_t shed = 0;
  std::size_t mismatches = 0;
};

void tally(ClientStats& stats, const serve::Response& response,
           const Vec& reference, double latency_us) {
  switch (response.outcome) {
    case serve::Outcome::Ok:
      ++stats.ok;
      stats.ok_latencies_us.push_back(latency_us);
      if (response.action != reference) ++stats.mismatches;
      break;
    case serve::Outcome::RejectedFull:
      ++stats.rejected_full;
      break;
    case serve::Outcome::RejectedShutdown:
      ++stats.rejected_shutdown;
      break;
    case serve::Outcome::TimedOut:
      ++stats.timed_out;
      break;
    case serve::Outcome::RejectedQuota:
      ++stats.rejected_quota;
      break;
    case serve::Outcome::Shed:
      ++stats.shed;
      break;
  }
}

serve::Priority client_priority(const std::string& name,
                                std::size_t client_index) {
  if (name == "control") return serve::Priority::Control;
  if (name == "high") return serve::Priority::High;
  if (name == "low") return serve::Priority::Low;
  if (name == "mixed") {
    switch (client_index % 3) {
      case 0: return serve::Priority::High;
      case 1: return serve::Priority::Normal;
      default: return serve::Priority::Low;
    }
  }
  return serve::Priority::Normal;
}

/// One client thread: drives an airdrop episode with served actions.
/// Non-Ok responses fall back to the direct policy so the episode keeps
/// advancing (the deployment posture: degrade, don't stall). Closed-loop
/// issues the next request as soon as the previous returns; open-loop
/// sleeps until each scheduled arrival and charges any lateness to the
/// request's latency.
void run_client(serve::Router& router, const std::string& tenant,
                const serve::PolicySpec& spec, const env::EnvFactory& factory,
                const CliOptions& opt, std::size_t client_index,
                std::uint64_t seed, ClientStats& stats) {
  // The reference must match the tenant's serving mode: quantized tenants
  // check against the int8 batch-of-1 path, exact tenants (including
  // --exact-tenants fallbacks under --quantized) against Mlp::evaluate.
  serve::DirectPolicy direct(spec, router.tenant_quantized(tenant));
  auto env = factory();
  env->seed(seed);
  Vec obs = env->reset();
  stats.ok_latencies_us.reserve(opt.requests);
  const serve::Priority priority = client_priority(opt.priority, client_index);
  serve::Arrival arrival_kind = serve::Arrival::Poisson;
  parse_arrival(opt.arrival, arrival_kind);
  Rng rng(splitmix64(seed) ^ 0xA5A5A5A5A5A5A5A5ull);
  // Per-tenant offered-traffic counter (the router's serve.router_requests
  // counts what reached admission; this counts what clients generated).
  darl::obs::Counter& tenant_requests = darl::obs::Registry::global().counter(
      "serve.client_requests",
      {{"tenant", tenant.empty() ? std::string("default") : tenant}});
  const double mean_gap_s =
      opt.rate_per_s > 0.0
          ? static_cast<double>(opt.clients) / opt.rate_per_s
          : 0.0;
  serve::ArrivalProcess arrivals(arrival_kind, mean_gap_s);
  Stopwatch wall;
  double next_arrival_s = 0.0;
  for (std::size_t r = 0; r < opt.requests; ++r) {
    if (opt.open_loop) {
      next_arrival_s += arrivals.next_gap_s(rng);
      const double now_s = wall.seconds();
      if (now_s < next_arrival_s) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(next_arrival_s - now_s));
      }
    }
    tenant_requests.add(1);
    // Fresh key per request: traffic spreads over every shard while any
    // fixed key still maps to a fixed shard (see Router::shard_for).
    const std::uint64_t key = splitmix64(seed + 0x9E37 * (r + 1));
    const serve::Response response =
        router.serve(tenant, key, obs, priority, opt.deadline_us);
    const Vec reference = direct.act(obs);
    const double latency_us =
        opt.open_loop ? (wall.seconds() - next_arrival_s) * 1e6
                      : response.latency_us;
    tally(stats, response, reference, latency_us);
    const Vec& action =
        response.outcome == serve::Outcome::Ok ? response.action : reference;
    const env::StepResult step = env->step(action);
    obs = step.done() ? env->reset() : step.observation;
  }
}

rl::Checkpoint obtain_checkpoint(const CliOptions& opt,
                                 const env::EnvFactory& factory) {
  if (!opt.checkpoint.empty()) {
    std::printf("loading checkpoint %s\n", opt.checkpoint.c_str());
    return rl::load_checkpoint_file(opt.checkpoint);
  }
  std::printf("training PPO on the airdrop simulator (%zu steps)...\n",
              opt.train_timesteps);
  frameworks::TrainRequest req;
  req.env_factory = factory;
  req.algo.kind = rl::AlgoKind::PPO;
  req.deployment = {1, 2};
  req.total_timesteps = opt.train_timesteps;
  req.eval_episodes = 5;
  req.seed = 11;
  frameworks::StableBaselinesBackend backend;
  const frameworks::TrainResult result = backend.run(req);
  std::printf("  trained: eval landing score %.3f\n", result.reward);

  auto probe = factory();
  rl::Checkpoint ck;
  ck.kind = rl::AlgoKind::PPO;
  ck.obs_dim = probe->observation_space().dim();
  ck.action_dim = probe->action_space().action_dim();
  ck.params = result.final_policy;
  if (!opt.save.empty()) {
    rl::save_checkpoint_file(opt.save, ck);
    std::printf("  saved checkpoint to %s\n", opt.save.c_str());
  }
  return ck;
}

std::size_t parse_size(const char* v) {
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--checkpoint")) opt.checkpoint = need_value(i);
    else if (!std::strcmp(a, "--save")) opt.save = need_value(i);
    else if (!std::strcmp(a, "--train-timesteps"))
      opt.train_timesteps = parse_size(need_value(i));
    else if (!std::strcmp(a, "--clients")) opt.clients = parse_size(need_value(i));
    else if (!std::strcmp(a, "--requests")) opt.requests = parse_size(need_value(i));
    else if (!std::strcmp(a, "--shards")) opt.shards = parse_size(need_value(i));
    else if (!std::strcmp(a, "--tenants")) opt.tenants = parse_size(need_value(i));
    else if (!std::strcmp(a, "--quota")) opt.quota = parse_size(need_value(i));
    else if (!std::strcmp(a, "--priority")) opt.priority = need_value(i);
    else if (!std::strcmp(a, "--open-loop")) opt.open_loop = true;
    else if (!std::strcmp(a, "--rate-per-s"))
      opt.rate_per_s = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--arrival")) opt.arrival = need_value(i);
    else if (!std::strcmp(a, "--shed-low"))
      opt.shed_low = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--shed-normal"))
      opt.shed_normal = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--shed-high"))
      opt.shed_high = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--no-gather")) opt.gather = false;
    else if (!std::strcmp(a, "--max-batch")) opt.max_batch = parse_size(need_value(i));
    else if (!std::strcmp(a, "--max-delay-us"))
      opt.max_delay_us = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--queue-cap"))
      opt.queue_capacity = parse_size(need_value(i));
    else if (!std::strcmp(a, "--workers")) opt.workers = parse_size(need_value(i));
    else if (!std::strcmp(a, "--deadline-us"))
      opt.deadline_us = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--swap-every"))
      opt.swap_every = parse_size(need_value(i));
    else if (!std::strcmp(a, "--quantized")) opt.quantized = true;
    else if (!std::strcmp(a, "--exact-tenants")) {
      std::string list = need_value(i);
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > start) {
          opt.exact_tenants.push_back(list.substr(start, end - start));
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
    else if (!std::strcmp(a, "--seed"))
      opt.seed = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--obs-out")) opt.obs_out = need_value(i);
    else if (!std::strcmp(a, "--obs-port"))
      opt.obs_port = static_cast<int>(std::strtol(need_value(i), nullptr, 10));
    else if (!std::strcmp(a, "--obs-linger-s"))
      opt.obs_linger_s = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--flight-out")) opt.flight_out = need_value(i);
    else if (!std::strcmp(a, "--help")) usage(0);
    else {
      std::fprintf(stderr, "unknown option '%s'\n", a);
      usage(2);
    }
  }
  if (opt.clients == 0 || opt.requests == 0 || opt.workers == 0) {
    std::fprintf(stderr, "--clients, --requests and --workers must be > 0\n");
    usage(2);
  }
  if (opt.shards == 0 || opt.tenants == 0) {
    std::fprintf(stderr, "--shards and --tenants must be > 0\n");
    usage(2);
  }
  if (opt.arrival != "poisson" && opt.arrival != "bursty" &&
      opt.arrival != "heavytail") {
    std::fprintf(stderr, "--arrival must be poisson, bursty or heavytail\n");
    usage(2);
  }
  if (opt.priority != "control" && opt.priority != "high" &&
      opt.priority != "normal" && opt.priority != "low" &&
      opt.priority != "mixed") {
    std::fprintf(stderr,
                 "--priority must be control, high, normal, low or mixed\n");
    usage(2);
  }
  if (opt.open_loop && opt.rate_per_s <= 0.0) {
    std::fprintf(stderr, "--rate-per-s must be > 0 in open-loop mode\n");
    usage(2);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse_cli(argc, argv);
  obs::set_metrics_enabled(true);

  if (!opt.flight_out.empty()) {
    obs::enable_flight();
    obs::set_flight_dump_path(opt.flight_out);
    obs::install_flight_signal_handler();
  }

  std::unique_ptr<obs::TimeSeries> sampler;
  std::unique_ptr<obs::Exporter> exporter;
  if (opt.obs_port >= 0) {
    obs::TimeSeriesOptions ts_opt;
    ts_opt.period_ms = 100;  // short-lived CLI runs still get a window
    sampler = std::make_unique<obs::TimeSeries>(ts_opt);
    sampler->start();
    obs::ExporterOptions ex_opt;
    ex_opt.port = opt.obs_port;
    ex_opt.timeseries = sampler.get();
    exporter = std::make_unique<obs::Exporter>(ex_opt);
    exporter->start();
    // Scripts (check.sh, darl_top) read the bound port off this line, so
    // flush it before the run starts producing other output.
    std::printf("obs: exporter listening on 127.0.0.1:%d\n", exporter->port());
    std::fflush(stdout);
  }

  airdrop::AirdropConfig env_cfg;
  env_cfg.altitude_min = 30.0;
  env_cfg.altitude_max = 200.0;
  env_cfg.rk_order = ode::RkOrder::Order5;
  const env::EnvFactory factory = airdrop::make_airdrop_factory(env_cfg);

  const rl::Checkpoint ck = obtain_checkpoint(opt, factory);
  auto probe = factory();

  // One tenant is the unnamed back-compat policy; a fleet of N publishes
  // the checkpoint under "t0".."tN-1" and spreads clients round-robin.
  std::vector<std::string> tenant_names;
  if (opt.tenants == 1) {
    tenant_names.emplace_back();
  } else {
    for (std::size_t t = 0; t < opt.tenants; ++t) {
      tenant_names.push_back("t" + std::to_string(t));
    }
  }
  serve::PolicyStore store;
  for (const std::string& name : tenant_names) {
    if (name.empty()) {
      store.publish_checkpoint(ck, probe->action_space());
    } else {
      store.publish_checkpoint(name, ck, probe->action_space());
    }
  }
  const serve::PolicySpec spec =
      store.current(tenant_names.front())->spec;
  std::printf("serving policy: %zu params, %zu tenant(s) x %zu shard(s)\n",
              spec.net_params.size(), opt.tenants, opt.shards);

  serve::RouterConfig router_cfg;
  router_cfg.shards = opt.shards;
  router_cfg.shard.max_batch = opt.max_batch;
  router_cfg.shard.max_delay_us = opt.max_delay_us;
  router_cfg.shard.queue_capacity = opt.queue_capacity;
  router_cfg.shard.workers = opt.workers;
  router_cfg.shard.gather = opt.gather;
  router_cfg.shed_low = opt.shed_low;
  router_cfg.shed_normal = opt.shed_normal;
  router_cfg.shed_high = opt.shed_high;
  router_cfg.default_quota = opt.quota;
  router_cfg.quantized = opt.quantized;
  router_cfg.exact_tenants = opt.exact_tenants;
  serve::Router router(store, router_cfg);
  if (opt.quantized) {
    std::size_t exact = 0;
    for (const std::string& name : tenant_names) {
      if (!router.tenant_quantized(name)) ++exact;
    }
    std::printf("quantized serving: int8 path on %zu/%zu tenant(s)\n",
                tenant_names.size() - exact, tenant_names.size());
  }

  std::vector<ClientStats> stats(opt.clients);
  std::vector<std::thread> clients;
  clients.reserve(opt.clients);
  Stopwatch wall;
  // Optional hot-swap driver: republish the same spec on a cadence so
  // every tenant's version id advances under live traffic.
  std::thread swapper;
  const bool swapping = opt.swap_every > 0;
  if (swapping) {
    swapper = std::thread([&] {
      const std::size_t swaps = opt.requests / opt.swap_every;
      for (std::size_t s = 0; s < swaps; ++s) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        for (const std::string& name : tenant_names) {
          if (name.empty()) store.publish(spec);
          else store.publish(name, spec);
        }
      }
    });
  }
  // Open-loop runs carry a Control-priority prober: the healthz-style
  // traffic that must keep answering while Normal/Low lanes shed.
  std::atomic<bool> probing{true};
  std::vector<double> control_latencies_us;
  std::thread prober;
  if (opt.open_loop) {
    prober = std::thread([&] {
      auto env = factory();
      env->seed(opt.seed + 1000003);
      const Vec obs = env->reset();
      while (probing.load(std::memory_order_relaxed)) {
        Stopwatch probe_sw;
        (void)router.serve(tenant_names.front(), 0, obs,
                           serve::Priority::Control, 0.0);
        control_latencies_us.push_back(probe_sw.seconds() * 1e6);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }
  for (std::size_t c = 0; c < opt.clients; ++c) {
    const std::string& tenant = tenant_names[c % tenant_names.size()];
    clients.emplace_back([&, c, tenant] {
      run_client(router, tenant, spec, factory, opt, c, opt.seed + c,
                 stats[c]);
    });
  }
  for (auto& t : clients) t.join();
  if (swapping) swapper.join();
  if (prober.joinable()) {
    probing.store(false, std::memory_order_relaxed);
    prober.join();
  }
  const double wall_s = wall.seconds();
  router.shutdown();

  ClientStats total;
  for (const ClientStats& s : stats) {
    total.ok += s.ok;
    total.rejected_full += s.rejected_full;
    total.rejected_shutdown += s.rejected_shutdown;
    total.timed_out += s.timed_out;
    total.rejected_quota += s.rejected_quota;
    total.shed += s.shed;
    total.mismatches += s.mismatches;
    total.ok_latencies_us.insert(total.ok_latencies_us.end(),
                                 s.ok_latencies_us.begin(),
                                 s.ok_latencies_us.end());
  }

  std::uint64_t versions = 0;
  for (const std::string& name : tenant_names) {
    versions += name.empty() ? store.version_count()
                             : store.version_count(name);
  }

  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  double batches = 0.0, batch_rows = 0.0;
  for (const auto& [key, hist] : snap.histograms) {
    if (key.rfind("serve.batch_rows", 0) == 0) {
      batches += static_cast<double>(hist.count);
      batch_rows += hist.sum;
    }
  }
  const double mean_batch = batches > 0.0 ? batch_rows / batches : 0.0;

  TextTable table;
  table.set_columns({"metric", "value"}, {Align::Left, Align::Right});
  table.add_row({"mode", opt.open_loop
                             ? "open-loop (" + opt.arrival + ")"
                             : std::string("closed-loop")});
  table.add_row({"fleet", std::to_string(opt.tenants) + " tenant(s) x " +
                              std::to_string(opt.shards) + " shard(s)"});
  table.add_row({"clients x requests", std::to_string(opt.clients) + " x " +
                                           std::to_string(opt.requests)});
  table.add_row({"served ok", std::to_string(total.ok)});
  table.add_row({"rejected (queue full)", std::to_string(total.rejected_full)});
  table.add_row({"rejected (quota)", std::to_string(total.rejected_quota)});
  table.add_row({"shed (priority)", std::to_string(total.shed)});
  table.add_row({"timed out", std::to_string(total.timed_out)});
  table.add_row({"policy versions", std::to_string(versions)});
  table.add_rule();
  if (!total.ok_latencies_us.empty()) {
    table.add_row({"latency p50 (us)",
                   fixed(obs::percentile(total.ok_latencies_us, 50.0), 1)});
    table.add_row({"latency p99 (us)",
                   fixed(obs::percentile(total.ok_latencies_us, 99.0), 1)});
    table.add_row({"latency p99.9 (us)",
                   fixed(obs::percentile(total.ok_latencies_us, 99.9), 1)});
  }
  if (opt.open_loop) {
    table.add_row({"offered rate (req/s)", fixed(opt.rate_per_s, 0)});
  }
  table.add_row({"achieved (req/s)",
                 fixed(static_cast<double>(total.ok) / wall_s, 0)});
  if (!control_latencies_us.empty()) {
    table.add_row({"control probes", std::to_string(control_latencies_us.size())});
    table.add_row({"control probe p99 (us)",
                   fixed(obs::percentile(control_latencies_us, 99.0), 1)});
  }
  table.add_row({"mean micro-batch rows", fixed(mean_batch, 2)});
  std::printf("\n%s\n", table.render(2).c_str());

  if (!opt.obs_out.empty()) {
    std::ofstream out(opt.obs_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", opt.obs_out.c_str());
      return 1;
    }
    JsonlWriter writer(out);
    snap.write_jsonl(writer);
    std::printf("wrote %s (%zu records)\n", opt.obs_out.c_str(),
                writer.records());
  }

  if (exporter != nullptr) {
    if (opt.obs_linger_s > 0.0) {
      // The stats table above is already printed, so a scraper can compare
      // a final /metrics scrape against it while we linger.
      std::printf("obs: lingering %.1fs for scrapers on port %d...\n",
                  opt.obs_linger_s, exporter->port());
      std::fflush(stdout);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opt.obs_linger_s));
    }
    exporter->stop();
  }
  if (sampler != nullptr) sampler->stop();
  if (!opt.flight_out.empty()) {
    const std::size_t events = obs::flight_dump_to_path(opt.flight_out);
    std::printf("wrote flight dump %s (%zu events)\n", opt.flight_out.c_str(),
                events);
  }

  if (total.mismatches > 0) {
    std::fprintf(stderr,
                 "SELF-CHECK FAILED: %zu served action(s) differ from the "
                 "direct per-sample path\n",
                 total.mismatches);
    return 1;
  }
  std::printf("self-check: all %zu served actions bitwise-identical to the "
              "direct path\n",
              total.ok);
  return 0;
}
