#!/usr/bin/env bash
# tools/bench.sh — micro-kernel benchmark runner.
#
# Runs the gemm and nn micro benchmarks and distills the batched-kernel
# numbers into a compact JSON report (default: BENCH_4.json at the repo
# root) with one record per (op, batch): ns/op and flops/s. The report
# also carries the headline number this file exists to track: the batch-64
# forward+backward speedup of the batched kernels over 64 per-sample calls
# (the pre-batching execution pattern). The committed BENCH_4.json is the
# baseline snapshot; re-run this script after touching linalg/ or nn/ and
# compare.
#
# The serving sweep (bench_serve: closed-loop clients x batching window)
# is distilled the same way into a second report (default: BENCH_5.json):
# req/s and p50/p99 latency per (clients, max_batch) cell, plus the
# headline batched-vs-batch-1 throughput speedup at the saturating client
# count.
#
# The telemetry sweep (bench_obs) is distilled into a third report
# (default: BENCH_6.json): ns/op per instrument operation keyed by thread
# count, plus two headline numbers: the sharded counter's contended
# advantage over the single shared atomic it replaced (the PR-1 design),
# and the one-relaxed-load cost of a disabled DARL_COUNTER_ADD gate.
#
# The open-loop fleet sweep (bench_serve: offered rate x max_batch through
# serve::Router) is distilled into a fourth report (default: BENCH_7.json):
# achieved rate and open-loop p50/p99/p99.9 per (rate, max_batch, arrival)
# cell, the saturation knee per configuration (highest offered rate still
# achieving >= 95%), and the batched-vs-batch-1 comparison at the first
# swept rate beyond the batch-1 knee (achieved-rate ratio and p99.9
# ratio — beyond its knee, batch-1's open-loop tail grows with the
# backlog while the batched fleet keeps it bounded).
#
# The kernel-performance sweep (blocked vs naive NT gemm, the
# DARL_LINALG_THREADS pool-width ladder, the DARL_FAST_MATH tier, and int8
# quantized inference) is distilled into a fifth report (default:
# BENCH_9.json): per-cell real/CPU ns and GFLOP/s keyed by op x threads,
# plus headlines for the blocked-vs-naive single-thread lift, pool scaling
# efficiency, the 4-thread batch-64 fwd+bwd speedup over the per-sample
# baseline, and the quantized-vs-exact batched inference ratio. Wall-clock
# thread scaling is only meaningful on a multi-core runner; the report
# records both real and CPU time so a single-core CI box stays honest.
#
# Usage: tools/bench.sh [output.json] [serve_output.json] [obs_output.json] \
#                       [openloop_output.json] [kernel_output.json]
#   BUILD_DIR=build-foo tools/bench.sh     # use a different build tree
#   BENCH_SMOKE=1 tools/bench.sh out.json serve.json
#                                          # near-instant smoke run (CI gate:
#                                          # the benches still build and run;
#                                          # numbers are meaningless)
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_4.json}"
SERVE_OUT="${2:-BENCH_5.json}"
OBS_OUT="${3:-BENCH_6.json}"
OPENLOOP_OUT="${4:-BENCH_7.json}"
KERNEL_OUT="${5:-BENCH_9.json}"
BUILD="${BUILD_DIR:-build}"
JOBS="$(nproc)"

cmake --build "$BUILD" -j "$JOBS" \
    --target bench_micro_gemm bench_micro_nn bench_serve bench_obs

SMOKE_ARGS=()
if [[ "${BENCH_SMOKE:-0}" != "0" ]]; then
  # Near-zero min time: each bench runs a handful of iterations, just
  # enough to prove it builds, runs, and emits distillable JSON. (The
  # "=1x" fixed-iteration syntax needs google-benchmark >= 1.8, which the
  # toolchain image does not guarantee.)
  SMOKE_ARGS=(--benchmark_min_time=0.001)
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"./$BUILD/bench/bench_micro_gemm" --benchmark_format=json \
    "${SMOKE_ARGS[@]+"${SMOKE_ARGS[@]}"}" > "$TMP/gemm.json"
"./$BUILD/bench/bench_micro_nn" --benchmark_format=json \
    --benchmark_filter='Batch|PerSampleLoop|WrapperLoop' \
    "${SMOKE_ARGS[@]+"${SMOKE_ARGS[@]}"}" > "$TMP/nn.json"
"./$BUILD/bench/bench_serve" --benchmark_format=json \
    "${SMOKE_ARGS[@]+"${SMOKE_ARGS[@]}"}" > "$TMP/serve.json"
"./$BUILD/bench/bench_obs" --benchmark_format=json \
    "${SMOKE_ARGS[@]+"${SMOKE_ARGS[@]}"}" > "$TMP/obs.json"

python3 - "$TMP/gemm.json" "$TMP/nn.json" "$OUT" <<'PY'
import json, sys

gemm_path, nn_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

def load(path):
    with open(path) as f:
        return json.load(f)["benchmarks"]

def to_ns(b):
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return b["real_time"] * scale

# Kernel-sweep benches (threads ladder, fast-math tier, naive strawman,
# quantized inference) are distilled into BENCH_9, not this baseline.
KERNEL_OPS = {
    "BM_GemmNTNaive",
    "BM_GemmNTThreads",
    "BM_GemmNTFastMath",
    "BM_MlpForwardBackwardBatchThreads",
    "BM_MlpEvaluateBatchQuantized",
}

results = []
times = {}
for b in load(gemm_path) + load(nn_path):
    if b.get("run_type") == "aggregate":
        continue
    name = b["name"]  # e.g. BM_MlpForwardBackwardBatch/64/64
    parts = name.split("/")
    op = parts[0]
    if op in KERNEL_OPS:
        continue
    args = [int(p) for p in parts[1:] if p.isdigit()]
    # Single-arg benches (gemm square size, MlpLayer batch) report the arg
    # as the batch column; two-arg nn benches report {hidden, batch} — both
    # columns, so e.g. hidden-64 and hidden-128 rows at the same batch stay
    # distinguishable.
    ns = to_ns(b)
    times[name] = ns
    record = {
        "op": op,
        "batch": args[-1] if args else 1,
        "ns_per_op": ns,
        "flops_per_s": b.get("flops/s"),
    }
    if len(args) == 2:
        record["hidden"] = args[0]
    results.append(record)

report = {"results": results}
batched = times.get("BM_MlpForwardBackwardBatch/64/64")
per_sample = times.get("BM_MlpForwardBackwardPerSampleLoop/64/64")
if batched and per_sample:
    report["fwd_bwd_batch64_speedup_vs_per_sample"] = per_sample / batched

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

speedup = report.get("fwd_bwd_batch64_speedup_vs_per_sample")
if speedup is not None:
    print(f"batch-64 fwd+bwd speedup over per-sample: {speedup:.2f}x")
print(f"wrote {out_path} ({len(results)} records)")
PY

python3 - "$TMP/serve.json" "$SERVE_OUT" <<'PY'
import json, sys

serve_path, out_path = sys.argv[1], sys.argv[2]

with open(serve_path) as f:
    benchmarks = json.load(f)["benchmarks"]

results = []
rps = {}
for b in benchmarks:
    if b.get("run_type") == "aggregate":
        continue
    # e.g. BM_ServeClosedLoop/16/64/200/process_time/real_time — the
    # numeric path segments are {clients, max_batch, max_delay_us}.
    # (bench_serve also hosts BM_ServeOpenLoop, distilled separately.)
    if not b["name"].startswith("BM_ServeClosedLoop/"):
        continue
    args = [int(p) for p in b["name"].split("/") if p.isdigit()]
    if len(args) != 3 or "items_per_second" not in b:
        continue
    clients, max_batch, delay_us = args
    record = {
        "clients": clients,
        "max_batch": max_batch,
        "max_delay_us": delay_us,
        "req_per_s": b["items_per_second"],
        "p50_us": b.get("p50_us"),
        "p99_us": b.get("p99_us"),
    }
    results.append(record)
    rps[(clients, max_batch, delay_us)] = b["items_per_second"]

report = {"results": results}
# Headline: throughput win of micro-batching over the batch-1 baseline at
# the saturating client count (the largest swept).
if rps:
    saturating = max(c for c, _, _ in rps)
    batched_cells = {(m, d): v for (c, m, d), v in rps.items()
                     if c == saturating and m > 1}
    base = rps.get((saturating, 1, 0))
    if base and batched_cells:
        best = max(batched_cells, key=batched_cells.get)
        report["saturating_clients"] = saturating
        report["serve_batched_speedup_vs_batch1"] = (
            batched_cells[best] / base)
        print(f"serve: {saturating} clients, max_batch={best[0]} "
              f"delay={best[1]}us vs batch-1: "
              f"{report['serve_batched_speedup_vs_batch1']:.2f}x throughput")

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(results)} records)")
PY

python3 - "$TMP/obs.json" "$OBS_OUT" <<'PY'
import json, sys

obs_path, out_path = sys.argv[1], sys.argv[2]

with open(obs_path) as f:
    benchmarks = json.load(f)["benchmarks"]

def to_ns(b):
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return b["real_time"] * scale

results = []
times = {}
for b in benchmarks:
    if b.get("run_type") == "aggregate":
        continue
    # e.g. BM_CounterSharded/threads:8; unsuffixed benches are 1 thread.
    name = b["name"]
    op = name.split("/")[0]
    threads = 1
    if "/threads:" in name:
        threads = int(name.rsplit("/threads:", 1)[1])
    ns = to_ns(b)
    times[(op, threads)] = ns
    results.append({"op": op, "threads": threads, "ns_per_op": ns})

report = {"results": results}
# Headline 1: sharded counter vs the single shared atomic it replaced,
# solo and under contention. (On a single-core runner the contended cell
# never exercises real cache-line ping-pong; the solo ratio is the one
# the acceptance gate reads.)
atomic1 = times.get(("BM_CounterSingleAtomic", 1))
sharded1 = times.get(("BM_CounterSharded", 1))
atomic8 = times.get(("BM_CounterSingleAtomic", 8))
sharded8 = times.get(("BM_CounterSharded", 8))
if atomic1 and sharded1:
    report["sharded_solo_ns_vs_atomic_ns"] = [sharded1, atomic1]
if atomic8 and sharded8:
    report["sharded_contended_speedup_vs_atomic"] = atomic8 / sharded8
# Headline 2: what an instrumented hot path pays when telemetry is off.
gate = times.get(("BM_CounterMacroDisabled", 1))
if gate is not None:
    report["disabled_gate_ns"] = gate

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

if atomic1 and sharded1:
    print(f"obs: sharded counter solo {sharded1:.1f}ns vs atomic "
          f"{atomic1:.1f}ns; contended x8 "
          f"{report.get('sharded_contended_speedup_vs_atomic', 0):.2f}x")
print(f"wrote {out_path} ({len(results)} records)")
PY

python3 - "$TMP/serve.json" "$OPENLOOP_OUT" <<'PY'
import json, sys

serve_path, out_path = sys.argv[1], sys.argv[2]

with open(serve_path) as f:
    benchmarks = json.load(f)["benchmarks"]

ARRIVALS = {0: "poisson", 1: "bursty", 2: "heavytail"}
KNEE_FRACTION = 0.95  # achieved >= 95% of offered counts as keeping up

results = []
for b in benchmarks:
    if b.get("run_type") == "aggregate":
        continue
    # e.g. BM_ServeOpenLoop/16000/64/0/real_time — the numeric segments
    # are {offered rate per second, max_batch, arrival kind}.
    if not b["name"].startswith("BM_ServeOpenLoop/"):
        continue
    args = [int(p) for p in b["name"].split("/") if p.isdigit()]
    if len(args) != 3 or "items_per_second" not in b:
        continue
    rate, max_batch, arrival = args
    results.append({
        "offered_per_s": rate,
        "max_batch": max_batch,
        "arrival": ARRIVALS.get(arrival, str(arrival)),
        "achieved_per_s": b["items_per_second"],
        "p50_us": b.get("p50_us"),
        "p99_us": b.get("p99_us"),
        "p999_us": b.get("p999_us"),
    })

report = {"results": results}

# Saturation knee per configuration: the highest swept offered rate the
# poisson sweep still keeps up with (achieved >= KNEE_FRACTION x offered).
knees = {}
for r in results:
    if r["arrival"] != "poisson":
        continue
    if r["achieved_per_s"] >= KNEE_FRACTION * r["offered_per_s"]:
        key = r["max_batch"]
        knees[key] = max(knees.get(key, 0), r["offered_per_s"])
report["knee_per_s"] = {f"max_batch_{k}": v for k, v in sorted(knees.items())}

# Headline: batch-1 vs the batched fleet at the first swept rate beyond
# the batch-1 knee — the regime micro-batching exists for. Beyond its
# knee batch-1's open-loop backlog grows for the whole run, so its p99.9
# explodes; the batched cells at the same offered rate stay bounded.
batch1_knee = knees.get(1)
batched = sorted(k for k in knees if k > 1)
if batch1_knee is not None and batched:
    cells = {}
    for r in results:
        if r["arrival"] == "poisson":
            cells[(r["offered_per_s"], r["max_batch"])] = r
    beyond = sorted(rate for rate, mb in cells
                    if mb == 1 and rate > batch1_knee)
    if beyond:
        rate = beyond[0]
        base = cells.get((rate, 1))
        best = cells.get((rate, batched[-1]))
        if base and best:
            report["batch1_knee_per_s"] = batch1_knee
            report["beyond_knee_rate_per_s"] = rate
            report["beyond_knee_achieved_ratio"] = (
                best["achieved_per_s"] / base["achieved_per_s"])
            if base.get("p999_us") and best.get("p999_us"):
                report["beyond_knee_p999_ratio"] = (
                    base["p999_us"] / best["p999_us"])
            print(f"open-loop: batch-1 knee {batch1_knee} req/s; at "
                  f"{rate} req/s batched achieves "
                  f"{report['beyond_knee_achieved_ratio']:.2f}x the "
                  f"batch-1 rate, p99.9 "
                  f"{report.get('beyond_knee_p999_ratio', 0):.1f}x lower")

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(results)} records)")
PY

python3 - "$TMP/gemm.json" "$TMP/nn.json" "$KERNEL_OUT" <<'PY'
import json, sys

gemm_path, nn_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

def load(path):
    with open(path) as f:
        return json.load(f)["benchmarks"]

def ns(b, field):
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return b[field] * scale

# The kernel-performance report: blocked vs naive NT gemm, the pool-width
# ladder, the DARL_FAST_MATH tier, and int8 quantized batched inference.
# Each record carries BOTH real and CPU ns: on a single-core runner the
# pool's worker time is CPU-attributed but wall time cannot drop, so only
# the CPU column shows the schedule's work distribution there; real-time
# speedups are meaningful only on a multi-core box.
KERNEL_OPS = {
    "BM_GemmNT",            # blocked NT at the ambient pool width (1)
    "BM_GemmNTNaive",       # pre-blocking dot-product strawman
    "BM_GemmNTThreads",     # blocked NT across pool widths 1/2/4/8
    "BM_GemmNTFastMath",    # DARL_FAST_MATH FMA tier
    "BM_MlpForwardBatch",   # exact batched forward (quantized comparator)
    "BM_MlpForwardBackwardBatch",
    "BM_MlpForwardBackwardBatchThreads",
    "BM_MlpForwardBackwardPerSampleLoop",
    "BM_MlpEvaluateBatchQuantized",
}

results = []
cells = {}
for b in load(gemm_path) + load(nn_path):
    if b.get("run_type") == "aggregate":
        continue
    name = b["name"]
    parts = name.split("/")
    op = parts[0]
    if op not in KERNEL_OPS:
        continue
    args = [int(p) for p in parts[1:] if p.isdigit()]
    record = {"op": op,
              "real_ns": ns(b, "real_time"),
              "cpu_ns": ns(b, "cpu_time"),
              "flops_per_s": b.get("flops/s")}
    if op.startswith("BM_Gemm"):
        record["n"] = args[0]
        record["threads"] = args[1] if len(args) > 1 else 1
    else:
        record["hidden"], record["batch"] = args[0], args[1]
        record["threads"] = args[2] if len(args) > 2 else 1
    cells[name] = record
    results.append(record)

report = {"results": results}

def real(name):
    r = cells.get(name)
    return r["real_ns"] if r else None

def gflops(name):
    r = cells.get(name)
    f = r.get("flops_per_s") if r else None
    return f / 1e9 if f else None

# Headline 1: single-threaded blocked NT vs the pre-blocking dot-product
# kernel (the tentpole's cache-blocking win, no threading involved).
for n in (64, 128):
    blocked, naive = gflops(f"BM_GemmNT/{n}"), gflops(f"BM_GemmNTNaive/{n}")
    if blocked and naive:
        report[f"nt_blocked_gflops_{n}"] = blocked
        report[f"nt_naive_gflops_{n}"] = naive
        report[f"nt_blocked_vs_naive_{n}"] = blocked / naive

# Headline 2: the pool-width ladder at 128^3, real-time speedup vs the
# same blocked kernel at width 1 plus the CPU-attributed flop rate.
base_r = real("BM_GemmNTThreads/128/1")
if base_r:
    ladder = {}
    for w in (1, 2, 4, 8):
        cell = cells.get(f"BM_GemmNTThreads/128/{w}")
        if cell:
            ladder[f"threads_{w}"] = {
                "real_speedup": base_r / cell["real_ns"],
                "cpu_gflops": (cell["flops_per_s"] or 0) / 1e9,
            }
    report["nt_threads_ladder_128"] = ladder

# Headline 3: DARL_FAST_MATH tier over the default blocked kernel.
for n in (64, 128):
    exact, fast = gflops(f"BM_GemmNT/{n}"), gflops(f"BM_GemmNTFastMath/{n}")
    if exact and fast:
        report[f"fast_math_speedup_{n}"] = fast / exact

# Headline 4: batch-64 fwd+bwd at 4 pool threads vs the per-sample loop —
# the acceptance gate's end-to-end training-path number.
per_sample = real("BM_MlpForwardBackwardPerSampleLoop/64/64")
t4 = real("BM_MlpForwardBackwardBatchThreads/64/64/4")
t1 = real("BM_MlpForwardBackwardBatchThreads/64/64/1")
if per_sample and t4:
    report["fwd_bwd_batch64_4t_speedup_vs_per_sample"] = per_sample / t4
if per_sample and t1:
    report["fwd_bwd_batch64_1t_speedup_vs_per_sample"] = per_sample / t1

# Headline 5: int8 quantized batched inference vs the exact forward pass
# at the same shape (the serving fleet's evaluate path).
for hidden, batch in ((64, 64), (128, 64)):
    exact = real(f"BM_MlpForwardBatch/{hidden}/{batch}")
    quant = real(f"BM_MlpEvaluateBatchQuantized/{hidden}/{batch}")
    if exact and quant:
        report[f"quantized_eval_speedup_h{hidden}_b{batch}"] = exact / quant

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

r = report
if "nt_blocked_vs_naive_128" in r:
    print(f"kernel: blocked NT {r['nt_blocked_gflops_128']:.1f} GFLOP/s vs "
          f"naive {r['nt_naive_gflops_128']:.1f} at 128^3 "
          f"({r['nt_blocked_vs_naive_128']:.2f}x)")
if "fwd_bwd_batch64_4t_speedup_vs_per_sample" in r:
    print(f"kernel: fwd+bwd batch-64 at 4 threads "
          f"{r['fwd_bwd_batch64_4t_speedup_vs_per_sample']:.2f}x per-sample")
print(f"wrote {out_path} ({len(results)} records)")
PY
