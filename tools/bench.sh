#!/usr/bin/env bash
# tools/bench.sh — micro-kernel benchmark runner.
#
# Runs the gemm and nn micro benchmarks and distills the batched-kernel
# numbers into a compact JSON report (default: BENCH_4.json at the repo
# root) with one record per (op, batch): ns/op and flops/s. The report
# also carries the headline number this file exists to track: the batch-64
# forward+backward speedup of the batched kernels over 64 per-sample calls
# (the pre-batching execution pattern). The committed BENCH_4.json is the
# baseline snapshot; re-run this script after touching linalg/ or nn/ and
# compare.
#
# The serving sweep (bench_serve: closed-loop clients x batching window)
# is distilled the same way into a second report (default: BENCH_5.json):
# req/s and p50/p99 latency per (clients, max_batch) cell, plus the
# headline batched-vs-batch-1 throughput speedup at the saturating client
# count.
#
# The telemetry sweep (bench_obs) is distilled into a third report
# (default: BENCH_6.json): ns/op per instrument operation keyed by thread
# count, plus two headline numbers: the sharded counter's contended
# advantage over the single shared atomic it replaced (the PR-1 design),
# and the one-relaxed-load cost of a disabled DARL_COUNTER_ADD gate.
#
# The open-loop fleet sweep (bench_serve: offered rate x max_batch through
# serve::Router) is distilled into a fourth report (default: BENCH_7.json):
# achieved rate and open-loop p50/p99/p99.9 per (rate, max_batch, arrival)
# cell, the saturation knee per configuration (highest offered rate still
# achieving >= 95%), and the batched-vs-batch-1 comparison at the first
# swept rate beyond the batch-1 knee (achieved-rate ratio and p99.9
# ratio — beyond its knee, batch-1's open-loop tail grows with the
# backlog while the batched fleet keeps it bounded).
#
# Usage: tools/bench.sh [output.json] [serve_output.json] [obs_output.json] \
#                       [openloop_output.json]
#   BUILD_DIR=build-foo tools/bench.sh     # use a different build tree
#   BENCH_SMOKE=1 tools/bench.sh out.json serve.json
#                                          # near-instant smoke run (CI gate:
#                                          # the benches still build and run;
#                                          # numbers are meaningless)
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_4.json}"
SERVE_OUT="${2:-BENCH_5.json}"
OBS_OUT="${3:-BENCH_6.json}"
OPENLOOP_OUT="${4:-BENCH_7.json}"
BUILD="${BUILD_DIR:-build}"
JOBS="$(nproc)"

cmake --build "$BUILD" -j "$JOBS" \
    --target bench_micro_gemm bench_micro_nn bench_serve bench_obs

SMOKE_ARGS=()
if [[ "${BENCH_SMOKE:-0}" != "0" ]]; then
  # Near-zero min time: each bench runs a handful of iterations, just
  # enough to prove it builds, runs, and emits distillable JSON. (The
  # "=1x" fixed-iteration syntax needs google-benchmark >= 1.8, which the
  # toolchain image does not guarantee.)
  SMOKE_ARGS=(--benchmark_min_time=0.001)
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"./$BUILD/bench/bench_micro_gemm" --benchmark_format=json \
    "${SMOKE_ARGS[@]+"${SMOKE_ARGS[@]}"}" > "$TMP/gemm.json"
"./$BUILD/bench/bench_micro_nn" --benchmark_format=json \
    --benchmark_filter='Batch|PerSampleLoop|WrapperLoop' \
    "${SMOKE_ARGS[@]+"${SMOKE_ARGS[@]}"}" > "$TMP/nn.json"
"./$BUILD/bench/bench_serve" --benchmark_format=json \
    "${SMOKE_ARGS[@]+"${SMOKE_ARGS[@]}"}" > "$TMP/serve.json"
"./$BUILD/bench/bench_obs" --benchmark_format=json \
    "${SMOKE_ARGS[@]+"${SMOKE_ARGS[@]}"}" > "$TMP/obs.json"

python3 - "$TMP/gemm.json" "$TMP/nn.json" "$OUT" <<'PY'
import json, sys

gemm_path, nn_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

def load(path):
    with open(path) as f:
        return json.load(f)["benchmarks"]

def to_ns(b):
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return b["real_time"] * scale

results = []
times = {}
for b in load(gemm_path) + load(nn_path):
    if b.get("run_type") == "aggregate":
        continue
    name = b["name"]  # e.g. BM_MlpForwardBackwardBatch/64/64
    parts = name.split("/")
    op = parts[0]
    # Single-arg benches (gemm square size, MlpLayer batch) report the arg
    # as the batch column; two-arg nn benches report {hidden, batch}.
    batch = int(parts[-1]) if len(parts) > 1 else 1
    ns = to_ns(b)
    times[name] = ns
    results.append({
        "op": op,
        "batch": batch,
        "ns_per_op": ns,
        "flops_per_s": b.get("flops/s"),
    })

report = {"results": results}
batched = times.get("BM_MlpForwardBackwardBatch/64/64")
per_sample = times.get("BM_MlpForwardBackwardPerSampleLoop/64/64")
if batched and per_sample:
    report["fwd_bwd_batch64_speedup_vs_per_sample"] = per_sample / batched

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

speedup = report.get("fwd_bwd_batch64_speedup_vs_per_sample")
if speedup is not None:
    print(f"batch-64 fwd+bwd speedup over per-sample: {speedup:.2f}x")
print(f"wrote {out_path} ({len(results)} records)")
PY

python3 - "$TMP/serve.json" "$SERVE_OUT" <<'PY'
import json, sys

serve_path, out_path = sys.argv[1], sys.argv[2]

with open(serve_path) as f:
    benchmarks = json.load(f)["benchmarks"]

results = []
rps = {}
for b in benchmarks:
    if b.get("run_type") == "aggregate":
        continue
    # e.g. BM_ServeClosedLoop/16/64/200/process_time/real_time — the
    # numeric path segments are {clients, max_batch, max_delay_us}.
    # (bench_serve also hosts BM_ServeOpenLoop, distilled separately.)
    if not b["name"].startswith("BM_ServeClosedLoop/"):
        continue
    args = [int(p) for p in b["name"].split("/") if p.isdigit()]
    if len(args) != 3 or "items_per_second" not in b:
        continue
    clients, max_batch, delay_us = args
    record = {
        "clients": clients,
        "max_batch": max_batch,
        "max_delay_us": delay_us,
        "req_per_s": b["items_per_second"],
        "p50_us": b.get("p50_us"),
        "p99_us": b.get("p99_us"),
    }
    results.append(record)
    rps[(clients, max_batch, delay_us)] = b["items_per_second"]

report = {"results": results}
# Headline: throughput win of micro-batching over the batch-1 baseline at
# the saturating client count (the largest swept).
if rps:
    saturating = max(c for c, _, _ in rps)
    batched_cells = {(m, d): v for (c, m, d), v in rps.items()
                     if c == saturating and m > 1}
    base = rps.get((saturating, 1, 0))
    if base and batched_cells:
        best = max(batched_cells, key=batched_cells.get)
        report["saturating_clients"] = saturating
        report["serve_batched_speedup_vs_batch1"] = (
            batched_cells[best] / base)
        print(f"serve: {saturating} clients, max_batch={best[0]} "
              f"delay={best[1]}us vs batch-1: "
              f"{report['serve_batched_speedup_vs_batch1']:.2f}x throughput")

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(results)} records)")
PY

python3 - "$TMP/obs.json" "$OBS_OUT" <<'PY'
import json, sys

obs_path, out_path = sys.argv[1], sys.argv[2]

with open(obs_path) as f:
    benchmarks = json.load(f)["benchmarks"]

def to_ns(b):
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return b["real_time"] * scale

results = []
times = {}
for b in benchmarks:
    if b.get("run_type") == "aggregate":
        continue
    # e.g. BM_CounterSharded/threads:8; unsuffixed benches are 1 thread.
    name = b["name"]
    op = name.split("/")[0]
    threads = 1
    if "/threads:" in name:
        threads = int(name.rsplit("/threads:", 1)[1])
    ns = to_ns(b)
    times[(op, threads)] = ns
    results.append({"op": op, "threads": threads, "ns_per_op": ns})

report = {"results": results}
# Headline 1: sharded counter vs the single shared atomic it replaced,
# solo and under contention. (On a single-core runner the contended cell
# never exercises real cache-line ping-pong; the solo ratio is the one
# the acceptance gate reads.)
atomic1 = times.get(("BM_CounterSingleAtomic", 1))
sharded1 = times.get(("BM_CounterSharded", 1))
atomic8 = times.get(("BM_CounterSingleAtomic", 8))
sharded8 = times.get(("BM_CounterSharded", 8))
if atomic1 and sharded1:
    report["sharded_solo_ns_vs_atomic_ns"] = [sharded1, atomic1]
if atomic8 and sharded8:
    report["sharded_contended_speedup_vs_atomic"] = atomic8 / sharded8
# Headline 2: what an instrumented hot path pays when telemetry is off.
gate = times.get(("BM_CounterMacroDisabled", 1))
if gate is not None:
    report["disabled_gate_ns"] = gate

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

if atomic1 and sharded1:
    print(f"obs: sharded counter solo {sharded1:.1f}ns vs atomic "
          f"{atomic1:.1f}ns; contended x8 "
          f"{report.get('sharded_contended_speedup_vs_atomic', 0):.2f}x")
print(f"wrote {out_path} ({len(results)} records)")
PY

python3 - "$TMP/serve.json" "$OPENLOOP_OUT" <<'PY'
import json, sys

serve_path, out_path = sys.argv[1], sys.argv[2]

with open(serve_path) as f:
    benchmarks = json.load(f)["benchmarks"]

ARRIVALS = {0: "poisson", 1: "bursty", 2: "heavytail"}
KNEE_FRACTION = 0.95  # achieved >= 95% of offered counts as keeping up

results = []
for b in benchmarks:
    if b.get("run_type") == "aggregate":
        continue
    # e.g. BM_ServeOpenLoop/16000/64/0/real_time — the numeric segments
    # are {offered rate per second, max_batch, arrival kind}.
    if not b["name"].startswith("BM_ServeOpenLoop/"):
        continue
    args = [int(p) for p in b["name"].split("/") if p.isdigit()]
    if len(args) != 3 or "items_per_second" not in b:
        continue
    rate, max_batch, arrival = args
    results.append({
        "offered_per_s": rate,
        "max_batch": max_batch,
        "arrival": ARRIVALS.get(arrival, str(arrival)),
        "achieved_per_s": b["items_per_second"],
        "p50_us": b.get("p50_us"),
        "p99_us": b.get("p99_us"),
        "p999_us": b.get("p999_us"),
    })

report = {"results": results}

# Saturation knee per configuration: the highest swept offered rate the
# poisson sweep still keeps up with (achieved >= KNEE_FRACTION x offered).
knees = {}
for r in results:
    if r["arrival"] != "poisson":
        continue
    if r["achieved_per_s"] >= KNEE_FRACTION * r["offered_per_s"]:
        key = r["max_batch"]
        knees[key] = max(knees.get(key, 0), r["offered_per_s"])
report["knee_per_s"] = {f"max_batch_{k}": v for k, v in sorted(knees.items())}

# Headline: batch-1 vs the batched fleet at the first swept rate beyond
# the batch-1 knee — the regime micro-batching exists for. Beyond its
# knee batch-1's open-loop backlog grows for the whole run, so its p99.9
# explodes; the batched cells at the same offered rate stay bounded.
batch1_knee = knees.get(1)
batched = sorted(k for k in knees if k > 1)
if batch1_knee is not None and batched:
    cells = {}
    for r in results:
        if r["arrival"] == "poisson":
            cells[(r["offered_per_s"], r["max_batch"])] = r
    beyond = sorted(rate for rate, mb in cells
                    if mb == 1 and rate > batch1_knee)
    if beyond:
        rate = beyond[0]
        base = cells.get((rate, 1))
        best = cells.get((rate, batched[-1]))
        if base and best:
            report["batch1_knee_per_s"] = batch1_knee
            report["beyond_knee_rate_per_s"] = rate
            report["beyond_knee_achieved_ratio"] = (
                best["achieved_per_s"] / base["achieved_per_s"])
            if base.get("p999_us") and best.get("p999_us"):
                report["beyond_knee_p999_ratio"] = (
                    base["p999_us"] / best["p999_us"])
            print(f"open-loop: batch-1 knee {batch1_knee} req/s; at "
                  f"{rate} req/s batched achieves "
                  f"{report['beyond_knee_achieved_ratio']:.2f}x the "
                  f"batch-1 rate, p99.9 "
                  f"{report.get('beyond_knee_p999_ratio', 0):.1f}x lower")

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(results)} records)")
PY
