// tools/lint_engine.hpp
//
// Rule engine for darl_lint, the project-specific static-analysis pass.
// Header-only and dependency-free so tests/test_lint.cpp can drive the
// rules against in-memory fixture snippets without touching the
// filesystem; tools/darl_lint.cpp adds the directory walk and reporting.
//
// The engine works on "stripped" source: comments, string literals and
// character literals are blanked out (line structure preserved), so a
// banned pattern inside a comment or a string — including the fixture
// snippets in the linter's own tests — never counts as a finding.
//
// Rules (ids are what the suppression file references):
//   banned-random     std::rand / srand / std::random_device anywhere
//   wall-clock        argless now() / system_clock / clock_gettime /
//                     gettimeofday outside stopwatch/obs/log
//   unordered-iter    iteration over a declared unordered_map/unordered_set
//   raw-new-delete    raw new / delete expressions (= delete is fine)
//   float-literal     float literals inside ode/ linalg/ rl/ nn/
//   std-endl          std::endl (flushes; use '\n')
//   pragma-once       .hpp file without #pragma once
//   catch-all         catch (...) whose handler neither rethrows nor
//                     records via std::current_exception
//   detached-thread   std::thread::detach()
//   thread-outside-pool  any std::thread use inside src/darl/linalg/ or
//                     src/darl/nn/ except in linalg/thread_pool.{hpp,cpp}
//                     — the numeric kernels must parallelize through the
//                     one sanctioned linalg::ThreadPool (fixed tile
//                     ownership keeps results bitwise-deterministic; an
//                     ad-hoc thread has no such schedule)
//   heap-alloc-in-kernel  new / .resize( / .push_back( inside the body of
//                     a function named *_batch, gemm or *dispatch* — the
//                     batched hot loops and the serve scheduler's dispatch
//                     path must stay allocation-free; workspace growth
//                     belongs in ensure_*/reshape helpers called before
//                     the kernel (suppressible for one-time growth)
//   metric-name       instrument names and label keys passed to
//                     .counter("...") / .gauge("...") / .histogram("...")
//                     or the DARL_COUNTER_ADD / DARL_GAUGE_* macros must
//                     match [a-z0-9_.]+ — the registry rejects anything
//                     else at runtime; this catches it statically. Unlike
//                     every other rule this one scans the RAW source (the
//                     names live inside string literals, which the
//                     stripper blanks), so a registration call quoted in a
//                     comment counts too: keep examples well-formed.
//   metric-lookup-in-kernel  Registry::global() or a .counter(/.gauge(/
//                     .histogram( lookup inside a *_batch / gemm /
//                     *dispatch* body — instrument lookup takes the
//                     registration mutex and a map walk; hot loops must
//                     resolve instruments once outside (the DARL_* macros'
//                     function-local static, or a static helper)
//   naked-socket-call ::recv( / ::send( / ::accept( anywhere outside
//                     src/darl/net/ — raw socket I/O forgets one of
//                     MSG_NOSIGNAL, the EINTR retry, the partial-transfer
//                     loop or the EOF-vs-error split; go through the
//                     darl/net/socket.hpp helpers (send_all, recv_some,
//                     recv_exact, recv_until_eof, accept_retry), which is
//                     the repo's single home for those loops
//
// Suppression file format (tools/darl_lint.supp): one entry per line,
//   <rule-id> <path-suffix> -- <justification>
// Blank lines and lines starting with '#' are ignored. An entry matches
// every finding of <rule-id> in any scanned file whose normalized path
// ends with <path-suffix>. Entries that match nothing are themselves
// errors, so the file can only shrink when code gets cleaner.

#pragma once

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <regex>
#include <string>
#include <string_view>
#include <vector>

namespace darl::lint {

struct Finding {
  std::string rule;
  std::string path;
  std::size_t line = 0;  ///< 1-based line number
  std::string message;
};

struct Suppression {
  std::string rule;
  std::string path_suffix;
  std::string justification;
  std::size_t line = 0;  ///< 1-based line in the suppression file
  bool used = false;     ///< set by apply_suppressions
};

/// Project-wide context shared across files: names declared anywhere as
/// unordered containers, so iteration in a .cpp over a member declared in
/// its header is still caught.
struct ScanContext {
  std::vector<std::string> unordered_names;
};

// ---------------------------------------------------------------------------
// Source preparation

/// Blank out comments, string literals (including raw strings) and
/// character literals, preserving line structure and column positions.
inline std::string strip_noncode(const std::string& src) {
  enum class State { Code, LineComment, BlockComment, String, Char, RawString };
  std::string out;
  out.reserve(src.size());
  State state = State::Code;
  std::string raw_end;        // ")delim\"" terminator for the raw string
  char prev_code = '\0';      // last code character emitted (for 1'000)
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          if (prev_code == 'R') {
            // R"delim( ... )delim"  — find the delimiter.
            std::size_t paren = src.find('(', i + 1);
            if (paren == std::string::npos) paren = src.size();
            raw_end = ")" + src.substr(i + 1, paren - i - 1) + "\"";
            state = State::RawString;
          } else {
            state = State::String;
          }
          out += ' ';
        } else if (c == '\'' &&
                   !(std::isalnum(static_cast<unsigned char>(prev_code)) ||
                     prev_code == '_')) {
          // A quote after an identifier/digit is a digit separator
          // (1'000'000) or ill-formed anyway; only open a char literal
          // after a non-word character.
          state = State::Char;
          out += ' ';
        } else {
          out += c;
          if (!std::isspace(static_cast<unsigned char>(c))) prev_code = c;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          state = State::Code;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          state = State::Code;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::String:
      case State::Char:
        if (c == '\\') {
          out += ' ';
          if (next != '\0') {
            out += next == '\n' ? '\n' : ' ';
            ++i;
          }
        } else if ((state == State::String && c == '"') ||
                   (state == State::Char && c == '\'')) {
          state = State::Code;
          prev_code = '\0';
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::RawString:
        if (src.compare(i, raw_end.size(), raw_end) == 0) {
          out.append(raw_end.size(), ' ');
          i += raw_end.size() - 1;
          state = State::Code;
          prev_code = '\0';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

inline std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Use '/' separators regardless of platform so suffix matching and the
/// per-rule path scoping behave identically everywhere.
inline std::string normalize_path(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

// ---------------------------------------------------------------------------
// Declaration harvesting (for unordered-iter)

/// Collect identifiers declared with an unordered_map/unordered_set type
/// in (stripped) source: `std::unordered_set<std::string> seen_keys_;`
/// records "seen_keys_". Heuristic: the identifier that follows the
/// closing '>' of an unordered_* template-id.
inline void collect_unordered_names(const std::string& stripped,
                                    std::vector<std::string>& names) {
  static const std::regex decl_re(
      R"(\bunordered_(?:map|set|multimap|multiset)\s*<)");
  auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), decl_re);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    // Walk to the matching '>' of the template argument list.
    std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
    int depth = 1;
    while (pos < stripped.size() && depth > 0) {
      if (stripped[pos] == '<') ++depth;
      if (stripped[pos] == '>') --depth;
      ++pos;
    }
    if (depth != 0) continue;
    // Skip whitespace and reference/pointer decorations.
    while (pos < stripped.size() &&
           (std::isspace(static_cast<unsigned char>(stripped[pos])) ||
            stripped[pos] == '&' || stripped[pos] == '*')) {
      ++pos;
    }
    std::string name;
    while (pos < stripped.size() &&
           (std::isalnum(static_cast<unsigned char>(stripped[pos])) ||
            stripped[pos] == '_')) {
      name += stripped[pos++];
    }
    if (name.empty()) continue;
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
}

// ---------------------------------------------------------------------------
// Rules

namespace detail {

inline bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

/// Files allowed to read the wall clock: the stopwatch is the one timing
/// primitive, and obs/log stamp diagnostics with it.
inline bool wall_clock_whitelisted(const std::string& path) {
  return contains(path, "common/stopwatch") || contains(path, "/obs/") ||
         contains(path, "common/log");
}

/// Directories holding double-precision numeric code where a stray float
/// literal silently truncates.
inline bool double_precision_path(const std::string& path) {
  return contains(path, "/ode/") || contains(path, "/linalg/") ||
         contains(path, "/rl/") || contains(path, "/nn/");
}

/// Scope of the thread-outside-pool rule: the deterministic numeric
/// libraries, minus the one file pair that *is* the sanctioned pool.
inline bool thread_restricted_path(const std::string& path) {
  if (!contains(path, "/linalg/") && !contains(path, "/nn/")) return false;
  return !contains(path, "linalg/thread_pool.");
}

/// Scope of the naked-socket-call rule: everywhere except darl/net, the
/// one directory allowed to touch the raw POSIX socket calls.
inline bool socket_restricted_path(const std::string& path) {
  return !contains(path, "/darl/net/");
}

inline bool is_header(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

/// Scan the handler block that starts at `pos` (the position of the
/// catch keyword) for evidence the exception is rethrown or recorded.
inline bool catch_block_records(const std::string& stripped, std::size_t pos) {
  const std::size_t open = stripped.find('{', pos);
  if (open == std::string::npos) return false;
  int depth = 0;
  std::size_t end = open;
  for (; end < stripped.size(); ++end) {
    if (stripped[end] == '{') ++depth;
    if (stripped[end] == '}' && --depth == 0) break;
  }
  static const std::regex records_re(
      R"(\bthrow\b|\bcurrent_exception\b|\brethrow_exception\b)");
  const std::string block = stripped.substr(open, end - open + 1);
  return std::regex_search(block, records_re);
}

/// Starting from `paren` (the '(' that follows a gemm / *_batch name),
/// decide whether this is a function *definition* and, if so, return the
/// [body_open, body_close] brace positions of its body. Declarations and
/// call expressions are rejected: between the parameter list's ')' and the
/// body's '{' only whitespace and word characters (const, noexcept,
/// override, ...) may appear — a ';', ',' or any operator character means
/// there is no body here.
inline bool kernel_body_range(const std::string& stripped, std::size_t paren,
                              std::size_t& body_open,
                              std::size_t& body_close) {
  int depth = 0;
  std::size_t pos = paren;
  for (; pos < stripped.size(); ++pos) {
    if (stripped[pos] == '(') ++depth;
    if (stripped[pos] == ')' && --depth == 0) break;
  }
  if (pos >= stripped.size()) return false;
  for (++pos; pos < stripped.size(); ++pos) {
    const char c = stripped[pos];
    if (c == '{') break;
    if (!std::isspace(static_cast<unsigned char>(c)) &&
        !std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  if (pos >= stripped.size()) return false;
  body_open = pos;
  depth = 0;
  for (; pos < stripped.size(); ++pos) {
    if (stripped[pos] == '{') ++depth;
    if (stripped[pos] == '}' && --depth == 0) break;
  }
  if (pos >= stripped.size()) return false;
  body_close = pos;
  return true;
}

}  // namespace detail

/// Run every rule over one file. `path` is only used for scoping and
/// reporting; `content` is the raw source text.
inline std::vector<Finding> scan_source(const std::string& path_in,
                                        const std::string& content,
                                        const ScanContext& ctx = {}) {
  const std::string path = normalize_path(path_in);
  const std::string stripped = strip_noncode(content);
  const std::vector<std::string> lines = split_lines(stripped);
  std::vector<Finding> findings;
  auto add = [&](const char* rule, std::size_t line_no, std::string msg) {
    findings.push_back(Finding{rule, path, line_no, std::move(msg)});
  };

  // File-level names for unordered-iter: project-wide context plus any
  // declaration local to this file.
  std::vector<std::string> unordered = ctx.unordered_names;
  collect_unordered_names(stripped, unordered);

  static const std::regex random_re(
      R"(\b(?:std\s*::\s*)?s?rand\s*\(|\brandom_device\b)");
  static const std::regex wall_clock_re(
      R"(\bnow\s*\(\s*\)|\bsystem_clock\b|\bclock_gettime\b|\bgettimeofday\b)");
  static const std::regex new_re(R"(\bnew\b)");
  static const std::regex delete_re(R"(\bdelete\b)");
  static const std::regex deleted_fn_re(R"(=\s*delete\b)");
  static const std::regex float_literal_re(
      R"(\b(?:(?:\d+\.\d*|\d*\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fF]\b)");
  static const std::regex endl_re(R"(\bstd\s*::\s*endl\b)");
  static const std::regex catch_all_re(R"(\bcatch\s*\(\s*\.\.\.\s*\))");
  static const std::regex detach_re(R"(\.\s*detach\s*\(\s*\))");
  static const std::regex std_thread_re(R"(\bstd\s*::\s*thread\b)");
  static const std::regex naked_socket_re(R"(::\s*(?:recv|send|accept)\s*\()");
  static const std::regex range_for_re(R"(\bfor\s*\()");
  static const std::regex pragma_once_re(R"(#\s*pragma\s+once\b)");

  const bool check_wall_clock = !detail::wall_clock_whitelisted(path);
  const bool check_float = detail::double_precision_path(path);
  const bool check_thread = detail::thread_restricted_path(path);
  const bool check_socket = detail::socket_restricted_path(path);

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t line_no = i + 1;
    if (line.empty()) continue;

    if (std::regex_search(line, random_re)) {
      add("banned-random", line_no,
          "nondeterminism source (rand/srand/random_device); draw from a "
          "seeded darl::Rng instead");
    }
    if (check_wall_clock && std::regex_search(line, wall_clock_re)) {
      add("wall-clock", line_no,
          "wall-clock read outside stopwatch/obs/log; route host timing "
          "through darl::Stopwatch");
    }
    if (std::regex_search(line, new_re)) {
      add("raw-new-delete", line_no,
          "raw 'new'; use std::make_unique / containers (suppress only for "
          "intentionally leaked singletons)");
    }
    if (std::regex_search(line, delete_re) &&
        !std::regex_search(line, deleted_fn_re)) {
      add("raw-new-delete", line_no,
          "raw 'delete'; ownership belongs in a smart pointer or container");
    }
    if (check_float && std::regex_search(line, float_literal_re)) {
      add("float-literal", line_no,
          "float literal in double-precision numeric code; write a double "
          "literal");
    }
    if (std::regex_search(line, endl_re)) {
      add("std-endl", line_no, "std::endl flushes the stream; use '\\n'");
    }
    if (std::regex_search(line, detach_re)) {
      add("detached-thread", line_no,
          "detached thread outside the sanctioned study watchdog site");
    }
    if (check_thread && std::regex_search(line, std_thread_re)) {
      add("thread-outside-pool", line_no,
          "std::thread in linalg/nn outside linalg::ThreadPool; numeric "
          "kernels must parallelize through the pool's fixed tile-ownership "
          "schedule (linalg/thread_pool.hpp) to stay bitwise-deterministic");
    }
    if (check_socket && std::regex_search(line, naked_socket_re)) {
      add("naked-socket-call", line_no,
          "raw recv/send/accept outside darl/net; use the socket.hpp "
          "helpers (send_all / recv_some / recv_exact / recv_until_eof / "
          "accept_retry) — they own MSG_NOSIGNAL, EINTR retry and the "
          "partial-transfer loops");
    }

    // unordered-iter: a range-for whose range expression names a declared
    // unordered container, or an explicit name.begin() iterator loop.
    std::smatch for_m;
    if (std::regex_search(line, for_m, range_for_re)) {
      const std::string rest = for_m.suffix().str();
      // The range-for separator is a single ':' that is not part of '::'.
      std::size_t colon = std::string::npos;
      for (std::size_t p = 0; p < rest.size(); ++p) {
        if (rest[p] != ':') continue;
        const bool dbl = (p + 1 < rest.size() && rest[p + 1] == ':') ||
                         (p > 0 && rest[p - 1] == ':');
        if (!dbl) {
          colon = p;
          break;
        }
      }
      if (colon != std::string::npos) {
        const std::string range_expr = rest.substr(colon + 1);
        for (const auto& name : unordered) {
          const std::regex name_re("\\b" + name + "\\b");
          if (std::regex_search(range_expr, name_re)) {
            add("unordered-iter", line_no,
                "iteration over unordered container '" + name +
                    "'; hash order is nondeterministic — copy into a sorted "
                    "container before feeding output or metrics");
            break;
          }
        }
      }
    }
    for (const auto& name : unordered) {
      const std::regex begin_re("\\b" + name + R"(\s*\.\s*c?begin\s*\()");
      if (std::regex_search(line, begin_re)) {
        add("unordered-iter", line_no,
            "iterator over unordered container '" + name +
                "'; hash order is nondeterministic — copy into a sorted "
                "container before feeding output or metrics");
        break;
      }
    }
  }

  // catch-all needs to look past the catch line, so it runs on the whole
  // stripped text rather than line by line.
  auto catch_begin =
      std::sregex_iterator(stripped.begin(), stripped.end(), catch_all_re);
  for (auto it = catch_begin; it != std::sregex_iterator(); ++it) {
    const std::size_t pos = static_cast<std::size_t>(it->position());
    if (!detail::catch_block_records(stripped, pos)) {
      const std::size_t line_no =
          1 + static_cast<std::size_t>(
                  std::count(stripped.begin(),
                             stripped.begin() + static_cast<std::ptrdiff_t>(pos),
                             '\n'));
      add("catch-all", line_no,
          "catch (...) neither rethrows nor records the exception; use "
          "'throw;' or capture std::current_exception()");
    }
  }

  // heap-alloc-in-kernel: gemm and *_batch bodies are the batched hot
  // loops, and *dispatch* bodies are the serve scheduler's per-request
  // path; none of them may allocate. Like catch-all, this looks past the
  // signature line, so it runs on the whole stripped text.
  static const std::regex kernel_def_re(
      R"(\b(\w*_batch|gemm|\w*dispatch\w*)\s*\()");
  static const std::regex heap_alloc_re(
      R"(\bnew\b|[.>]\s*resize\s*\(|[.>]\s*push_back\s*\()");
  auto kernel_begin =
      std::sregex_iterator(stripped.begin(), stripped.end(), kernel_def_re);
  for (auto it = kernel_begin; it != std::sregex_iterator(); ++it) {
    const std::size_t paren =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    std::size_t body_open = 0, body_close = 0;
    if (!detail::kernel_body_range(stripped, paren, body_open, body_close)) {
      continue;  // declaration or call, not a definition
    }
    const std::string body =
        stripped.substr(body_open, body_close - body_open + 1);
    auto alloc_begin =
        std::sregex_iterator(body.begin(), body.end(), heap_alloc_re);
    for (auto am = alloc_begin; am != std::sregex_iterator(); ++am) {
      const std::size_t abs =
          body_open + static_cast<std::size_t>(am->position());
      const std::size_t line_no =
          1 + static_cast<std::size_t>(
                  std::count(stripped.begin(),
                             stripped.begin() + static_cast<std::ptrdiff_t>(abs),
                             '\n'));
      add("heap-alloc-in-kernel", line_no,
          "heap allocation in batched kernel '" + it->str(1) +
              "'; grow workspaces via an ensure_*/reshape helper before the "
              "hot loop (suppress only for one-time workspace growth)");
    }
  }

  // metric-lookup-in-kernel: like heap-alloc-in-kernel, but for instrument
  // lookup — Registry::global() plus the name->instrument map walk under
  // the registration mutex must not run per batch/request. The DARL_*
  // macros are fine (they cache the reference in a function-local static
  // and spell COUNTER/GAUGE in upper case, so the lower-case patterns
  // below do not match them).
  static const std::regex metric_lookup_re(
      R"(\bRegistry\s*::\s*global\b|[.>]\s*(?:counter|gauge|histogram)\s*\()");
  for (auto it = kernel_begin; it != std::sregex_iterator(); ++it) {
    const std::size_t paren =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    std::size_t body_open = 0, body_close = 0;
    if (!detail::kernel_body_range(stripped, paren, body_open, body_close)) {
      continue;
    }
    const std::string body =
        stripped.substr(body_open, body_close - body_open + 1);
    auto lookup_begin =
        std::sregex_iterator(body.begin(), body.end(), metric_lookup_re);
    for (auto lm = lookup_begin; lm != std::sregex_iterator(); ++lm) {
      const std::size_t abs =
          body_open + static_cast<std::size_t>(lm->position());
      const std::size_t line_no =
          1 + static_cast<std::size_t>(
                  std::count(stripped.begin(),
                             stripped.begin() + static_cast<std::ptrdiff_t>(abs),
                             '\n'));
      add("metric-lookup-in-kernel", line_no,
          "instrument lookup in hot function '" + it->str(1) +
              "'; resolve the instrument once outside the loop (DARL_* "
              "macro or a function-local static)");
    }
  }

  // metric-name: validate instrument names and label keys at the call
  // site. Scans the RAW content — the names are string literals, which
  // strip_noncode blanks. Tolerates an escaping backslash before the
  // quotes so registration calls quoted inside fixture string literals
  // are validated the same way as real code.
  static const std::regex metric_reg_re(
      R"([.>]\s*(?:counter|gauge|histogram)\s*\(\s*\\?"([^"\\]*)\\?")");
  static const std::regex metric_macro_re(
      R"(\bDARL_(?:COUNTER_ADD|GAUGE_ADD|GAUGE_SET)\s*\(\s*\\?"([^"\\]*)\\?")");
  static const std::regex label_key_re(R"(\{\s*\\?"([^"\\]*)\\?"\s*,)");
  auto valid_name = [](const std::string& s) {
    if (s.empty()) return false;
    for (const char c : s) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '_' || c == '.';
      if (!ok) return false;
    }
    return true;
  };
  auto raw_line_of = [&content](std::size_t pos) {
    return 1 + static_cast<std::size_t>(
                   std::count(content.begin(),
                              content.begin() + static_cast<std::ptrdiff_t>(pos),
                              '\n'));
  };
  auto check_metric_name = [&](const std::sregex_iterator& m,
                               bool scan_labels) {
    const std::string name = m->str(1);
    const std::size_t pos = static_cast<std::size_t>(m->position());
    if (!valid_name(name)) {
      add("metric-name", raw_line_of(pos),
          "instrument name '" + name +
              "' violates [a-z0-9_.]+; the registry rejects it at runtime");
    }
    if (!scan_labels) return;
    // Label keys live between this call's name argument and the end of
    // the statement: validate every {"key", ...} pair up to the next ';'.
    const std::size_t arg_begin =
        pos + static_cast<std::size_t>(m->length());
    std::size_t arg_end = content.find(';', arg_begin);
    if (arg_end == std::string::npos) arg_end = content.size();
    const std::string args = content.substr(arg_begin, arg_end - arg_begin);
    auto lk = std::sregex_iterator(args.begin(), args.end(), label_key_re);
    for (; lk != std::sregex_iterator(); ++lk) {
      const std::string key = lk->str(1);
      if (!valid_name(key)) {
        add("metric-name",
            raw_line_of(arg_begin + static_cast<std::size_t>(lk->position())),
            "label key '" + key +
                "' violates [a-z0-9_.]+; the registry rejects it at runtime");
      }
    }
  };
  for (auto it = std::sregex_iterator(content.begin(), content.end(),
                                      metric_reg_re);
       it != std::sregex_iterator(); ++it) {
    check_metric_name(it, /*scan_labels=*/true);
  }
  for (auto it = std::sregex_iterator(content.begin(), content.end(),
                                      metric_macro_re);
       it != std::sregex_iterator(); ++it) {
    check_metric_name(it, /*scan_labels=*/false);
  }

  if (detail::is_header(path) && !std::regex_search(stripped, pragma_once_re)) {
    add("pragma-once", 1, "header is missing #pragma once");
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

// ---------------------------------------------------------------------------
// Suppressions

/// Parse a suppression file. Malformed lines are reported into `errors`
/// (message includes the 1-based line number) rather than silently skipped.
inline std::vector<Suppression> parse_suppressions(
    const std::string& content, std::vector<std::string>& errors) {
  std::vector<Suppression> out;
  const std::vector<std::string> lines = split_lines(content);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const std::size_t sep = line.find(" -- ");
    if (sep == std::string::npos) {
      errors.push_back("suppression line " + std::to_string(i + 1) +
                       ": missing ' -- <justification>'");
      continue;
    }
    std::string head = line.substr(0, sep);
    std::string why = line.substr(sep + 4);
    const std::size_t why_b = why.find_first_not_of(" \t");
    why = why_b == std::string::npos ? "" : why.substr(why_b);
    std::size_t ws = head.find_first_of(" \t", first);
    if (ws == std::string::npos || why.empty()) {
      errors.push_back("suppression line " + std::to_string(i + 1) +
                       ": expected '<rule> <path-suffix> -- <justification>'");
      continue;
    }
    Suppression s;
    s.rule = head.substr(first, ws - first);
    const std::size_t path_b = head.find_first_not_of(" \t", ws);
    if (path_b == std::string::npos) {
      errors.push_back("suppression line " + std::to_string(i + 1) +
                       ": missing path suffix");
      continue;
    }
    const std::size_t path_e = head.find_last_not_of(" \t");
    s.path_suffix = normalize_path(head.substr(path_b, path_e - path_b + 1));
    s.justification = why;
    s.line = i + 1;
    out.push_back(std::move(s));
  }
  return out;
}

inline bool suppression_matches(const Suppression& s, const Finding& f) {
  if (s.rule != f.rule) return false;
  if (s.path_suffix.size() > f.path.size()) return false;
  return f.path.compare(f.path.size() - s.path_suffix.size(),
                        s.path_suffix.size(), s.path_suffix) == 0;
}

/// A finding plus whether a suppression claimed it — the unit both tools'
/// --format=json output serializes, so suppressed findings stay visible
/// to CI/editor consumers instead of silently vanishing.
struct AnnotatedFinding {
  Finding finding;
  bool suppressed = false;
};

/// Match every finding against the suppression list, marking matching
/// suppressions as used. Order of the input findings is preserved.
inline std::vector<AnnotatedFinding> annotate_suppressions(
    std::vector<Finding> findings, std::vector<Suppression>& suppressions) {
  std::vector<AnnotatedFinding> out;
  out.reserve(findings.size());
  for (auto& f : findings) {
    AnnotatedFinding af;
    for (auto& s : suppressions) {
      if (suppression_matches(s, f)) {
        s.used = true;
        af.suppressed = true;
      }
    }
    af.finding = std::move(f);
    out.push_back(std::move(af));
  }
  return out;
}

/// Partition findings into (returned) unsuppressed findings, marking every
/// matching suppression as used.
inline std::vector<Finding> apply_suppressions(
    std::vector<Finding> findings, std::vector<Suppression>& suppressions) {
  std::vector<Finding> unsuppressed;
  for (auto& af :
       annotate_suppressions(std::move(findings), suppressions)) {
    if (!af.suppressed) unsuppressed.push_back(std::move(af.finding));
  }
  return unsuppressed;
}

// ---------------------------------------------------------------------------
// JSON output (--format=json in darl_lint / darl_verify)

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Stable machine-readable schema shared by both tools: a JSON array of
/// {rule, file, line, message, suppressed} objects, one per finding,
/// suppressed findings included.
inline std::string findings_json(const std::vector<AnnotatedFinding>& all) {
  std::string out = "[";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Finding& f = all[i].finding;
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"rule\": \"" + json_escape(f.rule) + "\", \"file\": \"" +
           json_escape(f.path) +
           "\", \"line\": " + std::to_string(f.line) + ", \"message\": \"" +
           json_escape(f.message) + "\", \"suppressed\": " +
           (all[i].suppressed ? "true" : "false") + "}";
  }
  out += all.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace darl::lint
