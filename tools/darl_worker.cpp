// darl_worker — one process of the multi-process actor–learner runtime
// (DESIGN.md §17).
//
//   darl_worker --role actor --connect EP --node N [options]
//   darl_worker --role learner --listen EP --nodes N [options]
//
// The learner role runs one RLlib-style training job end to end: it
// listens on EP ("tcp:PORT" or "unix:/path.sock"), waits for nodes-1
// actor processes (or spawns them itself with --spawn-actors 1), streams
// versioned weights out and trajectory batches in, and prints the
// TrainResult summary. The actor role connects to a learner, receives
// its Job, and serves collection until Stop.
//
// Actor options:
//   --connect EP          learner endpoint (required)
//   --node N              which node this actor plays, >= 1 (required)
//   --connect-timeout S   deadline to reach the learner (default 30)
//   --io-timeout S        per-syscall I/O timeout (default 120)
//
// Learner options:
//   --listen EP           endpoint to bind (default unix socket in /tmp)
//   --nodes N             deployment size incl. the learner (default 2)
//   --cores N             workers per node (default 2)
//   --timesteps N         total training timesteps (default 4096)
//   --batch-total N       transitions per learner update (default 1024)
//   --algo {ppo|sac}      algorithm (default ppo)
//   --seed N              training seed (default 1)
//   --spawn-actors {0|1}  spawn the remote actors itself (default 1)
//   --obs-port P          live /metrics endpoint on 127.0.0.1:P while
//                         training (0 = ephemeral; port is printed)
//   --obs-linger-s S      keep the exporter up S seconds after the run
//                         so harnesses (check.sh) can scrape the final
//                         net_* counters before the process exits
//   --connect-timeout S / --io-timeout S   as above

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "darl/airdrop/airdrop_env.hpp"
#include "darl/airdrop/spec.hpp"
#include "darl/common/error.hpp"
#include "darl/common/log.hpp"
#include "darl/frameworks/distributed.hpp"
#include "darl/obs/export.hpp"
#include "darl/obs/metrics.hpp"

namespace {

using namespace darl;

struct CliOptions {
  std::string role;
  std::string connect;
  std::string listen;
  std::size_t node = 0;
  std::size_t nodes = 2;
  std::size_t cores = 2;
  std::size_t timesteps = 4096;
  std::size_t batch_total = 1024;
  std::string algo = "ppo";
  std::uint64_t seed = 1;
  bool spawn_actors = true;
  int obs_port = -1;
  double obs_linger_s = 0.0;
  double connect_timeout_s = 30.0;
  double io_timeout_s = 120.0;
  bool verbose = false;
};

[[noreturn]] void usage(int code) {
  std::printf(
      "darl_worker — multi-process actor–learner runtime\n"
      "\n"
      "  --role {actor|learner}   (required)\n"
      "\n"
      "actor:   --connect EP --node N [--connect-timeout S] [--io-timeout S]\n"
      "learner: [--listen EP] [--nodes N] [--cores N] [--timesteps N]\n"
      "         [--batch-total N] [--algo ppo|sac] [--seed N]\n"
      "         [--spawn-actors 0|1] [--obs-port P] [--obs-linger-s S]\n"
      "         [--connect-timeout S] [--io-timeout S]\n");
  std::exit(code);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) usage(0);
    else if (!std::strcmp(a, "--role")) opt.role = need_value(i);
    else if (!std::strcmp(a, "--connect")) opt.connect = need_value(i);
    else if (!std::strcmp(a, "--listen")) opt.listen = need_value(i);
    else if (!std::strcmp(a, "--node")) opt.node = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--nodes")) opt.nodes = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--cores")) opt.cores = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--timesteps")) opt.timesteps = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--batch-total")) opt.batch_total = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--algo")) opt.algo = need_value(i);
    else if (!std::strcmp(a, "--seed")) opt.seed = std::strtoull(need_value(i), nullptr, 10);
    else if (!std::strcmp(a, "--spawn-actors")) opt.spawn_actors = std::strtol(need_value(i), nullptr, 10) != 0;
    else if (!std::strcmp(a, "--obs-port"))
      opt.obs_port = static_cast<int>(std::strtol(need_value(i), nullptr, 10));
    else if (!std::strcmp(a, "--obs-linger-s")) opt.obs_linger_s = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--connect-timeout")) opt.connect_timeout_s = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--io-timeout")) opt.io_timeout_s = std::strtod(need_value(i), nullptr);
    else if (!std::strcmp(a, "--verbose")) opt.verbose = true;
    else {
      std::fprintf(stderr, "unknown option '%s'\n", a);
      usage(2);
    }
  }
  return opt;
}

/// The worker binary's env-spec resolver: recognizes the airdrop codec
/// (the one case study this tree ships). A foreign spec is a protocol
/// error, not a crash.
env::EnvFactory resolve_env_spec(const std::string& spec) {
  DARL_CHECK(airdrop::is_airdrop_spec(spec),
             "unrecognized env spec (expected '"
                 << airdrop::kAirdropSpecMagic << "')");
  return airdrop::airdrop_factory_from_spec(spec);
}

int run_actor_role(const CliOptions& opt) {
  if (opt.connect.empty() || opt.node == 0) {
    std::fprintf(stderr, "--role actor needs --connect EP and --node N>=1\n");
    usage(2);
  }
  const std::size_t iterations = frameworks::run_actor(
      opt.connect, opt.node, resolve_env_spec, opt.connect_timeout_s,
      opt.io_timeout_s);
  std::printf("actor node %zu: served %zu iteration(s)\n", opt.node,
              iterations);
  return 0;
}

int run_learner_role(const CliOptions& opt) {
  if (opt.nodes < 2) {
    std::fprintf(stderr, "--role learner needs --nodes >= 2\n");
    usage(2);
  }
  std::unique_ptr<obs::Exporter> exporter;
  if (opt.obs_port >= 0) {
    obs::set_metrics_enabled(true);
    obs::ExporterOptions ex_opt;
    ex_opt.port = opt.obs_port;
    exporter = std::make_unique<obs::Exporter>(ex_opt);
    exporter->start();
    std::printf("obs: exporter listening on 127.0.0.1:%d\n", exporter->port());
    std::fflush(stdout);
  }

  // The study-default environment (wind off, lowered drop altitude), the
  // same template AirdropStudyOptions uses.
  airdrop::AirdropConfig env_cfg;
  env_cfg.wind_enabled = false;
  env_cfg.gusts_enabled = false;
  env_cfg.altitude_min = 30.0;
  env_cfg.altitude_max = 300.0;
  frameworks::TrainRequest request;
  if (opt.algo == "ppo") {
    request.algo.kind = rl::AlgoKind::PPO;
  } else if (opt.algo == "sac") {
    request.algo.kind = rl::AlgoKind::SAC;
    env_cfg.action_mode = airdrop::ActionMode::Continuous;
  } else {
    std::fprintf(stderr, "--algo must be 'ppo' or 'sac'\n");
    usage(2);
  }
  request.env_factory = airdrop::make_airdrop_factory(env_cfg);
  request.env_spec = airdrop::encode_airdrop_spec(env_cfg);
  request.deployment.nodes = opt.nodes;
  request.deployment.cores_per_node = opt.cores;
  request.total_timesteps = opt.timesteps;
  request.train_batch_total = opt.batch_total;
  request.seed = opt.seed;

  frameworks::DistributedOptions dist;
  dist.enabled = true;
  dist.endpoint = opt.listen;
  dist.spawn_actors = opt.spawn_actors;
  dist.connect_timeout_s = opt.connect_timeout_s;
  dist.io_timeout_s = opt.io_timeout_s;
  frameworks::DistributedRllibBackend backend(dist);
  const frameworks::TrainResult result = backend.run(request);

  std::printf(
      "learner: %zu iterations, %zu timesteps, %zu episodes\n"
      "  reward          %.4f (stddev %.4f)\n"
      "  net staleness   %.4f versions (mean over consumed batches)\n"
      "  sim time        %.2f s, sim energy %.1f J\n"
      "  wall time       %.2f s\n",
      result.iterations, result.timesteps, result.episodes, result.reward,
      result.reward_stddev, result.net_staleness, result.sim_seconds,
      result.sim_energy_joules, result.wall_seconds);
  std::printf("learner: run complete\n");
  if (exporter && opt.obs_linger_s > 0.0) {
    // Same contract as darl_serve: the "lingering" line tells a harness
    // the final counters are registered and scrapeable.
    std::printf("obs: lingering %.1f s for scrapes\n", opt.obs_linger_s);
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opt.obs_linger_s));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse_args(argc, argv);
  if (opt.verbose) set_log_level(LogLevel::Info);
  set_fast_math(false);  // audited numbers only (DESIGN.md §16)
  try {
    if (opt.role == "actor") return run_actor_role(opt);
    if (opt.role == "learner") return run_learner_role(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "darl_worker (%s): %s\n", opt.role.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "--role must be 'actor' or 'learner'\n");
  usage(2);
}
