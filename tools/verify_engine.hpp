// tools/verify_engine.hpp
//
// Rule engine for darl_verify, the cross-file concurrency-discipline
// analyzer. Where lint_engine.hpp judges one line at a time, this engine
// is a two-pass harvest-then-check design:
//
//   pass 1 (harvest_source, every file): collect the facts that give the
//     check pass its cross-file reach — DARL_GUARDED_BY field
//     annotations, DARL_REQUIRES function contracts (declared in a
//     header, enforced on the definition in the .cpp), and
//     DARL_ACQUIRED_BEFORE lock-order edges.
//   pass 2 (check_source, every file): a lexical walk of the stripped
//     source tracking brace depth and the set of held mutexes
//     (lock_guard / unique_lock / scoped_lock declarations, unlock()/
//     lock() toggles, scope exit), emitting findings and harvesting
//     "A held while acquiring B" edges into the global lock graph.
//   finale (check_lock_order): cycle-detect the merged lock graph and
//     print each cycle as a witness path with file:line per edge.
//
// Rules (ids are what tools/darl_verify.supp references):
//   guarded-field         a field annotated DARL_GUARDED_BY(mu) is
//                         accessed (bare, inside a member function of the
//                         declaring class) without holding mu and without
//                         a DARL_REQUIRES(mu) contract on the function
//   lock-order            the global lock-acquisition graph (lexical
//                         nesting edges + DARL_ACQUIRED_BEFORE edges) has
//                         a cycle — a static deadlock
//   blocking-under-lock   recv/send/accept/connect/sleep_for/sleep_until/
//                         join or a condition-variable wait while holding
//                         a mutex; the sanctioned exception is waiting on
//                         the held lock itself with a predicate (or any
//                         timed wait_for/wait_until on the held lock)
//   cv-wait-no-predicate  untimed cv.wait(lk) with no predicate — every
//                         wait must state what it waits for, or spurious
//                         wakeups become logic errors
//   naked-atomic-ordering an atomic load/store/exchange/fetch_*/
//                         compare_exchange_* in serve/ or obs/ hot paths
//                         without an explicit std::memory_order argument
//
// Mutex identity is canonical text: a bare member name is qualified by
// the enclosing class ("BatchScheduler::queue_mutex_"), `this->` is
// dropped, `->` becomes `.`, so the same lock harvested from a header
// annotation and a .cpp lock site unifies. Analysis is lexical, not
// semantic — it cannot see through aliases or virtual dispatch — which
// is exactly the TSan trade: TSan proves the interleavings the tests
// executed, darl_verify proves a (conservative) property of every path
// in the text. See DESIGN.md §15.

#pragma once

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint_engine.hpp"

namespace darl::verify {

using lint::Finding;

// ---------------------------------------------------------------------------
// Harvested facts

struct GuardedField {
  std::string cls;    ///< declaring class; "" for a file-scope global
  std::string field;  ///< field identifier
  std::string mutex;  ///< canonical guarding mutex
  std::string path;   ///< file the annotation lives in
  std::size_t line = 0;
};

struct RequiresFn {
  std::string cls;   ///< class the function belongs to ("" for free fn)
  std::string name;  ///< function identifier
  std::vector<std::string> mutexes;  ///< canonical, held on entry
};

struct LockEdge {
  std::string held;      ///< canonical mutex already held
  std::string acquired;  ///< canonical mutex acquired under it
  std::string path;
  std::size_t line = 0;
};

/// Cross-file state: filled by harvest_source over every file, then
/// extended with nesting edges by check_source, then judged globally by
/// check_lock_order.
struct VerifyContext {
  std::vector<GuardedField> guarded_fields;
  std::vector<RequiresFn> requires_fns;
  std::vector<LockEdge> edges;
};

// ---------------------------------------------------------------------------
// Small lexical helpers

namespace detail {

inline std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(pos, text.size())),
                            '\n'));
}

inline bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

inline std::string trim(std::string s) {
  const std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Position of the '}' matching the '{' at `open`, or npos.
inline std::size_t match_brace(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Position of the ')' matching the '(' at `open`, or npos.
inline std::size_t match_paren(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Split an argument list at top-level commas (parens, braces and square
/// brackets nest; angle brackets deliberately do not — see the cv-wait
/// classification, which only needs the count to be exact for untimed
/// waits, whose arguments are a lock and an optional lambda).
inline std::vector<std::string> split_top_args(const std::string& args) {
  std::vector<std::string> out;
  int paren = 0, brace = 0, bracket = 0;
  std::string cur;
  for (const char c : args) {
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    if (c == ',' && paren == 0 && brace == 0 && bracket == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cur = trim(cur);
  if (!cur.empty() || !out.empty()) out.push_back(cur);
  if (out.size() == 1 && out[0].empty()) out.clear();
  return out;
}

// ---------------------------------------------------------------------------
// Regions: class bodies and out-of-line member-function bodies, so a bare
// identifier can be qualified by the class it belongs to.

struct ClassRegion {
  std::string name;
  std::size_t open = 0;   ///< position of '{'
  std::size_t close = 0;  ///< position of matching '}'
};

struct FuncRegion {
  std::string cls;   ///< "Class" from a Class::name definition
  std::string name;  ///< function identifier ("~Class" for the dtor)
  std::size_t body_open = 0;
  std::size_t body_close = 0;
};

inline std::vector<ClassRegion> collect_class_regions(
    const std::string& stripped) {
  // Definition head: class/struct NAME [final] [: bases] { — forward
  // declarations have a ';' first and never match; `enum class` is
  // excluded by the optional prefix capture. Templated base classes
  // (angle brackets in the head) are not recognized; none of the
  // annotated surface uses them.
  static const std::regex head_re(
      R"((\benum\s+)?\b(?:class|struct)\s+([A-Za-z_]\w*)\b([^;{}()<>]*)\{)");
  std::vector<ClassRegion> regions;
  auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), head_re);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    if (it->length(1) > 0) continue;  // enum class — not a class region
    const std::size_t open =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    const std::size_t close = match_brace(stripped, open);
    if (close == std::string::npos) continue;
    regions.push_back(ClassRegion{it->str(2), open, close});
  }
  return regions;
}

/// After a parameter list closing at `params_close`, find the '{' opening
/// the function body, tolerating cv/ref/noexcept qualifiers and a
/// constructor member-initializer list. Returns npos when this is a
/// declaration or call expression rather than a definition.
inline std::size_t find_body_after_params(const std::string& stripped,
                                          std::size_t params_close) {
  std::size_t pos = params_close + 1;
  while (pos < stripped.size()) {
    const char c = stripped[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '{') return pos;
    if (c == '&') {  // ref-qualifier
      ++pos;
      continue;
    }
    if (word_char(c)) {  // const / noexcept / override / final / ...
      std::string word;
      while (pos < stripped.size() && word_char(stripped[pos])) {
        word += stripped[pos++];
      }
      // DARL_REQUIRES(...) etc. between the params and the body.
      std::size_t look = pos;
      while (look < stripped.size() &&
             std::isspace(static_cast<unsigned char>(stripped[look]))) {
        ++look;
      }
      if (look < stripped.size() && stripped[look] == '(' &&
          (word == "noexcept" || word.rfind("DARL_", 0) == 0)) {
        const std::size_t close = match_paren(stripped, look);
        if (close == std::string::npos) return std::string::npos;
        pos = close + 1;
      }
      continue;
    }
    if (c == ':' && pos + 1 < stripped.size() && stripped[pos + 1] != ':') {
      // Constructor member-initializer list: item(args) or item{args},
      // comma-separated, then the body brace.
      ++pos;
      while (pos < stripped.size()) {
        const char d = stripped[pos];
        if (d == '(' || (d == '{' && pos > params_close + 1 &&
                         !std::isspace(static_cast<unsigned char>(
                             stripped[pos - 1])) &&
                         stripped[pos - 1] != ',')) {
          // An opener glued to an identifier is an initializer; balance it.
          const std::size_t close = d == '(' ? match_paren(stripped, pos)
                                             : match_brace(stripped, pos);
          if (close == std::string::npos) return std::string::npos;
          pos = close + 1;
          continue;
        }
        if (d == '{') return pos;  // detached '{' — the body
        if (d == ';') return std::string::npos;
        ++pos;
      }
      return std::string::npos;
    }
    return std::string::npos;  // ';', ',', operators: not a definition
  }
  return std::string::npos;
}

inline std::vector<FuncRegion> collect_func_regions(
    const std::string& stripped) {
  static const std::regex def_re(
      R"(([A-Za-z_]\w*)\s*::\s*(~?[A-Za-z_]\w*)\s*\()");
  std::vector<FuncRegion> regions;
  auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), def_re);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::size_t paren =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    const std::size_t params_close = match_paren(stripped, paren);
    if (params_close == std::string::npos) continue;
    const std::size_t body_open =
        find_body_after_params(stripped, params_close);
    if (body_open == std::string::npos) continue;
    const std::size_t body_close = match_brace(stripped, body_open);
    if (body_close == std::string::npos) continue;
    regions.push_back(
        FuncRegion{it->str(1), it->str(2), body_open, body_close});
  }
  return regions;
}

inline const ClassRegion* innermost_class(
    const std::vector<ClassRegion>& regions, std::size_t pos) {
  const ClassRegion* best = nullptr;
  for (const auto& r : regions) {
    if (r.open < pos && pos < r.close &&
        (best == nullptr || r.open > best->open)) {
      best = &r;
    }
  }
  return best;
}

inline const FuncRegion* innermost_func(const std::vector<FuncRegion>& regions,
                                        std::size_t pos) {
  const FuncRegion* best = nullptr;
  for (const auto& r : regions) {
    if (r.body_open < pos && pos < r.body_close &&
        (best == nullptr || r.body_open > best->body_open)) {
      best = &r;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Canonical mutex names

/// Canonicalize a mutex expression: strip address-of and `this->`, turn
/// `->` into `.`, and qualify bare identifiers with the scope's class so
/// "queue_mutex_" written inside BatchScheduler and the annotation in its
/// header name the same lock: "BatchScheduler::queue_mutex_".
inline std::string canonical_mutex(std::string expr,
                                   const std::string& scope_cls) {
  expr = trim(expr);
  while (!expr.empty() && (expr[0] == '&' || expr[0] == '*')) {
    expr = trim(expr.substr(1));
  }
  std::string norm;
  norm.reserve(expr.size());
  for (std::size_t i = 0; i < expr.size(); ++i) {
    if (expr[i] == '-' && i + 1 < expr.size() && expr[i + 1] == '>') {
      norm += '.';
      ++i;
    } else {
      norm += expr[i];
    }
  }
  expr = std::move(norm);
  if (expr.rfind("this.", 0) == 0) expr = expr.substr(5);
  if (expr.empty()) return expr;
  if (expr.find("::") != std::string::npos) return expr;
  if (expr.find('.') != std::string::npos) return expr;
  if (!scope_cls.empty()) return scope_cls + "::" + expr;
  return expr;
}

/// The class name that scopes a bare identifier at `pos`: the enclosing
/// out-of-line member definition if any, else the enclosing class body.
inline std::string scope_class_at(const std::vector<ClassRegion>& classes,
                                  const std::vector<FuncRegion>& funcs,
                                  std::size_t pos) {
  if (const FuncRegion* f = innermost_func(funcs, pos)) return f->cls;
  if (const ClassRegion* c = innermost_class(classes, pos)) return c->name;
  return "";
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Pass 1: harvest annotations

inline void harvest_source(const std::string& path_in,
                           const std::string& content, VerifyContext& ctx) {
  const std::string path = lint::normalize_path(path_in);
  const std::string stripped = lint::strip_noncode(content);
  const auto classes = detail::collect_class_regions(stripped);
  const auto funcs = detail::collect_func_regions(stripped);

  // The macro definitions in thread_safety.hpp (and any future #if
  // plumbing) must not harvest as annotations of a field named "define".
  auto preprocessor_line = [&stripped](std::size_t pos) {
    std::size_t bol = stripped.rfind('\n', pos);
    bol = bol == std::string::npos ? 0 : bol + 1;
    while (bol < stripped.size() &&
           (stripped[bol] == ' ' || stripped[bol] == '\t')) {
      ++bol;
    }
    return bol < stripped.size() && stripped[bol] == '#';
  };

  // DARL_GUARDED_BY: the annotated field is the identifier immediately
  // before the macro (array declarators tolerated).
  static const std::regex guarded_re(
      R"(([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*DARL_GUARDED_BY\s*\()");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      guarded_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t pos = static_cast<std::size_t>(it->position());
    if (preprocessor_line(pos)) continue;
    const std::size_t paren =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    const std::size_t close = detail::match_paren(stripped, paren);
    if (close == std::string::npos) continue;
    const std::string scope = detail::scope_class_at(classes, funcs, pos);
    GuardedField g;
    g.cls = scope;
    g.field = it->str(1);
    g.mutex = detail::canonical_mutex(
        stripped.substr(paren + 1, close - paren - 1), scope);
    g.path = path;
    g.line = detail::line_of(stripped, pos);
    ctx.guarded_fields.push_back(std::move(g));
  }

  // DARL_REQUIRES: walk back over trailing cv-qualifiers to the parameter
  // list, then to the function name; an explicit Class:: qualifier on the
  // name (out-of-line definition) overrides the enclosing-region scope.
  static const std::regex requires_re(R"(\bDARL_REQUIRES\s*\()");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      requires_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t pos = static_cast<std::size_t>(it->position());
    if (preprocessor_line(pos)) continue;
    const std::size_t paren =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    const std::size_t close = detail::match_paren(stripped, paren);
    if (close == std::string::npos) continue;
    // Backward: [const|noexcept|override|final]* ')' ... '(' name
    std::size_t p = pos;
    auto skip_ws_back = [&] {
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(stripped[p - 1]))) {
        --p;
      }
    };
    bool ok = true;
    for (;;) {
      skip_ws_back();
      if (p == 0) {
        ok = false;
        break;
      }
      if (detail::word_char(stripped[p - 1])) {
        std::size_t e = p;
        while (p > 0 && detail::word_char(stripped[p - 1])) --p;
        const std::string word = stripped.substr(p, e - p);
        if (word == "const" || word == "noexcept" || word == "override" ||
            word == "final") {
          continue;
        }
        ok = false;
        break;
      }
      if (stripped[p - 1] == ')') break;
      ok = false;
      break;
    }
    if (!ok) continue;
    // Balance backward over the parameter list.
    int depth = 0;
    std::size_t q = p;  // p is one past ')'
    while (q > 0) {
      --q;
      if (stripped[q] == ')') ++depth;
      if (stripped[q] == '(' && --depth == 0) break;
    }
    if (depth != 0) continue;
    p = q;
    skip_ws_back();
    std::size_t name_end = p;
    while (p > 0 && detail::word_char(stripped[p - 1])) --p;
    if (p > 0 && stripped[p - 1] == '~') --p;
    std::string fn_name = stripped.substr(p, name_end - p);
    if (fn_name.empty() || fn_name == "~") continue;
    std::string cls;
    if (p >= 2 && stripped[p - 1] == ':' && stripped[p - 2] == ':') {
      std::size_t c = p - 2;
      std::size_t cls_end = c;
      while (c > 0 && detail::word_char(stripped[c - 1])) --c;
      cls = stripped.substr(c, cls_end - c);
    } else {
      cls = detail::scope_class_at(classes, funcs, pos);
    }
    RequiresFn r;
    r.cls = cls;
    r.name = std::move(fn_name);
    for (const auto& arg : detail::split_top_args(
             stripped.substr(paren + 1, close - paren - 1))) {
      r.mutexes.push_back(detail::canonical_mutex(arg, cls));
    }
    if (!r.mutexes.empty()) ctx.requires_fns.push_back(std::move(r));
  }

  // DARL_ACQUIRED_BEFORE on a mutex declaration: an edge from the
  // annotated mutex to every listed successor.
  static const std::regex before_re(
      R"(([A-Za-z_]\w*)\s+DARL_ACQUIRED_BEFORE\s*\()");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      before_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t pos = static_cast<std::size_t>(it->position());
    if (preprocessor_line(pos)) continue;
    const std::size_t paren =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    const std::size_t close = detail::match_paren(stripped, paren);
    if (close == std::string::npos) continue;
    const std::string scope = detail::scope_class_at(classes, funcs, pos);
    const std::string first = detail::canonical_mutex(it->str(1), scope);
    for (const auto& arg : detail::split_top_args(
             stripped.substr(paren + 1, close - paren - 1))) {
      LockEdge e;
      e.held = first;
      e.acquired = detail::canonical_mutex(arg, scope);
      e.path = path;
      e.line = detail::line_of(stripped, pos);
      if (e.held != e.acquired) ctx.edges.push_back(std::move(e));
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: the lexical walk

namespace detail {

enum class EventKind { LockDecl, LockToggle, CvWait, Blocking, GuardedRef };

struct Event {
  EventKind kind = EventKind::LockDecl;
  std::size_t pos = 0;
  std::size_t line = 0;
  // LockDecl
  std::string var;
  std::vector<std::string> mutexes;  ///< canonical
  bool held = true;                  ///< false for std::defer_lock
  bool adopted = false;              ///< true for std::adopt_lock
  // LockToggle
  bool is_lock = false;  ///< .lock() vs .unlock()
  // CvWait
  bool timed = false;
  bool has_pred = false;
  std::string lock_arg;  ///< raw first argument (the unique_lock variable)
  // Blocking
  std::string what;
  // GuardedRef
  std::size_t field_idx = 0;
};

struct ActiveLock {
  std::string var;                   ///< declared RAII variable ("" = raw)
  std::vector<std::string> mutexes;  ///< canonical
  int depth = 0;                     ///< brace depth at declaration
  bool held = true;
};

/// The names of blocking calls rule (c) flags when a lock is held.
inline const std::regex& blocking_call_re() {
  static const std::regex re(
      R"(\b(recv|send|accept|connect|sleep_for|sleep_until)\s*\(|[.>]\s*(join)\s*\(\s*\))");
  return re;
}

}  // namespace detail

/// Walk one file: emit guarded-field / blocking-under-lock /
/// cv-wait-no-predicate / naked-atomic-ordering findings and append this
/// file's lock-nesting edges to ctx.edges. Call harvest_source over every
/// file first so annotations from headers are visible here.
inline std::vector<Finding> check_source(const std::string& path_in,
                                         const std::string& content,
                                         VerifyContext& ctx) {
  using namespace detail;
  const std::string path = lint::normalize_path(path_in);
  const std::string stripped = lint::strip_noncode(content);
  const std::vector<std::string> lines = lint::split_lines(stripped);
  const auto classes = collect_class_regions(stripped);
  const auto funcs = collect_func_regions(stripped);
  std::vector<Finding> findings;
  auto add = [&](const char* rule, std::size_t line_no, std::string msg) {
    findings.push_back(Finding{rule, path, line_no, std::move(msg)});
  };

  // REQUIRES contracts held on entry to the function enclosing `pos`.
  auto required_at = [&](std::size_t pos) {
    std::vector<std::string> held;
    const FuncRegion* f = innermost_func(funcs, pos);
    if (f == nullptr) return held;
    for (const auto& r : ctx.requires_fns) {
      if (r.cls == f->cls && r.name == f->name) {
        held.insert(held.end(), r.mutexes.begin(), r.mutexes.end());
      }
    }
    return held;
  };

  // -------------------------------------------------------------------------
  // Event collection

  std::vector<Event> events;

  // RAII lock declarations: lock_guard / unique_lock / shared_lock /
  // scoped_lock, with or without explicit template arguments.
  static const std::regex lock_decl_re(
      R"(\b(?:std\s*::\s*)?(lock_guard|unique_lock|shared_lock|scoped_lock)\b)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      lock_decl_re);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position() + it->length());
    // Optional template argument list.
    std::size_t look = pos;
    while (look < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[look]))) {
      ++look;
    }
    if (look < stripped.size() && stripped[look] == '<') {
      int depth = 0;
      while (look < stripped.size()) {
        if (stripped[look] == '<') ++depth;
        if (stripped[look] == '>' && --depth == 0) break;
        ++look;
      }
      if (look >= stripped.size()) continue;
      ++look;
    }
    while (look < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[look]))) {
      ++look;
    }
    // Variable name, then an immediate initializer — anything else (a
    // parameter declaration, a bare type mention) is not a lock site.
    std::string var;
    while (look < stripped.size() && word_char(stripped[look])) {
      var += stripped[look++];
    }
    if (var.empty()) continue;
    while (look < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[look]))) {
      ++look;
    }
    if (look >= stripped.size() ||
        (stripped[look] != '(' && stripped[look] != '{')) {
      continue;
    }
    const std::size_t close = stripped[look] == '('
                                  ? match_paren(stripped, look)
                                  : match_brace(stripped, look);
    if (close == std::string::npos) continue;
    Event e;
    e.kind = EventKind::LockDecl;
    e.pos = static_cast<std::size_t>(it->position());
    e.line = line_of(stripped, e.pos);
    e.var = std::move(var);
    const std::string scope = scope_class_at(classes, funcs, e.pos);
    for (auto& arg :
         split_top_args(stripped.substr(look + 1, close - look - 1))) {
      std::string canon = canonical_mutex(arg, scope);
      const std::string tail =
          canon.size() >= 2 && canon.compare(0, 5, "std::") == 0
              ? canon.substr(5)
              : canon;
      if (tail == "defer_lock") {
        e.held = false;
      } else if (tail == "adopt_lock") {
        e.adopted = true;
      } else if (tail == "try_to_lock") {
        // approximated as acquired
      } else if (!canon.empty()) {
        e.mutexes.push_back(std::move(canon));
      }
    }
    if (!e.mutexes.empty()) events.push_back(std::move(e));
  }

  // lock()/unlock()/try_lock() toggles on a lock variable or raw mutex.
  static const std::regex toggle_re(
      R"(\b([A-Za-z_]\w*)\s*\.\s*(lock|unlock|try_lock)\s*\(\s*\))");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), toggle_re);
       it != std::sregex_iterator(); ++it) {
    Event e;
    e.kind = EventKind::LockToggle;
    e.pos = static_cast<std::size_t>(it->position());
    e.line = line_of(stripped, e.pos);
    e.var = it->str(1);
    e.is_lock = it->str(2) != "unlock";
    events.push_back(std::move(e));
  }

  // Condition-variable waits. Untimed single-argument waits are flagged
  // as cv-wait-no-predicate immediately; all waits also become events so
  // blocking-under-lock can judge them against the held set.
  static const std::regex wait_re(R"([.>]\s*wait(_for|_until)?\s*\()");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), wait_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t paren =
        static_cast<std::size_t>(it->position() + it->length()) - 1;
    const std::size_t close = match_paren(stripped, paren);
    if (close == std::string::npos) continue;
    const auto args =
        split_top_args(stripped.substr(paren + 1, close - paren - 1));
    if (args.empty()) continue;  // future.wait() — not a cv wait
    Event e;
    e.kind = EventKind::CvWait;
    e.pos = static_cast<std::size_t>(it->position());
    e.line = line_of(stripped, e.pos);
    e.timed = it->length(1) > 0;
    e.has_pred = e.timed ? args.size() >= 3 : args.size() >= 2;
    e.lock_arg = args[0];
    if (!e.timed && args.size() == 1) {
      add("cv-wait-no-predicate", e.line,
          "untimed cv wait without a predicate; spurious wakeups make this "
          "a logic error — use wait(" +
              e.lock_arg + ", [&] { ... })");
    }
    events.push_back(std::move(e));
  }

  // Blocking calls.
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      blocking_call_re());
       it != std::sregex_iterator(); ++it) {
    Event e;
    e.kind = EventKind::Blocking;
    e.pos = static_cast<std::size_t>(it->position());
    e.line = line_of(stripped, e.pos);
    e.what = it->length(1) > 0 ? it->str(1) : it->str(2);
    events.push_back(std::move(e));
  }

  // Bare references to harvested guarded fields.
  for (std::size_t fi = 0; fi < ctx.guarded_fields.size(); ++fi) {
    const GuardedField& g = ctx.guarded_fields[fi];
    if (g.cls.empty() && g.path != path) continue;  // file-scope global
    std::size_t from = 0;
    while ((from = stripped.find(g.field, from)) != std::string::npos) {
      const std::size_t pos = from;
      from += g.field.size();
      // Word boundaries.
      if (pos > 0 && word_char(stripped[pos - 1])) continue;
      const std::size_t after = pos + g.field.size();
      if (after < stripped.size() && word_char(stripped[after])) continue;
      // Member access on some other object (obj.f / p->f / C::f) is out
      // of scope for the lexical checker.
      std::size_t b = pos;
      while (b > 0 &&
             std::isspace(static_cast<unsigned char>(stripped[b - 1]))) {
        --b;
      }
      if (b > 0) {
        const char prev = stripped[b - 1];
        if (prev == '.') continue;
        if (prev == '>' && b >= 2 && stripped[b - 2] == '-') continue;
        if (prev == ':' && b >= 2 && stripped[b - 2] == ':') continue;
      }
      const std::size_t line_no = line_of(stripped, pos);
      // The annotated declaration itself: the macro either shares the
      // occurrence's line or (wrapped declaration) directly follows it.
      if (line_no - 1 < lines.size() &&
          lines[line_no - 1].find("DARL_GUARDED_BY") != std::string::npos) {
        continue;
      }
      std::size_t nx = after;
      while (nx < stripped.size() &&
             std::isspace(static_cast<unsigned char>(stripped[nx]))) {
        ++nx;
      }
      if (stripped.compare(nx, 15, "DARL_GUARDED_BY") == 0) continue;
      const FuncRegion* f = innermost_func(funcs, pos);
      if (g.cls.empty()) {
        if (f == nullptr && innermost_class(classes, pos) != nullptr) {
          continue;  // a same-named field declaration, not the global
        }
      } else {
        const std::string enclosing =
            f != nullptr
                ? f->cls
                : (innermost_class(classes, pos) != nullptr
                       ? innermost_class(classes, pos)->name
                       : std::string());
        if (enclosing != g.cls) continue;
        // Constructors and destructors run before the object is shared.
        if (f != nullptr && (f->name == g.cls || f->name == "~" + g.cls)) {
          continue;
        }
      }
      Event e;
      e.kind = EventKind::GuardedRef;
      e.pos = pos;
      e.line = line_no;
      e.field_idx = fi;
      events.push_back(std::move(e));
    }
  }

  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.pos < b.pos; });

  // -------------------------------------------------------------------------
  // naked-atomic-ordering: pure pattern rule, hot paths only. The
  // argument list is parsed balanced so a memory_order on a continuation
  // line still counts.
  const bool hot_path = path.find("/serve/") != std::string::npos ||
                        path.find("/obs/") != std::string::npos ||
                        path.rfind("serve/", 0) == 0 ||
                        path.rfind("obs/", 0) == 0;
  if (hot_path) {
    static const std::regex atomic_re(
        R"([.>]\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\()");
    for (auto it =
             std::sregex_iterator(stripped.begin(), stripped.end(), atomic_re);
         it != std::sregex_iterator(); ++it) {
      const std::size_t paren =
          static_cast<std::size_t>(it->position() + it->length()) - 1;
      const std::size_t close = match_paren(stripped, paren);
      if (close == std::string::npos) continue;
      const std::string args = stripped.substr(paren + 1, close - paren - 1);
      if (args.find("memory_order") != std::string::npos) continue;
      add("naked-atomic-ordering",
          line_of(stripped, static_cast<std::size_t>(it->position())),
          "atomic " + it->str(1) +
              "() without an explicit memory_order on a serve/obs hot "
              "path; name the ordering (memory_order_relaxed if that is "
              "what you mean)");
    }
  }

  // -------------------------------------------------------------------------
  // The walk: brace depth + held-lock tracking.

  std::vector<ActiveLock> locks;
  auto held_mutexes = [&](std::size_t pos) {
    std::vector<std::string> held = required_at(pos);
    for (const auto& l : locks) {
      if (l.held) held.insert(held.end(), l.mutexes.begin(), l.mutexes.end());
    }
    std::sort(held.begin(), held.end());
    held.erase(std::unique(held.begin(), held.end()), held.end());
    return held;
  };
  auto join_names = [](const std::vector<std::string>& names) {
    std::string out;
    for (const auto& n : names) {
      if (!out.empty()) out += ", ";
      out += n;
    }
    return out;
  };
  auto record_acquisition = [&](const std::vector<std::string>& acquired,
                                std::size_t line_no,
                                const std::vector<std::string>& held) {
    for (const auto& h : held) {
      for (const auto& m : acquired) {
        LockEdge e;
        e.held = h;
        e.acquired = m;
        e.path = path;
        e.line = line_no;
        ctx.edges.push_back(std::move(e));  // h == m cycles self-report
      }
    }
  };

  std::size_t ev = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= stripped.size(); ++i) {
    while (ev < events.size() && events[ev].pos == i) {
      Event& e = events[ev++];
      switch (e.kind) {
        case EventKind::LockDecl: {
          if (e.held && !e.adopted) {
            record_acquisition(e.mutexes, e.line, held_mutexes(e.pos));
          }
          ActiveLock a;
          a.var = e.var;
          a.mutexes = e.mutexes;
          a.depth = depth;
          a.held = e.held;
          locks.push_back(std::move(a));
          break;
        }
        case EventKind::LockToggle: {
          ActiveLock* target = nullptr;
          for (auto rit = locks.rbegin(); rit != locks.rend(); ++rit) {
            if (rit->var == e.var) {
              target = &*rit;
              break;
            }
          }
          if (target != nullptr) {
            if (e.is_lock && !target->held) {
              record_acquisition(target->mutexes, e.line, held_mutexes(e.pos));
              target->held = true;
            } else if (!e.is_lock) {
              target->held = false;
            }
          } else if (e.is_lock) {
            // Raw mutex.lock(): treat the mutex itself as the handle.
            const std::string canon = canonical_mutex(
                e.var, scope_class_at(classes, funcs, e.pos));
            record_acquisition({canon}, e.line, held_mutexes(e.pos));
            ActiveLock a;
            a.var = e.var;
            a.mutexes = {canon};
            a.depth = depth;
            locks.push_back(std::move(a));
          }
          break;
        }
        case EventKind::CvWait: {
          const auto held = held_mutexes(e.pos);
          if (held.empty()) break;
          std::vector<std::string> wait_lock;
          for (auto rit = locks.rbegin(); rit != locks.rend(); ++rit) {
            if (rit->var == e.lock_arg) {
              wait_lock = rit->mutexes;
              break;
            }
          }
          std::sort(wait_lock.begin(), wait_lock.end());
          const bool same_lock_only = !wait_lock.empty() && wait_lock == held;
          const bool sanctioned =
              same_lock_only && (e.timed || e.has_pred);
          if (!sanctioned) {
            add("blocking-under-lock", e.line,
                same_lock_only
                    ? "cv wait on the held lock without a predicate; the "
                      "sanctioned form is wait(" +
                          e.lock_arg + ", [&] { ... })"
                    : "cv wait while holding { " + join_names(held) +
                          " }; waiting releases only its own lock — every "
                          "other held mutex blocks all contenders for the "
                          "whole wait");
          }
          break;
        }
        case EventKind::Blocking: {
          const auto held = held_mutexes(e.pos);
          if (!held.empty()) {
            add("blocking-under-lock", e.line,
                "blocking call " + e.what + "() while holding { " +
                    join_names(held) +
                    " }; release the lock first (snapshot the state, then "
                    "block)");
          }
          break;
        }
        case EventKind::GuardedRef: {
          const GuardedField& g = ctx.guarded_fields[e.field_idx];
          const auto held = held_mutexes(e.pos);
          if (std::find(held.begin(), held.end(), g.mutex) == held.end()) {
            add("guarded-field", e.line,
                "field '" + g.field + "' is guarded by " + g.mutex +
                    " (declared " + g.path + ":" + std::to_string(g.line) +
                    ") but accessed without holding it; lock the mutex or "
                    "annotate the function DARL_REQUIRES(" +
                    g.mutex + ")");
          }
          break;
        }
      }
    }
    if (i >= stripped.size()) break;
    const char c = stripped[i];
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      while (!locks.empty() && locks.back().depth > depth) locks.pop_back();
      // Locks are scoped objects: destruction order is reverse
      // declaration order, and a '}' can only retire the deepest ones.
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

// ---------------------------------------------------------------------------
// Finale: the global lock graph

/// Cycle-detect the merged lock graph. Every distinct cycle becomes one
/// finding whose message is the witness path, each edge stamped with the
/// file:line where the nested acquisition (or annotation) was seen.
inline std::vector<Finding> check_lock_order(const VerifyContext& ctx) {
  // Dedupe edges, keeping the first witness site per (held, acquired).
  std::map<std::pair<std::string, std::string>, const LockEdge*> uniq;
  for (const auto& e : ctx.edges) {
    uniq.emplace(std::make_pair(e.held, e.acquired), &e);
  }
  std::map<std::string, std::vector<std::pair<std::string, const LockEdge*>>>
      adj;
  for (const auto& [key, edge] : uniq) {
    adj[key.first].emplace_back(key.second, edge);
  }

  std::vector<Finding> findings;
  std::set<std::string> reported;  // normalized cycle keys
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::pair<std::string, const LockEdge*>> stack;

  // Iterative DFS from every node (map order → deterministic output).
  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        auto it = adj.find(node);
        if (it != adj.end()) {
          for (const auto& [next, edge] : it->second) {
            if (color[next] == 1) {
              // Back edge: the cycle is the stack suffix from `next`.
              std::vector<std::pair<std::string, const LockEdge*>> cycle;
              std::size_t start = stack.size();
              while (start > 0 && stack[start - 1].first != next) --start;
              if (start > 0) --start;
              for (std::size_t s = start; s < stack.size(); ++s) {
                cycle.push_back(stack[s]);
              }
              cycle.emplace_back(next, edge);  // closing edge target
              // Normalize: rotate so the smallest node leads.
              std::vector<std::string> nodes;
              for (std::size_t s = start; s < stack.size(); ++s) {
                nodes.push_back(stack[s].first);
              }
              if (nodes.empty()) nodes.push_back(next);
              const std::size_t min_i = static_cast<std::size_t>(
                  std::min_element(nodes.begin(), nodes.end()) -
                  nodes.begin());
              std::string key;
              for (std::size_t s = 0; s < nodes.size(); ++s) {
                key += nodes[(min_i + s) % nodes.size()] + ">";
              }
              if (reported.insert(key).second) {
                // Witness: A -> B (file:line) -> ... -> A (file:line),
                // each site being where the arrow's target was acquired.
                std::string msg = "lock-order cycle: " + nodes[0];
                const LockEdge* first_edge = nullptr;
                for (std::size_t s = 0; s + 1 < cycle.size(); ++s) {
                  const LockEdge* step =
                      uniq.at(std::make_pair(cycle[s].first,
                                             cycle[s + 1].first));
                  if (first_edge == nullptr) first_edge = step;
                  msg += " -> " + cycle[s + 1].first + " (" + step->path +
                         ":" + std::to_string(step->line) + ")";
                }
                if (first_edge != nullptr) {
                  findings.push_back(Finding{"lock-order", first_edge->path,
                                             first_edge->line,
                                             std::move(msg)});
                }
              }
            } else if (color[next] == 0) {
              stack.emplace_back(next, edge);
              visit(next);
              stack.pop_back();
            }
          }
        }
        color[node] = 2;
      };
  for (const auto& [node, edges] : adj) {
    (void)edges;
    if (color[node] == 0) {
      stack.clear();
      stack.emplace_back(node, nullptr);
      visit(node);
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace darl::verify
