// darl_verify — cross-file concurrency-discipline analysis.
//
//   darl_verify [--root DIR] [--supp FILE] [--format human|json]
//               [--list-rules] [dir...]
//
// Two passes over src/, tools/, bench/, tests/ and examples/ (or the
// listed directories): pass 1 harvests the DARL_GUARDED_BY /
// DARL_REQUIRES / DARL_ACQUIRED_BEFORE annotations from every file
// (src/darl/common/thread_safety.hpp), pass 2 walks each file tracking
// held locks and checks guarded-field access, blocking calls and
// condition-variable discipline, while collecting "A held while
// acquiring B" edges; the merged global lock graph is then checked for
// cycles (static deadlocks), printed as witness paths. Rule details live
// in tools/verify_engine.hpp; exceptions in tools/darl_verify.supp, one
// justified entry per rule+file, where an entry matching nothing is
// itself an error.
//
// Exit codes: 0 clean, 1 findings / unused or malformed suppressions,
// 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "verify_engine.hpp"

namespace {

namespace fs = std::filesystem;
using darl::lint::AnnotatedFinding;
using darl::lint::Finding;
using darl::lint::Suppression;

struct Options {
  std::string root = ".";
  std::string supp_path = "tools/darl_verify.supp";
  std::string format = "human";
  std::vector<std::string> dirs;
  bool list_rules = false;
};

constexpr const char* kDefaultDirs[] = {"src", "tools", "bench", "tests",
                                        "examples"};

void print_rules() {
  std::printf(
      "darl_verify rules:\n"
      "  guarded-field          DARL_GUARDED_BY field accessed without "
      "holding its mutex\n"
      "  lock-order             cycle in the global lock-acquisition graph "
      "(static deadlock)\n"
      "  blocking-under-lock    recv/send/accept/connect/sleep_for/join/cv "
      "wait while a mutex is held\n"
      "  cv-wait-no-predicate   untimed cv.wait(lk) without a predicate\n"
      "  naked-atomic-ordering  atomic op in serve/ or obs/ without an "
      "explicit memory_order\n");
}

[[noreturn]] void usage(int code) {
  std::printf(
      "darl_verify — cross-file concurrency-discipline analysis\n"
      "\n"
      "  darl_verify [--root DIR] [--supp FILE] [--format human|json]\n"
      "              [--list-rules] [dir...]\n"
      "\n"
      "  --root DIR     repository root to scan from (default .)\n"
      "  --supp FILE    suppression file, relative to root\n"
      "                 (default tools/darl_verify.supp; \"\" disables)\n"
      "  --format FMT   human (default) or json — json emits a stable\n"
      "                 array of {rule, file, line, message, suppressed}\n"
      "  --list-rules   print the rule table and exit\n"
      "  dir...         directories to scan, relative to root\n"
      "                 (default: src tools bench tests examples)\n");
  std::exit(code);
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool scannable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](int& j) -> std::string {
      if (j + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[j]);
        usage(2);
      }
      return argv[++j];
    };
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--list-rules") opt.list_rules = true;
    else if (a == "--root") opt.root = need_value(i);
    else if (a == "--supp") opt.supp_path = need_value(i);
    else if (a == "--format") opt.format = need_value(i);
    else if (a.rfind("--format=", 0) == 0) opt.format = a.substr(9);
    else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      usage(2);
    } else {
      opt.dirs.push_back(a);
    }
  }
  if (opt.list_rules) {
    print_rules();
    return 0;
  }
  if (opt.format != "human" && opt.format != "json") {
    std::fprintf(stderr, "invalid --format '%s' (human|json)\n",
                 opt.format.c_str());
    usage(2);
  }
  if (opt.dirs.empty()) {
    for (const char* d : kDefaultDirs) {
      if (fs::is_directory(fs::path(opt.root) / d)) opt.dirs.push_back(d);
    }
  }

  std::vector<std::string> files;
  for (const auto& dir : opt.dirs) {
    const fs::path base = fs::path(opt.root) / dir;
    if (!fs::is_directory(base)) {
      std::fprintf(stderr, "darl_verify: not a directory: %s\n",
                   base.string().c_str());
      return 2;
    }
    std::error_code ec;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        std::fprintf(stderr, "darl_verify: walk error under %s: %s\n",
                     base.string().c_str(), ec.message().c_str());
        return 2;
      }
      if (it->is_regular_file() && scannable(it->path())) {
        files.push_back(darl::lint::normalize_path(
            fs::relative(it->path(), opt.root).string()));
      }
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: harvest annotations project-wide so a field guarded in a
  // header is enforced in every .cpp, and lock-order edges merge across
  // translation units.
  darl::verify::VerifyContext ctx;
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const auto& rel : files) {
    std::string content;
    if (!read_file(fs::path(opt.root) / rel, content)) {
      std::fprintf(stderr, "darl_verify: cannot read %s\n", rel.c_str());
      return 2;
    }
    darl::verify::harvest_source(rel, content, ctx);
    sources.emplace_back(rel, std::move(content));
  }

  // Pass 2: walk every file (collects nesting edges into ctx), then judge
  // the merged lock graph.
  std::vector<Finding> findings;
  for (const auto& [rel, content] : sources) {
    auto file_findings = darl::verify::check_source(rel, content, ctx);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  auto graph_findings = darl::verify::check_lock_order(ctx);
  findings.insert(findings.end(),
                  std::make_move_iterator(graph_findings.begin()),
                  std::make_move_iterator(graph_findings.end()));

  std::vector<Suppression> suppressions;
  std::vector<std::string> supp_errors;
  if (!opt.supp_path.empty()) {
    const fs::path supp_file = fs::path(opt.root) / opt.supp_path;
    std::string content;
    if (fs::exists(supp_file)) {
      if (!read_file(supp_file, content)) {
        std::fprintf(stderr, "darl_verify: cannot read %s\n",
                     supp_file.string().c_str());
        return 2;
      }
      suppressions = darl::lint::parse_suppressions(content, supp_errors);
    }
  }
  const std::vector<AnnotatedFinding> annotated =
      darl::lint::annotate_suppressions(std::move(findings), suppressions);

  bool failed = false;
  std::size_t unsuppressed = 0;
  for (const auto& e : supp_errors) {
    std::fprintf(stderr, "%s: %s\n", opt.supp_path.c_str(), e.c_str());
    failed = true;
  }
  for (const auto& af : annotated) {
    if (af.suppressed) continue;
    ++unsuppressed;
    failed = true;
    if (opt.format == "human") {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", af.finding.path.c_str(),
                   af.finding.line, af.finding.rule.c_str(),
                   af.finding.message.c_str());
    }
  }
  for (const auto& s : suppressions) {
    if (!s.used) {
      std::fprintf(stderr,
                   "%s:%zu: unused suppression '%s %s' — delete it (the "
                   "code is clean now)\n",
                   opt.supp_path.c_str(), s.line, s.rule.c_str(),
                   s.path_suffix.c_str());
      failed = true;
    }
  }

  if (opt.format == "json") {
    std::fputs(darl::lint::findings_json(annotated).c_str(), stdout);
  }
  std::fprintf(
      opt.format == "json" ? stderr : stdout,
      "darl_verify: %zu file(s), %zu guarded field(s), %zu lock-order "
      "edge(s), %zu finding(s): %zu suppressed, %zu unsuppressed%s\n",
      files.size(), ctx.guarded_fields.size(), ctx.edges.size(),
      annotated.size(), annotated.size() - unsuppressed, unsuppressed,
      failed ? " — FAIL" : "");
  return failed ? 1 : 0;
}
