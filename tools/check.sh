#!/usr/bin/env bash
# tools/check.sh — the full pre-merge gate.
#
# Stages:
#   1. build/        Release-style tree, full ctest suite
#   2. darl_lint     project-specific static analysis over src/ tools/
#                    bench/ tests/ examples/ (zero unsuppressed findings;
#                    suppressions live in tools/darl_lint.supp)
#   3. clang-tidy    optional second opinion (no-ops when absent)
#   4. build-ubsan/  UndefinedBehaviorSanitizer tree (DARL_SANITIZE=
#                    undefined, non-recovering), full ctest suite
#   5. build-tsan/   ThreadSanitizer tree (DARL_SANITIZE=thread), which
#                    gives the parallel fault-tolerance tests teeth: data
#                    races in Study::run's threaded evaluate/retry/timeout
#                    paths show up here, not in the plain build
#   6. smoke bench    the gemm/nn/serve/obs micro benchmarks built and run
#                    with a near-zero time budget (BENCH_SMOKE=1
#                    tools/bench.sh) — keeps the benches compiling and
#                    their JSON distillers working without paying for
#                    real timings
#   7. telemetry smoke: darl_serve started with --obs-port 0, its
#                    /healthz and /metrics scraped live over /dev/tcp,
#                    and the serve metric families asserted present
#   8. determinism audit: the same seeded campaign run twice serially and
#                    once with --parallel 4 must produce byte-identical
#                    trials CSVs — with the telemetry sampler + exporter
#                    enabled (--obs-port 0), proving observability never
#                    perturbs campaign results
#
# Usage: tools/check.sh [extra ctest args...]
#   e.g. tools/check.sh -R core_fault
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"

run_tree() {
  local dir="$1" sanitize="$2"
  shift 2
  echo "=== [$dir] configure (DARL_SANITIZE='$sanitize') ==="
  cmake -B "$dir" -S . -DDARL_SANITIZE="$sanitize"
  echo "=== [$dir] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$dir] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" "$@"
}

run_tree build "" "$@"

echo "=== darl_lint (static analysis) ==="
./build/tools/darl_lint --root .

echo "=== clang-tidy (optional) ==="
tools/run_clang_tidy.sh build

run_tree build-ubsan undefined "$@"
run_tree build-tsan thread "$@"

AUDIT_DIR="$(mktemp -d)"
trap 'rm -rf "$AUDIT_DIR"' EXIT

echo "=== smoke bench (near-instant micro-kernel run) ==="
BENCH_SMOKE=1 tools/bench.sh "$AUDIT_DIR/bench_smoke.json" \
    "$AUDIT_DIR/bench_serve_smoke.json" "$AUDIT_DIR/bench_obs_smoke.json"

echo "=== telemetry smoke (darl_serve --obs-port, live scrape) ==="
OBS_LOG="$AUDIT_DIR/obs_serve.log"
./build/tools/darl_serve --train-timesteps 512 --clients 2 --requests 50 \
    --obs-port 0 --obs-linger-s 30 > "$OBS_LOG" 2>&1 &
OBS_PID=$!
obs_port=""
for _ in $(seq 1 300); do
  obs_port="$(sed -n \
      's/^obs: exporter listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$OBS_LOG" | head -n 1)"
  [[ -n "$obs_port" ]] && break
  kill -0 "$OBS_PID" 2>/dev/null \
    || { echo "telemetry smoke FAILED: darl_serve exited early"; \
         cat "$OBS_LOG"; exit 1; }
  sleep 0.2
done
[[ -n "$obs_port" ]] \
  || { echo "telemetry smoke FAILED: exporter never announced its port"; \
       cat "$OBS_LOG"; kill "$OBS_PID" 2>/dev/null; exit 1; }
# Scrape once the serving run is over (the linger window) so the serve
# counter families are guaranteed registered and final.
for _ in $(seq 1 600); do
  grep -q '^obs: lingering' "$OBS_LOG" && break
  sleep 0.2
done
scrape() {  # scrape PATH — raw HTTP/1.0 GET over bash /dev/tcp
  local path="$1"
  exec 3<>"/dev/tcp/127.0.0.1/$obs_port"
  printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
  cat <&3
  exec 3<&- 3>&-
}
healthz="$(scrape /healthz)"
grep -q '200 OK' <<<"$healthz" \
  || { echo "telemetry smoke FAILED: /healthz not 200"; \
       echo "$healthz"; kill "$OBS_PID" 2>/dev/null; exit 1; }
metrics="$(scrape /metrics)"
for family in serve_requests serve_served serve_batches serve_queue_depth \
              serve_latency_us serve_batch_rows; do
  grep -q "^$family" <<<"$metrics" \
    || { echo "telemetry smoke FAILED: family '$family' missing from /metrics"; \
         echo "$metrics" | head -n 40; kill "$OBS_PID" 2>/dev/null; exit 1; }
done
kill "$OBS_PID" 2>/dev/null || true
wait "$OBS_PID" 2>/dev/null || true
echo "telemetry smoke ok: port $obs_port, /healthz 200, $(grep -c '^serve_' <<<"$metrics") serve_* series scraped"

echo "=== determinism audit (serial x2 vs --parallel 4, telemetry on) ==="
audit_run() {
  local out="$1"
  shift
  ./build/tools/darl_study --explorer random --trials 6 --timesteps 2048 \
      --seeds 1 --seed 7 --cache "" --csv "$out" --obs-port 0 "$@" > /dev/null
}
audit_run "$AUDIT_DIR/serial_a.csv"
audit_run "$AUDIT_DIR/serial_b.csv"
audit_run "$AUDIT_DIR/parallel.csv" --parallel 4
cmp "$AUDIT_DIR/serial_a.csv" "$AUDIT_DIR/serial_b.csv" \
  || { echo "determinism audit FAILED: serial reruns differ"; exit 1; }
cmp "$AUDIT_DIR/serial_a.csv" "$AUDIT_DIR/parallel.csv" \
  || { echo "determinism audit FAILED: parallel run differs from serial"; exit 1; }
echo "determinism audit ok: $(wc -l < "$AUDIT_DIR/serial_a.csv") CSV lines byte-identical across runs"

echo "=== check.sh: all gates green ==="
