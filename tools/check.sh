#!/usr/bin/env bash
# tools/check.sh — the full pre-merge gate.
#
# Builds two trees and runs the test suite on both:
#   build/       Release-style tree (the default developer build)
#   build-tsan/  ThreadSanitizer tree (DARL_SANITIZE=thread), which is what
#                gives the parallel fault-tolerance tests teeth: data races
#                in Study::run's threaded evaluate/retry/timeout paths show
#                up here, not in the plain build.
#
# Usage: tools/check.sh [extra ctest args...]
#   e.g. tools/check.sh -R core_fault
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"

run_tree() {
  local dir="$1" sanitize="$2"
  shift 2
  echo "=== [$dir] configure (DARL_SANITIZE='$sanitize') ==="
  cmake -B "$dir" -S . -DDARL_SANITIZE="$sanitize"
  echo "=== [$dir] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$dir] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" "$@"
}

run_tree build "" "$@"
run_tree build-tsan thread "$@"

echo "=== check.sh: both trees green ==="
