#!/usr/bin/env bash
# tools/check.sh — the full pre-merge gate.
#
# Stages:
#   1. build/        Release-style tree, full ctest suite
#   2. darl_lint     project-specific static analysis over src/ tools/
#                    bench/ tests/ examples/ (zero unsuppressed findings;
#                    suppressions live in tools/darl_lint.supp)
#   3. clang-tidy    optional second opinion (no-ops when absent)
#   4. build-ubsan/  UndefinedBehaviorSanitizer tree (DARL_SANITIZE=
#                    undefined, non-recovering), full ctest suite
#   5. build-tsan/   ThreadSanitizer tree (DARL_SANITIZE=thread), which
#                    gives the parallel fault-tolerance tests teeth: data
#                    races in Study::run's threaded evaluate/retry/timeout
#                    paths show up here, not in the plain build
#   6. smoke bench    the gemm/nn micro benchmarks built and run with a
#                    near-zero time budget (BENCH_SMOKE=1 tools/bench.sh) —
#                    keeps the batched-kernel benches compiling and their
#                    JSON distiller working without paying for real timings
#   7. determinism audit: the same seeded campaign run twice serially and
#                    once with --parallel 4 must produce byte-identical
#                    trials CSVs
#
# Usage: tools/check.sh [extra ctest args...]
#   e.g. tools/check.sh -R core_fault
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"

run_tree() {
  local dir="$1" sanitize="$2"
  shift 2
  echo "=== [$dir] configure (DARL_SANITIZE='$sanitize') ==="
  cmake -B "$dir" -S . -DDARL_SANITIZE="$sanitize"
  echo "=== [$dir] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$dir] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" "$@"
}

run_tree build "" "$@"

echo "=== darl_lint (static analysis) ==="
./build/tools/darl_lint --root .

echo "=== clang-tidy (optional) ==="
tools/run_clang_tidy.sh build

run_tree build-ubsan undefined "$@"
run_tree build-tsan thread "$@"

AUDIT_DIR="$(mktemp -d)"
trap 'rm -rf "$AUDIT_DIR"' EXIT

echo "=== smoke bench (near-instant micro-kernel run) ==="
BENCH_SMOKE=1 tools/bench.sh "$AUDIT_DIR/bench_smoke.json" \
    "$AUDIT_DIR/bench_serve_smoke.json"

echo "=== determinism audit (serial x2 vs --parallel 4) ==="
audit_run() {
  local out="$1"
  shift
  ./build/tools/darl_study --explorer random --trials 6 --timesteps 2048 \
      --seeds 1 --seed 7 --cache "" --csv "$out" "$@" > /dev/null
}
audit_run "$AUDIT_DIR/serial_a.csv"
audit_run "$AUDIT_DIR/serial_b.csv"
audit_run "$AUDIT_DIR/parallel.csv" --parallel 4
cmp "$AUDIT_DIR/serial_a.csv" "$AUDIT_DIR/serial_b.csv" \
  || { echo "determinism audit FAILED: serial reruns differ"; exit 1; }
cmp "$AUDIT_DIR/serial_a.csv" "$AUDIT_DIR/parallel.csv" \
  || { echo "determinism audit FAILED: parallel run differs from serial"; exit 1; }
echo "determinism audit ok: $(wc -l < "$AUDIT_DIR/serial_a.csv") CSV lines byte-identical across runs"

echo "=== check.sh: all gates green ==="
