#!/usr/bin/env bash
# tools/check.sh — the full pre-merge gate.
#
# Static analysis runs first: the lints need only the two analyzer
# binaries, so a discipline violation is reported in seconds, before any
# full tree compiles.
#
# Stages:
#   1. darl_lint     project-specific per-line static analysis over src/
#                    tools/ bench/ tests/ examples/ (zero unsuppressed
#                    findings; suppressions live in tools/darl_lint.supp)
#   2. darl_verify   cross-file concurrency-discipline analysis: guarded
#                    fields, the global lock-order graph, blocking calls
#                    under locks, cv-wait predicates, atomic orderings
#                    (suppressions in tools/darl_verify.supp)
#   3. build/        Release-style tree, full ctest suite
#   4. clang-tidy    optional second opinion (no-ops when absent);
#                    thread-safety + concurrency findings are errors
#   5. build-ubsan/  UndefinedBehaviorSanitizer tree (DARL_SANITIZE=
#                    undefined, non-recovering), full ctest suite
#   6. build-asan/   Address+UB sanitizer tree (DARL_SANITIZE=
#                    address,undefined) with leak detection on: heap
#                    misuse and leaks in the serve/obs teardown paths
#                    show up here
#   7. build-tsan/   ThreadSanitizer tree (DARL_SANITIZE=thread), which
#                    gives the parallel fault-tolerance tests teeth: data
#                    races in Study::run's threaded evaluate/retry/timeout
#                    paths show up here, not in the plain build; the
#                    GemmBitwise suite then reruns in the same tree with
#                    DARL_LINALG_THREADS=4 so the pool's fixed
#                    tile-ownership schedule is raced under TSan
#   8. smoke bench    the gemm/nn/serve/obs micro benchmarks built and run
#                    with a near-zero time budget (BENCH_SMOKE=1
#                    tools/bench.sh) — keeps the benches and all five
#                    JSON distillers (incl. the BENCH_9 kernel report)
#                    working without paying for real timings
#   9. telemetry smoke: darl_serve started with --obs-port 0, its
#                    /healthz and /metrics scraped live over /dev/tcp,
#                    and the serve metric families asserted present
#  10. fleet smoke:  darl_serve as a 2-shard x 2-tenant fleet under
#                    open-loop overload; the scraped labeled counters
#                    must show low-priority shedding, both tenants
#                    serving, per-shard queue gauges, and no shed
#                    counter on the control lane
#  11. distributed smoke: a darl_worker learner plus two independently
#                    launched darl_worker actor processes train an RLlib
#                    job over a Unix socket; the learner's /metrics must
#                    expose the net_* transport families and a nonzero
#                    net_staleness, both actors must exit 0, and the
#                    learner must report the run complete
#  12. determinism audit: the same seeded campaign run twice serially,
#                    once with --parallel 4, and once with the gemm pool
#                    at DARL_LINALG_THREADS=4 must produce byte-identical
#                    trials CSVs — with the telemetry sampler + exporter
#                    enabled (--obs-port 0), proving neither observability
#                    nor the parallel gemm schedule ever perturbs
#                    campaign results; a second campaign whose random
#                    draw includes RLlib nodes=2 trials then reruns with
#                    --distributed, and the multi-process CSV must match
#                    the in-process one byte for byte with nonzero
#                    NetStaleness on the engaged trials
#
# A per-stage wall-clock summary prints at the end.
#
# Usage: tools/check.sh [extra ctest args...]
#   e.g. tools/check.sh -R core_fault
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"

# --------------------------------------------------------------------------
# Per-stage timing: stage NAME starts a stage (closing the previous one);
# the summary at the bottom prints every stage with its wall-clock cost.
STAGE_NAMES=()
STAGE_SECS=()
CURRENT_STAGE=""
STAGE_T0=0
stage_end() {
  [[ -n "$CURRENT_STAGE" ]] || return 0
  STAGE_NAMES+=("$CURRENT_STAGE")
  STAGE_SECS+=($(( $(date +%s) - STAGE_T0 )))
  CURRENT_STAGE=""
}
stage() {
  stage_end
  CURRENT_STAGE="$1"
  STAGE_T0="$(date +%s)"
  echo "=== $1 ==="
}

run_tree() {
  local dir="$1" sanitize="$2"
  shift 2
  echo "--- [$dir] configure (DARL_SANITIZE='$sanitize') ---"
  cmake -B "$dir" -S . -DDARL_SANITIZE="$sanitize"
  echo "--- [$dir] build ---"
  cmake --build "$dir" -j "$JOBS"
  echo "--- [$dir] ctest ---"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" "$@"
}

# --------------------------------------------------------------------------
# Static analysis first: configure the plain tree and build just the two
# analyzer binaries (stdlib-only, seconds) so lint findings arrive before
# any full build is paid for.
stage "darl_lint (per-line static analysis)"
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS" --target darl_lint darl_verify
./build/tools/darl_lint --root .

stage "darl_verify (concurrency discipline)"
./build/tools/darl_verify --root .

stage "build/ (plain tree + ctest)"
run_tree build "" "$@"

stage "clang-tidy (optional)"
tools/run_clang_tidy.sh build

stage "build-ubsan/ (undefined)"
run_tree build-ubsan undefined "$@"

stage "build-asan/ (address,undefined + leaks)"
ASAN_OPTIONS="detect_leaks=1" run_tree build-asan address,undefined "$@"

stage "build-tsan/ (thread)"
run_tree build-tsan thread "$@"
# Re-race the gemm bitwise-equivalence suite with the pool actually wide:
# the full ctest pass above runs at the default width (1), so this is the
# run where TSan watches the fixed tile-ownership schedule's handoff.
echo "--- [build-tsan] GemmBitwise at DARL_LINALG_THREADS=4 ---"
DARL_LINALG_THREADS=4 ./build-tsan/tests/test_linalg \
    --gtest_filter='GemmBitwise.*'

AUDIT_DIR="$(mktemp -d)"
trap 'rm -rf "$AUDIT_DIR"' EXIT

stage "smoke bench (near-instant micro-kernel run)"
BENCH_SMOKE=1 tools/bench.sh "$AUDIT_DIR/bench_smoke.json" \
    "$AUDIT_DIR/bench_serve_smoke.json" "$AUDIT_DIR/bench_obs_smoke.json" \
    "$AUDIT_DIR/bench_openloop_smoke.json" "$AUDIT_DIR/bench_kernel_smoke.json"

stage "telemetry smoke (darl_serve --obs-port, live scrape)"
OBS_LOG="$AUDIT_DIR/obs_serve.log"
./build/tools/darl_serve --train-timesteps 512 --clients 2 --requests 50 \
    --obs-port 0 --obs-linger-s 30 > "$OBS_LOG" 2>&1 &
OBS_PID=$!
obs_port=""
for _ in $(seq 1 300); do
  obs_port="$(sed -n \
      's/^obs: exporter listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$OBS_LOG" | head -n 1)"
  [[ -n "$obs_port" ]] && break
  kill -0 "$OBS_PID" 2>/dev/null \
    || { echo "telemetry smoke FAILED: darl_serve exited early"; \
         cat "$OBS_LOG"; exit 1; }
  sleep 0.2
done
[[ -n "$obs_port" ]] \
  || { echo "telemetry smoke FAILED: exporter never announced its port"; \
       cat "$OBS_LOG"; kill "$OBS_PID" 2>/dev/null; exit 1; }
# Scrape once the serving run is over (the linger window) so the serve
# counter families are guaranteed registered and final.
for _ in $(seq 1 600); do
  grep -q '^obs: lingering' "$OBS_LOG" && break
  sleep 0.2
done
scrape() {  # scrape PATH — raw HTTP/1.0 GET over bash /dev/tcp
  local path="$1"
  exec 3<>"/dev/tcp/127.0.0.1/$obs_port"
  printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
  cat <&3
  exec 3<&- 3>&-
}
healthz="$(scrape /healthz)"
grep -q '200 OK' <<<"$healthz" \
  || { echo "telemetry smoke FAILED: /healthz not 200"; \
       echo "$healthz"; kill "$OBS_PID" 2>/dev/null; exit 1; }
metrics="$(scrape /metrics)"
for family in serve_requests serve_served serve_batches serve_queue_depth \
              serve_latency_us serve_batch_rows; do
  grep -q "^$family" <<<"$metrics" \
    || { echo "telemetry smoke FAILED: family '$family' missing from /metrics"; \
         echo "$metrics" | head -n 40; kill "$OBS_PID" 2>/dev/null; exit 1; }
done
kill "$OBS_PID" 2>/dev/null || true
wait "$OBS_PID" 2>/dev/null || true
echo "telemetry smoke ok: port $obs_port, /healthz 200, $(grep -c '^serve_' <<<"$metrics") serve_* series scraped"

stage "fleet smoke (2 shards x 2 tenants, shedding under overload)"
# Open-loop offered load well beyond the fleet's deliberately throttled
# capacity (tiny queues, wide batching window), mixed priorities: the
# labeled shed counters must show low/normal traffic being dropped while
# both tenants keep serving and no control traffic is ever shed.
FLEET_LOG="$AUDIT_DIR/fleet_serve.log"
./build/tools/darl_serve --train-timesteps 512 --clients 16 --requests 200 \
    --tenants 2 --shards 2 --priority mixed --open-loop --rate-per-s 6000 \
    --arrival bursty --max-batch 64 --max-delay-us 5000 --queue-cap 4 \
    --no-gather --obs-port 0 --obs-linger-s 5 > "$FLEET_LOG" 2>&1 &
FLEET_PID=$!
fleet_port=""
for _ in $(seq 1 300); do
  fleet_port="$(sed -n \
      's/^obs: exporter listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$FLEET_LOG" | head -n 1)"
  [[ -n "$fleet_port" ]] && break
  kill -0 "$FLEET_PID" 2>/dev/null \
    || { echo "fleet smoke FAILED: darl_serve exited early"; \
         cat "$FLEET_LOG"; exit 1; }
  sleep 0.2
done
[[ -n "$fleet_port" ]] \
  || { echo "fleet smoke FAILED: exporter never announced its port"; \
       cat "$FLEET_LOG"; kill "$FLEET_PID" 2>/dev/null; exit 1; }
for _ in $(seq 1 600); do
  grep -q '^obs: lingering' "$FLEET_LOG" && break
  sleep 0.2
done
obs_port="$fleet_port"
fleet_metrics="$(scrape /metrics)"
fleet_fail() {
  echo "fleet smoke FAILED: $1"
  echo "$fleet_metrics" | grep '^serve_' | head -n 40
  kill "$FLEET_PID" 2>/dev/null
  exit 1
}
# Per-shard labeled queue gauges exist for every (shard, tenant) pair.
for shard in 0 1; do
  for tenant in t0 t1; do
    grep -q "^serve_queue_depth{shard=\"$shard\",tenant=\"$tenant\"}" \
        <<<"$fleet_metrics" \
      || fleet_fail "queue gauge missing for shard=$shard tenant=$tenant"
  done
done
# Both tenants actually served traffic.
for tenant in t0 t1; do
  served="$(grep "^serve_served{.*tenant=\"$tenant\"}" <<<"$fleet_metrics" \
      | awk '{s += $NF} END {print s+0}')"
  [[ "$served" -gt 0 ]] || fleet_fail "tenant $tenant served nothing"
done
# Overload shed low-priority traffic (counted per tenant and priority)...
shed_total="$(grep '^serve_shed{priority="low"' <<<"$fleet_metrics" \
    | awk '{s += $NF} END {print s+0}')"
[[ "$shed_total" -gt 0 ]] \
  || fleet_fail "no low-priority shedding under 6k/s against a ~3k/s fleet"
# ...but control traffic is never shed: the lane has no shed counter at all.
grep -q '^serve_shed{priority="control"' <<<"$fleet_metrics" \
  && fleet_fail "control lane grew a shed counter"
# Let the short linger expire so the per-shard bitwise self-check prints.
wait "$FLEET_PID" \
  || { echo "fleet smoke FAILED: darl_serve exited nonzero"; \
       cat "$FLEET_LOG"; exit 1; }
grep -q 'self-check: all .* bitwise-identical' "$FLEET_LOG" \
  || fleet_fail "fleet self-check line missing"
echo "fleet smoke ok: port $fleet_port, $shed_total low-priority requests shed, both tenants serving"

stage "distributed smoke (learner + 2 actor processes over a unix socket)"
DIST_LOG="$AUDIT_DIR/dist_learner.log"
DIST_EP="unix:$AUDIT_DIR/dist.sock"
./build/tools/darl_worker --role learner --listen "$DIST_EP" --nodes 3 \
    --cores 2 --timesteps 4096 --seed 7 --spawn-actors 0 \
    --obs-port 0 --obs-linger-s 30 > "$DIST_LOG" 2>&1 &
DIST_PID=$!
# The actors are launched here, not by the learner (--spawn-actors 0):
# this is the stage that proves three genuinely independent processes
# assemble into one training run.
./build/tools/darl_worker --role actor --connect "$DIST_EP" --node 1 \
    > "$AUDIT_DIR/dist_actor1.log" 2>&1 &
DIST_A1_PID=$!
./build/tools/darl_worker --role actor --connect "$DIST_EP" --node 2 \
    > "$AUDIT_DIR/dist_actor2.log" 2>&1 &
DIST_A2_PID=$!
dist_port=""
for _ in $(seq 1 300); do
  dist_port="$(sed -n \
      's/^obs: exporter listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$DIST_LOG" | head -n 1)"
  [[ -n "$dist_port" ]] && break
  kill -0 "$DIST_PID" 2>/dev/null \
    || { echo "distributed smoke FAILED: learner exited early"; \
         cat "$DIST_LOG"; exit 1; }
  sleep 0.2
done
[[ -n "$dist_port" ]] \
  || { echo "distributed smoke FAILED: exporter never announced its port"; \
       cat "$DIST_LOG"; kill "$DIST_PID" 2>/dev/null; exit 1; }
# Both actors must finish cleanly (the learner sends Stop, they ack Bye).
wait "$DIST_A1_PID" \
  || { echo "distributed smoke FAILED: actor 1 exited nonzero"; \
       cat "$AUDIT_DIR/dist_actor1.log"; kill "$DIST_PID" 2>/dev/null; exit 1; }
wait "$DIST_A2_PID" \
  || { echo "distributed smoke FAILED: actor 2 exited nonzero"; \
       cat "$AUDIT_DIR/dist_actor2.log"; kill "$DIST_PID" 2>/dev/null; exit 1; }
# Scrape during the post-run linger window: every counter is final.
for _ in $(seq 1 600); do
  grep -q '^obs: lingering' "$DIST_LOG" && break
  sleep 0.2
done
obs_port="$dist_port"
dist_metrics="$(scrape /metrics)"
dist_fail() {
  echo "distributed smoke FAILED: $1"
  echo "$dist_metrics" | grep '^net_' | head -n 20
  kill "$DIST_PID" 2>/dev/null
  exit 1
}
for family in net_accepts net_frames_sent net_frames_received \
              net_bytes_sent net_bytes_received net_weights_published \
              net_staleness; do
  grep -q "^$family" <<<"$dist_metrics" \
    || dist_fail "family '$family' missing from /metrics"
done
# Remote batches lag the published weights by design, so the mean
# staleness of the final iteration must be strictly positive.
staleness="$(grep '^net_staleness ' <<<"$dist_metrics" | awk '{print $2}')"
awk -v s="$staleness" 'BEGIN { exit !(s > 0) }' \
  || dist_fail "net_staleness not positive (got '$staleness')"
grep -q '^learner: run complete$' "$DIST_LOG" \
  || dist_fail "learner never reported 'run complete'"
grep -q '^actor node 1: served' "$AUDIT_DIR/dist_actor1.log" \
  || dist_fail "actor 1 served nothing"
grep -q '^actor node 2: served' "$AUDIT_DIR/dist_actor2.log" \
  || dist_fail "actor 2 served nothing"
kill "$DIST_PID" 2>/dev/null || true
wait "$DIST_PID" 2>/dev/null || true
echo "distributed smoke ok: port $dist_port, staleness $staleness, both actors served and exited 0"

stage "determinism audit (serial x2, --parallel 4, gemm pool x4, telemetry on)"
audit_run() {
  local out="$1"
  shift
  ./build/tools/darl_study --explorer random --trials 6 --timesteps 2048 \
      --seeds 1 --seed 7 --cache "" --csv "$out" --obs-port 0 "$@" > /dev/null
}
audit_run "$AUDIT_DIR/serial_a.csv"
audit_run "$AUDIT_DIR/serial_b.csv"
audit_run "$AUDIT_DIR/parallel.csv" --parallel 4
# The gemm pool at width 4: every Matrix::gemm in the campaign now runs
# the parallel fixed-tile schedule, and the CSVs must not move a byte.
DARL_LINALG_THREADS=4 audit_run "$AUDIT_DIR/threads4.csv"
cmp "$AUDIT_DIR/serial_a.csv" "$AUDIT_DIR/serial_b.csv" \
  || { echo "determinism audit FAILED: serial reruns differ"; exit 1; }
cmp "$AUDIT_DIR/serial_a.csv" "$AUDIT_DIR/parallel.csv" \
  || { echo "determinism audit FAILED: parallel run differs from serial"; exit 1; }
cmp "$AUDIT_DIR/serial_a.csv" "$AUDIT_DIR/threads4.csv" \
  || { echo "determinism audit FAILED: DARL_LINALG_THREADS=4 run differs from serial"; exit 1; }
# Multi-process leg: seed 1's random draw includes two RLlib nodes=2
# trials (seed 7's has none), so --distributed actually spawns actor
# processes; the campaign CSV must still match the in-process run byte
# for byte, and the engaged trials must report nonzero NetStaleness.
audit_run "$AUDIT_DIR/dist_inproc.csv" --seed 1
audit_run "$AUDIT_DIR/dist_mp.csv" --seed 1 --distributed
cmp "$AUDIT_DIR/dist_inproc.csv" "$AUDIT_DIR/dist_mp.csv" \
  || { echo "determinism audit FAILED: --distributed run differs from in-process"; exit 1; }
grep -q 'framework=RLlib, nodes=[^1]' "$AUDIT_DIR/dist_mp.csv" \
  || { echo "determinism audit FAILED: no multi-node RLlib trial engaged the distributed path"; exit 1; }
grep 'framework=RLlib, nodes=[^1]' "$AUDIT_DIR/dist_mp.csv" \
    | awk -F, '$NF <= 0 { bad = 1 } END { exit bad }' \
  || { echo "determinism audit FAILED: an engaged trial reported zero NetStaleness"; exit 1; }
echo "determinism audit ok: $(wc -l < "$AUDIT_DIR/serial_a.csv") CSV lines byte-identical across runs (incl. gemm pool at 4 threads and the multi-process --distributed leg)"

stage_end
echo "=== stage timing ==="
for i in "${!STAGE_NAMES[@]}"; do
  printf '  %4ds  %s\n' "${STAGE_SECS[$i]}" "${STAGE_NAMES[$i]}"
done
echo "=== check.sh: all gates green ==="
