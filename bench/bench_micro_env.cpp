// Microbenchmarks: environment step throughput — the airdrop simulator per
// Runge-Kutta order (the CPU-heavy part the paper's cluster spends its time
// on) and the classic-control environments for reference.

#include <benchmark/benchmark.h>

#include "darl/airdrop/airdrop_env.hpp"
#include "darl/env/cartpole.hpp"
#include "darl/env/gridworld.hpp"
#include "darl/env/mountain_car.hpp"
#include "darl/env/pendulum.hpp"
#include "darl/env/vec_env.hpp"

namespace {

using namespace darl;

void BM_AirdropStep(benchmark::State& state) {
  airdrop::AirdropConfig cfg;
  cfg.rk_order = static_cast<ode::RkOrder>(state.range(0));
  cfg.altitude_min = 100.0;
  cfg.altitude_max = 400.0;
  airdrop::AirdropEnv env(cfg);
  env.seed(1);
  env.reset();
  const Vec action{2.0};
  for (auto _ : state) {
    const env::StepResult r = env.step(action);
    benchmark::DoNotOptimize(r.reward);
    if (r.done()) env.reset();
  }
  state.counters["cost_units_per_step"] =
      env.take_compute_cost() / static_cast<double>(state.iterations());
}

void BM_CartPoleStep(benchmark::State& state) {
  env::CartPoleEnv env;
  env.seed(2);
  env.reset();
  for (auto _ : state) {
    const env::StepResult r = env.step(Vec{1.0});
    benchmark::DoNotOptimize(r.reward);
    if (r.done()) env.reset();
  }
}

void BM_PendulumStep(benchmark::State& state) {
  env::PendulumEnv env;
  env.seed(3);
  env.reset();
  for (auto _ : state) {
    const env::StepResult r = env.step(Vec{0.5});
    benchmark::DoNotOptimize(r.reward);
  }
}

void BM_MountainCarStep(benchmark::State& state) {
  env::MountainCarEnv env;
  env.seed(4);
  Vec obs = env.reset();
  for (auto _ : state) {
    const env::StepResult r = env.step({obs[1] >= 0.0 ? 1.0 : -1.0});
    obs = r.observation;
    benchmark::DoNotOptimize(r.reward);
    if (r.terminated) obs = env.reset();
  }
}

void BM_GridWorldStep(benchmark::State& state) {
  env::GridWorldEnv env;
  env.seed(5);
  env.reset();
  Rng rng(5);
  for (auto _ : state) {
    const env::StepResult r = env.step({static_cast<double>(rng.index(4))});
    benchmark::DoNotOptimize(r.reward);
    if (r.done()) env.reset();
  }
}

void BM_VecEnvStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  env::SyncVecEnv vec(env::make_cartpole_factory(200), n, 7);
  vec.reset();
  const std::vector<Vec> actions(n, Vec{1.0});
  for (auto _ : state) {
    const auto r = vec.step(actions);
    benchmark::DoNotOptimize(r.reward.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

}  // namespace

BENCHMARK(BM_AirdropStep)->Arg(3)->Arg(5)->Arg(8);
BENCHMARK(BM_CartPoleStep);
BENCHMARK(BM_PendulumStep);
BENCHMARK(BM_MountainCarStep);
BENCHMARK(BM_GridWorldStep);
BENCHMARK(BM_VecEnvStep)->Arg(1)->Arg(4)->Arg(16);
