// Ablation: vectorized-environment count (paper §VI-C, solution 14).
// Stable Baselines uses one vectorized environment per core, so fewer
// cores mean smaller batches and more frequent updates per sample — which
// is why the 2-core solution 14 scores nearly as well as the 8th-order
// 4-core solution 16 while using the cheap RK3 integrator.

#include <cstdio>

#include "campaign_common.hpp"

int main() {
  std::printf("=== Ablation: vectorization (Stable Baselines PPO) ===\n\n");
  const auto trials = darl::bench::campaign_trials();

  std::printf("RK3:  2 cores (sol 14) vs 4 cores (sol 15)\n");
  darl::bench::print_solution_row(darl::bench::solution(trials, 14));
  darl::bench::print_solution_row(darl::bench::solution(trials, 15));
  std::printf("RK8:  2 cores (sol 18) vs 4 cores (sol 16)\n");
  darl::bench::print_solution_row(darl::bench::solution(trials, 18));
  darl::bench::print_solution_row(darl::bench::solution(trials, 16));

  auto m = [&](std::size_t id, const char* name) {
    return darl::bench::solution(trials, id).metrics.at(name);
  };
  std::printf("\nShape:\n");
  std::printf("  4 cores faster than 2 at both orders: %s\n",
              m(15, "ComputationTime") < m(14, "ComputationTime") &&
                      m(16, "ComputationTime") < m(18, "ComputationTime")
                  ? "PASS"
                  : "MISS");
  std::printf(
      "  the 2-core RK3 run (sol 14) lands within 0.1 reward of the 4-core "
      "RK8 run (sol 16): %s (%.3f vs %.3f)\n",
      std::abs(m(14, "Reward") - m(16, "Reward")) < 0.1 ? "PASS" : "MISS",
      m(14, "Reward"), m(16, "Reward"));
  return 0;
}
