// Microbenchmarks: neural substrate — MLP forward/backward at the policy
// sizes the study uses, optimizer steps, and distribution sampling.

#include <benchmark/benchmark.h>

#include "darl/common/rng.hpp"
#include "darl/nn/distributions.hpp"
#include "darl/nn/mlp.hpp"
#include "darl/nn/optimizer.hpp"

namespace {

using namespace darl;

void BM_MlpForward(benchmark::State& state) {
  Rng rng(1);
  const auto h = static_cast<std::size_t>(state.range(0));
  nn::Mlp net({12, h, h, 3}, nn::Activation::Tanh, rng);
  const Vec x(12, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.evaluate(x).data());
  }
  state.counters["flops"] = net.flops_per_forward();
}

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(2);
  const auto h = static_cast<std::size_t>(state.range(0));
  nn::Mlp net({12, h, h, 3}, nn::Activation::Tanh, rng);
  const Vec x(12, 0.3);
  const Vec g{1.0, -1.0, 0.5};
  for (auto _ : state) {
    net.forward(x);
    benchmark::DoNotOptimize(net.backward(g).data());
  }
}

void BM_AdamStep(benchmark::State& state) {
  Rng rng(3);
  nn::Mlp net({12, 64, 64, 3}, nn::Activation::Tanh, rng);
  nn::Adam opt(net.params(), 3e-4);
  net.forward(Vec(12, 0.1));
  net.backward(Vec{1.0, 1.0, 1.0});
  for (auto _ : state) {
    opt.step();
  }
  state.counters["params"] = static_cast<double>(net.param_count());
}

void BM_CategoricalSample(benchmark::State& state) {
  Rng rng(4);
  const Vec logits{0.3, -0.5, 1.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Categorical::sample(logits, rng));
  }
}

void BM_SquashedGaussianSample(benchmark::State& state) {
  Rng rng(5);
  const Vec mean{0.1}, log_std{-0.5};
  for (auto _ : state) {
    const auto d = nn::SquashedGaussian::sample(mean, log_std, rng);
    benchmark::DoNotOptimize(d.log_prob);
  }
}

}  // namespace

BENCHMARK(BM_MlpForward)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_MlpForwardBackward)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_AdamStep);
BENCHMARK(BM_CategoricalSample);
BENCHMARK(BM_SquashedGaussianSample);
