// Microbenchmarks: neural substrate — MLP forward/backward at the policy
// sizes the study uses, optimizer steps, and distribution sampling.

#include <benchmark/benchmark.h>

#include "darl/common/rng.hpp"
#include "darl/linalg/matrix.hpp"
#include "darl/linalg/thread_pool.hpp"
#include "darl/nn/distributions.hpp"
#include "darl/nn/mlp.hpp"
#include "darl/nn/optimizer.hpp"
#include "darl/nn/quantize.hpp"

namespace {

using namespace darl;

void BM_MlpForward(benchmark::State& state) {
  Rng rng(1);
  const auto h = static_cast<std::size_t>(state.range(0));
  nn::Mlp net({12, h, h, 3}, nn::Activation::Tanh, rng);
  const Vec x(12, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.evaluate(x).data());
  }
  state.counters["flops"] = net.flops_per_forward();
}

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(2);
  const auto h = static_cast<std::size_t>(state.range(0));
  nn::Mlp net({12, h, h, 3}, nn::Activation::Tanh, rng);
  const Vec x(12, 0.3);
  const Vec g{1.0, -1.0, 0.5};
  for (auto _ : state) {
    net.forward(x);
    benchmark::DoNotOptimize(net.backward(g).data());
  }
}

// Batched inference: one evaluate_batch call over `batch` observation rows.
// Args: {hidden width, batch rows}.
void BM_MlpForwardBatch(benchmark::State& state) {
  Rng rng(6);
  const auto h = static_cast<std::size_t>(state.range(0));
  const auto b = static_cast<std::size_t>(state.range(1));
  nn::Mlp net({12, h, h, 3}, nn::Activation::Tanh, rng);
  const Matrix x(b, 12, 0.3);
  net.evaluate_batch(x);  // size the workspaces outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.evaluate_batch(x).data().data());
  }
  const double flops =
      net.flops_per_forward() * static_cast<double>(b);
  state.counters["flops/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

// Batched training step kernels: forward_batch + backward_batch over
// `batch` rows. Args: {hidden width, batch rows}.
void BM_MlpForwardBackwardBatch(benchmark::State& state) {
  Rng rng(7);
  const auto h = static_cast<std::size_t>(state.range(0));
  const auto b = static_cast<std::size_t>(state.range(1));
  nn::Mlp net({12, h, h, 3}, nn::Activation::Tanh, rng);
  const Matrix x(b, 12, 0.3);
  const Matrix g(b, 3, 0.5);
  net.forward_batch(x);
  net.backward_batch(g);  // size the workspaces outside the timed loop
  for (auto _ : state) {
    net.zero_grad();
    net.forward_batch(x);
    benchmark::DoNotOptimize(net.backward_batch(g).data().data());
  }
  const double flops =
      3.0 * net.flops_per_forward() * static_cast<double>(b);
  state.counters["flops/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

// The batched training step under a swept linalg::ThreadPool width.
// Args: {hidden width, batch rows, threads}. The pool is reconfigured at
// benchmark entry (a quiescent point) and restored afterwards; results
// are bitwise-identical across widths, only the wall clock moves.
void BM_MlpForwardBackwardBatchThreads(benchmark::State& state) {
  Rng rng(7);
  const auto h = static_cast<std::size_t>(state.range(0));
  const auto b = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  linalg::ThreadPool::instance().configure(threads);
  nn::Mlp net({12, h, h, 3}, nn::Activation::Tanh, rng);
  const Matrix x(b, 12, 0.3);
  const Matrix g(b, 3, 0.5);
  net.forward_batch(x);
  net.backward_batch(g);  // size the workspaces outside the timed loop
  for (auto _ : state) {
    net.zero_grad();
    net.forward_batch(x);
    benchmark::DoNotOptimize(net.backward_batch(g).data().data());
  }
  const double flops =
      3.0 * net.flops_per_forward() * static_cast<double>(b);
  state.counters["flops/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  linalg::ThreadPool::instance().configure(linalg::env_thread_width());
}

// int8 row-quantized batched inference (the darl/serve quantized path)
// against BM_MlpForwardBatch at the same shape. Args: {hidden, batch}.
void BM_MlpEvaluateBatchQuantized(benchmark::State& state) {
  Rng rng(6);
  const auto h = static_cast<std::size_t>(state.range(0));
  const auto b = static_cast<std::size_t>(state.range(1));
  nn::Mlp net({12, h, h, 3}, nn::Activation::Tanh, rng);
  const nn::QuantizedNet qn = nn::quantize_mlp_params(
      {12, h, h, 3}, nn::Activation::Tanh, net.get_flat_params());
  const Matrix x(b, 12, 0.3);
  net.evaluate_batch_quantized(x, qn);  // size workspaces untimed
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.evaluate_batch_quantized(x, qn).data().data());
  }
  const double flops =
      net.flops_per_forward() * static_cast<double>(b);
  state.counters["flops/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

// Faithful replica of the pre-batching per-sample implementation: plain
// matvec per layer (one serial accumulator chain per output), a copy of
// every layer input, fresh Vec allocations per call, and the activation
// derivative recomputed from the pre-activation in backward. This is what
// one training sample cost before the batched kernels landed, kept here as
// the speedup baseline for BM_MlpForwardBackwardBatch.
struct ReferenceMlp {
  std::vector<Matrix> w;
  std::vector<Vec> b;
  std::vector<Matrix> gw;
  std::vector<Vec> gb;
  std::vector<Vec> inputs, pre;

  ReferenceMlp(const std::vector<std::size_t>& sizes, Rng& rng) {
    const std::size_t layers = sizes.size() - 1;
    for (std::size_t l = 0; l < layers; ++l) {
      Matrix m(sizes[l + 1], sizes[l]);
      m.randomize_kaiming(rng);
      w.push_back(std::move(m));
      b.emplace_back(sizes[l + 1], 0.0);
      gw.emplace_back(sizes[l + 1], sizes[l], 0.0);
      gb.emplace_back(sizes[l + 1], 0.0);
    }
    inputs.resize(layers);
    pre.resize(layers);
  }

  Vec forward(const Vec& x) {
    Vec a = x;
    for (std::size_t l = 0; l < w.size(); ++l) {
      inputs[l] = a;
      Vec z = w[l].matvec(a);
      axpy(1.0, b[l], z);
      pre[l] = z;
      if (l + 1 < w.size()) {
        for (double& v : z) v = std::tanh(v);
      }
      a = std::move(z);
    }
    return a;
  }

  Vec backward(const Vec& grad_output) {
    Vec delta = grad_output;
    for (std::size_t li = w.size(); li-- > 0;) {
      if (li + 1 < w.size()) {
        for (std::size_t i = 0; i < delta.size(); ++i) {
          const double t = std::tanh(pre[li][i]);
          delta[i] *= 1.0 - t * t;
        }
      }
      gw[li].add_outer(1.0, delta, inputs[li]);
      axpy(1.0, delta, gb[li]);
      delta = w[li].matvec_t(delta);
    }
    return delta;
  }

  void zero_grad() {
    for (auto& g : gw) g.fill(0.0);
    for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0);
  }
};

void BM_MlpForwardBackwardPerSampleLoop(benchmark::State& state) {
  Rng rng(7);
  const auto h = static_cast<std::size_t>(state.range(0));
  const auto b = static_cast<std::size_t>(state.range(1));
  ReferenceMlp net({12, h, h, 3}, rng);
  const Vec x(12, 0.3);
  const Vec g(3, 0.5);
  for (auto _ : state) {
    net.zero_grad();
    for (std::size_t i = 0; i < b; ++i) {
      net.forward(x);
      benchmark::DoNotOptimize(net.backward(g).data());
    }
  }
  nn::Mlp shape_twin({12, h, h, 3}, nn::Activation::Tanh, rng);
  const double flops =
      3.0 * shape_twin.flops_per_forward() * static_cast<double>(b);
  state.counters["flops/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

// The current per-sample API (batch-of-1 wrappers over the batched
// kernels), issued `batch` times — shows how much of the win comes from
// the kernels alone versus actually batching the call.
void BM_MlpForwardBackwardWrapperLoop(benchmark::State& state) {
  Rng rng(7);
  const auto h = static_cast<std::size_t>(state.range(0));
  const auto b = static_cast<std::size_t>(state.range(1));
  nn::Mlp net({12, h, h, 3}, nn::Activation::Tanh, rng);
  const Vec x(12, 0.3);
  const Vec g(3, 0.5);
  for (auto _ : state) {
    net.zero_grad();
    for (std::size_t i = 0; i < b; ++i) {
      net.forward(x);
      benchmark::DoNotOptimize(net.backward(g).data());
    }
  }
  const double flops =
      3.0 * net.flops_per_forward() * static_cast<double>(b);
  state.counters["flops/s"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_AdamStep(benchmark::State& state) {
  Rng rng(3);
  nn::Mlp net({12, 64, 64, 3}, nn::Activation::Tanh, rng);
  nn::Adam opt(net.params(), 3e-4);
  net.forward(Vec(12, 0.1));
  net.backward(Vec{1.0, 1.0, 1.0});
  for (auto _ : state) {
    opt.step();
  }
  state.counters["params"] = static_cast<double>(net.param_count());
}

void BM_CategoricalSample(benchmark::State& state) {
  Rng rng(4);
  const Vec logits{0.3, -0.5, 1.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Categorical::sample(logits, rng));
  }
}

void BM_SquashedGaussianSample(benchmark::State& state) {
  Rng rng(5);
  const Vec mean{0.1}, log_std{-0.5};
  for (auto _ : state) {
    const auto d = nn::SquashedGaussian::sample(mean, log_std, rng);
    benchmark::DoNotOptimize(d.log_prob);
  }
}

}  // namespace

BENCHMARK(BM_MlpForward)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_MlpForwardBackward)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_MlpForwardBatch)
    ->Args({64, 1})
    ->Args({64, 7})
    ->Args({64, 64})
    ->Args({128, 64});
BENCHMARK(BM_MlpForwardBackwardBatch)
    ->Args({64, 1})
    ->Args({64, 7})
    ->Args({64, 64})
    ->Args({128, 64});
BENCHMARK(BM_MlpForwardBackwardBatchThreads)
    ->Args({64, 64, 1})
    ->Args({64, 64, 2})
    ->Args({64, 64, 4})
    ->Args({64, 64, 8})
    ->Args({128, 256, 1})
    ->Args({128, 256, 4});
BENCHMARK(BM_MlpEvaluateBatchQuantized)
    ->Args({64, 1})
    ->Args({64, 64})
    ->Args({128, 64});
BENCHMARK(BM_MlpForwardBackwardPerSampleLoop)->Args({64, 64})->Args({128, 64});
BENCHMARK(BM_MlpForwardBackwardWrapperLoop)->Args({64, 64})->Args({128, 64});
BENCHMARK(BM_AdamStep);
BENCHMARK(BM_CategoricalSample);
BENCHMARK(BM_SquashedGaussianSample);
