// Microbenchmarks: the policy inference server under closed- and
// open-loop load.
//
// BM_ServeClosedLoop sweeps client count (offered load) x max_batch
// (batching window): each iteration spawns `clients` threads that each
// issue a fixed burst of requests back-to-back, so the server saturates at
// the thread count's natural concurrency. max_batch=1 with a zero window
// is the no-batching baseline; the report distilled into BENCH_5.json
// (tools/bench.sh) tracks how much throughput micro-batching buys at
// saturating load, plus p50/p99 latency from the server's own
// per-request clocks.
//
// BM_ServeOpenLoop sweeps *offered arrival rate* x max_batch through the
// serve::Router fleet path. Generators schedule arrivals independently of
// completions (Poisson / bursty / heavy-tailed, serve/arrival.hpp) and
// measure latency from the scheduled arrival, so when the server can no
// longer keep up the lateness is charged to the requests instead of being
// absorbed by a slowing client. The distilled BENCH_7.json tracks the
// saturation knee per configuration (highest offered rate still achieving
// >= 95%) and the batched-vs-batch-1 comparison beyond the batch-1 knee,
// where batch-1's open-loop p99.9 explodes with the growing backlog while
// the batched fleet keeps it bounded.

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>
#include <vector>

#include "darl/common/rng.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/obs/percentile.hpp"
#include "darl/serve/arrival.hpp"
#include "darl/serve/batch_scheduler.hpp"
#include "darl/serve/policy_store.hpp"
#include "darl/serve/router.hpp"

namespace {

using namespace darl;

constexpr std::size_t kObsDim = 64;
constexpr std::size_t kRequestsPerClient = 64;

// A serving-scale policy (much wider than the study's 64-unit training
// nets): per-sample evaluation is ~50us, so execution dominates the
// per-request scheduling constants and the gemm per-row advantage of
// evaluate_batch (DESIGN.md §11) is what the batched settings harvest.
serve::PolicySpec bench_spec() {
  serve::PolicySpec spec;
  spec.sizes = {kObsDim, 256, 256, 16};
  spec.activation = nn::Activation::Tanh;
  Rng rng(1);
  nn::Mlp net(spec.sizes, spec.activation, rng);
  spec.net_params = net.get_flat_params();
  spec.action_space = env::ActionSpace(env::DiscreteSpace(16));
  spec.decode = serve::GreedyDecode::ArgmaxDiscrete;
  return spec;
}

// Args: {clients, max_batch, max_delay_us}. Three window settings per
// offered load:
//   {c, 1, 0}    — per-sample baseline, no batching anywhere
//   {c, 64, 0}   — greedy batching: serve whatever queued while the
//                  worker was busy (the backlog is the batch)
//   {c, 64, 200} — yield-gather batching bounded by a 200us window
// The gemm per-row advantage needs tens of rows to pay for itself
// (DESIGN.md §11), so the batched cells pull ahead decisively once the
// client count can actually fill such batches (the 64-client rows).
void BM_ServeClosedLoop(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  const auto max_batch = static_cast<std::size_t>(state.range(1));
  const auto delay_us = static_cast<double>(state.range(2));

  serve::PolicyStore store;
  store.publish(bench_spec());
  serve::ServeConfig config;
  config.max_batch = max_batch;
  config.max_delay_us = delay_us;
  config.queue_capacity = 4096;
  // One dispatcher: the committed baseline runs on a single-core machine,
  // where extra workers only add scheduling noise. Multi-core runners can
  // raise this along with the client counts.
  config.workers = 1;
  serve::BatchScheduler server(store, config);

  // Pre-generated observations: the benchmark measures serving, not rng.
  std::vector<Vec> observations(clients * kRequestsPerClient);
  {
    Rng rng(7);
    for (Vec& obs : observations) {
      obs.resize(kObsDim);
      for (double& v : obs) v = rng.uniform(-1.0, 1.0);
    }
  }

  // Closed-loop think time: a real client computes its next observation
  // (simulator step, feature assembly) between requests. The spin also
  // lets concurrent requests pile into the queue, which is what the
  // batching window exists to harvest.
  auto think = [](const Vec& obs) {
    double acc = 0.0;
    for (int spin = 0; spin < 200; ++spin) {
      for (double v : obs) acc += v * v;
    }
    benchmark::DoNotOptimize(acc);
  };

  std::vector<double> latencies_us;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_client(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        per_client[c].reserve(kRequestsPerClient);
        for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
          const Vec& obs = observations[c * kRequestsPerClient + r];
          think(obs);
          const serve::Response response = server.serve(obs);
          benchmark::DoNotOptimize(response.action.data());
          per_client[c].push_back(response.latency_us);
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& pc : per_client) {
      latencies_us.insert(latencies_us.end(), pc.begin(), pc.end());
    }
  }

  const auto total = static_cast<std::int64_t>(clients * kRequestsPerClient);
  state.SetItemsProcessed(state.iterations() * total);
  if (!latencies_us.empty()) {
    state.counters["p50_us"] = obs::percentile(latencies_us, 50.0);
    state.counters["p99_us"] = obs::percentile(latencies_us, 99.0);
  }
}

// Args: {rate_per_s, max_batch, arrival} with arrival 0 = poisson,
// 1 = bursty, 2 = heavytail. 32 generator threads split the offered rate;
// each sleeps to its own arrival schedule and issues one Normal-priority
// request through a single-shard Router (the fleet admission path), so
// in-flight concurrency — and therefore the largest harvestable
// micro-batch — is the number of generators that have fallen behind.
// Latency is wall clock from the *scheduled* arrival: beyond the knee the
// backlog grows for the whole iteration and p99.9 shows it.
void BM_ServeOpenLoop(benchmark::State& state) {
  const auto rate_per_s = static_cast<double>(state.range(0));
  const auto max_batch = static_cast<std::size_t>(state.range(1));
  const auto arrival = static_cast<serve::Arrival>(state.range(2));

  constexpr std::size_t kGenerators = 32;
  constexpr double kIterationSeconds = 0.25;

  serve::PolicyStore store;
  store.publish(bench_spec());
  serve::RouterConfig cfg;
  cfg.shards = 1;
  cfg.shard.max_batch = max_batch;
  cfg.shard.max_delay_us = max_batch > 1 ? 200.0 : 0.0;
  // Deep queue and <= kGenerators in flight: the shed watermarks never
  // trip, so the knee appears purely as achieved-vs-offered divergence
  // plus open-loop latency growth (shedding is covered by test_serve).
  cfg.shard.queue_capacity = 4096;
  cfg.shard.workers = 1;
  serve::Router router(store, cfg);

  const double mean_gap_s =
      static_cast<double>(kGenerators) / rate_per_s;

  std::vector<Vec> observations(kGenerators);
  {
    Rng rng(7);
    for (Vec& obs : observations) {
      obs.resize(kObsDim);
      for (double& v : obs) v = rng.uniform(-1.0, 1.0);
    }
  }

  std::vector<double> latencies_us;
  std::size_t ok_total = 0;
  std::size_t offered_total = 0;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_gen(kGenerators);
    std::vector<std::size_t> oks(kGenerators, 0);
    std::vector<std::thread> threads;
    threads.reserve(kGenerators);
    for (std::size_t g = 0; g < kGenerators; ++g) {
      threads.emplace_back([&, g] {
        Rng rng(splitmix64(0xBEEF + g));
        serve::ArrivalProcess arrivals(arrival, mean_gap_s);
        const Vec& obs = observations[g];
        Stopwatch wall;
        // Fixed arrival *window*, not a fixed request count: every
        // generator's schedule spans exactly kIterationSeconds, so below
        // the knee the iteration's wall clock is the window plus a small
        // drain tail and achieved ~= offered; beyond the knee the drain
        // tail is the backlog and achieved collapses.
        double next_arrival_s = arrivals.next_gap_s(rng);
        for (std::uint64_t r = 0; next_arrival_s < kIterationSeconds; ++r) {
          const double now_s = wall.seconds();
          if (now_s < next_arrival_s) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(next_arrival_s - now_s));
          }
          const serve::Response response = router.serve(
              "", splitmix64((g << 32) + r), obs);
          benchmark::DoNotOptimize(response.action.data());
          per_gen[g].push_back((wall.seconds() - next_arrival_s) * 1e6);
          if (response.outcome == serve::Outcome::Ok) ++oks[g];
          next_arrival_s += arrivals.next_gap_s(rng);
        }
      });
    }
    for (auto& t : threads) t.join();
    for (std::size_t g = 0; g < kGenerators; ++g) {
      latencies_us.insert(latencies_us.end(), per_gen[g].begin(),
                          per_gen[g].end());
      ok_total += oks[g];
      offered_total += per_gen[g].size();
    }
  }

  // items/s with UseRealTime = completed requests per wall second: the
  // achieved rate the distiller compares against offered_per_s.
  state.SetItemsProcessed(static_cast<std::int64_t>(ok_total));
  state.counters["offered_per_s"] = rate_per_s;
  state.counters["ok_frac"] =
      offered_total > 0
          ? static_cast<double>(ok_total) / static_cast<double>(offered_total)
          : 0.0;
  if (!latencies_us.empty()) {
    state.counters["p50_us"] = obs::percentile(latencies_us, 50.0);
    state.counters["p99_us"] = obs::percentile(latencies_us, 99.0);
    state.counters["p999_us"] = obs::percentile(latencies_us, 99.9);
  }
}

}  // namespace

BENCHMARK(BM_ServeClosedLoop)
    ->Args({1, 1, 0})->Args({1, 64, 0})->Args({1, 64, 200})
    ->Args({16, 1, 0})->Args({16, 64, 0})->Args({16, 64, 200})
    ->Args({64, 1, 0})->Args({64, 64, 0})->Args({64, 64, 200})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Poisson knee sweep (batch-1 vs batched at each offered rate), plus the
// bursty and heavy-tailed processes at a mid-sweep rate. Rates bracket
// the single-core baseline's measured capacity (~16k/s batch-1, ~21k/s
// batched — BENCH_5.json): the low rates are comfortably under both
// knees, the high rates are beyond the batch-1 knee.
BENCHMARK(BM_ServeOpenLoop)
    ->Args({4000, 1, 0})->Args({4000, 64, 0})
    ->Args({8000, 1, 0})->Args({8000, 64, 0})
    ->Args({12000, 1, 0})->Args({12000, 64, 0})
    ->Args({16000, 1, 0})->Args({16000, 64, 0})
    ->Args({20000, 1, 0})->Args({20000, 64, 0})
    ->Args({24000, 1, 0})->Args({24000, 64, 0})
    ->Args({12000, 64, 1})->Args({12000, 64, 2})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
