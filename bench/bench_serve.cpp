// Microbenchmarks: the policy inference server under closed-loop load.
//
// BM_ServeClosedLoop sweeps client count (offered load) x max_batch
// (batching window): each iteration spawns `clients` threads that each
// issue a fixed burst of requests back-to-back, so the server saturates at
// the thread count's natural concurrency. max_batch=1 with a zero window
// is the no-batching baseline; the report distilled into BENCH_5.json
// (tools/bench.sh) tracks how much throughput micro-batching buys at
// saturating load, plus p50/p99 latency from the server's own
// per-request clocks.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "darl/common/rng.hpp"
#include "darl/obs/percentile.hpp"
#include "darl/serve/batch_scheduler.hpp"
#include "darl/serve/policy_store.hpp"

namespace {

using namespace darl;

constexpr std::size_t kObsDim = 64;
constexpr std::size_t kRequestsPerClient = 64;

// A serving-scale policy (much wider than the study's 64-unit training
// nets): per-sample evaluation is ~50us, so execution dominates the
// per-request scheduling constants and the gemm per-row advantage of
// evaluate_batch (DESIGN.md §11) is what the batched settings harvest.
serve::PolicySpec bench_spec() {
  serve::PolicySpec spec;
  spec.sizes = {kObsDim, 256, 256, 16};
  spec.activation = nn::Activation::Tanh;
  Rng rng(1);
  nn::Mlp net(spec.sizes, spec.activation, rng);
  spec.net_params = net.get_flat_params();
  spec.action_space = env::ActionSpace(env::DiscreteSpace(16));
  spec.decode = serve::GreedyDecode::ArgmaxDiscrete;
  return spec;
}

// Args: {clients, max_batch, max_delay_us}. Three window settings per
// offered load:
//   {c, 1, 0}    — per-sample baseline, no batching anywhere
//   {c, 64, 0}   — greedy batching: serve whatever queued while the
//                  worker was busy (the backlog is the batch)
//   {c, 64, 200} — yield-gather batching bounded by a 200us window
// The gemm per-row advantage needs tens of rows to pay for itself
// (DESIGN.md §11), so the batched cells pull ahead decisively once the
// client count can actually fill such batches (the 64-client rows).
void BM_ServeClosedLoop(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  const auto max_batch = static_cast<std::size_t>(state.range(1));
  const auto delay_us = static_cast<double>(state.range(2));

  serve::PolicyStore store;
  store.publish(bench_spec());
  serve::ServeConfig config;
  config.max_batch = max_batch;
  config.max_delay_us = delay_us;
  config.queue_capacity = 4096;
  // One dispatcher: the committed baseline runs on a single-core machine,
  // where extra workers only add scheduling noise. Multi-core runners can
  // raise this along with the client counts.
  config.workers = 1;
  serve::BatchScheduler server(store, config);

  // Pre-generated observations: the benchmark measures serving, not rng.
  std::vector<Vec> observations(clients * kRequestsPerClient);
  {
    Rng rng(7);
    for (Vec& obs : observations) {
      obs.resize(kObsDim);
      for (double& v : obs) v = rng.uniform(-1.0, 1.0);
    }
  }

  // Closed-loop think time: a real client computes its next observation
  // (simulator step, feature assembly) between requests. The spin also
  // lets concurrent requests pile into the queue, which is what the
  // batching window exists to harvest.
  auto think = [](const Vec& obs) {
    double acc = 0.0;
    for (int spin = 0; spin < 200; ++spin) {
      for (double v : obs) acc += v * v;
    }
    benchmark::DoNotOptimize(acc);
  };

  std::vector<double> latencies_us;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_client(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        per_client[c].reserve(kRequestsPerClient);
        for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
          const Vec& obs = observations[c * kRequestsPerClient + r];
          think(obs);
          const serve::Response response = server.serve(obs);
          benchmark::DoNotOptimize(response.action.data());
          per_client[c].push_back(response.latency_us);
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& pc : per_client) {
      latencies_us.insert(latencies_us.end(), pc.begin(), pc.end());
    }
  }

  const auto total = static_cast<std::int64_t>(clients * kRequestsPerClient);
  state.SetItemsProcessed(state.iterations() * total);
  if (!latencies_us.empty()) {
    state.counters["p50_us"] = obs::percentile(latencies_us, 50.0);
    state.counters["p99_us"] = obs::percentile(latencies_us, 99.0);
  }
}

}  // namespace

BENCHMARK(BM_ServeClosedLoop)
    ->Args({1, 1, 0})->Args({1, 64, 0})->Args({1, 64, 200})
    ->Args({16, 1, 0})->Args({16, 64, 0})->Args({16, 64, 200})
    ->Args({64, 1, 0})->Args({64, 64, 0})->Args({64, 64, 200})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();
