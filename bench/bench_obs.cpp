// bench/bench_obs.cpp — what the telemetry layer costs on hot paths.
//
// The headline numbers (distilled into BENCH_6.json by tools/bench.sh):
//   - sharded Counter::add vs the single shared atomic it replaced (the
//     PR-1 design), single-threaded and under 8-thread contention. The
//     sharded counter must be no slower solo and far faster contended —
//     that is the whole point of the cache-line-owned slots.
//   - the disabled-gate cost of DARL_COUNTER_ADD (one relaxed bool load),
//     which is what every instrumented hot path pays when telemetry is off.
//   - snapshot / sampler-tick / Prometheus-render costs, which bound how
//     cheap a scrape or sampler cadence is for a live serving process.
//   - flight_note on/off, the per-event price of the flight recorder.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "darl/obs/export.hpp"
#include "darl/obs/flight.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/timeseries.hpp"

namespace {

using namespace darl::obs;

/// Instruments live in a bench-local registry so the numbers are not
/// polluted by whatever the rest of the process registered.
Registry& bench_registry() {
  static Registry r;
  return r;
}

/// A registry pre-populated like a busy serve process: a few dozen
/// counters/gauges plus latency histograms.
Registry& populated_registry() {
  static Registry& r = []() -> Registry& {
    static Registry reg;
    for (int i = 0; i < 32; ++i) {
      reg.counter("bench.ctr" + std::to_string(i)).add(i * 17 + 1);
      reg.gauge("bench.gge" + std::to_string(i)).set(i * 0.25);
    }
    for (int i = 0; i < 4; ++i) {
      Histogram& h = reg.histogram(
          "bench.hist" + std::to_string(i),
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
      for (int v = 0; v < 256; ++v) h.observe((v % 150) * 1.01);
    }
    return reg;
  }();
  return r;
}

// --------------------------------------------------------------- counters

// Baseline: the pre-sharding design — every thread RMWs one shared line.
void BM_CounterSingleAtomic(benchmark::State& state) {
  static std::atomic<std::uint64_t> value{0};
  for (auto _ : state) {
    value.fetch_add(1, std::memory_order_relaxed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterSingleAtomic)->Threads(1)->Threads(8);

void BM_CounterSharded(benchmark::State& state) {
  static Counter& c = bench_registry().counter("bench.sharded");
  for (auto _ : state) {
    c.add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterSharded)->Threads(1)->Threads(8);

void BM_CounterShardedLabeled(benchmark::State& state) {
  static Counter& c =
      bench_registry().counter("bench.labeled", {{"tenant", "bench"}});
  for (auto _ : state) {
    c.add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterShardedLabeled)->Threads(1)->Threads(8);

void BM_CounterMacroDisabled(benchmark::State& state) {
  set_metrics_enabled(false);
  for (auto _ : state) {
    DARL_COUNTER_ADD("bench.gated", 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterMacroDisabled);

void BM_CounterMacroEnabled(benchmark::State& state) {
  set_metrics_enabled(true);
  for (auto _ : state) {
    DARL_COUNTER_ADD("bench.macro_on", 1);
  }
  set_metrics_enabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterMacroEnabled);

void BM_HistogramObserve(benchmark::State& state) {
  static Histogram& h = bench_registry().histogram(
      "bench.observe", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  double v = 0.0;
  for (auto _ : state) {
    h.observe(v);
    v = v < 40.0 ? v + 0.37 : 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(8);

// ------------------------------------------------- scrape-side operations

void BM_RegistrySnapshot(benchmark::State& state) {
  Registry& reg = populated_registry();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.snapshot());
  }
}
BENCHMARK(BM_RegistrySnapshot);

void BM_SamplerTick(benchmark::State& state) {
  static TimeSeries ts(
      {.capacity = 240, .period_ms = 1000, .registry = &populated_registry()});
  for (auto _ : state) {
    ts.sample_once();
  }
}
BENCHMARK(BM_SamplerTick);

void BM_PrometheusRender(benchmark::State& state) {
  const RegistrySnapshot snap = populated_registry().snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(prometheus_text(snap));
  }
}
BENCHMARK(BM_PrometheusRender);

// --------------------------------------------------------- flight recorder

void BM_FlightNoteDisabled(benchmark::State& state) {
  set_flight_enabled(false);
  static const std::string text = "bench note payload";
  for (auto _ : state) {
    flight_note("bench", text);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightNoteDisabled);

void BM_FlightNoteEnabled(benchmark::State& state) {
  set_flight_enabled(true);
  static const std::string text = "bench note payload";
  for (auto _ : state) {
    flight_note("bench", text);
  }
  set_flight_enabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightNoteEnabled)->Threads(1)->Threads(8);

}  // namespace
