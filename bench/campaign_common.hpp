// bench/campaign_common.hpp
//
// Shared setup for the table/figure/ablation benches. Every campaign bench
// uses the same scaled-down Table-I campaign and the same CSV cache file:
// whichever bench runs first pays the training cost; the rest load the
// cache. Delete the cache file to force a re-run.

#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "darl/core/airdrop_study.hpp"

namespace darl::bench {

inline const char* kCachePath = "darl_table1_cache.csv";
inline constexpr std::uint64_t kCampaignSeed = 42;

/// Campaign scaling shared by all benches (documented in EXPERIMENTS.md).
inline core::AirdropStudyOptions campaign_options() {
  core::AirdropStudyOptions opts;
  opts.total_timesteps = 16384;
  opts.eval_episodes = 50;
  opts.train_batch_total = 1024;
  opts.steps_per_env = 256;
  return opts;
}

/// Run or load the 18-configuration campaign.
inline std::vector<core::TrialRecord> campaign_trials() {
  std::printf(
      "Campaign: 18 configurations x %zu timesteps "
      "(paper scale: 200000; reported minutes/kJ rescaled accordingly).\n"
      "Cache: %s (first bench to run trains; later benches load).\n\n",
      campaign_options().total_timesteps, kCachePath);
  return core::run_table1_campaign(campaign_options(), kCachePath,
                                   {.seed = kCampaignSeed});
}

/// Case-study definition matching the campaign (for rendering).
inline core::CaseStudyDef campaign_def() {
  return core::make_airdrop_case_study(campaign_options());
}

/// Look up a trial by its 1-based paper solution id.
inline const core::TrialRecord& solution(
    const std::vector<core::TrialRecord>& trials, std::size_t one_based_id) {
  for (const auto& t : trials) {
    if (t.id + 1 == one_based_id) return t;
  }
  throw Error("campaign has no solution #" + std::to_string(one_based_id));
}

/// Print one metric row for a solution.
inline void print_solution_row(const core::TrialRecord& t) {
  std::printf(
      "  #%-2zu %-42s Reward %7.3f | Time %6.1f min | Power %6.1f kJ\n",
      t.id + 1, t.config.describe().c_str(), t.metrics.at("Reward"),
      t.metrics.at("ComputationTime"), t.metrics.at("PowerConsumption"));
}

/// Shared implementation of the three Pareto-front figure benches: render
/// the plot over one metric pair, list the computed non-dominated set and
/// compare it against the paper's front.
inline int run_figure_bench(const char* figure_name, const std::string& metric_x,
                            const std::string& metric_y,
                            const std::vector<std::size_t>& paper_front_1based) {
  std::printf("=== %s: %s vs %s trade-off ===\n\n", figure_name,
              metric_y.c_str(), metric_x.c_str());
  const auto trials = campaign_trials();
  const auto def = campaign_def();

  std::vector<std::size_t> front_ids;
  const std::string plot = core::render_pareto_plot(
      def, trials, metric_x, metric_y, figure_name, &front_ids);
  std::printf("%s\n", plot.c_str());

  std::printf("Non-dominated solutions (measured): ");
  for (std::size_t id : front_ids) std::printf("%zu ", id + 1);
  std::printf("\nNon-dominated solutions (paper):    ");
  for (std::size_t id : paper_front_1based) std::printf("%zu ", id);
  std::printf("\n\nFront members, measured metrics:\n");
  for (std::size_t id : front_ids) print_solution_row(solution(trials, id + 1));

  std::size_t overlap = 0;
  for (std::size_t id : front_ids) {
    for (std::size_t paper_id : paper_front_1based) {
      if (id + 1 == paper_id) ++overlap;
    }
  }
  std::printf("\nOverlap with the paper's front: %zu/%zu\n", overlap,
              paper_front_1based.size());
  return 0;
}

}  // namespace darl::bench
