// Ablation: the Runge-Kutta-order trade-off (paper §IV-B and §VI-D).
// At a fixed deployment (RLlib / PPO / 1 node / 4 cores), sweeping the
// integration order 3 -> 5 -> 8 must raise reward and raise computation
// time / power together. Campaign rows 3, 4 and 7 form this sweep.

#include <cstdio>

#include "campaign_common.hpp"

int main() {
  std::printf("=== Ablation: Runge-Kutta order (RLlib PPO, 1 node x 4 cores) ===\n\n");
  const auto trials = darl::bench::campaign_trials();

  const std::size_t sweep[] = {3, 4, 7};  // RK3, RK5, RK8
  for (std::size_t id : sweep)
    darl::bench::print_solution_row(darl::bench::solution(trials, id));

  auto metric = [&](std::size_t id, const char* name) {
    return darl::bench::solution(trials, id).metrics.at(name);
  };
  std::printf("\nExpected shape (paper: lower order => lower reward, lower time):\n");
  std::printf("  time monotone increasing with order: %s\n",
              metric(3, "ComputationTime") < metric(4, "ComputationTime") &&
                      metric(4, "ComputationTime") < metric(7, "ComputationTime")
                  ? "PASS"
                  : "MISS");
  std::printf("  power monotone increasing with order: %s\n",
              metric(3, "PowerConsumption") < metric(4, "PowerConsumption") &&
                      metric(4, "PowerConsumption") < metric(7, "PowerConsumption")
                  ? "PASS"
                  : "MISS");
  // The paper's own data shows the reward-vs-order coupling is weak
  // (its solutions 14/16 differ by 0.02 across the full order range), so
  // the claim is noise-tolerant: order 8 must not score *worse* than
  // order 3 beyond the seed noise.
  std::printf("  order-8 reward >= order-3 reward (within 0.03 noise): %s\n",
              metric(7, "Reward") >= metric(3, "Reward") - 0.03 ? "PASS"
                                                                : "MISS");
  return 0;
}
