// Reproduces Figure 6: the Pareto front of the Reward vs Power Consumption
// trade-off over the Table-I campaign. The paper's non-dominated set is
// {11, 14, 16}.

#include "campaign_common.hpp"

int main() {
  return darl::bench::run_figure_bench("Figure 6", "PowerConsumption", "Reward",
                                       {11, 14, 16});
}
