// Microbenchmarks: the batched GEMM kernel underneath the Mlp batch path.
//
// The three transpose flavours exercised here are exactly the ones the
// network uses: NT for the forward pass (Z = X * W^T), TN for the weight
// gradient (dW += delta^T * X) and NN for the input gradient
// (dX = delta * W). Sizes bracket the study's policy layers.

#include <benchmark/benchmark.h>

#include <cstddef>

#include "darl/common/rng.hpp"
#include "darl/linalg/matrix.hpp"

namespace {

using namespace darl;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal(0.0, 1.0);
  return m;
}

void report_flops(benchmark::State& state, double flops_per_iter) {
  state.counters["flops/s"] = benchmark::Counter(
      flops_per_iter * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    Matrix::gemm(1.0, a, false, b, false, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  report_flops(state, 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                          static_cast<double>(n));
}

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    Matrix::gemm(1.0, a, false, b, true, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  report_flops(state, 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                          static_cast<double>(n));
}

void BM_GemmTN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    Matrix::gemm(1.0, a, true, b, false, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  report_flops(state, 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                          static_cast<double>(n));
}

// Forward-pass shape as the Mlp issues it: a (batch x in) activation block
// against a (out x in) weight matrix, transposed. range(0) = batch.
void BM_GemmMlpLayer(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const std::size_t in = 64, out = 64;
  Rng rng(4);
  const Matrix x = random_matrix(batch, in, rng);
  const Matrix w = random_matrix(out, in, rng);
  Matrix z(batch, out);
  for (auto _ : state) {
    z.fill(0.0);
    Matrix::gemm(1.0, x, false, w, true, z);
    benchmark::DoNotOptimize(z.data().data());
  }
  report_flops(state, 2.0 * static_cast<double>(batch) *
                          static_cast<double>(in) * static_cast<double>(out));
}

}  // namespace

BENCHMARK(BM_GemmNN)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(BM_GemmNT)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(BM_GemmTN)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(BM_GemmMlpLayer)->Arg(1)->Arg(7)->Arg(64)->Arg(256);
