// Microbenchmarks: the batched GEMM kernel underneath the Mlp batch path.
//
// The three transpose flavours exercised here are exactly the ones the
// network uses: NT for the forward pass (Z = X * W^T), TN for the weight
// gradient (dW += delta^T * X) and NN for the input gradient
// (dX = delta * W). Sizes bracket the study's policy layers.
//
// BM_GemmNTNaive keeps the pre-blocking loop order alive as the speedup
// baseline for the blocked kernel; BM_GemmNTThreads sweeps the
// DARL_LINALG_THREADS pool width so BENCH_9.json records scaling
// efficiency; BM_GemmNTFastMath times the opt-in FMA tier against the
// exactly-rounded default.

#include <benchmark/benchmark.h>

#include <cstddef>

#include "darl/common/rng.hpp"
#include "darl/linalg/matrix.hpp"
#include "darl/linalg/thread_pool.hpp"

namespace {

using namespace darl;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal(0.0, 1.0);
  return m;
}

void report_flops(benchmark::State& state, double flops_per_iter) {
  state.counters["flops/s"] = benchmark::Counter(
      flops_per_iter * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    Matrix::gemm(1.0, a, false, b, false, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  report_flops(state, 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                          static_cast<double>(n));
}

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    Matrix::gemm(1.0, a, false, b, true, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  report_flops(state, 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                          static_cast<double>(n));
}

void BM_GemmTN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    Matrix::gemm(1.0, a, true, b, false, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  report_flops(state, 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                          static_cast<double>(n));
}

// The pre-blocking NT implementation: one dot product per output element,
// B walked column-wise with stride n. This is what Matrix::gemm did before
// the packed K-panel kernel, kept verbatim as the blocked-vs-naive
// comparison baseline (same ascending-t accumulation, so it also doubles
// as a correctness cross-check in tests).
void naive_gemm_nt(double alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b.row(j);
      double acc = 0.0;
      for (std::size_t t = 0; t < k; ++t) acc += arow[t] * brow[t];
      crow[j] += alpha * acc;
    }
  }
}

void BM_GemmNTNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    naive_gemm_nt(1.0, a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  report_flops(state, 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                          static_cast<double>(n));
}

// Pool-width sweep over the blocked NT kernel. Args: {n, threads}. The
// pool is reconfigured at benchmark entry (a quiescent point) and restored
// to the DARL_LINALG_THREADS default afterwards so neighbouring benchmarks
// keep their configured width.
void BM_GemmNTThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  linalg::ThreadPool::instance().configure(threads);
  Rng rng(2);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    Matrix::gemm(1.0, a, false, b, true, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  report_flops(state, 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                          static_cast<double>(n));
  linalg::ThreadPool::instance().configure(linalg::env_thread_width());
}

// The opt-in DARL_FAST_MATH tier (FMA microkernel, fused rounding) against
// the exactly-rounded default at the same size. On hardware without
// AVX2+FMA set_fast_math(true) is a no-op and the two coincide.
void BM_GemmNTFastMath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  set_fast_math(true);
  Rng rng(2);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    c.fill(0.0);
    Matrix::gemm(1.0, a, false, b, true, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  report_flops(state, 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                          static_cast<double>(n));
  set_fast_math(false);
}

// Forward-pass shape as the Mlp issues it: a (batch x in) activation block
// against a (out x in) weight matrix, transposed. range(0) = batch.
void BM_GemmMlpLayer(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const std::size_t in = 64, out = 64;
  Rng rng(4);
  const Matrix x = random_matrix(batch, in, rng);
  const Matrix w = random_matrix(out, in, rng);
  Matrix z(batch, out);
  for (auto _ : state) {
    z.fill(0.0);
    Matrix::gemm(1.0, x, false, w, true, z);
    benchmark::DoNotOptimize(z.data().data());
  }
  report_flops(state, 2.0 * static_cast<double>(batch) *
                          static_cast<double>(in) * static_cast<double>(out));
}

}  // namespace

BENCHMARK(BM_GemmNN)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(BM_GemmNT)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(BM_GemmTN)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(BM_GemmNTNaive)->Arg(64)->Arg(128);
BENCHMARK(BM_GemmNTThreads)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({128, 8});
BENCHMARK(BM_GemmNTFastMath)->Arg(64)->Arg(128);
BENCHMARK(BM_GemmMlpLayer)->Arg(1)->Arg(7)->Arg(64)->Arg(256);
