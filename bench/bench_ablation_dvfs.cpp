// Ablation: DVFS operating point (the GEOPM-style power-management knob of
// the paper's related work, §II-B). A fixed training workload — modelled on
// one campaign configuration's phase structure — is replayed against the
// cluster at several frequency scales; throughput falls linearly with
// frequency while active power falls cubically, so down-clocking trades
// Computation Time for Power Consumption along its own Pareto curve.

#include <cstdio>

#include "darl/simcluster/cluster.hpp"

namespace {

using namespace darl::sim;

/// Replay a synthetic 16-iteration PPO-like job (collection phases +
/// learner updates + idle overheads) at a given frequency scale.
struct Outcome {
  double minutes = 0.0;
  double kilojoules = 0.0;
};

Outcome replay(double frequency_scale) {
  ClusterSpec spec = ClusterSpec::paper_testbed(1, 4);
  for (auto& n : spec.nodes) n.frequency_scale = frequency_scale;
  SimCluster cluster(spec);

  constexpr double kCollectMflopPerWorker = 90000.0;  // env + inference
  constexpr double kTrainMflop = 220000.0;            // learner update
  for (int iteration = 0; iteration < 16; ++iteration) {
    const double worker_seconds =
        cluster.seconds_for_mflop(0, kCollectMflopPerWorker);
    cluster.run_parallel_phase({{0, worker_seconds},
                                {0, worker_seconds},
                                {0, worker_seconds},
                                {0, worker_seconds}});
    cluster.run_compute(0, cluster.seconds_for_mflop(0, kTrainMflop), 4, 0.75);
    cluster.run_idle(0.25);
  }
  return Outcome{cluster.elapsed_seconds() / 60.0,
                 cluster.energy_joules() / 1e3};
}

}  // namespace

int main() {
  std::printf("=== Ablation: DVFS operating point (1 node x 4 cores, fixed "
              "workload) ===\n\n");
  std::printf("  %-10s %12s %12s %14s\n", "frequency", "time (min)",
              "energy (kJ)", "energy/time");

  const double scales[] = {0.6, 0.8, 1.0, 1.2};
  Outcome prev{};
  bool time_monotone = true, tradeoff = true;
  for (double f : scales) {
    const Outcome o = replay(f);
    std::printf("  %-10.2f %12.2f %12.2f %14.2f\n", f, o.minutes, o.kilojoules,
                o.kilojoules / o.minutes);
    if (f > 0.6) {
      if (o.minutes >= prev.minutes) time_monotone = false;
      // Average *power* (energy per unit time) must rise with frequency.
      if (o.kilojoules / o.minutes <= prev.kilojoules / prev.minutes) {
        tradeoff = false;
      }
    }
    prev = o;
  }

  std::printf("\nShape:\n");
  std::printf("  higher frequency => shorter computation time: %s\n",
              time_monotone ? "PASS" : "MISS");
  std::printf("  higher frequency => higher average power draw: %s\n",
              tradeoff ? "PASS" : "MISS");
  std::printf(
      "\nReading: the frequency knob spans its own time/power Pareto curve on\n"
      "top of the study's deployment parameters — the direction the paper's\n"
      "related work (GEOPM) automates.\n");
  return 0;
}
