// Extension experiment (paper §II-A): IMPALA's V-trace correction vs PPO
// under multi-node parameter staleness.
//
// The paper observes that distributing RLlib PPO over two nodes trades
// reward for speed (solutions 7 vs 8) because asynchronous parameter
// shipping makes the collected experience off-policy. IMPALA was designed
// for exactly this regime: its truncated-importance-sampling (V-trace)
// learner tolerates behaviour/target lag. This bench trains both
// algorithms on the airdrop simulator at 1 and 2 nodes through the same
// actor/learner backend and compares the multi-node reward drop.

#include <cstdio>

#include "darl/airdrop/airdrop_env.hpp"
#include "darl/common/stats.hpp"
#include "darl/frameworks/backend.hpp"

namespace {

using namespace darl;

double run_once(rl::AlgoKind kind, std::size_t nodes, std::uint64_t seed) {
  airdrop::AirdropConfig env_cfg;
  env_cfg.altitude_min = 30.0;
  env_cfg.altitude_max = 300.0;
  env_cfg.rk_order = ode::RkOrder::Order3;

  frameworks::TrainRequest req;
  req.env_factory = airdrop::make_airdrop_factory(env_cfg);
  req.algo.kind = kind;
  req.algo.ppo.epochs = 6;
  req.algo.impala.learning_rate = 1e-3;
  req.deployment.nodes = nodes;
  req.deployment.cores_per_node = 4;
  req.total_timesteps = 12288;
  req.train_batch_total = kind == rl::AlgoKind::IMPALA ? 512 : 1024;
  req.eval_episodes = 40;
  req.seed = seed;

  frameworks::RllibBackend backend;
  return backend.run(req).reward;
}

double mean_over_seeds(rl::AlgoKind kind, std::size_t nodes) {
  RunningStats s;
  for (std::uint64_t seed : {7ull, 19ull}) s.push(run_once(kind, nodes, seed));
  return s.mean();
}

}  // namespace

int main() {
  std::printf("=== Extension: IMPALA (V-trace) vs PPO under multi-node "
              "staleness ===\n\n");
  std::printf("Airdrop simulator, RK3, 4 cores/node, 12288 timesteps, "
              "2 seeds averaged.\n\n");

  const double ppo1 = mean_over_seeds(rl::AlgoKind::PPO, 1);
  const double ppo2 = mean_over_seeds(rl::AlgoKind::PPO, 2);
  const double imp1 = mean_over_seeds(rl::AlgoKind::IMPALA, 1);
  const double imp2 = mean_over_seeds(rl::AlgoKind::IMPALA, 2);

  std::printf("  PPO    reward: 1 node %7.3f | 2 nodes %7.3f | drop %+.3f\n",
              ppo1, ppo2, ppo1 - ppo2);
  std::printf("  IMPALA reward: 1 node %7.3f | 2 nodes %7.3f | drop %+.3f\n",
              imp1, imp2, imp1 - imp2);

  const double ppo_drop = ppo1 - ppo2;
  const double imp_drop = imp1 - imp2;
  std::printf("\nShape: the V-trace learner loses no more reward from "
              "distribution than PPO: %s (%.3f vs %.3f)\n",
              imp_drop <= ppo_drop + 0.02 ? "PASS" : "MISS", imp_drop,
              ppo_drop);
  return 0;
}
