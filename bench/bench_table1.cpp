// Reproduces Table I: configuration settings and results (Reward,
// Computation Time, Power Consumption) of the 18-solution experimental
// campaign, printed in the paper's layout plus shape checks against the
// anchor observations the paper's prose states.

#include <cstdio>

#include "campaign_common.hpp"
#include "darl/core/report.hpp"

namespace {

using darl::bench::campaign_def;
using darl::bench::campaign_trials;
using darl::bench::solution;

void shape_check(const char* label, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "MISS", label);
}

}  // namespace

int main() {
  std::printf("=== Table I: configuration settings and results ===\n\n");
  const auto trials = campaign_trials();
  const auto def = campaign_def();

  std::printf("%s\n", darl::core::render_trial_table(
                          def, trials,
                          {darl::core::kParamRkOrder, darl::core::kParamFramework,
                           darl::core::kParamAlgorithm, darl::core::kParamNodes,
                           darl::core::kParamCores})
                          .c_str());

  // Shape checks: the relations the paper's §VI states about its rows.
  std::printf("Shape checks against the paper's prose:\n");
  auto reward = [&](std::size_t id) {
    return solution(trials, id).metrics.at("Reward");
  };
  auto time_min = [&](std::size_t id) {
    return solution(trials, id).metrics.at("ComputationTime");
  };
  auto power = [&](std::size_t id) {
    return solution(trials, id).metrics.at("PowerConsumption");
  };

  // Fastest solution overall is #2 (RLlib PPO RK3 2x4).
  std::size_t fastest = 1;
  for (const auto& t : trials) {
    if (t.metrics.at("ComputationTime") < time_min(fastest)) fastest = t.id + 1;
  }
  shape_check("solution 2 is the fastest", fastest == 2);
  // #11 (TF-Agents 1x4 RK3) draws the least power.
  std::size_t frugal = 1;
  for (const auto& t : trials) {
    if (t.metrics.at("PowerConsumption") < power(frugal)) frugal = t.id + 1;
  }
  shape_check("solution 11 draws the least power", frugal == 11);
  // Stable Baselines provides the best reward (#16 or #14).
  std::size_t best = 1;
  for (const auto& t : trials) {
    if (t.metrics.at("Reward") > reward(best)) best = t.id + 1;
  }
  shape_check("a Stable Baselines PPO solution has the best reward",
              solution(trials, best).config.get_categorical(
                  darl::core::kParamFramework) == "StableBaselines");
  // RK-order time monotonicity at fixed deployment (RLlib 1x4: #3, #4, #7).
  shape_check("time grows with RK order (solutions 3 < 4 < 7)",
              time_min(3) < time_min(4) && time_min(4) < time_min(7));
  // Two nodes are faster but score lower (solutions 7 vs 8).
  shape_check("2 nodes faster than 1 (solution 8 vs 7)",
              time_min(8) < time_min(7));
  shape_check("2-node reward below 1-node (solution 8 vs 7)",
              reward(8) < reward(7));
  // SAC is dominated (paper: it was slow, power-hungry, or failed to
  // learn; no SAC solution reaches any Pareto front).
  double ppo_sum = 0.0, sac_sum = 0.0;
  std::size_t ppo_n = 0, sac_n = 0;
  for (const auto& t : trials) {
    const bool sac = t.config.get_categorical(darl::core::kParamAlgorithm) ==
                     "SAC";
    (sac ? sac_sum : ppo_sum) += t.metrics.at("Reward");
    ++(sac ? sac_n : ppo_n);
  }
  shape_check("mean SAC reward at least 0.1 below mean PPO reward",
              sac_sum / static_cast<double>(sac_n) <
                  ppo_sum / static_cast<double>(ppo_n) - 0.1);

  std::printf(
      "\nNote: absolute numbers come from the simulated-cluster calibration "
      "(see DESIGN.md);\nonly the shape above is claimed. Paper-vs-measured "
      "details: EXPERIMENTS.md.\n");
  return 0;
}
