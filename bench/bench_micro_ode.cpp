// Microbenchmarks: ODE integrator cost per control interval for the three
// study orders — the per-step compute signature behind the Runge-Kutta
// column of Table I.

#include <benchmark/benchmark.h>

#include "darl/airdrop/dynamics.hpp"
#include "darl/ode/integrator.hpp"

namespace {

using namespace darl;

void BM_CanopyInterval(benchmark::State& state) {
  const auto order = static_cast<ode::RkOrder>(state.range(0));
  const airdrop::CanopyParams params;
  const airdrop::WindState wind{1.0, -0.5};
  const auto rhs = airdrop::make_canopy_rhs(params, wind, 0.7);

  ode::AdaptiveOptions opts;
  opts.rtol = 1e6;  // single fixed step per interval, as the simulator runs
  opts.atol = 1e6;
  opts.h_initial = 1.0;
  opts.h_max = 1.0;
  auto integ = ode::make_integrator(order, opts);

  Vec y = airdrop::trim_state(params, 100.0, 50.0, 400.0, 0.3, wind);
  double t = 0.0;
  for (auto _ : state) {
    integ->integrate(rhs, t, t + 1.0, y);
    t += 1.0;
    if (y[2] < 10.0) y[2] = 400.0;  // keep the package airborne
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["rhs_evals_per_step"] =
      static_cast<double>(integ->stats().n_rhs_evals) /
      static_cast<double>(state.iterations());
}

void BM_AdaptiveTolerance(benchmark::State& state) {
  const auto order = static_cast<ode::RkOrder>(state.range(0));
  const airdrop::CanopyParams params;
  const auto rhs = airdrop::make_canopy_rhs(params, airdrop::WindState{}, 1.0);

  ode::AdaptiveOptions opts;
  opts.rtol = 1e-8;
  opts.atol = 1e-10;
  auto integ = ode::make_integrator(order, opts);
  for (auto _ : state) {
    Vec y = airdrop::trim_state(params, 100.0, 50.0, 400.0, 0.3, airdrop::WindState{});
    integ->integrate(rhs, 0.0, 30.0, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["rhs_evals"] = static_cast<double>(integ->stats().n_rhs_evals) /
                                static_cast<double>(state.iterations());
}

}  // namespace

BENCHMARK(BM_CanopyInterval)->Arg(3)->Arg(5)->Arg(8);
BENCHMARK(BM_AdaptiveTolerance)->Arg(3)->Arg(5)->Arg(8);
