// Exploratory-method comparison (paper §III-C implementation ideas):
// Random Search (the paper's choice), Grid Search and the Optuna-style
// Successive Halving pruner, run over a reduced PPO-only configuration
// space at a small training budget. Reports trials spent, total simulated
// campaign cost and the quality (hypervolume) of the resulting front.

#include <cstdio>

#include "campaign_common.hpp"
#include "darl/core/pareto.hpp"

namespace {

using namespace darl;
using namespace darl::core;

/// PPO-only reduced space: rk {3,8} x framework x cores {2,4}, single node.
ParamSpace reduced_space() {
  ParamSpace space;
  space.add(ParamDomain::integer_set(kParamRkOrder, {3, 8},
                                     ParamCategory::Environment));
  space.add(ParamDomain::categorical(
      kParamFramework, {"RLlib", "StableBaselines", "TF-Agents"},
      ParamCategory::Algorithm));
  space.add(ParamDomain::categorical(kParamAlgorithm, {"PPO"},
                                     ParamCategory::Algorithm));
  space.add(ParamDomain::integer_set(kParamNodes, {1}, ParamCategory::System));
  space.add(ParamDomain::integer_set(kParamCores, {2, 4}, ParamCategory::System));
  return space;
}

struct Outcome {
  std::size_t trials = 0;
  double campaign_minutes = 0.0;  // sum of simulated trial cost
  double hypervolume = 0.0;       // reward-vs-time front quality
};

Outcome run_with(const char* label, std::unique_ptr<ExploratoryMethod> explorer,
                 const CaseStudyDef& def) {
  Study study(def, std::move(explorer), {.seed = 7, .log_progress = false});
  study.run();

  Outcome out;
  out.trials = study.trials().size();
  std::vector<std::vector<double>> points;
  for (const auto& t : study.trials()) {
    out.campaign_minutes += t.metrics.at("ComputationTime");
    if (t.budget_fraction >= 1.0) {
      points.push_back(
          {t.metrics.at("Reward"), t.metrics.at("ComputationTime")});
    }
  }
  out.hypervolume = hypervolume_2d(points, {Sense::Maximize, Sense::Minimize},
                                   {-3.0, 300.0});
  std::printf("  %-18s trials %2zu | campaign cost %7.1f sim-min | "
              "front hypervolume %8.1f\n",
              label, out.trials, out.campaign_minutes, out.hypervolume);
  return out;
}

}  // namespace

int main() {
  std::printf("=== Exploratory-method comparison (reduced PPO space) ===\n\n");

  AirdropStudyOptions opts;
  opts.total_timesteps = 4096;  // small per-trial budget for the comparison
  opts.seeds_per_trial = 1;
  opts.eval_episodes = 20;
  CaseStudyDef def = make_airdrop_case_study(opts);
  def.space = reduced_space();

  const Outcome grid =
      run_with("GridSearch", std::make_unique<GridSearch>(def.space, 2), def);
  const Outcome random = run_with(
      "RandomSearch", std::make_unique<RandomSearch>(def.space, 6, 99), def);
  const Outcome sh = run_with(
      "SuccessiveHalving",
      std::make_unique<SuccessiveHalving>(def.space,
                                          def.metrics.def("Reward"), 8, 2.0,
                                          0.25, 99),
      def);

  std::printf("\nShape:\n");
  std::printf("  grid explores every configuration (12): %s\n",
              grid.trials == 12 ? "PASS" : "MISS");
  std::printf("  random search spends ~half of grid's campaign cost: %s\n",
              random.campaign_minutes < grid.campaign_minutes ? "PASS" : "MISS");
  std::printf("  pruning spends less than exhaustive search: %s\n",
              sh.campaign_minutes < grid.campaign_minutes ? "PASS" : "MISS");
  std::printf("  cheaper searches keep most of the front quality "
              "(hypervolume >= 60%% of grid): %s / %s\n",
              random.hypervolume >= 0.6 * grid.hypervolume ? "PASS" : "MISS",
              sh.hypervolume >= 0.6 * grid.hypervolume ? "PASS" : "MISS");
  return 0;
}
