// Microbenchmarks: decision-analysis kernels — Pareto-front filtering,
// non-dominated sorting and hypervolume at growing campaign sizes.

#include <benchmark/benchmark.h>

#include "darl/common/rng.hpp"
#include "darl/core/pareto.hpp"

namespace {

using namespace darl;
using namespace darl::core;

std::vector<std::vector<double>> random_points(std::size_t n, std::size_t dims,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> pts(n);
  for (auto& p : pts) {
    p.resize(dims);
    for (double& v : p) v = rng.uniform(0.0, 1.0);
  }
  return pts;
}

void BM_ParetoFront(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = random_points(n, 3, 11);
  const std::vector<Sense> senses{Sense::Maximize, Sense::Minimize,
                                  Sense::Minimize};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pareto_front(pts, senses).data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_NonDominatedSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = random_points(n, 3, 13);
  const std::vector<Sense> senses{Sense::Maximize, Sense::Minimize,
                                  Sense::Minimize};
  for (auto _ : state) {
    benchmark::DoNotOptimize(non_dominated_sort(pts, senses).data());
  }
}

void BM_Hypervolume2d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = random_points(n, 2, 17);
  const std::vector<Sense> senses{Sense::Minimize, Sense::Minimize};
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypervolume_2d(pts, senses, {2.0, 2.0}));
  }
}

void BM_HypervolumeMonteCarlo3d(benchmark::State& state) {
  const auto pts = random_points(32, 3, 19);
  const std::vector<Sense> senses{Sense::Minimize, Sense::Minimize,
                                  Sense::Minimize};
  Rng rng(23);
  const auto samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hypervolume_monte_carlo(pts, senses, {2.0, 2.0, 2.0}, samples, rng));
  }
}

}  // namespace

BENCHMARK(BM_ParetoFront)->Range(16, 4096)->Complexity(benchmark::oNSquared);
BENCHMARK(BM_NonDominatedSort)->Range(16, 512);
BENCHMARK(BM_Hypervolume2d)->Range(16, 4096);
BENCHMARK(BM_HypervolumeMonteCarlo3d)->Arg(1000)->Arg(10000);
