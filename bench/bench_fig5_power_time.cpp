// Reproduces Figure 5: the Pareto front of the Power Consumption vs
// Computation Time trade-off over the Table-I campaign. The paper's
// non-dominated set is {2, 5, 11}.

#include "campaign_common.hpp"

int main() {
  return darl::bench::run_figure_bench("Figure 5", "ComputationTime",
                                       "PowerConsumption", {2, 5, 11});
}
