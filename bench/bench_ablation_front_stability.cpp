// Ablation: robustness of the decision output. The paper's §VI-D warns
// that distributed training lacks reward reproducibility — so how stable is
// the Pareto front it feeds? This bench perturbs the campaign's metric
// table with the measured reward noise (plus a small relative noise on the
// modelled time/power) and reports how often each solution stays
// non-dominated, separating solid recommendations from coin-flips.

#include <cstdio>

#include "campaign_common.hpp"
#include "darl/common/rng.hpp"
#include "darl/core/stability.hpp"

int main() {
  std::printf("=== Ablation: Pareto-front stability under metric noise ===\n\n");
  const auto trials = darl::bench::campaign_trials();
  const auto def = darl::bench::campaign_def();

  std::vector<std::vector<double>> points;
  points.reserve(trials.size());
  for (const auto& t : trials) points.push_back(def.metrics.extract(t.metrics));

  darl::core::StabilityOptions opts;
  opts.samples = 4000;
  opts.relative_noise = 0.03;            // modelled time/power uncertainty
  opts.absolute_stddev = {0.04, 0.0, 0.0, 0.0};  // measured reward seed noise

  darl::Rng rng(7);
  const auto result =
      darl::core::front_stability(points, def.metrics, opts, rng);

  std::printf("Front membership frequency over %zu noisy resamples\n"
              "(reward stddev 0.04; 3%% relative noise on time/power):\n\n",
              opts.samples);
  for (const auto& t : trials) {
    const double f = result.membership[t.id];
    std::printf("  #%-2zu %-44s %5.1f%% %s\n", t.id + 1,
                t.config.describe().c_str(), 100.0 * f,
                f >= 0.5 ? "<== robust" : "");
  }

  std::printf("\nRobust front (membership >= 50%%):");
  for (std::size_t idx : result.robust_front) std::printf(" #%zu", idx + 1);
  std::printf("\n\nReading: members far below 100%% are budget- and seed-"
              "sensitive recommendations —\nexactly the reproducibility "
              "caveat the paper raises for distributed training.\n");
  return 0;
}
