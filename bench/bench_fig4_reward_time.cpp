// Reproduces Figure 4: the Pareto front of the Reward vs Computation Time
// trade-off over the Table-I campaign. The paper's non-dominated set is
// {2, 5, 11, 16}.

#include "campaign_common.hpp"

int main() {
  return darl::bench::run_figure_bench("Figure 4", "ComputationTime", "Reward",
                                       {2, 5, 11, 16});
}
