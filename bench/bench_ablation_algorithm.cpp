// Ablation: learning algorithm (paper §VI-D). PPO "provided accurate
// results with rather short computing times"; SAC "was inefficient ...
// either taking too much time for computation and consuming too much
// power, or failing in learning tasks and collecting low rewards".
// Matched PPO/SAC pairs from the campaign make the comparison direct.

#include <cstdio>

#include "campaign_common.hpp"

int main() {
  std::printf("=== Ablation: PPO vs SAC (matched configurations) ===\n\n");
  const auto trials = darl::bench::campaign_trials();

  struct Pair {
    std::size_t ppo, sac;
    const char* label;
  };
  const Pair pairs[] = {
      {5, 6, "RLlib RK5 2x4"},
      {11, 9, "TF-Agents RK3 1x4"},
      {12, 13, "TF-Agents RK8 1x4"},
      {16, 17, "Stable Baselines RK8 1x4"},
  };

  int reward_pass = 0, cost_pass = 0;
  for (const auto& p : pairs) {
    std::printf("%s:\n", p.label);
    const auto& ppo = darl::bench::solution(trials, p.ppo);
    const auto& sac = darl::bench::solution(trials, p.sac);
    darl::bench::print_solution_row(ppo);
    darl::bench::print_solution_row(sac);
    if (ppo.metrics.at("Reward") > sac.metrics.at("Reward")) ++reward_pass;
    if (sac.metrics.at("ComputationTime") > ppo.metrics.at("ComputationTime") ||
        sac.metrics.at("PowerConsumption") > ppo.metrics.at("PowerConsumption")) {
      ++cost_pass;
    }
  }
  std::printf("\nShape:\n");
  std::printf("  PPO out-rewards SAC in %d/4 matched pairs: %s\n", reward_pass,
              reward_pass == 4 ? "PASS" : "MISS");
  std::printf("  SAC costs more (time or power) in %d/4 matched pairs: %s\n",
              cost_pass, cost_pass >= 3 ? "PASS" : "MISS");
  return 0;
}
