// Ablation: node count (paper §VI-D, solutions 7 vs 8). Distributing RLlib
// over two nodes speeds the run up but costs reward — the policy-staleness
// effect of asynchronous parameter shipping.

#include <cstdio>

#include "campaign_common.hpp"

int main() {
  std::printf("=== Ablation: 1 vs 2 nodes (RLlib PPO RK8, 4 cores/node) ===\n\n");
  const auto trials = darl::bench::campaign_trials();

  const auto& one = darl::bench::solution(trials, 7);   // 1 node
  const auto& two = darl::bench::solution(trials, 8);   // 2 nodes
  darl::bench::print_solution_row(one);
  darl::bench::print_solution_row(two);

  std::printf("\nPaper: solution 7 scored -0.52 on one node; solution 8 scored "
              "-0.73 on two.\n");
  std::printf("  2 nodes faster: %s (%.1f -> %.1f min)\n",
              two.metrics.at("ComputationTime") < one.metrics.at("ComputationTime")
                  ? "PASS"
                  : "MISS",
              one.metrics.at("ComputationTime"),
              two.metrics.at("ComputationTime"));
  std::printf("  2 nodes lower reward: %s (%.3f -> %.3f)\n",
              two.metrics.at("Reward") < one.metrics.at("Reward") ? "PASS"
                                                                  : "MISS",
              one.metrics.at("Reward"), two.metrics.at("Reward"));
  std::printf("  2 nodes higher power: %s (%.1f -> %.1f kJ)\n",
              two.metrics.at("PowerConsumption") >
                      one.metrics.at("PowerConsumption")
                  ? "PASS"
                  : "MISS",
              one.metrics.at("PowerConsumption"),
              two.metrics.at("PowerConsumption"));

  // The RK3 pair (solutions 3 and 2) shows the same speed effect.
  const auto& one3 = darl::bench::solution(trials, 3);
  const auto& two3 = darl::bench::solution(trials, 2);
  std::printf("  RK3 pair agrees on speed (sol 3 vs 2): %s\n",
              two3.metrics.at("ComputationTime") <
                      one3.metrics.at("ComputationTime")
                  ? "PASS"
                  : "MISS");
  return 0;
}
