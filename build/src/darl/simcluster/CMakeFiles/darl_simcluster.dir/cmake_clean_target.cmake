file(REMOVE_RECURSE
  "libdarl_simcluster.a"
)
