file(REMOVE_RECURSE
  "CMakeFiles/darl_simcluster.dir/cluster.cpp.o"
  "CMakeFiles/darl_simcluster.dir/cluster.cpp.o.d"
  "libdarl_simcluster.a"
  "libdarl_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darl_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
