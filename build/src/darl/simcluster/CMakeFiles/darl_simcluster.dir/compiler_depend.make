# Empty compiler generated dependencies file for darl_simcluster.
# This may be replaced when dependencies are built.
