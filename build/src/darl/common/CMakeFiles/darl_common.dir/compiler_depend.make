# Empty compiler generated dependencies file for darl_common.
# This may be replaced when dependencies are built.
