file(REMOVE_RECURSE
  "CMakeFiles/darl_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/darl_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/darl_common.dir/csv.cpp.o"
  "CMakeFiles/darl_common.dir/csv.cpp.o.d"
  "CMakeFiles/darl_common.dir/jsonl.cpp.o"
  "CMakeFiles/darl_common.dir/jsonl.cpp.o.d"
  "CMakeFiles/darl_common.dir/log.cpp.o"
  "CMakeFiles/darl_common.dir/log.cpp.o.d"
  "CMakeFiles/darl_common.dir/rng.cpp.o"
  "CMakeFiles/darl_common.dir/rng.cpp.o.d"
  "CMakeFiles/darl_common.dir/stats.cpp.o"
  "CMakeFiles/darl_common.dir/stats.cpp.o.d"
  "CMakeFiles/darl_common.dir/table.cpp.o"
  "CMakeFiles/darl_common.dir/table.cpp.o.d"
  "libdarl_common.a"
  "libdarl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
