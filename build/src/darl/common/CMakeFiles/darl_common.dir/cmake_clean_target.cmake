file(REMOVE_RECURSE
  "libdarl_common.a"
)
