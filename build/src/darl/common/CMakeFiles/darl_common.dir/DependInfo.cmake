
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/darl/common/ascii_plot.cpp" "src/darl/common/CMakeFiles/darl_common.dir/ascii_plot.cpp.o" "gcc" "src/darl/common/CMakeFiles/darl_common.dir/ascii_plot.cpp.o.d"
  "/root/repo/src/darl/common/csv.cpp" "src/darl/common/CMakeFiles/darl_common.dir/csv.cpp.o" "gcc" "src/darl/common/CMakeFiles/darl_common.dir/csv.cpp.o.d"
  "/root/repo/src/darl/common/jsonl.cpp" "src/darl/common/CMakeFiles/darl_common.dir/jsonl.cpp.o" "gcc" "src/darl/common/CMakeFiles/darl_common.dir/jsonl.cpp.o.d"
  "/root/repo/src/darl/common/log.cpp" "src/darl/common/CMakeFiles/darl_common.dir/log.cpp.o" "gcc" "src/darl/common/CMakeFiles/darl_common.dir/log.cpp.o.d"
  "/root/repo/src/darl/common/rng.cpp" "src/darl/common/CMakeFiles/darl_common.dir/rng.cpp.o" "gcc" "src/darl/common/CMakeFiles/darl_common.dir/rng.cpp.o.d"
  "/root/repo/src/darl/common/stats.cpp" "src/darl/common/CMakeFiles/darl_common.dir/stats.cpp.o" "gcc" "src/darl/common/CMakeFiles/darl_common.dir/stats.cpp.o.d"
  "/root/repo/src/darl/common/table.cpp" "src/darl/common/CMakeFiles/darl_common.dir/table.cpp.o" "gcc" "src/darl/common/CMakeFiles/darl_common.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
