file(REMOVE_RECURSE
  "libdarl_core.a"
)
