# Empty dependencies file for darl_core.
# This may be replaced when dependencies are built.
