file(REMOVE_RECURSE
  "CMakeFiles/darl_core.dir/airdrop_study.cpp.o"
  "CMakeFiles/darl_core.dir/airdrop_study.cpp.o.d"
  "CMakeFiles/darl_core.dir/explorer.cpp.o"
  "CMakeFiles/darl_core.dir/explorer.cpp.o.d"
  "CMakeFiles/darl_core.dir/metric.cpp.o"
  "CMakeFiles/darl_core.dir/metric.cpp.o.d"
  "CMakeFiles/darl_core.dir/param.cpp.o"
  "CMakeFiles/darl_core.dir/param.cpp.o.d"
  "CMakeFiles/darl_core.dir/pareto.cpp.o"
  "CMakeFiles/darl_core.dir/pareto.cpp.o.d"
  "CMakeFiles/darl_core.dir/ranking.cpp.o"
  "CMakeFiles/darl_core.dir/ranking.cpp.o.d"
  "CMakeFiles/darl_core.dir/report.cpp.o"
  "CMakeFiles/darl_core.dir/report.cpp.o.d"
  "CMakeFiles/darl_core.dir/stability.cpp.o"
  "CMakeFiles/darl_core.dir/stability.cpp.o.d"
  "CMakeFiles/darl_core.dir/study.cpp.o"
  "CMakeFiles/darl_core.dir/study.cpp.o.d"
  "CMakeFiles/darl_core.dir/tpe.cpp.o"
  "CMakeFiles/darl_core.dir/tpe.cpp.o.d"
  "libdarl_core.a"
  "libdarl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
