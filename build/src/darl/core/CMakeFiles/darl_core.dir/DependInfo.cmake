
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/darl/core/airdrop_study.cpp" "src/darl/core/CMakeFiles/darl_core.dir/airdrop_study.cpp.o" "gcc" "src/darl/core/CMakeFiles/darl_core.dir/airdrop_study.cpp.o.d"
  "/root/repo/src/darl/core/explorer.cpp" "src/darl/core/CMakeFiles/darl_core.dir/explorer.cpp.o" "gcc" "src/darl/core/CMakeFiles/darl_core.dir/explorer.cpp.o.d"
  "/root/repo/src/darl/core/metric.cpp" "src/darl/core/CMakeFiles/darl_core.dir/metric.cpp.o" "gcc" "src/darl/core/CMakeFiles/darl_core.dir/metric.cpp.o.d"
  "/root/repo/src/darl/core/param.cpp" "src/darl/core/CMakeFiles/darl_core.dir/param.cpp.o" "gcc" "src/darl/core/CMakeFiles/darl_core.dir/param.cpp.o.d"
  "/root/repo/src/darl/core/pareto.cpp" "src/darl/core/CMakeFiles/darl_core.dir/pareto.cpp.o" "gcc" "src/darl/core/CMakeFiles/darl_core.dir/pareto.cpp.o.d"
  "/root/repo/src/darl/core/ranking.cpp" "src/darl/core/CMakeFiles/darl_core.dir/ranking.cpp.o" "gcc" "src/darl/core/CMakeFiles/darl_core.dir/ranking.cpp.o.d"
  "/root/repo/src/darl/core/report.cpp" "src/darl/core/CMakeFiles/darl_core.dir/report.cpp.o" "gcc" "src/darl/core/CMakeFiles/darl_core.dir/report.cpp.o.d"
  "/root/repo/src/darl/core/stability.cpp" "src/darl/core/CMakeFiles/darl_core.dir/stability.cpp.o" "gcc" "src/darl/core/CMakeFiles/darl_core.dir/stability.cpp.o.d"
  "/root/repo/src/darl/core/study.cpp" "src/darl/core/CMakeFiles/darl_core.dir/study.cpp.o" "gcc" "src/darl/core/CMakeFiles/darl_core.dir/study.cpp.o.d"
  "/root/repo/src/darl/core/tpe.cpp" "src/darl/core/CMakeFiles/darl_core.dir/tpe.cpp.o" "gcc" "src/darl/core/CMakeFiles/darl_core.dir/tpe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/darl/common/CMakeFiles/darl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/env/CMakeFiles/darl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/rl/CMakeFiles/darl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/frameworks/CMakeFiles/darl_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/airdrop/CMakeFiles/darl_airdrop.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/nn/CMakeFiles/darl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/simcluster/CMakeFiles/darl_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/ode/CMakeFiles/darl_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/linalg/CMakeFiles/darl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
