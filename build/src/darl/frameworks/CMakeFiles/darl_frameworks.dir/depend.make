# Empty dependencies file for darl_frameworks.
# This may be replaced when dependencies are built.
