
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/darl/frameworks/backend.cpp" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/backend.cpp.o" "gcc" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/backend.cpp.o.d"
  "/root/repo/src/darl/frameworks/costs.cpp" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/costs.cpp.o" "gcc" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/costs.cpp.o.d"
  "/root/repo/src/darl/frameworks/rllib_backend.cpp" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/rllib_backend.cpp.o" "gcc" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/rllib_backend.cpp.o.d"
  "/root/repo/src/darl/frameworks/stable_baselines_backend.cpp" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/stable_baselines_backend.cpp.o" "gcc" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/stable_baselines_backend.cpp.o.d"
  "/root/repo/src/darl/frameworks/tf_agents_backend.cpp" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/tf_agents_backend.cpp.o" "gcc" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/tf_agents_backend.cpp.o.d"
  "/root/repo/src/darl/frameworks/types.cpp" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/types.cpp.o" "gcc" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/types.cpp.o.d"
  "/root/repo/src/darl/frameworks/worker.cpp" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/worker.cpp.o" "gcc" "src/darl/frameworks/CMakeFiles/darl_frameworks.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/darl/common/CMakeFiles/darl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/env/CMakeFiles/darl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/rl/CMakeFiles/darl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/simcluster/CMakeFiles/darl_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/nn/CMakeFiles/darl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/linalg/CMakeFiles/darl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
