file(REMOVE_RECURSE
  "libdarl_frameworks.a"
)
