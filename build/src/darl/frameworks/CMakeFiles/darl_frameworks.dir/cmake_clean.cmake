file(REMOVE_RECURSE
  "CMakeFiles/darl_frameworks.dir/backend.cpp.o"
  "CMakeFiles/darl_frameworks.dir/backend.cpp.o.d"
  "CMakeFiles/darl_frameworks.dir/costs.cpp.o"
  "CMakeFiles/darl_frameworks.dir/costs.cpp.o.d"
  "CMakeFiles/darl_frameworks.dir/rllib_backend.cpp.o"
  "CMakeFiles/darl_frameworks.dir/rllib_backend.cpp.o.d"
  "CMakeFiles/darl_frameworks.dir/stable_baselines_backend.cpp.o"
  "CMakeFiles/darl_frameworks.dir/stable_baselines_backend.cpp.o.d"
  "CMakeFiles/darl_frameworks.dir/tf_agents_backend.cpp.o"
  "CMakeFiles/darl_frameworks.dir/tf_agents_backend.cpp.o.d"
  "CMakeFiles/darl_frameworks.dir/types.cpp.o"
  "CMakeFiles/darl_frameworks.dir/types.cpp.o.d"
  "CMakeFiles/darl_frameworks.dir/worker.cpp.o"
  "CMakeFiles/darl_frameworks.dir/worker.cpp.o.d"
  "libdarl_frameworks.a"
  "libdarl_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darl_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
