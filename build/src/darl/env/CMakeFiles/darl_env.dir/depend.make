# Empty dependencies file for darl_env.
# This may be replaced when dependencies are built.
