file(REMOVE_RECURSE
  "CMakeFiles/darl_env.dir/cartpole.cpp.o"
  "CMakeFiles/darl_env.dir/cartpole.cpp.o.d"
  "CMakeFiles/darl_env.dir/env.cpp.o"
  "CMakeFiles/darl_env.dir/env.cpp.o.d"
  "CMakeFiles/darl_env.dir/gridworld.cpp.o"
  "CMakeFiles/darl_env.dir/gridworld.cpp.o.d"
  "CMakeFiles/darl_env.dir/mountain_car.cpp.o"
  "CMakeFiles/darl_env.dir/mountain_car.cpp.o.d"
  "CMakeFiles/darl_env.dir/pendulum.cpp.o"
  "CMakeFiles/darl_env.dir/pendulum.cpp.o.d"
  "CMakeFiles/darl_env.dir/space.cpp.o"
  "CMakeFiles/darl_env.dir/space.cpp.o.d"
  "CMakeFiles/darl_env.dir/vec_env.cpp.o"
  "CMakeFiles/darl_env.dir/vec_env.cpp.o.d"
  "CMakeFiles/darl_env.dir/wrappers.cpp.o"
  "CMakeFiles/darl_env.dir/wrappers.cpp.o.d"
  "libdarl_env.a"
  "libdarl_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darl_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
