file(REMOVE_RECURSE
  "libdarl_env.a"
)
