
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/darl/env/cartpole.cpp" "src/darl/env/CMakeFiles/darl_env.dir/cartpole.cpp.o" "gcc" "src/darl/env/CMakeFiles/darl_env.dir/cartpole.cpp.o.d"
  "/root/repo/src/darl/env/env.cpp" "src/darl/env/CMakeFiles/darl_env.dir/env.cpp.o" "gcc" "src/darl/env/CMakeFiles/darl_env.dir/env.cpp.o.d"
  "/root/repo/src/darl/env/gridworld.cpp" "src/darl/env/CMakeFiles/darl_env.dir/gridworld.cpp.o" "gcc" "src/darl/env/CMakeFiles/darl_env.dir/gridworld.cpp.o.d"
  "/root/repo/src/darl/env/mountain_car.cpp" "src/darl/env/CMakeFiles/darl_env.dir/mountain_car.cpp.o" "gcc" "src/darl/env/CMakeFiles/darl_env.dir/mountain_car.cpp.o.d"
  "/root/repo/src/darl/env/pendulum.cpp" "src/darl/env/CMakeFiles/darl_env.dir/pendulum.cpp.o" "gcc" "src/darl/env/CMakeFiles/darl_env.dir/pendulum.cpp.o.d"
  "/root/repo/src/darl/env/space.cpp" "src/darl/env/CMakeFiles/darl_env.dir/space.cpp.o" "gcc" "src/darl/env/CMakeFiles/darl_env.dir/space.cpp.o.d"
  "/root/repo/src/darl/env/vec_env.cpp" "src/darl/env/CMakeFiles/darl_env.dir/vec_env.cpp.o" "gcc" "src/darl/env/CMakeFiles/darl_env.dir/vec_env.cpp.o.d"
  "/root/repo/src/darl/env/wrappers.cpp" "src/darl/env/CMakeFiles/darl_env.dir/wrappers.cpp.o" "gcc" "src/darl/env/CMakeFiles/darl_env.dir/wrappers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/darl/common/CMakeFiles/darl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/linalg/CMakeFiles/darl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
