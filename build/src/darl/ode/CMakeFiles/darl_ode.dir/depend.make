# Empty dependencies file for darl_ode.
# This may be replaced when dependencies are built.
