file(REMOVE_RECURSE
  "libdarl_ode.a"
)
