file(REMOVE_RECURSE
  "CMakeFiles/darl_ode.dir/event.cpp.o"
  "CMakeFiles/darl_ode.dir/event.cpp.o.d"
  "CMakeFiles/darl_ode.dir/explicit_rk.cpp.o"
  "CMakeFiles/darl_ode.dir/explicit_rk.cpp.o.d"
  "CMakeFiles/darl_ode.dir/gbs.cpp.o"
  "CMakeFiles/darl_ode.dir/gbs.cpp.o.d"
  "CMakeFiles/darl_ode.dir/integrator.cpp.o"
  "CMakeFiles/darl_ode.dir/integrator.cpp.o.d"
  "CMakeFiles/darl_ode.dir/tableau.cpp.o"
  "CMakeFiles/darl_ode.dir/tableau.cpp.o.d"
  "libdarl_ode.a"
  "libdarl_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darl_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
