
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/darl/ode/event.cpp" "src/darl/ode/CMakeFiles/darl_ode.dir/event.cpp.o" "gcc" "src/darl/ode/CMakeFiles/darl_ode.dir/event.cpp.o.d"
  "/root/repo/src/darl/ode/explicit_rk.cpp" "src/darl/ode/CMakeFiles/darl_ode.dir/explicit_rk.cpp.o" "gcc" "src/darl/ode/CMakeFiles/darl_ode.dir/explicit_rk.cpp.o.d"
  "/root/repo/src/darl/ode/gbs.cpp" "src/darl/ode/CMakeFiles/darl_ode.dir/gbs.cpp.o" "gcc" "src/darl/ode/CMakeFiles/darl_ode.dir/gbs.cpp.o.d"
  "/root/repo/src/darl/ode/integrator.cpp" "src/darl/ode/CMakeFiles/darl_ode.dir/integrator.cpp.o" "gcc" "src/darl/ode/CMakeFiles/darl_ode.dir/integrator.cpp.o.d"
  "/root/repo/src/darl/ode/tableau.cpp" "src/darl/ode/CMakeFiles/darl_ode.dir/tableau.cpp.o" "gcc" "src/darl/ode/CMakeFiles/darl_ode.dir/tableau.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/darl/common/CMakeFiles/darl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/linalg/CMakeFiles/darl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
