file(REMOVE_RECURSE
  "CMakeFiles/darl_airdrop.dir/airdrop_env.cpp.o"
  "CMakeFiles/darl_airdrop.dir/airdrop_env.cpp.o.d"
  "CMakeFiles/darl_airdrop.dir/dynamics.cpp.o"
  "CMakeFiles/darl_airdrop.dir/dynamics.cpp.o.d"
  "libdarl_airdrop.a"
  "libdarl_airdrop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darl_airdrop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
