file(REMOVE_RECURSE
  "libdarl_airdrop.a"
)
