# Empty compiler generated dependencies file for darl_airdrop.
# This may be replaced when dependencies are built.
