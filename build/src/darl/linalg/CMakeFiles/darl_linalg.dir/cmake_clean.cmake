file(REMOVE_RECURSE
  "CMakeFiles/darl_linalg.dir/matrix.cpp.o"
  "CMakeFiles/darl_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/darl_linalg.dir/vec.cpp.o"
  "CMakeFiles/darl_linalg.dir/vec.cpp.o.d"
  "libdarl_linalg.a"
  "libdarl_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darl_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
