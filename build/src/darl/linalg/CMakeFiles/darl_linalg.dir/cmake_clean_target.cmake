file(REMOVE_RECURSE
  "libdarl_linalg.a"
)
