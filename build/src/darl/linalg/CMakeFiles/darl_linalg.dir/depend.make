# Empty dependencies file for darl_linalg.
# This may be replaced when dependencies are built.
