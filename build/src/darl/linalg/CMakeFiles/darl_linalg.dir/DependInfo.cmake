
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/darl/linalg/matrix.cpp" "src/darl/linalg/CMakeFiles/darl_linalg.dir/matrix.cpp.o" "gcc" "src/darl/linalg/CMakeFiles/darl_linalg.dir/matrix.cpp.o.d"
  "/root/repo/src/darl/linalg/vec.cpp" "src/darl/linalg/CMakeFiles/darl_linalg.dir/vec.cpp.o" "gcc" "src/darl/linalg/CMakeFiles/darl_linalg.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/darl/common/CMakeFiles/darl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
