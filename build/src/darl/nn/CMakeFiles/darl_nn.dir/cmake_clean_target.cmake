file(REMOVE_RECURSE
  "libdarl_nn.a"
)
