file(REMOVE_RECURSE
  "CMakeFiles/darl_nn.dir/distributions.cpp.o"
  "CMakeFiles/darl_nn.dir/distributions.cpp.o.d"
  "CMakeFiles/darl_nn.dir/mlp.cpp.o"
  "CMakeFiles/darl_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/darl_nn.dir/optimizer.cpp.o"
  "CMakeFiles/darl_nn.dir/optimizer.cpp.o.d"
  "libdarl_nn.a"
  "libdarl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
