# Empty dependencies file for darl_nn.
# This may be replaced when dependencies are built.
