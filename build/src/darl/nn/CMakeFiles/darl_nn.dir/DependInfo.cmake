
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/darl/nn/distributions.cpp" "src/darl/nn/CMakeFiles/darl_nn.dir/distributions.cpp.o" "gcc" "src/darl/nn/CMakeFiles/darl_nn.dir/distributions.cpp.o.d"
  "/root/repo/src/darl/nn/mlp.cpp" "src/darl/nn/CMakeFiles/darl_nn.dir/mlp.cpp.o" "gcc" "src/darl/nn/CMakeFiles/darl_nn.dir/mlp.cpp.o.d"
  "/root/repo/src/darl/nn/optimizer.cpp" "src/darl/nn/CMakeFiles/darl_nn.dir/optimizer.cpp.o" "gcc" "src/darl/nn/CMakeFiles/darl_nn.dir/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/darl/common/CMakeFiles/darl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/linalg/CMakeFiles/darl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
