# Empty compiler generated dependencies file for darl_rl.
# This may be replaced when dependencies are built.
