
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/darl/rl/algorithm.cpp" "src/darl/rl/CMakeFiles/darl_rl.dir/algorithm.cpp.o" "gcc" "src/darl/rl/CMakeFiles/darl_rl.dir/algorithm.cpp.o.d"
  "/root/repo/src/darl/rl/checkpoint.cpp" "src/darl/rl/CMakeFiles/darl_rl.dir/checkpoint.cpp.o" "gcc" "src/darl/rl/CMakeFiles/darl_rl.dir/checkpoint.cpp.o.d"
  "/root/repo/src/darl/rl/evaluate.cpp" "src/darl/rl/CMakeFiles/darl_rl.dir/evaluate.cpp.o" "gcc" "src/darl/rl/CMakeFiles/darl_rl.dir/evaluate.cpp.o.d"
  "/root/repo/src/darl/rl/gae.cpp" "src/darl/rl/CMakeFiles/darl_rl.dir/gae.cpp.o" "gcc" "src/darl/rl/CMakeFiles/darl_rl.dir/gae.cpp.o.d"
  "/root/repo/src/darl/rl/impala.cpp" "src/darl/rl/CMakeFiles/darl_rl.dir/impala.cpp.o" "gcc" "src/darl/rl/CMakeFiles/darl_rl.dir/impala.cpp.o.d"
  "/root/repo/src/darl/rl/ppo.cpp" "src/darl/rl/CMakeFiles/darl_rl.dir/ppo.cpp.o" "gcc" "src/darl/rl/CMakeFiles/darl_rl.dir/ppo.cpp.o.d"
  "/root/repo/src/darl/rl/prioritized_replay.cpp" "src/darl/rl/CMakeFiles/darl_rl.dir/prioritized_replay.cpp.o" "gcc" "src/darl/rl/CMakeFiles/darl_rl.dir/prioritized_replay.cpp.o.d"
  "/root/repo/src/darl/rl/replay_buffer.cpp" "src/darl/rl/CMakeFiles/darl_rl.dir/replay_buffer.cpp.o" "gcc" "src/darl/rl/CMakeFiles/darl_rl.dir/replay_buffer.cpp.o.d"
  "/root/repo/src/darl/rl/sac.cpp" "src/darl/rl/CMakeFiles/darl_rl.dir/sac.cpp.o" "gcc" "src/darl/rl/CMakeFiles/darl_rl.dir/sac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/darl/common/CMakeFiles/darl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/linalg/CMakeFiles/darl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/nn/CMakeFiles/darl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/env/CMakeFiles/darl_env.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
