file(REMOVE_RECURSE
  "CMakeFiles/darl_rl.dir/algorithm.cpp.o"
  "CMakeFiles/darl_rl.dir/algorithm.cpp.o.d"
  "CMakeFiles/darl_rl.dir/checkpoint.cpp.o"
  "CMakeFiles/darl_rl.dir/checkpoint.cpp.o.d"
  "CMakeFiles/darl_rl.dir/evaluate.cpp.o"
  "CMakeFiles/darl_rl.dir/evaluate.cpp.o.d"
  "CMakeFiles/darl_rl.dir/gae.cpp.o"
  "CMakeFiles/darl_rl.dir/gae.cpp.o.d"
  "CMakeFiles/darl_rl.dir/impala.cpp.o"
  "CMakeFiles/darl_rl.dir/impala.cpp.o.d"
  "CMakeFiles/darl_rl.dir/ppo.cpp.o"
  "CMakeFiles/darl_rl.dir/ppo.cpp.o.d"
  "CMakeFiles/darl_rl.dir/prioritized_replay.cpp.o"
  "CMakeFiles/darl_rl.dir/prioritized_replay.cpp.o.d"
  "CMakeFiles/darl_rl.dir/replay_buffer.cpp.o"
  "CMakeFiles/darl_rl.dir/replay_buffer.cpp.o.d"
  "CMakeFiles/darl_rl.dir/sac.cpp.o"
  "CMakeFiles/darl_rl.dir/sac.cpp.o.d"
  "libdarl_rl.a"
  "libdarl_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darl_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
