file(REMOVE_RECURSE
  "libdarl_rl.a"
)
