# Empty compiler generated dependencies file for darl_study.
# This may be replaced when dependencies are built.
