file(REMOVE_RECURSE
  "CMakeFiles/darl_study.dir/darl_study.cpp.o"
  "CMakeFiles/darl_study.dir/darl_study.cpp.o.d"
  "darl_study"
  "darl_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darl_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
