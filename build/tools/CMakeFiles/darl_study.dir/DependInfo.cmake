
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/darl_study.cpp" "tools/CMakeFiles/darl_study.dir/darl_study.cpp.o" "gcc" "tools/CMakeFiles/darl_study.dir/darl_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/darl/core/CMakeFiles/darl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/frameworks/CMakeFiles/darl_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/simcluster/CMakeFiles/darl_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/rl/CMakeFiles/darl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/nn/CMakeFiles/darl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/airdrop/CMakeFiles/darl_airdrop.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/env/CMakeFiles/darl_env.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/ode/CMakeFiles/darl_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/linalg/CMakeFiles/darl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/darl/common/CMakeFiles/darl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
