file(REMOVE_RECURSE
  "../bench/bench_ablation_rk_order"
  "../bench/bench_ablation_rk_order.pdb"
  "CMakeFiles/bench_ablation_rk_order.dir/bench_ablation_rk_order.cpp.o"
  "CMakeFiles/bench_ablation_rk_order.dir/bench_ablation_rk_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rk_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
