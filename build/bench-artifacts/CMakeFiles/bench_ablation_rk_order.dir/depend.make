# Empty dependencies file for bench_ablation_rk_order.
# This may be replaced when dependencies are built.
