file(REMOVE_RECURSE
  "../bench/bench_micro_nn"
  "../bench/bench_micro_nn.pdb"
  "CMakeFiles/bench_micro_nn.dir/bench_micro_nn.cpp.o"
  "CMakeFiles/bench_micro_nn.dir/bench_micro_nn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
