# Empty dependencies file for bench_fig6_reward_power.
# This may be replaced when dependencies are built.
