file(REMOVE_RECURSE
  "../bench/bench_fig6_reward_power"
  "../bench/bench_fig6_reward_power.pdb"
  "CMakeFiles/bench_fig6_reward_power.dir/bench_fig6_reward_power.cpp.o"
  "CMakeFiles/bench_fig6_reward_power.dir/bench_fig6_reward_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_reward_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
