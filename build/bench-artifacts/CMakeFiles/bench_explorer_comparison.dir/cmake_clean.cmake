file(REMOVE_RECURSE
  "../bench/bench_explorer_comparison"
  "../bench/bench_explorer_comparison.pdb"
  "CMakeFiles/bench_explorer_comparison.dir/bench_explorer_comparison.cpp.o"
  "CMakeFiles/bench_explorer_comparison.dir/bench_explorer_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_explorer_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
