# Empty dependencies file for bench_explorer_comparison.
# This may be replaced when dependencies are built.
