file(REMOVE_RECURSE
  "../bench/bench_micro_ode"
  "../bench/bench_micro_ode.pdb"
  "CMakeFiles/bench_micro_ode.dir/bench_micro_ode.cpp.o"
  "CMakeFiles/bench_micro_ode.dir/bench_micro_ode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
