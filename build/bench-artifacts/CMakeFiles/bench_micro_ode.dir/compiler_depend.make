# Empty compiler generated dependencies file for bench_micro_ode.
# This may be replaced when dependencies are built.
