# Empty dependencies file for bench_ablation_front_stability.
# This may be replaced when dependencies are built.
