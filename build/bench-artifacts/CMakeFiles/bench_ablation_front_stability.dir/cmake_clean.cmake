file(REMOVE_RECURSE
  "../bench/bench_ablation_front_stability"
  "../bench/bench_ablation_front_stability.pdb"
  "CMakeFiles/bench_ablation_front_stability.dir/bench_ablation_front_stability.cpp.o"
  "CMakeFiles/bench_ablation_front_stability.dir/bench_ablation_front_stability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_front_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
