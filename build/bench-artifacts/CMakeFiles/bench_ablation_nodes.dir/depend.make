# Empty dependencies file for bench_ablation_nodes.
# This may be replaced when dependencies are built.
