file(REMOVE_RECURSE
  "../bench/bench_ablation_algorithm"
  "../bench/bench_ablation_algorithm.pdb"
  "CMakeFiles/bench_ablation_algorithm.dir/bench_ablation_algorithm.cpp.o"
  "CMakeFiles/bench_ablation_algorithm.dir/bench_ablation_algorithm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
