# Empty dependencies file for bench_ablation_vectorization.
# This may be replaced when dependencies are built.
