file(REMOVE_RECURSE
  "../bench/bench_ablation_vectorization"
  "../bench/bench_ablation_vectorization.pdb"
  "CMakeFiles/bench_ablation_vectorization.dir/bench_ablation_vectorization.cpp.o"
  "CMakeFiles/bench_ablation_vectorization.dir/bench_ablation_vectorization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
