file(REMOVE_RECURSE
  "../bench/bench_extension_impala"
  "../bench/bench_extension_impala.pdb"
  "CMakeFiles/bench_extension_impala.dir/bench_extension_impala.cpp.o"
  "CMakeFiles/bench_extension_impala.dir/bench_extension_impala.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_impala.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
