# Empty dependencies file for bench_extension_impala.
# This may be replaced when dependencies are built.
