# Empty compiler generated dependencies file for bench_fig4_reward_time.
# This may be replaced when dependencies are built.
