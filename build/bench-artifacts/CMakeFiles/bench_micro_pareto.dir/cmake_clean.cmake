file(REMOVE_RECURSE
  "../bench/bench_micro_pareto"
  "../bench/bench_micro_pareto.pdb"
  "CMakeFiles/bench_micro_pareto.dir/bench_micro_pareto.cpp.o"
  "CMakeFiles/bench_micro_pareto.dir/bench_micro_pareto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
