file(REMOVE_RECURSE
  "CMakeFiles/test_core_explorer.dir/test_core_explorer.cpp.o"
  "CMakeFiles/test_core_explorer.dir/test_core_explorer.cpp.o.d"
  "test_core_explorer"
  "test_core_explorer.pdb"
  "test_core_explorer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
