file(REMOVE_RECURSE
  "CMakeFiles/test_core_param.dir/test_core_param.cpp.o"
  "CMakeFiles/test_core_param.dir/test_core_param.cpp.o.d"
  "test_core_param"
  "test_core_param.pdb"
  "test_core_param[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
