# Empty compiler generated dependencies file for test_airdrop.
# This may be replaced when dependencies are built.
