file(REMOVE_RECURSE
  "CMakeFiles/test_airdrop.dir/test_airdrop.cpp.o"
  "CMakeFiles/test_airdrop.dir/test_airdrop.cpp.o.d"
  "test_airdrop"
  "test_airdrop.pdb"
  "test_airdrop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_airdrop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
