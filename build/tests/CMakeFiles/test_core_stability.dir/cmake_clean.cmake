file(REMOVE_RECURSE
  "CMakeFiles/test_core_stability.dir/test_core_stability.cpp.o"
  "CMakeFiles/test_core_stability.dir/test_core_stability.cpp.o.d"
  "test_core_stability"
  "test_core_stability.pdb"
  "test_core_stability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
