# Empty compiler generated dependencies file for test_core_pareto.
# This may be replaced when dependencies are built.
