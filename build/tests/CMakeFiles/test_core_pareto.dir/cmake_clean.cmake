file(REMOVE_RECURSE
  "CMakeFiles/test_core_pareto.dir/test_core_pareto.cpp.o"
  "CMakeFiles/test_core_pareto.dir/test_core_pareto.cpp.o.d"
  "test_core_pareto"
  "test_core_pareto.pdb"
  "test_core_pareto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
