# Empty compiler generated dependencies file for test_rl_learning.
# This may be replaced when dependencies are built.
