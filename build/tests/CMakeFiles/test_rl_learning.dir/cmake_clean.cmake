file(REMOVE_RECURSE
  "CMakeFiles/test_rl_learning.dir/test_rl_learning.cpp.o"
  "CMakeFiles/test_rl_learning.dir/test_rl_learning.cpp.o.d"
  "test_rl_learning"
  "test_rl_learning.pdb"
  "test_rl_learning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
