# Empty dependencies file for test_frameworks.
# This may be replaced when dependencies are built.
