file(REMOVE_RECURSE
  "CMakeFiles/test_frameworks.dir/test_frameworks.cpp.o"
  "CMakeFiles/test_frameworks.dir/test_frameworks.cpp.o.d"
  "test_frameworks"
  "test_frameworks.pdb"
  "test_frameworks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
