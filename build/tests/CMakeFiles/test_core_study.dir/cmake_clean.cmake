file(REMOVE_RECURSE
  "CMakeFiles/test_core_study.dir/test_core_study.cpp.o"
  "CMakeFiles/test_core_study.dir/test_core_study.cpp.o.d"
  "test_core_study"
  "test_core_study.pdb"
  "test_core_study[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
