# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_ode[1]_include.cmake")
include("/root/repo/build/tests/test_env[1]_include.cmake")
include("/root/repo/build/tests/test_airdrop[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_rl[1]_include.cmake")
include("/root/repo/build/tests/test_rl_learning[1]_include.cmake")
include("/root/repo/build/tests/test_simcluster[1]_include.cmake")
include("/root/repo/build/tests/test_frameworks[1]_include.cmake")
include("/root/repo/build/tests/test_core_param[1]_include.cmake")
include("/root/repo/build/tests/test_core_pareto[1]_include.cmake")
include("/root/repo/build/tests/test_core_explorer[1]_include.cmake")
include("/root/repo/build/tests/test_core_ranking[1]_include.cmake")
include("/root/repo/build/tests/test_core_stability[1]_include.cmake")
include("/root/repo/build/tests/test_core_study[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
