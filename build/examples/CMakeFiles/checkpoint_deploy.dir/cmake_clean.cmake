file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_deploy.dir/checkpoint_deploy.cpp.o"
  "CMakeFiles/checkpoint_deploy.dir/checkpoint_deploy.cpp.o.d"
  "checkpoint_deploy"
  "checkpoint_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
