# Empty dependencies file for checkpoint_deploy.
# This may be replaced when dependencies are built.
