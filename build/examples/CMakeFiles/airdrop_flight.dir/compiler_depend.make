# Empty compiler generated dependencies file for airdrop_flight.
# This may be replaced when dependencies are built.
