file(REMOVE_RECURSE
  "CMakeFiles/airdrop_flight.dir/airdrop_flight.cpp.o"
  "CMakeFiles/airdrop_flight.dir/airdrop_flight.cpp.o.d"
  "airdrop_flight"
  "airdrop_flight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airdrop_flight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
