file(REMOVE_RECURSE
  "CMakeFiles/explorer_tour.dir/explorer_tour.cpp.o"
  "CMakeFiles/explorer_tour.dir/explorer_tour.cpp.o.d"
  "explorer_tour"
  "explorer_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explorer_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
