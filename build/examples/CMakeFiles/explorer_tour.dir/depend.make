# Empty dependencies file for explorer_tour.
# This may be replaced when dependencies are built.
