file(REMOVE_RECURSE
  "CMakeFiles/airdrop_study.dir/airdrop_study.cpp.o"
  "CMakeFiles/airdrop_study.dir/airdrop_study.cpp.o.d"
  "airdrop_study"
  "airdrop_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airdrop_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
