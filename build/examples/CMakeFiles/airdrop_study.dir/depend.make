# Empty dependencies file for airdrop_study.
# This may be replaced when dependencies are built.
