// checkpoint_deploy: the post-decision workflow. After a study has picked a
// winning configuration, the model it trained is saved to disk and later
// re-deployed without retraining — the reason the paper wants good
// configurations chosen *before* the expensive learning phase.
//
// The example trains a small PPO policy on the airdrop simulator, saves a
// checkpoint, reloads it into a fresh inference-only actor, and finally
// stands the checkpoint up behind the darl::serve micro-batching server —
// the way a deployed policy actually answers requests — verifying that
// every served action is bitwise-identical to the trained actor's greedy
// decision.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "darl/airdrop/airdrop_env.hpp"
#include "darl/frameworks/backend.hpp"
#include "darl/rl/checkpoint.hpp"
#include "darl/rl/evaluate.hpp"
#include "darl/serve/batch_scheduler.hpp"
#include "darl/serve/policy_store.hpp"

using namespace darl;

int main() {
  // 1) Train (a short run; a real project would use the study's winner).
  airdrop::AirdropConfig env_cfg;
  env_cfg.altitude_min = 30.0;
  env_cfg.altitude_max = 200.0;
  env_cfg.rk_order = ode::RkOrder::Order5;

  frameworks::TrainRequest req;
  req.env_factory = airdrop::make_airdrop_factory(env_cfg);
  req.algo.kind = rl::AlgoKind::PPO;
  req.deployment = {1, 2};
  req.total_timesteps = 6144;
  req.eval_episodes = 20;
  req.seed = 11;

  std::printf("training PPO on the airdrop simulator (%zu steps)...\n",
              req.total_timesteps);
  frameworks::StableBaselinesBackend backend;
  const frameworks::TrainResult result = backend.run(req);
  std::printf("  trained: eval landing score %.3f (+/- %.3f)\n", result.reward,
              result.reward_stddev);

  // 2) Save the trained policy (TrainResult::final_policy).
  auto probe = req.env_factory();
  rl::Checkpoint ck;
  ck.kind = rl::AlgoKind::PPO;
  ck.obs_dim = probe->observation_space().dim();
  ck.action_dim = probe->action_space().action_dim();
  ck.params = result.final_policy;
  const std::string path = "airdrop_policy.ckpt";
  rl::save_checkpoint_file(path, ck);
  std::printf("  saved %zu parameters to %s\n", ck.params.size(), path.c_str());

  // 3) Deploy: build an inference-only actor with the matching
  // architecture and load the checkpoint into it.
  rl::AlgorithmSpec spec;
  spec.kind = rl::AlgoKind::PPO;
  // The campaign profile the backend used (Stable Baselines defaults) only
  // changes training hyperparameters, not the network shape.
  auto algo = rl::make_algorithm(spec, probe->observation_space().dim(),
                                 probe->action_space(), 0);
  const rl::Checkpoint loaded = rl::load_checkpoint_file(path);
  auto deployed = algo->make_actor();
  deployed->set_params(loaded.params);

  auto env = req.env_factory();
  env->seed(2026);
  Rng rng(3);
  const rl::EvalResult eval =
      rl::evaluate_policy(*deployed, *env, 10, rng, /*stochastic=*/false);
  std::printf("  deployed policy: %zu evaluation flights, mean landing score "
              "%.3f, mean flight %.0f steps\n",
              eval.episodes, eval.mean_score, eval.mean_length);

  // 4) Serve: publish the checkpoint to a versioned PolicyStore and put a
  // micro-batching BatchScheduler in front of it. Several client threads
  // drive airdrop episodes through serve(); the scheduler coalesces their
  // concurrent requests into micro-batches, and because the batched
  // kernels match per-sample math bitwise (DESIGN.md §11), every served
  // action must equal the trained actor's greedy decision exactly.
  serve::PolicyStore store;
  const std::uint64_t version =
      store.publish_checkpoint(loaded, probe->action_space());
  serve::ServeConfig serve_cfg;
  serve_cfg.max_batch = 8;
  serve::BatchScheduler server(store, serve_cfg);

  constexpr int kClients = 3;
  constexpr int kStepsPerClient = 25;
  std::atomic<int> served{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Per-thread reference actor: the same parameters the server holds.
      auto reference = algo->make_actor();
      reference->set_params(loaded.params);
      auto client_env = req.env_factory();
      client_env->seed(100 + c);
      Vec client_obs = client_env->reset();
      for (int i = 0; i < kStepsPerClient; ++i) {
        const serve::Response response = server.serve(client_obs);
        if (response.outcome != serve::Outcome::Ok) break;
        served.fetch_add(1);
        if (response.action != reference->act_greedy(client_obs)) {
          mismatches.fetch_add(1);
        }
        const env::StepResult r = client_env->step(response.action);
        if (r.done()) break;
        client_obs = r.observation;
      }
    });
  }
  for (auto& t : clients) t.join();
  server.shutdown();

  const bool identical = mismatches.load() == 0;
  std::printf("  served %d requests from policy version %llu across %d "
              "concurrent clients\n",
              served.load(), static_cast<unsigned long long>(version),
              kClients);
  std::printf("  served actions identical to trained actor's greedy "
              "decisions: %s\n",
              identical ? "yes" : "NO");
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
