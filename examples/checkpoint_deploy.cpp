// checkpoint_deploy: the post-decision workflow. After a study has picked a
// winning configuration, the model it trained is saved to disk and later
// re-deployed without retraining — the reason the paper wants good
// configurations chosen *before* the expensive learning phase.
//
// The example trains a small PPO policy on the airdrop simulator, saves a
// checkpoint, reloads it into a fresh inference-only actor, and verifies
// the deployed policy reproduces the trained one's behaviour.

#include <cstdio>

#include "darl/airdrop/airdrop_env.hpp"
#include "darl/frameworks/backend.hpp"
#include "darl/rl/checkpoint.hpp"
#include "darl/rl/evaluate.hpp"

using namespace darl;

int main() {
  // 1) Train (a short run; a real project would use the study's winner).
  airdrop::AirdropConfig env_cfg;
  env_cfg.altitude_min = 30.0;
  env_cfg.altitude_max = 200.0;
  env_cfg.rk_order = ode::RkOrder::Order5;

  frameworks::TrainRequest req;
  req.env_factory = airdrop::make_airdrop_factory(env_cfg);
  req.algo.kind = rl::AlgoKind::PPO;
  req.deployment = {1, 2};
  req.total_timesteps = 6144;
  req.eval_episodes = 20;
  req.seed = 11;

  std::printf("training PPO on the airdrop simulator (%zu steps)...\n",
              req.total_timesteps);
  frameworks::StableBaselinesBackend backend;
  const frameworks::TrainResult result = backend.run(req);
  std::printf("  trained: eval landing score %.3f (+/- %.3f)\n", result.reward,
              result.reward_stddev);

  // 2) Save the trained policy (TrainResult::final_policy).
  auto probe = req.env_factory();
  rl::Checkpoint ck;
  ck.kind = rl::AlgoKind::PPO;
  ck.obs_dim = probe->observation_space().dim();
  ck.action_dim = probe->action_space().action_dim();
  ck.params = result.final_policy;
  const std::string path = "airdrop_policy.ckpt";
  rl::save_checkpoint_file(path, ck);
  std::printf("  saved %zu parameters to %s\n", ck.params.size(), path.c_str());

  // 3) Deploy: build an inference-only actor with the matching
  // architecture and load the checkpoint into it.
  rl::AlgorithmSpec spec;
  spec.kind = rl::AlgoKind::PPO;
  // The campaign profile the backend used (Stable Baselines defaults) only
  // changes training hyperparameters, not the network shape.
  auto algo = rl::make_algorithm(spec, probe->observation_space().dim(),
                                 probe->action_space(), 0);
  const rl::Checkpoint loaded = rl::load_checkpoint_file(path);
  auto deployed = algo->make_actor();
  deployed->set_params(loaded.params);

  auto env = req.env_factory();
  env->seed(2026);
  Rng rng(3);
  const rl::EvalResult eval =
      rl::evaluate_policy(*deployed, *env, 10, rng, /*stochastic=*/false);
  std::printf("  deployed policy: %zu evaluation flights, mean landing score "
              "%.3f, mean flight %.0f steps\n",
              eval.episodes, eval.mean_score, eval.mean_length);

  // 4) Same parameters => same greedy decisions.
  auto reference = algo->make_actor();
  reference->set_params(result.final_policy);
  auto env2 = req.env_factory();
  env2->seed(99);
  Vec obs = env2->reset();
  bool identical = true;
  for (int i = 0; i < 25; ++i) {
    const Vec a = deployed->act_greedy(obs);
    const Vec b = reference->act_greedy(obs);
    if (a != b) identical = false;
    const env::StepResult r = env2->step(a);
    if (r.done()) break;
    obs = r.observation;
  }
  std::printf("  deployed decisions identical to in-memory policy: %s\n",
              identical ? "yes" : "NO");
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
