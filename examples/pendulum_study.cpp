// pendulum_study: the methodology applied to a *different* case study —
// the classic-control Pendulum environment — demonstrating the paper's
// generality claim (§VII): only stage (a) changes; configurations,
// exploration, metrics and ranking are reused unchanged.

#include <cstdio>

#include "darl/core/ranking.hpp"
#include "darl/core/report.hpp"
#include "darl/core/study.hpp"
#include "darl/env/pendulum.hpp"
#include "darl/frameworks/backend.hpp"

using namespace darl;
using namespace darl::core;

int main() {
  // (a) Case study: Pendulum swing-up through the framework backends.
  CaseStudyDef def;
  def.name = "pendulum-swing-up";
  def.space.add(ParamDomain::categorical(
      "framework", {"RLlib", "StableBaselines", "TF-Agents"},
      ParamCategory::Algorithm));
  def.space.add(
      ParamDomain::integer_set("cores", {2, 4}, ParamCategory::System));
  def.metrics = MetricSet::paper_metrics();

  def.evaluate = [](const LearningConfiguration& config, double budget,
                    std::uint64_t seed) -> MetricValues {
    frameworks::FrameworkKind fw = frameworks::FrameworkKind::RayRllib;
    const std::string label = config.get_categorical("framework");
    if (label == "StableBaselines") fw = frameworks::FrameworkKind::StableBaselines;
    if (label == "TF-Agents") fw = frameworks::FrameworkKind::TfAgents;

    frameworks::TrainRequest req;
    req.env_factory = env::make_pendulum_factory(200);
    req.algo.kind = rl::AlgoKind::PPO;
    req.algo.ppo.epochs = 6;
    req.deployment.nodes = 1;
    req.deployment.cores_per_node =
        static_cast<std::size_t>(config.get_integer("cores"));
    req.total_timesteps = static_cast<std::size_t>(8192 * budget);
    req.train_batch_total = 1024;
    req.steps_per_env = 256;
    req.eval_episodes = 10;
    req.seed = seed;

    const frameworks::TrainResult r = frameworks::make_backend(fw)->run(req);
    return {{"Reward", r.reward},
            {"ComputationTime", r.sim_seconds / 60.0},
            {"PowerConsumption", r.sim_energy_joules / 1e3}};
  };

  // (b+c) Exhaustive grid over the 6 combinations (the space is tiny).
  Study study(def, std::make_unique<GridSearch>(def.space, 2),
              {.seed = 3, .log_progress = false});
  std::printf("Training 6 Pendulum configurations...\n\n");
  study.run();

  // (d+e) Table, front, and a sorted array over reward — the paper's
  // "sorted arrays" ranking alternative.
  std::printf("%s\n", render_trial_table(def, study.trials()).c_str());
  std::printf("%s\n",
              render_pareto_plot(def, study.trials(), "ComputationTime",
                                 "Reward", "Pendulum: reward vs time")
                  .c_str());

  SingleMetricRanking by_reward("Reward");
  std::printf("Sorted by reward:\n");
  for (const auto& r : by_reward.rank(def.metrics, study.metric_table())) {
    const auto& t = study.trials()[r.trial_index];
    std::printf("  %zu. #%zu [%s] reward %.1f\n", r.rank + 1, t.id + 1,
                t.config.describe().c_str(), t.metrics.at("Reward"));
  }
  return 0;
}
