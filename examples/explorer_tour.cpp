// explorer_tour: the exploratory-method stage in isolation. A synthetic
// (instant) evaluation function makes the behavioural differences between
// Grid Search, Random Search and Successive Halving visible: coverage,
// cost, and what each one finds.

#include <cstdio>

#include "darl/core/report.hpp"
#include "darl/core/study.hpp"

using namespace darl::core;

namespace {

CaseStudyDef synthetic_def() {
  CaseStudyDef def;
  def.name = "explorer-tour";
  def.space.add(ParamDomain::integer_set("depth", {1, 2, 3, 4, 5},
                                         ParamCategory::Algorithm));
  def.space.add(ParamDomain::real_range("lr", 1e-4, 1e-1, /*log_scale=*/true,
                                        ParamCategory::Algorithm));
  def.metrics.add({"score", "", Sense::Maximize});
  def.metrics.add({"cost", "s", Sense::Minimize});
  // Score peaks at lr ~ 1e-2 and depth 3; cost grows with depth and budget.
  def.evaluate = [](const LearningConfiguration& c, double budget,
                    std::uint64_t) -> MetricValues {
    const double depth = static_cast<double>(c.get_integer("depth"));
    const double lr = c.get_real("lr");
    const double lr_term = -std::log10(lr / 1e-2) * std::log10(lr / 1e-2);
    const double depth_term = -(depth - 3.0) * (depth - 3.0) / 4.0;
    return {{"score", budget * (5.0 + lr_term + depth_term)},
            {"cost", budget * depth * 2.0}};
  };
  return def;
}

void summarize(const char* label, const Study& study) {
  double cost = 0.0;
  double best = -1e18;
  std::string best_cfg;
  for (const auto& t : study.trials()) {
    cost += t.metrics.at("cost");
    if (t.budget_fraction >= 1.0 && t.metrics.at("score") > best) {
      best = t.metrics.at("score");
      best_cfg = t.config.describe();
    }
  }
  std::printf("%-20s trials %3zu | total cost %7.1f | best full-budget score "
              "%6.3f [%s]\n",
              label, study.trials().size(), cost, best, best_cfg.c_str());
}

}  // namespace

int main() {
  std::printf("Exploratory-method tour on a synthetic objective\n");
  std::printf("(score peaks at depth=3, lr=1e-2; cost grows with depth)\n\n");

  const CaseStudyDef def = synthetic_def();

  Study grid(def, std::make_unique<GridSearch>(def.space, 5),
             {.seed = 1, .log_progress = false});
  grid.run();
  summarize("GridSearch(5x5)", grid);

  Study random(def, std::make_unique<RandomSearch>(def.space, 12, 7),
               {.seed = 1, .log_progress = false});
  random.run();
  summarize("RandomSearch(12)", random);

  Study halving(def,
                std::make_unique<SuccessiveHalving>(
                    def.space, def.metrics.def("score"), 16, 2.0, 0.125, 7),
                {.seed = 1, .log_progress = false});
  halving.run();
  summarize("SuccessiveHalving", halving);

  std::printf("\nGrid trials, as the reference table:\n%s\n",
              render_trial_table(def, grid.trials()).c_str());
  return 0;
}
