// airdrop_study: the paper's §V workflow end to end at a reduced budget —
// apply the methodology to the Airdrop Package Delivery Simulator, train a
// handful of configurations through the framework backends, and present
// the three Pareto fronts. The full 18-configuration campaign lives in
// bench/bench_table1; this example keeps the runtime to tens of seconds.

#include <cstdio>

#include "darl/core/airdrop_study.hpp"
#include "darl/core/ranking.hpp"

using namespace darl;
using namespace darl::core;

int main() {
  AirdropStudyOptions opts;
  opts.total_timesteps = 6144;  // reduced budget for the example
  opts.seeds_per_trial = 1;
  opts.eval_episodes = 20;

  const CaseStudyDef def = make_airdrop_case_study(opts);

  // A representative slice of Table I: one good configuration per
  // framework plus an RK-order contrast.
  std::vector<LearningConfiguration> configs;
  auto add = [&](std::int64_t rk, const char* fw, std::int64_t nodes,
                 std::int64_t cores) {
    LearningConfiguration c;
    c.set(kParamRkOrder, rk);
    c.set(kParamFramework, std::string(fw));
    c.set(kParamAlgorithm, std::string("PPO"));
    c.set(kParamNodes, nodes);
    c.set(kParamCores, cores);
    configs.push_back(c);
  };
  add(3, "RLlib", 2, 4);           // the paper's fastest solution shape
  add(3, "TF-Agents", 1, 4);       // the paper's most frugal solution shape
  add(8, "StableBaselines", 1, 4); // the paper's best-reward solution shape
  add(8, "RLlib", 1, 4);           // RK-order / node contrast
  add(3, "StableBaselines", 1, 2); // the vectorization anomaly (sol 14)

  std::printf("Training %zu configurations x %zu timesteps...\n\n",
              configs.size(), opts.total_timesteps);
  Study study(def, std::make_unique<FixedListSearch>(configs),
              {.seed = 42, .log_progress = false});
  study.run();

  std::printf("%s\n",
              render_trial_table(def, study.trials(),
                                 {kParamRkOrder, kParamFramework, kParamNodes,
                                  kParamCores})
                  .c_str());

  for (const auto& [x, y, title] :
       {std::tuple{"ComputationTime", "Reward", "Reward vs Computation Time"},
        std::tuple{"ComputationTime", "PowerConsumption",
                   "Power vs Computation Time"},
        std::tuple{"PowerConsumption", "Reward", "Reward vs Power"}}) {
    std::vector<std::size_t> front;
    std::printf("%s\n", render_pareto_plot(def, study.trials(), x, y, title,
                                           &front)
                            .c_str());
    std::printf("  non-dominated:");
    for (std::size_t id : front) std::printf(" #%zu", id + 1);
    std::printf("\n\n");
  }

  // A scalarized ranking as the "short list" a project team would review.
  WeightedSumRanking ranking;
  const auto ranked = ranking.rank(def.metrics, study.metric_table());
  std::printf("Weighted-sum short list (uniform weights):\n");
  for (const auto& r : ranked) {
    const auto& t = study.trials()[r.trial_index];
    std::printf("  %zu. config #%zu  score %.3f%s  [%s]\n", r.rank + 1,
                t.id + 1, r.score, r.pareto_optimal ? "  (Pareto-optimal)" : "",
                t.config.describe().c_str());
  }
  return 0;
}
