// quickstart: the five methodology stages on a synthetic case study, in
// ~40 lines of user code. No training involved — the evaluation function
// is analytic — so this runs instantly and shows the API shape:
//
//   (a) case study        -> CaseStudyDef with an evaluate function
//   (b) configurations    -> ParamSpace
//   (c) exploratory method-> RandomSearch
//   (d) evaluation metrics-> MetricSet
//   (e) ranking method    -> Pareto front plot + ranked table

#include <cstdio>

#include "darl/core/ranking.hpp"
#include "darl/core/report.hpp"
#include "darl/core/study.hpp"

using namespace darl::core;

int main() {
  // (b) Two parameters: a quality knob and a parallelism knob.
  CaseStudyDef def;
  def.name = "quickstart";
  def.space.add(ParamDomain::integer_set("quality", {1, 2, 3, 4},
                                         ParamCategory::Environment));
  def.space.add(
      ParamDomain::integer_set("workers", {1, 2, 4}, ParamCategory::System));

  // (d) Two antagonistic metrics.
  def.metrics.add({"accuracy", "", Sense::Maximize});
  def.metrics.add({"runtime", "s", Sense::Minimize});

  // (a) The "case study": a synthetic model of an accuracy/runtime
  // trade-off (stands in for a real training function).
  def.evaluate = [](const LearningConfiguration& c, double budget,
                    std::uint64_t) -> MetricValues {
    const double q = static_cast<double>(c.get_integer("quality"));
    const double w = static_cast<double>(c.get_integer("workers"));
    return {{"accuracy", budget * q / (q + 1.0)},
            {"runtime", 10.0 * q / w + 2.0 * w}};
  };

  // (c) Random Search, 8 trials.
  Study study(def, std::make_unique<RandomSearch>(def.space, 8, /*seed=*/1),
              {.seed = 1, .log_progress = false});
  study.run();

  // (e) Rank and present.
  std::printf("%s\n", render_trial_table(def, study.trials()).c_str());
  std::printf("%s\n", render_pareto_plot(def, study.trials(), "runtime",
                                         "accuracy", "quickstart trade-off")
                          .c_str());

  std::printf("Pareto-optimal trials:");
  for (std::size_t idx : study.pareto_trials()) {
    std::printf(" #%zu", study.trials()[idx].id + 1);
  }
  std::printf("\n");
  return 0;
}
