// airdrop_flight: drive the Airdrop Package Delivery Simulator directly
// with a hand-written proportional-guidance policy and print the flight
// trace — a tour of the environment API without any learning.
//
// The guidance steers the canopy toward the target bearing and spirals
// down above it; it is the kind of baseline controller an RL policy has to
// beat.

#include <cmath>
#include <cstdio>

#include "darl/airdrop/airdrop_env.hpp"

using namespace darl;

namespace {

/// Relative-bearing proportional steering: turn toward the target; when
/// nearly overhead with altitude to burn, hold a turn to spiral.
Vec guidance_action(const Vec& obs) {
  const double dist = obs[0];           // normalized distance
  const double cos_rel = obs[1];        // target bearing relative to heading
  const double sin_rel = obs[2];
  const double alt = obs[3];            // normalized altitude

  // Spiral when the remaining glide range far exceeds the distance.
  if (dist < 0.25 * alt) return Vec{2.0};  // hold right turn
  if (sin_rel > 0.15) return Vec{2.0};     // target to the right
  if (sin_rel < -0.15) return Vec{0.0};    // target to the left
  return Vec{cos_rel > 0.0 ? 1.0 : 2.0};   // roughly aligned: hold / turn
}

}  // namespace

int main() {
  airdrop::AirdropConfig cfg;
  cfg.rk_order = ode::RkOrder::Order5;
  cfg.wind_enabled = true;
  cfg.wind_speed_max = 2.0;
  cfg.gusts_enabled = true;
  cfg.gust_probability = 0.05;
  cfg.altitude_min = 200.0;
  cfg.altitude_max = 600.0;

  airdrop::AirdropEnv env(cfg);
  env.seed(2024);

  std::printf("Airdrop flight traces (proportional guidance baseline)\n");
  std::printf("canopy: glide ratio %.2f, max turn rate %.2f rad/s\n\n",
              airdrop::glide_ratio(cfg.canopy), cfg.canopy.max_turn_rate);

  double total_score = 0.0;
  const int episodes = 5;
  for (int ep = 0; ep < episodes; ++ep) {
    Vec obs = env.reset();
    const Vec& s0 = env.raw_state();
    std::printf("episode %d: drop at (%.0f, %.0f) altitude %.0f, wind (%.1f, %.1f)\n",
                ep + 1, s0[0], s0[1], s0[2], env.current_wind().wx,
                env.current_wind().wy);

    env::StepResult r;
    int steps = 0;
    do {
      r = env.step(guidance_action(obs));
      obs = r.observation;
      ++steps;
      if (steps % 40 == 0) {
        const Vec& s = env.raw_state();
        std::printf("    t=%4ds  pos (%7.1f, %7.1f)  alt %6.1f  heading %5.2f\n",
                    steps, s[0], s[1], s[2], s[6]);
      }
    } while (!r.done());

    const auto& land = env.last_landing();
    std::printf("  landed after %.0f s at %.1f units from the target "
                "(score %.3f)\n\n",
                land.flight_time, land.distance, land.landing_reward);
    total_score += land.landing_reward;
  }
  std::printf("mean landing score over %d episodes: %.3f\n", episodes,
              total_score / episodes);
  std::printf("simulated compute spent: %.0f ODE right-hand-side evaluations\n",
              env.take_compute_cost());
  return 0;
}
