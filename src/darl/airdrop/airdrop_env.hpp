// darl/airdrop/airdrop_env.hpp
//
// The Airdrop Package Delivery Simulator as a gym environment (paper §IV):
// a package is dropped from a random altitude inside a configured interval;
// every control interval the simulator integrates the canopy dynamics with
// the configured Runge-Kutta method and returns an observation; the agent
// selects a steering (rotation) command; on landing the reward reflects the
// distance to the target point.

#pragma once

#include <memory>

#include "darl/airdrop/dynamics.hpp"
#include "darl/env/env.hpp"
#include "darl/ode/integrator.hpp"

namespace darl::airdrop {

/// Steering command encoding (paper: "the agent selects a rotation
/// direction for the parachute canopy" — a discrete choice; the continuous
/// mode exposes the same channel as a torque-like scalar so SAC applies).
enum class ActionMode { Discrete3, Continuous };

/// Environment-specific parameters (§IV-B: wind on/off, gusts, gust
/// probability, drop-altitude limits, Runge-Kutta order) plus simulation
/// constants.
struct AirdropConfig {
  // --- paper's configurable environment parameters ---
  bool wind_enabled = false;       ///< constant ambient wind
  double wind_speed_max = 3.0;     ///< per-episode wind magnitude ~ U[0, max]
  /// Boundary-layer wind shear: the ambient wind scales with altitude as
  /// (z / wind_ref_altitude)^wind_shear_exponent (0 = uniform wind).
  double wind_shear_exponent = 0.0;
  double wind_ref_altitude = 100.0;
  bool gusts_enabled = false;      ///< random gusts on top of the wind
  double gust_probability = 0.05;  ///< per-control-step gust onset probability
  double gust_speed = 4.0;         ///< gust magnitude (units/s)
  double gust_duration = 3.0;      ///< gust hold time (s)
  double altitude_min = 30.0;      ///< drop-altitude interval (units)
  double altitude_max = 1000.0;
  ode::RkOrder rk_order = ode::RkOrder::Order5;

  // --- simulation constants ---
  CanopyParams canopy;
  ActionMode action_mode = ActionMode::Discrete3;
  double control_dt = 1.0;      ///< control interval the agent acts at (s)
  double reward_scale = 100.0;  ///< landing reward = -distance / reward_scale
  /// Dense potential-based shaping weight added to the per-step reward
  /// (0 disables). Shaping eases small-budget training without changing the
  /// optimal policy; the terminal landing reward is unaffected.
  double shaping_weight = 1.0;
  /// Fraction of the no-wind glide range the initial horizontal offset can
  /// take (keeps the target reachable but not trivially so).
  double drop_offset_fraction = 0.65;
  std::size_t max_episode_steps = 2000;  ///< hard safety cap
  /// Localize the touchdown instant by event detection (bisection to
  /// `touchdown_tolerance` seconds) instead of reporting the state at the
  /// end of the control interval that crossed the ground. Off by default:
  /// the paper-scale campaign is calibrated without it (see DESIGN.md).
  bool precise_touchdown = false;
  double touchdown_tolerance = 1e-3;
};

/// Result summary of the last finished episode (for diagnostics/examples).
struct LandingInfo {
  double distance = 0.0;        ///< horizontal distance to the target
  double landing_reward = 0.0;  ///< the paper's Reward metric contribution
  double flight_time = 0.0;     ///< seconds from drop to landing
};

/// The simulator environment. Observations (dim 12, all roughly unit
/// scaled): relative target bearing features, distance, altitude, velocity,
/// heading (cos/sin), turn rate — the "rotation, position, orientation and
/// velocity vectors" of the paper's Algorithm 1.
class AirdropEnv final : public env::EnvBase {
 public:
  explicit AirdropEnv(AirdropConfig config = {});

  const env::BoxSpace& observation_space() const override { return obs_space_; }
  const env::ActionSpace& action_space() const override { return act_space_; }
  const std::string& name() const override { return name_; }

  /// Drains accumulated ODE right-hand-side evaluation counts — the
  /// simulated compute-cost unit charged by the cluster model.
  double take_compute_cost() override;

  /// The paper's Reward metric: the landing score of the last finished
  /// episode (shaping rewards are excluded).
  std::optional<double> episode_score() const override {
    return last_landing_.landing_reward;
  }

  const AirdropConfig& config() const { return config_; }

  /// Info about the most recently finished episode. Valid after a step
  /// returning terminated == true.
  const LandingInfo& last_landing() const { return last_landing_; }

  /// Raw dynamic state (for tests and the flight-trace example).
  const Vec& raw_state() const { return state_; }

  /// Current wind (ambient + gust) seen by the dynamics.
  WindState current_wind() const;

  static constexpr std::size_t kObservationDim = 12;

 protected:
  Vec do_reset(Rng& rng) override;
  env::StepResult do_step(Rng& rng, const Vec& action) override;

 private:
  Vec observe() const;
  double command_from_action(const Vec& action) const;
  double distance_to_target() const;
  /// Shaping potential: negative normalized distance (higher is better).
  double potential() const;

  AirdropConfig config_;
  env::BoxSpace obs_space_;
  env::ActionSpace act_space_;
  std::string name_ = "AirdropPackageDelivery";

  std::unique_ptr<ode::Integrator> integrator_;
  Vec state_;
  double time_ = 0.0;
  WindState ambient_wind_;
  WindState gust_;
  double gust_time_left_ = 0.0;
  double last_potential_ = 0.0;
  LandingInfo last_landing_;
  std::size_t rhs_evals_drained_ = 0;
};

/// Factory binding a config; each call produces an independent instance.
env::EnvFactory make_airdrop_factory(const AirdropConfig& config);

}  // namespace darl::airdrop
