// darl/airdrop/dynamics.hpp
//
// Flight-dynamics model of a steerable parachute canopy carrying a cargo
// package (the paper's Airdrop Package Delivery Simulator, §IV). The model
// is a guided-parafoil point-mass with first-order velocity relaxation
// toward the canopy trim state and a rate-limited heading channel driven by
// the steering command — rich enough that the Runge-Kutta order visibly
// trades integration accuracy against compute cost, which is the
// environment parameter the paper studies.

#pragma once

#include "darl/linalg/vec.hpp"
#include "darl/ode/types.hpp"

namespace darl::airdrop {

/// Continuous state of the canopy/package system, packed for integration as
/// [x, y, z, vx, vy, vz, psi, psi_dot]:
///   x, y     horizontal position (units; the target is the origin)
///   z        altitude above ground (units)
///   vx,vy,vz inertial velocity (units/s)
///   psi      heading (radians)
///   psi_dot  turn rate (radians/s)
constexpr std::size_t kStateDim = 8;

/// Physical parameters of the canopy (defaults give a glide ratio of 2.2
/// and ~19 s for a full-rate 360-degree turn). The response time constants
/// are fast relative to the 1 s control interval, which is what makes the
/// integration order a real fidelity knob: a single 3rd-order step per
/// interval shows visible truncation error, the 5th/8th-order methods do
/// not (calibrated in EXPERIMENTS.md).
struct CanopyParams {
  double trim_airspeed = 9.0;   ///< forward airspeed at trim (units/s)
  double sink_rate = 4.0;       ///< descent rate at trim (units/s)
  double tau_velocity = 0.9;    ///< velocity relaxation time constant (s)
  double tau_heading = 0.5;     ///< turn-rate response time constant (s)
  double max_turn_rate = 0.33;  ///< commanded turn-rate limit (rad/s)
  /// Turning couples into the longitudinal channel: forward speed drops and
  /// sink grows with bank (fractions of trim at full turn rate).
  double turn_speed_loss = 0.35;
  double turn_sink_gain = 0.30;
};

/// Instantaneous wind (constant-plus-gust) sampled by the environment and
/// held fixed during one control interval.
struct WindState {
  double wx = 0.0;  ///< wind x-component (units/s)
  double wy = 0.0;  ///< wind y-component (units/s)
};

/// Altitude-dependent wind: the standard power-law boundary-layer profile
/// W(z) = W_ref * (z / ref_altitude)^shear_exponent (clamped below
/// ref_altitude/100 to avoid the singularity at the ground). A
/// shear_exponent of 0 reduces to the uniform WindState model.
struct WindProfile {
  WindState reference;           ///< wind at ref_altitude
  double ref_altitude = 100.0;   ///< measurement height (units)
  double shear_exponent = 0.0;   ///< 0 = uniform; ~0.14 open terrain

  /// Wind at altitude z.
  WindState at(double z) const;
};

/// Right-hand side of the canopy ODE for a fixed steering command
/// `u` in [-1, 1] (-1 = full left, +1 = full right) and wind held constant
/// over the interval. Writes dydt (size kStateDim).
void canopy_rhs(const CanopyParams& params, const WindState& wind, double u,
                double t, const Vec& state, Vec& dydt);

/// Right-hand side with an altitude-dependent wind profile.
void canopy_rhs_sheared(const CanopyParams& params, const WindProfile& wind,
                        double u, double t, const Vec& state, Vec& dydt);

/// Build an ode::Rhs closure binding parameters, wind and command.
ode::Rhs make_canopy_rhs(const CanopyParams& params, const WindState& wind,
                         double u);

/// Build an ode::Rhs with altitude-dependent wind.
ode::Rhs make_canopy_rhs(const CanopyParams& params, const WindProfile& wind,
                         double u);

/// Trim-state initial velocity for a given heading (used when dropping the
/// package: the canopy is assumed to have opened and settled on trim).
Vec trim_state(const CanopyParams& params, double x, double y, double z,
               double heading, const WindState& wind);

/// Glide ratio (horizontal distance per unit altitude) at trim, no wind.
double glide_ratio(const CanopyParams& params);

}  // namespace darl::airdrop
