#include "darl/airdrop/dynamics.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"

namespace darl::airdrop {

void canopy_rhs(const CanopyParams& params, const WindState& wind, double u,
                double t, const Vec& state, Vec& dydt) {
  (void)t;  // autonomous system
  DARL_ASSERT(state.size() == kStateDim, "canopy state has wrong size");
  dydt.resize(kStateDim);

  const double vx = state[3];
  const double vy = state[4];
  const double vz = state[5];
  const double psi = state[6];
  const double psi_dot = state[7];

  // Turn coupling: banking for a turn sheds forward speed and adds sink.
  const double turn_frac =
      std::min(std::abs(psi_dot) / params.max_turn_rate, 1.5);
  const double va = params.trim_airspeed *
                    (1.0 - params.turn_speed_loss * turn_frac * turn_frac);
  const double vs =
      params.sink_rate * (1.0 + params.turn_sink_gain * turn_frac * turn_frac);

  // Trim velocity the canopy relaxes toward: forward flight along the
  // heading, advected by the wind, sinking at vs.
  const double vx_trim = va * std::cos(psi) + wind.wx;
  const double vy_trim = va * std::sin(psi) + wind.wy;
  const double vz_trim = -vs;

  dydt[0] = vx;
  dydt[1] = vy;
  dydt[2] = vz;
  dydt[3] = (vx_trim - vx) / params.tau_velocity;
  dydt[4] = (vy_trim - vy) / params.tau_velocity;
  dydt[5] = (vz_trim - vz) / params.tau_velocity;
  dydt[6] = psi_dot;
  dydt[7] = (std::clamp(u, -1.0, 1.0) * params.max_turn_rate - psi_dot) /
            params.tau_heading;
}

WindState WindProfile::at(double z) const {
  if (shear_exponent == 0.0) return reference;
  DARL_ASSERT(ref_altitude > 0.0, "wind profile needs ref_altitude > 0");
  const double z_eff = std::max(z, ref_altitude / 100.0);
  const double factor = std::pow(z_eff / ref_altitude, shear_exponent);
  return WindState{reference.wx * factor, reference.wy * factor};
}

void canopy_rhs_sheared(const CanopyParams& params, const WindProfile& wind,
                        double u, double t, const Vec& state, Vec& dydt) {
  canopy_rhs(params, wind.at(state[2]), u, t, state, dydt);
}

ode::Rhs make_canopy_rhs(const CanopyParams& params, const WindState& wind,
                         double u) {
  return [params, wind, u](double t, const Vec& y, Vec& dydt) {
    canopy_rhs(params, wind, u, t, y, dydt);
  };
}

ode::Rhs make_canopy_rhs(const CanopyParams& params, const WindProfile& wind,
                         double u) {
  return [params, wind, u](double t, const Vec& y, Vec& dydt) {
    canopy_rhs_sheared(params, wind, u, t, y, dydt);
  };
}

Vec trim_state(const CanopyParams& params, double x, double y, double z,
               double heading, const WindState& wind) {
  Vec s(kStateDim, 0.0);
  s[0] = x;
  s[1] = y;
  s[2] = z;
  s[3] = params.trim_airspeed * std::cos(heading) + wind.wx;
  s[4] = params.trim_airspeed * std::sin(heading) + wind.wy;
  s[5] = -params.sink_rate;
  s[6] = heading;
  s[7] = 0.0;
  return s;
}

double glide_ratio(const CanopyParams& params) {
  DARL_CHECK(params.sink_rate > 0.0, "sink rate must be positive");
  return params.trim_airspeed / params.sink_rate;
}

}  // namespace darl::airdrop
