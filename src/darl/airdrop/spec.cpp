#include "darl/airdrop/spec.hpp"

#include <sstream>

#include "darl/common/error.hpp"

namespace darl::airdrop {
namespace {

int rk_to_int(ode::RkOrder order) { return static_cast<int>(order); }

ode::RkOrder rk_from_int(int order) {
  switch (order) {
    case 3: return ode::RkOrder::Order3;
    case 5: return ode::RkOrder::Order5;
    case 8: return ode::RkOrder::Order8;
    default:
      throw InvalidArgument("airdrop spec: unsupported Runge-Kutta order " +
                            std::to_string(order));
  }
}

template <typename T>
T field(std::istream& is, const char* key) {
  std::string got;
  T value{};
  if (!(is >> got) || got != key || !(is >> value)) {
    throw InvalidArgument(std::string("airdrop spec: malformed field '") +
                          key + "'");
  }
  return value;
}

}  // namespace

const char* const kAirdropSpecMagic = "airdrop-v1";

std::string encode_airdrop_spec(const AirdropConfig& c) {
  std::ostringstream os;
  os.precision(17);
  os << kAirdropSpecMagic << '\n';
  os << "wind_enabled " << (c.wind_enabled ? 1 : 0) << '\n';
  os << "wind_speed_max " << c.wind_speed_max << '\n';
  os << "wind_shear_exponent " << c.wind_shear_exponent << '\n';
  os << "wind_ref_altitude " << c.wind_ref_altitude << '\n';
  os << "gusts_enabled " << (c.gusts_enabled ? 1 : 0) << '\n';
  os << "gust_probability " << c.gust_probability << '\n';
  os << "gust_speed " << c.gust_speed << '\n';
  os << "gust_duration " << c.gust_duration << '\n';
  os << "altitude_min " << c.altitude_min << '\n';
  os << "altitude_max " << c.altitude_max << '\n';
  os << "rk_order " << rk_to_int(c.rk_order) << '\n';
  os << "action_mode "
     << (c.action_mode == ActionMode::Continuous ? "continuous" : "discrete3")
     << '\n';
  os << "control_dt " << c.control_dt << '\n';
  os << "reward_scale " << c.reward_scale << '\n';
  os << "shaping_weight " << c.shaping_weight << '\n';
  os << "drop_offset_fraction " << c.drop_offset_fraction << '\n';
  os << "max_episode_steps " << c.max_episode_steps << '\n';
  os << "precise_touchdown " << (c.precise_touchdown ? 1 : 0) << '\n';
  os << "touchdown_tolerance " << c.touchdown_tolerance << '\n';
  return os.str();
}

AirdropConfig decode_airdrop_spec(const std::string& spec) {
  std::istringstream is(spec);
  std::string magic;
  if (!(is >> magic) || magic != kAirdropSpecMagic) {
    throw InvalidArgument("airdrop spec: bad magic '" + magic + "'");
  }
  AirdropConfig c;
  c.wind_enabled = field<int>(is, "wind_enabled") != 0;
  c.wind_speed_max = field<double>(is, "wind_speed_max");
  c.wind_shear_exponent = field<double>(is, "wind_shear_exponent");
  c.wind_ref_altitude = field<double>(is, "wind_ref_altitude");
  c.gusts_enabled = field<int>(is, "gusts_enabled") != 0;
  c.gust_probability = field<double>(is, "gust_probability");
  c.gust_speed = field<double>(is, "gust_speed");
  c.gust_duration = field<double>(is, "gust_duration");
  c.altitude_min = field<double>(is, "altitude_min");
  c.altitude_max = field<double>(is, "altitude_max");
  c.rk_order = rk_from_int(field<int>(is, "rk_order"));
  const std::string mode = field<std::string>(is, "action_mode");
  if (mode == "continuous") {
    c.action_mode = ActionMode::Continuous;
  } else if (mode == "discrete3") {
    c.action_mode = ActionMode::Discrete3;
  } else {
    throw InvalidArgument("airdrop spec: unknown action mode '" + mode + "'");
  }
  c.control_dt = field<double>(is, "control_dt");
  c.reward_scale = field<double>(is, "reward_scale");
  c.shaping_weight = field<double>(is, "shaping_weight");
  c.drop_offset_fraction = field<double>(is, "drop_offset_fraction");
  c.max_episode_steps = field<std::size_t>(is, "max_episode_steps");
  c.precise_touchdown = field<int>(is, "precise_touchdown") != 0;
  c.touchdown_tolerance = field<double>(is, "touchdown_tolerance");
  return c;
}

bool is_airdrop_spec(const std::string& spec) {
  return spec.rfind(kAirdropSpecMagic, 0) == 0;
}

env::EnvFactory airdrop_factory_from_spec(const std::string& spec) {
  return make_airdrop_factory(decode_airdrop_spec(spec));
}

}  // namespace darl::airdrop
