#include "darl/airdrop/airdrop_env.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/ode/event.hpp"

namespace darl::airdrop {
namespace {

env::ActionSpace make_action_space(ActionMode mode) {
  if (mode == ActionMode::Discrete3) {
    return env::ActionSpace(env::DiscreteSpace(3));
  }
  return env::ActionSpace(env::BoxSpace(1, -1.0, 1.0));
}

}  // namespace

AirdropEnv::AirdropEnv(AirdropConfig config)
    : config_(config),
      obs_space_(kObservationDim, -20.0, 20.0),
      act_space_(make_action_space(config.action_mode)) {
  DARL_CHECK(config_.altitude_min > 0.0 &&
                 config_.altitude_min <= config_.altitude_max,
             "invalid drop-altitude interval [" << config_.altitude_min << ", "
                                                << config_.altitude_max << "]");
  DARL_CHECK(config_.control_dt > 0.0, "control interval must be positive");
  DARL_CHECK(config_.reward_scale > 0.0, "reward scale must be positive");
  DARL_CHECK(config_.gust_probability >= 0.0 && config_.gust_probability <= 1.0,
             "gust probability out of [0,1]");
  DARL_CHECK(config_.drop_offset_fraction >= 0.0 &&
                 config_.drop_offset_fraction <= 1.0,
             "drop offset fraction out of [0,1]");
  DARL_CHECK(config_.wind_ref_altitude > 0.0,
             "wind reference altitude must be positive");
  DARL_CHECK(config_.wind_shear_exponent >= 0.0,
             "wind shear exponent must be non-negative");

  // The simulator integrates each control interval in one macro step of the
  // configured method ("fixed-step" semantics): the per-interval truncation
  // error is then a real, order-dependent quantity, and the per-interval
  // cost is the method's stage count — the two sides of the paper's
  // Runge-Kutta trade-off. The huge tolerances below make the adaptive
  // driver accept the single step.
  ode::AdaptiveOptions opts;
  opts.rtol = 1e6;
  opts.atol = 1e6;
  opts.h_initial = config_.control_dt;
  integrator_ = ode::make_integrator(config_.rk_order, opts);
}

WindState AirdropEnv::current_wind() const {
  WindState w = ambient_wind_;
  if (gust_time_left_ > 0.0) {
    w.wx += gust_.wx;
    w.wy += gust_.wy;
  }
  return w;
}

double AirdropEnv::distance_to_target() const {
  return std::hypot(state_[0], state_[1]);
}

double AirdropEnv::potential() const {
  // Negative distance, normalized by the drop-to-target glide range scale.
  const double range = glide_ratio(config_.canopy) * config_.altitude_max;
  return -distance_to_target() / range;
}

Vec AirdropEnv::observe() const {
  const auto& p = config_.canopy;
  const double x = state_[0], y = state_[1], z = state_[2];
  const double vx = state_[3], vy = state_[4], vz = state_[5];
  const double psi = state_[6], psi_dot = state_[7];

  const double dist = distance_to_target();
  const double range = glide_ratio(p) * config_.altitude_max;
  const double bearing = std::atan2(-y, -x);  // direction toward the target
  const double rel = bearing - psi;

  Vec obs(kObservationDim);
  obs[0] = dist / range;
  obs[1] = std::cos(rel);
  obs[2] = std::sin(rel);
  obs[3] = z / config_.altitude_max;
  obs[4] = vx / p.trim_airspeed;
  obs[5] = vy / p.trim_airspeed;
  obs[6] = vz / p.sink_rate;
  obs[7] = std::cos(psi);
  obs[8] = std::sin(psi);
  obs[9] = psi_dot / p.max_turn_rate;
  obs[10] = x / range;
  obs[11] = y / range;
  return obs;
}

Vec AirdropEnv::do_reset(Rng& rng) {
  // 1) Drop altitude uniform in the configured interval (paper Alg. 1).
  const double z0 = rng.uniform(config_.altitude_min, config_.altitude_max);

  // 2) Ambient wind for the episode.
  ambient_wind_ = WindState{};
  if (config_.wind_enabled) {
    const double speed = rng.uniform(0.0, config_.wind_speed_max);
    const double dir = rng.uniform(0.0, 2.0 * std::numbers::pi);
    ambient_wind_ = WindState{speed * std::cos(dir), speed * std::sin(dir)};
  }
  gust_ = WindState{};
  gust_time_left_ = 0.0;

  // 3) Horizontal offset inside the reachable glide cone and random heading.
  const double reach = glide_ratio(config_.canopy) * z0;
  const double offset = rng.uniform(0.15, config_.drop_offset_fraction) * reach;
  const double offset_dir = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double heading = rng.uniform(-std::numbers::pi, std::numbers::pi);

  state_ = trim_state(config_.canopy, offset * std::cos(offset_dir),
                      offset * std::sin(offset_dir), z0, heading, ambient_wind_);
  time_ = 0.0;
  last_potential_ = potential();
  return observe();
}

double AirdropEnv::command_from_action(const Vec& action) const {
  if (config_.action_mode == ActionMode::Discrete3) {
    switch (act_space_.discrete().decode(action)) {
      case 0: return -1.0;  // rotate left
      case 1: return 0.0;   // hold heading
      default: return 1.0;  // rotate right
    }
  }
  return std::clamp(action[0], -1.0, 1.0);
}

env::StepResult AirdropEnv::do_step(Rng& rng, const Vec& action) {
  const double u = command_from_action(action);

  // Gust model: onset with configured probability, held for gust_duration.
  if (config_.gusts_enabled) {
    if (gust_time_left_ <= 0.0 && rng.bernoulli(config_.gust_probability)) {
      const double dir = rng.uniform(0.0, 2.0 * std::numbers::pi);
      gust_ = WindState{config_.gust_speed * std::cos(dir),
                        config_.gust_speed * std::sin(dir)};
      gust_time_left_ = config_.gust_duration;
    }
  }

  WindProfile wind_profile;
  wind_profile.reference = current_wind();
  wind_profile.ref_altitude = config_.wind_ref_altitude;
  wind_profile.shear_exponent = config_.wind_shear_exponent;
  const auto rhs = make_canopy_rhs(config_.canopy, wind_profile, u);
  bool landed;
  if (config_.precise_touchdown) {
    const auto ground = [](double, const Vec& y) { return y[2]; };
    const ode::EventResult ev = ode::integrate_with_event(
        *integrator_, rhs, time_, time_ + config_.control_dt, state_, ground,
        config_.touchdown_tolerance);
    time_ = ev.t_end;
    landed = ev.triggered;
  } else {
    integrator_->integrate(rhs, time_, time_ + config_.control_dt, state_);
    time_ += config_.control_dt;
    landed = state_[2] <= 0.0;
  }
  if (gust_time_left_ > 0.0) gust_time_left_ -= config_.control_dt;

  env::StepResult r;
  const bool overtime = episode_steps() >= config_.max_episode_steps;

  if (landed) {
    const double dist = distance_to_target();
    last_landing_.distance = dist;
    last_landing_.landing_reward = -dist / config_.reward_scale;
    last_landing_.flight_time = time_;
    r.reward = last_landing_.landing_reward;
    r.terminated = true;
  } else {
    // Potential-based shaping: w * (phi(s') - phi(s)); telescopes to the
    // net progress made, leaving the optimal policy unchanged.
    const double phi = potential();
    r.reward = config_.shaping_weight * (phi - last_potential_);
    last_potential_ = phi;
    r.truncated = overtime;
    if (overtime) {
      // Treat a never-landing trajectory as a maximally bad drop.
      last_landing_.distance = distance_to_target();
      last_landing_.landing_reward =
          -distance_to_target() / config_.reward_scale;
      last_landing_.flight_time = time_;
    }
  }
  r.observation = observe();
  return r;
}

double AirdropEnv::take_compute_cost() {
  const auto total = integrator_->stats().n_rhs_evals;
  const double delta = static_cast<double>(total - rhs_evals_drained_);
  rhs_evals_drained_ = total;
  return delta;
}

env::EnvFactory make_airdrop_factory(const AirdropConfig& config) {
  return [config]() -> std::unique_ptr<env::Env> {
    return std::make_unique<AirdropEnv>(config);
  };
}

}  // namespace darl::airdrop
