// darl/airdrop/spec.hpp
//
// Text codec for AirdropConfig, used as the opaque `env_spec` string the
// distributed runtime ships inside a Job message: the learner encodes the
// trial's environment configuration here, and the remote actor process
// rebuilds an identical environment factory from it (darl/net itself
// stays case-study-agnostic — it never parses the spec). Doubles are
// written at round-trip precision, so a decoded config is bitwise the
// encoded one. CanopyParams are simulation constants shared by every
// study configuration and stay at their defaults on the wire.

#pragma once

#include <string>

#include "darl/airdrop/airdrop_env.hpp"
#include "darl/env/env.hpp"

namespace darl::airdrop {

/// Spec-string prefix identifying the airdrop case study ("airdrop-v1").
extern const char* const kAirdropSpecMagic;

/// Serialize every study-configurable AirdropConfig field.
std::string encode_airdrop_spec(const AirdropConfig& config);

/// Inverse of encode_airdrop_spec; throws darl::InvalidArgument on a
/// malformed or foreign spec string.
AirdropConfig decode_airdrop_spec(const std::string& spec);

/// True when `spec` carries the airdrop magic (resolver dispatch).
bool is_airdrop_spec(const std::string& spec);

/// Convenience: decode + wrap in a factory (the darl_worker resolver).
env::EnvFactory airdrop_factory_from_spec(const std::string& spec);

}  // namespace darl::airdrop
