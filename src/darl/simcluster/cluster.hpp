// darl/simcluster/cluster.hpp
//
// Deterministic cluster time/energy model.
//
// The paper measures Computation Time (launch of the first actor to the
// last stop) and Power Consumption (a CPU-usage-based consumption curve)
// on a physical 2-node testbed. This module replaces the testbed with a
// simulated cluster: framework backends replay their execution structure
// (parallel collection phases, network transfers, learner updates) against
// it, and the model integrates a makespan clock and a per-node power curve.
// Training computations still run for real on the host; only *reported*
// time and energy come from this model, making the paper's metrics
// reproducible on any machine (see DESIGN.md §2, §5).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace darl::sim {

/// CPU power curve: a node draws `idle_watts` for the whole time it is
/// allocated to the job, plus `active_watts_per_core` for every busy
/// core-second (the "equivalence with a consumption curve of the CPU" the
/// paper describes).
struct CpuPowerModel {
  double idle_watts = 24.0;
  double active_watts_per_core = 5.5;
};

/// One compute node.
struct NodeSpec {
  std::string name = "node";
  std::size_t cores = 4;
  /// Sustained per-core throughput used to convert simulated MFLOPs into
  /// seconds (Xeon W-2102-class scalar double-precision work).
  double core_mflop_per_s = 1200.0;
  CpuPowerModel power;
  /// DVFS operating point relative to nominal (the GEOPM-style power-
  /// management knob of the paper's related work §II-B): throughput scales
  /// linearly with frequency, active power cubically (classic CMOS
  /// P ~ C V^2 f with V ~ f). 1.0 = nominal.
  double frequency_scale = 1.0;
};

/// Inter-node interconnect (shared switch model: one link per node pair,
/// full duplex, no contention modelling beyond serialized transfers).
struct LinkSpec {
  double bandwidth_bytes_per_s = 125e6;  ///< 1 Gbps Ethernet
  double latency_s = 5e-4;               ///< per-message latency
  /// Extra power drawn by both endpoints while a transfer is in flight.
  double nic_watts = 2.0;
};

/// The cluster: homogeneous or heterogeneous nodes plus the link model.
struct ClusterSpec {
  std::vector<NodeSpec> nodes;
  LinkSpec link;

  /// The paper's testbed shape: `n_nodes` machines (Intel Xeon W-2102,
  /// 4 cores) on 1 Gbps Ethernet. `cores_per_node` restricts how many
  /// cores the job may use on each node (the study's system parameter).
  static ClusterSpec paper_testbed(std::size_t n_nodes,
                                   std::size_t cores_per_node);
};

/// Accumulates the makespan and energy of one training run replayed as a
/// sequence of phases. Not thread-safe; backends own one instance per run.
class SimCluster {
 public:
  explicit SimCluster(ClusterSpec spec);

  /// Busy time one worker contributes to a parallel phase.
  struct WorkerLoad {
    std::size_t node = 0;
    double busy_seconds = 0.0;
  };

  /// A fork/join collection phase: every worker runs on its own core of its
  /// node; the phase lasts as long as the slowest worker. Workers mapped to
  /// one node must not exceed its core count. Returns the phase duration.
  double run_parallel_phase(const std::vector<WorkerLoad>& loads);

  /// A (possibly multi-core) compute phase on one node, e.g. a learner
  /// update. `core_seconds` is the total single-core work; with `cores`
  /// cores the duration is core_seconds / (cores * parallel_efficiency).
  /// Returns the duration.
  double run_compute(std::size_t node, double core_seconds, std::size_t cores,
                     double parallel_efficiency = 0.85);

  /// A serialized transfer of `bytes` between two distinct nodes.
  /// Returns the duration.
  double run_transfer(std::size_t from, std::size_t to, double bytes);

  /// Advance the clock without compute (e.g. a synchronization barrier);
  /// idle power still accrues.
  void run_idle(double seconds);

  /// Seconds of simulated makespan so far.
  double elapsed_seconds() const { return elapsed_; }

  /// Joules drawn by all allocated nodes so far (idle + active + NIC).
  double energy_joules() const;

  /// Convert a simulated MFLOP count into single-core seconds on `node`.
  double seconds_for_mflop(std::size_t node, double mflop) const;

  const ClusterSpec& spec() const { return spec_; }
  std::size_t n_nodes() const { return spec_.nodes.size(); }

  /// Total busy core-seconds charged to `node` (diagnostics/tests).
  double busy_core_seconds(std::size_t node) const;

 private:
  void check_node(std::size_t node) const;

  ClusterSpec spec_;
  double elapsed_ = 0.0;
  std::vector<double> busy_core_seconds_;
  double nic_seconds_ = 0.0;
};

}  // namespace darl::sim
