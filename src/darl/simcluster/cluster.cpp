#include "darl/simcluster/cluster.hpp"

#include <algorithm>
#include <map>

#include "darl/common/error.hpp"

namespace darl::sim {

ClusterSpec ClusterSpec::paper_testbed(std::size_t n_nodes,
                                       std::size_t cores_per_node) {
  DARL_CHECK(n_nodes >= 1, "cluster needs at least one node");
  DARL_CHECK(cores_per_node >= 1, "nodes need at least one core");
  ClusterSpec spec;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    NodeSpec node;
    node.name = "node" + std::to_string(i);
    node.cores = cores_per_node;
    spec.nodes.push_back(node);
  }
  return spec;
}

SimCluster::SimCluster(ClusterSpec spec) : spec_(std::move(spec)) {
  DARL_CHECK(!spec_.nodes.empty(), "cluster has no nodes");
  for (const auto& n : spec_.nodes) {
    DARL_CHECK(n.cores > 0, "node '" << n.name << "' has zero cores");
    DARL_CHECK(n.core_mflop_per_s > 0.0,
               "node '" << n.name << "' has non-positive throughput");
    DARL_CHECK(n.frequency_scale > 0.0,
               "node '" << n.name << "' has non-positive frequency scale");
  }
  DARL_CHECK(spec_.link.bandwidth_bytes_per_s > 0.0,
             "link bandwidth must be positive");
  busy_core_seconds_.assign(spec_.nodes.size(), 0.0);
}

void SimCluster::check_node(std::size_t node) const {
  DARL_CHECK(node < spec_.nodes.size(),
             "node index " << node << " out of " << spec_.nodes.size());
}

double SimCluster::run_parallel_phase(const std::vector<WorkerLoad>& loads) {
  DARL_CHECK(!loads.empty(), "parallel phase with no workers");
  std::map<std::size_t, std::size_t> per_node;
  double duration = 0.0;
  for (const auto& l : loads) {
    check_node(l.node);
    DARL_CHECK(l.busy_seconds >= 0.0, "negative busy time");
    per_node[l.node] += 1;
    duration = std::max(duration, l.busy_seconds);
  }
  for (const auto& [node, count] : per_node) {
    DARL_CHECK(count <= spec_.nodes[node].cores,
               count << " workers mapped to node " << node << " with only "
                     << spec_.nodes[node].cores << " cores");
  }
  for (const auto& l : loads) busy_core_seconds_[l.node] += l.busy_seconds;
  elapsed_ += duration;
  return duration;
}

double SimCluster::run_compute(std::size_t node, double core_seconds,
                               std::size_t cores, double parallel_efficiency) {
  check_node(node);
  DARL_CHECK(core_seconds >= 0.0, "negative compute time");
  DARL_CHECK(cores >= 1 && cores <= spec_.nodes[node].cores,
             "compute phase uses " << cores << " cores on a "
                                   << spec_.nodes[node].cores << "-core node");
  DARL_CHECK(parallel_efficiency > 0.0 && parallel_efficiency <= 1.0,
             "parallel efficiency out of (0,1]");
  const double eff = cores == 1 ? 1.0 : parallel_efficiency;
  const double duration = core_seconds / (static_cast<double>(cores) * eff);
  busy_core_seconds_[node] += core_seconds;  // energy follows actual work
  elapsed_ += duration;
  return duration;
}

double SimCluster::run_transfer(std::size_t from, std::size_t to, double bytes) {
  check_node(from);
  check_node(to);
  DARL_CHECK(from != to, "transfer between a node and itself");
  DARL_CHECK(bytes >= 0.0, "negative transfer size");
  const double duration =
      spec_.link.latency_s + bytes / spec_.link.bandwidth_bytes_per_s;
  nic_seconds_ += duration;
  elapsed_ += duration;
  return duration;
}

void SimCluster::run_idle(double seconds) {
  DARL_CHECK(seconds >= 0.0, "negative idle time");
  elapsed_ += seconds;
}

double SimCluster::energy_joules() const {
  double joules = 0.0;
  for (std::size_t i = 0; i < spec_.nodes.size(); ++i) {
    const auto& n = spec_.nodes[i];
    const double f = n.frequency_scale;
    joules += n.power.idle_watts * elapsed_;
    // Active power scales cubically with the DVFS operating point.
    joules += n.power.active_watts_per_core * f * f * f * busy_core_seconds_[i];
  }
  // Both transfer endpoints draw NIC power while a transfer is in flight.
  joules += 2.0 * spec_.link.nic_watts * nic_seconds_;
  return joules;
}

double SimCluster::seconds_for_mflop(std::size_t node, double mflop) const {
  check_node(node);
  DARL_CHECK(mflop >= 0.0, "negative work");
  return mflop /
         (spec_.nodes[node].core_mflop_per_s * spec_.nodes[node].frequency_scale);
}

double SimCluster::busy_core_seconds(std::size_t node) const {
  check_node(node);
  return busy_core_seconds_[node];
}

}  // namespace darl::sim
