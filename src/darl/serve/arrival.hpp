// darl/serve/arrival.hpp
//
// Open-loop arrival processes for load generation (DESIGN.md §14). An
// open-loop generator schedules request arrival times *independently of
// completions* — unlike a closed-loop client, it does not slow down when
// the server falls behind, so queueing collapse is visible instead of
// being absorbed by the load generator. Latency is measured from the
// scheduled arrival, charging any lateness (client-side queueing) to the
// request.
//
// Three processes, each tuned so the long-run mean gap is `mean_gap_s`:
//   Poisson    exponential inter-arrival gaps — the memoryless baseline
//   Bursty     back-to-back volleys of 16 separated by a compensating
//              idle gap (synchronized clients, retry storms)
//   HeavyTail  Pareto(alpha = 1.5) gaps — rare long silences paid for by
//              clumps of near-simultaneous arrivals (self-similar load)
//
// Used by tools/darl_serve.cpp (--open-loop --arrival) and
// bench/bench_serve.cpp (BM_ServeOpenLoop, distilled into BENCH_7.json).

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>

#include "darl/common/rng.hpp"

namespace darl::serve {

enum class Arrival { Poisson, Bursty, HeavyTail };

inline const char* arrival_name(Arrival arrival) {
  switch (arrival) {
    case Arrival::Poisson:
      return "poisson";
    case Arrival::Bursty:
      return "bursty";
    case Arrival::HeavyTail:
      return "heavytail";
  }
  return "unknown";
}

/// Parse a CLI spelling; returns false (leaving `out` untouched) on an
/// unknown name.
inline bool parse_arrival(const std::string& name, Arrival& out) {
  if (name == "poisson") out = Arrival::Poisson;
  else if (name == "bursty") out = Arrival::Bursty;
  else if (name == "heavytail") out = Arrival::HeavyTail;
  else return false;
  return true;
}

/// Stateful gap generator for one traffic source. Draws come from the
/// caller's Rng so a generator thread's schedule is reproducible from its
/// seed. Not thread-safe; make one per generator.
class ArrivalProcess {
 public:
  ArrivalProcess(Arrival kind, double mean_gap_s)
      : kind_(kind), mean_gap_s_(mean_gap_s) {}

  /// Seconds until the next arrival after the current one.
  double next_gap_s(Rng& rng) {
    switch (kind_) {
      case Arrival::Bursty: {
        if (burst_left_ == 0) {
          burst_left_ = kBurst;
          return mean_gap_s_ * static_cast<double>(kBurst);
        }
        --burst_left_;
        return 0.0;
      }
      case Arrival::HeavyTail: {
        constexpr double kAlpha = 1.5;
        const double xm = mean_gap_s_ * (kAlpha - 1.0) / kAlpha;
        const double u = std::max(1e-12, 1.0 - rng.uniform());
        return xm / std::pow(u, 1.0 / kAlpha);
      }
      case Arrival::Poisson:
        break;
    }
    const double u = std::max(1e-12, 1.0 - rng.uniform());
    return -std::log(u) * mean_gap_s_;
  }

 private:
  static constexpr std::size_t kBurst = 16;
  Arrival kind_;
  double mean_gap_s_;
  std::size_t burst_left_ = 0;
};

}  // namespace darl::serve
