#include "darl/serve/batch_scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/trace.hpp"

namespace darl::serve {
namespace {

// Serving latency buckets in microseconds: sub-100us in-process batching
// up to multi-millisecond saturation, plus the implicit overflow bucket.
obs::Histogram& latency_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "serve.latency_us",
      {50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0, 50000.0});
  return h;
}

// Micro-batch sizes, powers of two like nn.batch_rows.
obs::Histogram& batch_rows_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "serve.batch_rows", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  return h;
}

}  // namespace

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::Ok:
      return "ok";
    case Outcome::RejectedFull:
      return "rejected-full";
    case Outcome::RejectedShutdown:
      return "rejected-shutdown";
    case Outcome::TimedOut:
      return "timed-out";
  }
  return "unknown";
}

BatchScheduler::BatchScheduler(const PolicyStore& store, ServeConfig config)
    : store_(store), config_(config) {
  DARL_CHECK(config_.max_batch >= 1, "max_batch must be at least 1");
  DARL_CHECK(config_.queue_capacity >= 1, "queue_capacity must be at least 1");
  DARL_CHECK(config_.max_delay_us >= 0.0, "max_delay_us must be non-negative");
  const PolicyVersion* version = store_.current();
  DARL_CHECK(version != nullptr,
             "PolicyStore has no published version to serve");
  input_dim_ = version->spec.input_dim();
  action_dim_ = version->spec.action_dim();

  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->batch.assign(config_.max_batch, nullptr);
    workers_.push_back(std::move(worker));
  }
  // Spawn only after every Worker is in place: threads capture stable
  // pointers into workers_.
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { dispatch_loop(*w); });
  }
}

BatchScheduler::~BatchScheduler() { shutdown(); }

Response BatchScheduler::serve(const Vec& obs, double deadline_us) {
  DARL_CHECK(obs.size() == input_dim_,
             "serve: observation has " << obs.size() << " dims, policy expects "
                                       << input_dim_);
  Stopwatch stopwatch;
  DARL_COUNTER_ADD("serve.requests", 1);

  Response response;
  response.action.assign(action_dim_, 0.0);
  Request request;
  request.obs = &obs;
  request.out = &response;

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      DARL_COUNTER_ADD("serve.rejected_shutdown", 1);
      response.outcome = Outcome::RejectedShutdown;
      response.latency_us = stopwatch.seconds() * 1e6;
      return response;
    }
    if (queue_.size() >= config_.queue_capacity) {
      DARL_COUNTER_ADD("serve.rejected_full", 1);
      response.outcome = Outcome::RejectedFull;
      response.latency_us = stopwatch.seconds() * 1e6;
      return response;
    }
    queue_.push_back(&request);
    DARL_GAUGE_SET("serve.queue_depth", queue_.size());
  }
  queue_cv_.notify_one();

  {
    std::unique_lock<std::mutex> lock(request.mutex);
    if (deadline_us <= 0.0) {
      request.cv.wait(lock, [&] { return request.done; });
    } else if (!request.cv.wait_for(
                   lock, std::chrono::duration<double, std::micro>(deadline_us),
                   [&] { return request.done; })) {
      lock.unlock();
      bool removed = false;
      {
        std::lock_guard<std::mutex> queue_lock(queue_mutex_);
        const auto it = std::find(queue_.begin(), queue_.end(), &request);
        if (it != queue_.end()) {
          queue_.erase(it);
          removed = true;
          DARL_GAUGE_SET("serve.queue_depth", queue_.size());
        }
      }
      if (removed) {
        DARL_COUNTER_ADD("serve.timed_out", 1);
        response.outcome = Outcome::TimedOut;
        response.latency_us = stopwatch.seconds() * 1e6;
        return response;
      }
      // A worker popped the request before we could abandon it; the
      // result is imminent — wait it out so the stack frame stays valid.
      lock.lock();
      request.cv.wait(lock, [&] { return request.done; });
    }
  }

  response.outcome = Outcome::Ok;
  response.latency_us = stopwatch.seconds() * 1e6;
  if (obs::metrics_enabled()) latency_histogram().observe(response.latency_us);
  return response;
}

void BatchScheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

std::size_t BatchScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

void BatchScheduler::dispatch_loop(Worker& worker) {
  for (;;) {
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;  // drained
        continue;
      }
      // Batching window: give concurrent clients max_delay_us to fill the
      // batch. Shutdown flushes immediately so draining never waits.
      if (queue_.size() < config_.max_batch && config_.max_delay_us > 0.0 &&
          !stopping_) {
        Stopwatch window;
        if (config_.gather) {
          // Yield-gather: cede the CPU so clients that are already
          // runnable can enqueue; stop the moment a yield brings no new
          // arrival. Unlike a timed sleep this has no granularity floor,
          // so a straggler costs one scheduler pass, not a timer tick.
          std::size_t seen = queue_.size();
          while (!stopping_ && queue_.size() < config_.max_batch &&
                 window.seconds() * 1e6 < config_.max_delay_us) {
            lock.unlock();
            std::this_thread::yield();
            lock.lock();
            if (queue_.size() <= seen) break;  // arrivals went idle
            seen = queue_.size();
          }
        } else {
          while (!stopping_ && !queue_.empty() &&
                 queue_.size() < config_.max_batch) {
            const double remaining_us =
                config_.max_delay_us - window.seconds() * 1e6;
            if (remaining_us <= 0.0) break;
            queue_cv_.wait_for(
                lock, std::chrono::duration<double, std::micro>(remaining_us));
          }
        }
        if (queue_.empty()) continue;  // abandoned or taken by a peer
      }
      count = std::min(queue_.size(), config_.max_batch);
      for (std::size_t i = 0; i < count; ++i) {
        worker.batch[i] = queue_.front();
        queue_.pop_front();
      }
      DARL_GAUGE_SET("serve.queue_depth", queue_.size());
    }
    execute_batch(worker, count);
  }
}

void BatchScheduler::execute_batch(Worker& worker, std::size_t count) {
  DARL_SPAN_V("serve.execute", "rows", count);
  // One version per micro-batch: everything popped above is served by the
  // snapshot read here, even if a publish lands mid-execution.
  const PolicyVersion* version = store_.current();
  ensure_replica(worker, *version);
  worker.obs_mat.reshape(count, input_dim_);
  for (std::size_t i = 0; i < count; ++i) {
    const Vec& obs = *worker.batch[i]->obs;
    std::copy(obs.begin(), obs.end(), worker.obs_mat.row(i));
  }
  const Matrix& heads = worker.net->evaluate_batch(worker.obs_mat);
  for (std::size_t i = 0; i < count; ++i) {
    Request* request = worker.batch[i];
    decode_head(version->spec, heads.row(i), request->out->action);
    request->out->version = version->id;
    complete(*request);
  }
  DARL_COUNTER_ADD("serve.batches", 1);
  DARL_COUNTER_ADD("serve.served", count);
  if (obs::metrics_enabled()) {
    batch_rows_histogram().observe(static_cast<double>(count));
  }
}

void BatchScheduler::ensure_replica(Worker& worker,
                                    const PolicyVersion& version) {
  if (worker.version_id == version.id) return;
  // Hot-swap contract: every published version keeps the interface the
  // scheduler was built against.
  DARL_ASSERT(version.spec.input_dim() == input_dim_ &&
                  version.spec.action_dim() == action_dim_,
              "hot-swapped policy version changed the serving interface");
  if (!worker.net || worker.net->sizes() != version.spec.sizes ||
      worker.net->activation() != version.spec.activation) {
    Rng init(version.id);
    worker.net = std::make_unique<nn::Mlp>(version.spec.sizes,
                                           version.spec.activation, init);
  }
  worker.net->set_flat_params(version.spec.net_params);
  worker.version_id = version.id;
  DARL_COUNTER_ADD("serve.replica_refresh", 1);
}

void BatchScheduler::complete(Request& request) {
  // Notify UNDER the lock: the Request lives on the client's stack, and
  // the client destroys it as soon as serve() observes done. Holding the
  // mutex across notify_one means the client cannot finish its wait (it
  // must re-acquire the mutex) until this thread is done touching the
  // condition variable — the canonical safe pattern for a cv whose
  // lifetime ends right after the wakeup.
  std::lock_guard<std::mutex> lock(request.mutex);
  request.done = true;
  request.cv.notify_one();
}

}  // namespace darl::serve
