#include "darl/serve/batch_scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/trace.hpp"

namespace darl::serve {
namespace {

// Serving latency buckets in microseconds: sub-100us in-process batching
// up to multi-millisecond saturation, plus the implicit overflow bucket.
const std::vector<double>& latency_bounds() {
  static const std::vector<double> bounds{
      50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0, 50000.0};
  return bounds;
}

// Micro-batch sizes, powers of two like nn.batch_rows.
const std::vector<double>& batch_rows_bounds() {
  static const std::vector<double> bounds{1.0,  2.0,  4.0,   8.0,  16.0,
                                          32.0, 64.0, 128.0, 256.0};
  return bounds;
}

obs::Labels with_label(const obs::Labels& base, const char* key,
                       const char* value) {
  obs::Labels labels = base;
  labels.emplace_back(key, value);
  return labels;
}

}  // namespace

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::Ok:
      return "ok";
    case Outcome::RejectedFull:
      return "rejected-full";
    case Outcome::RejectedShutdown:
      return "rejected-shutdown";
    case Outcome::TimedOut:
      return "timed-out";
    case Outcome::RejectedQuota:
      return "rejected-quota";
    case Outcome::Shed:
      return "shed";
  }
  return "unknown";
}

BatchScheduler::BatchScheduler(const PolicyStore& store, ServeConfig config)
    : config_(std::move(config)) {
  DARL_CHECK(config_.max_batch >= 1, "max_batch must be at least 1");
  DARL_CHECK(config_.queue_capacity >= 1, "queue_capacity must be at least 1");
  DARL_CHECK(config_.max_delay_us >= 0.0, "max_delay_us must be non-negative");
  tenant_ = store.tenant(config_.tenant);
  DARL_CHECK(tenant_ != nullptr,
             "PolicyStore has no tenant '" << config_.tenant << "' to serve");
  const PolicyVersion* version = tenant_->current();
  DARL_CHECK(version != nullptr,
             "PolicyStore has no published version to serve");
  input_dim_ = version->spec.input_dim();
  action_dim_ = version->spec.action_dim();

  // Instrument resolution happens exactly once, here: the serve/dispatch
  // hot paths only touch the cached pointers. Latency is one histogram
  // family labeled by outcome, so rejected and timed-out requests show in
  // the same exposition family as the Ok path instead of vanishing — a
  // p99 that "improves" under overload was exactly the blind spot.
  obs::Registry& registry = obs::Registry::global();
  requests_ctr_ = &registry.counter("serve.requests", config_.labels);
  served_ctr_ = &registry.counter("serve.served", config_.labels);
  batches_ctr_ = &registry.counter("serve.batches", config_.labels);
  replica_refresh_ctr_ =
      &registry.counter("serve.replica_refresh", config_.labels);
  quantized_batches_ctr_ =
      &registry.counter("serve.quantized_batches", config_.labels);
  batch_rows_hist_ =
      &registry.histogram("serve.batch_rows", batch_rows_bounds(),
                          config_.labels);
  queue_depth_gauge_ = &registry.gauge("serve.queue_depth", config_.labels);
  const struct {
    Outcome outcome;
    const char* counter;
  } outcome_counters[] = {
      {Outcome::RejectedFull, "serve.rejected_full"},
      {Outcome::RejectedShutdown, "serve.rejected_shutdown"},
      {Outcome::TimedOut, "serve.timed_out"},
  };
  for (const auto& [outcome, counter] : outcome_counters) {
    outcome_ctr_[static_cast<std::size_t>(outcome)] =
        &registry.counter(counter, config_.labels);
  }
  for (const Outcome outcome :
       {Outcome::Ok, Outcome::RejectedFull, Outcome::RejectedShutdown,
        Outcome::TimedOut}) {
    latency_hist_[static_cast<std::size_t>(outcome)] = &registry.histogram(
        "serve.latency_us", latency_bounds(),
        with_label(config_.labels, "outcome", outcome_name(outcome)));
  }

  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->batch.assign(config_.max_batch, nullptr);
    workers_.push_back(std::move(worker));
  }
  // Spawn only after every Worker is in place: threads capture stable
  // pointers into workers_.
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { dispatch_loop(*w); });
  }
}

BatchScheduler::~BatchScheduler() { shutdown(); }

void BatchScheduler::publish_queue_depth() {
  // Caller holds queue_mutex_: the gauge is consistent with the queue it
  // describes, and with per-shard labels each shard owns its own series.
  if (obs::metrics_enabled()) {
    queue_depth_gauge_->set(static_cast<double>(queue_.size()));
  }
}

Response& BatchScheduler::finish(Response& response, Outcome outcome,
                                 double latency_us) {
  response.outcome = outcome;
  response.latency_us = latency_us;
  if (obs::metrics_enabled()) {
    if (obs::Counter* ctr = outcome_ctr_[static_cast<std::size_t>(outcome)]) {
      ctr->add(1);
    }
    if (obs::Histogram* hist =
            latency_hist_[static_cast<std::size_t>(outcome)]) {
      hist->observe(latency_us);
    }
  }
  return response;
}

Response BatchScheduler::serve(const Vec& obs, double deadline_us) {
  DARL_CHECK(obs.size() == input_dim_,
             "serve: observation has " << obs.size() << " dims, policy expects "
                                       << input_dim_);
  Stopwatch stopwatch;
  if (obs::metrics_enabled()) requests_ctr_->add(1);

  Response response;
  response.action.assign(action_dim_, 0.0);
  Request request;
  request.obs = &obs;
  request.out = &response;

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      return finish(response, Outcome::RejectedShutdown,
                    stopwatch.seconds() * 1e6);
    }
    if (queue_.size() >= config_.queue_capacity) {
      return finish(response, Outcome::RejectedFull,
                    stopwatch.seconds() * 1e6);
    }
    queue_.push_back(&request);
    publish_queue_depth();
  }
  queue_cv_.notify_one();

  {
    std::unique_lock<std::mutex> lock(request.mutex);
    if (deadline_us <= 0.0) {
      request.cv.wait(lock, [&] { return request.done; });
    } else if (!request.cv.wait_for(
                   lock, std::chrono::duration<double, std::micro>(deadline_us),
                   [&] { return request.done; })) {
      lock.unlock();
      bool removed = false;
      {
        std::lock_guard<std::mutex> queue_lock(queue_mutex_);
        const auto it = std::find(queue_.begin(), queue_.end(), &request);
        if (it != queue_.end()) {
          queue_.erase(it);
          removed = true;
          publish_queue_depth();
        }
      }
      if (removed) {
        return finish(response, Outcome::TimedOut, stopwatch.seconds() * 1e6);
      }
      // A worker popped the request before we could abandon it; the
      // result is imminent — wait it out so the stack frame stays valid.
      lock.lock();
      request.cv.wait(lock, [&] { return request.done; });
    }
  }

  return finish(response, Outcome::Ok, stopwatch.seconds() * 1e6);
}

void BatchScheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

std::size_t BatchScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

void BatchScheduler::dispatch_loop(Worker& worker) {
  for (;;) {
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;  // drained
        continue;
      }
      // Batching window: give concurrent clients max_delay_us to fill the
      // batch. Shutdown flushes immediately so draining never waits.
      if (queue_.size() < config_.max_batch && config_.max_delay_us > 0.0 &&
          !stopping_) {
        Stopwatch window;
        if (config_.gather) {
          // Yield-gather: cede the CPU so clients that are already
          // runnable can enqueue; stop the moment a yield brings no new
          // arrival. Unlike a timed sleep this has no granularity floor,
          // so a straggler costs one scheduler pass, not a timer tick.
          std::size_t seen = queue_.size();
          while (!stopping_ && queue_.size() < config_.max_batch &&
                 window.seconds() * 1e6 < config_.max_delay_us) {
            lock.unlock();
            std::this_thread::yield();
            lock.lock();
            if (queue_.size() <= seen) break;  // arrivals went idle
            seen = queue_.size();
          }
        } else {
          while (!stopping_ && !queue_.empty() &&
                 queue_.size() < config_.max_batch) {
            const double remaining_us =
                config_.max_delay_us - window.seconds() * 1e6;
            if (remaining_us <= 0.0) break;
            queue_cv_.wait_for(
                lock, std::chrono::duration<double, std::micro>(remaining_us));
          }
        }
        if (queue_.empty()) continue;  // abandoned or taken by a peer
      }
      count = std::min(queue_.size(), config_.max_batch);
      for (std::size_t i = 0; i < count; ++i) {
        worker.batch[i] = queue_.front();
        queue_.pop_front();
      }
      publish_queue_depth();
    }
    execute_batch(worker, count);
  }
}

void BatchScheduler::execute_batch(Worker& worker, std::size_t count) {
  DARL_SPAN_V("serve.execute", "rows", count);
  // One version per micro-batch: everything popped above is served by the
  // snapshot read here, even if a publish lands mid-execution.
  const PolicyVersion* version = tenant_->current();
  ensure_replica(worker, *version);
  worker.obs_mat.reshape(count, input_dim_);
  for (std::size_t i = 0; i < count; ++i) {
    const Vec& obs = *worker.batch[i]->obs;
    std::copy(obs.begin(), obs.end(), worker.obs_mat.row(i));
  }
  const Matrix& heads =
      config_.quantized
          ? worker.net->evaluate_batch_quantized(worker.obs_mat,
                                                 *version->quantized)
          : worker.net->evaluate_batch(worker.obs_mat);
  for (std::size_t i = 0; i < count; ++i) {
    Request* request = worker.batch[i];
    decode_head(version->spec, heads.row(i), request->out->action);
    request->out->version = version->id;
    complete(*request);
  }
  if (obs::metrics_enabled()) {
    batches_ctr_->add(1);
    served_ctr_->add(count);
    if (config_.quantized) quantized_batches_ctr_->add(1);
    batch_rows_hist_->observe(static_cast<double>(count));
  }
}

void BatchScheduler::ensure_replica(Worker& worker,
                                    const PolicyVersion& version) {
  if (worker.version_id == version.id) return;
  // Hot-swap contract: every published version keeps the interface the
  // scheduler was built against.
  DARL_ASSERT(version.spec.input_dim() == input_dim_ &&
                  version.spec.action_dim() == action_dim_,
              "hot-swapped policy version changed the serving interface");
  if (!worker.net || worker.net->sizes() != version.spec.sizes ||
      worker.net->activation() != version.spec.activation) {
    Rng init(version.id);
    worker.net = std::make_unique<nn::Mlp>(version.spec.sizes,
                                           version.spec.activation, init);
  }
  worker.net->set_flat_params(version.spec.net_params);
  worker.version_id = version.id;
  if (obs::metrics_enabled()) replica_refresh_ctr_->add(1);
}

void BatchScheduler::complete(Request& request) {
  // Notify UNDER the lock: the Request lives on the client's stack, and
  // the client destroys it as soon as serve() observes done. Holding the
  // mutex across notify_one means the client cannot finish its wait (it
  // must re-acquire the mutex) until this thread is done touching the
  // condition variable — the canonical safe pattern for a cv whose
  // lifetime ends right after the wakeup.
  std::lock_guard<std::mutex> lock(request.mutex);
  request.done = true;
  request.cv.notify_one();
}

}  // namespace darl::serve
