// darl/serve/router.hpp
//
// Fleet front door: a serve::Router fronts N hash-sharded BatchSchedulers
// per tenant of a multi-tenant PolicyStore. A request names its tenant, a
// routing key, and a priority lane; the router applies admission control
// (per-tenant in-flight quotas), priority load-shedding against the target
// shard's queue depth, and stable hash-sharding (fnv1a64 over the key), so
// a session's requests always land on the same shard and batch against the
// same replica cache.
//
// Overload policy (DESIGN.md §14): under open-loop traffic the queue is
// the only place excess load can go, and an unbounded queue turns a
// transient burst into a permanent latency cliff. The router instead sheds
// *before* enqueueing, lowest priority first — a Low request is dropped
// once its shard's queue reaches shed_low x capacity, Normal at
// shed_normal, High at shed_high, and Control traffic (health probes,
// ops tooling) is never shed, only rejected by the hard queue capacity
// like everything else. Shedding happens at the router so a shed request
// costs a queue-depth read, not a queue slot.
//
// Every scheduler shard keeps the DESIGN.md §12 bitwise contract: a served
// action is identical to per-sample Mlp::evaluate + greedy decode on the
// tenant's current version, no matter which shard or micro-batch it rode.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "darl/serve/batch_scheduler.hpp"

namespace darl::serve {

/// Priority lanes, strongest-first. Control is for health/ops traffic
/// that must survive overload; Low is the first lane shed.
enum class Priority { Control = 0, High = 1, Normal = 2, Low = 3 };
inline constexpr std::size_t kPriorityCount = 4;

const char* priority_name(Priority priority);

/// Fleet tuning knobs.
struct RouterConfig {
  /// Hash shards per tenant. Each shard is a full BatchScheduler (own
  /// queue, own worker pool, own labeled metrics).
  std::size_t shards = 2;
  /// Per-shard scheduler template. tenant and labels are stamped by the
  /// router for each tenant x shard; the rest applies verbatim.
  ServeConfig shard;
  /// Load-shedding watermarks as fractions of the shard queue capacity:
  /// a request is shed when its target shard's queue depth has reached
  /// watermark x queue_capacity. Control traffic never sheds.
  double shed_low = 0.50;
  double shed_normal = 0.75;
  double shed_high = 0.90;
  /// Per-tenant in-flight admission quota applied before shedding
  /// (0 = unlimited). Override per tenant with set_quota().
  std::size_t default_quota = 0;
  /// Serve every tenant through the int8 quantized path (overrides the
  /// shard template's ServeConfig::quantized)...
  bool quantized = false;
  /// ...except these tenants, which stay on the exact double path
  /// regardless (per-tenant exact-mode fallback; ignored when `quantized`
  /// is false). A tenant's mode is fixed at construction and applies to
  /// all of its shards, so each tenant's self-check reference is
  /// unambiguous.
  std::vector<std::string> exact_tenants;
};

/// Router over one PolicyStore: one shard group per tenant that had
/// published a version when the router was constructed. serve() may be
/// called from any number of client threads; shutdown() drains every
/// shard and is idempotent.
class Router {
 public:
  Router(const PolicyStore& store, RouterConfig config);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Serve one observation for `tenant_name` (the unnamed tenant is "").
  /// `key` picks the shard (stable fnv1a64 hash — same key, same shard,
  /// forever). Unknown tenants are contract violations and throw; every
  /// overload condition is a typed Outcome.
  Response serve(const std::string& tenant_name, std::uint64_t key,
                 const Vec& obs, Priority priority = Priority::Normal,
                 double deadline_us = 0.0);

  /// Shard index `key` routes to (exposed for tests and ops tooling).
  std::size_t shard_for(std::uint64_t key) const;

  /// Replace a tenant's in-flight quota (0 = unlimited).
  void set_quota(const std::string& tenant_name, std::size_t quota);

  /// Stop accepting, drain every shard, join all workers. Idempotent.
  void shutdown();

  std::size_t shard_count() const { return config_.shards; }
  std::vector<std::string> tenant_names() const;

  /// Whether a tenant's shards run the quantized inference path (false
  /// for unknown tenants). Fixed at construction.
  bool tenant_quantized(const std::string& tenant_name) const;

  /// Direct access to one shard scheduler (tests/diagnostics); nullptr
  /// for unknown tenants.
  BatchScheduler* shard(const std::string& tenant_name, std::size_t index);

  /// Queued requests on one shard (diagnostics/tests).
  std::size_t queue_depth(const std::string& tenant_name,
                          std::size_t index) const;

 private:
  /// One tenant's slice of the fleet. Immutable map shape after
  /// construction: lookups are lock-free reads.
  struct TenantGroup {
    std::string name;
    bool quantized = false;  ///< fixed at construction, applies to all shards
    std::vector<std::unique_ptr<BatchScheduler>> shards;
    std::atomic<std::size_t> in_flight{0};
    std::atomic<std::size_t> quota{0};
    /// Shed when depth >= shed_depth[priority] (Control = SIZE_MAX).
    std::array<std::size_t, kPriorityCount> shed_depth{};
    obs::Counter* requests_ctr = nullptr;
    obs::Counter* rejected_quota_ctr = nullptr;
    std::array<obs::Counter*, kPriorityCount> shed_ctr{};
  };

  TenantGroup* find_tenant(const std::string& tenant_name) const;

  RouterConfig config_;
  // Concurrency discipline (darl_verify): the router deliberately owns no
  // mutex, so nothing here carries DARL_GUARDED_BY — tenants_ is frozen
  // at construction (lock-free lookups), and all mutable state above is
  // atomics with explicit memory_order (the naked-atomic-ordering rule
  // keeps it that way). Blocking and queueing live in BatchScheduler.
  std::map<std::string, std::unique_ptr<TenantGroup>> tenants_;
};

}  // namespace darl::serve
