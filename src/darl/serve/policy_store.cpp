#include "darl/serve/policy_store.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/obs/trace.hpp"

namespace darl::serve {
namespace {

/// Scalar parameter count of an Mlp with the given layer sizes (weights
/// plus biases per layer) — computed without constructing the network.
std::size_t mlp_param_count(const std::vector<std::size_t>& sizes) {
  std::size_t n = 0;
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    n += sizes[l + 1] * sizes[l] + sizes[l + 1];
  }
  return n;
}

std::vector<std::size_t> layer_sizes(std::size_t in,
                                     const std::vector<std::size_t>& hidden,
                                     std::size_t out) {
  std::vector<std::size_t> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

std::uint64_t digest_params(const Vec& params) {
  const std::string bytes(reinterpret_cast<const char*>(params.data()),
                          params.size() * sizeof(double));
  return fnv1a64(bytes);
}

}  // namespace

std::size_t PolicySpec::action_dim() const {
  switch (decode) {
    case GreedyDecode::Raw:
      return sizes.back();
    case GreedyDecode::ArgmaxDiscrete:
      return 1;
    case GreedyDecode::ClipBox:
    case GreedyDecode::SquashedMeanBox:
      return action_space.box().dim();
  }
  return sizes.back();
}

PolicySpec policy_spec_from_checkpoint(
    const rl::Checkpoint& checkpoint, const env::ActionSpace& action_space,
    const std::vector<std::size_t>& hidden) {
  if (checkpoint.obs_dim == 0) {
    throw rl::CheckpointError("checkpoint has zero observation dimension");
  }
  if (checkpoint.action_dim != action_space.action_dim()) {
    throw rl::CheckpointError(
        "checkpoint action_dim " + std::to_string(checkpoint.action_dim) +
        " does not match the action space (" +
        std::to_string(action_space.action_dim()) + ")");
  }

  PolicySpec spec;
  spec.action_space = action_space;
  std::size_t tail = 0;  // non-network trailing parameters (log-std)
  switch (checkpoint.kind) {
    case rl::AlgoKind::PPO:
    case rl::AlgoKind::IMPALA:
      if (action_space.is_discrete()) {
        spec.sizes = layer_sizes(checkpoint.obs_dim, hidden,
                                 action_space.discrete().n());
        spec.decode = GreedyDecode::ArgmaxDiscrete;
      } else {
        spec.sizes =
            layer_sizes(checkpoint.obs_dim, hidden, action_space.box().dim());
        spec.decode = GreedyDecode::ClipBox;
        tail = action_space.box().dim();  // state-independent log-std
      }
      break;
    case rl::AlgoKind::SAC:
      if (!action_space.is_box()) {
        throw rl::CheckpointError("SAC checkpoints require a box action space");
      }
      spec.sizes = layer_sizes(checkpoint.obs_dim, hidden,
                               2 * action_space.box().dim());
      spec.decode = GreedyDecode::SquashedMeanBox;
      break;
  }

  const std::size_t net_n = mlp_param_count(spec.sizes);
  if (checkpoint.params.size() != net_n + tail) {
    throw rl::CheckpointError(
        "checkpoint holds " + std::to_string(checkpoint.params.size()) +
        " parameters but the " + std::string(rl::algo_name(checkpoint.kind)) +
        " architecture expects " + std::to_string(net_n + tail) +
        " (wrong --hidden sizes?)");
  }
  spec.net_params.assign(checkpoint.params.begin(),
                         checkpoint.params.begin() +
                             static_cast<std::ptrdiff_t>(net_n));
  return spec;
}

void decode_head(const PolicySpec& spec, const double* head, Vec& out) {
  switch (spec.decode) {
    case GreedyDecode::Raw: {
      const std::size_t n = spec.sizes.back();
      std::copy(head, head + n, out.begin());
      return;
    }
    case GreedyDecode::ArgmaxDiscrete: {
      // Bitwise replica of the PPO/IMPALA actors' act_greedy: stable
      // softmax, then the *first* largest probability wins (max_element
      // semantics). The softmax values are recomputed scalar-by-scalar in
      // the same order as nn::Categorical::softmax, so rounding ties
      // resolve identically — without allocating a probability vector.
      const std::size_t n = spec.action_space.discrete().n();
      double m = head[0];
      for (std::size_t i = 1; i < n; ++i) m = std::max(m, head[i]);
      double z = 0.0;
      for (std::size_t i = 0; i < n; ++i) z += std::exp(head[i] - m);
      std::size_t best = 0;
      double best_p = std::exp(head[0] - m) / z;
      for (std::size_t i = 1; i < n; ++i) {
        const double p = std::exp(head[i] - m) / z;
        if (p > best_p) {
          best = i;
          best_p = p;
        }
      }
      out[0] = static_cast<double>(best);
      return;
    }
    case GreedyDecode::ClipBox: {
      const env::BoxSpace& box = spec.action_space.box();
      for (std::size_t i = 0; i < box.dim(); ++i) {
        out[i] = std::clamp(head[i], box.low()[i], box.high()[i]);
      }
      return;
    }
    case GreedyDecode::SquashedMeanBox: {
      // Same math as the SAC actor: tanh of the mean half of the head,
      // affinely scaled from [-1, 1] into the box.
      const env::BoxSpace& box = spec.action_space.box();
      for (std::size_t i = 0; i < box.dim(); ++i) {
        const double squashed = std::tanh(head[i]);
        out[i] = box.low()[i] +
                 0.5 * (squashed + 1.0) * (box.high()[i] - box.low()[i]);
      }
      return;
    }
  }
}

std::uint64_t PolicyStore::publish(PolicySpec spec) {
  return publish(std::string(), std::move(spec));
}

std::uint64_t PolicyStore::publish(const std::string& tenant_name,
                                   PolicySpec spec) {
  DARL_CHECK(spec.sizes.size() >= 2, "policy spec needs {in, ..., out} sizes");
  DARL_CHECK(spec.net_params.size() == mlp_param_count(spec.sizes),
             "policy spec has " << spec.net_params.size()
                                << " parameters, architecture expects "
                                << mlp_param_count(spec.sizes));
  DARL_SPAN("serve.publish");
  auto version = std::make_unique<PolicyVersion>();
  version->spec = std::move(spec);
  version->params_digest = digest_params(version->spec.net_params);
  // Quantize at publish time, outside the lock: every version carries its
  // int8 snapshot so quantized-mode schedulers never re-derive scales on
  // the serving path (and exact-mode tenants simply never read it).
  version->quantized = std::make_shared<const nn::QuantizedNet>(
      nn::quantize_mlp_params(version->spec.sizes, version->spec.activation,
                              version->spec.net_params));

  std::lock_guard<std::mutex> lock(publish_mutex_);
  auto it = tenants_.find(tenant_name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant_name, std::make_unique<Tenant>(tenant_name))
             .first;
    if (tenant_name.empty()) {
      default_tenant_.store(it->second.get(), std::memory_order_release);
    }
  }
  Tenant& tenant = *it->second;
  version->id = tenant.retained_.size() + 1;
  tenant.retained_.push_back(std::move(version));
  // Release pairs with the acquire in Tenant::current(): a reader that
  // sees the new pointer sees the fully constructed version behind it.
  tenant.current_.store(tenant.retained_.back().get(),
                        std::memory_order_release);
  DARL_COUNTER_ADD("serve.swaps", 1);
  return tenant.retained_.back()->id;
}

std::uint64_t PolicyStore::publish_checkpoint(
    const rl::Checkpoint& checkpoint, const env::ActionSpace& action_space,
    const std::vector<std::size_t>& hidden) {
  return publish(policy_spec_from_checkpoint(checkpoint, action_space, hidden));
}

std::uint64_t PolicyStore::publish_checkpoint(
    const std::string& tenant_name, const rl::Checkpoint& checkpoint,
    const env::ActionSpace& action_space,
    const std::vector<std::size_t>& hidden) {
  return publish(tenant_name,
                 policy_spec_from_checkpoint(checkpoint, action_space, hidden));
}

const PolicyStore::Tenant* PolicyStore::tenant(
    const std::string& tenant_name) const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  const auto it = tenants_.find(tenant_name);
  return it != tenants_.end() ? it->second.get() : nullptr;
}

std::vector<std::string> PolicyStore::tenant_names() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

std::uint64_t PolicyStore::version_count() const {
  return version_count(std::string());
}

std::uint64_t PolicyStore::version_count(
    const std::string& tenant_name) const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  const auto it = tenants_.find(tenant_name);
  return it != tenants_.end() ? it->second->retained_.size() : 0;
}

DirectPolicy::DirectPolicy(const PolicySpec& spec, bool quantized)
    : spec_(spec), net_([&] {
        Rng init(0);
        return nn::Mlp(spec.sizes, spec.activation, init);
      }()) {
  net_.set_flat_params(spec_.net_params);
  if (quantized) {
    quantized_ = std::make_shared<const nn::QuantizedNet>(
        nn::quantize_mlp_params(spec_.sizes, spec_.activation,
                                spec_.net_params));
    obs_row_.reshape(1, spec_.input_dim());
  }
  action_.assign(spec_.action_dim(), 0.0);
}

Vec DirectPolicy::act(const Vec& obs) {
  if (quantized_ != nullptr) {
    // Batch-of-1 through the same int8 kernel the scheduler runs; rows
    // are independent there, so this is the bitwise reference for any
    // batched quantized serve of the same observation.
    std::copy(obs.begin(), obs.end(), obs_row_.data().begin());
    const Matrix& head = net_.evaluate_batch_quantized(obs_row_, *quantized_);
    decode_head(spec_, head.row(0), action_);
    return action_;
  }
  const Vec head = net_.evaluate(obs);
  decode_head(spec_, head.data(), action_);
  return action_;
}

}  // namespace darl::serve
