// darl/serve/policy_store.hpp
//
// Versioned, multi-tenant policy storage for the inference fleet. A
// PolicyStore hosts many *named* policies (tenants); each tenant holds an
// immutable chain of published PolicyVersions. Readers obtain a tenant's
// current version with a single acquire load (no lock, no reference
// count), writers publish a new version under a mutex. Old versions are
// retained for the store's lifetime, so a dispatcher that grabbed version
// N keeps a valid pointer while version N+1 goes live — in-flight
// micro-batches finish on the version they started with, which is exactly
// the hot-swap contract the serving layer documents (DESIGN.md §12).
//
// The unnamed tenant "" is the single-policy back-compat path: publish()
// and current() without a name read and write it, so pre-fleet call sites
// keep working unchanged. Version ids are monotonic *per tenant* (first
// publish = 1): hot-swapping tenant A never advances tenant B's ids.
//
// A version is *data only* (network shape + flat parameters + greedy
// decode recipe): nn::Mlp instances are not safe for concurrent
// evaluation, so each scheduler worker materializes its own Mlp replica
// from the spec and refreshes it when the version id changes.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "darl/common/thread_safety.hpp"
#include "darl/env/space.hpp"
#include "darl/nn/mlp.hpp"
#include "darl/nn/quantize.hpp"
#include "darl/rl/checkpoint.hpp"

namespace darl::serve {

/// How a policy-head row is turned into a greedy action (env encoding).
/// Each recipe replicates the corresponding actor's act_greedy() math
/// exactly, so a served action is bitwise-identical to the training-side
/// greedy decision for the same head.
enum class GreedyDecode {
  Raw,              ///< action = head (no action space involved)
  ArgmaxDiscrete,   ///< softmax argmax, encoded (PPO/IMPALA discrete)
  ClipBox,          ///< box-clipped head (PPO/IMPALA continuous)
  SquashedMeanBox,  ///< tanh(mean half), scaled into the box (SAC)
};

/// Everything needed to serve one policy: the Mlp architecture, its flat
/// parameters, and the decode recipe. Immutable once published.
struct PolicySpec {
  std::vector<std::size_t> sizes;  ///< Mlp layer sizes {in, hidden..., out}
  nn::Activation activation = nn::Activation::Tanh;
  Vec net_params;                  ///< flat Mlp parameters (no extras)
  env::ActionSpace action_space;   ///< unused for GreedyDecode::Raw
  GreedyDecode decode = GreedyDecode::Raw;

  std::size_t input_dim() const { return sizes.front(); }
  /// Dimension of a served action vector.
  std::size_t action_dim() const;
};

/// Build a servable spec from a saved checkpoint. `hidden` must match the
/// architecture the checkpoint was trained with (the algorithms' default
/// is {64, 64}); a parameter-count mismatch raises rl::CheckpointError.
/// For PPO/IMPALA continuous policies the state-independent log-std tail
/// is split off (greedy decoding never reads it); SAC's mean/log-std head
/// split is handled by the decode recipe instead.
PolicySpec policy_spec_from_checkpoint(
    const rl::Checkpoint& checkpoint, const env::ActionSpace& action_space,
    const std::vector<std::size_t>& hidden = {64, 64});

/// Greedy-decode one head row into `out` (pre-sized to spec.action_dim()).
/// Deterministic per-element math — no allocation, no rng.
void decode_head(const PolicySpec& spec, const double* head, Vec& out);

/// One published policy. Immutable; identified by a monotonically
/// increasing id (first publish = 1).
struct PolicyVersion {
  std::uint64_t id = 0;
  PolicySpec spec;
  std::uint64_t params_digest = 0;  ///< fnv1a64 over net_params bytes
  /// int8 row-quantized snapshot of spec.net_params, derived once at
  /// publish time so scheduler replicas in quantized mode share it
  /// read-only (the replicas' Mlp instances keep the exact parameters;
  /// the quantized weights ride on the immutable version instead).
  std::shared_ptr<const nn::QuantizedNet> quantized;
};

/// Versioned, swap-under-traffic, multi-tenant policy holder.
///
/// Thread safety: Tenant::current() is safe from any thread and lock-free
/// (one acquire load); publish() serializes writers on an internal mutex.
/// The release store in publish() pairs with the acquire load in
/// current(), so a reader that observes version N also observes N's fully
/// constructed spec. Published versions stay valid until the store is
/// destroyed (retention is one heap object per publish — swaps are rare
/// events, so this is cheap insurance against use-after-swap). Tenant
/// handles returned by tenant() are likewise stable for the store's
/// lifetime, so a scheduler resolves its tenant once at construction and
/// reads lock-free forever after.
class PolicyStore {
 public:
  /// Stable per-tenant handle: the lock-free read side of one named
  /// policy's version chain.
  class Tenant {
   public:
    /// Constructed by PolicyStore::publish on a tenant's first publish;
    /// standalone instances hold an empty chain and serve no one.
    explicit Tenant(std::string name) : name_(std::move(name)) {}

    /// The tenant's latest published version, or nullptr before its first
    /// publish. The pointer stays valid for the store's lifetime.
    const PolicyVersion* current() const {
      return current_.load(std::memory_order_acquire);
    }
    const std::string& name() const { return name_; }

   private:
    friend class PolicyStore;
    std::string name_;
    std::atomic<const PolicyVersion*> current_{nullptr};
    /// Owned version chain; mutated only under the store's publish_mutex_
    /// (readers go through the lock-free `current_` pointer instead).
    std::vector<std::unique_ptr<PolicyVersion>> retained_
        DARL_GUARDED_BY(publish_mutex_);
  };

  PolicyStore() = default;
  PolicyStore(const PolicyStore&) = delete;
  PolicyStore& operator=(const PolicyStore&) = delete;

  /// Publish a new version for the unnamed tenant; returns its id. The
  /// new version becomes visible to current() before publish() returns.
  std::uint64_t publish(PolicySpec spec);

  /// Publish a new version for a named tenant (created on first publish).
  std::uint64_t publish(const std::string& tenant_name, PolicySpec spec);

  /// Convenience: derive the spec from a checkpoint and publish it.
  std::uint64_t publish_checkpoint(
      const rl::Checkpoint& checkpoint, const env::ActionSpace& action_space,
      const std::vector<std::size_t>& hidden = {64, 64});
  std::uint64_t publish_checkpoint(
      const std::string& tenant_name, const rl::Checkpoint& checkpoint,
      const env::ActionSpace& action_space,
      const std::vector<std::size_t>& hidden = {64, 64});

  /// The unnamed tenant's latest published version, or nullptr before the
  /// first publish. The pointer stays valid for the store's lifetime.
  const PolicyVersion* current() const {
    const Tenant* t = default_tenant_.load(std::memory_order_acquire);
    return t != nullptr ? t->current() : nullptr;
  }

  /// A named tenant's latest version (nullptr if it never published).
  const PolicyVersion* current(const std::string& tenant_name) const {
    const Tenant* t = tenant(tenant_name);
    return t != nullptr ? t->current() : nullptr;
  }

  /// Stable handle for a named tenant, or nullptr if it never published.
  const Tenant* tenant(const std::string& tenant_name) const;

  /// Names of every tenant that has published, sorted.
  std::vector<std::string> tenant_names() const;

  /// Versions published so far by the unnamed / a named tenant.
  std::uint64_t version_count() const;
  std::uint64_t version_count(const std::string& tenant_name) const;

 private:
  mutable std::mutex publish_mutex_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_
      DARL_GUARDED_BY(publish_mutex_);
  std::atomic<const Tenant*> default_tenant_{nullptr};
};

/// Reference single-observation inference path: per-sample Mlp::evaluate
/// plus greedy decode, with no batching anywhere. Tests, the CLI
/// self-check and the deploy example compare served actions against this
/// bitwise. With `quantized` set it runs the int8 batch-of-1 path
/// instead — the reference for quantized-mode tenants, which is likewise
/// bitwise-reproducible because the int8 kernel reduces each sample
/// independently in exact integer arithmetic. Not thread-safe (owns one
/// Mlp workspace); make one per thread.
class DirectPolicy {
 public:
  explicit DirectPolicy(const PolicySpec& spec, bool quantized = false);

  /// Greedy action for one observation.
  Vec act(const Vec& obs);

 private:
  PolicySpec spec_;
  nn::Mlp net_;
  std::shared_ptr<const nn::QuantizedNet> quantized_;  ///< null = exact
  Matrix obs_row_;
  Vec action_;
};

}  // namespace darl::serve
