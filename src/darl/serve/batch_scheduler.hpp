// darl/serve/batch_scheduler.hpp
//
// Micro-batching policy inference server. Clients call serve() with one
// observation; the scheduler coalesces concurrent requests into
// micro-batches (flushed when `max_batch` requests are pending or
// `max_delay_us` has elapsed since a worker started assembling a batch,
// whichever comes first) and executes them through nn::Mlp::evaluate_batch
// on a pool of worker threads. Because the batched kernels accumulate in
// ascending index order (DESIGN.md §11), a served action is bitwise
// identical to per-sample Mlp::evaluate + greedy decode on the same
// checkpoint, no matter which micro-batch the request lands in.
//
// Admission control follows the PR 2 status-not-throw philosophy: a full
// queue rejects immediately (Outcome::RejectedFull backpressure), a
// per-request deadline turns into Outcome::TimedOut instead of blocking
// forever, and requests arriving after shutdown() get
// Outcome::RejectedShutdown. Malformed requests (wrong observation
// dimension) are contract violations and throw, as everywhere in darl.
//
// Hot swap: workers pick up PolicyStore::current() once per micro-batch,
// so every request in a batch is served by exactly one version and
// in-flight batches finish on the version they started with. Each worker
// keeps a private nn::Mlp replica (instances are not safe for concurrent
// evaluation) refreshed when the version id changes. All published
// versions must share the serving interface (input/action dims) captured
// at scheduler construction.

#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "darl/common/thread_safety.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/serve/policy_store.hpp"

namespace darl::serve {

/// Scheduler tuning knobs.
struct ServeConfig {
  /// Tenant (named policy) in the PolicyStore this scheduler serves. The
  /// empty default is the unnamed single-policy tenant, so pre-fleet call
  /// sites keep working unchanged.
  std::string tenant;
  /// Instrument labels stamped on every metric this scheduler emits
  /// (serve::Router sets {{"tenant",...},{"shard",...}}). Empty keeps the
  /// historical unlabeled instrument keys.
  obs::Labels labels;
  /// Flush a micro-batch at this many requests.
  std::size_t max_batch = 32;
  /// Flush an incomplete micro-batch this many microseconds after a worker
  /// starts assembling it (0 = never wait: serve whatever is queued).
  double max_delay_us = 200.0;
  /// Adaptive gather (default): while a batch is short of max_batch, the
  /// worker yields the CPU instead of sleeping, letting already-runnable
  /// clients append their requests; it flushes as soon as one yield
  /// surfaces no new arrival (everyone who was going to join has joined).
  /// This assembles full batches from concurrent bursts without paying
  /// timer granularity, and degrades to greedy dispatch when nothing else
  /// is runnable. Set false to sleep out max_delay_us unconditionally
  /// (fixed-window batching; higher latency, predictable flush cadence).
  bool gather = true;
  /// Serve through the int8 quantized inference path: workers evaluate
  /// the PolicyVersion's publish-time quantized snapshot instead of the
  /// exact double weights. Lossy versus the exact path (bounded logit
  /// error, see darl/nn/quantize.hpp) but still bitwise-reproducible
  /// against a quantized DirectPolicy, so the self-check holds per mode.
  /// serve::Router sets this per tenant (exact-mode fallback).
  bool quantized = false;
  /// Bounded admission queue; requests beyond this are rejected.
  std::size_t queue_capacity = 256;
  /// Dispatch worker threads. 0 is a test-only mode: nothing dispatches,
  /// so requests leave the queue only via deadline abandonment.
  std::size_t workers = 1;
};

/// Typed request outcome (status-not-throw: only contract violations
/// raise exceptions on the serving path). The first four are produced by
/// BatchScheduler itself; RejectedQuota and Shed are produced by
/// serve::Router's admission layer before a request reaches a shard.
enum class Outcome {
  Ok,                ///< action filled by the policy
  RejectedFull,      ///< admission queue at capacity (backpressure)
  RejectedShutdown,  ///< server is stopping / stopped
  TimedOut,          ///< deadline expired while waiting in the queue
  RejectedQuota,     ///< tenant exceeded its in-flight admission quota
  Shed,              ///< dropped by priority load-shedding under overload
};

/// Number of Outcome values (for per-outcome instrument arrays).
inline constexpr std::size_t kOutcomeCount = 6;

const char* outcome_name(Outcome outcome);

/// Result of one serve() call.
struct Response {
  Outcome outcome = Outcome::RejectedShutdown;
  Vec action;                ///< greedy action (valid when outcome == Ok)
  std::uint64_t version = 0; ///< policy version that served the request
  double latency_us = 0.0;   ///< admission to return, client-side
};

/// Micro-batching inference server over one PolicyStore tenant (the
/// unnamed tenant by default — set ServeConfig::tenant to serve a named
/// policy; serve::Router builds one scheduler per tenant x shard).
/// Construction captures the tenant's current version interface and
/// starts the worker pool; the destructor shuts down and drains. serve()
/// may be called from any number of client threads concurrently;
/// shutdown() must not be called concurrently with itself.
class BatchScheduler {
 public:
  BatchScheduler(const PolicyStore& store, ServeConfig config);
  ~BatchScheduler();
  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Serve one observation. Blocks until the action is computed, the
  /// queue rejects the request, or `deadline_us` microseconds elapse
  /// while the request is still queued (deadline_us <= 0 waits without
  /// limit). A request a worker has already claimed is always completed,
  /// even if the deadline lapses during execution.
  Response serve(const Vec& obs, double deadline_us = 0.0);

  /// Stop accepting requests, serve everything already queued, and join
  /// the workers. Idempotent.
  void shutdown();

  /// Requests currently waiting for dispatch (diagnostics/tests).
  std::size_t queue_depth() const;

  std::size_t input_dim() const { return input_dim_; }
  std::size_t action_dim() const { return action_dim_; }

 private:
  /// One queued request. Lives on the client's stack for the duration of
  /// serve(); queue membership is guarded by queue_mutex_, completion by
  /// the per-request mutex/cv. A client may remove its own request from
  /// the queue (deadline abandonment); once a worker has popped it, only
  /// the worker touches it until `done` is published.
  struct Request {
    const Vec* obs = nullptr;
    Response* out = nullptr;
    std::mutex mutex;
    std::condition_variable cv;
    bool done DARL_GUARDED_BY(mutex) = false;
  };

  /// Per-worker state: a private policy replica and preallocated batch
  /// scratch, so the dispatch/execute hot path never allocates.
  struct Worker {
    std::thread thread;
    std::unique_ptr<nn::Mlp> net;
    std::uint64_t version_id = 0;  ///< version the replica holds (0 = none)
    Matrix obs_mat;
    std::vector<Request*> batch;
  };

  void dispatch_loop(Worker& worker);
  void execute_batch(Worker& worker, std::size_t count);
  void ensure_replica(Worker& worker, const PolicyVersion& version);
  void complete(Request& request);
  /// Finish a response: stamp outcome + latency and record the
  /// per-outcome latency histogram (labeled, resolved at construction).
  Response& finish(Response& response, Outcome outcome, double latency_us);

  const PolicyStore::Tenant* tenant_ = nullptr;
  ServeConfig config_;
  std::size_t input_dim_ = 0;
  std::size_t action_dim_ = 0;

  // Instruments resolved once here: the dispatch/serve hot paths never
  // touch the registry (darl-lint's metric-lookup-in-kernel rule). All
  // carry config_.labels; latency is additionally labeled by outcome.
  obs::Counter* requests_ctr_ = nullptr;
  obs::Counter* served_ctr_ = nullptr;
  obs::Counter* batches_ctr_ = nullptr;
  obs::Counter* replica_refresh_ctr_ = nullptr;
  obs::Counter* quantized_batches_ctr_ = nullptr;
  std::array<obs::Counter*, kOutcomeCount> outcome_ctr_{};
  std::array<obs::Histogram*, kOutcomeCount> latency_hist_{};
  obs::Histogram* batch_rows_hist_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;

  /// Publish the queue depth gauge; caller holds queue_mutex_, so the
  /// gauge moves in lockstep with the queue it describes (per shard —
  /// the pre-fleet code wrote one global gauge from racing shards).
  void publish_queue_depth() DARL_REQUIRES(queue_mutex_);

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request*> queue_ DARL_GUARDED_BY(queue_mutex_);
  bool stopping_ DARL_GUARDED_BY(queue_mutex_) = false;

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace darl::serve
