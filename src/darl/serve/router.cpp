#include "darl/serve/router.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/common/stopwatch.hpp"
#include "darl/obs/metrics.hpp"

namespace darl::serve {
namespace {

/// Label value for a tenant: the unnamed back-compat tenant renders as
/// "default" so exported series never carry an empty label value.
std::string tenant_label(const std::string& name) {
  return name.empty() ? std::string("default") : name;
}

std::size_t shed_threshold(double fraction, std::size_t capacity) {
  if (fraction >= 1.0) return SIZE_MAX;  // never shed this lane
  const double raw = fraction * static_cast<double>(capacity);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(raw)));
}

}  // namespace

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::Control:
      return "control";
    case Priority::High:
      return "high";
    case Priority::Normal:
      return "normal";
    case Priority::Low:
      return "low";
  }
  return "unknown";
}

Router::Router(const PolicyStore& store, RouterConfig config)
    : config_(std::move(config)) {
  DARL_CHECK(config_.shards >= 1, "router needs at least one shard");
  DARL_CHECK(config_.shed_low <= config_.shed_normal &&
                 config_.shed_normal <= config_.shed_high,
             "shed watermarks must be ordered low <= normal <= high");
  const std::vector<std::string> names = store.tenant_names();
  DARL_CHECK(!names.empty(),
             "PolicyStore has no published tenants to route to");

  obs::Registry& registry = obs::Registry::global();
  for (const std::string& name : names) {
    auto group = std::make_unique<TenantGroup>();
    group->name = name;
    group->quantized =
        config_.quantized &&
        std::find(config_.exact_tenants.begin(), config_.exact_tenants.end(),
                  name) == config_.exact_tenants.end();
    group->quota.store(config_.default_quota, std::memory_order_relaxed);
    const std::string label = tenant_label(name);
    group->requests_ctr =
        &registry.counter("serve.router_requests", {{"tenant", label}});
    group->rejected_quota_ctr =
        &registry.counter("serve.rejected_quota", {{"tenant", label}});
    group->shed_depth[static_cast<std::size_t>(Priority::Control)] = SIZE_MAX;
    group->shed_depth[static_cast<std::size_t>(Priority::High)] =
        shed_threshold(config_.shed_high, config_.shard.queue_capacity);
    group->shed_depth[static_cast<std::size_t>(Priority::Normal)] =
        shed_threshold(config_.shed_normal, config_.shard.queue_capacity);
    group->shed_depth[static_cast<std::size_t>(Priority::Low)] =
        shed_threshold(config_.shed_low, config_.shard.queue_capacity);
    for (const Priority priority :
         {Priority::High, Priority::Normal, Priority::Low}) {
      group->shed_ctr[static_cast<std::size_t>(priority)] = &registry.counter(
          "serve.shed", {{"tenant", label},
                         {"priority", priority_name(priority)}});
    }
    group->shards.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
      ServeConfig shard_config = config_.shard;
      shard_config.tenant = name;
      shard_config.quantized = group->quantized;
      shard_config.labels = {{"tenant", label},
                             {"shard", std::to_string(s)}};
      group->shards.push_back(
          std::make_unique<BatchScheduler>(store, std::move(shard_config)));
    }
    tenants_.emplace(name, std::move(group));
  }
}

Router::~Router() { shutdown(); }

std::size_t Router::shard_for(std::uint64_t key) const {
  // fnv1a64 over the key's little-endian bytes: stable across processes
  // and platforms we target, so session -> shard assignments survive
  // restarts (replica caches stay warm for returning sessions).
  char bytes[sizeof(key)];
  std::memcpy(bytes, &key, sizeof(key));
  return static_cast<std::size_t>(fnv1a64(std::string(bytes, sizeof(key))) %
                                  config_.shards);
}

Router::TenantGroup* Router::find_tenant(
    const std::string& tenant_name) const {
  // tenants_ is immutable after construction, so lookups need no lock.
  const auto it = tenants_.find(tenant_name);
  return it != tenants_.end() ? it->second.get() : nullptr;
}

Response Router::serve(const std::string& tenant_name, std::uint64_t key,
                       const Vec& obs, Priority priority, double deadline_us) {
  TenantGroup* group = find_tenant(tenant_name);
  DARL_CHECK(group != nullptr,
             "router has no tenant '" << tenant_name
                                      << "' (tenants are fixed at "
                                         "construction)");
  Stopwatch stopwatch;
  if (obs::metrics_enabled()) group->requests_ctr->add(1);
  BatchScheduler& scheduler = *group->shards[shard_for(key)];

  // Admission order: quota first (a tenant over its quota is shed work no
  // matter how idle the shard is), then priority shedding against the
  // target shard's live queue depth.
  const std::size_t quota = group->quota.load(std::memory_order_relaxed);
  const bool counted = quota > 0;
  if (counted &&
      group->in_flight.fetch_add(1, std::memory_order_relaxed) + 1 > quota) {
    group->in_flight.fetch_sub(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) group->rejected_quota_ctr->add(1);
    Response response;
    response.outcome = Outcome::RejectedQuota;
    response.latency_us = stopwatch.seconds() * 1e6;
    return response;
  }

  if (scheduler.queue_depth() >=
      group->shed_depth[static_cast<std::size_t>(priority)]) {
    if (counted) group->in_flight.fetch_sub(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
      group->shed_ctr[static_cast<std::size_t>(priority)]->add(1);
    }
    Response response;
    response.outcome = Outcome::Shed;
    response.latency_us = stopwatch.seconds() * 1e6;
    return response;
  }

  Response response = scheduler.serve(obs, deadline_us);
  if (counted) group->in_flight.fetch_sub(1, std::memory_order_relaxed);
  return response;
}

void Router::set_quota(const std::string& tenant_name, std::size_t quota) {
  TenantGroup* group = find_tenant(tenant_name);
  DARL_CHECK(group != nullptr,
             "router has no tenant '" << tenant_name << "'");
  group->quota.store(quota, std::memory_order_relaxed);
}

void Router::shutdown() {
  for (auto& [name, group] : tenants_) {
    for (auto& scheduler : group->shards) scheduler->shutdown();
  }
}

std::vector<std::string> Router::tenant_names() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, group] : tenants_) names.push_back(name);
  return names;
}

bool Router::tenant_quantized(const std::string& tenant_name) const {
  const TenantGroup* group = find_tenant(tenant_name);
  return group != nullptr && group->quantized;
}

BatchScheduler* Router::shard(const std::string& tenant_name,
                              std::size_t index) {
  TenantGroup* group = find_tenant(tenant_name);
  if (group == nullptr || index >= group->shards.size()) return nullptr;
  return group->shards[index].get();
}

std::size_t Router::queue_depth(const std::string& tenant_name,
                                std::size_t index) const {
  const TenantGroup* group = find_tenant(tenant_name);
  DARL_CHECK(group != nullptr && index < group->shards.size(),
             "queue_depth: unknown tenant/shard");
  return group->shards[index]->queue_depth();
}

}  // namespace darl::serve
