// darl/linalg/thread_pool.hpp
//
// Persistent worker pool for the blocked gemm schedule (DESIGN.md §16).
// One process-wide pool, sized once from DARL_LINALG_THREADS (default 1 =
// no worker threads at all), hands fixed chunk indices to long-lived
// workers — no per-call thread spawn on the kernel hot path. The caller
// participates as worker 0, so a pool of width W spawns W-1 threads.
//
// Determinism contract: run(task, ctx) invokes task(ctx, w, width) exactly
// once for every w in [0, width). The gemm schedule derives a fixed,
// disjoint row range from (w, width), so the arithmetic performed — and
// therefore every output bit — is identical whether chunks execute on
// worker threads, or inline on the caller (width 1, nested call, or a
// concurrent gemm from another thread that found the pool busy).
//
// This is the ONLY sanctioned std::thread construction site under
// src/darl/linalg + src/darl/nn; darl_lint enforces that (see
// tools/lint_engine.hpp, "thread-outside-pool").

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "darl/common/thread_safety.hpp"

namespace darl::linalg {

/// Process-wide persistent worker pool. Thread-safe: concurrent run()
/// calls are serialized by an atomic busy flag — the loser executes its
/// chunks inline (bitwise-identical results either way). configure() must
/// only be called at quiescent points (no run() in flight); benches and
/// tests use it to sweep widths.
class ThreadPool {
 public:
  /// Chunk function: invoked as task(ctx, w, width) for each worker index
  /// w in [0, width). Must not call ThreadPool::run (a nested call would
  /// fall back to inline execution, which is correct but defeats the
  /// point) and must confine writes to chunk-owned data.
  using Task = void (*)(void* ctx, std::size_t worker, std::size_t width);

  /// The singleton pool, sized from DARL_LINALG_THREADS on first use.
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current width (>= 1). Width 1 means no worker threads exist.
  std::size_t width() const { return width_; }

  /// Join all workers and restart at `width` (clamped to [1, 64]).
  /// Not thread-safe against run(); call only while the pool is idle.
  void configure(std::size_t width);

  /// Execute task(ctx, w, width) for every w. Worker threads take
  /// w in [1, width); the calling thread runs w = 0, then blocks until
  /// all chunks are done. If the pool is busy with another run (nested or
  /// concurrent caller), every chunk runs inline on this thread instead.
  void run(Task task, void* ctx);

 private:
  ThreadPool();

  void start_workers() DARL_REQUIRES(mutex_);
  void stop_workers();
  void worker_loop(std::size_t w);

  std::size_t width_ = 1;  ///< set by ctor/configure while idle, read-only during run
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< signals a new epoch to workers
  std::condition_variable done_cv_;   ///< signals pending_ == 0 to the caller
  std::uint64_t epoch_ DARL_GUARDED_BY(mutex_) = 0;
  Task task_ DARL_GUARDED_BY(mutex_) = nullptr;
  void* ctx_ DARL_GUARDED_BY(mutex_) = nullptr;
  std::size_t pending_ DARL_GUARDED_BY(mutex_) = 0;
  bool stopping_ DARL_GUARDED_BY(mutex_) = false;

  /// run() serializer: losers execute inline rather than blocking, so a
  /// nested or concurrent gemm can never deadlock on the pool.
  std::atomic<bool> busy_{false};
};

/// Width requested by DARL_LINALG_THREADS (>= 1; 1 when unset/invalid).
std::size_t env_thread_width();

}  // namespace darl::linalg
