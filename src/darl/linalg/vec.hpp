// darl/linalg/vec.hpp
//
// Dense vector type and BLAS-1-style kernels shared by the ODE integrators
// and the neural-network layers. A plain std::vector<double> is used as the
// storage type so callers can interoperate with the standard library freely.

#pragma once

#include <cstddef>
#include <vector>

namespace darl {

/// Dense column vector of doubles.
using Vec = std::vector<double>;

/// y += alpha * x (sizes must match).
void axpy(double alpha, const Vec& x, Vec& y);

/// Element-wise sum; sizes must match.
Vec add(const Vec& a, const Vec& b);

/// Element-wise difference a - b; sizes must match.
Vec sub(const Vec& a, const Vec& b);

/// alpha * x.
Vec scaled(const Vec& x, double alpha);

/// In-place scale x *= alpha.
void scale(Vec& x, double alpha);

/// Dot product; sizes must match.
double dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double norm2(const Vec& x);

/// Infinity norm (max absolute element); 0 for empty vectors.
double norm_inf(const Vec& x);

/// Element-wise product; sizes must match.
Vec hadamard(const Vec& a, const Vec& b);

/// Clamp every element into [lo, hi].
Vec clamped(const Vec& x, double lo, double hi);

/// True when every element is finite.
bool all_finite(const Vec& x);

/// Weighted RMS norm used by adaptive ODE error control:
/// sqrt(mean((x_i / scale_i)^2)). Sizes must match; scale_i must be > 0.
double rms_norm_scaled(const Vec& x, const Vec& scale);

}  // namespace darl
