#include "darl/linalg/vec.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"

namespace darl {

void axpy(double alpha, const Vec& x, Vec& y) {
  DARL_CHECK(x.size() == y.size(), "axpy size mismatch " << x.size() << " vs " << y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vec add(const Vec& a, const Vec& b) {
  DARL_CHECK(a.size() == b.size(), "add size mismatch " << a.size() << " vs " << b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec sub(const Vec& a, const Vec& b) {
  DARL_CHECK(a.size() == b.size(), "sub size mismatch " << a.size() << " vs " << b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec scaled(const Vec& x, double alpha) {
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = alpha * x[i];
  return out;
}

void scale(Vec& x, double alpha) {
  for (double& v : x) v *= alpha;
}

double dot(const Vec& a, const Vec& b) {
  DARL_CHECK(a.size() == b.size(), "dot size mismatch " << a.size() << " vs " << b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vec& x) { return std::sqrt(dot(x, x)); }

double norm_inf(const Vec& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

Vec hadamard(const Vec& a, const Vec& b) {
  DARL_CHECK(a.size() == b.size(),
             "hadamard size mismatch " << a.size() << " vs " << b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Vec clamped(const Vec& x, double lo, double hi) {
  DARL_CHECK(lo <= hi, "clamped bounds inverted");
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::clamp(x[i], lo, hi);
  return out;
}

bool all_finite(const Vec& x) {
  return std::all_of(x.begin(), x.end(), [](double v) { return std::isfinite(v); });
}

double rms_norm_scaled(const Vec& x, const Vec& scl) {
  DARL_CHECK(x.size() == scl.size(),
             "rms_norm_scaled size mismatch " << x.size() << " vs " << scl.size());
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    DARL_CHECK(scl[i] > 0.0, "non-positive error scale at index " << i);
    const double r = x[i] / scl[i];
    s += r * r;
  }
  return std::sqrt(s / static_cast<double>(x.size()));
}

}  // namespace darl
