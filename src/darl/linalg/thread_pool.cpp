#include "darl/linalg/thread_pool.hpp"

#include <cstdlib>

namespace darl::linalg {

std::size_t env_thread_width() {
  const char* raw = std::getenv("DARL_LINALG_THREADS");
  if (raw == nullptr || raw[0] == '\0') return 1;
  char* end = nullptr;
  const unsigned long v = std::strtoul(raw, &end, 10);
  if (end == raw || v < 1) return 1;
  return v > 64 ? 64 : static_cast<std::size_t>(v);
}

ThreadPool& ThreadPool::instance() {
  // Meyer's singleton: constructed on first gemm that asks for it, joined
  // at static destruction. Width comes from the environment so the
  // determinism audit can run the same binary at 1 and 4 threads.
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  width_ = env_thread_width();
  start_workers();
}

ThreadPool::~ThreadPool() { stop_workers(); }

void ThreadPool::start_workers() {
  stopping_ = false;
  // Workers are born with seen == 0, so the epoch must restart at 0 too:
  // a stale epoch surviving a reconfigure would wake a fresh worker
  // straight into the previous run's task_/ctx_ — a dangling pointer to a
  // stack frame that returned long ago.
  epoch_ = 0;
  task_ = nullptr;
  ctx_ = nullptr;
  pending_ = 0;
  threads_.reserve(width_ > 0 ? width_ - 1 : 0);
  for (std::size_t w = 1; w < width_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void ThreadPool::configure(std::size_t width) {
  stop_workers();
  std::lock_guard<std::mutex> lock(mutex_);
  width_ = width < 1 ? 1 : (width > 64 ? 64 : width);
  start_workers();
}

void ThreadPool::worker_loop(std::size_t w) {
  std::uint64_t seen = 0;
  for (;;) {
    Task task = nullptr;
    void* ctx = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
      if (stopping_) return;
      seen = epoch_;
      task = task_;
      ctx = ctx_;
    }
    task(ctx, w, width_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(Task task, void* ctx) {
  const std::size_t width = width_;
  bool expected = false;
  if (width <= 1 ||
      !busy_.compare_exchange_strong(expected, true,
                                     std::memory_order_acquire)) {
    // Solo pool, nested call, or another thread's run() is in flight:
    // execute every chunk inline. Chunk w of width still covers exactly
    // the same row ranges, so the results are bitwise identical to the
    // threaded execution.
    for (std::size_t w = 0; w < width; ++w) task(ctx, w, width);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = task;
    ctx_ = ctx;
    pending_ = width - 1;
    ++epoch_;
    work_cv_.notify_all();
  }
  task(ctx, 0, width);  // the caller is worker 0
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
  }
  busy_.store(false, std::memory_order_release);
}

}  // namespace darl::linalg
