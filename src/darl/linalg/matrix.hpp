// darl/linalg/matrix.hpp
//
// Dense row-major matrix with the BLAS-2/3-lite kernels the neural-network
// substrate needs: matrix-vector products, rank-1 updates, and a batched
// GEMM that the nn::Mlp batch path is built on. The GEMM accumulates each
// output element over the contraction index in ascending order with a
// scalar accumulator — exactly the summation order of matvec/matvec_t/
// add_outer — so batched and per-sample results are bitwise identical.

#pragma once

#include <cstddef>

#include "darl/linalg/vec.hpp"

namespace darl {

class Rng;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Unchecked element access (row-major).
  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked element access; throws darl::InvalidArgument.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Flat row-major storage (e.g. for optimizers and serialization).
  Vec& data() { return data_; }
  const Vec& data() const { return data_; }

  /// Pointer to the start of row `r` (unchecked).
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  /// Change the dimensions to rows x cols, reusing the existing storage.
  /// Element values are unspecified afterwards (callers overwrite). Never
  /// shrinks capacity, so repeated reshapes of a workspace matrix stop
  /// allocating once the largest shape has been seen.
  void reshape(std::size_t rows, std::size_t cols);

  /// Set every element to `value`.
  void fill(double value);

  /// y = A * x. Requires x.size() == cols(); returns a rows()-vector.
  Vec matvec(const Vec& x) const;

  /// y = A^T * x. Requires x.size() == rows(); returns a cols()-vector.
  Vec matvec_t(const Vec& x) const;

  /// A += alpha * u * v^T. Requires u.size() == rows(), v.size() == cols().
  void add_outer(double alpha, const Vec& u, const Vec& v);

  /// this += alpha * other (same shape).
  void add_scaled(double alpha, const Matrix& other);

  /// C += alpha * op(A) * op(B), where op is the identity or the transpose.
  /// C must be pre-shaped to op(A).rows x op(B).cols; the only scratch is a
  /// thread-local packing buffer that stops growing once the largest shape
  /// has been seen. Each C element accumulates over the contraction index
  /// in ascending order (seeded from the existing C value), matching the
  /// matvec / matvec_t / add_outer summation order bit for bit — across
  /// flavours, K-panel blocking, operand packing, AND the thread count:
  /// large products are row-partitioned over the persistent
  /// linalg::ThreadPool (width from DARL_LINALG_THREADS, default 1) with
  /// fixed disjoint row ownership per worker, so results are bitwise
  /// identical at any width. Products below a volume threshold stay on the
  /// calling thread (batch-1 latency). The opt-in fast-math tier
  /// (DARL_FAST_MATH=1 / set_fast_math) swaps the inner sweeps for
  /// AVX2+FMA versions with the same term order but fused rounding — see
  /// DESIGN.md §16 for the divergence bound; campaigns force it off.
  static void gemm(double alpha, const Matrix& a, bool trans_a,
                   const Matrix& b, bool trans_b, Matrix& c);

  /// C = A * B (shapes must be compatible). Routed through gemm.
  static Matrix multiply(const Matrix& a, const Matrix& b);

  /// Transposed copy.
  Matrix transposed() const;

  /// Transpose into a caller-owned workspace (reshaped to cols x rows, no
  /// allocation once the workspace has its capacity). Lets hot paths trade
  /// a strided gemm operand for a one-off transposed copy.
  void transpose_into(Matrix& out) const;

  /// Fill with He/Kaiming-style scaled normal draws: N(0, gain/sqrt(cols)).
  /// Used for layer weight initialization.
  void randomize_kaiming(Rng& rng, double gain = 1.0);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vec data_;
};

/// Toggle the opt-in fast-math gemm tier at runtime. Takes effect only on
/// CPUs with AVX2+FMA (silently stays off otherwise). The process default
/// is DARL_FAST_MATH=1 in the environment; darl_study calls
/// set_fast_math(false) unconditionally so campaign arithmetic is always
/// the strict tier.
void set_fast_math(bool on);

/// Whether gemm is currently using the fused-multiply-add sweeps.
bool fast_math_active();

/// m(r, c) += bias[c] for every row r. Requires bias.size() == m.cols().
/// Identical per row to axpy(1.0, bias, z) on a matvec result.
void add_bias(Matrix& m, const Vec& bias);

/// Element-wise tanh / rectifier over the whole matrix, in place. Same
/// scalar functions the per-sample MLP activation path applies.
void apply_tanh(Matrix& m);
void apply_relu(Matrix& m);

}  // namespace darl
