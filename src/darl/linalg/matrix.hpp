// darl/linalg/matrix.hpp
//
// Dense row-major matrix with the BLAS-2/3-lite kernels the neural-network
// substrate needs (matrix-vector products, rank-1 updates, small GEMMs).

#pragma once

#include <cstddef>

#include "darl/linalg/vec.hpp"

namespace darl {

class Rng;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Unchecked element access (row-major).
  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked element access; throws darl::InvalidArgument.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Flat row-major storage (e.g. for optimizers and serialization).
  Vec& data() { return data_; }
  const Vec& data() const { return data_; }

  /// Set every element to `value`.
  void fill(double value);

  /// y = A * x. Requires x.size() == cols(); returns a rows()-vector.
  Vec matvec(const Vec& x) const;

  /// y = A^T * x. Requires x.size() == rows(); returns a cols()-vector.
  Vec matvec_t(const Vec& x) const;

  /// A += alpha * u * v^T. Requires u.size() == rows(), v.size() == cols().
  void add_outer(double alpha, const Vec& u, const Vec& v);

  /// this += alpha * other (same shape).
  void add_scaled(double alpha, const Matrix& other);

  /// C = A * B (shapes must be compatible).
  static Matrix multiply(const Matrix& a, const Matrix& b);

  /// Transposed copy.
  Matrix transposed() const;

  /// Fill with He/Kaiming-style scaled normal draws: N(0, gain/sqrt(cols)).
  /// Used for layer weight initialization.
  void randomize_kaiming(Rng& rng, double gain = 1.0);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vec data_;
};

}  // namespace darl
