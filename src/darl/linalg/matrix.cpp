#include "darl/linalg/matrix.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/linalg/thread_pool.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define DARL_LINALG_X86 1
#include <immintrin.h>
#else
#define DARL_LINALG_X86 0
#endif

namespace darl {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  DARL_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

double& Matrix::at(std::size_t r, std::size_t c) {
  DARL_CHECK(r < rows_ && c < cols_,
             "matrix index (" << r << "," << c << ") out of " << rows_ << "x" << cols_);
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  DARL_CHECK(r < rows_ && c < cols_,
             "matrix index (" << r << "," << c << ") out of " << rows_ << "x" << cols_);
  return (*this)(r, c);
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  DARL_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::fill(double value) {
  for (double& v : data_) v = value;
}

Vec Matrix::matvec(const Vec& x) const {
  DARL_CHECK(x.size() == cols_, "matvec: x has " << x.size() << ", cols " << cols_);
  Vec y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vec Matrix::matvec_t(const Vec& x) const {
  DARL_CHECK(x.size() == rows_, "matvec_t: x has " << x.size() << ", rows " << rows_);
  Vec y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void Matrix::add_outer(double alpha, const Vec& u, const Vec& v) {
  DARL_CHECK(u.size() == rows_ && v.size() == cols_,
             "add_outer shape mismatch: u " << u.size() << ", v " << v.size()
                                            << " vs " << rows_ << "x" << cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = data_.data() + r * cols_;
    const double au = alpha * u[r];
    for (std::size_t c = 0; c < cols_; ++c) row[c] += au * v[c];
  }
}

void Matrix::add_scaled(double alpha, const Matrix& other) {
  DARL_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

namespace {

// ---------------------------------------------------------------------------
// Blocked gemm kernels (DESIGN.md §16).
//
// Every kernel below accumulates each C element over the contraction index
// t in ascending order with a scalar chain seeded from the C value already
// in memory. K-panel boundaries re-seed the chain from C between panels —
// the same additions in the same order, just interleaved with other rows —
// so blocking, packing, and the row-partition parallel schedule are all
// bitwise-neutral. Only the opt-in fast-math tier (fused multiply-add)
// rounds differently, and only by the documented divergence bound.
// ---------------------------------------------------------------------------

/// K-panel length: the contraction index is walked in chunks of this many
/// terms so a panel of the row-major operand stays cache-hot across all of
/// a worker's C rows (64 terms x 256 cols x 8 bytes = 128 KiB, L2-sized).
constexpr std::size_t kPanelK = 64;

/// m*n*k volume below which gemm stays on the calling thread: chunk
/// handoff costs more than it saves (batch-1 serve latency must not
/// regress). 64x64x64 (the training batch shape) sits above it.
constexpr std::size_t kParallelMinVolume = 131072;

/// NT output rows below which packing op(B) costs more than the packed
/// sweep saves; small shapes use the register-blocked dot-product kernel.
constexpr std::size_t kNtPackMinRows = 8;

/// Fast-math tier switch. Enabled only when DARL_FAST_MATH=1 AND the CPU
/// has AVX2+FMA; darl_study force-disables it so campaign CSVs are exempt
/// by construction.
bool cpu_has_fast_math() {
#if DARL_LINALG_X86 && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool fast_math_env_default() {
  const char* raw = std::getenv("DARL_FAST_MATH");
  return raw != nullptr && raw[0] == '1' && cpu_has_fast_math();
}

std::atomic<bool> g_fast_math{fast_math_env_default()};

/// Per-thread packing scratch for the NT flavour's transposed copy of
/// op(B). Thread-local (gemm may run concurrently from serve replicas and
/// parallel trials); grows to the largest k x n seen and then stops
/// allocating. Growth lives here, outside the kernel bodies, per the
/// darl_lint no-alloc-in-kernel rule.
double* pack_workspace(std::size_t need) {
  thread_local Vec buf;
  if (buf.size() < need) buf.resize(need);
  return buf.data();
}

/// dst (k x n row-major) = B^T, with B n x k row-major. Pure layout
/// change: every value is copied, none recomputed.
void pack_b_transposed(const double* b_base, std::size_t b_stride,
                       std::size_t n, std::size_t k, double* dst) {
  for (std::size_t j = 0; j < n; ++j) {
    const double* brow = b_base + j * b_stride;
    for (std::size_t t = 0; t < k; ++t) dst[t * n + j] = brow[t];
  }
}

// Inner sweeps: four ascending-t terms land on each C element per pass
// (chained scalar adds), then a single-t remainder. The j loop is
// contiguous in both operands, so it vectorizes without reassociating any
// per-element sum.
inline void sweep4(double av0, double av1, double av2, double av3,
                   const double* b0, const double* b1, const double* b2,
                   const double* b3, double* crow, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    double cj = crow[j];
    cj += av0 * b0[j];
    cj += av1 * b1[j];
    cj += av2 * b2[j];
    cj += av3 * b3[j];
    crow[j] = cj;
  }
}

inline void sweep1(double av, const double* b, double* crow, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) crow[j] += av * b[j];
}

#if DARL_LINALG_X86
// Fast-math sweeps: identical term order, but each term lands via a fused
// multiply-add (one rounding instead of two). Compiled for AVX2+FMA via
// the target attribute so the base build flags stay untouched; only
// reachable when fast_math_active().
__attribute__((target("avx2,fma"))) void sweep4_fma(
    double av0, double av1, double av2, double av3, const double* b0,
    const double* b1, const double* b2, const double* b3, double* crow,
    std::size_t n) {
  const __m256d v0 = _mm256_set1_pd(av0);
  const __m256d v1 = _mm256_set1_pd(av1);
  const __m256d v2 = _mm256_set1_pd(av2);
  const __m256d v3 = _mm256_set1_pd(av3);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d c = _mm256_loadu_pd(crow + j);
    c = _mm256_fmadd_pd(v0, _mm256_loadu_pd(b0 + j), c);
    c = _mm256_fmadd_pd(v1, _mm256_loadu_pd(b1 + j), c);
    c = _mm256_fmadd_pd(v2, _mm256_loadu_pd(b2 + j), c);
    c = _mm256_fmadd_pd(v3, _mm256_loadu_pd(b3 + j), c);
    _mm256_storeu_pd(crow + j, c);
  }
  for (; j < n; ++j) {
    double cj = crow[j];
    cj = std::fma(av0, b0[j], cj);
    cj = std::fma(av1, b1[j], cj);
    cj = std::fma(av2, b2[j], cj);
    cj = std::fma(av3, b3[j], cj);
    crow[j] = cj;
  }
}

__attribute__((target("avx2,fma"))) void sweep1_fma(double av,
                                                    const double* b,
                                                    double* crow,
                                                    std::size_t n) {
  const __m256d v = _mm256_set1_pd(av);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d c = _mm256_loadu_pd(crow + j);
    c = _mm256_fmadd_pd(v, _mm256_loadu_pd(b + j), c);
    _mm256_storeu_pd(crow + j, c);
  }
  for (; j < n; ++j) crow[j] = std::fma(av, b[j], crow[j]);
}
#endif  // DARL_LINALG_X86

/// One worker's share of C += alpha * A * B, with B a row-major k x n
/// operand — the true B of the NN flavour, or the packed B^T of the NT
/// flavour. K-panel outermost: one panel of B stays hot across all of the
/// worker's rows; each row's scalar chain re-seeds from C at the panel
/// boundary, preserving the ascending-t order exactly.
void rowmajor_rows(double alpha, const double* a_base, std::size_t a_stride,
                   const double* b_base, std::size_t n, std::size_t k,
                   double* c_base, std::size_t c_stride, std::size_t r0,
                   std::size_t r1, bool fm) {
  for (std::size_t t0 = 0; t0 < k; t0 += kPanelK) {
    const std::size_t t1 = std::min(k, t0 + kPanelK);
    for (std::size_t r = r0; r < r1; ++r) {
      const double* pa = a_base + r * a_stride;
      double* crow = c_base + r * c_stride;
      std::size_t t = t0;
#if DARL_LINALG_X86
      if (fm) {
        for (; t + 4 <= t1; t += 4) {
          sweep4_fma(alpha * pa[t + 0], alpha * pa[t + 1], alpha * pa[t + 2],
                     alpha * pa[t + 3], b_base + (t + 0) * n,
                     b_base + (t + 1) * n, b_base + (t + 2) * n,
                     b_base + (t + 3) * n, crow, n);
        }
        for (; t < t1; ++t) sweep1_fma(alpha * pa[t], b_base + t * n, crow, n);
        continue;
      }
#else
      (void)fm;
#endif
      for (; t + 4 <= t1; t += 4) {
        sweep4(alpha * pa[t + 0], alpha * pa[t + 1], alpha * pa[t + 2],
               alpha * pa[t + 3], b_base + (t + 0) * n, b_base + (t + 1) * n,
               b_base + (t + 2) * n, b_base + (t + 3) * n, crow, n);
      }
      for (; t < t1; ++t) sweep1(alpha * pa[t], b_base + t * n, crow, n);
    }
  }
}

/// One worker's share of C += alpha * A^T * B (rows [r0, r1) of C). The
/// t-outer rank-1 form already streams B once, so no K-panel is needed;
/// four t's per sweep keep each C row in registers, ascending order
/// unchanged.
void tn_rows(double alpha, const double* a_base, std::size_t a_stride,
             const double* b_base, std::size_t b_stride, std::size_t n,
             std::size_t k, double* c_base, std::size_t c_stride,
             std::size_t r0, std::size_t r1, bool fm) {
  std::size_t t = 0;
  for (; t + 4 <= k; t += 4) {
    const double* arow0 = a_base + (t + 0) * a_stride;
    const double* arow1 = a_base + (t + 1) * a_stride;
    const double* arow2 = a_base + (t + 2) * a_stride;
    const double* arow3 = a_base + (t + 3) * a_stride;
    const double* brow0 = b_base + (t + 0) * b_stride;
    const double* brow1 = b_base + (t + 1) * b_stride;
    const double* brow2 = b_base + (t + 2) * b_stride;
    const double* brow3 = b_base + (t + 3) * b_stride;
    for (std::size_t r = r0; r < r1; ++r) {
      double* crow = c_base + r * c_stride;
#if DARL_LINALG_X86
      if (fm) {
        sweep4_fma(alpha * arow0[r], alpha * arow1[r], alpha * arow2[r],
                   alpha * arow3[r], brow0, brow1, brow2, brow3, crow, n);
        continue;
      }
#endif
      sweep4(alpha * arow0[r], alpha * arow1[r], alpha * arow2[r],
             alpha * arow3[r], brow0, brow1, brow2, brow3, crow, n);
    }
  }
  for (; t < k; ++t) {
    const double* arow = a_base + t * a_stride;
    const double* brow = b_base + t * b_stride;
    for (std::size_t r = r0; r < r1; ++r) {
      double* crow = c_base + r * c_stride;
#if DARL_LINALG_X86
      if (fm) {
        sweep1_fma(alpha * arow[r], brow, crow, n);
        continue;
      }
#else
      (void)fm;
#endif
      sweep1(alpha * arow[r], brow, crow, n);
    }
  }
}

/// Register-blocked dot-product NT kernel for small outputs (m below
/// kNtPackMinRows): four C columns share one ascending-t pass, each with
/// its own scalar chain. This is the PR-4 kernel shape; packing would cost
/// as much as the whole product at these sizes. Always scalar — the
/// fast-math tier only covers the blocked shapes.
void nt_small(double alpha, const double* a_base, std::size_t a_stride,
              const double* b_base, std::size_t b_stride, std::size_t m,
              std::size_t n, std::size_t k, double* c_base,
              std::size_t c_stride) {
  for (std::size_t r = 0; r < m; ++r) {
    const double* pa = a_base + r * a_stride;
    double* crow = c_base + r * c_stride;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* pb0 = b_base + (j + 0) * b_stride;
      const double* pb1 = b_base + (j + 1) * b_stride;
      const double* pb2 = b_base + (j + 2) * b_stride;
      const double* pb3 = b_base + (j + 3) * b_stride;
      double acc0 = crow[j + 0];
      double acc1 = crow[j + 1];
      double acc2 = crow[j + 2];
      double acc3 = crow[j + 3];
      for (std::size_t t = 0; t < k; ++t) {
        const double av = alpha * pa[t];
        acc0 += av * pb0[t];
        acc1 += av * pb1[t];
        acc2 += av * pb2[t];
        acc3 += av * pb3[t];
      }
      crow[j + 0] = acc0;
      crow[j + 1] = acc1;
      crow[j + 2] = acc2;
      crow[j + 3] = acc3;
    }
    for (; j < n; ++j) {
      const double* pb = b_base + j * b_stride;
      double acc = crow[j];
      for (std::size_t t = 0; t < k; ++t) acc += (alpha * pa[t]) * pb[t];
      crow[j] = acc;
    }
  }
}

/// Chunk context handed to the pool: everything a worker needs to find
/// its fixed row range and run the right flavour over it.
struct ChunkCtx {
  double alpha = 1.0;
  const double* a_base = nullptr;
  std::size_t a_stride = 0;
  const double* b_base = nullptr;
  std::size_t b_stride = 0;
  double* c_base = nullptr;
  std::size_t c_stride = 0;
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  bool tn = false;
  bool fm = false;
};

/// Fixed tile ownership: worker w of `width` owns C rows
/// [m*w/width, m*(w+1)/width) — contiguous, disjoint, and a pure function
/// of (w, width), so the schedule (and every write) is identical across
/// runs and across threaded vs inline execution.
void gemm_chunk(void* vctx, std::size_t w, std::size_t width) {
  const ChunkCtx& ctx = *static_cast<const ChunkCtx*>(vctx);
  const std::size_t r0 = (ctx.m * w) / width;
  const std::size_t r1 = (ctx.m * (w + 1)) / width;
  if (r0 >= r1) return;
  if (ctx.tn) {
    tn_rows(ctx.alpha, ctx.a_base, ctx.a_stride, ctx.b_base, ctx.b_stride,
            ctx.n, ctx.k, ctx.c_base, ctx.c_stride, r0, r1, ctx.fm);
  } else {
    rowmajor_rows(ctx.alpha, ctx.a_base, ctx.a_stride, ctx.b_base, ctx.n,
                  ctx.k, ctx.c_base, ctx.c_stride, r0, r1, ctx.fm);
  }
}

/// Route a chunk context through the pool when the product volume clears
/// the parallel threshold, inline otherwise. Inline is chunk (0, 1) — the
/// whole row range in one call.
void dispatch_chunks(ChunkCtx& ctx) {
  linalg::ThreadPool& pool = linalg::ThreadPool::instance();
  if (pool.width() > 1 && ctx.m * ctx.n * ctx.k >= kParallelMinVolume) {
    pool.run(&gemm_chunk, &ctx);
  } else {
    gemm_chunk(&ctx, 0, 1);
  }
}

}  // namespace

void set_fast_math(bool on) {
  g_fast_math.store(on && cpu_has_fast_math(), std::memory_order_relaxed);
}

bool fast_math_active() {
  return g_fast_math.load(std::memory_order_relaxed);
}

void Matrix::gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
                  bool trans_b, Matrix& c) {
  const std::size_t m = trans_a ? a.cols_ : a.rows_;
  const std::size_t kdim = trans_a ? a.rows_ : a.cols_;
  const std::size_t n = trans_b ? b.rows_ : b.cols_;
  const std::size_t bk = trans_b ? b.cols_ : b.rows_;
  DARL_CHECK(kdim == bk, "gemm inner-dimension mismatch: op(A) is "
                             << m << "x" << kdim << ", op(B) is " << bk << "x"
                             << n);
  DARL_CHECK(c.rows_ == m && c.cols_ == n,
             "gemm output shape mismatch: C is " << c.rows_ << "x" << c.cols_
                                                 << ", expected " << m << "x"
                                                 << n);
  const double* a_base = a.data_.data();
  const double* b_base = b.data_.data();
  double* c_base = c.data_.data();
  const bool fm = fast_math_active();
  ChunkCtx ctx;
  ctx.alpha = alpha;
  ctx.c_base = c_base;
  ctx.c_stride = c.cols_;
  ctx.m = m;
  ctx.n = n;
  ctx.k = kdim;
  ctx.fm = fm;
  if (!trans_a && trans_b) {
    // C += alpha * A * B^T — the forward-pass shape (Z = X * W^T). Large
    // outputs pack op(B) into a k x n panel buffer once (layout only, no
    // arithmetic) and run the vectorizable row-major core over it; small
    // outputs keep the dot-product kernel. Same per-element order either
    // way.
    if (m < kNtPackMinRows) {
      nt_small(alpha, a_base, a.cols_, b_base, b.cols_, m, n, kdim, c_base,
               c.cols_);
      return;
    }
    double* pack = pack_workspace(kdim * n);
    pack_b_transposed(b_base, b.cols_, n, kdim, pack);
    ctx.a_base = a_base;
    ctx.a_stride = a.cols_;
    ctx.b_base = pack;
    ctx.b_stride = n;
    dispatch_chunks(ctx);
  } else if (trans_a && !trans_b) {
    // C += alpha * A^T * B — the weight-gradient shape (dW += delta^T * X).
    // Rank-1 t-outer updates, parallel over C row ranges.
    ctx.a_base = a_base;
    ctx.a_stride = a.cols_;
    ctx.b_base = b_base;
    ctx.b_stride = b.cols_;
    ctx.tn = true;
    dispatch_chunks(ctx);
  } else if (!trans_a && !trans_b) {
    // C += alpha * A * B — the input-gradient shape (dX = delta * W). B is
    // already row-major k x n; the packed-NT core runs on it directly.
    ctx.a_base = a_base;
    ctx.a_stride = a.cols_;
    ctx.b_base = b_base;
    ctx.b_stride = b.cols_;
    dispatch_chunks(ctx);
  } else {
    // C += alpha * A^T * B^T — unused by the network; generic strided form.
    for (std::size_t r = 0; r < m; ++r) {
      const double* pa = a_base + r;
      double* crow = c_base + r * c.cols_;
      for (std::size_t j = 0; j < n; ++j) {
        const double* pb = b_base + j * b.cols_;
        double acc = crow[j];
        for (std::size_t t = 0; t < kdim; ++t)
          acc += (alpha * pa[t * a.cols_]) * pb[t];
        crow[j] = acc;
      }
    }
  }
}

Matrix Matrix::multiply(const Matrix& a, const Matrix& b) {
  DARL_CHECK(a.cols_ == b.rows_,
             "multiply shape mismatch: " << a.rows_ << "x" << a.cols_ << " * "
                                         << b.rows_ << "x" << b.cols_);
  Matrix c(a.rows_, b.cols_, 0.0);
  gemm(1.0, a, false, b, false, c);
  return c;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

void Matrix::transpose_into(Matrix& out) const {
  out.reshape(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = data_.data() + r * cols_;
    double* dst = out.data_.data() + r;
    for (std::size_t c = 0; c < cols_; ++c) dst[c * rows_] = src[c];
  }
}

void Matrix::randomize_kaiming(Rng& rng, double gain) {
  DARL_CHECK(gain > 0.0, "non-positive init gain " << gain);
  const double stddev = gain / std::sqrt(static_cast<double>(cols_));
  for (double& v : data_) v = rng.normal(0.0, stddev);
}

void add_bias(Matrix& m, const Vec& bias) {
  DARL_CHECK(bias.size() == m.cols(),
             "add_bias: bias has " << bias.size() << ", cols " << m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.row(r);
    for (std::size_t c = 0; c < bias.size(); ++c) row[c] += bias[c];
  }
}

void apply_tanh(Matrix& m) {
  for (double& v : m.data()) v = std::tanh(v);
}

void apply_relu(Matrix& m) {
  for (double& v : m.data()) v = v > 0.0 ? v : 0.0;
}

}  // namespace darl
