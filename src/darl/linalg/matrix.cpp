#include "darl/linalg/matrix.hpp"

#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  DARL_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

double& Matrix::at(std::size_t r, std::size_t c) {
  DARL_CHECK(r < rows_ && c < cols_,
             "matrix index (" << r << "," << c << ") out of " << rows_ << "x" << cols_);
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  DARL_CHECK(r < rows_ && c < cols_,
             "matrix index (" << r << "," << c << ") out of " << rows_ << "x" << cols_);
  return (*this)(r, c);
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  DARL_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::fill(double value) {
  for (double& v : data_) v = value;
}

Vec Matrix::matvec(const Vec& x) const {
  DARL_CHECK(x.size() == cols_, "matvec: x has " << x.size() << ", cols " << cols_);
  Vec y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vec Matrix::matvec_t(const Vec& x) const {
  DARL_CHECK(x.size() == rows_, "matvec_t: x has " << x.size() << ", rows " << rows_);
  Vec y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void Matrix::add_outer(double alpha, const Vec& u, const Vec& v) {
  DARL_CHECK(u.size() == rows_ && v.size() == cols_,
             "add_outer shape mismatch: u " << u.size() << ", v " << v.size()
                                            << " vs " << rows_ << "x" << cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = data_.data() + r * cols_;
    const double au = alpha * u[r];
    for (std::size_t c = 0; c < cols_; ++c) row[c] += au * v[c];
  }
}

void Matrix::add_scaled(double alpha, const Matrix& other) {
  DARL_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
                  bool trans_b, Matrix& c) {
  const std::size_t m = trans_a ? a.cols_ : a.rows_;
  const std::size_t kdim = trans_a ? a.rows_ : a.cols_;
  const std::size_t n = trans_b ? b.rows_ : b.cols_;
  const std::size_t bk = trans_b ? b.cols_ : b.rows_;
  DARL_CHECK(kdim == bk, "gemm inner-dimension mismatch: op(A) is "
                             << m << "x" << kdim << ", op(B) is " << bk << "x"
                             << n);
  DARL_CHECK(c.rows_ == m && c.cols_ == n,
             "gemm output shape mismatch: C is " << c.rows_ << "x" << c.cols_
                                                 << ", expected " << m << "x"
                                                 << n);
  const double* a_base = a.data_.data();
  const double* b_base = b.data_.data();
  double* c_base = c.data_.data();
  // Each transpose flavour gets the loop order that walks both operands
  // contiguously. All of them accumulate every C element over the
  // contraction index t in ascending order, so the flavours are bitwise
  // interchangeable with each other and with matvec / matvec_t / add_outer;
  // only the traversal of independent elements differs.
  if (!trans_a && trans_b) {
    // C += alpha * A * B^T — the forward-pass shape (Z = X * W^T). Both A
    // and B rows are contiguous along t. Register-blocked 2 rows x 4
    // columns: eight output elements share one pass over the contraction
    // index, each with its own scalar accumulator, so every element's
    // summation order is exactly the unblocked one — the blocking only
    // widens the set of independent chains in flight (the t-reduction
    // cannot be vectorized without reassociation, so throughput comes
    // from independent accumulators).
    std::size_t r = 0;
    for (; r + 2 <= m; r += 2) {
      const double* pa0 = a_base + (r + 0) * a.cols_;
      const double* pa1 = a_base + (r + 1) * a.cols_;
      double* crow0 = c_base + (r + 0) * c.cols_;
      double* crow1 = c_base + (r + 1) * c.cols_;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const double* pb0 = b_base + (j + 0) * b.cols_;
        const double* pb1 = b_base + (j + 1) * b.cols_;
        const double* pb2 = b_base + (j + 2) * b.cols_;
        const double* pb3 = b_base + (j + 3) * b.cols_;
        double a00 = crow0[j + 0], a01 = crow0[j + 1];
        double a02 = crow0[j + 2], a03 = crow0[j + 3];
        double a10 = crow1[j + 0], a11 = crow1[j + 1];
        double a12 = crow1[j + 2], a13 = crow1[j + 3];
        for (std::size_t t = 0; t < kdim; ++t) {
          const double av0 = alpha * pa0[t];
          const double av1 = alpha * pa1[t];
          const double b0 = pb0[t], b1 = pb1[t], b2 = pb2[t], b3 = pb3[t];
          a00 += av0 * b0;
          a01 += av0 * b1;
          a02 += av0 * b2;
          a03 += av0 * b3;
          a10 += av1 * b0;
          a11 += av1 * b1;
          a12 += av1 * b2;
          a13 += av1 * b3;
        }
        crow0[j + 0] = a00;
        crow0[j + 1] = a01;
        crow0[j + 2] = a02;
        crow0[j + 3] = a03;
        crow1[j + 0] = a10;
        crow1[j + 1] = a11;
        crow1[j + 2] = a12;
        crow1[j + 3] = a13;
      }
      for (; j < n; ++j) {
        const double* pb = b_base + j * b.cols_;
        double acc0 = crow0[j];
        double acc1 = crow1[j];
        for (std::size_t t = 0; t < kdim; ++t) {
          const double bt = pb[t];
          acc0 += (alpha * pa0[t]) * bt;
          acc1 += (alpha * pa1[t]) * bt;
        }
        crow0[j] = acc0;
        crow1[j] = acc1;
      }
    }
    for (; r < m; ++r) {
      const double* pa = a_base + r * a.cols_;
      double* crow = c_base + r * c.cols_;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const double* pb0 = b_base + (j + 0) * b.cols_;
        const double* pb1 = b_base + (j + 1) * b.cols_;
        const double* pb2 = b_base + (j + 2) * b.cols_;
        const double* pb3 = b_base + (j + 3) * b.cols_;
        double acc0 = crow[j + 0];
        double acc1 = crow[j + 1];
        double acc2 = crow[j + 2];
        double acc3 = crow[j + 3];
        for (std::size_t t = 0; t < kdim; ++t) {
          const double av = alpha * pa[t];
          acc0 += av * pb0[t];
          acc1 += av * pb1[t];
          acc2 += av * pb2[t];
          acc3 += av * pb3[t];
        }
        crow[j + 0] = acc0;
        crow[j + 1] = acc1;
        crow[j + 2] = acc2;
        crow[j + 3] = acc3;
      }
      for (; j < n; ++j) {
        const double* pb = b_base + j * b.cols_;
        double acc = crow[j];
        for (std::size_t t = 0; t < kdim; ++t) acc += (alpha * pa[t]) * pb[t];
        crow[j] = acc;
      }
    }
  } else if (trans_a && !trans_b) {
    // C += alpha * A^T * B — the weight-gradient shape (dW += delta^T * X).
    // Expressed as rank-1 updates (t outermost) so every access is
    // row-contiguous; blocking four t's per sweep keeps each C row in
    // registers across four consecutive updates. Element (r, j) still
    // accumulates its alpha*A(t,r)*B(t,j) terms one at a time in
    // ascending-t order, exactly like repeated add_outer calls.
    std::size_t t = 0;
    for (; t + 4 <= kdim; t += 4) {
      const double* arow0 = a_base + (t + 0) * a.cols_;
      const double* arow1 = a_base + (t + 1) * a.cols_;
      const double* arow2 = a_base + (t + 2) * a.cols_;
      const double* arow3 = a_base + (t + 3) * a.cols_;
      const double* brow0 = b_base + (t + 0) * b.cols_;
      const double* brow1 = b_base + (t + 1) * b.cols_;
      const double* brow2 = b_base + (t + 2) * b.cols_;
      const double* brow3 = b_base + (t + 3) * b.cols_;
      for (std::size_t r = 0; r < m; ++r) {
        const double av0 = alpha * arow0[r];
        const double av1 = alpha * arow1[r];
        const double av2 = alpha * arow2[r];
        const double av3 = alpha * arow3[r];
        double* crow = c_base + r * c.cols_;
        for (std::size_t j = 0; j < n; ++j) {
          double cj = crow[j];
          cj += av0 * brow0[j];
          cj += av1 * brow1[j];
          cj += av2 * brow2[j];
          cj += av3 * brow3[j];
          crow[j] = cj;
        }
      }
    }
    for (; t < kdim; ++t) {
      const double* arow = a_base + t * a.cols_;
      const double* brow = b_base + t * b.cols_;
      for (std::size_t r = 0; r < m; ++r) {
        const double av = alpha * arow[r];
        double* crow = c_base + r * c.cols_;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!trans_a && !trans_b) {
    // C += alpha * A * B — the input-gradient shape (dX = delta * W).
    // i-t-j order with four t's per sweep: the inner j sweep is contiguous
    // in B and C, the C element stays in a register across the four
    // chained adds, and per element the t terms still land one at a time
    // in ascending order.
    for (std::size_t r = 0; r < m; ++r) {
      const double* pa = a_base + r * a.cols_;
      double* crow = c_base + r * c.cols_;
      std::size_t t = 0;
      for (; t + 4 <= kdim; t += 4) {
        const double av0 = alpha * pa[t + 0];
        const double av1 = alpha * pa[t + 1];
        const double av2 = alpha * pa[t + 2];
        const double av3 = alpha * pa[t + 3];
        const double* brow0 = b_base + (t + 0) * b.cols_;
        const double* brow1 = b_base + (t + 1) * b.cols_;
        const double* brow2 = b_base + (t + 2) * b.cols_;
        const double* brow3 = b_base + (t + 3) * b.cols_;
        for (std::size_t j = 0; j < n; ++j) {
          double cj = crow[j];
          cj += av0 * brow0[j];
          cj += av1 * brow1[j];
          cj += av2 * brow2[j];
          cj += av3 * brow3[j];
          crow[j] = cj;
        }
      }
      for (; t < kdim; ++t) {
        const double av = alpha * pa[t];
        const double* brow = b_base + t * b.cols_;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    // C += alpha * A^T * B^T — unused by the network; generic strided form.
    for (std::size_t r = 0; r < m; ++r) {
      const double* pa = a_base + r;
      double* crow = c_base + r * c.cols_;
      for (std::size_t j = 0; j < n; ++j) {
        const double* pb = b_base + j * b.cols_;
        double acc = crow[j];
        for (std::size_t t = 0; t < kdim; ++t)
          acc += (alpha * pa[t * a.cols_]) * pb[t];
        crow[j] = acc;
      }
    }
  }
}

Matrix Matrix::multiply(const Matrix& a, const Matrix& b) {
  DARL_CHECK(a.cols_ == b.rows_,
             "multiply shape mismatch: " << a.rows_ << "x" << a.cols_ << " * "
                                         << b.rows_ << "x" << b.cols_);
  Matrix c(a.rows_, b.cols_, 0.0);
  gemm(1.0, a, false, b, false, c);
  return c;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

void Matrix::transpose_into(Matrix& out) const {
  out.reshape(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = data_.data() + r * cols_;
    double* dst = out.data_.data() + r;
    for (std::size_t c = 0; c < cols_; ++c) dst[c * rows_] = src[c];
  }
}

void Matrix::randomize_kaiming(Rng& rng, double gain) {
  DARL_CHECK(gain > 0.0, "non-positive init gain " << gain);
  const double stddev = gain / std::sqrt(static_cast<double>(cols_));
  for (double& v : data_) v = rng.normal(0.0, stddev);
}

void add_bias(Matrix& m, const Vec& bias) {
  DARL_CHECK(bias.size() == m.cols(),
             "add_bias: bias has " << bias.size() << ", cols " << m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.row(r);
    for (std::size_t c = 0; c < bias.size(); ++c) row[c] += bias[c];
  }
}

void apply_tanh(Matrix& m) {
  for (double& v : m.data()) v = std::tanh(v);
}

void apply_relu(Matrix& m) {
  for (double& v : m.data()) v = v > 0.0 ? v : 0.0;
}

}  // namespace darl
