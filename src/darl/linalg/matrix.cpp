#include "darl/linalg/matrix.hpp"

#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  DARL_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

double& Matrix::at(std::size_t r, std::size_t c) {
  DARL_CHECK(r < rows_ && c < cols_,
             "matrix index (" << r << "," << c << ") out of " << rows_ << "x" << cols_);
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  DARL_CHECK(r < rows_ && c < cols_,
             "matrix index (" << r << "," << c << ") out of " << rows_ << "x" << cols_);
  return (*this)(r, c);
}

void Matrix::fill(double value) {
  for (double& v : data_) v = value;
}

Vec Matrix::matvec(const Vec& x) const {
  DARL_CHECK(x.size() == cols_, "matvec: x has " << x.size() << ", cols " << cols_);
  Vec y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vec Matrix::matvec_t(const Vec& x) const {
  DARL_CHECK(x.size() == rows_, "matvec_t: x has " << x.size() << ", rows " << rows_);
  Vec y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void Matrix::add_outer(double alpha, const Vec& u, const Vec& v) {
  DARL_CHECK(u.size() == rows_ && v.size() == cols_,
             "add_outer shape mismatch: u " << u.size() << ", v " << v.size()
                                            << " vs " << rows_ << "x" << cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = data_.data() + r * cols_;
    const double au = alpha * u[r];
    for (std::size_t c = 0; c < cols_; ++c) row[c] += au * v[c];
  }
}

void Matrix::add_scaled(double alpha, const Matrix& other) {
  DARL_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

Matrix Matrix::multiply(const Matrix& a, const Matrix& b) {
  DARL_CHECK(a.cols_ == b.rows_,
             "multiply shape mismatch: " << a.rows_ << "x" << a.cols_ << " * "
                                         << b.rows_ << "x" << b.cols_);
  Matrix c(a.rows_, b.cols_, 0.0);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data_.data() + k * b.cols_;
      double* crow = c.data_.data() + i * c.cols_;
      for (std::size_t j = 0; j < b.cols_; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

void Matrix::randomize_kaiming(Rng& rng, double gain) {
  DARL_CHECK(gain > 0.0, "non-positive init gain " << gain);
  const double stddev = gain / std::sqrt(static_cast<double>(cols_));
  for (double& v : data_) v = rng.normal(0.0, stddev);
}

}  // namespace darl
