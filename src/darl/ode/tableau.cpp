#include "darl/ode/tableau.hpp"

#include <cmath>

#include "darl/common/error.hpp"

namespace darl::ode {

void ButcherTableau::validate() const {
  const std::size_t s = stages();
  DARL_CHECK(s > 0, "tableau '" << name << "' has no stages");
  DARL_CHECK(a.size() == s, "tableau '" << name << "': a has " << a.size()
                                        << " rows, expected " << s);
  DARL_CHECK(c.size() == s, "tableau '" << name << "': c has " << c.size()
                                        << " entries, expected " << s);
  if (embedded()) {
    DARL_CHECK(b_low.size() == s, "tableau '" << name << "': b_low has "
                                              << b_low.size() << " entries");
  }
  for (std::size_t i = 0; i < s; ++i) {
    DARL_CHECK(a[i].size() == i,
               "tableau '" << name << "': row " << i << " has " << a[i].size()
                           << " coefficients, expected " << i << " (explicit method)");
    double row_sum = 0.0;
    for (double v : a[i]) row_sum += v;
    DARL_CHECK(std::abs(row_sum - c[i]) < 1e-12,
               "tableau '" << name << "': row-sum condition violated at stage "
                           << i << " (" << row_sum << " vs c=" << c[i] << ")");
  }
  double b_sum = 0.0;
  for (double v : b) b_sum += v;
  DARL_CHECK(std::abs(b_sum - 1.0) < 1e-12,
             "tableau '" << name << "': b does not sum to 1 (" << b_sum << ")");
  if (embedded()) {
    double bl_sum = 0.0;
    for (double v : b_low) bl_sum += v;
    DARL_CHECK(std::abs(bl_sum - 1.0) < 1e-12,
               "tableau '" << name << "': b_low does not sum to 1 (" << bl_sum << ")");
  }
}

ButcherTableau rk4_classic() {
  ButcherTableau t;
  t.name = "RK4";
  t.order = 4;
  t.error_order = 0;
  t.fsal = false;
  t.a = {{}, {0.5}, {0.0, 0.5}, {0.0, 0.0, 1.0}};
  t.b = {1.0 / 6, 1.0 / 3, 1.0 / 3, 1.0 / 6};
  t.c = {0.0, 0.5, 0.5, 1.0};
  t.validate();
  return t;
}

ButcherTableau bogacki_shampine23() {
  ButcherTableau t;
  t.name = "RK23 (Bogacki-Shampine)";
  t.order = 3;
  t.error_order = 2;
  t.fsal = true;
  t.a = {{},
         {1.0 / 2},
         {0.0, 3.0 / 4},
         {2.0 / 9, 1.0 / 3, 4.0 / 9}};
  t.b = {2.0 / 9, 1.0 / 3, 4.0 / 9, 0.0};
  t.b_low = {7.0 / 24, 1.0 / 4, 1.0 / 3, 1.0 / 8};
  t.c = {0.0, 1.0 / 2, 3.0 / 4, 1.0};
  t.validate();
  return t;
}

ButcherTableau dormand_prince45() {
  ButcherTableau t;
  t.name = "RK45 (Dormand-Prince)";
  t.order = 5;
  t.error_order = 4;
  t.fsal = true;
  t.a = {{},
         {1.0 / 5},
         {3.0 / 40, 9.0 / 40},
         {44.0 / 45, -56.0 / 15, 32.0 / 9},
         {19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
         {9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176,
          -5103.0 / 18656},
         {35.0 / 384, 0.0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784,
          11.0 / 84}};
  t.b = {35.0 / 384, 0.0,          500.0 / 1113, 125.0 / 192,
         -2187.0 / 6784, 11.0 / 84, 0.0};
  t.b_low = {5179.0 / 57600,    0.0,         7571.0 / 16695, 393.0 / 640,
             -92097.0 / 339200, 187.0 / 2100, 1.0 / 40};
  t.c = {0.0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1.0, 1.0};
  t.validate();
  return t;
}

}  // namespace darl::ode
