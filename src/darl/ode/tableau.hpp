// darl/ode/tableau.hpp
//
// Butcher tableaus for explicit Runge-Kutta methods.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace darl::ode {

/// Coefficients of an explicit (embedded) Runge-Kutta method.
///
/// `a` is stored as a dense lower-triangular stage matrix: a[i][j] for
/// j < i is the weight of stage j in the computation of stage i.
/// `b` are the high-order solution weights, `b_low` the embedded lower-order
/// weights used for error estimation (empty for non-embedded methods), and
/// `c` the stage abscissae.
struct ButcherTableau {
  std::string name;
  int order = 0;        ///< order of the solution advanced with b
  int error_order = 0;  ///< order of the embedded solution (0 if none)
  bool fsal = false;    ///< first-same-as-last: stage s of step n equals
                        ///< stage 1 of step n+1, saving one evaluation
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  std::vector<double> b_low;
  std::vector<double> c;

  std::size_t stages() const { return b.size(); }
  bool embedded() const { return !b_low.empty(); }

  /// Validate structural consistency (shapes, row-sum condition
  /// sum_j a[i][j] == c[i] within tolerance). Throws darl::Error on failure.
  void validate() const;
};

/// Classic fixed-step RK4 (non-embedded).
ButcherTableau rk4_classic();

/// Bogacki-Shampine 3(2) pair — SciPy's "RK23". FSAL, 4 stages.
ButcherTableau bogacki_shampine23();

/// Dormand-Prince 5(4) pair — SciPy's "RK45". FSAL, 7 stages.
ButcherTableau dormand_prince45();

}  // namespace darl::ode
