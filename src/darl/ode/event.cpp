#include "darl/ode/event.hpp"

#include "darl/common/error.hpp"

namespace darl::ode {

EventResult integrate_with_event(Integrator& integrator, const Rhs& rhs,
                                 double t0, double t1, Vec& y,
                                 const EventFn& event, double time_tolerance) {
  DARL_CHECK(t1 >= t0, "integrate_with_event with t1 < t0");
  DARL_CHECK(time_tolerance > 0.0, "non-positive event time tolerance");

  if (event(t0, y) <= 0.0) {
    return EventResult{true, t0};  // already past the event
  }

  const Vec y_start = y;
  integrator.integrate(rhs, t0, t1, y);
  if (event(t1, y) > 0.0) {
    return EventResult{false, t1};  // no crossing in the interval
  }

  // Bisection: maintain [lo, hi] with g(lo) > 0 >= g(hi); each probe
  // re-integrates from the interval start so any integrator works.
  double lo = t0;
  double hi = t1;
  Vec y_hi = y;
  while (hi - lo > time_tolerance) {
    const double mid = 0.5 * (lo + hi);
    Vec y_mid = y_start;
    integrator.integrate(rhs, t0, mid, y_mid);
    if (event(mid, y_mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
      y_hi = std::move(y_mid);
    }
  }
  y = std::move(y_hi);
  return EventResult{true, hi};
}

}  // namespace darl::ode
