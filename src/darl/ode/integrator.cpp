#include "darl/ode/integrator.hpp"

#include "darl/common/error.hpp"
#include "darl/obs/metrics.hpp"
#include "darl/ode/explicit_rk.hpp"
#include "darl/ode/gbs.hpp"
#include "darl/ode/tableau.hpp"

namespace darl::ode {

void Integrator::integrate(const Rhs& rhs, double t0, double t1, Vec& y) {
  const std::size_t rhs_before = stats_.n_rhs_evals;
  const std::size_t steps_before = stats_.n_steps;
  do_integrate(rhs, t0, t1, y);
  DARL_COUNTER_ADD("ode.rhs_evals", stats_.n_rhs_evals - rhs_before);
  DARL_COUNTER_ADD("ode.steps", stats_.n_steps - steps_before);
}

const char* rk_order_name(RkOrder order) {
  switch (order) {
    case RkOrder::Order3: return "RK3";
    case RkOrder::Order5: return "RK5";
    case RkOrder::Order8: return "RK8";
  }
  return "RK?";
}

std::unique_ptr<Integrator> make_integrator(RkOrder order,
                                            const AdaptiveOptions& options) {
  switch (order) {
    case RkOrder::Order3:
      return std::make_unique<ExplicitRk>(bogacki_shampine23(), options);
    case RkOrder::Order5:
      return std::make_unique<ExplicitRk>(dormand_prince45(), options);
    case RkOrder::Order8:
      return std::make_unique<GbsExtrapolation>(4, options);
  }
  throw InvalidArgument("unknown RkOrder");
}

}  // namespace darl::ode
