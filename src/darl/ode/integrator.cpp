#include "darl/ode/integrator.hpp"

#include "darl/common/error.hpp"
#include "darl/ode/explicit_rk.hpp"
#include "darl/ode/gbs.hpp"
#include "darl/ode/tableau.hpp"

namespace darl::ode {

const char* rk_order_name(RkOrder order) {
  switch (order) {
    case RkOrder::Order3: return "RK3";
    case RkOrder::Order5: return "RK5";
    case RkOrder::Order8: return "RK8";
  }
  return "RK?";
}

std::unique_ptr<Integrator> make_integrator(RkOrder order,
                                            const AdaptiveOptions& options) {
  switch (order) {
    case RkOrder::Order3:
      return std::make_unique<ExplicitRk>(bogacki_shampine23(), options);
    case RkOrder::Order5:
      return std::make_unique<ExplicitRk>(dormand_prince45(), options);
    case RkOrder::Order8:
      return std::make_unique<GbsExtrapolation>(4, options);
  }
  throw InvalidArgument("unknown RkOrder");
}

}  // namespace darl::ode
