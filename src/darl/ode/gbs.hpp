// darl/ode/gbs.hpp
//
// Gragg-Bulirsch-Stoer extrapolation integrator.
//
// The methodology's "Runge-Kutta order 8" choice maps to this method: the
// modified (Gragg) midpoint rule has an even error expansion, so polynomial
// extrapolation over k substep counts yields a method of order 2k with
// *computed* coefficients — no hand-transcribed high-order tableau. With
// k = 4 this is an order-8 integrator with an embedded order-6 estimate,
// occupying the same accuracy/cost point as DOP853 in SciPy (the paper's
// order-8 option). The substitution is recorded in DESIGN.md §2.

#pragma once

#include <string>

#include "darl/ode/integrator.hpp"

namespace darl::ode {

/// Order-2k Gragg-Bulirsch-Stoer extrapolation integrator with adaptive
/// step-size control from the embedded order-2(k-1) column.
class GbsExtrapolation final : public Integrator {
 public:
  /// `half_order` is k; the method order is 2k. Requires k >= 2.
  GbsExtrapolation(int half_order, AdaptiveOptions options);

  void do_integrate(const Rhs& rhs, double t0, double t1, Vec& y) override;
  int order() const override { return 2 * k_; }
  const std::string& name() const override { return name_; }

  const AdaptiveOptions& options() const { return options_; }

 private:
  int k_;
  AdaptiveOptions options_;
  std::string name_;
  std::vector<std::size_t> substeps_;  // n_j = 2j, j = 1..k

  // Workspace reused across substeps.
  Vec z_prev_, z_curr_, z_next_, deriv_, err_scale_, y_err_;

  /// Modified-midpoint transfer over one macro step H with n substeps,
  /// writing the (smoothed) result into `out`. Costs n + 2 RHS evaluations.
  void modified_midpoint(const Rhs& rhs, double t, const Vec& y, double H,
                         std::size_t n, Vec& out);
};

}  // namespace darl::ode
