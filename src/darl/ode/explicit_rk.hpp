// darl/ode/explicit_rk.hpp
//
// Adaptive embedded explicit Runge-Kutta integrator driven by a Butcher
// tableau, plus a fixed-step driver for non-embedded methods.

#pragma once

#include <string>

#include "darl/ode/integrator.hpp"
#include "darl/ode/tableau.hpp"

namespace darl::ode {

/// Adaptive integrator for an embedded explicit RK pair. Implements the
/// standard PI-free controller: error is measured in the mixed
/// atol/rtol-scaled RMS norm; the next step is
/// h * clamp(safety * err^(-1/(q+1)), min_factor, max_factor) with q the
/// embedded order. FSAL pairs reuse the last stage across accepted steps.
class ExplicitRk final : public Integrator {
 public:
  /// The tableau must be embedded (b_low non-empty) and valid.
  ExplicitRk(ButcherTableau tableau, AdaptiveOptions options);

  void do_integrate(const Rhs& rhs, double t0, double t1, Vec& y) override;
  int order() const override { return tableau_.order; }
  const std::string& name() const override { return tableau_.name; }

  const AdaptiveOptions& options() const { return options_; }

 private:
  ButcherTableau tableau_;
  AdaptiveOptions options_;

  // Workspace reused across steps to avoid per-step allocation.
  std::vector<Vec> k_;
  Vec y_stage_, y_new_, y_err_, err_scale_;

  /// One trial step of size h from (t, y); fills y_new_ and y_err_ and
  /// returns the scaled error norm. `k0_valid` signals a reusable FSAL
  /// first stage already stored in k_[0].
  double attempt_step(const Rhs& rhs, double t, const Vec& y, double h,
                      bool k0_valid);
};

/// Fixed-step explicit RK driver (used with rk4_classic in tests and
/// microbenchmarks). Takes `n_steps` equal steps over the interval.
class FixedStepRk final : public Integrator {
 public:
  FixedStepRk(ButcherTableau tableau, std::size_t n_steps);

  void do_integrate(const Rhs& rhs, double t0, double t1, Vec& y) override;
  int order() const override { return tableau_.order; }
  const std::string& name() const override { return tableau_.name; }

  std::size_t n_steps() const { return n_steps_; }

 private:
  ButcherTableau tableau_;
  std::size_t n_steps_;
  std::vector<Vec> k_;
  Vec y_stage_;
};

}  // namespace darl::ode
