#include "darl/ode/gbs.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"

namespace darl::ode {

GbsExtrapolation::GbsExtrapolation(int half_order, AdaptiveOptions options)
    : k_(half_order), options_(options) {
  DARL_CHECK(k_ >= 2, "GBS needs half_order >= 2, got " << k_);
  DARL_CHECK(options_.rtol > 0.0 && options_.atol > 0.0,
             "tolerances must be positive");
  name_ = "GBS extrapolation (order " + std::to_string(2 * k_) + ")";
  substeps_.resize(static_cast<std::size_t>(k_));
  for (int j = 0; j < k_; ++j)
    substeps_[static_cast<std::size_t>(j)] = static_cast<std::size_t>(2 * (j + 1));
}

void GbsExtrapolation::modified_midpoint(const Rhs& rhs, double t, const Vec& y,
                                         double H, std::size_t n, Vec& out) {
  const std::size_t dim = y.size();
  const double h = H / static_cast<double>(n);
  z_prev_.resize(dim);
  z_curr_.resize(dim);
  z_next_.resize(dim);
  deriv_.resize(dim);

  // z0 = y; z1 = z0 + h f(t, z0)
  z_prev_ = y;
  rhs(t, z_prev_, deriv_);
  ++stats_.n_rhs_evals;
  z_curr_ = z_prev_;
  axpy(h, deriv_, z_curr_);

  // z_{m+1} = z_{m-1} + 2h f(t + mh, z_m)
  for (std::size_t m = 1; m < n; ++m) {
    rhs(t + static_cast<double>(m) * h, z_curr_, deriv_);
    ++stats_.n_rhs_evals;
    z_next_ = z_prev_;
    axpy(2.0 * h, deriv_, z_next_);
    z_prev_.swap(z_curr_);
    z_curr_.swap(z_next_);
  }

  // Gragg smoothing: S = (z_{n-1} + z_n + h f(t+H, z_n)) / 2 — kills the
  // oscillating parasitic mode and keeps the even error expansion.
  rhs(t + H, z_curr_, deriv_);
  ++stats_.n_rhs_evals;
  out.resize(dim);
  for (std::size_t i = 0; i < dim; ++i)
    out[i] = 0.5 * (z_prev_[i] + z_curr_[i] + h * deriv_[i]);
}

void GbsExtrapolation::do_integrate(const Rhs& rhs, double t0, double t1, Vec& y) {
  DARL_CHECK(!y.empty(), "integrate with empty state");
  DARL_CHECK(t1 >= t0, "integrate with t1 < t0");
  if (t1 == t0) return;

  const std::size_t kk = static_cast<std::size_t>(k_);
  const double span = t1 - t0;
  const double h_max = options_.h_max > 0.0 ? options_.h_max : span;
  double H = std::min({options_.h_initial, h_max, span});
  double t = t0;
  std::size_t taken = 0;
  const std::size_t dim = y.size();

  // rows[j][l] = T_{j,l} for the Aitken-Neville tableau of this macro step.
  std::vector<std::vector<Vec>> rows(kk);

  while (t < t1) {
    DARL_CHECK(taken < options_.max_steps,
               "GBS exceeded " << options_.max_steps << " steps");
    ++taken;
    const bool last = (t + H >= t1 - 1e-14 * span);
    const double H_eff = last ? (t1 - t) : H;

    for (std::size_t j = 0; j < kk; ++j) {
      rows[j].assign(j + 1, Vec());
      modified_midpoint(rhs, t, y, H_eff, substeps_[j], rows[j][0]);
      for (std::size_t l = 1; l <= j; ++l) {
        const double r = static_cast<double>(substeps_[j]) /
                         static_cast<double>(substeps_[j - l]);
        const double denom = r * r - 1.0;
        rows[j][l].resize(dim);
        for (std::size_t i = 0; i < dim; ++i) {
          rows[j][l][i] = rows[j][l - 1][i] +
                          (rows[j][l - 1][i] - rows[j - 1][l - 1][i]) / denom;
        }
      }
    }

    const Vec& high = rows[kk - 1][kk - 1];  // order 2k
    const Vec& low = rows[kk - 1][kk - 2];   // order 2(k-1)
    DARL_CHECK(all_finite(high), "state became non-finite at t=" << t);

    y_err_.resize(dim);
    err_scale_.resize(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      y_err_[i] = high[i] - low[i];
      err_scale_[i] = options_.atol +
                      options_.rtol * std::max(std::abs(y[i]), std::abs(high[i]));
    }
    const double err = rms_norm_scaled(y_err_, err_scale_);

    // Controller exponent uses the embedded order 2(k-1): q + 1 = 2k - 1.
    const double q1 = 2.0 * static_cast<double>(k_) - 1.0;
    double factor;
    if (err == 0.0) {
      factor = options_.max_factor;
    } else {
      factor = std::clamp(options_.safety * std::pow(err, -1.0 / q1),
                          options_.min_factor, options_.max_factor);
    }

    if (err <= 1.0 || H_eff <= options_.h_min) {
      t = last ? t1 : t + H_eff;
      y = high;
      ++stats_.n_steps;
      H = std::max(std::min(H_eff * factor, h_max), options_.h_min);
    } else {
      ++stats_.n_rejected;
      H = std::max(H_eff * factor, options_.h_min);
    }
  }
}

}  // namespace darl::ode
