#include "darl/ode/explicit_rk.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"

namespace darl::ode {

ExplicitRk::ExplicitRk(ButcherTableau tableau, AdaptiveOptions options)
    : tableau_(std::move(tableau)), options_(options) {
  tableau_.validate();
  DARL_CHECK(tableau_.embedded(),
             "ExplicitRk requires an embedded pair; '" << tableau_.name
                                                       << "' has none");
  DARL_CHECK(options_.rtol > 0.0 && options_.atol > 0.0,
             "tolerances must be positive");
  DARL_CHECK(options_.safety > 0.0 && options_.safety < 1.0,
             "safety factor must be in (0,1)");
  DARL_CHECK(options_.min_factor > 0.0 &&
                 options_.min_factor < options_.max_factor,
             "step factors inconsistent");
  k_.resize(tableau_.stages());
}

double ExplicitRk::attempt_step(const Rhs& rhs, double t, const Vec& y,
                                double h, bool k0_valid) {
  const std::size_t s = tableau_.stages();
  const std::size_t n = y.size();
  for (auto& k : k_) k.resize(n);
  y_stage_.resize(n);
  y_new_.resize(n);
  y_err_.resize(n);
  err_scale_.resize(n);

  if (!k0_valid) {
    rhs(t, y, k_[0]);
    ++stats_.n_rhs_evals;
  }
  for (std::size_t i = 1; i < s; ++i) {
    y_stage_ = y;
    for (std::size_t j = 0; j < i; ++j) {
      const double aij = tableau_.a[i][j];
      if (aij != 0.0) axpy(h * aij, k_[j], y_stage_);
    }
    rhs(t + tableau_.c[i] * h, y_stage_, k_[i]);
    ++stats_.n_rhs_evals;
  }

  y_new_ = y;
  for (std::size_t i = 0; i < s; ++i) {
    if (tableau_.b[i] != 0.0) axpy(h * tableau_.b[i], k_[i], y_new_);
  }
  // Error = h * sum_i (b_i - b_low_i) k_i.
  std::fill(y_err_.begin(), y_err_.end(), 0.0);
  for (std::size_t i = 0; i < s; ++i) {
    const double d = tableau_.b[i] - tableau_.b_low[i];
    if (d != 0.0) axpy(h * d, k_[i], y_err_);
  }
  for (std::size_t i = 0; i < n; ++i) {
    err_scale_[i] = options_.atol +
                    options_.rtol * std::max(std::abs(y[i]), std::abs(y_new_[i]));
  }
  return rms_norm_scaled(y_err_, err_scale_);
}

void ExplicitRk::do_integrate(const Rhs& rhs, double t0, double t1, Vec& y) {
  DARL_CHECK(!y.empty(), "integrate with empty state");
  DARL_CHECK(t1 >= t0, "integrate with t1 < t0");
  if (t1 == t0) return;

  const double span = t1 - t0;
  const double h_max = options_.h_max > 0.0 ? options_.h_max : span;
  double h = std::min({options_.h_initial, h_max, span});
  double t = t0;
  bool fsal_valid = false;
  const std::size_t s = tableau_.stages();
  std::size_t taken = 0;

  while (t < t1) {
    DARL_CHECK(taken < options_.max_steps,
               "integrator '" << tableau_.name << "' exceeded "
                              << options_.max_steps << " steps");
    ++taken;
    const bool last = (t + h >= t1 - 1e-14 * span);
    const double h_eff = last ? (t1 - t) : h;

    const double err = attempt_step(rhs, t, y, h_eff, fsal_valid);
    DARL_CHECK(all_finite(y_new_), "state became non-finite at t=" << t);

    const double q = static_cast<double>(tableau_.error_order);
    double factor;
    if (err == 0.0) {
      factor = options_.max_factor;
    } else {
      factor = std::clamp(options_.safety * std::pow(err, -1.0 / (q + 1.0)),
                          options_.min_factor, options_.max_factor);
    }

    if (err <= 1.0 || h_eff <= options_.h_min) {
      // Accept.
      t = last ? t1 : t + h_eff;
      y = y_new_;
      ++stats_.n_steps;
      if (tableau_.fsal) {
        k_[0] = k_[s - 1];
        fsal_valid = true;
      } else {
        fsal_valid = false;
      }
      h = std::min(h_eff * factor, h_max);
      h = std::max(h, options_.h_min);
    } else {
      // Reject and retry with a smaller step. k_[0] already holds f(t, y),
      // which is unchanged for the retry, so it can be reused.
      ++stats_.n_rejected;
      h = std::max(h_eff * factor, options_.h_min);
      fsal_valid = true;
    }
  }
}

FixedStepRk::FixedStepRk(ButcherTableau tableau, std::size_t n_steps)
    : tableau_(std::move(tableau)), n_steps_(n_steps) {
  tableau_.validate();
  DARL_CHECK(n_steps > 0, "FixedStepRk needs at least one step");
  k_.resize(tableau_.stages());
}

void FixedStepRk::do_integrate(const Rhs& rhs, double t0, double t1, Vec& y) {
  DARL_CHECK(!y.empty(), "integrate with empty state");
  DARL_CHECK(t1 >= t0, "integrate with t1 < t0");
  if (t1 == t0) return;
  const std::size_t s = tableau_.stages();
  const std::size_t n = y.size();
  for (auto& k : k_) k.resize(n);
  y_stage_.resize(n);

  const double h = (t1 - t0) / static_cast<double>(n_steps_);
  double t = t0;
  for (std::size_t step = 0; step < n_steps_; ++step) {
    rhs(t, y, k_[0]);
    ++stats_.n_rhs_evals;
    for (std::size_t i = 1; i < s; ++i) {
      y_stage_ = y;
      for (std::size_t j = 0; j < i; ++j) {
        const double aij = tableau_.a[i][j];
        if (aij != 0.0) axpy(h * aij, k_[j], y_stage_);
      }
      rhs(t + tableau_.c[i] * h, y_stage_, k_[i]);
      ++stats_.n_rhs_evals;
    }
    for (std::size_t i = 0; i < s; ++i) {
      if (tableau_.b[i] != 0.0) axpy(h * tableau_.b[i], k_[i], y);
    }
    ++stats_.n_steps;
    t = t0 + static_cast<double>(step + 1) * h;
  }
  DARL_CHECK(all_finite(y), "state became non-finite");
}

}  // namespace darl::ode
