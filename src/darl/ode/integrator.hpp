// darl/ode/integrator.hpp
//
// Abstract integrator interface and the factory keyed by RkOrder that the
// airdrop environment uses to honour its "Runge-Kutta order" parameter.

#pragma once

#include <memory>
#include <string>

#include "darl/ode/types.hpp"

namespace darl::ode {

/// An initial-value-problem integrator with cumulative statistics.
///
/// Integrators are stateful only in their statistics; integrate() itself is
/// re-entrant with respect to the problem. Not thread-safe: use one
/// integrator instance per worker thread.
class Integrator {
 public:
  virtual ~Integrator() = default;

  /// Advance `y` (in place) from t0 to t1 under the configured error
  /// control. Requires t1 >= t0 and a non-empty state. Throws darl::Error
  /// if the step limit is exhausted or the state becomes non-finite.
  /// Non-virtual: dispatches to do_integrate() and feeds the step/RHS-eval
  /// deltas to the darl::obs metrics registry when observability is on.
  void integrate(const Rhs& rhs, double t0, double t1, Vec& y);

  /// Nominal convergence order of the method.
  virtual int order() const = 0;

  /// Human-readable method name.
  virtual const std::string& name() const = 0;

  /// Cumulative statistics since construction or the last reset_stats().
  const IntegrationStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 protected:
  virtual void do_integrate(const Rhs& rhs, double t0, double t1, Vec& y) = 0;

  IntegrationStats stats_;
};

/// Create the integrator for a methodology-level Runge-Kutta order choice:
/// Order3 -> Bogacki-Shampine 3(2), Order5 -> Dormand-Prince 5(4),
/// Order8 -> Gragg-Bulirsch-Stoer extrapolation of order 8.
std::unique_ptr<Integrator> make_integrator(RkOrder order,
                                            const AdaptiveOptions& options = {});

}  // namespace darl::ode
