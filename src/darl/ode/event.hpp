// darl/ode/event.hpp
//
// Event localization for integrations that must stop at a state condition —
// the airdrop simulator's touchdown (altitude crossing zero) being the
// motivating case. Works with any Integrator by re-integrating from the
// interval start during bisection (no dense output required; interval
// lengths here are one control step, so the extra cost is bounded).

#pragma once

#include <functional>

#include "darl/ode/integrator.hpp"

namespace darl::ode {

/// Scalar event function g(t, y); an event fires when g's sign changes
/// from positive at t0 to non-positive during the interval.
using EventFn = std::function<double(double t, const Vec& y)>;

/// Result of integrate_with_event.
struct EventResult {
  bool triggered = false;
  double t_end = 0.0;  ///< event time if triggered, else t1
};

/// Advance `y` from t0 toward t1; when the event fires inside the interval,
/// stop at the crossing (localized by bisection to `time_tolerance`) and
/// leave `y` at the event state. Requires g(t0, y) > 0 for a meaningful
/// crossing; if g is already non-positive at t0 the event triggers
/// immediately at t0.
EventResult integrate_with_event(Integrator& integrator, const Rhs& rhs,
                                 double t0, double t1, Vec& y,
                                 const EventFn& event,
                                 double time_tolerance = 1e-3);

}  // namespace darl::ode
