// darl/ode/types.hpp
//
// Shared types for the ODE-integration substrate. The airdrop simulator
// integrates the canopy dynamics with one of three methods of orders 3, 5
// and 8 — the environment-specific parameter the paper studies — and the
// cluster cost model charges compute time per right-hand-side evaluation,
// so integrators keep exact evaluation statistics.

#pragma once

#include <cstddef>
#include <functional>

#include "darl/linalg/vec.hpp"

namespace darl::ode {

/// Right-hand side of an ODE system y' = f(t, y). The callee writes the
/// derivative into `dydt`, which is pre-sized to y.size().
using Rhs = std::function<void(double t, const Vec& y, Vec& dydt)>;

/// Counters describing one integration run (cumulative across calls until
/// reset). n_rhs_evals is the basis of the simulated compute-cost model.
struct IntegrationStats {
  std::size_t n_steps = 0;      ///< accepted steps
  std::size_t n_rejected = 0;   ///< rejected (error too large) steps
  std::size_t n_rhs_evals = 0;  ///< total right-hand-side evaluations

  void reset() { *this = IntegrationStats{}; }
};

/// Error-control and step-size options for adaptive integrators.
struct AdaptiveOptions {
  double rtol = 1e-6;       ///< relative tolerance
  double atol = 1e-8;       ///< absolute tolerance
  double h_initial = 1e-2;  ///< first trial step (clamped to the interval)
  double h_min = 1e-10;     ///< below this the step is accepted regardless
  double h_max = 0.0;       ///< 0 means "the whole remaining interval"
  double safety = 0.9;      ///< step controller safety factor
  double min_factor = 0.2;  ///< max shrink per step
  double max_factor = 10.0; ///< max growth per step
  std::size_t max_steps = 100000;  ///< hard cap; exceeded => darl::Error
};

/// The three integration orders exposed to the methodology, matching the
/// orders SciPy's solve_ivp offers (RK23, RK45, DOP853). Order 8 is realised
/// by Gragg-Bulirsch-Stoer extrapolation (same order, computed coefficients);
/// see DESIGN.md for the substitution note.
enum class RkOrder { Order3 = 3, Order5 = 5, Order8 = 8 };

/// Human-readable name for an RkOrder value.
const char* rk_order_name(RkOrder order);

}  // namespace darl::ode
