// darl/env/cartpole.hpp
//
// Classic-control CartPole-v1 environment (discrete actions), used by the
// examples and tests as a second gym case study — the paper's §III-B names
// gym environments as the canonical "case study" inputs to the methodology.

#pragma once

#include "darl/env/env.hpp"

namespace darl::env {

/// CartPole with the standard gym dynamics and termination rules:
/// +1 reward per step, episode ends when |x| > 2.4 or |theta| > 12 degrees.
/// Combine with TimeLimit (usually 500) for the -v1 behaviour.
class CartPoleEnv final : public EnvBase {
 public:
  CartPoleEnv();

  const BoxSpace& observation_space() const override { return obs_space_; }
  const ActionSpace& action_space() const override { return act_space_; }
  const std::string& name() const override { return name_; }
  double take_compute_cost() override;

 protected:
  Vec do_reset(Rng& rng) override;
  StepResult do_step(Rng& rng, const Vec& action) override;

 private:
  BoxSpace obs_space_;
  ActionSpace act_space_;
  std::string name_ = "CartPole";
  Vec state_;  // x, x_dot, theta, theta_dot
  double pending_cost_ = 0.0;
};

/// Factory for use with SyncVecEnv / backends.
EnvFactory make_cartpole_factory(std::size_t time_limit = 500);

}  // namespace darl::env
