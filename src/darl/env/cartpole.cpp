#include "darl/env/cartpole.hpp"

#include <cmath>
#include <numbers>

#include "darl/common/rng.hpp"
#include "darl/env/wrappers.hpp"

namespace darl::env {
namespace {

constexpr double kGravity = 9.8;
constexpr double kCartMass = 1.0;
constexpr double kPoleMass = 0.1;
constexpr double kTotalMass = kCartMass + kPoleMass;
constexpr double kPoleHalfLength = 0.5;
constexpr double kPoleMassLength = kPoleMass * kPoleHalfLength;
constexpr double kForceMag = 10.0;
constexpr double kDt = 0.02;
constexpr double kThetaLimit = 12.0 * 2.0 * std::numbers::pi / 360.0;
constexpr double kXLimit = 2.4;

}  // namespace

CartPoleEnv::CartPoleEnv()
    : obs_space_(4, -1e6, 1e6), act_space_(DiscreteSpace(2)) {}

Vec CartPoleEnv::do_reset(Rng& rng) {
  state_.assign(4, 0.0);
  for (double& v : state_) v = rng.uniform(-0.05, 0.05);
  return state_;
}

StepResult CartPoleEnv::do_step(Rng& rng, const Vec& action) {
  (void)rng;
  const std::size_t a = act_space_.discrete().decode(action);
  const double force = a == 1 ? kForceMag : -kForceMag;

  double x = state_[0], x_dot = state_[1], theta = state_[2], theta_dot = state_[3];
  const double cos_t = std::cos(theta);
  const double sin_t = std::sin(theta);
  const double temp =
      (force + kPoleMassLength * theta_dot * theta_dot * sin_t) / kTotalMass;
  const double theta_acc =
      (kGravity * sin_t - cos_t * temp) /
      (kPoleHalfLength * (4.0 / 3.0 - kPoleMass * cos_t * cos_t / kTotalMass));
  const double x_acc = temp - kPoleMassLength * theta_acc * cos_t / kTotalMass;

  // Semi-implicit Euler, as in the reference gym implementation.
  x += kDt * x_dot;
  x_dot += kDt * x_acc;
  theta += kDt * theta_dot;
  theta_dot += kDt * theta_acc;
  state_ = {x, x_dot, theta, theta_dot};
  pending_cost_ += 1.0;

  StepResult r;
  r.observation = state_;
  r.reward = 1.0;
  r.terminated = std::abs(x) > kXLimit || std::abs(theta) > kThetaLimit;
  return r;
}

double CartPoleEnv::take_compute_cost() {
  const double c = pending_cost_;
  pending_cost_ = 0.0;
  return c;
}

EnvFactory make_cartpole_factory(std::size_t time_limit) {
  return [time_limit]() -> std::unique_ptr<Env> {
    return std::make_unique<TimeLimit>(std::make_unique<CartPoleEnv>(),
                                       time_limit);
  };
}

}  // namespace darl::env
