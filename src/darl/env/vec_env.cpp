#include "darl/env/vec_env.hpp"

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::env {

SyncVecEnv::SyncVecEnv(const EnvFactory& factory, std::size_t n_envs,
                       std::uint64_t seed) {
  DARL_CHECK(n_envs > 0, "SyncVecEnv needs at least one sub-env");
  const Rng seeder(seed);
  envs_.reserve(n_envs);
  for (std::size_t i = 0; i < n_envs; ++i) {
    auto e = factory();
    DARL_CHECK(e != nullptr, "EnvFactory returned null");
    e->seed(seeder.split(i).seed());
    envs_.push_back(std::make_unique<EpisodeMonitor>(std::move(e)));
  }
}

std::vector<Vec> SyncVecEnv::reset() {
  std::vector<Vec> obs;
  obs.reserve(envs_.size());
  for (auto& e : envs_) obs.push_back(e->reset());
  return obs;
}

VecStepResult SyncVecEnv::step(const std::vector<Vec>& actions) {
  DARL_CHECK(actions.size() == envs_.size(),
             "got " << actions.size() << " actions for " << envs_.size()
                    << " envs");
  VecStepResult out;
  const std::size_t n = envs_.size();
  out.observation.resize(n);
  out.reward.resize(n);
  out.terminated.assign(n, false);
  out.truncated.assign(n, false);
  out.final_observation.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    StepResult r = envs_[i]->step(actions[i]);
    out.reward[i] = r.reward;
    out.terminated[i] = r.terminated;
    out.truncated[i] = r.truncated;
    if (r.done()) {
      out.final_observation[i] = std::move(r.observation);
      out.observation[i] = envs_[i]->reset();  // auto-reset
    } else {
      out.observation[i] = std::move(r.observation);
    }
  }
  return out;
}

const BoxSpace& SyncVecEnv::observation_space() const {
  return envs_.front()->observation_space();
}

const ActionSpace& SyncVecEnv::action_space() const {
  return envs_.front()->action_space();
}

const std::vector<EpisodeRecord>& SyncVecEnv::episodes(std::size_t i) const {
  DARL_CHECK(i < envs_.size(), "episode index out of range");
  return envs_[i]->episodes();
}

std::vector<EpisodeRecord> SyncVecEnv::all_episodes() const {
  std::vector<EpisodeRecord> all;
  for (const auto& e : envs_) {
    const auto& eps = e->episodes();
    all.insert(all.end(), eps.begin(), eps.end());
  }
  return all;
}

double SyncVecEnv::take_compute_cost() {
  double total = 0.0;
  for (auto& e : envs_) total += e->take_compute_cost();
  return total;
}

}  // namespace darl::env
