// darl/env/space.hpp
//
// Observation/action space descriptions, mirroring the gym API the paper's
// simulator is built on. Two kinds are supported: bounded continuous boxes
// and finite discrete sets. Actions are always carried as a Vec — a
// DiscreteSpace interprets element 0 (rounded) as the action index — so the
// policy/NN plumbing is uniform for PPO (discrete or continuous) and SAC.

#pragma once

#include <string>
#include <variant>

#include "darl/linalg/vec.hpp"

namespace darl {
class Rng;
}

namespace darl::env {

/// Continuous box space: element-wise bounds low[i] <= x[i] <= high[i].
class BoxSpace {
 public:
  BoxSpace() = default;

  /// Bounds must have equal, non-zero size with low[i] <= high[i].
  BoxSpace(Vec low, Vec high);

  /// Convenience: `dim` dimensions all bounded by [lo, hi].
  BoxSpace(std::size_t dim, double lo, double hi);

  std::size_t dim() const { return low_.size(); }
  const Vec& low() const { return low_; }
  const Vec& high() const { return high_; }

  /// True when x has the right size and lies inside the bounds.
  bool contains(const Vec& x) const;

  /// Uniform sample from the box.
  Vec sample(Rng& rng) const;

  /// Element-wise clamp of x into the box; size must match.
  Vec clip(const Vec& x) const;

 private:
  Vec low_, high_;
};

/// Finite action set {0, 1, ..., n-1}.
class DiscreteSpace {
 public:
  DiscreteSpace() = default;

  /// Requires n >= 1.
  explicit DiscreteSpace(std::size_t n);

  std::size_t n() const { return n_; }

  /// True when `action` decodes to a valid index.
  bool contains(const Vec& action) const;

  /// Decode a Vec-carried action into an index (element 0, rounded and
  /// clamped into range). Requires a non-empty action vector.
  std::size_t decode(const Vec& action) const;

  /// Encode an index as a Vec-carried action.
  Vec encode(std::size_t index) const;

  /// Uniform sample over the set, encoded as a Vec.
  Vec sample(Rng& rng) const;

 private:
  std::size_t n_ = 0;
};

/// An action space is either continuous (Box) or discrete.
class ActionSpace {
 public:
  ActionSpace() : space_(DiscreteSpace(1)) {}
  explicit ActionSpace(BoxSpace box) : space_(std::move(box)) {}
  explicit ActionSpace(DiscreteSpace d) : space_(d) {}

  bool is_discrete() const { return std::holds_alternative<DiscreteSpace>(space_); }
  bool is_box() const { return !is_discrete(); }

  /// Accessors; throw darl::Error on kind mismatch.
  const BoxSpace& box() const;
  const DiscreteSpace& discrete() const;

  /// Dimension of the Vec carrying an action: box dim, or 1 for discrete.
  std::size_t action_dim() const;

  bool contains(const Vec& action) const;
  Vec sample(Rng& rng) const;

  std::string describe() const;

 private:
  std::variant<BoxSpace, DiscreteSpace> space_;
};

}  // namespace darl::env
