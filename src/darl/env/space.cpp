#include "darl/env/space.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::env {

BoxSpace::BoxSpace(Vec low, Vec high) : low_(std::move(low)), high_(std::move(high)) {
  DARL_CHECK(!low_.empty(), "BoxSpace with zero dimensions");
  DARL_CHECK(low_.size() == high_.size(),
             "BoxSpace bound sizes differ: " << low_.size() << " vs " << high_.size());
  for (std::size_t i = 0; i < low_.size(); ++i) {
    DARL_CHECK(low_[i] <= high_[i], "BoxSpace bounds inverted at dim " << i);
  }
}

BoxSpace::BoxSpace(std::size_t dim, double lo, double hi)
    : BoxSpace(Vec(dim, lo), Vec(dim, hi)) {}

bool BoxSpace::contains(const Vec& x) const {
  if (x.size() != low_.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!(x[i] >= low_[i] && x[i] <= high_[i])) return false;
  }
  return true;
}

Vec BoxSpace::sample(Rng& rng) const {
  Vec x(dim());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform(low_[i], high_[i]);
  return x;
}

Vec BoxSpace::clip(const Vec& x) const {
  DARL_CHECK(x.size() == dim(), "clip size mismatch");
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = std::clamp(x[i], low_[i], high_[i]);
  return out;
}

DiscreteSpace::DiscreteSpace(std::size_t n) : n_(n) {
  DARL_CHECK(n >= 1, "DiscreteSpace needs n >= 1");
}

bool DiscreteSpace::contains(const Vec& action) const {
  if (action.empty()) return false;
  const double v = std::round(action[0]);
  return v >= 0.0 && v < static_cast<double>(n_);
}

std::size_t DiscreteSpace::decode(const Vec& action) const {
  DARL_CHECK(!action.empty(), "decode of empty action");
  const auto idx = static_cast<long long>(std::llround(action[0]));
  const long long hi = static_cast<long long>(n_) - 1;
  return static_cast<std::size_t>(std::clamp(idx, 0ll, hi));
}

Vec DiscreteSpace::encode(std::size_t index) const {
  DARL_CHECK(index < n_, "discrete action " << index << " out of " << n_);
  return Vec{static_cast<double>(index)};
}

Vec DiscreteSpace::sample(Rng& rng) const {
  return encode(rng.index(n_));
}

const BoxSpace& ActionSpace::box() const {
  const auto* b = std::get_if<BoxSpace>(&space_);
  DARL_CHECK(b != nullptr, "action space is not continuous");
  return *b;
}

const DiscreteSpace& ActionSpace::discrete() const {
  const auto* d = std::get_if<DiscreteSpace>(&space_);
  DARL_CHECK(d != nullptr, "action space is not discrete");
  return *d;
}

std::size_t ActionSpace::action_dim() const {
  return is_discrete() ? 1 : box().dim();
}

bool ActionSpace::contains(const Vec& action) const {
  return is_discrete() ? discrete().contains(action) : box().contains(action);
}

Vec ActionSpace::sample(Rng& rng) const {
  return is_discrete() ? discrete().sample(rng) : box().sample(rng);
}

std::string ActionSpace::describe() const {
  std::ostringstream oss;
  if (is_discrete()) {
    oss << "Discrete(" << discrete().n() << ")";
  } else {
    oss << "Box(dim=" << box().dim() << ")";
  }
  return oss.str();
}

}  // namespace darl::env
