#include "darl/env/pendulum.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "darl/common/rng.hpp"
#include "darl/env/wrappers.hpp"

namespace darl::env {
namespace {

constexpr double kMaxSpeed = 8.0;
constexpr double kMaxTorque = 2.0;
constexpr double kDt = 0.05;
constexpr double kG = 10.0;
constexpr double kMass = 1.0;
constexpr double kLength = 1.0;

double wrap_angle(double a) {
  const double two_pi = 2.0 * std::numbers::pi;
  a = std::fmod(a + std::numbers::pi, two_pi);
  if (a < 0.0) a += two_pi;
  return a - std::numbers::pi;
}

}  // namespace

PendulumEnv::PendulumEnv()
    : obs_space_(Vec{-1.0, -1.0, -kMaxSpeed}, Vec{1.0, 1.0, kMaxSpeed}),
      act_space_(BoxSpace(1, -kMaxTorque, kMaxTorque)) {}

Vec PendulumEnv::observe() const {
  return {std::cos(theta_), std::sin(theta_), theta_dot_};
}

Vec PendulumEnv::do_reset(Rng& rng) {
  theta_ = rng.uniform(-std::numbers::pi, std::numbers::pi);
  theta_dot_ = rng.uniform(-1.0, 1.0);
  return observe();
}

StepResult PendulumEnv::do_step(Rng& rng, const Vec& action) {
  (void)rng;
  const double u = std::clamp(action[0], -kMaxTorque, kMaxTorque);
  const double angle = wrap_angle(theta_);
  const double cost =
      angle * angle + 0.1 * theta_dot_ * theta_dot_ + 0.001 * u * u;

  theta_dot_ += (3.0 * kG / (2.0 * kLength) * std::sin(theta_) +
                 3.0 / (kMass * kLength * kLength) * u) *
                kDt;
  theta_dot_ = std::clamp(theta_dot_, -kMaxSpeed, kMaxSpeed);
  theta_ += theta_dot_ * kDt;
  pending_cost_ += 1.0;

  StepResult r;
  r.observation = observe();
  r.reward = -cost;
  r.terminated = false;
  return r;
}

double PendulumEnv::take_compute_cost() {
  const double c = pending_cost_;
  pending_cost_ = 0.0;
  return c;
}

EnvFactory make_pendulum_factory(std::size_t time_limit) {
  return [time_limit]() -> std::unique_ptr<Env> {
    return std::make_unique<TimeLimit>(std::make_unique<PendulumEnv>(),
                                       time_limit);
  };
}

}  // namespace darl::env
