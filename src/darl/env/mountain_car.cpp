#include "darl/env/mountain_car.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/rng.hpp"
#include "darl/env/wrappers.hpp"

namespace darl::env {
namespace {

constexpr double kMinPosition = -1.2;
constexpr double kMaxPosition = 0.6;
constexpr double kMaxSpeed = 0.07;
constexpr double kGoalPosition = 0.45;
constexpr double kPower = 0.0015;
constexpr double kGravity = 0.0025;

}  // namespace

MountainCarEnv::MountainCarEnv()
    : obs_space_(Vec{kMinPosition, -kMaxSpeed}, Vec{kMaxPosition, kMaxSpeed}),
      act_space_(BoxSpace(1, -1.0, 1.0)) {}

Vec MountainCarEnv::do_reset(Rng& rng) {
  position_ = rng.uniform(-0.6, -0.4);
  velocity_ = 0.0;
  return {position_, velocity_};
}

StepResult MountainCarEnv::do_step(Rng& rng, const Vec& action) {
  (void)rng;
  const double force = std::clamp(action[0], -1.0, 1.0);
  velocity_ += force * kPower - kGravity * std::cos(3.0 * position_);
  velocity_ = std::clamp(velocity_, -kMaxSpeed, kMaxSpeed);
  position_ += velocity_;
  position_ = std::clamp(position_, kMinPosition, kMaxPosition);
  if (position_ <= kMinPosition && velocity_ < 0.0) velocity_ = 0.0;
  pending_cost_ += 1.0;

  StepResult r;
  r.observation = {position_, velocity_};
  r.terminated = position_ >= kGoalPosition;
  r.reward = -0.1 * force * force + (r.terminated ? 100.0 : 0.0);
  return r;
}

double MountainCarEnv::take_compute_cost() {
  const double c = pending_cost_;
  pending_cost_ = 0.0;
  return c;
}

EnvFactory make_mountain_car_factory(std::size_t time_limit) {
  return [time_limit]() -> std::unique_ptr<Env> {
    return std::make_unique<TimeLimit>(std::make_unique<MountainCarEnv>(),
                                       time_limit);
  };
}

}  // namespace darl::env
