// darl/env/gridworld.hpp
//
// A small deterministic grid-world with goal and pit cells. Its exact
// optimal policy and value function are computable by hand, which makes it
// the reference environment for algorithm-correctness tests (does PPO's
// greedy policy converge to the shortest safe path?).

#pragma once

#include <string>

#include "darl/env/env.hpp"

namespace darl::env {

/// Layout of a rectangular grid world. '.'=free, 'S'=start, 'G'=goal
/// (+1 reward, terminal), 'X'=pit (-1 reward, terminal), '#'=wall
/// (blocks movement). Rows must be equal length; exactly one 'S'.
struct GridWorldLayout {
  std::vector<std::string> rows;

  /// 4x4 layout with one pit between start and goal.
  static GridWorldLayout small_maze();
};

/// Deterministic grid world. Observation: one-hot cell encoding (dim =
/// width*height). Actions: Discrete(4) = up/right/down/left; moving into a
/// wall or off the grid is a no-op. Reward: -0.01 per step, +1 at the
/// goal, -1 in a pit (both terminal). Combine with TimeLimit for safety.
class GridWorldEnv final : public EnvBase {
 public:
  explicit GridWorldEnv(GridWorldLayout layout = GridWorldLayout::small_maze());

  const BoxSpace& observation_space() const override { return obs_space_; }
  const ActionSpace& action_space() const override { return act_space_; }
  const std::string& name() const override { return name_; }
  double take_compute_cost() override;

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  /// Current agent cell (x, y) — for tests.
  std::pair<std::size_t, std::size_t> position() const { return {x_, y_}; }

 protected:
  Vec do_reset(Rng& rng) override;
  StepResult do_step(Rng& rng, const Vec& action) override;

 private:
  char cell(std::size_t x, std::size_t y) const { return layout_.rows[y][x]; }
  Vec observe() const;

  GridWorldLayout layout_;
  std::size_t width_ = 0, height_ = 0;
  std::size_t start_x_ = 0, start_y_ = 0;
  std::size_t x_ = 0, y_ = 0;
  BoxSpace obs_space_;
  ActionSpace act_space_;
  std::string name_ = "GridWorld";
  double pending_cost_ = 0.0;
};

/// Factory for use with SyncVecEnv / backends.
EnvFactory make_gridworld_factory(GridWorldLayout layout =
                                      GridWorldLayout::small_maze(),
                                  std::size_t time_limit = 100);

}  // namespace darl::env
