// darl/env/vec_env.hpp
//
// Synchronous vectorized environment: N independent env instances stepped
// in lockstep with auto-reset, the parallelization idiom the paper
// attributes to Stable Baselines ("parallelized environments through
// vectorization", one vectorized environment per CPU core).

#pragma once

#include <memory>
#include <vector>

#include "darl/env/env.hpp"
#include "darl/env/wrappers.hpp"

namespace darl::env {

/// Batched step result: one slot per sub-environment. When a
/// sub-environment finishes, `observation` already holds the first
/// observation of the next episode (auto-reset) and `final_observation`
/// holds the terminal one.
struct VecStepResult {
  std::vector<Vec> observation;
  std::vector<double> reward;
  std::vector<bool> terminated;
  std::vector<bool> truncated;
  std::vector<Vec> final_observation;  // empty Vec for slots that did not end
};

/// Steps N environments sequentially in one thread (the "Sync" flavour).
/// Each sub-env is wrapped in an EpisodeMonitor so episode statistics are
/// available per slot.
class SyncVecEnv {
 public:
  /// Creates `n_envs` instances from the factory, seeding sub-env i with
  /// split(i) of `seed`.
  SyncVecEnv(const EnvFactory& factory, std::size_t n_envs, std::uint64_t seed);

  /// Reset every sub-environment; returns the batch of initial observations.
  std::vector<Vec> reset();

  /// Step every sub-environment with its action (size must equal n_envs).
  VecStepResult step(const std::vector<Vec>& actions);

  std::size_t n_envs() const { return envs_.size(); }
  const BoxSpace& observation_space() const;
  const ActionSpace& action_space() const;

  /// Episode records from sub-env i.
  const std::vector<EpisodeRecord>& episodes(std::size_t i) const;

  /// All episode records across sub-envs, in per-slot order.
  std::vector<EpisodeRecord> all_episodes() const;

  /// Aggregate simulated compute cost drained from all sub-envs.
  double take_compute_cost();

 private:
  std::vector<std::unique_ptr<EpisodeMonitor>> envs_;
};

}  // namespace darl::env
