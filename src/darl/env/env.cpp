#include "darl/env/env.hpp"

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::env {

EnvBase::EnvBase(std::uint64_t default_seed)
    : rng_(std::make_unique<Rng>(default_seed)) {}

void EnvBase::seed(std::uint64_t s) { rng_ = std::make_unique<Rng>(s); }

Vec EnvBase::reset() {
  needs_reset_ = false;
  episode_steps_ = 0;
  return do_reset(*rng_);
}

StepResult EnvBase::step(const Vec& action) {
  if (needs_reset_) {
    throw InvalidState("step() called before reset() (or after episode end)");
  }
  DARL_CHECK(action_space().action_dim() == action.size(),
             "action has " << action.size() << " elements, space "
                           << action_space().describe());
  ++episode_steps_;
  StepResult result = do_step(*rng_, action);
  if (result.done()) needs_reset_ = true;
  return result;
}

}  // namespace darl::env
