// darl/env/env.hpp
//
// The gym-style environment interface (§IV-A of the paper: the simulator
// "is provided as a gym environment"). Environments are single-threaded
// objects; parallel collection uses one instance per worker, created from
// an EnvFactory.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "darl/common/rng.hpp"
#include "darl/env/space.hpp"
#include "darl/linalg/vec.hpp"

namespace darl::env {

/// Result of one environment step.
struct StepResult {
  Vec observation;
  double reward = 0.0;
  bool terminated = false;  ///< reached a terminal state (e.g. landing)
  bool truncated = false;   ///< cut off by a wrapper (e.g. time limit)

  bool done() const { return terminated || truncated; }
};

/// Abstract RL environment.
///
/// Lifecycle: seed() (optional) -> reset() -> step()* until done ->
/// reset() ... Calling step() after done and before reset() throws
/// darl::InvalidState (enforced by implementations via EnvBase).
class Env {
 public:
  virtual ~Env() = default;

  /// Reseed the environment's private random stream.
  virtual void seed(std::uint64_t seed) = 0;

  /// Start a new episode; returns the initial observation.
  virtual Vec reset() = 0;

  /// Advance one time-step with the given action (see ActionSpace for the
  /// Vec encoding of discrete actions).
  virtual StepResult step(const Vec& action) = 0;

  virtual const BoxSpace& observation_space() const = 0;
  virtual const ActionSpace& action_space() const = 0;

  /// Stable identifier used in logs and reports.
  virtual const std::string& name() const = 0;

  /// Simulated in-environment compute cost (in cost units, e.g. ODE
  /// right-hand-side evaluations) accumulated since the last
  /// take_compute_cost() call. Environments with no meaningful internal
  /// cost return steps taken. The cluster cost model drains this counter.
  virtual double take_compute_cost() { return 0.0; }

  /// Domain score of the most recently *finished* episode, when the
  /// environment defines one distinct from the per-step reward sum (the
  /// airdrop simulator's landing score — the paper's Reward metric).
  /// Environments without a separate notion return nullopt and the summed
  /// reward is used instead.
  virtual std::optional<double> episode_score() const { return std::nullopt; }
};

/// Factory producing independent environment instances (one per parallel
/// worker). Implementations must return a fresh, unshared object.
using EnvFactory = std::function<std::unique_ptr<Env>()>;

/// Convenience base class handling the reset/step state machine and the
/// private Rng. Subclasses implement do_reset()/do_step().
class EnvBase : public Env {
 public:
  void seed(std::uint64_t s) override;
  Vec reset() override;
  StepResult step(const Vec& action) override;

 protected:
  explicit EnvBase(std::uint64_t default_seed = 0);

  virtual Vec do_reset(Rng& rng) = 0;
  virtual StepResult do_step(Rng& rng, const Vec& action) = 0;

  /// Steps taken in the current episode.
  std::size_t episode_steps() const { return episode_steps_; }

 private:
  std::unique_ptr<Rng> rng_;
  bool needs_reset_ = true;
  std::size_t episode_steps_ = 0;
};

}  // namespace darl::env
