// darl/env/pendulum.hpp
//
// Classic-control Pendulum-v1 environment (continuous torque action), the
// standard continuous-control smoke test used to validate the SAC
// implementation and as an alternative case study in the examples.

#pragma once

#include "darl/env/env.hpp"

namespace darl::env {

/// Pendulum swing-up with the gym reward
/// -(angle^2 + 0.1*thetadot^2 + 0.001*torque^2); never terminates on its
/// own (wrap in TimeLimit, usually 200).
class PendulumEnv final : public EnvBase {
 public:
  PendulumEnv();

  const BoxSpace& observation_space() const override { return obs_space_; }
  const ActionSpace& action_space() const override { return act_space_; }
  const std::string& name() const override { return name_; }
  double take_compute_cost() override;

 protected:
  Vec do_reset(Rng& rng) override;
  StepResult do_step(Rng& rng, const Vec& action) override;

 private:
  Vec observe() const;

  BoxSpace obs_space_;
  ActionSpace act_space_;
  std::string name_ = "Pendulum";
  double theta_ = 0.0;
  double theta_dot_ = 0.0;
  double pending_cost_ = 0.0;
};

/// Factory for use with SyncVecEnv / backends.
EnvFactory make_pendulum_factory(std::size_t time_limit = 200);

}  // namespace darl::env
