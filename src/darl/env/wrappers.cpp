#include "darl/env/wrappers.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"

namespace darl::env {

EnvWrapper::EnvWrapper(std::unique_ptr<Env> inner) : inner_(std::move(inner)) {
  DARL_CHECK(inner_ != nullptr, "wrapping a null environment");
}

TimeLimit::TimeLimit(std::unique_ptr<Env> inner, std::size_t max_steps)
    : EnvWrapper(std::move(inner)), max_steps_(max_steps) {
  DARL_CHECK(max_steps > 0, "TimeLimit needs max_steps > 0");
}

Vec TimeLimit::reset() {
  steps_ = 0;
  return EnvWrapper::reset();
}

StepResult TimeLimit::step(const Vec& action) {
  StepResult r = EnvWrapper::step(action);
  ++steps_;
  if (!r.terminated && steps_ >= max_steps_) r.truncated = true;
  return r;
}

EpisodeMonitor::EpisodeMonitor(std::unique_ptr<Env> inner)
    : EnvWrapper(std::move(inner)) {}

Vec EpisodeMonitor::reset() {
  current_reward_ = 0.0;
  current_length_ = 0;
  return EnvWrapper::reset();
}

StepResult EpisodeMonitor::step(const Vec& action) {
  StepResult r = EnvWrapper::step(action);
  current_reward_ += r.reward;
  ++current_length_;
  if (r.done()) {
    const double score = inner().episode_score().value_or(current_reward_);
    episodes_.push_back(EpisodeRecord{current_reward_, score, current_length_});
    current_reward_ = 0.0;
    current_length_ = 0;
  }
  return r;
}

double EpisodeMonitor::mean_recent_reward(std::size_t n) const {
  if (episodes_.empty() || n == 0) return 0.0;
  const std::size_t take = std::min(n, episodes_.size());
  double s = 0.0;
  for (std::size_t i = episodes_.size() - take; i < episodes_.size(); ++i)
    s += episodes_[i].total_reward;
  return s / static_cast<double>(take);
}

double EpisodeMonitor::mean_recent_score(std::size_t n) const {
  if (episodes_.empty() || n == 0) return 0.0;
  const std::size_t take = std::min(n, episodes_.size());
  double s = 0.0;
  for (std::size_t i = episodes_.size() - take; i < episodes_.size(); ++i)
    s += episodes_[i].score;
  return s / static_cast<double>(take);
}

RewardScale::RewardScale(std::unique_ptr<Env> inner, double factor)
    : EnvWrapper(std::move(inner)), factor_(factor) {
  DARL_CHECK(std::isfinite(factor), "non-finite reward scale");
}

StepResult RewardScale::step(const Vec& action) {
  StepResult r = EnvWrapper::step(action);
  r.reward *= factor_;
  return r;
}

ObservationNormalizer::ObservationNormalizer(std::unique_ptr<Env> inner,
                                             double clip)
    : EnvWrapper(std::move(inner)), clip_(clip) {
  DARL_CHECK(clip > 0.0, "normalizer clip must be positive");
  const std::size_t d = EnvWrapper::observation_space().dim();
  dims_.resize(d);
  norm_space_ = BoxSpace(d, -clip, clip);
}

Vec ObservationNormalizer::normalize(const Vec& raw) {
  DARL_CHECK(raw.size() == dims_.size(), "observation size changed");
  Vec out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    dims_[i].push(raw[i]);
    const double sd = dims_[i].stddev();
    const double denom = sd > 1e-8 ? sd : 1.0;
    out[i] = std::clamp((raw[i] - dims_[i].mean()) / denom, -clip_, clip_);
  }
  return out;
}

Vec ObservationNormalizer::reset() { return normalize(EnvWrapper::reset()); }

StepResult ObservationNormalizer::step(const Vec& action) {
  StepResult r = EnvWrapper::step(action);
  r.observation = normalize(r.observation);
  return r;
}

}  // namespace darl::env
