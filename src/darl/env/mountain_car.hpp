// darl/env/mountain_car.hpp
//
// Classic-control MountainCarContinuous: an under-powered car must build
// momentum to escape a valley. A third gym case study with a sparse
// success bonus — useful for exercising exploration-sensitive behaviour in
// tests and studies.

#pragma once

#include "darl/env/env.hpp"

namespace darl::env {

/// Continuous mountain car with the standard gym dynamics: action is a
/// force in [-1, 1]; reward is -0.1*a^2 per step plus +100 on reaching the
/// goal position (0.45). Terminates at the goal; combine with TimeLimit
/// (usually 999).
class MountainCarEnv final : public EnvBase {
 public:
  MountainCarEnv();

  const BoxSpace& observation_space() const override { return obs_space_; }
  const ActionSpace& action_space() const override { return act_space_; }
  const std::string& name() const override { return name_; }
  double take_compute_cost() override;

 protected:
  Vec do_reset(Rng& rng) override;
  StepResult do_step(Rng& rng, const Vec& action) override;

 private:
  BoxSpace obs_space_;
  ActionSpace act_space_;
  std::string name_ = "MountainCarContinuous";
  double position_ = 0.0;
  double velocity_ = 0.0;
  double pending_cost_ = 0.0;
};

/// Factory for use with SyncVecEnv / backends.
EnvFactory make_mountain_car_factory(std::size_t time_limit = 999);

}  // namespace darl::env
