#include "darl/env/gridworld.hpp"

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/env/wrappers.hpp"

namespace darl::env {

GridWorldLayout GridWorldLayout::small_maze() {
  return GridWorldLayout{{
      "S..G",
      ".#.X",
      "....",
      "....",
  }};
}

GridWorldEnv::GridWorldEnv(GridWorldLayout layout)
    : layout_(std::move(layout)),
      obs_space_(1, 0.0, 1.0),  // placeholder, resized below
      act_space_(DiscreteSpace(4)) {
  DARL_CHECK(!layout_.rows.empty(), "grid world needs at least one row");
  height_ = layout_.rows.size();
  width_ = layout_.rows[0].size();
  DARL_CHECK(width_ > 0, "grid world rows must be non-empty");
  std::size_t starts = 0;
  for (std::size_t y = 0; y < height_; ++y) {
    DARL_CHECK(layout_.rows[y].size() == width_,
               "grid row " << y << " has inconsistent width");
    for (std::size_t x = 0; x < width_; ++x) {
      const char c = cell(x, y);
      DARL_CHECK(c == '.' || c == 'S' || c == 'G' || c == 'X' || c == '#',
                 "unknown grid cell '" << c << "'");
      if (c == 'S') {
        start_x_ = x;
        start_y_ = y;
        ++starts;
      }
    }
  }
  DARL_CHECK(starts == 1, "grid world needs exactly one start, got " << starts);
  obs_space_ = BoxSpace(width_ * height_, 0.0, 1.0);
}

Vec GridWorldEnv::observe() const {
  Vec obs(width_ * height_, 0.0);
  obs[y_ * width_ + x_] = 1.0;
  return obs;
}

Vec GridWorldEnv::do_reset(Rng& rng) {
  (void)rng;  // deterministic start
  x_ = start_x_;
  y_ = start_y_;
  return observe();
}

StepResult GridWorldEnv::do_step(Rng& rng, const Vec& action) {
  (void)rng;
  const std::size_t a = act_space_.discrete().decode(action);
  std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(x_);
  std::ptrdiff_t ny = static_cast<std::ptrdiff_t>(y_);
  switch (a) {
    case 0: --ny; break;  // up
    case 1: ++nx; break;  // right
    case 2: ++ny; break;  // down
    default: --nx; break; // left
  }
  const bool inside = nx >= 0 && ny >= 0 &&
                      nx < static_cast<std::ptrdiff_t>(width_) &&
                      ny < static_cast<std::ptrdiff_t>(height_);
  if (inside && cell(static_cast<std::size_t>(nx),
                     static_cast<std::size_t>(ny)) != '#') {
    x_ = static_cast<std::size_t>(nx);
    y_ = static_cast<std::size_t>(ny);
  }
  pending_cost_ += 1.0;

  StepResult r;
  r.observation = observe();
  const char c = cell(x_, y_);
  if (c == 'G') {
    r.reward = 1.0;
    r.terminated = true;
  } else if (c == 'X') {
    r.reward = -1.0;
    r.terminated = true;
  } else {
    r.reward = -0.01;
  }
  return r;
}

double GridWorldEnv::take_compute_cost() {
  const double c = pending_cost_;
  pending_cost_ = 0.0;
  return c;
}

EnvFactory make_gridworld_factory(GridWorldLayout layout,
                                  std::size_t time_limit) {
  return [layout, time_limit]() -> std::unique_ptr<Env> {
    return std::make_unique<TimeLimit>(std::make_unique<GridWorldEnv>(layout),
                                       time_limit);
  };
}

}  // namespace darl::env
