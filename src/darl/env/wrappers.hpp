// darl/env/wrappers.hpp
//
// Composable environment wrappers (gym idiom): time limits, episode
// statistics recording, observation normalization and reward scaling.

#pragma once

#include <memory>
#include <vector>

#include "darl/common/stats.hpp"
#include "darl/env/env.hpp"

namespace darl::env {

/// Base wrapper forwarding every call to the wrapped environment.
class EnvWrapper : public Env {
 public:
  explicit EnvWrapper(std::unique_ptr<Env> inner);

  void seed(std::uint64_t s) override { inner_->seed(s); }
  Vec reset() override { return inner_->reset(); }
  StepResult step(const Vec& action) override { return inner_->step(action); }
  const BoxSpace& observation_space() const override {
    return inner_->observation_space();
  }
  const ActionSpace& action_space() const override {
    return inner_->action_space();
  }
  const std::string& name() const override { return inner_->name(); }
  double take_compute_cost() override { return inner_->take_compute_cost(); }
  std::optional<double> episode_score() const override {
    return inner_->episode_score();
  }

 protected:
  Env& inner() { return *inner_; }
  const Env& inner() const { return *inner_; }

 private:
  std::unique_ptr<Env> inner_;
};

/// Truncates episodes after `max_steps` steps (sets StepResult::truncated).
class TimeLimit final : public EnvWrapper {
 public:
  TimeLimit(std::unique_ptr<Env> inner, std::size_t max_steps);

  Vec reset() override;
  StepResult step(const Vec& action) override;

  std::size_t max_steps() const { return max_steps_; }

 private:
  std::size_t max_steps_;
  std::size_t steps_ = 0;
};

/// Summary of one finished episode. `score` is the domain score (see
/// Env::episode_score); it falls back to total_reward when the environment
/// does not define one.
struct EpisodeRecord {
  double total_reward = 0.0;
  double score = 0.0;
  std::size_t length = 0;
};

/// Records per-episode return and length; the metric-collection stage reads
/// them to compute the study's Reward metric.
class EpisodeMonitor final : public EnvWrapper {
 public:
  explicit EpisodeMonitor(std::unique_ptr<Env> inner);

  Vec reset() override;
  StepResult step(const Vec& action) override;

  /// All episodes finished since construction.
  const std::vector<EpisodeRecord>& episodes() const { return episodes_; }

  /// Mean total reward over the last `n` finished episodes (all if fewer).
  /// Returns 0 when no episode has finished.
  double mean_recent_reward(std::size_t n) const;

  /// Mean domain score over the last `n` finished episodes (all if fewer).
  double mean_recent_score(std::size_t n) const;

 private:
  std::vector<EpisodeRecord> episodes_;
  double current_reward_ = 0.0;
  std::size_t current_length_ = 0;
};

/// Multiplies rewards by a constant factor (reward shaping knob).
class RewardScale final : public EnvWrapper {
 public:
  RewardScale(std::unique_ptr<Env> inner, double factor);

  StepResult step(const Vec& action) override;

 private:
  double factor_;
};

/// Normalizes observations with running mean/variance (per dimension),
/// clipping the result into [-clip, clip]. Statistics update on every
/// observation seen, matching common VecNormalize behaviour.
class ObservationNormalizer final : public EnvWrapper {
 public:
  ObservationNormalizer(std::unique_ptr<Env> inner, double clip = 10.0);

  Vec reset() override;
  StepResult step(const Vec& action) override;

  /// The normalized observation space is an unbounded-ish clip box.
  const BoxSpace& observation_space() const override { return norm_space_; }

 private:
  Vec normalize(const Vec& raw);

  double clip_;
  std::vector<RunningStats> dims_;
  BoxSpace norm_space_;
};

}  // namespace darl::env
