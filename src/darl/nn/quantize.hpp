// darl/nn/quantize.hpp
//
// int8 row-quantized inference for the serving path (DESIGN.md §16).
//
// Scheme: weights are quantized per OUTPUT ROW, symmetric int8
// (s_w[j] = max_c |W[j][c]| / 127, zero-point 0); activations are
// quantized per SAMPLE ROW, asymmetric uint8 against the row's [min, max]
// (s_x = (max - min) / 255, offset min). Each output logit is then
//
//   z[j] = s_w[j] * (s_x * acc[j] + min * qrow_sum[j]) + bias[j]
//
// with acc[j] = sum_c qw[j][c] * qx[c] accumulated in int32 — exact
// integer arithmetic, so the contraction is associative and batched
// inference is bitwise identical to per-sample inference by construction
// (each row is quantized and reduced independently; the few double ops
// per logit are a fixed expression). qrow_sum[j] = sum_c qw[j][c] folds
// the activation offset out of the integer loop.
//
// The tier is lossy versus the exact path: |logit error| is bounded by
// quantization_logit_error_bound (rounding of weights and activations,
// propagated through 1-Lipschitz activations); the gate test in
// tests/test_nn_batch.cpp asserts the measured error stays inside it.
// Exact-mode tenants in darl/serve bypass this path entirely.

#pragma once

#include <cstdint>
#include <vector>

#include "darl/linalg/matrix.hpp"
#include "darl/nn/mlp.hpp"

namespace darl::nn {

/// One linear layer, weights quantized per output row. Immutable after
/// quantize_mlp_params; shared read-only across scheduler replicas.
struct QuantizedLayer {
  std::size_t in = 0;
  std::size_t out = 0;
  std::vector<std::int8_t> qw;        ///< out x in, row-major
  Vec w_scale;                        ///< per-row symmetric scale s_w
  std::vector<std::int32_t> qrow_sum; ///< per-row sum of qw (offset fold)
  Vec bias;                           ///< exact double bias
};

/// A whole network quantized for inference. Carried (as a shared_ptr) on
/// the immutable serve::PolicyVersion, built once at publish time.
struct QuantizedNet {
  std::vector<std::size_t> sizes;
  Activation activation = Activation::Tanh;
  std::vector<QuantizedLayer> layers;
};

/// Quantize a network given its architecture and flat parameter vector
/// (the get_flat_params / PolicySpec::net_params layout: per layer,
/// row-major weights then bias). int32 accumulation is exact for layer
/// widths up to ~66k inputs (127 * 255 * 66k < 2^31).
QuantizedNet quantize_mlp_params(const std::vector<std::size_t>& sizes,
                                 Activation activation, const Vec& flat);

/// Run one quantized layer over `in` (one sample per row, exact doubles),
/// writing logits into `out` (pre-shaped in.rows() x layer.out). `qrow`
/// is caller-owned scratch of at least layer.in bytes. This is the single
/// source of truth for the quantized math: Mlp::evaluate_batch_quantized
/// and the error-bound auditor both run it.
void quantized_layer_forward(const QuantizedLayer& layer, const Matrix& in,
                             std::uint8_t* qrow, Matrix& out);

/// Analytic upper bound on max_j |exact logit - quantized logit| over the
/// whole batch: per layer, weight rounding (s_w/2 per term against the
/// actual quantized-path activations), activation rounding (s_x/2 against
/// the dequantized weight row), and the incoming error propagated through
/// the 1-Lipschitz activation and the exact weight magnitudes. `flat` is
/// the exact parameter vector the net was quantized from. Walks the
/// quantized forward internally; intended for tests and audits, allocates
/// freely.
double quantization_logit_error_bound(const QuantizedNet& qn, const Vec& flat,
                                      const Matrix& x);

}  // namespace darl::nn
