#include "darl/nn/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"
#include "darl/nn/quantize.hpp"
#include "darl/obs/metrics.hpp"

namespace darl::nn {

namespace {

// Bucket bounds for the batch-size histogram: powers of two up to the
// largest minibatch any of the algorithms uses, plus an overflow bucket.
obs::Histogram& batch_rows_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "nn.batch_rows", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0});
  return h;
}

void record_batch(std::size_t rows, double flops) {
  if (!obs::metrics_enabled()) return;
  batch_rows_histogram().observe(static_cast<double>(rows));
  DARL_GAUGE_ADD("nn.batched_flops", flops);
}

}  // namespace

Mlp::Mlp(const std::vector<std::size_t>& sizes, Activation activation, Rng& rng)
    : sizes_(sizes), activation_(activation) {
  DARL_CHECK(sizes_.size() >= 2, "Mlp needs at least input and output sizes");
  for (std::size_t s : sizes_) DARL_CHECK(s > 0, "Mlp layer size must be positive");

  const std::size_t layers = sizes_.size() - 1;
  // tanh keeps unit variance with gain 1; ReLU needs sqrt(2).
  const double gain = activation_ == Activation::ReLU ? std::sqrt(2.0) : 1.0;
  weights_.reserve(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    Matrix w(sizes_[l + 1], sizes_[l]);
    w.randomize_kaiming(rng, gain);
    weights_.push_back(std::move(w));
    biases_.emplace_back(sizes_[l + 1], 0.0);
    grad_w_.emplace_back(sizes_[l + 1], sizes_[l], 0.0);
    grad_b_.emplace_back(sizes_[l + 1], 0.0);
  }
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    flops_fwd_ += 2.0 * static_cast<double>(sizes_[l]) * static_cast<double>(sizes_[l + 1]);
    flops_fwd_ += static_cast<double>(sizes_[l + 1]);  // bias + activation
  }
  ws_act_.resize(layers + 1);
}

void Mlp::ensure_forward_ws(std::size_t batch) {
  const std::size_t layers = weights_.size();
  for (std::size_t l = 0; l <= layers; ++l) ws_act_[l].reshape(batch, sizes_[l]);
}

void Mlp::apply_act(Matrix& z) const {
  if (activation_ == Activation::Tanh) {
    apply_tanh(z);
  } else {
    apply_relu(z);
  }
}

void Mlp::scale_by_act_grad(Matrix& delta, const Matrix& act) const {
  double* d = delta.data().data();
  const double* a = act.data().data();
  const std::size_t n = delta.size();
  if (activation_ == Activation::Tanh) {
    // a[i] is the stored tanh of the pre-activation, so 1 - a^2 is bit for
    // bit the value a recompute through std::tanh would produce — without
    // the (expensive) recompute.
    for (std::size_t i = 0; i < n; ++i) {
      const double t = a[i];
      d[i] *= 1.0 - t * t;
    }
  } else {
    // relu(z) > 0 exactly when z > 0, so the stored output decides the
    // pass-through mask just like the pre-activation would.
    for (std::size_t i = 0; i < n; ++i) d[i] *= a[i] > 0.0 ? 1.0 : 0.0;
  }
}

const Matrix& Mlp::forward_batch(const Matrix& x) {
  DARL_CHECK(x.cols() == input_dim(),
             "Mlp input has " << x.cols() << " dims, expected " << input_dim());
  const std::size_t batch = x.rows();
  const std::size_t layers = weights_.size();
  ensure_forward_ws(batch);
  record_batch(batch, flops_fwd_ * static_cast<double>(batch));
  std::copy(x.data().begin(), x.data().end(), ws_act_[0].data().begin());
  for (std::size_t l = 0; l < layers; ++l) {
    Matrix& z = ws_act_[l + 1];
    z.fill(0.0);
    // Z = X * W^T straight through the NT flavour: gemm packs the weight
    // operand internally once the batch clears its threshold, with the
    // same per-element summation order at every batch size.
    Matrix::gemm(1.0, ws_act_[l], false, weights_[l], true, z);
    add_bias(z, biases_[l]);
    if (l + 1 < layers) apply_act(z);
  }
  forward_rows_ = batch;
  return ws_act_[layers];
}

const Matrix& Mlp::evaluate_batch(const Matrix& x) const {
  DARL_CHECK(x.cols() == input_dim(),
             "Mlp input has " << x.cols() << " dims, expected " << input_dim());
  const std::size_t batch = x.rows();
  const std::size_t layers = weights_.size();
  record_batch(batch, flops_fwd_ * static_cast<double>(batch));
  const Matrix* a = &x;
  Matrix* z = &ws_eval_a_;
  Matrix* spare = &ws_eval_b_;
  for (std::size_t l = 0; l < layers; ++l) {
    z->reshape(batch, sizes_[l + 1]);
    z->fill(0.0);
    Matrix::gemm(1.0, *a, false, weights_[l], true, *z);
    add_bias(*z, biases_[l]);
    if (l + 1 < layers) apply_act(*z);
    a = z;
    std::swap(z, spare);
  }
  return *a;
}

void Mlp::ensure_quant_ws() const {
  std::size_t widest = 0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l)
    widest = std::max(widest, sizes_[l]);
  if (ws_qx_.size() < widest) ws_qx_.resize(widest);
}

const Matrix& Mlp::evaluate_batch_quantized(const Matrix& x,
                                            const QuantizedNet& qn) const {
  DARL_CHECK(x.cols() == input_dim(),
             "Mlp input has " << x.cols() << " dims, expected " << input_dim());
  DARL_CHECK(qn.sizes == sizes_,
             "quantized net architecture does not match this Mlp");
  const std::size_t batch = x.rows();
  const std::size_t layers = weights_.size();
  record_batch(batch, flops_fwd_ * static_cast<double>(batch));
  ensure_quant_ws();
  const Matrix* a = &x;
  Matrix* z = &ws_eval_a_;
  Matrix* spare = &ws_eval_b_;
  for (std::size_t l = 0; l < layers; ++l) {
    z->reshape(batch, sizes_[l + 1]);
    quantized_layer_forward(qn.layers[l], *a, ws_qx_.data(), *z);
    if (l + 1 < layers) apply_act(*z);
    a = z;
    std::swap(z, spare);
  }
  return *a;
}

const Matrix& Mlp::backward_batch(const Matrix& grad_output) {
  DARL_CHECK(forward_rows_ > 0, "backward_batch() without a preceding forward_batch()");
  DARL_CHECK(grad_output.rows() == forward_rows_ && grad_output.cols() == output_dim(),
             "grad_output is " << grad_output.rows() << "x" << grad_output.cols()
                               << ", expected " << forward_rows_ << "x"
                               << output_dim());
  const std::size_t batch = forward_rows_;
  const std::size_t layers = weights_.size();
  record_batch(batch, 2.0 * flops_fwd_ * static_cast<double>(batch));
  Matrix* delta = &ws_delta_a_;  // dL/dz rows for the current layer
  Matrix* spare = &ws_delta_b_;
  delta->reshape(batch, output_dim());
  std::copy(grad_output.data().begin(), grad_output.data().end(),
            delta->data().begin());
  for (std::size_t li = layers; li-- > 0;) {
    if (li + 1 < layers) {
      // delta currently holds dL/da for this layer's activation output;
      // convert to dL/dz through the activation derivative, read off the
      // stored activation rows.
      scale_by_act_grad(*delta, ws_act_[li + 1]);
    }
    // grad_w += delta^T * activations: element (r, c) accumulates over
    // samples in ascending order, exactly like per-sample add_outer calls.
    Matrix::gemm(1.0, *delta, true, ws_act_[li], false, grad_w_[li]);
    Vec& gb = grad_b_[li];
    for (std::size_t r = 0; r < batch; ++r) {
      const double* drow = delta->row(r);
      for (std::size_t c = 0; c < gb.size(); ++c) gb[c] += drow[c];
    }
    spare->reshape(batch, sizes_[li]);
    spare->fill(0.0);
    Matrix::gemm(1.0, *delta, false, weights_[li], false, *spare);
    std::swap(delta, spare);
  }
  forward_rows_ = 0;
  return *delta;  // dL/dX
}

const Vec& Mlp::forward(const Vec& x) {
  DARL_CHECK(x.size() == input_dim(),
             "Mlp input has " << x.size() << " dims, expected " << input_dim());
  ws_x1_.reshape(1, input_dim());
  std::copy(x.begin(), x.end(), ws_x1_.data().begin());
  const Matrix& y = forward_batch(ws_x1_);
  output_.assign(y.row(0), y.row(0) + output_dim());
  return output_;
}

Vec Mlp::evaluate(const Vec& x) const {
  DARL_CHECK(x.size() == input_dim(),
             "Mlp input has " << x.size() << " dims, expected " << input_dim());
  ws_eval_x1_.reshape(1, input_dim());
  std::copy(x.begin(), x.end(), ws_eval_x1_.data().begin());
  const Matrix& y = evaluate_batch(ws_eval_x1_);
  return Vec(y.row(0), y.row(0) + output_dim());
}

Vec Mlp::backward(const Vec& grad_output) {
  DARL_CHECK(forward_rows_ == 1, "backward() without a preceding forward()");
  DARL_CHECK(grad_output.size() == output_dim(),
             "grad_output has " << grad_output.size() << " dims, expected "
                                << output_dim());
  ws_g1_.reshape(1, output_dim());
  std::copy(grad_output.begin(), grad_output.end(), ws_g1_.data().begin());
  const Matrix& dx = backward_batch(ws_g1_);
  return Vec(dx.row(0), dx.row(0) + input_dim());
}

void Mlp::zero_grad() {
  for (auto& g : grad_w_) g.fill(0.0);
  for (auto& g : grad_b_) std::fill(g.begin(), g.end(), 0.0);
}

std::vector<ParamRef> Mlp::params() {
  std::vector<ParamRef> out;
  out.reserve(2 * weights_.size());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    // Built via += (not literal + temporary) to dodge a GCC-12 -Wrestrict
    // false positive in the inlined string concatenation.
    std::string wname = "w";
    wname += std::to_string(l);
    std::string bname = "b";
    bname += std::to_string(l);
    out.push_back(
        ParamRef{&weights_[l].data(), &grad_w_[l].data(), std::move(wname)});
    out.push_back(ParamRef{&biases_[l], &grad_b_[l], std::move(bname)});
  }
  return out;
}

std::size_t Mlp::param_count() const {
  std::size_t n = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l)
    n += weights_[l].size() + biases_[l].size();
  return n;
}

Vec Mlp::get_flat_params() const {
  Vec flat;
  flat.reserve(param_count());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const Vec& w = weights_[l].data();
    flat.insert(flat.end(), w.begin(), w.end());
    flat.insert(flat.end(), biases_[l].begin(), biases_[l].end());
  }
  return flat;
}

void Mlp::set_flat_params(const Vec& flat) {
  DARL_CHECK(flat.size() == param_count(),
             "flat parameter vector has " << flat.size() << " values, expected "
                                          << param_count());
  std::size_t off = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Vec& w = weights_[l].data();
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + w.size()), w.begin());
    off += w.size();
    Vec& b = biases_[l];
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + b.size()), b.begin());
    off += b.size();
  }
}

}  // namespace darl::nn
