#include "darl/nn/mlp.hpp"

#include <cmath>

#include "darl/common/error.hpp"
#include "darl/common/rng.hpp"

namespace darl::nn {

Mlp::Mlp(const std::vector<std::size_t>& sizes, Activation activation, Rng& rng)
    : sizes_(sizes), activation_(activation) {
  DARL_CHECK(sizes_.size() >= 2, "Mlp needs at least input and output sizes");
  for (std::size_t s : sizes_) DARL_CHECK(s > 0, "Mlp layer size must be positive");

  const std::size_t layers = sizes_.size() - 1;
  // tanh keeps unit variance with gain 1; ReLU needs sqrt(2).
  const double gain = activation_ == Activation::ReLU ? std::sqrt(2.0) : 1.0;
  weights_.reserve(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    Matrix w(sizes_[l + 1], sizes_[l]);
    w.randomize_kaiming(rng, gain);
    weights_.push_back(std::move(w));
    biases_.emplace_back(sizes_[l + 1], 0.0);
    grad_w_.emplace_back(sizes_[l + 1], sizes_[l], 0.0);
    grad_b_.emplace_back(sizes_[l + 1], 0.0);
  }
  inputs_.resize(layers);
  pre_.resize(layers);
}

double Mlp::act(double z) const {
  return activation_ == Activation::Tanh ? std::tanh(z) : (z > 0.0 ? z : 0.0);
}

double Mlp::act_grad(double z) const {
  if (activation_ == Activation::Tanh) {
    const double t = std::tanh(z);
    return 1.0 - t * t;
  }
  return z > 0.0 ? 1.0 : 0.0;
}

const Vec& Mlp::forward(const Vec& x) {
  DARL_CHECK(x.size() == input_dim(),
             "Mlp input has " << x.size() << " dims, expected " << input_dim());
  const std::size_t layers = weights_.size();
  Vec a = x;
  for (std::size_t l = 0; l < layers; ++l) {
    inputs_[l] = a;
    Vec z = weights_[l].matvec(a);
    axpy(1.0, biases_[l], z);
    pre_[l] = z;
    if (l + 1 < layers) {
      for (double& v : z) v = act(v);
    }
    a = std::move(z);
  }
  output_ = std::move(a);
  forward_done_ = true;
  return output_;
}

Vec Mlp::evaluate(const Vec& x) const {
  DARL_CHECK(x.size() == input_dim(),
             "Mlp input has " << x.size() << " dims, expected " << input_dim());
  const std::size_t layers = weights_.size();
  Vec a = x;
  for (std::size_t l = 0; l < layers; ++l) {
    Vec z = weights_[l].matvec(a);
    axpy(1.0, biases_[l], z);
    if (l + 1 < layers) {
      for (double& v : z) v = act(v);
    }
    a = std::move(z);
  }
  return a;
}

Vec Mlp::backward(const Vec& grad_output) {
  DARL_CHECK(forward_done_, "backward() without a preceding forward()");
  DARL_CHECK(grad_output.size() == output_dim(),
             "grad_output has " << grad_output.size() << " dims, expected "
                                << output_dim());
  const std::size_t layers = weights_.size();
  Vec delta = grad_output;  // dL/dz for the output layer (linear)
  for (std::size_t li = layers; li-- > 0;) {
    if (li + 1 < layers) {
      // delta currently holds dL/da for this layer's activation output;
      // convert to dL/dz through the activation derivative.
      for (std::size_t i = 0; i < delta.size(); ++i)
        delta[i] *= act_grad(pre_[li][i]);
    }
    grad_w_[li].add_outer(1.0, delta, inputs_[li]);
    axpy(1.0, delta, grad_b_[li]);
    delta = weights_[li].matvec_t(delta);
  }
  forward_done_ = false;
  return delta;  // dL/dx
}

void Mlp::zero_grad() {
  for (auto& g : grad_w_) g.fill(0.0);
  for (auto& g : grad_b_) std::fill(g.begin(), g.end(), 0.0);
}

std::vector<ParamRef> Mlp::params() {
  std::vector<ParamRef> out;
  out.reserve(2 * weights_.size());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    out.push_back(ParamRef{&weights_[l].data(), &grad_w_[l].data(),
                           "w" + std::to_string(l)});
    out.push_back(ParamRef{&biases_[l], &grad_b_[l], "b" + std::to_string(l)});
  }
  return out;
}

double Mlp::flops_per_forward() const {
  double flops = 0.0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    flops += 2.0 * static_cast<double>(sizes_[l]) * static_cast<double>(sizes_[l + 1]);
    flops += static_cast<double>(sizes_[l + 1]);  // bias + activation
  }
  return flops;
}

std::size_t Mlp::param_count() const {
  std::size_t n = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l)
    n += weights_[l].size() + biases_[l].size();
  return n;
}

Vec Mlp::get_flat_params() const {
  Vec flat;
  flat.reserve(param_count());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const Vec& w = weights_[l].data();
    flat.insert(flat.end(), w.begin(), w.end());
    flat.insert(flat.end(), biases_[l].begin(), biases_[l].end());
  }
  return flat;
}

void Mlp::set_flat_params(const Vec& flat) {
  DARL_CHECK(flat.size() == param_count(),
             "flat parameter vector has " << flat.size() << " values, expected "
                                          << param_count());
  std::size_t off = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Vec& w = weights_[l].data();
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + w.size()), w.begin());
    off += w.size();
    Vec& b = biases_[l];
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + b.size()), b.begin());
    off += b.size();
  }
}

}  // namespace darl::nn
