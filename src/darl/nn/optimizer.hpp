// darl/nn/optimizer.hpp
//
// First-order optimizers over ParamRef lists (Adam and SGD), plus global
// gradient-norm clipping. Optimizers hold per-buffer moment state keyed by
// position, so the ParamRef list must be stable across step() calls.

#pragma once

#include <vector>

#include "darl/nn/mlp.hpp"

namespace darl::nn {

/// Interface for optimizers stepping a fixed list of parameter buffers.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update using the gradients currently stored in the refs.
  virtual void step() = 0;

  /// Zero all gradient buffers.
  void zero_grad();

  /// Current learning rate.
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr);

 protected:
  Optimizer(std::vector<ParamRef> params, double lr);

  std::vector<ParamRef> params_;
  double lr_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<ParamRef> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);

  void step() override;

  std::size_t steps_taken() const { return t_; }

 private:
  double beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Vec> m_, v_;
};

/// Plain SGD with optional momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<ParamRef> params, double lr, double momentum = 0.0);

  void step() override;

 private:
  double momentum_;
  std::vector<Vec> velocity_;
};

/// Scale gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<ParamRef>& params, double max_norm);

}  // namespace darl::nn
