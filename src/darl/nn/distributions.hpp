// darl/nn/distributions.hpp
//
// Policy-head probability distributions with the exact gradient formulas the
// RL algorithms need: categorical over logits (discrete PPO), diagonal
// Gaussian (continuous PPO) and tanh-squashed Gaussian with reparameterized
// sampling (SAC).

#pragma once

#include <cstddef>

#include "darl/linalg/vec.hpp"

namespace darl {
class Rng;
}

namespace darl::nn {

/// Categorical distribution parameterized by unnormalized logits.
struct Categorical {
  /// Numerically stable softmax.
  static Vec softmax(const Vec& logits);

  /// Sample an index.
  static std::size_t sample(const Vec& logits, Rng& rng);

  /// log p(a) under softmax(logits).
  static double log_prob(const Vec& logits, std::size_t a);

  /// Shannon entropy of softmax(logits).
  static double entropy(const Vec& logits);

  /// d log p(a) / d logits = onehot(a) - softmax(logits).
  static Vec log_prob_grad(const Vec& logits, std::size_t a);

  /// d entropy / d logits.
  static Vec entropy_grad(const Vec& logits);
};

/// Diagonal Gaussian with externally produced mean and log-std vectors.
struct DiagGaussian {
  /// Draw x ~ N(mean, exp(log_std)^2).
  static Vec sample(const Vec& mean, const Vec& log_std, Rng& rng);

  /// log density of x.
  static double log_prob(const Vec& mean, const Vec& log_std, const Vec& x);

  /// Differential entropy (depends only on log_std).
  static double entropy(const Vec& log_std);

  /// Gradients of log_prob with respect to mean and log_std (score
  /// function, used by PPO's likelihood-ratio objective). Outputs are
  /// resized to match.
  static void log_prob_grad(const Vec& mean, const Vec& log_std, const Vec& x,
                            Vec& d_mean, Vec& d_log_std);
};

/// Tanh-squashed Gaussian for SAC: a = tanh(z), z = mean + exp(log_std)*eps.
/// log-probabilities include the tanh change-of-variables correction.
struct SquashedGaussian {
  /// Numerical floor inside log(1 - tanh(z)^2 + kEps).
  static constexpr double kEps = 1e-6;

  struct Draw {
    Vec action;    ///< tanh(z), in (-1, 1)
    Vec pre_tanh;  ///< z
    Vec noise;     ///< eps
    double log_prob = 0.0;
  };

  /// Reparameterized sample.
  static Draw sample(const Vec& mean, const Vec& log_std, Rng& rng);

  /// Deterministic action (tanh of the mean) for evaluation.
  static Vec mode(const Vec& mean);

  /// log-probability of an existing draw (recomputed from z).
  static double log_prob(const Vec& mean, const Vec& log_std,
                         const Vec& pre_tanh);

  /// Pathwise gradients through the reparameterized draw.
  ///
  /// For a loss L = c_logp * log pi(a|s) + <grad_action, a> (per sample),
  /// fills d_mean and d_log_std with dL/dmean and dL/dlog_std. grad_action
  /// is dL/da from, e.g., back-propagating the critic through its action
  /// input.
  static void pathwise_grad(const Vec& mean, const Vec& log_std,
                            const Vec& pre_tanh, const Vec& noise,
                            double c_logp, const Vec& grad_action, Vec& d_mean,
                            Vec& d_log_std);
};

}  // namespace darl::nn
