#include "darl/nn/quantize.hpp"

#include <cmath>
#include <cstdlib>

#include "darl/common/error.hpp"

namespace darl::nn {

namespace {

/// Activation-row quantization parameters: scale and offset for one
/// sample's row, chosen so the row's [min, max] maps onto [0, 255].
struct RowQuant {
  double scale = 1.0;
  double offset = 0.0;
};

/// Quantize `row` (n doubles) into `qrow` (uint8). A constant row gets
/// scale 1 and all-zero codes (the offset carries the value exactly).
RowQuant quantize_row(const double* row, std::size_t n, std::uint8_t* qrow) {
  double lo = row[0];
  double hi = row[0];
  for (std::size_t c = 1; c < n; ++c) {
    lo = std::min(lo, row[c]);
    hi = std::max(hi, row[c]);
  }
  RowQuant rq;
  rq.offset = lo;
  rq.scale = hi > lo ? (hi - lo) / 255.0 : 1.0;
  for (std::size_t c = 0; c < n; ++c) {
    const double q = std::nearbyint((row[c] - rq.offset) / rq.scale);
    qrow[c] = static_cast<std::uint8_t>(q < 0.0 ? 0.0 : (q > 255.0 ? 255.0 : q));
  }
  return rq;
}

}  // namespace

QuantizedNet quantize_mlp_params(const std::vector<std::size_t>& sizes,
                                 Activation activation, const Vec& flat) {
  DARL_CHECK(sizes.size() >= 2, "quantize: need {in, ..., out} sizes");
  QuantizedNet qn;
  qn.sizes = sizes;
  qn.activation = activation;
  std::size_t off = 0;
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    QuantizedLayer layer;
    layer.in = sizes[l];
    layer.out = sizes[l + 1];
    const std::size_t wn = layer.out * layer.in;
    DARL_CHECK(off + wn + layer.out <= flat.size(),
               "quantize: flat parameter vector too short");
    layer.qw.resize(wn);
    layer.w_scale.resize(layer.out);
    layer.qrow_sum.resize(layer.out);
    for (std::size_t j = 0; j < layer.out; ++j) {
      const double* wrow = flat.data() + off + j * layer.in;
      double amax = 0.0;
      for (std::size_t c = 0; c < layer.in; ++c)
        amax = std::max(amax, std::fabs(wrow[c]));
      const double scale = amax > 0.0 ? amax / 127.0 : 1.0;
      layer.w_scale[j] = scale;
      std::int32_t rsum = 0;
      for (std::size_t c = 0; c < layer.in; ++c) {
        const double q = std::nearbyint(wrow[c] / scale);
        const auto qi = static_cast<std::int8_t>(
            q < -127.0 ? -127.0 : (q > 127.0 ? 127.0 : q));
        layer.qw[j * layer.in + c] = qi;
        rsum += qi;
      }
      layer.qrow_sum[j] = rsum;
    }
    off += wn;
    layer.bias.assign(flat.begin() + static_cast<std::ptrdiff_t>(off),
                      flat.begin() + static_cast<std::ptrdiff_t>(off + layer.out));
    off += layer.out;
    qn.layers.push_back(std::move(layer));
  }
  DARL_CHECK(off == flat.size(),
             "quantize: flat vector has " << flat.size()
                                          << " values, architecture expects "
                                          << off);
  return qn;
}

void quantized_layer_forward(const QuantizedLayer& layer, const Matrix& in,
                             std::uint8_t* qrow, Matrix& out) {
  const std::size_t rows = in.rows();
  for (std::size_t r = 0; r < rows; ++r) {
    const RowQuant rq = quantize_row(in.row(r), layer.in, qrow);
    double* orow = out.row(r);
    const std::int8_t* qw = layer.qw.data();
    for (std::size_t j = 0; j < layer.out; ++j) {
      const std::int8_t* wrow = qw + j * layer.in;
      std::int32_t acc = 0;
      for (std::size_t c = 0; c < layer.in; ++c) {
        acc += static_cast<std::int32_t>(wrow[c]) *
               static_cast<std::int32_t>(qrow[c]);
      }
      // Fixed scalar expression per logit: integer result, two scales,
      // offset fold, bias. Deterministic and identical per-sample vs
      // batched (each row is independent).
      orow[j] = layer.w_scale[j] *
                    (rq.scale * static_cast<double>(acc) +
                     rq.offset * static_cast<double>(layer.qrow_sum[j])) +
                layer.bias[j];
    }
  }
}

double quantization_logit_error_bound(const QuantizedNet& qn, const Vec& flat,
                                      const Matrix& x) {
  DARL_CHECK(x.cols() == qn.sizes.front(),
             "bound: input has " << x.cols() << " dims, expected "
                                 << qn.sizes.front());
  const std::size_t rows = x.rows();
  double worst = 0.0;
  std::vector<std::uint8_t> qrow;
  for (const QuantizedLayer& layer : qn.layers)
    qrow.resize(std::max(qrow.size(), layer.in));

  for (std::size_t r = 0; r < rows; ++r) {
    // Quantized-path activations for this sample (what the kernel sees),
    // and the per-element error bound carried alongside them.
    Vec tilde(x.row(r), x.row(r) + x.cols());
    Vec err(x.cols(), 0.0);
    std::size_t off = 0;
    for (std::size_t l = 0; l < qn.layers.size(); ++l) {
      const QuantizedLayer& layer = qn.layers[l];
      const double* wbase = flat.data() + off;
      // The activation scale the kernel will use for this row.
      const RowQuant rq = quantize_row(tilde.data(), layer.in, qrow.data());
      Vec next(layer.out, 0.0);
      Vec next_err(layer.out, 0.0);
      Matrix trow(1, layer.in);
      std::copy(tilde.begin(), tilde.end(), trow.data().begin());
      Matrix zrow(1, layer.out);
      quantized_layer_forward(layer, trow, qrow.data(), zrow);
      for (std::size_t j = 0; j < layer.out; ++j) {
        const double* wrow = wbase + j * layer.in;
        const std::int8_t* qwrow = layer.qw.data() + j * layer.in;
        const double sw = layer.w_scale[j];
        double e = 0.0;
        for (std::size_t c = 0; c < layer.in; ++c) {
          // |W - s_w*qw| <= s_w/2 against the quantized-path activation,
          // |a~ - dequant(a~)| <= s_x/2 against the dequantized weight,
          // plus the incoming per-element error through the exact weight.
          e += 0.5 * sw * std::fabs(tilde[c]);
          e += 0.5 * rq.scale * std::fabs(sw * static_cast<double>(qwrow[c]));
          e += std::fabs(wrow[c]) * err[c];
        }
        next_err[j] = e;
        next[j] = zrow(0, j);
      }
      off += layer.out * layer.in + layer.out;
      if (l + 1 < qn.layers.size()) {
        // tanh and relu are 1-Lipschitz: the pre-activation error bound
        // carries through unchanged.
        for (double& v : next) {
          v = qn.activation == Activation::Tanh ? std::tanh(v)
                                                : (v > 0.0 ? v : 0.0);
        }
      }
      tilde = std::move(next);
      err = std::move(next_err);
    }
    for (double e : err) worst = std::max(worst, e);
  }
  return worst;
}

}  // namespace darl::nn
